package cascade

// This file holds the testing.B harness: one benchmark per table and
// figure of the paper's evaluation (regenerating the numbers recorded in
// EXPERIMENTS.md) plus ablation benchmarks for the design choices called
// out in DESIGN.md (§4.2 inlining, §4.3 forwarding, §4.4 open loop,
// §4.5 native mode, §5.1 lazy evaluation). Rates are reported as custom
// metrics in virtual hertz; wall-clock ns/op measures the simulator
// infrastructure itself.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"cascade/internal/bench"
	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/userstudy"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
	"cascade/internal/workloads/ledswitch"
	"cascade/internal/workloads/pow"
	"cascade/internal/workloads/regexgen"
)

// fastTC returns a toolchain whose virtual latency is negligible, for
// benchmarks that measure steady-state execution rather than the JIT
// timeline. CASCADE_BITS_DIR points it at a persistent bitstream store
// shared across processes (CI reuses the build step's store in bench).
func fastTC(dev *fpga.Device) *toolchain.Toolchain {
	o := toolchain.DefaultOptions()
	o.Scale = 1e9
	o.BasePs = 1
	o.CacheDir = os.Getenv("CASCADE_BITS_DIR")
	return toolchain.New(dev, o)
}

// newRT builds a runtime, evals the prelude and program, and fails the
// benchmark on error.
func newRT(b *testing.B, opts runtime.Options, prog string) *runtime.Runtime {
	b.Helper()
	if opts.Device == nil {
		opts.Device = fpga.NewCycloneV()
		opts.Toolchain = fastTC(opts.Device)
	}
	if opts.OpenLoopTargetPs == 0 {
		opts.OpenLoopTargetPs = 200 * vclock.Us
	}
	rt := runtime.New(opts)
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		b.Fatal(err)
	}
	if err := rt.Eval(prog); err != nil {
		b.Fatal(err)
	}
	return rt
}

// reportVirtualRate runs b.N ticks and reports the virtual clock rate.
func reportVirtualRate(b *testing.B, rt *runtime.Runtime) {
	b.Helper()
	b.ResetTimer()
	t0, k0 := rt.VirtualNow(), rt.Ticks()
	rt.RunTicks(uint64(b.N))
	b.StopTimer()
	dt := float64(rt.VirtualNow()-t0) / float64(vclock.S)
	if dt > 0 {
		b.ReportMetric(float64(rt.Ticks()-k0)/dt, "virtualHz")
	}
}

func powProg() string {
	cfg := pow.DefaultConfig()
	cfg.Target = 0
	return pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
`
}

// --- Figure 11: proof of work -------------------------------------------

func BenchmarkFig11_IVerilogBaseline(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableJIT: true, EagerSim: true}}, powProg())
	reportVirtualRate(b, rt)
}

func BenchmarkFig11_CascadeSoftware(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableJIT: true}}, powProg())
	reportVirtualRate(b, rt)
}

func BenchmarkFig11_CascadeOpenLoop(b *testing.B) {
	rt := newRT(b, runtime.Options{}, powProg())
	if !rt.WaitForPhase(runtime.PhaseOpenLoop, 100_000) {
		b.Fatalf("no open loop: %v", rt.Phase())
	}
	rt.Step()
	reportVirtualRate(b, rt)
}

func BenchmarkFig11_Native(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{Native: true}}, powProg())
	rt.RunTicks(4_000) // climb to open loop
	reportVirtualRate(b, rt)
}

// BenchmarkFig11_Timeline regenerates the whole figure per iteration.
func BenchmarkFig11_Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.CascadeOpenLoopHz, "openLoopHz")
		b.ReportMetric(f.SpatialOverhead, "spatialX")
	}
}

// --- Figure 12: streaming regex ------------------------------------------

func regexProg(b *testing.B) string {
	prog, _, err := regexgen.GenerateStreaming(bench.Fig12Pattern)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkFig12_StreamingSoftware(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableJIT: true}}, regexProg(b))
	rt.World().Stream("main.fifo").PushBytes(make([]byte, 1<<20))
	reportVirtualRate(b, rt)
}

func BenchmarkFig12_StreamingOpenLoop(b *testing.B) {
	rt := newRT(b, runtime.Options{}, regexProg(b))
	rt.World().Stream("main.fifo").PushBytes(make([]byte, 1<<22))
	if !rt.WaitForPhase(runtime.PhaseOpenLoop, 100_000) {
		b.Fatalf("no open loop: %v", rt.Phase())
	}
	rt.Step()
	reportVirtualRate(b, rt)
}

func BenchmarkFig12_Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.CascadeOpenIOs, "IO/s")
	}
}

// --- Figure 13 and Table 1 ------------------------------------------------

func BenchmarkFig13_UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Summary.MoreBuildsPct(), "moreBuilds%")
		b.ReportMetric(f.Summary.CompileTimeRatio(), "compileRatioX")
	}
}

func BenchmarkTable1_ClassStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agg, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(agg.Blocking.Mean, "blockingMean")
	}
}

// --- Ablations (DESIGN.md) -------------------------------------------------

// Inlining (§4.2): multi-engine lock-step hardware vs inlined hardware.
func BenchmarkAblation_InlineOff(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableInline: true}}, ledswitch.Figure3)
	rt.RunTicks(2_000)
	reportVirtualRate(b, rt)
}

func BenchmarkAblation_InlineOn_ForwardingOff(b *testing.B) {
	// Forwarding disabled isolates the §4.3 effect: stdlib engines keep
	// costing per-iteration messages.
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableForwarding: true}}, ledswitch.Figure3)
	rt.RunTicks(2_000)
	reportVirtualRate(b, rt)
}

// Open loop (§4.4): forwarded lock-step vs open-loop bursts.
func BenchmarkAblation_OpenLoopOff(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableOpenLoop: true}}, ledswitch.Figure3)
	rt.RunTicks(2_000)
	reportVirtualRate(b, rt)
}

func BenchmarkAblation_OpenLoopOn(b *testing.B) {
	rt := newRT(b, runtime.Options{}, ledswitch.Figure3)
	if !rt.WaitForPhase(runtime.PhaseOpenLoop, 100_000) {
		b.Fatalf("no open loop: %v", rt.Phase())
	}
	rt.Step()
	reportVirtualRate(b, rt)
}

// Lazy evaluation (§5.1): the software engine's dependency-driven
// activation vs naive re-evaluation.
func BenchmarkAblation_LazyEval(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableJIT: true}}, powProg())
	reportVirtualRate(b, rt)
}

func BenchmarkAblation_EagerEval(b *testing.B) {
	rt := newRT(b, runtime.Options{Features: runtime.Features{DisableJIT: true, EagerSim: true}}, powProg())
	reportVirtualRate(b, rt)
}

// Open-loop burst sizing (§4.4 adaptive profiling): small vs large
// iteration budgets change the message amortization.
func BenchmarkAblation_OpenLoopBurst64us(b *testing.B) {
	rt := newRT(b, runtime.Options{OpenLoopTargetPs: 64 * vclock.Us}, ledswitch.Figure3)
	if !rt.WaitForPhase(runtime.PhaseOpenLoop, 100_000) {
		b.Fatal("no open loop")
	}
	reportVirtualRate(b, rt)
}

func BenchmarkAblation_OpenLoopBurst4ms(b *testing.B) {
	rt := newRT(b, runtime.Options{OpenLoopTargetPs: 4 * vclock.Ms}, ledswitch.Figure3)
	if !rt.WaitForPhase(runtime.PhaseOpenLoop, 100_000) {
		b.Fatal("no open loop")
	}
	reportVirtualRate(b, rt)
}

// --- End-to-end study benchmark --------------------------------------------

func BenchmarkUserStudyModel(b *testing.B) {
	cfg := userstudy.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		userstudy.Run(cfg)
	}
}

// Optimizer ablation: netlist area with and without the cleanup pass.
func BenchmarkAblation_OptimizerArea(b *testing.B) {
	cfg := pow.DefaultConfig()
	src := pow.Generate(cfg)
	for i := 0; i < b.N; i++ {
		raw, opt := compileBothPaths(b, src)
		b.ReportMetric(float64(raw.Stats.CodeOps), "rawOps")
		b.ReportMetric(float64(opt.Stats.CodeOps), "optOps")
	}
}

func compileBothPaths(b *testing.B, src string) (*netlist.Program, *netlist.Program) {
	b.Helper()
	mods, _, errs := verilog.ParseProgramFragment(src)
	if len(errs) > 0 {
		b.Fatal(errs[0])
	}
	f, err := elab.Elaborate(mods[0], "dut", nil)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := netlist.CompileRaw(f)
	if err != nil {
		b.Fatal(err)
	}
	return raw, netlist.Optimize(raw)
}

// --- Parallel scheduler and compile cache (PR 1) ---------------------------

// multiMinerProg instantiates k independent proof-of-work miners; with
// inlining disabled each is its own engine, so a step dispatches k+1
// heavy EvalAll batches that the parallel scheduler can overlap.
func multiMinerProg(k int) string {
	cfg := pow.DefaultConfig()
	cfg.Target = 0
	src := pow.Generate(cfg)
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
wire [31:0] h%[1]d, n%[1]d, s%[1]d, x%[1]d; wire f%[1]d;
Pow m%[1]d(.clk(clk.val), .hashes(h%[1]d), .nonce(n%[1]d),
           .found(f%[1]d), .hash0(x%[1]d), .solution(s%[1]d));
`, i)
	}
	return src
}

// benchSchedulerLanes measures a multi-subprogram workload at a given
// dispatch width. Compare Scheduler_Serial against Scheduler_Parallel:
// the parallel scheduler bills compute as max-over-lanes, so virtualHz
// rises with lanes on any host, and ns/op drops wherever the host has
// real cores to back the worker pool.
func benchSchedulerLanes(b *testing.B, par int) {
	rt := newRT(b, runtime.Options{
		Features:    runtime.Features{DisableJIT: true, DisableInline: true},
		Parallelism: par,
	}, multiMinerProg(6))
	reportVirtualRate(b, rt)
}

func BenchmarkScheduler_Serial(b *testing.B)   { benchSchedulerLanes(b, 1) }
func BenchmarkScheduler_Parallel(b *testing.B) { benchSchedulerLanes(b, 8) }

// BenchmarkToolchainCache measures the compile service's bitstream
// cache: every iteration resubmits the same netlist, so after the first
// place-and-route all requests are content-addressed cache hits with
// near-zero virtual latency.
func BenchmarkToolchainCache(b *testing.B) {
	st, errs := verilog.ParseSourceText(`
module M(input wire clk, output reg [31:0] q);
  always @(posedge clk) q <= q * 3 + 1;
endmodule`)
	if errs != nil {
		b.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		b.Fatal(err)
	}
	tc := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	ctx := context.Background()
	j := tc.Submit(ctx, f, true, 0)
	first, ok := j.ReadyAt()
	if !ok {
		b.Fatal("seed compile cancelled")
	}
	j.Ready(first) // publish the cache entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := tc.Submit(ctx, f, true, first)
		if res := j.Result(); res == nil || !res.CacheHit {
			b.Fatalf("iteration %d missed the cache: %+v", i, res)
		}
	}
	b.StopTimer()
	s := tc.Stats()
	b.ReportMetric(float64(s.CacheHits)/float64(s.Submitted), "hitRatio")
}
