module cascade

go 1.22
