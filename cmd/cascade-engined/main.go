// Command cascade-engined is the remote engine daemon: it hosts Cascade
// engines behind the message-passing engine protocol, so a cascade
// runtime on another process (or machine) can ship subprograms to it
// with -remote-engine / cascade.WithRemoteEngine and drive them over
// TCP. The daemon owns its own simulated fabric and vendor-toolchain
// model: spawned engines start in its software interpreter and are
// JIT-promoted onto its device in the background, exactly as a local
// runtime would promote them — the client only sees the location flip
// in the reply envelopes.
//
// The daemon is multi-session: clients may open private sessions
// (cascade -session-quota / cascade.WithRemoteSession), each of which
// carves a spatial region out of the daemon's fabric and gets its own
// toolchain tenant — namespaced bitstream cache, fair-share compile
// workers, scoped fault schedules. Sessionless clients keep the legacy
// behavior of sharing the whole fabric. -session-quota sets the region
// size granted when a session opens without asking for one (default: a
// quarter of the fabric).
//
// Usage:
//
//	cascade-engined                      # listen on 127.0.0.1:9925
//	cascade-engined -listen :9000        # any interface, port 9000
//	cascade-engined -compile-scale 600   # speed up the virtual toolchain
//	cascade-engined -cache-dir d         # persist bitstreams across runs
//	cascade-engined -no-jit              # pin hosted engines to software
//	cascade-engined -session-quota 25000 # default region for sessions
//	                                     # that don't request a size
//	cascade-engined -observe 127.0.0.1:9926  # serve the daemon's own
//	                                     # /metrics, /trace, /debug/pprof
//	cascade-engined -journal host.journal    # survive restarts: sessions
//	                                     # and engines re-bind on boot
//	cascade-engined -max-queue 64        # shed compile submissions past
//	                                     # this in-flight bound
//	cascade-engined -compile-worker      # also serve the compile-farm
//	                                     # protocol: remote FarmBackends
//	                                     # shard flows onto this daemon
//	cascade-engined -compile-worker -peers 127.0.0.1:9925,127.0.0.1:9927
//	                                     # consult sibling workers' caches
//	                                     # before place-and-route
//
// With -compile-worker the daemon hosts the worker side of compile
// flows: clients started with -compile-farm (or cascade.WithCompileFarm)
// ship it netlist summaries and get back verified flow outcomes, served
// from its memory cache, its -cache-dir store, its -peers siblings, or
// a fresh run of the place-and-route model — so a cold client process
// reaches hardware at network-cache-hit latency.
//
// With -journal, the daemon appends every registry mutation (session
// opens, spawns, state installs, ends) to the named file and replays it
// on boot, re-binding the same session and engine IDs — so a client
// that reconnects after a daemon crash finds its engines where it left
// them. Execution progress since the last state install is NOT in the
// journal; a supervised client detects the restart via the boot epoch
// and re-seeds from its own committed state instead.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9925", "TCP address to serve the engine protocol on")
	scale := flag.Float64("compile-scale", 600, "divide virtual compile latency (1 = paper-faithful)")
	cacheDir := flag.String("cache-dir", "", "persist compiled bitstreams here across processes")
	noJIT := flag.Bool("no-jit", false, "pin hosted engines to software (no fabric promotion)")
	sessQuota := flag.Int("session-quota", 0, "default fabric region in LEs for sessions that open without a quota (0 = a quarter of the fabric)")
	observe := flag.String("observe", "", "serve /metrics, /trace, and /debug/pprof on this address (e.g. 127.0.0.1:0)")
	journal := flag.String("journal", "", "journal registry mutations here and resume sessions/engines on restart")
	maxQueue := flag.Int("max-queue", 0, "shed compile submissions past this many in flight (0 = unbounded)")
	compileWorker := flag.Bool("compile-worker", false, "serve the compile-farm protocol (host the worker side of compile flows)")
	peers := flag.String("peers", "", "comma-separated sibling compile-worker addresses to consult before place-and-route")
	flag.Parse()

	var obs *obsv.Observer
	if *observe != "" {
		obs = obsv.New(obsv.Options{Addr: *observe})
		if err := obs.StartHTTP(); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-engined: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[cascade-engined] observability endpoint on http://%s (/metrics, /trace, /debug/pprof)\n", obs.HTTPAddr())
	}
	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = *scale
	tco.CacheDir = *cacheDir
	tco.MaxQueue = *maxQueue
	var peerAddrs []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerAddrs = append(peerAddrs, p)
			}
		}
	}
	host := transport.NewHost(transport.HostOptions{
		Device:                 dev,
		Toolchain:              toolchain.New(dev, tco),
		DisableJIT:             *noJIT,
		DefaultSessionQuotaLEs: *sessQuota,
		Observer:               obs,
		CompileWorker:          *compileWorker,
		Peers:                  peerAddrs,
	})
	if *compileWorker {
		fmt.Printf("[cascade-engined] compile worker enabled (%d peer(s))\n", len(peerAddrs))
	}
	if *journal != "" {
		sessions, engines, err := host.EnableJournal(*journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-engined: journal: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[cascade-engined] journal %s: resumed %d session(s), %d engine(s)\n",
			*journal, sessions, engines)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-engined: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[cascade-engined] listening on %s\n", l.Addr())
	if err := host.ServeListener(l); err != nil {
		fmt.Fprintf(os.Stderr, "cascade-engined: %v\n", err)
		os.Exit(1)
	}
}
