// Command cascade-bench regenerates the tables and figures of the
// paper's evaluation (§6). Each experiment runs the full Cascade-Go
// pipeline on the paper's workloads and prints the series/rows the paper
// plots; EXPERIMENTS.md records paper-versus-measured values.
//
// Usage:
//
//	cascade-bench                       # run everything
//	cascade-bench -experiment fig11     # one experiment
//	cascade-bench -experiment fig12
//	cascade-bench -experiment fig13
//	cascade-bench -experiment table1
//	cascade-bench -experiment intext    # §6's in-text claims
//	cascade-bench -experiment tier      # native-tier promotion ladder
//	cascade-bench -experiment farm      # compile-farm throughput scaling
//	cascade-bench -tier                 # shorthand for -experiment tier
package main

import (
	"flag"
	"fmt"
	"os"

	"cascade/internal/bench"
)

func main() {
	which := flag.String("experiment", "all", "fig11 | fig12 | fig13 | table1 | intext | tier | farm | all")
	tier := flag.Bool("tier", false, "shorthand for -experiment tier")
	flag.Parse()
	if *tier {
		*which = "tier"
	}

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig11", func() error {
		f, err := bench.RunFig11()
		if err != nil {
			return err
		}
		fmt.Println("Figure 11: proof-of-work virtual clock frequency vs time")
		fmt.Print(bench.FormatSeries(f.Series, "Hz"))
		fmt.Printf("startup             %8.2f s   (paper: <1 s)\n", f.StartupSec)
		fmt.Printf("iVerilog rate       %8.0f Hz  (paper: ~650 Hz)\n", f.IVerilogHz)
		fmt.Printf("Cascade sim rate    %8.0f Hz  (paper: 2.4x iVerilog)\n", f.CascadeSimHz)
		fmt.Printf("sim speedup         %8.2f x   (paper: 2.4x)\n", f.SimSpeedup)
		fmt.Printf("Quartus compile     %8.0f s   (paper: ~600 s)\n", f.QuartusCompileSec)
		fmt.Printf("Cascade compile     %8.0f s   (background)\n", f.CascadeCompileSec)
		fmt.Printf("open-loop rate      %8.2f MHz (paper: within 2.9x of 50 MHz)\n", f.CascadeOpenLoopHz/1e6)
		fmt.Printf("open-loop gap       %8.2f x   (paper: 2.9x)\n", f.OpenLoopGap)
		fmt.Printf("spatial overhead    %8.2f x   (paper: 2.9x)\n", f.SpatialOverhead)
		fmt.Printf("runtime stats       %s\n", f.Stats.Summary())
		return nil
	})

	run("fig12", func() error {
		f, err := bench.RunFig12()
		if err != nil {
			return err
		}
		fmt.Println("Figure 12: streaming regex IO operations per second vs time")
		fmt.Printf("pattern %q -> %d DFA states\n", f.Pattern, f.DFAStates)
		fmt.Print(bench.FormatSeries(f.Series, "IO/s"))
		fmt.Printf("Cascade sim         %8.1f KIO/s (paper: 32 KIO/s)\n", f.CascadeSimIOs/1e3)
		fmt.Printf("Cascade open loop   %8.1f KIO/s (paper: 492 KIO/s)\n", f.CascadeOpenIOs/1e3)
		fmt.Printf("Quartus native      %8.1f KIO/s (paper: 560 KIO/s)\n", f.QuartusIOs/1e3)
		fmt.Printf("Quartus compile     %8.0f s     (paper: 570 s)\n", f.QuartusCompileSec)
		fmt.Printf("spatial overhead    %8.2f x     (paper: 6.5x)\n", f.SpatialOverhead)
		return nil
	})

	run("fig13", func() error {
		f, err := bench.RunFig13()
		if err != nil {
			return err
		}
		fmt.Println("Figure 13: user study (n=20), per-subject scatter data")
		for _, row := range f.Rows {
			fmt.Println(row)
		}
		s := f.Summary
		fmt.Printf("\nQuartus compile (starter): %.0f s; Cascade turnaround: %.1f s\n",
			f.QuartusCompileSec, f.CascadeStartupSec)
		fmt.Printf("more compilations with Cascade  %+6.0f %% (paper: +43%%)\n", s.MoreBuildsPct())
		fmt.Printf("faster task completion          %+6.0f %% (paper: +21%%)\n", s.FasterCompletionPct())
		fmt.Printf("less time compiling             %6.0f x  (paper: 67x)\n", s.CompileTimeRatio())
		return nil
	})

	run("table1", func() error {
		agg, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: class-study statistics over 31 generated solutions")
		for _, row := range agg.Rows() {
			fmt.Println(row)
		}
		fmt.Printf("(%d of %d submissions include build logs; paper: 23 of 31)\n", agg.WithLogs, agg.N)
		return nil
	})

	run("tier", func() error {
		f, err := bench.RunTier()
		if err != nil {
			return err
		}
		fmt.Println("Native tier: proof-of-work promotion ladder (interpreter -> native Go -> fabric)")
		fmt.Print(bench.FormatSeries(f.Series, "Hz"))
		fmt.Printf("startup             %8.2f s\n", f.StartupSec)
		fmt.Printf("interpreter rate    %8.0f Hz\n", f.InterpHz)
		fmt.Printf("native ready        %8.2f s   (fabric: %.0f s later)\n",
			f.NativeReadySec, f.FabricReadySec-f.NativeReadySec)
		fmt.Printf("native rate         %8.0f Hz  (%.1fx interpreter)\n", f.NativeHz, f.NativeSpeedup)
		fmt.Printf("fabric ready        %8.0f s\n", f.FabricReadySec)
		fmt.Printf("open-loop rate      %8.2f MHz\n", f.OpenLoopHz/1e6)
		fmt.Printf("runtime stats       %s\n", f.Stats.Summary())
		return nil
	})

	run("farm", func() error {
		f, err := bench.RunFarm()
		if err != nil {
			return err
		}
		fmt.Println("Compile farm: aggregate throughput vs worker count (15 ms real PnR per flow)")
		for _, row := range f.Rows {
			fmt.Printf("workers=%d  %8.2f jobs/s  (%.0f ms for %d jobs, stolen=%d msgs=%d)\n",
				row.Workers, row.JobsPerSec, row.WallSec*1e3, f.Jobs, row.Stolen, row.Msgs)
		}
		fmt.Printf("1->4 worker scaling  %6.2f x   (ideal: 4x)\n", f.Scaling)
		fmt.Printf("full flow            %8.2f virtual s\n", float64(f.MissPs)/1e12)
		fmt.Printf("cold-start via cache %8.2f virtual ms (%.0fx faster)\n",
			float64(f.ColdHitPs)/1e9, f.ColdRatio)
		return nil
	})

	run("intext", func() error {
		f11, err := bench.RunFig11()
		if err != nil {
			return err
		}
		f12, err := bench.RunFig12()
		if err != nil {
			return err
		}
		fmt.Println("In-text claims (§6):")
		fmt.Printf("time to first instruction     %6.2f s  (paper: <1 s)\n", f11.StartupSec)
		fmt.Printf("debug-env performance gap     %6.2f x  (paper: within 3x)\n", f11.OpenLoopGap)
		fmt.Printf("PoW spatial overhead          %6.2f x  (paper: 2.9x)\n", f11.SpatialOverhead)
		fmt.Printf("regex spatial overhead        %6.2f x  (paper: 6.5x)\n", f12.SpatialOverhead)
		fmt.Printf("native mode: area identical to Quartus by construction (no wrapper)\n")
		return nil
	})
}
