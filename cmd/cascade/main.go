// Command cascade is the Cascade-Go REPL: a JIT compiler and runtime for
// Verilog (paper §3.1). Run it with no arguments for an interactive
// session against the default virtual board (a clock, four buttons, and
// eight LEDs), or with -batch to execute a file.
//
// Usage:
//
//	cascade                     # interactive REPL
//	cascade -batch prog.v       # batch mode: eval file, run to $finish
//	cascade -batch prog.v -ticks 100000
//	cascade -no-jit             # stay in software (simulator only)
//	cascade -native             # native mode (§4.5)
//	cascade -compile-scale 600  # speed up the virtual vendor toolchain
//	cascade -checkpoint-dir d   # crash-safe: checkpoint + journal in d,
//	                            # restarting over d resumes mid-run
//	cascade -cache-dir d        # persist compiled bitstreams across runs
//	cascade -remote-engine addr # host user engines on a cascade-engined
//	                            # daemon at addr (see cmd/cascade-engined)
//	cascade -remote-engine addr -session-quota 25000 -session-share 2
//	                            # open a private daemon session: a 25K-LE
//	                            # fabric region and 2 fair-share compile
//	                            # workers, isolated from other clients
//	cascade -remote-engine addr -supervise
//	                            # self-healing: probe the daemon, fail
//	                            # over to local engines when it dies,
//	                            # re-host when it comes back (:health)
//	cascade -observe 127.0.0.1:9926  # serve /metrics, /trace, and
//	                            # /debug/pprof; enables :trace/:metrics
//	cascade -compile-farm 3     # shard compiles across 3 in-process farm
//	                            # workers (replicated bitstream cache)
//	cascade -compile-farm-addrs 127.0.0.1:9925,127.0.0.1:9927
//	                            # shard compiles onto remote cascade-engined
//	                            # -compile-worker daemons instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/repl"
	"cascade/internal/runtime"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
)

func main() {
	batch := flag.String("batch", "", "evaluate a Verilog file instead of reading stdin")
	restore := flag.String("restore", "", "restore a snapshot written by :save and continue it")
	ticks := flag.Uint64("ticks", 1_000_000, "batch mode: maximum clock ticks to run")
	noJIT := flag.Bool("no-jit", false, "disable the JIT (software simulation only)")
	native := flag.Bool("native", false, "native mode: compile exactly as written (§4.5)")
	nativeTier := flag.Bool("native-tier", false, "add the native-Go JIT rung: closure-threaded code within virtual ms, fabric later")
	scale := flag.Float64("compile-scale", 600, "divide virtual compile latency (1 = paper-faithful)")
	lanes := flag.Int("parallelism", 0, "scheduler dispatch lanes (0 = one per CPU, 1 = serial)")
	ckptDir := flag.String("checkpoint-dir", "", "crash-safe persistence directory (checkpoints + journal); restarting over it resumes")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "checkpoint cadence in steps (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persist compiled bitstreams here across processes")
	remote := flag.String("remote-engine", "", "host user engines on a cascade-engined daemon at this address")
	sessQuota := flag.Int("session-quota", 0, "with -remote-engine: open a private daemon session with a fabric region of this many LEs (0 = sessionless shared fabric)")
	sessShare := flag.Int("session-share", 0, "with -remote-engine -session-quota: bound the session to this many fair-share compile workers (0 = global pool)")
	supervised := flag.Bool("supervise", false, "with -remote-engine: self-healing supervision — liveness probes, circuit-broken failover to local engines, re-host on daemon recovery")
	faultNet := flag.Float64("fault-net", 0, "per-attempt probability an engine-protocol round-trip is dropped and retried (0 = no injected faults; drops never change program output)")
	faultSeed := flag.Uint64("fault-seed", 1, "deterministic fault-schedule seed (with -fault-net)")
	observe := flag.String("observe", "", "serve /metrics, /trace, and /debug/pprof on this address (e.g. 127.0.0.1:0); also enables :trace and :metrics")
	farmWorkers := flag.Int("compile-farm", 0, "shard compile flows across this many in-process farm workers (0 = local backend)")
	farmAddrs := flag.String("compile-farm-addrs", "", "comma-separated cascade-engined -compile-worker addresses to shard compile flows onto")
	flag.Parse()

	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = *scale
	tco.CacheDir = *cacheDir
	opts := runtime.Options{
		Device:    dev,
		Toolchain: toolchain.New(dev, tco),
		Features: runtime.Features{
			DisableJIT: *noJIT,
			Native:     *native,
			NativeTier: *nativeTier,
		},
		Parallelism: *lanes,
	}
	if *remote != "" {
		// SessionName stays empty: the daemon assigns a unique tenant
		// name, so several CLIs can open sessions against one daemon.
		opts.Remote = &runtime.RemoteOptions{
			Addr:            *remote,
			SessionQuotaLEs: *sessQuota,
			SessionShare:    *sessShare,
		}
	} else if *sessQuota != 0 || *sessShare != 0 {
		fmt.Fprintln(os.Stderr, "cascade: -session-quota/-session-share require -remote-engine")
		os.Exit(1)
	}
	if *supervised {
		if *remote == "" {
			fmt.Fprintln(os.Stderr, "cascade: -supervise requires -remote-engine")
			os.Exit(1)
		}
		opts.Supervise = &supervise.Options{}
	}
	if *observe != "" {
		// runtime.New starts the endpoint and announces the bound
		// address through the view.
		opts.Observer = obsv.New(obsv.Options{Addr: *observe})
	}
	if *farmAddrs != "" {
		var addrs []string
		for _, a := range strings.Split(*farmAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		links, err := transport.DialFarm(addrs, transport.TCPOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
			os.Exit(1)
		}
		opts.Farm = &toolchain.FarmOptions{Links: links}
		fmt.Printf("[cascade] compile farm: %d remote worker(s)\n", len(links))
	} else if *farmWorkers > 0 {
		opts.Farm = &toolchain.FarmOptions{Workers: *farmWorkers}
	}
	if *faultNet > 0 {
		// Cap injected drops per transport site below the default retry
		// budget (2), so every drop is absorbed and observables match
		// the fault-free run (DESIGN.md key invariant 11).
		opts.Injector = fault.New(fault.Config{
			Seed:         *faultSeed,
			NetDrop:      *faultNet,
			MaxNetFaults: 2,
		})
	}
	var r *repl.REPL
	var info *runtime.RecoveryInfo
	var err error
	if *ckptDir != "" {
		opts.Persist = &runtime.PersistOptions{
			Dir:        *ckptDir,
			EverySteps: *ckptEvery,
		}
		r, info, err = repl.Open(opts, os.Stdout)
		if err == nil && info.Recovered {
			fmt.Printf("[cascade] recovered: ticks=%d steps=%d replayed=%d records (checkpoint seq %d)\n",
				r.Runtime().Ticks(), info.ResumedSteps, info.ReplayedRecords, info.CheckpointSeq)
		}
	} else if *restore != "" {
		blob, rerr := os.ReadFile(*restore)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "cascade: %v\n", rerr)
			os.Exit(1)
		}
		snap, rerr := runtime.DecodeSnapshot(string(blob))
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "cascade: %v\n", rerr)
			os.Exit(1)
		}
		r, err = repl.NewRestored(opts, snap, os.Stdout)
	} else {
		r, err = repl.New(opts, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
		os.Exit(1)
	}
	if *batch != "" {
		if info != nil && info.Recovered {
			// The program (and its progress) came back from the
			// checkpoint + journal: don't re-eval the file, just spend
			// whatever remains of the total tick budget.
			remaining := uint64(0)
			if done := r.Runtime().Ticks(); done < *ticks {
				remaining = *ticks - done
			}
			if err := r.Resume(remaining); err != nil {
				fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[cascade] done: ticks=%d\n", r.Runtime().Ticks())
			return
		}
		src, err := os.ReadFile(*batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
			os.Exit(1)
		}
		if err := r.Batch(string(src), *ticks); err != nil {
			fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[cascade] done: ticks=%d\n", r.Runtime().Ticks())
		return
	}
	if err := r.Interact(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "cascade: %v\n", err)
		os.Exit(1)
	}
}
