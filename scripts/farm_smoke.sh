#!/bin/sh
# Compile-farm smoke (CI): boot three cascade-engined -compile-worker
# daemons peered into a replicated-cache ring, and assert end to end
# that
#   (a) a client sharding compiles onto the farm survives one worker
#       being SIGKILLed mid-run (reroute, don't strand) with program
#       output byte-identical to the local-backend baseline,
#   (b) a cold client restart reaches hardware at cache-hit latency,
#       served across the peer ring by a worker that never compiled
#       the design itself (DESIGN.md key invariant 15's deployment
#       story, with real processes).
# Usage: farm_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: farm_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: farm_smoke.sh <cascade-binary> <cascade-engined-binary>}
. "$(dirname "$0")/lib.sh"
smoke_init
client_pid=

cat > "$work/prog.v" <<'PROG'
reg [15:0] n = 1;
always @(posedge clk.val) begin
  n <= n + 7;
  if (n % 256 == 1) $display("n=%d", n);
  if (n > 60000) $finish;
end
assign led.val = n[7:0];
PROG

smoke_port 23000
p1=$port; p2=$((port + 1)); p3=$((port + 2))

# Three compile workers, each peered with the other two: a miss on any
# shard consults its siblings before paying for place-and-route.
port=$p1; start_daemon "$work/w1.log" -compile-worker -peers "127.0.0.1:$p2,127.0.0.1:$p3"
w1_pid=$daemon_pid
port=$p2; start_daemon "$work/w2.log" -compile-worker -peers "127.0.0.1:$p1,127.0.0.1:$p3"
w2_pid=$daemon_pid
port=$p3; start_daemon "$work/w3.log" -compile-worker -peers "127.0.0.1:$p1,127.0.0.1:$p2"
w3_pid=$daemon_pid

# Local-backend baseline: same program, in-process compiles.
"$bin" -batch "$work/prog.v" -ticks 20000 >"$work/local.log" 2>&1
strip_status "$work/local.log" "$work/local.out"
if ! grep -q "n=" "$work/local.out"; then
  echo "FAIL: local run produced no output"
  cat "$work/local.log"
  exit 1
fi

# Farm run with a mid-run worker kill: the client shards onto w1 and w3;
# once it is producing output, w3 is SIGKILLed. The breaker must treat
# the dead shard like a dead engine — reroute to w1 — and the program
# must neither notice nor diverge.
"$bin" -batch "$work/prog.v" -ticks 20000 \
  -compile-farm-addrs "127.0.0.1:$p1,127.0.0.1:$p3" >"$work/farm.log" 2>&1 &
client_pid=$!
smoke_track "$client_pid"
wait_count 1 'n=' "$work/farm.log" "farm client output" "$client_pid"
kill_daemon "$w3_pid"
if ! wait "$client_pid"; then
  echo "FAIL: farm client exited non-zero after worker kill"
  cat "$work/farm.log"
  exit 1
fi
client_pid=
strip_status "$work/farm.log" "$work/farm.out"
assert_same_output "$work/local.out" "$work/farm.out" \
  "farm-backed output diverges from the local-backend baseline"
assert_same_ticks "$work/local.log" "$work/farm.log" "farm vs local"

# Warm w1: if the killed shard was the one that compiled, this run
# recompiles; either way the bitstream now lives on a live worker.
"$bin" -batch "$work/prog.v" -ticks 20000 \
  -compile-farm-addrs "127.0.0.1:$p1" >"$work/warm.log" 2>&1

# Cold client restart against w2 — a worker that never compiled this
# design. A fresh process with no local cache must still reach hardware
# at cache-hit latency, served from w1's cache over the peer ring.
"$bin" -batch "$work/prog.v" -ticks 20000 \
  -compile-farm-addrs "127.0.0.1:$p2" >"$work/cold.log" 2>&1
if ! grep -q 'bitstream cache hit' "$work/cold.log"; then
  echo "FAIL: cold restart did not hit the farm's peer cache"
  cat "$work/cold.log"
  exit 1
fi
strip_status "$work/cold.log" "$work/cold.out"
assert_same_output "$work/local.out" "$work/cold.out" \
  "cold-restart output diverges from the local-backend baseline"
assert_same_ticks "$work/local.log" "$work/cold.log" "cold restart vs local"

echo "farm smoke ok: $(grep -c 'n=' "$work/local.out") display lines identical" \
  "through a worker kill, cold restart served from the peer cache, ticks=$(ticks_of "$work/local.log")"
