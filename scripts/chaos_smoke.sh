#!/bin/sh
# Chaos smoke (CI): the end-to-end self-healing drill. Run the §6.1
# proof-of-work miner with its user engines hosted on a supervised
# cascade-engined daemon, SIGKILL the daemon twice mid-run, restart it
# over its journal each time, and assert that
#   (a) the client failed over to local engines both times,
#   (b) it re-hosted onto the resumed daemon both times, and
#   (c) every $display byte matches the fault-free local baseline
# (DESIGN.md key invariant 14, end to end with real processes).
# Must run from the repo root (generates the workload with go run).
# Usage: chaos_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: chaos_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: chaos_smoke.sh <cascade-binary> <cascade-engined-binary>}
work=$(mktemp -d)
daemon_pid=
client_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# The workload must be $finish-bounded, not tick-bounded: every failover
# deliberately drops one clock edge (the engine resumes from the last
# committed step), so the chaos run needs a few more ticks than the
# baseline to produce the same output sequence — invariant 14 equates
# outputs, not clocks. Mining stops at the fifth solution.
ticks=60000
go run ./scripts/genpow > "$work/pow.v"
cat >> "$work/pow.v" <<'PROG'
reg prev_found = 0;
reg [31:0] prev_sol = 0;
reg [2:0] nfound = 0;
always @(posedge clk.val) begin
  prev_found <= found;
  prev_sol <= sol;
  if ((found && !prev_found) || (found && sol != prev_sol)) begin
    nfound <= nfound + 1;
    if (nfound == 4) $finish;
  end
end
PROG

# wait_for <count> <pattern> <file> <what>: poll until pattern appears
# at least count times, failing loudly (with the client log, which holds
# the supervision trail) if the client dies or the budget runs out.
wait_for() {
    want=$1; pattern=$2; file=$3; what=$4
    i=0
    while [ "$(grep -c "$pattern" "$file" 2>/dev/null || true)" -lt "$want" ]; do
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "FAIL: timed out waiting for $what"
            tail -40 "$work/client.log" 2>/dev/null || true
            exit 1
        fi
        if [ -n "$client_pid" ] && ! kill -0 "$client_pid" 2>/dev/null; then
            # The client may legitimately be done — only a missing
            # pattern after exit is a failure.
            if [ "$(grep -c "$pattern" "$file" 2>/dev/null || true)" -lt "$want" ]; then
                echo "FAIL: client exited before $what"
                tail -40 "$work/client.log" 2>/dev/null || true
                exit 1
            fi
            return
        fi
        sleep 0.1
    done
}

start_daemon() {
    : > "$work/daemon.log"
    "$engined" -listen "127.0.0.1:$port" -journal "$work/journal" \
        >"$work/daemon.log" 2>&1 &
    daemon_pid=$!
    wait_for 1 "listening on" "$work/daemon.log" "daemon startup"
}

# Fault-free baseline: same program, same tick budget, local engines.
"$bin" -batch "$work/pow.v" -ticks "$ticks" >"$work/local.log" 2>&1
grep -v '^\[cascade\]' "$work/local.log" >"$work/local.out"
if ! grep -q '^FOUND' "$work/local.out"; then
    echo "FAIL: baseline found no solutions in $ticks ticks"
    cat "$work/local.log"
    exit 1
fi

port=$((20000 + $$ % 20000))
start_daemon

"$bin" -batch "$work/pow.v" -ticks "$ticks" \
    -remote-engine "127.0.0.1:$port" -supervise >"$work/client.log" 2>&1 &
client_pid=$!

# Two kill/recover cycles. Each: wait for fresh miner output (proof the
# current hosting actually serves traffic), SIGKILL the daemon, wait for
# the breaker to trip and fail the engines over, restart the daemon over
# its journal, and wait for the re-host.
cycle=1
while [ "$cycle" -le 2 ]; do
    wait_for "$cycle" '^FOUND' "$work/client.log" "miner output (cycle $cycle)"
    kill -9 "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=
    wait_for "$cycle" 'failed over to local software' "$work/client.log" \
        "failover $cycle"
    start_daemon
    wait_for "$cycle" 're-hosted on' "$work/client.log" "re-host $cycle"
    cycle=$((cycle + 1))
done

if ! wait "$client_pid"; then
    echo "FAIL: supervised client exited non-zero"
    cat "$work/client.log"
    exit 1
fi
client_pid=

grep -v '^\[cascade\]' "$work/client.log" >"$work/client.out"
if ! cmp -s "$work/local.out" "$work/client.out"; then
    echo "FAIL: chaos-run output diverges from the fault-free baseline"
    diff "$work/local.out" "$work/client.out" || true
    exit 1
fi
failovers=$(grep -c 'failed over to local software' "$work/client.log")
rehosts=$(grep -c 're-hosted on' "$work/client.log")
echo "chaos smoke ok: $(grep -c '^FOUND' "$work/client.out") solutions identical" \
    "through $failovers failover(s) and $rehosts re-host(s)"
