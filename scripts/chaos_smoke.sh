#!/bin/sh
# Chaos smoke (CI): the end-to-end self-healing drill. Run the §6.1
# proof-of-work miner with its user engines hosted on a supervised
# cascade-engined daemon, SIGKILL the daemon twice mid-run, restart it
# over its journal each time, and assert that
#   (a) the client failed over to local engines both times,
#   (b) it re-hosted onto the resumed daemon both times, and
#   (c) every $display byte matches the fault-free local baseline
# (DESIGN.md key invariant 14, end to end with real processes).
# Must run from the repo root (generates the workload with go run).
# Usage: chaos_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: chaos_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: chaos_smoke.sh <cascade-binary> <cascade-engined-binary>}
. "$(dirname "$0")/lib.sh"
smoke_init
client_pid=

# The workload must be $finish-bounded, not tick-bounded: every failover
# deliberately drops one clock edge (the engine resumes from the last
# committed step), so the chaos run needs a few more ticks than the
# baseline to produce the same output sequence — invariant 14 equates
# outputs, not clocks. Mining stops at the fifth solution.
ticks=60000
go run ./scripts/genpow > "$work/pow.v"
cat >> "$work/pow.v" <<'PROG'
reg prev_found = 0;
reg [31:0] prev_sol = 0;
reg [2:0] nfound = 0;
always @(posedge clk.val) begin
  prev_found <= found;
  prev_sol <= sol;
  if ((found && !prev_found) || (found && sol != prev_sol)) begin
    nfound <= nfound + 1;
    if (nfound == 4) $finish;
  end
end
PROG

# Fault-free baseline: same program, same tick budget, local engines.
"$bin" -batch "$work/pow.v" -ticks "$ticks" >"$work/local.log" 2>&1
strip_status "$work/local.log" "$work/local.out"
if ! grep -q '^FOUND' "$work/local.out"; then
    echo "FAIL: baseline found no solutions in $ticks ticks"
    cat "$work/local.log"
    exit 1
fi

smoke_port 20000
start_daemon "$work/daemon.log" -journal "$work/journal"

"$bin" -batch "$work/pow.v" -ticks "$ticks" \
    -remote-engine "127.0.0.1:$port" -supervise >"$work/client.log" 2>&1 &
client_pid=$!
smoke_track "$client_pid"

# Two kill/recover cycles. Each: wait for fresh miner output (proof the
# current hosting actually serves traffic), SIGKILL the daemon, wait for
# the breaker to trip and fail the engines over, restart the daemon over
# its journal, and wait for the re-host. The client log holds the
# supervision trail, so waits watch the client process.
cycle=1
while [ "$cycle" -le 2 ]; do
    wait_count "$cycle" '^FOUND' "$work/client.log" \
        "miner output (cycle $cycle)" "$client_pid"
    kill_daemon
    wait_count "$cycle" 'failed over to local software' "$work/client.log" \
        "failover $cycle" "$client_pid"
    start_daemon "$work/daemon.log" -journal "$work/journal"
    wait_count "$cycle" 're-hosted on' "$work/client.log" \
        "re-host $cycle" "$client_pid"
    cycle=$((cycle + 1))
done

if ! wait "$client_pid"; then
    echo "FAIL: supervised client exited non-zero"
    cat "$work/client.log"
    exit 1
fi
client_pid=

strip_status "$work/client.log" "$work/client.out"
assert_same_output "$work/local.out" "$work/client.out" \
    "chaos-run output diverges from the fault-free baseline"
failovers=$(grep -c 'failed over to local software' "$work/client.log")
rehosts=$(grep -c 're-hosted on' "$work/client.log")
echo "chaos smoke ok: $(grep -c '^FOUND' "$work/client.out") solutions identical" \
    "through $failovers failover(s) and $rehosts re-host(s)"
