# scripts/lib.sh: shared plumbing for the CI smoke scripts — workdir +
# cleanup trap, daemon start/SIGKILL, log polling, and the output-diff
# assertions every smoke ends with. POSIX sh; source it right after
# parsing arguments:
#
#   . "$(dirname "$0")/lib.sh"
#   smoke_init                  # $work + cleanup trap
#   smoke_port 20000            # $port, offset by PID for parallel CI
#   start_daemon "$work/daemon.log" -journal "$work/j"   # $daemon_pid
#
# Helpers expect $engined to name the cascade-engined binary when
# daemons are involved. Background processes registered with
# smoke_track (start_daemon does it for you) are killed on exit.

smoke_pids=

# smoke_init: make the scratch dir ($work) and install the cleanup trap.
smoke_init() {
    work=$(mktemp -d)
    trap smoke_cleanup EXIT
}

smoke_cleanup() {
    for p in $smoke_pids; do kill "$p" 2>/dev/null || true; done
    [ -n "${work:-}" ] && rm -rf "$work"
}

# smoke_track <pid>: kill this process on exit.
smoke_track() {
    smoke_pids="$smoke_pids $1"
}

# smoke_port <base>: pick $port offset by the PID — binding :0 first is
# racy from sh, and the offset keeps parallel CI jobs apart.
smoke_port() {
    port=$(( ${1:-20000} + $$ % 20000 ))
}

# wait_count <want> <pattern> <file> <what> [watch_pid]: poll until
# pattern appears at least want times in file, failing loudly (with the
# file's tail) on timeout. With watch_pid, a watched process exiting
# before the pattern lands is also a failure — unless the pattern is
# already there (it may legitimately have finished).
wait_count() {
    wc_want=$1; wc_pattern=$2; wc_file=$3; wc_what=$4; wc_watch=${5:-}
    i=0
    while [ "$(grep -c "$wc_pattern" "$wc_file" 2>/dev/null || true)" -lt "$wc_want" ]; do
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "FAIL: timed out waiting for $wc_what"
            tail -40 "$wc_file" 2>/dev/null || true
            exit 1
        fi
        if [ -n "$wc_watch" ] && ! kill -0 "$wc_watch" 2>/dev/null; then
            if [ "$(grep -c "$wc_pattern" "$wc_file" 2>/dev/null || true)" -lt "$wc_want" ]; then
                echo "FAIL: process exited before $wc_what"
                tail -40 "$wc_file" 2>/dev/null || true
                exit 1
            fi
            return
        fi
        sleep 0.1
    done
}

# start_daemon <logfile> [daemon args...]: start $engined listening on
# 127.0.0.1:$port with the extra args, truncating the log first (restart
# cycles reuse it), and wait until it accepts. Sets $daemon_pid.
start_daemon() {
    sd_log=$1; shift
    : > "$sd_log"
    "$engined" -listen "127.0.0.1:$port" "$@" >"$sd_log" 2>&1 &
    daemon_pid=$!
    smoke_track "$daemon_pid"
    wait_count 1 "listening on" "$sd_log" "daemon startup"
}

# kill_daemon [pid]: SIGKILL the daemon (default $daemon_pid) and reap it.
kill_daemon() {
    kd_pid=${1:-$daemon_pid}
    kill -9 "$kd_pid" 2>/dev/null || true
    wait "$kd_pid" 2>/dev/null || true
    daemon_pid=
}

# strip_status <log> <out>: drop the runtime's [cascade] status lines,
# which legitimately differ across hosting arrangements (promotion
# happens on different fabrics); every remaining byte must match.
strip_status() {
    grep -v '^\[cascade\]' "$1" >"$2"
}

# ticks_of <log>: extract the final tick count a batch run printed.
ticks_of() {
    sed -n 's/.*done: ticks=\([0-9]*\).*/\1/p' "$1"
}

# assert_same_output <a> <b> <label>: byte-compare two stripped outputs.
assert_same_output() {
    if ! cmp -s "$1" "$2"; then
        echo "FAIL: $3"
        diff "$1" "$2" || true
        exit 1
    fi
}

# assert_same_ticks <a.log> <b.log> <label>: final tick counts match.
assert_same_ticks() {
    at_a=$(ticks_of "$1"); at_b=$(ticks_of "$2")
    if [ -z "$at_a" ] || [ "$at_a" != "$at_b" ]; then
        echo "FAIL: $3: tick counts diverge: $at_a vs $at_b"
        exit 1
    fi
}
