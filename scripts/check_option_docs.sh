#!/bin/sh
# Option-doc lint (CI): every exported option constructor in options.go
# (WithX, DisableX, EagerSim, Native) must carry a doc comment that
# states its default and its interaction with the Features switches —
# the two things a caller cannot infer from the signature. Run from the
# repo root; exits non-zero listing offenders.
set -eu

file=${1:-options.go}
[ -f "$file" ] || { echo "check_option_docs: $file not found" >&2; exit 2; }

awk '
    /^\/\// { comment = comment $0 "\n"; next }
    /^func (With|Disable|EagerSim|Native)[A-Za-z]*\(/ {
        name = $2; sub(/\(.*/, "", name)
        if (comment == "")           bad[name] = "missing doc comment"
        else if (comment !~ /[Dd]efault/) bad[name] = "doc comment does not state the default"
        else if (comment !~ /Features/)   bad[name] = "doc comment does not state the Features interaction"
        total++
    }
    { comment = "" }
    END {
        if (total == 0) { print "check_option_docs: no option constructors found — wrong file?"; exit 2 }
        n = 0
        for (name in bad) { printf "%s: %s\n", name, bad[name]; n++ }
        if (n > 0) { printf "check_option_docs: %d of %d option constructors fail the doc contract\n", n, total; exit 1 }
        printf "check_option_docs: %d option constructors OK\n", total
    }
' "$file"
