// Command genpow prints the §6.1 proof-of-work miner as plain Verilog:
// the native_smoke.sh workload. Target 1-in-32 so solutions stream out
// through $display at a steady clip on every tier.
package main

import (
	"fmt"

	"cascade/internal/workloads/pow"
)

func main() {
	cfg := pow.DefaultConfig()
	cfg.Target = 0x08000000
	cfg.Display = true
	fmt.Println(pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
`)
}
