#!/bin/sh
# Multi-tenant smoke (CI): boot one cascade-engined daemon, run three
# different programs as three *concurrent* private sessions on it — one
# of them with injected transport faults — and diff each program's
# output against its own single-tenant (in-process, fault-free) run.
# Sharing a daemon, losing fabric to neighbours, and absorbing injected
# drops must all be invisible: every $display byte and the final tick
# count must be identical per program.
# Usage: multitenant_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: multitenant_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: multitenant_smoke.sh <cascade-binary> <cascade-engined-binary>}
. "$(dirname "$0")/lib.sh"
smoke_init

# Three distinct tenants: different programs, different output shapes.
cat > "$work/t1.v" <<'PROG'
reg [15:0] n = 1;
always @(posedge clk.val) begin
  n <= n + 7;
  if (n % 256 == 1) $display("t1 n=%d", n);
  if (n > 50000) $finish;
end
assign led.val = n[7:0];
PROG

cat > "$work/t2.v" <<'PROG'
reg [15:0] a = 0;
reg [15:0] b = 1;
always @(posedge clk.val) begin
  a <= b;
  b <= a + b;
  if (a % 89 == 0) $display("t2 fib=%d", a);
  if (a > 40000) $finish;
end
assign led.val = b[7:0];
PROG

cat > "$work/t3.v" <<'PROG'
reg [15:0] x = 1;
always @(posedge clk.val) begin
  x <= (x == 16'h4000) ? 1 : (x << 1);
  if (x == 1) $display("t3 wrap");
  if ($time > 30000) $finish;
end
assign led.val = x[7:0];
PROG

smoke_port 21000
start_daemon "$work/daemon.log"

# Single-tenant baselines: each program alone, in-process, fault-free.
for t in t1 t2 t3; do
  "$bin" -batch "$work/$t.v" -ticks 60000 >"$work/$t.solo.log" 2>&1
done

# The multi-tenant run: three concurrent sessions against one daemon,
# each with a private fabric region and one fair-share compile worker.
# Tenant 2 additionally gets deterministic injected transport drops
# (capped below the retry budget, so they cost retries, not output).
"$bin" -batch "$work/t1.v" -ticks 60000 -remote-engine "127.0.0.1:$port" \
  -session-quota 25000 -session-share 1 >"$work/t1.multi.log" 2>&1 &
p1=$!
"$bin" -batch "$work/t2.v" -ticks 60000 -remote-engine "127.0.0.1:$port" \
  -session-quota 25000 -session-share 1 \
  -fault-net 0.2 -fault-seed 42 >"$work/t2.multi.log" 2>&1 &
p2=$!
"$bin" -batch "$work/t3.v" -ticks 60000 -remote-engine "127.0.0.1:$port" \
  -session-quota 25000 -session-share 1 >"$work/t3.multi.log" 2>&1 &
p3=$!
fail=0
wait $p1 || { echo "FAIL: tenant t1 exited non-zero"; fail=1; }
wait $p2 || { echo "FAIL: tenant t2 exited non-zero"; fail=1; }
wait $p3 || { echo "FAIL: tenant t3 exited non-zero"; fail=1; }
if [ "$fail" -ne 0 ]; then
  for t in t1 t2 t3; do cat "$work/$t.multi.log"; done
  exit 1
fi

# Per tenant: program output and the final tick count must be
# byte-identical to the solo run.
for t in t1 t2 t3; do
  strip_status "$work/$t.solo.log" "$work/$t.solo.out"
  strip_status "$work/$t.multi.log" "$work/$t.multi.out"
  if ! grep -q "$t" "$work/$t.solo.out"; then
    echo "FAIL: $t solo run produced no output"
    cat "$work/$t.solo.log"
    exit 1
  fi
  assert_same_output "$work/$t.solo.out" "$work/$t.multi.out" \
    "$t multi-tenant output diverges from its solo run"
  assert_same_ticks "$work/$t.solo.log" "$work/$t.multi.log" "$t solo vs multi"
done

lines=$(cat "$work"/t?.solo.out | wc -l)
echo "multitenant smoke ok: 3 concurrent sessions (one fault-injected), $lines display lines identical to solo runs"
