#!/bin/sh
# Metrics smoke (CI): start a batch run with the observability endpoint
# enabled, scrape /metrics and /trace while it runs, and assert the core
# series are present and moving: compile-latency and transport-RTT
# histograms, the promotion counter, and the phase gauge.
# Usage: metrics_smoke.sh <path-to-cascade-binary>
set -eu

bin=${1:?usage: metrics_smoke.sh <cascade-binary>}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

cat > "$work/prog.v" <<'PROG'
reg [31:0] n = 0;
always @(posedge clk.val) n <= n + 1;
assign led.val = n[7:0];
PROG

# A fixed loopback port: the batch runner prints the bound address only
# through the REPL view, so pin it where curl can find it.
addr=127.0.0.1:39925

"$bin" -batch "$work/prog.v" -ticks 100000000 \
  -observe "$addr" >"$work/run.log" 2>&1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$work"' EXIT

# Wait for the endpoint to come up, then for the JIT to reach hardware
# (the compile-latency histogram fills when the bitstream lands).
i=0
while [ "$i" -lt 50 ]; do
  if curl -sf "http://$addr/metrics" >"$work/metrics.txt" 2>/dev/null &&
     grep -q '^cascade_compile_latency_virtual_seconds_count [1-9]' "$work/metrics.txt"; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: run exited before metrics appeared"
    cat "$work/run.log"
    exit 1
  fi
  i=$((i + 1))
  sleep 0.2
done

for series in \
  'cascade_compile_latency_virtual_seconds_bucket' \
  'cascade_compile_latency_virtual_seconds_count [1-9]' \
  'cascade_transport_roundtrip_seconds_bucket' \
  'cascade_settle_batch_makespan_virtual_seconds_count [1-9]' \
  'cascade_promotions_total [1-9]' \
  'cascade_events_total [1-9]' \
  'cascade_phase [1-9]'; do
  if ! grep -q "^$series" "$work/metrics.txt"; then
    echo "FAIL: /metrics is missing: $series"
    cat "$work/metrics.txt"
    exit 1
  fi
done

# The trace endpoint streams JSONL and must contain the hot swap.
curl -sf "http://$addr/trace" >"$work/trace.jsonl"
for kind in compile-submit bitstream-ready hot-swap phase; do
  if ! grep -q "\"kind\":\"$kind\"" "$work/trace.jsonl"; then
    echo "FAIL: /trace is missing a $kind event"
    cat "$work/trace.jsonl"
    exit 1
  fi
done

# pprof rides along on the same endpoint.
curl -sf "http://$addr/debug/pprof/cmdline" >/dev/null

kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "metrics smoke ok: $(grep -c '^cascade_' "$work/metrics.txt") sample lines, $(wc -l < "$work/trace.jsonl") trace events"
