#!/bin/sh
# Native-tier smoke (CI): run the §6.1 proof-of-work miner twice — once
# pinned to the interpreter (-no-jit), once with the native-Go JIT rung
# (-native-tier, compile-scale 1 keeps the fabric flow far beyond the
# tick budget) — and assert that (a) the engine was actually promoted to
# native code, (b) every $display solution matches bit for bit, and
# (c) the native run is measurably faster in wall-clock time.
# Usage: native_smoke.sh <path-to-cascade-binary>
set -eu

bin=${1:?usage: native_smoke.sh <cascade-binary>}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

ticks=30000
go run ./scripts/genpow > "$work/pow.v"

now_ms() { echo $(($(date +%s%N) / 1000000)); }

t0=$(now_ms)
"$bin" -batch "$work/pow.v" -ticks "$ticks" -no-jit \
  > "$work/interp.log" 2>&1
t1=$(now_ms)
"$bin" -batch "$work/pow.v" -ticks "$ticks" -native-tier -compile-scale 1 \
  > "$work/native.log" 2>&1
t2=$(now_ms)
interp_ms=$((t1 - t0))
native_ms=$((t2 - t1))

if ! grep -q 'promoted to native code' "$work/native.log"; then
  echo "FAIL: the native tier never took over the engine"
  cat "$work/native.log"
  exit 1
fi

grep '^FOUND' "$work/interp.log" > "$work/interp.found"
grep '^FOUND' "$work/native.log" > "$work/native.found"
if [ ! -s "$work/interp.found" ]; then
  echo "FAIL: the miner found no solutions in $ticks ticks"
  cat "$work/interp.log"
  exit 1
fi
if ! diff -u "$work/interp.found" "$work/native.found"; then
  echo "FAIL: native-tier solutions diverge from the interpreter's"
  exit 1
fi

# The measured gap is ~3.5x; require a comfortable 1.25x so scheduler
# jitter on a busy CI runner cannot flip the comparison.
if [ $((native_ms * 5)) -ge $((interp_ms * 4)) ]; then
  echo "FAIL: native tier not faster: interpreter ${interp_ms}ms vs native ${native_ms}ms"
  exit 1
fi

echo "native smoke ok: $(wc -l < "$work/interp.found") solutions identical;" \
  "interpreter ${interp_ms}ms, native ${native_ms}ms ($(((interp_ms * 10) / native_ms))x/10)"
