#!/bin/sh
# Remote-engine smoke (CI): start a cascade-engined daemon, run the same
# batch program twice — once with in-process engines, once with user
# engines hosted on the daemon — and assert byte-identical program
# output. The engine protocol must be invisible to the program.
# Usage: remote_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: remote_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: remote_smoke.sh <cascade-binary> <cascade-engined-binary>}
. "$(dirname "$0")/lib.sh"
smoke_init

cat > "$work/prog.v" <<'PROG'
reg [15:0] n = 1;
always @(posedge clk.val) begin
  n <= n + 7;
  if (n % 256 == 1) $display("n=%d", n);
  if (n > 60000) $finish;
end
assign led.val = n[7:0];
PROG

smoke_port 20000
start_daemon "$work/daemon.log"

"$bin" -batch "$work/prog.v" -ticks 20000 >"$work/local.log" 2>&1
"$bin" -batch "$work/prog.v" -ticks 20000 \
  -remote-engine "127.0.0.1:$port" >"$work/remote.log" 2>&1

# Compare program output only: every $display byte and the final tick
# count must be identical.
strip_status "$work/local.log" "$work/local.out"
strip_status "$work/remote.log" "$work/remote.out"
if ! grep -q "n=" "$work/local.out"; then
  echo "FAIL: local run produced no output"
  cat "$work/local.log"
  exit 1
fi
assert_same_output "$work/local.out" "$work/remote.out" \
  "remote program output diverges from local"
assert_same_ticks "$work/local.log" "$work/remote.log" "remote vs local"
echo "remote smoke ok: $(grep -c 'n=' "$work/local.out") display lines identical, ticks=$(ticks_of "$work/local.log")"
