#!/bin/sh
# Remote-engine smoke (CI): start a cascade-engined daemon, run the same
# batch program twice — once with in-process engines, once with user
# engines hosted on the daemon — and assert byte-identical program
# output. The engine protocol must be invisible to the program.
# Usage: remote_smoke.sh <path-to-cascade-binary> <path-to-engined-binary>
set -eu

bin=${1:?usage: remote_smoke.sh <cascade-binary> <cascade-engined-binary>}
engined=${2:?usage: remote_smoke.sh <cascade-binary> <cascade-engined-binary>}
work=$(mktemp -d)
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

cat > "$work/prog.v" <<'PROG'
reg [15:0] n = 1;
always @(posedge clk.val) begin
  n <= n + 7;
  if (n % 256 == 1) $display("n=%d", n);
  if (n > 60000) $finish;
end
assign led.val = n[7:0];
PROG

# Pick a port by binding :0 first is racy from sh; use a fixed high port
# offset by the PID to keep parallel CI jobs apart.
port=$((20000 + $$ % 20000))
"$engined" -listen "127.0.0.1:$port" >"$work/daemon.log" 2>&1 &
daemon_pid=$!

# Wait for the daemon to accept.
i=0
while ! grep -q "listening on" "$work/daemon.log" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon did not come up"
    cat "$work/daemon.log"
    exit 1
  fi
  sleep 0.1
done

"$bin" -batch "$work/prog.v" -ticks 20000 >"$work/local.log" 2>&1
"$bin" -batch "$work/prog.v" -ticks 20000 \
  -remote-engine "127.0.0.1:$port" >"$work/remote.log" 2>&1

# Compare program output only: the runtime's [cascade] status lines
# legitimately differ (JIT promotion happens on the daemon's fabric in
# the remote run), but every $display byte and the final tick count must
# be identical.
grep -v '^\[cascade\]' "$work/local.log" >"$work/local.out"
grep -v '^\[cascade\]' "$work/remote.log" >"$work/remote.out"
if ! grep -q "n=" "$work/local.out"; then
  echo "FAIL: local run produced no output"
  cat "$work/local.log"
  exit 1
fi
if ! cmp -s "$work/local.out" "$work/remote.out"; then
  echo "FAIL: remote program output diverges from local"
  diff "$work/local.out" "$work/remote.out" || true
  exit 1
fi
ticks_local=$(sed -n 's/.*done: ticks=\([0-9]*\).*/\1/p' "$work/local.log")
ticks_remote=$(sed -n 's/.*done: ticks=\([0-9]*\).*/\1/p' "$work/remote.log")
if [ -z "$ticks_local" ] || [ "$ticks_local" != "$ticks_remote" ]; then
  echo "FAIL: tick counts diverge: local=$ticks_local remote=$ticks_remote"
  exit 1
fi
echo "remote smoke ok: $(grep -c 'n=' "$work/local.out") display lines identical, ticks=$ticks_local"
