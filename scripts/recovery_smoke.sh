#!/bin/sh
# Recovery smoke (CI): start a batch run with crash-safe persistence,
# SIGKILL it mid-run, restart over the same directory, and assert the
# process resumed where the journal left off instead of starting over.
# Usage: recovery_smoke.sh <path-to-cascade-binary>
set -eu

bin=${1:?usage: recovery_smoke.sh <cascade-binary>}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# Share CI's persistent bitstream store when it names one, so the
# restarted process (and the later bench step) re-reach hardware at
# cache-hit latency instead of re-running place-and-route.
bits=${CASCADE_BITS_DIR:-$work/bits}

cat > "$work/prog.v" <<'PROG'
reg [31:0] n = 0;
always @(posedge clk.val) n <= n + 1;
assign led.val = n[7:0];
PROG

"$bin" -batch "$work/prog.v" -ticks 100000000 \
  -checkpoint-dir "$work/ckpt" -checkpoint-every 256 \
  -cache-dir "$bits" >"$work/first.log" 2>&1 &
pid=$!
sleep 3
if ! kill -9 "$pid" 2>/dev/null; then
  echo "FAIL: run finished before the kill"
  cat "$work/first.log"
  exit 1
fi
wait "$pid" 2>/dev/null || true

"$bin" -batch "$work/prog.v" -ticks 1 \
  -checkpoint-dir "$work/ckpt" -checkpoint-every 256 \
  -cache-dir "$bits" >"$work/second.log" 2>&1

if ! grep -q "recovered: ticks=" "$work/second.log"; then
  echo "FAIL: restart did not recover"
  cat "$work/second.log"
  exit 1
fi
resumed=$(sed -n 's/.*recovered: ticks=\([0-9]*\).*/\1/p' "$work/second.log")
if [ "$resumed" -le 0 ]; then
  echo "FAIL: resumed at tick 0"
  cat "$work/second.log"
  exit 1
fi
echo "recovery smoke ok: resumed at tick $resumed"
