package cascade

import "cascade/internal/obsv"

// Option configures a Runtime at construction (cascade.New). Options
// compose left to right; everything left unset gets a paper-calibrated
// default. The same knobs remain reachable through an Options struct
// literal and NewWithOptions — the two construction paths yield
// identical runtimes.
type Option func(*Options)

// buildOptions folds a list of functional options into an Options value.
func buildOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithOptions overlays a whole Options struct (escape hatch for callers
// that already hold one); later options still apply on top.
func WithOptions(o Options) Option {
	return func(dst *Options) { *dst = o }
}

// WithWorld supplies the virtual peripheral board the program's stdlib
// components (LEDs, pads, streams) attach to.
func WithWorld(w *World) Option {
	return func(o *Options) { o.World = w }
}

// WithDevice targets a specific simulated FPGA.
func WithDevice(d *Device) Option {
	return func(o *Options) { o.Device = d }
}

// WithToolchain supplies the vendor-flow model (and its bitstream
// cache); sharing one Toolchain across runtimes shares the cache.
func WithToolchain(tc *Toolchain) Option {
	return func(o *Options) { o.Toolchain = tc }
}

// WithTimeModel overrides the virtual-time cost model.
func WithTimeModel(m TimeModel) Option {
	return func(o *Options) { o.Model = m }
}

// WithView directs program output and runtime status to v.
func WithView(v View) Option {
	return func(o *Options) { o.View = v }
}

// WithFeatures overlays the whole feature/ablation switch block.
func WithFeatures(f Features) Option {
	return func(o *Options) { o.Features = f }
}

// WithParallelism bounds how many engines a scheduler batch dispatches
// to concurrently. 0 means one lane per CPU; 1 runs batches serially.
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithOpenLoopTarget sets the adaptive open-loop profiling target: each
// burst should stall the runtime for about this much virtual time.
func WithOpenLoopTarget(ps uint64) Option {
	return func(o *Options) { o.OpenLoopTargetPs = ps }
}

// WithPersistence enables crash-safe persistence rooted at dir: durable
// checkpoints on the default cadence plus a write-ahead side-effect
// journal between them. Only cascade.Open honors it — Open also
// recovers whatever state a previous process left in dir. Use
// WithPersistenceOptions to tune cadence, retention, and sync policy.
func WithPersistence(dir string) Option {
	return func(o *Options) {
		if o.Persist == nil {
			o.Persist = &PersistOptions{}
		}
		o.Persist.Dir = dir
	}
}

// WithPersistenceOptions overlays the whole persistence configuration
// (directory, checkpoint cadence, retention, fsync policy).
func WithPersistenceOptions(po PersistOptions) Option {
	return func(o *Options) { o.Persist = &po }
}

// WithRemoteEngine hosts the program's user engines on a cascade-engined
// daemon at addr (host:port) instead of in-process: subprograms are
// shipped over the engine protocol at integration time, every ABI
// interaction becomes a billed TCP round-trip, and JIT promotion happens
// on the daemon's own fabric. Stdlib peripherals always stay local.
// Tune timeouts and the retry budget with WithRemoteEngineOptions.
func WithRemoteEngine(addr string) Option {
	return func(o *Options) {
		if o.Remote == nil {
			o.Remote = &RemoteOptions{}
		}
		o.Remote.Addr = addr
	}
}

// WithRemoteEngineOptions overlays the whole remote-engine configuration
// (address, dial/call timeouts, retry budget).
func WithRemoteEngineOptions(ro RemoteOptions) Option {
	return func(o *Options) { o.Remote = &ro }
}

// WithObservability builds a fresh observability hub from oo and wires
// it through the whole pipeline: the runtime's lifecycle (phase
// transitions, hot swaps, evictions, checkpoints), the toolchain's
// compile events and latency histogram, the fault injector's sites, and
// every transport's round-trip counters. When oo.Addr is non-empty the
// runtime serves /metrics (Prometheus text), /trace (JSONL), and
// /debug/pprof there as soon as it is constructed — read the bound
// address from rt.Observer().HTTPAddr() (use "127.0.0.1:0" to pick a
// free port). A nil observer — the default — disables all of it at
// near-zero cost.
func WithObservability(oo ObservabilityOptions) Option {
	return func(o *Options) { o.Observer = obsv.New(oo) }
}

// WithObserver wires an existing Observer instead of building one: share
// a hub (and its metrics registry) across several runtimes, or between a
// runtime and an embedded EngineHost.
func WithObserver(ob *Observer) Option {
	return func(o *Options) { o.Observer = ob }
}

// WithFaultInjector wires a deterministic fault injector into the
// toolchain, the device, and the hardware engines: flaky compiles retry
// with capped virtual-time backoff, and a faulted hardware engine
// degrades back to software between steps (the reverse hot-swap) while
// the JIT recompiles. Same seed, same fault schedule, same session.
func WithFaultInjector(inj *FaultInjector) Option {
	return func(o *Options) { o.Injector = inj }
}

// DisableJIT keeps the program in software engines forever (the paper's
// simulation-only baseline).
func DisableJIT() Option {
	return func(o *Options) { o.Features.DisableJIT = true }
}

// EagerSim switches the software engines to naive eager re-evaluation
// (the iVerilog-style baseline of §5.1).
func EagerSim() Option {
	return func(o *Options) { o.Features.EagerSim = true }
}

// DisableInline compiles subprograms separately instead of inlining them
// into one engine (§4.2 ablation).
func DisableInline() Option {
	return func(o *Options) { o.Features.DisableInline = true }
}

// DisableForwarding keeps stdlib engines directly scheduled instead of
// absorbing them into the user hardware engine (§4.3 ablation).
func DisableForwarding() Option {
	return func(o *Options) { o.Features.DisableForwarding = true }
}

// DisableOpenLoop stays in lock-step hardware scheduling (§4.4 ablation).
func DisableOpenLoop() Option {
	return func(o *Options) { o.Features.DisableOpenLoop = true }
}

// Native compiles the program exactly as written, with no ABI wrapper
// (§4.5): full fabric speed, no mid-run Eval, no state migration.
func Native() Option {
	return func(o *Options) { o.Features.Native = true }
}
