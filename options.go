package cascade

import "cascade/internal/obsv"

// Option configures a Runtime at construction (cascade.New). Options
// compose left to right; everything left unset gets a paper-calibrated
// default. The same knobs remain reachable through an Options struct
// literal and NewWithOptions — the two construction paths yield
// identical runtimes.
type Option func(*Options)

// buildOptions folds a list of functional options into an Options value.
func buildOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithOptions overlays a whole Options struct (escape hatch for callers
// that already hold one); later options still apply on top. Default:
// the zero Options. Replaces everything set so far, Features included.
func WithOptions(o Options) Option {
	return func(dst *Options) { *dst = o }
}

// WithWorld supplies the virtual peripheral board the program's stdlib
// components (LEDs, pads, streams) attach to. Default: a fresh empty
// World. Independent of Features.
func WithWorld(w *World) Option {
	return func(o *Options) { o.World = w }
}

// WithDevice targets a specific simulated FPGA. Default: a Cyclone V
// (110K LEs at 50 MHz, the paper's board). With Features.DisableJIT
// the device is never programmed but still bounds area accounting.
func WithDevice(d *Device) Option {
	return func(o *Options) { o.Device = d }
}

// WithToolchain supplies the vendor-flow model (and its bitstream
// cache); sharing one Toolchain across runtimes shares the cache.
// Default: a fresh toolchain with paper-calibrated latencies over the
// runtime's device. Unused when Features.DisableJIT is set.
func WithToolchain(tc *Toolchain) Option {
	return func(o *Options) { o.Toolchain = tc }
}

// WithTimeModel overrides the virtual-time cost model. Default: the
// paper-calibrated model (vclock.DefaultModel). Applies in every
// Features mode — ablations change which costs occur, not their rates.
func WithTimeModel(m TimeModel) Option {
	return func(o *Options) { o.Model = m }
}

// WithView directs program output and runtime status to v. Default: a
// quiet BufView that records output without printing. Independent of
// Features.
func WithView(v View) Option {
	return func(o *Options) { o.View = v }
}

// WithFeatures overlays the whole feature/ablation switch block,
// replacing any previously applied DisableJIT/EagerSim/DisableInline/
// DisableForwarding/DisableOpenLoop/Native. Default: the zero Features
// — full JIT, quiet-state simulation, inlining, forwarding, open loop.
func WithFeatures(f Features) Option {
	return func(o *Options) { o.Features = f }
}

// WithParallelism bounds how many engines a scheduler batch dispatches
// to concurrently. Default 0: one lane per CPU; 1 runs batches
// serially. Moot once Features.Native or inlining collapses the
// program to a single engine.
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithOpenLoopTarget sets the adaptive open-loop profiling target: each
// burst should stall the runtime for about this much virtual time.
// Default: 100 virtual milliseconds. Irrelevant when
// Features.DisableOpenLoop (or DisableJIT) keeps the runtime in
// lock-step scheduling.
func WithOpenLoopTarget(ps uint64) Option {
	return func(o *Options) { o.OpenLoopTargetPs = ps }
}

// WithPersistence enables crash-safe persistence rooted at dir: durable
// checkpoints on the default cadence plus a write-ahead side-effect
// journal between them. Only cascade.Open honors it — Open also
// recovers whatever state a previous process left in dir. Use
// WithPersistenceOptions to tune cadence, retention, and sync policy.
// Default: no persistence. Works in every Features mode except Native,
// which has no state-capture surface to checkpoint.
func WithPersistence(dir string) Option {
	return func(o *Options) {
		if o.Persist == nil {
			o.Persist = &PersistOptions{}
		}
		o.Persist.Dir = dir
	}
}

// WithPersistenceOptions overlays the whole persistence configuration
// (directory, checkpoint cadence, retention, fsync policy). Default:
// no persistence; Features caveats as for WithPersistence.
func WithPersistenceOptions(po PersistOptions) Option {
	return func(o *Options) { o.Persist = &po }
}

// WithRemoteEngine hosts the program's user engines on a cascade-engined
// daemon at addr (host:port) instead of in-process: subprograms are
// shipped over the engine protocol at integration time, every ABI
// interaction becomes a billed TCP round-trip, and JIT promotion happens
// on the daemon's own fabric. Stdlib peripherals always stay local.
// Tune timeouts and the retry budget with WithRemoteEngineOptions.
// Default: no remote — engines run in-process. Features.EagerSim and
// DisableJIT ship to the daemon with each spawn; forwarding and
// open-loop phases require in-process hardware and are skipped.
func WithRemoteEngine(addr string) Option {
	return func(o *Options) {
		if o.Remote == nil {
			o.Remote = &RemoteOptions{}
		}
		o.Remote.Addr = addr
	}
}

// WithRemoteEngineOptions overlays the whole remote-engine configuration
// (address, dial/call timeouts, retry budget, session quota). Default:
// no remote — engines run in-process. Combine with WithFeatures as for
// WithRemoteEngine.
func WithRemoteEngineOptions(ro RemoteOptions) Option {
	return func(o *Options) { o.Remote = &ro }
}

// WithRemoteSession opts the remote-engine connection into a private
// daemon session: before the first spawn the daemon carves a fabric
// region of quotaLEs for this runtime's engines and bounds its compile
// workers to share (0: global pool only), isolating it from the
// daemon's other clients. Default: sessionless — all clients of the
// daemon share its fabric. Requires WithRemoteEngine (it has no effect
// on in-process engines); Features apply as for WithRemoteEngine.
func WithRemoteSession(quotaLEs, share int) Option {
	return func(o *Options) {
		if o.Remote == nil {
			o.Remote = &RemoteOptions{}
		}
		o.Remote.SessionQuotaLEs = quotaLEs
		o.Remote.SessionShare = share
	}
}

// WithSupervision makes the remote-engine placement self-healing
// (internal/supervise): virtual-time liveness probes over the engine
// protocol, a per-host circuit breaker that opens after consecutive
// round-trip failures, automatic failover of remote engines onto local
// software engines re-seeded from their last committed state, and
// automatic re-hosting once the daemon answers probes again. A zero
// SuperviseOptions takes the defaults: 100 virtual ms probe cadence,
// 2-failure trip threshold, 2 virtual s reopen timeout. Default: no
// supervision — remote engines fail hard once the retry budget is
// spent. Only acts alongside WithRemoteEngine; Features apply as for
// WithRemoteEngine.
func WithSupervision(so SuperviseOptions) Option {
	return func(o *Options) { o.Supervise = &so }
}

// WithObservability builds a fresh observability hub from oo and wires
// it through the whole pipeline: the runtime's lifecycle (phase
// transitions, hot swaps, evictions, checkpoints), the toolchain's
// compile events and latency histogram, the fault injector's sites, and
// every transport's round-trip counters. When oo.Addr is non-empty the
// runtime serves /metrics (Prometheus text), /trace (JSONL), and
// /debug/pprof there as soon as it is constructed — read the bound
// address from rt.Observer().HTTPAddr() (use "127.0.0.1:0" to pick a
// free port). A nil observer — the default — disables all of it at
// near-zero cost. Observability is pure measurement: it works
// identically in every Features mode and never perturbs virtual time.
func WithObservability(oo ObservabilityOptions) Option {
	return func(o *Options) { o.Observer = obsv.New(oo) }
}

// WithObserver wires an existing Observer instead of building one: share
// a hub (and its metrics registry) across several runtimes, or between a
// runtime and an embedded EngineHost. Default: nil (observability
// disabled); Features interaction as for WithObservability.
func WithObserver(ob *Observer) Option {
	return func(o *Options) { o.Observer = ob }
}

// WithFaultInjector wires a deterministic fault injector into the
// toolchain, the device, and the hardware engines: flaky compiles retry
// with capped virtual-time backoff, and a faulted hardware engine
// degrades back to software between steps (the reverse hot-swap) while
// the JIT recompiles. Same seed, same fault schedule, same session.
// Default: nil (no faults). With Features.DisableJIT only the bus and
// network surfaces can fire — no compiles or placements happen.
func WithFaultInjector(inj *FaultInjector) Option {
	return func(o *Options) { o.Injector = inj }
}

// DisableJIT keeps the program in software engines forever (the paper's
// simulation-only baseline). Default: off — full JIT. Sets
// Features.DisableJIT; the later feature switches DisableInline,
// DisableForwarding, and DisableOpenLoop become moot (they ablate
// stages the JIT never reaches).
func DisableJIT() Option {
	return func(o *Options) { o.Features.DisableJIT = true }
}

// EagerSim switches the software engines to naive eager re-evaluation
// (the iVerilog-style baseline of §5.1). Default: off — quiet-state
// event-driven simulation. Sets Features.EagerSim; composes with every
// other switch (it changes only the software engines' inner loop).
func EagerSim() Option {
	return func(o *Options) { o.Features.EagerSim = true }
}

// DisableInline compiles subprograms separately instead of inlining them
// into one engine (§4.2 ablation). Default: off — subprograms inline.
// Sets Features.DisableInline; no effect under DisableJIT or Native.
func DisableInline() Option {
	return func(o *Options) { o.Features.DisableInline = true }
}

// DisableForwarding keeps stdlib engines directly scheduled instead of
// absorbing them into the user hardware engine (§4.3 ablation).
// Default: off — peripherals forward. Sets Features.DisableForwarding;
// no effect under DisableJIT or Native, and it implicitly prevents the
// open-loop phase (which requires a fully forwarded program).
func DisableForwarding() Option {
	return func(o *Options) { o.Features.DisableForwarding = true }
}

// DisableOpenLoop stays in lock-step hardware scheduling (§4.4
// ablation). Default: off — a fully forwarded program enters open-loop
// bursts. Sets Features.DisableOpenLoop; no effect under DisableJIT,
// DisableForwarding, or Native.
func DisableOpenLoop() Option {
	return func(o *Options) { o.Features.DisableOpenLoop = true }
}

// Native compiles the program exactly as written, with no ABI wrapper
// (§4.5): full fabric speed, no mid-run Eval, no state migration.
// Default: off. Sets Features.Native, which supersedes every other
// Features switch — there is no software phase to ablate.
func Native() Option {
	return func(o *Options) { o.Features.Native = true }
}

// WithCompileFarm shards the runtime's fabric compile flows across a
// farm of workers: rendezvous-hash routing on netlist fingerprints, a
// replicated bitstream cache with peer fetch, bounded per-shard queues
// with deterministic job-steal, and seeded outage schedules
// (SeededShardOutages) for testing. A zero FarmOptions takes the
// defaults — two in-process workers, depth-8 queues, two cache
// replicas; set Links (DialCompileFarm) to shard onto remote
// cascade-engined -compile-worker daemons instead. The farm installs
// on the runtime's Toolchain; on a shared toolchain that already
// carries one (WithToolchain across runtimes, or a hypervisor) the
// existing farm is kept. Default: no farm — the in-process local
// backend compiles everything. Works in every Features mode that
// compiles (moot under DisableJIT); Features.NativeTier jobs always
// compile locally — only fabric flows shard.
func WithCompileFarm(fo FarmOptions) Option {
	return func(o *Options) { o.Farm = &fo }
}

// WithNativeTier adds a middle rung to the JIT ladder: alongside the
// fabric flow, each subprogram is compiled to closure-threaded Go
// (internal/njit) and hot-swapped in place of the interpreter within
// virtual milliseconds, long before the bitstream arrives; a
// native-tier fault demotes the engine back to the interpreter.
// Default: off — the classic interpreter-until-hardware ladder. Sets
// Features.NativeTier; no effect under DisableJIT (no compiles run) or
// with a remote engine daemon (tiering happens daemon-side).
func WithNativeTier() Option {
	return func(o *Options) { o.Features.NativeTier = true }
}
