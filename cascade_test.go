package cascade

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// fastOptions returns options whose virtual toolchain compiles almost
// instantly, so facade tests exercise the full JIT quickly.
func fastOptions() []Option {
	dev := NewCycloneV()
	tco := DefaultToolchainOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	return []Option{
		WithDevice(dev),
		WithToolchain(NewToolchain(dev, tco)),
		WithOpenLoopTarget(10_000_000),
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	rt := New(fastOptions()...)
	if err := rt.Eval(DefaultPrelude); err != nil {
		t.Fatal(err)
	}
	if err := rt.Eval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= (cnt == 8'h80) ? 1 : (cnt << 1);
        assign led.val = cnt;
    `); err != nil {
		t.Fatal(err)
	}
	rt.RunTicks(1000)
	if rt.Phase() != PhaseOpenLoop {
		t.Fatalf("phase %v", rt.Phase())
	}
	if led := rt.World().Led("main.led"); led == 0 {
		t.Fatal("led never driven")
	}
	if !strings.Contains(rt.ProgramSource(), "cnt") {
		t.Fatal("program source introspection broken")
	}
	st := rt.Stats()
	if st.Phase != PhaseOpenLoop || st.Ticks == 0 || st.Time.NowPs == 0 {
		t.Fatalf("stats snapshot inconsistent: %+v", st)
	}
	if st.Compile.CacheMisses == 0 {
		t.Fatalf("JIT ran but compile stats empty: %+v", st.Compile)
	}
}

// TestOptionConformance checks that every functional option writes the
// same Options an equivalent struct literal would carry, so both
// construction paths yield identical runtimes.
func TestOptionConformance(t *testing.T) {
	world := NewWorld()
	dev := NewDevice(5000, 25_000_000)
	tc := NewToolchain(dev, DefaultToolchainOptions())
	model := TimeModel{SWEvalOpPs: 1, HWCyclePs: 2, HWCyclesPerIter: 3, MsgPs: 4, DispatchPs: 5}
	view := &BufView{Quiet: true}
	inj := NewFaultInjector(FaultConfig{Seed: 3})

	want := Options{
		World:     world,
		Device:    dev,
		Toolchain: tc,
		Model:     model,
		View:      view,
		Injector:  inj,
		Features: Features{
			DisableJIT:        true,
			EagerSim:          true,
			DisableInline:     true,
			DisableForwarding: true,
			DisableOpenLoop:   true,
			Native:            true,
		},
		Parallelism:      7,
		OpenLoopTargetPs: 123,
		Supervise:        &SuperviseOptions{ProbeIntervalPs: 5},
		Farm:             &FarmOptions{Workers: 3},
	}
	got := buildOptions([]Option{
		WithWorld(world),
		WithDevice(dev),
		WithToolchain(tc),
		WithTimeModel(model),
		WithView(view),
		DisableJIT(),
		EagerSim(),
		DisableInline(),
		DisableForwarding(),
		DisableOpenLoop(),
		Native(),
		WithParallelism(7),
		WithOpenLoopTarget(123),
		WithFaultInjector(inj),
		WithSupervision(SuperviseOptions{ProbeIntervalPs: 5}),
		WithCompileFarm(FarmOptions{Workers: 3}),
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("functional options diverge from struct literal:\n got %+v\nwant %+v", got, want)
	}
	// WithFeatures and WithOptions overlay wholesale.
	if got := buildOptions([]Option{WithFeatures(want.Features)}); got.Features != want.Features {
		t.Fatalf("WithFeatures: %+v", got.Features)
	}
	if got := buildOptions([]Option{WithOptions(want)}); !reflect.DeepEqual(got, want) {
		t.Fatalf("WithOptions: %+v", got)
	}

	// And the two construction paths behave identically.
	a := New(WithOptions(want))
	b := NewWithOptions(want)
	if a.Parallelism() != b.Parallelism() || a.Phase() != b.Phase() {
		t.Fatal("construction paths diverge")
	}
}

// TestNewWithOptionsAlias pins the collapse of the construction
// triplet: NewWithOptions(o) is exactly New(WithOptions(o)) — one
// options-resolution path — so both runtimes behave identically.
func TestNewWithOptionsAlias(t *testing.T) {
	// Each runtime gets its own fresh (but identically configured)
	// device/toolchain stack so neither perturbs the other's compile
	// cache or fabric.
	build := func() Options {
		o := buildOptions(fastOptions())
		o.View = &BufView{Quiet: true}
		o.Parallelism = 2
		o.Features = Features{DisableOpenLoop: true}
		return o
	}
	// The functional path resolves a struct literal unchanged...
	lit := build()
	if got := buildOptions([]Option{WithOptions(lit)}); !reflect.DeepEqual(got, lit) {
		t.Fatalf("WithOptions mutates the literal:\n got %+v\nwant %+v", got, lit)
	}
	// ...and the two constructors drive identical executions.
	prog := `
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= cnt + 3;
        assign led.val = cnt;
    `
	run := func(rt *Runtime) (uint64, Phase, uint64) {
		rt.MustEval(DefaultPrelude)
		rt.MustEval(prog)
		rt.RunTicks(200)
		return rt.World().Led("main.led"), rt.Phase(), rt.VirtualNow()
	}
	aLed, aPhase, aNow := run(New(WithOptions(build())))
	bLed, bPhase, bNow := run(NewWithOptions(build()))
	if aLed != bLed || aPhase != bPhase || aNow != bNow {
		t.Fatalf("construction paths diverge: led %d/%d phase %v/%v vnow %d/%d",
			aLed, bLed, aPhase, bPhase, aNow, bNow)
	}
}

// TestFacadeOptionPermutations checks order-independence of the three
// subsystem options: WithRemoteEngine, WithPersistence, and
// WithObservability touch disjoint Options fields, so every application
// order must resolve to identical Options.
func TestFacadeOptionPermutations(t *testing.T) {
	type entry struct {
		name string
		opt  Option
	}
	entries := []entry{
		{"remote", WithRemoteEngine("127.0.0.1:9000")},
		{"persist", WithPersistence("/tmp/cascade-perm")},
		{"observe", WithObservability(ObservabilityOptions{TraceCap: 64})},
	}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want Options
	for i, p := range perms {
		got := buildOptions([]Option{entries[p[0]].opt, entries[p[1]].opt, entries[p[2]].opt})
		// WithObservability builds a fresh hub per application; normalize
		// the pointer before comparing the rest.
		if got.Observer == nil {
			t.Fatalf("perm %v: observer not wired", p)
		}
		got.Observer = nil
		if got.Remote == nil || got.Remote.Addr != "127.0.0.1:9000" {
			t.Fatalf("perm %v: remote not wired: %+v", p, got.Remote)
		}
		if got.Persist == nil || got.Persist.Dir != "/tmp/cascade-perm" {
			t.Fatalf("perm %v: persistence not wired: %+v", p, got.Persist)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("perm %v resolves differently:\n got %+v\nwant %+v", p, got, want)
		}
	}
}

// TestFacadeServe drives the session API end to end through the public
// facade: a hypervisor over a shared fabric, two tenant sessions with
// private views, both reaching hardware with tenant-scoped stats.
func TestFacadeServe(t *testing.T) {
	tco := DefaultToolchainOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	hv, err := Serve(
		ServeDevice(NewDevice(40_000, 50_000_000)),
		ServeToolchainOptions(tco),
		ServeQuantum(50),
		ServeDefaultQuota(16_000),
		ServeDefaultCompileShare(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Close()

	views := [2]*BufView{{Quiet: true}, {Quiet: true}}
	for i, view := range views {
		s, err := hv.NewSession(
			SessionID(fmt.Sprintf("tenant%d", i)),
			SessionRuntime(WithParallelism(2), WithOpenLoopTarget(10_000_000)),
			SessionView(view),
		)
		if err != nil {
			t.Fatal(err)
		}
		s.MustEval(DefaultPrelude)
		s.MustEval(fmt.Sprintf(`
            reg [7:0] cnt = %d;
            always @(posedge clk.val) begin
                cnt <= cnt + 1;
                if (cnt == 8'd100) $display("tenant %d done");
            end
            assign led.val = cnt;
        `, i+1, i))
		s.RunTicks(400)
	}
	infos := hv.SessionInfos()
	if len(infos) != 2 {
		t.Fatalf("SessionInfos: %+v", infos)
	}
	for i, view := range views {
		if !strings.Contains(view.Output(), fmt.Sprintf("tenant %d done", i)) {
			t.Errorf("tenant %d output missing: %q", i, view.Output())
		}
	}
	s0 := hv.Session("tenant0")
	st := s0.Stats()
	if st.Tenant != "tenant0" || st.RegionLEs != 16_000 {
		t.Errorf("tenant stats: %q region=%d", st.Tenant, st.RegionLEs)
	}
	if err := s0.Close(); err != nil {
		t.Fatal(err)
	}
	if hv.SessionCount() != 1 {
		t.Errorf("session count after close = %d", hv.SessionCount())
	}
}

// TestFacadeFaultDegradation drives the fault injector through the
// public API: a scripted transient compile failure plus one bus error.
// The program must keep producing correct output through the retry, the
// hardware eviction, and the re-promotion.
func TestFacadeFaultDegradation(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{
		Seed:             5,
		CompileTransient: 1, MaxCompileFaults: 1,
		BusError: 1, MaxBusFaults: 1,
	})
	rt := New(append(fastOptions(), WithFaultInjector(inj), DisableOpenLoop())...)
	rt.MustEval(DefaultPrelude)
	rt.MustEval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    `)
	rt.RunTicks(400)
	st := rt.Stats()
	if st.Compile.Retried == 0 {
		t.Fatalf("scripted transient compile fault never retried: %+v", st.Compile)
	}
	if st.HWFaults == 0 || st.Evictions == 0 {
		t.Fatalf("scripted bus fault never evicted: %+v", st)
	}
	if st.Faults.Injected < 2 {
		t.Fatalf("injector idle: %+v", st.Faults)
	}
	// Recovered: back in hardware (forwarded; open loop disabled), with
	// the counter still correct — 400 ticks from 1, mod 256.
	if st.Phase != PhaseForwarded {
		t.Fatalf("did not re-promote after eviction: %v", st.Phase)
	}
	if led := rt.World().Led("main.led"); led != (1+400)%256 {
		t.Fatalf("led=%d after 400 ticks, want %d", led, (1+400)%256)
	}
	if !strings.Contains(st.Summary(), "evictions=1") {
		t.Fatalf("summary missing fault counters: %s", st.Summary())
	}
}

func TestFacadeREPL(t *testing.T) {
	var out strings.Builder
	r, err := NewREPL(&out, fastOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Batch(`
        reg [3:0] n = 0;
        always @(posedge clk.val) begin
            n <= n + 1;
            if (n == 9) begin $display("done %d", n); $finish; end
        end
    `, 100); err != nil {
		t.Fatal(err)
	}
	if !r.Runtime().Finished() {
		t.Fatal("batch program did not finish")
	}
	if !strings.Contains(out.String(), "done 9") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestFacadeGPIO(t *testing.T) {
	rt := New(fastOptions()...)
	if err := rt.Eval(`Clock clk(); GPIO#(8) gpio();`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Eval(`assign gpio.out = gpio.in + 8'd1;`); err != nil {
		t.Fatal(err)
	}
	rt.World().DriveGPIO("main.gpio", 41)
	rt.RunTicks(3)
	if got := rt.World().GPIO("main.gpio"); got != 42 {
		t.Fatalf("gpio out=%d, want 42", got)
	}
}

func TestFacadeContextCancel(t *testing.T) {
	rt := New(fastOptions()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.EvalCtx(ctx, DefaultPrelude); err == nil {
		t.Fatal("EvalCtx should refuse a cancelled context")
	}
	if err := rt.Eval(DefaultPrelude); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunTicksCtx(ctx, 10); err == nil {
		t.Fatal("RunTicksCtx should stop on a cancelled context")
	}
	if rt.Ticks() != 0 {
		t.Fatalf("cancelled run still advanced: %d ticks", rt.Ticks())
	}
}

// Example demonstrates the package-level quick start.
func Example() {
	rt := New(DisableJIT())
	rt.MustEval(DefaultPrelude)
	rt.MustEval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    `)
	rt.RunTicks(9)
	fmt.Printf("leds=%d engine=%v\n", rt.World().Led("main.led"), rt.Phase())
	// Output: leds=10 engine=software(inlined)
}

// TestFacadeCompileFarm drives the standard facade program through a
// sharded compile farm (WithCompileFarm) and checks the farm surface:
// the run reaches hardware exactly as a local-backend run would, Stats
// carries the farm counters, and the Summary line grows the farm[...]
// segment. It also pins the ErrShardUnavailable re-export's contract:
// matchable with errors.Is through wrapping, and distinct from
// ErrOverloaded.
func TestFacadeCompileFarm(t *testing.T) {
	opts := append(fastOptions(),
		WithCompileFarm(FarmOptions{Workers: 2}),
		DisableInline(), // separate engines => several flows to route
	)
	rt := New(opts...)
	rt.MustEval(DefaultPrelude)
	rt.MustEval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    `)
	rt.RunTicks(1000)
	if rt.Phase() == PhaseSoftware {
		t.Fatalf("farm-backed run never left software: %v", rt.Phase())
	}
	st := rt.Stats()
	if st.Farm.Shards != 2 || st.Farm.Jobs == 0 || st.Farm.Routed == 0 {
		t.Fatalf("farm stats not populated: %+v", st.Farm)
	}
	if !strings.Contains(st.Summary(), " farm[shards=2") {
		t.Fatalf("summary missing farm segment: %s", st.Summary())
	}

	if ErrShardUnavailable == nil || errors.Is(ErrShardUnavailable, ErrOverloaded) {
		t.Fatal("ErrShardUnavailable must be its own sentinel")
	}
	wrapped := fmt.Errorf("toolchain: %w: all shards down", ErrShardUnavailable)
	if !errors.Is(wrapped, ErrShardUnavailable) {
		t.Fatal("ErrShardUnavailable not matchable through wrapping")
	}
}
