package cascade

import (
	"fmt"
	"strings"
	"testing"
)

// fastOptions returns options whose virtual toolchain compiles almost
// instantly, so facade tests exercise the full JIT quickly.
func fastOptions() Options {
	dev := NewCycloneV()
	tco := DefaultToolchainOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	return Options{Device: dev, Toolchain: NewToolchain(dev, tco), OpenLoopTargetPs: 10_000_000}
}

func TestFacadeEndToEnd(t *testing.T) {
	rt := New(fastOptions())
	if err := rt.Eval(DefaultPrelude); err != nil {
		t.Fatal(err)
	}
	if err := rt.Eval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= (cnt == 8'h80) ? 1 : (cnt << 1);
        assign led.val = cnt;
    `); err != nil {
		t.Fatal(err)
	}
	rt.RunTicks(1000)
	if rt.Phase() != PhaseOpenLoop {
		t.Fatalf("phase %v", rt.Phase())
	}
	if led := rt.World().Led("main.led"); led == 0 {
		t.Fatal("led never driven")
	}
	if !strings.Contains(rt.ProgramSource(), "cnt") {
		t.Fatal("program source introspection broken")
	}
}

func TestFacadeREPL(t *testing.T) {
	var out strings.Builder
	r, err := NewREPL(fastOptions(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Batch(`
        reg [3:0] n = 0;
        always @(posedge clk.val) begin
            n <= n + 1;
            if (n == 9) begin $display("done %d", n); $finish; end
        end
    `, 100); err != nil {
		t.Fatal(err)
	}
	if !r.Runtime().Finished() {
		t.Fatal("batch program did not finish")
	}
	if !strings.Contains(out.String(), "done 9") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestFacadeGPIO(t *testing.T) {
	rt := New(fastOptions())
	if err := rt.Eval(`Clock clk(); GPIO#(8) gpio();`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Eval(`assign gpio.out = gpio.in + 8'd1;`); err != nil {
		t.Fatal(err)
	}
	rt.World().DriveGPIO("main.gpio", 41)
	rt.RunTicks(3)
	if got := rt.World().GPIO("main.gpio"); got != 42 {
		t.Fatalf("gpio out=%d, want 42", got)
	}
}

// Example demonstrates the package-level quick start.
func Example() {
	rt := New(Options{DisableJIT: true})
	rt.MustEval(DefaultPrelude)
	rt.MustEval(`
        reg [7:0] cnt = 1;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    `)
	rt.RunTicks(9)
	fmt.Printf("leds=%d engine=%v\n", rt.World().Led("main.led"), rt.Phase())
	// Output: leds=10 engine=software(inlined)
}
