package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestDeterministicSchedule: two injectors with the same config agree on
// every decision, regardless of how sites interleave between them.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, CompileTransient: 0.3, CompilePermanent: 0.1, BusError: 0.2, RegionFault: 0.15}
	a, b := New(cfg), New(cfg)
	sites := []string{"main", "main.r", "main.g1"}
	var seqA, seqB []string
	record := func(seq *[]string, err error) {
		if err == nil {
			*seq = append(*seq, "ok")
		} else {
			*seq = append(*seq, err.Error())
		}
	}
	for i := 0; i < 200; i++ {
		s := sites[i%len(sites)]
		record(&seqA, a.Compile(s))
		record(&seqA, a.Bus(s))
		record(&seqA, a.Region(s))
	}
	for i := 0; i < 200; i++ {
		s := sites[i%len(sites)]
		record(&seqB, b.Compile(s))
		record(&seqB, b.Bus(s))
		record(&seqB, b.Region(s))
	}
	if len(seqA) != len(seqB) {
		t.Fatalf("sequence lengths diverged: %d vs %d", len(seqA), len(seqB))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, seqA[i], seqB[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Injected == 0 {
		t.Fatal("no faults injected at these probabilities; schedule is vacuous")
	}
}

// TestSiteIndependence: the timeline of one site is unaffected by how
// many operations other sites perform (global interleaving must not
// matter — that is what makes concurrent runs replayable).
func TestSiteIndependence(t *testing.T) {
	cfg := Config{Seed: 7, BusError: 0.25}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []bool
	for i := 0; i < 100; i++ {
		seqA = append(seqA, a.Bus("main") != nil)
	}
	for i := 0; i < 100; i++ {
		_ = b.Bus("other") // noise on another site
		seqB = append(seqB, b.Bus("main") != nil)
		_ = b.Compile("main") // different op, same site: separate timeline
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("site timeline perturbed by unrelated traffic at trial %d", i)
		}
	}
}

// TestScriptedMode: probability 1 with a cap injects exactly the first
// n trials per site, then none — the contract retry loops depend on.
func TestScriptedMode(t *testing.T) {
	in := New(Config{Seed: 1, CompileTransient: 1, MaxCompileFaults: 2, BusError: 1, MaxBusFaults: 1})
	for trial := 1; trial <= 5; trial++ {
		err := in.Compile("main")
		if trial <= 2 && err == nil {
			t.Fatalf("compile trial %d: expected fault", trial)
		}
		if trial > 2 && err != nil {
			t.Fatalf("compile trial %d: cap not honored: %v", trial, err)
		}
		if err != nil && !IsTransient(err) {
			t.Fatalf("compile trial %d: expected transient, got %v", trial, err)
		}
	}
	if err := in.Bus("main"); err == nil {
		t.Fatal("first bus trial must fault")
	}
	for trial := 0; trial < 10; trial++ {
		if err := in.Bus("main"); err != nil {
			t.Fatalf("bus cap not honored: %v", err)
		}
	}
	st := in.Stats()
	if st.Compile != 2 || st.Bus != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestClassification: permanent compile faults classify as such, and the
// errors survive wrapping.
func TestClassification(t *testing.T) {
	in := New(Config{Seed: 3, CompilePermanent: 1, MaxCompileFaults: 1})
	err := in.Compile("main")
	if err == nil {
		t.Fatal("expected a fault")
	}
	if IsTransient(err) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
	wrapped := fmt.Errorf("toolchain: %w", err)
	if !IsFault(wrapped) {
		t.Fatal("IsFault must see through wrapping")
	}
	var fe *Error
	if !errors.As(wrapped, &fe) || fe.Op != OpCompile || fe.Site != "main" {
		t.Fatalf("wrapped fault lost identity: %+v", fe)
	}
}

// TestNilInjector: a nil injector is a no-op everywhere.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Compile("x") != nil || in.Bus("x") != nil || in.Region("x") != nil {
		t.Fatal("nil injector injected a fault")
	}
	if in.Stats() != (Stats{}) || in.Seed() != 0 {
		t.Fatal("nil injector reported state")
	}
}

// TestConcurrentUse: hammering one injector from many goroutines is
// race-free and conserves counters (run under -race).
func TestConcurrentUse(t *testing.T) {
	in := New(Config{Seed: 9, CompileTransient: 0.5, BusError: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := fmt.Sprintf("site%d", g)
			for i := 0; i < 500; i++ {
				_ = in.Compile(s)
				_ = in.Bus(s)
			}
		}(g)
	}
	wg.Wait()
	st := in.Stats()
	if st.Checks != 8*500*2 {
		t.Fatalf("lost trials: %+v", st)
	}
	if st.Injected != st.Transient+st.Permanent || st.Injected != st.Compile+st.Bus+st.Region {
		t.Fatalf("counter partition broken: %+v", st)
	}
}
