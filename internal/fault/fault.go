// Package fault is Cascade-Go's deterministic fault injector. The
// paper's value proposition — execution "simply gets faster" while
// compilation proceeds in the background — only holds if the runtime
// survives the failure modes a real vendor flow and a shared device
// exhibit: flaky compiles (license servers, filesystem hiccups,
// non-deterministic placement failures), MMIO bus errors, and fabric
// region faults that corrupt a loaded bitstream. SYNERGY (Landgraf et
// al.) shows the runtime/engine split supports movement in *both*
// directions; injecting faults is how we test the downward direction.
//
// The injector is deterministic by construction so that fault runs are
// replayable: whether operation number n at a named site faults is a
// pure function of (seed, op, site, n), computed with a splitmix64-style
// hash — never of goroutine interleaving or wall-clock time. Sites keep
// independent trial counters, and each site's operations occur in a
// deterministic order on its own timeline (compile attempts are
// sequential per job; a hardware engine is driven by one goroutine at a
// time in schedule order), so two runs with the same seed inject the
// same faults at the same points no matter how the host schedules
// threads.
//
// A nil *Injector is valid everywhere and injects nothing, so callers
// (the toolchain, the device, hardware engines) never need a nil check
// at the call site.
package fault

import (
	"errors"
	"fmt"
	"sync"

	"cascade/internal/obsv"
)

// Op is the class of operation a fault can be injected into.
type Op uint8

// Operation classes.
const (
	// OpCompile is one vendor-flow compile attempt.
	OpCompile Op = iota
	// OpBus is an MMIO transaction between the runtime and a placed
	// hardware engine.
	OpBus
	// OpRegion is the integrity of a placed fabric region (a lost or
	// corrupted bitstream; checked at placement and per time step).
	OpRegion
	// OpNet is one transport round-trip to a remote engine (a dropped
	// frame; the transport retries deterministically).
	OpNet
)

func (o Op) String() string {
	switch o {
	case OpCompile:
		return "compile"
	case OpBus:
		return "bus"
	case OpRegion:
		return "region"
	case OpNet:
		return "net"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Error is one injected fault. Transient faults are expected to succeed
// on retry (the toolchain backs off and re-attempts; the runtime evicts
// the engine and re-places it); permanent faults are reported once and
// never re-queued.
type Error struct {
	Op        Op
	Site      string // engine path or compile-unit instance path
	Attempt   uint64 // 1-based ordinal of the faulted trial at this site
	Transient bool
}

// Error implements error.
func (e *Error) Error() string {
	class := "permanent"
	if e.Transient {
		class = "transient"
	}
	return fmt.Sprintf("fault: %s %s fault at %s (trial %d)", class, e.Op, e.Site, e.Attempt)
}

// IsFault reports whether err is (or wraps) an injected fault.
func IsFault(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsTransient reports whether err is (or wraps) an injected fault that
// is expected to succeed on retry.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// Config sets the per-trial fault probabilities and per-site caps. A
// probability of 1 with a cap of n makes exactly the first n trials at
// every site fault — the fully scripted mode tests use. A cap of 0
// means uncapped.
type Config struct {
	// Seed selects the deterministic fault schedule. Two injectors with
	// the same Config inject identical faults at identical points.
	Seed uint64

	// CompileTransient and CompilePermanent are per-attempt
	// probabilities for the two compile fault classes; their sum must
	// not exceed 1. MaxCompileFaults caps faults per compile site so
	// retry loops provably converge.
	CompileTransient float64
	CompilePermanent float64
	MaxCompileFaults int

	// BusError is the per-check probability of an MMIO fault on a
	// hardware engine, capped per engine by MaxBusFaults.
	BusError     float64
	MaxBusFaults int

	// RegionFault is the per-check probability that a placed fabric
	// region has lost its bitstream, capped per region by
	// MaxRegionFaults.
	RegionFault     float64
	MaxRegionFaults int

	// NetDrop is the per-attempt probability that a transport
	// round-trip to a remote engine is dropped before transmission,
	// capped per transport site by MaxNetFaults (so retry loops
	// provably converge).
	NetDrop      float64
	MaxNetFaults int
}

// Stats counts the injector's activity.
type Stats struct {
	Checks    uint64 // trials consulted
	Injected  uint64 // faults injected (all classes)
	Transient uint64 // injected faults retryable by backoff or re-place
	Permanent uint64 // injected faults that are final
	Compile   uint64 // injected compile faults
	Bus       uint64 // injected bus faults
	Region    uint64 // injected region faults
	Net       uint64 // injected transport drops
}

// site tracks one (op, site) timeline.
type site struct {
	trials   uint64 // operations consulted so far
	injected int    // faults injected so far (cap accounting)
}

// Injector decides deterministically whether operations fault. Safe for
// concurrent use; a nil Injector injects nothing.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	sites map[string]*site
	stats Stats
	obs   *obsv.Observer
}

// New returns an injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, sites: map[string]*site{}}
}

// Seed returns the injector's seed (for replay diagnostics).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// SetObserver installs an observability hub: every injected fault is
// traced and counted. Injection happens on whatever goroutine runs the
// faulted operation (toolchain workers, transport callers), so events
// carry no virtual stamp (EmitAt 0) — the schedule itself stays a pure
// function of (seed, op, site, trial) and observation changes nothing.
func (in *Injector) SetObserver(o *obsv.Observer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.obs = o
	in.mu.Unlock()
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Compile consults the fault schedule for one compile attempt at the
// given site (an instance path). It returns nil or an *Error whose
// Transient field classifies the failure.
func (in *Injector) Compile(siteName string) error {
	if in == nil || (in.cfg.CompileTransient <= 0 && in.cfg.CompilePermanent <= 0) {
		return nil
	}
	return in.check(OpCompile, siteName, in.cfg.CompileTransient, in.cfg.CompilePermanent, in.cfg.MaxCompileFaults)
}

// Bus consults the fault schedule for one MMIO check at the given
// hardware engine. Bus faults are transient: the transfer is detected
// and the engine can be evicted with its state intact (the ABI
// wrapper's shadow registers remain readable).
func (in *Injector) Bus(siteName string) error {
	if in == nil || in.cfg.BusError <= 0 {
		return nil
	}
	return in.check(OpBus, siteName, in.cfg.BusError, 0, in.cfg.MaxBusFaults)
}

// Region consults the fault schedule for one region-integrity check.
// Region faults are transient: reprogramming the region (a resubmitted
// compile, served from the bitstream cache) clears them.
func (in *Injector) Region(siteName string) error {
	if in == nil || in.cfg.RegionFault <= 0 {
		return nil
	}
	return in.check(OpRegion, siteName, in.cfg.RegionFault, 0, in.cfg.MaxRegionFaults)
}

// Net consults the fault schedule for one transport round-trip attempt
// at the given site (a transport endpoint). Drops are transient by
// definition: the frame never left the host, so resending it is always
// safe (no duplicated side effects) and the transport retries until its
// attempt budget runs out.
func (in *Injector) Net(siteName string) error {
	if in == nil || in.cfg.NetDrop <= 0 {
		return nil
	}
	return in.check(OpNet, siteName, in.cfg.NetDrop, 0, in.cfg.MaxNetFaults)
}

// check runs one trial on the (op, site) timeline.
func (in *Injector) check(op Op, siteName string, pTransient, pPermanent float64, cap int) error {
	key := fmt.Sprintf("%d\x00%s", op, siteName)
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[key]
	if s == nil {
		s = &site{}
		in.sites[key] = s
	}
	s.trials++
	in.stats.Checks++
	if cap > 0 && s.injected >= cap {
		return nil
	}
	p := in.roll(op, siteName, s.trials)
	var transient bool
	switch {
	case p < pTransient:
		transient = true
	case p < pTransient+pPermanent:
		transient = false
	default:
		return nil
	}
	s.injected++
	in.stats.Injected++
	if transient {
		in.stats.Transient++
	} else {
		in.stats.Permanent++
	}
	switch op {
	case OpCompile:
		in.stats.Compile++
	case OpBus:
		in.stats.Bus++
	case OpRegion:
		in.stats.Region++
	case OpNet:
		in.stats.Net++
	}
	err := &Error{Op: op, Site: siteName, Attempt: s.trials, Transient: transient}
	if o := in.obs; o != nil {
		o.Faults.Inc()
		o.EmitAt(0, obsv.EvFault, siteName, err.Error())
	}
	return err
}

// roll maps (seed, op, site, trial) to a uniform value in [0, 1).
func (in *Injector) roll(op Op, siteName string, trial uint64) float64 {
	h := in.cfg.Seed
	h = mix(h ^ (uint64(op) + 1))
	h = mix(h ^ hashString(siteName))
	h = mix(h ^ trial)
	return float64(h>>11) / float64(uint64(1)<<53)
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString is FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
