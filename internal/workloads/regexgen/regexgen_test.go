package regexgen

import (
	"math/rand"
	"regexp"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/netlist"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// oracle counts positions where a match of pattern ends, using Go's
// regexp as an independent reference: position i counts if some substring
// s[j..i] matches the whole pattern.
func oracle(t *testing.T, pattern string, input []byte) int {
	t.Helper()
	re, err := regexp.Compile(`^(?s:` + pattern + `)$`)
	if err != nil {
		t.Fatalf("go regexp rejects %q: %v", pattern, err)
	}
	count := 0
	for i := 0; i < len(input); i++ {
		for j := 0; j <= i; j++ {
			if re.Match(input[j : i+1]) {
				count++
				break
			}
		}
	}
	return count
}

var testPatterns = []string{
	"abc",
	"a",
	"ab|cd",
	"a*b",
	"a+b?c",
	"(ab)+",
	"[a-c]x",
	"[^x]y",
	"h(el|al)+lo",
	"a.c",
	"x[0-9]+y",
	"(a|b)*abb",
	`GET /[a-z]*\.html`,
}

func randInput(r *rand.Rand, n int, alphabet string) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}

func TestDFAMatchesGoRegexp(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, pat := range testPatterns {
		d, err := CompileDFA(pat)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		for trial := 0; trial < 8; trial++ {
			in := randInput(r, 60, "abcdhelox0123GET /.tml")
			got := d.Run(in)
			want := oracle(t, pat, in)
			if got != want {
				t.Fatalf("pattern %q input %q: dfa=%d oracle=%d", pat, in, got, want)
			}
		}
	}
}

func TestDFAExactCases(t *testing.T) {
	d, err := CompileDFA("ab")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Run([]byte("xxabyyabab")); got != 3 {
		t.Fatalf("count=%d, want 3", got)
	}
	d, err = CompileDFA("a*")
	if err != nil {
		t.Fatal(err)
	}
	// Empty-match patterns accept at every position.
	if got := d.Run([]byte("bbb")); got != 3 {
		t.Fatalf("a* on bbb: %d, want 3", got)
	}
}

func TestParserErrors(t *testing.T) {
	for _, bad := range []string{"(", "[a", "a|*", "*a", "a\\", "[z-a]", "(a))"} {
		if _, err := CompileDFA(bad); err == nil {
			t.Fatalf("CompileDFA(%q) should fail", bad)
		}
	}
}

// verilogMatcher runs the generated module in the reference simulator.
type verilogMatcher struct {
	s                    *sim.Simulator
	clk, byteIn, validIn *elab.Var
}

func newVerilogMatcher(t *testing.T, pattern string) (*verilogMatcher, *DFA) {
	t.Helper()
	src, d, err := Generate(pattern)
	if err != nil {
		t.Fatal(err)
	}
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("generated matcher does not parse: %v\n%s", errs, src)
	}
	f, err := elab.Elaborate(st.Modules[0], "rx", nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	m := &verilogMatcher{
		s:       sim.New(f, sim.Options{}),
		clk:     f.VarNamed("clk"),
		byteIn:  f.VarNamed("byte_in"),
		validIn: f.VarNamed("valid"),
	}
	m.settle()
	return m, d
}

func (m *verilogMatcher) settle() {
	for m.s.HasActive() || m.s.HasUpdates() {
		m.s.Evaluate()
		if m.s.HasUpdates() {
			m.s.Update()
		}
	}
}

func (m *verilogMatcher) feed(b byte) {
	m.s.SetInput(m.byteIn, bits.FromUint64(8, uint64(b)))
	m.s.SetInput(m.validIn, bits.FromUint64(1, 1))
	m.settle()
	m.s.SetInput(m.clk, bits.FromUint64(1, 1))
	m.settle()
	m.s.SetInput(m.clk, bits.FromUint64(1, 0))
	m.settle()
}

func (m *verilogMatcher) matches() uint64 { return m.s.Value("matches").Uint64() }

func TestVerilogMatcherAgainstDFA(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, pat := range []string{"abc", "(ab)+", "[a-c]x", "a.c"} {
		m, d := newVerilogMatcher(t, pat)
		in := randInput(r, 80, "abcx")
		for _, b := range in {
			m.feed(b)
		}
		if got, want := int(m.matches()), d.Run(in); got != want {
			t.Fatalf("pattern %q: verilog=%d dfa=%d (input %q)", pat, got, want, in)
		}
		if got := m.s.Value("consumed").Uint64(); got != uint64(len(in)) {
			t.Fatalf("consumed=%d, want %d", got, len(in))
		}
	}
}

func TestVerilogMatcherCompiledEngine(t *testing.T) {
	src, d, err := Generate("(a|b)*abb")
	if err != nil {
		t.Fatal(err)
	}
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "rx", nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	m := netlist.NewMachine(prog)
	clk := f.VarNamed("clk")
	byteIn := f.VarNamed("byte_in")
	valid := f.VarNamed("valid")
	settle := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	settle()
	in := []byte("ababbababbabbb")
	for _, b := range in {
		m.SetInput(byteIn, bits.FromUint64(8, uint64(b)))
		m.SetInput(valid, bits.FromUint64(1, 1))
		settle()
		m.SetInput(clk, bits.FromUint64(1, 1))
		settle()
		m.SetInput(clk, bits.FromUint64(1, 0))
		settle()
	}
	got := m.ReadVar(f.VarNamed("matches")).Uint64()
	if want := uint64(d.Run(in)); got != want {
		t.Fatalf("compiled matcher=%d, dfa=%d", got, want)
	}
}

func TestGenerateStreamingParses(t *testing.T) {
	prog, d, err := GenerateStreaming("GET /[a-z]*")
	if err != nil {
		t.Fatal(err)
	}
	if d.States() < 2 {
		t.Fatal("suspiciously small DFA")
	}
	mods, items, errs := verilog.ParseProgramFragment(prog)
	if errs != nil {
		t.Fatalf("streaming program: %v", errs)
	}
	if len(mods) != 1 || len(items) < 3 {
		t.Fatalf("unexpected shape: %d mods, %d items", len(mods), len(items))
	}
}

func TestDFAStateCap(t *testing.T) {
	// A pathological pattern that blows up subset construction.
	pat := "(a|b)*a(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)"
	if _, err := CompileDFA(pat); err == nil {
		t.Skip("pattern fits; cap not exercised on this machine")
	}
}

func BenchmarkDFARun(b *testing.B) {
	d, err := CompileDFA("GET /[a-z]*")
	if err != nil {
		b.Fatal(err)
	}
	in := randInput(rand.New(rand.NewSource(1)), 4096, "GET /abcdefgh")
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(in)
	}
}
