// Package regexgen compiles regular expressions into streaming Verilog
// matchers, reproducing the generator behind the paper's second benchmark
// (§6.2, Figure 12): a Snort/SQL-accelerator-style packet scanner that
// consumes one byte per cycle from a FIFO and counts pattern matches.
//
// The pipeline is the textbook one: a recursive-descent regex parser
// (literals, '.', character classes, grouping, alternation, *, +, ?),
// Thompson NFA construction, subset construction to a DFA with an
// implicit ".*" prefix (unanchored search), and Verilog emission as a
// one-hot-free binary state register with per-state transition logic.
// Matchers are verified against Go's regexp package.
package regexgen

import (
	"fmt"
	"sort"
	"strings"
)

// MaxDFAStates bounds subset construction.
const MaxDFAStates = 256

// --- regex AST ----------------------------------------------------------

type node interface{ isNode() }

type litClass struct { // set of accepted bytes
	set [256]bool
}
type concat struct{ parts []node }
type alt struct{ a, b node }
type star struct{ x node }
type plus struct{ x node }
type quest struct{ x node }

func (*litClass) isNode() {}
func (*concat) isNode()   {}
func (*alt) isNode()      {}
func (*star) isNode()     {}
func (*plus) isNode()     {}
func (*quest) isNode()    {}

// --- parser -------------------------------------------------------------

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("regex %q at %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseAlt() (node, error) {
	a, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		b, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		a = &alt{a: a, b: b}
	}
	return a, nil
}

func (p *parser) parseConcat() (node, error) {
	var parts []node
	for p.pos < len(p.src) && p.peek() != '|' && p.peek() != ')' {
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	return &concat{parts: parts}, nil
}

func (p *parser) parseRepeat() (node, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			x = &star{x: x}
		case '+':
			p.pos++
			x = &plus{x: x}
		case '?':
			p.pos++
			x = &quest{x: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseAtom() (node, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing )")
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		lc := &litClass{}
		for i := 0; i < 256; i++ {
			lc.set[i] = true
		}
		return lc, nil
	case '\\':
		p.pos++
		if p.pos >= len(p.src) {
			return nil, p.errf("trailing backslash")
		}
		b := p.escape(p.src[p.pos])
		p.pos++
		lc := &litClass{}
		lc.set[b] = true
		return lc, nil
	case ')', '|', '*', '+', '?', 0:
		return nil, p.errf("unexpected %q", string(c))
	default:
		p.pos++
		lc := &litClass{}
		lc.set[c] = true
		return lc, nil
	}
}

func (p *parser) escape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}

func (p *parser) parseClass() (node, error) {
	p.pos++ // '['
	lc := &litClass{}
	negate := false
	if p.peek() == '^' {
		negate = true
		p.pos++
	}
	first := true
	for {
		c := p.peek()
		if c == 0 {
			return nil, p.errf("missing ]")
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		if c == '\\' {
			p.pos++
			c = p.escape(p.peek())
		}
		p.pos++
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi := p.peek()
			if hi == '\\' {
				p.pos++
				hi = p.escape(p.peek())
			}
			p.pos++
			if hi < c {
				return nil, p.errf("inverted range %c-%c", c, hi)
			}
			for b := int(c); b <= int(hi); b++ {
				lc.set[b] = true
			}
			continue
		}
		lc.set[c] = true
	}
	if negate {
		for i := range lc.set {
			lc.set[i] = !lc.set[i]
		}
	}
	return lc, nil
}

// --- NFA (Thompson) ------------------------------------------------------

type nfaState struct {
	// byte transitions: class -> target; eps transitions.
	class  *litClass
	out    int
	eps    []int
	accept bool
}

type nfa struct {
	states []nfaState
	start  int
}

func (n *nfa) newState() int {
	n.states = append(n.states, nfaState{out: -1})
	return len(n.states) - 1
}

// build returns (start, end); end has no outgoing edges yet.
func (n *nfa) build(x node) (int, int) {
	switch t := x.(type) {
	case *litClass:
		s, e := n.newState(), n.newState()
		n.states[s].class = t
		n.states[s].out = e
		return s, e
	case *concat:
		if len(t.parts) == 0 {
			s := n.newState()
			return s, s
		}
		s, e := n.build(t.parts[0])
		for _, part := range t.parts[1:] {
			s2, e2 := n.build(part)
			n.states[e].eps = append(n.states[e].eps, s2)
			e = e2
		}
		return s, e
	case *alt:
		s, e := n.newState(), n.newState()
		sa, ea := n.build(t.a)
		sb, eb := n.build(t.b)
		n.states[s].eps = append(n.states[s].eps, sa, sb)
		n.states[ea].eps = append(n.states[ea].eps, e)
		n.states[eb].eps = append(n.states[eb].eps, e)
		return s, e
	case *star:
		s, e := n.newState(), n.newState()
		sx, ex := n.build(t.x)
		n.states[s].eps = append(n.states[s].eps, sx, e)
		n.states[ex].eps = append(n.states[ex].eps, sx, e)
		return s, e
	case *plus:
		sx, ex := n.build(t.x)
		e := n.newState()
		n.states[ex].eps = append(n.states[ex].eps, sx, e)
		return sx, e
	case *quest:
		s, e := n.newState(), n.newState()
		sx, ex := n.build(t.x)
		n.states[s].eps = append(n.states[s].eps, sx, e)
		n.states[ex].eps = append(n.states[ex].eps, e)
		return s, e
	}
	panic("regexgen: unknown node")
}

// --- DFA -----------------------------------------------------------------

// DFA is a deterministic byte automaton for unanchored search: state 0 is
// the start; Accept[s] marks states reached right after a match ends.
type DFA struct {
	Next   [][256]int
	Accept []bool
}

// CompileDFA builds the search DFA for pattern.
func CompileDFA(pattern string) (*DFA, error) {
	p := &parser{src: pattern}
	ast, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	m := &nfa{}
	s, e := m.build(ast)
	m.start = s
	m.states[e].accept = true

	closure := func(set map[int]bool) {
		var stack []int
		for q := range set {
			stack = append(stack, q)
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range m.states[q].eps {
				if !set[t] {
					set[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for q := range set {
			ids = append(ids, q)
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, q := range ids {
			fmt.Fprintf(&sb, "%d,", q)
		}
		return sb.String()
	}

	d := &DFA{}
	index := map[string]int{}
	var sets []map[int]bool
	start := map[int]bool{m.start: true}
	closure(start)
	index[key(start)] = 0
	sets = append(sets, start)
	d.Next = append(d.Next, [256]int{})
	d.Accept = append(d.Accept, anyAccept(m, start))

	for si := 0; si < len(sets); si++ {
		for b := 0; b < 256; b++ {
			to := map[int]bool{m.start: true} // unanchored: restart always live
			for q := range sets[si] {
				st := &m.states[q]
				if st.class != nil && st.class.set[b] {
					to[st.out] = true
				}
			}
			closure(to)
			k := key(to)
			ti, ok := index[k]
			if !ok {
				ti = len(sets)
				if ti >= MaxDFAStates {
					return nil, fmt.Errorf("regexgen: pattern %q exceeds %d DFA states", pattern, MaxDFAStates)
				}
				index[k] = ti
				sets = append(sets, to)
				d.Next = append(d.Next, [256]int{})
				d.Accept = append(d.Accept, anyAccept(m, to))
			}
			d.Next[si][b] = ti
		}
	}
	return d, nil
}

func anyAccept(m *nfa, set map[int]bool) bool {
	for q := range set {
		if m.states[q].accept {
			return true
		}
	}
	return false
}

// Run feeds input through the DFA and returns the number of positions at
// which a match ends (the matcher's reference semantics).
func (d *DFA) Run(input []byte) int {
	s, count := 0, 0
	for _, b := range input {
		s = d.Next[s][b]
		if d.Accept[s] {
			count++
		}
	}
	return count
}

// States returns the DFA state count.
func (d *DFA) States() int { return len(d.Next) }

// --- Verilog emission ----------------------------------------------------

func log2ceil(n int) int {
	w := 1
	for (1 << w) < n {
		w++
	}
	return w
}

// Generate emits a streaming matcher module for pattern:
//
//	module Regex(input wire clk, input wire [7:0] byte_in,
//	             input wire valid,
//	             output wire match, output wire [31:0] matches,
//	             output wire [31:0] consumed);
//
// One byte is consumed per rising clock edge while valid is high; match
// pulses when the byte just consumed ends a pattern occurrence.
func Generate(pattern string) (string, *DFA, error) {
	d, err := CompileDFA(pattern)
	if err != nil {
		return "", nil, err
	}
	sw := log2ceil(d.States())
	var sb strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	p("// Streaming matcher for pattern %q (%d DFA states)\n", pattern, d.States())
	p("module Regex(\n")
	p("  input wire clk,\n")
	p("  input wire [7:0] byte_in,\n")
	p("  input wire valid,\n")
	p("  output wire match,\n")
	p("  output wire [31:0] matches,\n")
	p("  output wire [31:0] consumed\n")
	p(");\n")
	p("  reg [%d:0] state = 0;\n", sw-1)
	p("  reg [31:0] match_cnt = 0;\n")
	p("  reg [31:0] consumed_cnt = 0;\n")
	p("  reg match_r = 0;\n")
	p("  reg [%d:0] nxt;\n", sw-1)

	// Transition logic: per state, ranges of bytes sharing a target.
	p("  always @(*)\n")
	p("    case (state)\n")
	for s := 0; s < d.States(); s++ {
		p("      %d'd%d:\n", sw, s)
		// Build maximal ranges with equal targets.
		type span struct{ lo, hi, to int }
		var spans []span
		b := 0
		for b < 256 {
			to := d.Next[s][b]
			hi := b
			for hi+1 < 256 && d.Next[s][hi+1] == to {
				hi++
			}
			spans = append(spans, span{lo: b, hi: hi, to: to})
			b = hi + 1
		}
		// The most common target becomes the default.
		counts := map[int]int{}
		for _, sp := range spans {
			counts[sp.to] += sp.hi - sp.lo + 1
		}
		deflt, best := 0, -1
		for to, n := range counts {
			if n > best {
				deflt, best = to, n
			}
		}
		first := true
		for _, sp := range spans {
			if sp.to == deflt {
				continue
			}
			kw := "else if"
			if first {
				kw = "if"
				first = false
			}
			if sp.lo == sp.hi {
				p("        %s (byte_in == 8'd%d) nxt = %d'd%d;\n", kw, sp.lo, sw, sp.to)
			} else {
				p("        %s (byte_in >= 8'd%d && byte_in <= 8'd%d) nxt = %d'd%d;\n", kw, sp.lo, sp.hi, sw, sp.to)
			}
		}
		if first {
			p("        nxt = %d'd%d;\n", sw, deflt)
		} else {
			p("        else nxt = %d'd%d;\n", sw, deflt)
		}
	}
	p("      default: nxt = 0;\n")
	p("    endcase\n")

	// Accept detection on the next state.
	var accepts []int
	for s, a := range d.Accept {
		if a {
			accepts = append(accepts, s)
		}
	}
	p("  wire accept_next = 1'b0")
	for _, s := range accepts {
		p(" | (nxt == %d'd%d)", sw, s)
	}
	p(";\n")

	p(`
  always @(posedge clk)
    if (valid) begin
      state <= nxt;
      consumed_cnt <= consumed_cnt + 1;
      match_r <= accept_next;
      if (accept_next)
        match_cnt <= match_cnt + 1;
    end else
      match_r <= 0;

  assign match = match_r;
  assign matches = match_cnt;
  assign consumed = consumed_cnt;
endmodule
`)
	return sb.String(), d, nil
}

// GenerateStreaming emits the full Figure 12 benchmark program: a matcher
// fed one byte per tick from the standard-library FIFO (paths are
// relative to the implicit root module; the prelude must have declared
// the FIFO instance name used here).
func GenerateStreaming(pattern string) (string, *DFA, error) {
	mod, d, err := Generate(pattern)
	if err != nil {
		return "", nil, err
	}
	prog := mod + `
FIFO#(8, 64) fifo();
wire [31:0] matches, consumed;
wire mtch;
assign fifo.rreq = !fifo.empty;
Regex rx(.clk(clk.val), .byte_in(fifo.rdata), .valid(!fifo.empty),
         .match(mtch), .matches(matches), .consumed(consumed));
`
	return prog, d, nil
}
