package nw

import (
	"math/rand"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/netlist"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

func buildFlat(t *testing.T, c Config) *elab.Flat {
	t.Helper()
	src := Generate(c)
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("generated NW does not parse: %v\n%s", errs, src)
	}
	f, err := elab.Elaborate(st.Modules[0], "nw", nil)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	return f
}

func runToScore(t *testing.T, c Config, f *elab.Flat) int {
	t.Helper()
	s := sim.New(f, sim.Options{})
	clk := f.VarNamed("clk")
	settle := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	settle()
	for i := 0; i < c.Cycles()+8; i++ {
		if s.Value("done").Uint64() == 1 {
			break
		}
		s.SetInput(clk, bits.FromUint64(1, 1))
		settle()
		s.SetInput(clk, bits.FromUint64(1, 0))
		settle()
	}
	if s.Value("done").Uint64() != 1 {
		t.Fatalf("NW did not finish in %d cycles", c.Cycles()+8)
	}
	if got, want := s.Value("cells").Uint64(), uint64(len(c.SeqA)*len(c.SeqB)); got != want {
		t.Fatalf("cells=%d, want %d", got, want)
	}
	return int(int16(s.Value("score").Uint64()))
}

func TestReferenceScore(t *testing.T) {
	// Wikipedia's GATTACA/GCATGCU example scores 0 with +1/-1/-1.
	c := DefaultConfig()
	if got := c.Score(); got != 0 {
		t.Fatalf("reference score=%d, want 0", got)
	}
	// Identical sequences score len*match.
	c2 := Config{SeqA: []byte("ACGT"), SeqB: []byte("ACGT"), Match: 2, Mismatch: -1, Gap: -2}
	if got := c2.Score(); got != 8 {
		t.Fatalf("identical score=%d, want 8", got)
	}
	// Aligning against empty-ish worst case: all gaps.
	c3 := Config{SeqA: []byte("AAAA"), SeqB: []byte("T"), Match: 1, Mismatch: -1, Gap: -1}
	if got := c3.Score(); got != -4 {
		t.Fatalf("gap-heavy score=%d, want -4", got)
	}
}

func TestVerilogMatchesReference(t *testing.T) {
	c := DefaultConfig()
	f := buildFlat(t, c)
	if got, want := runToScore(t, c, f), c.Score(); got != want {
		t.Fatalf("hardware score=%d, reference=%d", got, want)
	}
}

func TestVerilogRandomSequences(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	alphabet := []byte("ACGT")
	for trial := 0; trial < 10; trial++ {
		a := make([]byte, 2+r.Intn(9))
		b := make([]byte, 2+r.Intn(9))
		for i := range a {
			a[i] = alphabet[r.Intn(4)]
		}
		for i := range b {
			b[i] = alphabet[r.Intn(4)]
		}
		c := Config{SeqA: a, SeqB: b, Match: 1 + r.Intn(3), Mismatch: -1 - r.Intn(3), Gap: -1 - r.Intn(2)}
		f := buildFlat(t, c)
		if got, want := runToScore(t, c, f), c.Score(); got != want {
			t.Fatalf("trial %d (%s vs %s): hardware=%d reference=%d", trial, a, b, got, want)
		}
	}
}

func TestCompiledEngineMatches(t *testing.T) {
	c := DefaultConfig()
	f := buildFlat(t, c)
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	m := netlist.NewMachine(prog)
	clk := f.VarNamed("clk")
	settle := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	settle()
	for i := 0; i < c.Cycles()+8; i++ {
		if m.ReadVar(f.VarNamed("done")).Uint64() == 1 {
			break
		}
		m.SetInput(clk, bits.FromUint64(1, 1))
		settle()
		m.SetInput(clk, bits.FromUint64(1, 0))
		settle()
	}
	got := int(int16(m.ReadVar(f.VarNamed("score")).Uint64()))
	if want := c.Score(); got != want {
		t.Fatalf("compiled engine score=%d, want %d", got, want)
	}
}

func TestDisplayAndFinish(t *testing.T) {
	c := DefaultConfig()
	c.Display = true
	c.Finish = true
	f := buildFlat(t, c)
	var out string
	finished := false
	s := sim.New(f, sim.Options{
		Display: func(text string) { out += text },
		Finish:  func(int) { finished = true },
	})
	clk := f.VarNamed("clk")
	settle := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	settle()
	for i := 0; i < c.Cycles()+8 && !finished; i++ {
		s.SetInput(clk, bits.FromUint64(1, 1))
		settle()
		s.SetInput(clk, bits.FromUint64(1, 0))
		settle()
	}
	if !finished {
		t.Fatal("did not finish")
	}
	if out == "" {
		t.Fatal("no display output")
	}
}

func TestGenerateProgramParses(t *testing.T) {
	mods, items, errs := verilog.ParseProgramFragment(GenerateProgram(DefaultConfig()))
	if errs != nil {
		t.Fatal(errs)
	}
	if len(mods) != 1 || len(items) < 4 {
		t.Fatalf("unexpected shape: %d mods %d items", len(mods), len(items))
	}
}
