// Package nw generates Verilog implementations of the Needleman-Wunsch
// global sequence-alignment algorithm, the assignment of the paper's UT
// Austin concurrency-class study (§6.4, Table 1). The generated design
// computes one dynamic-programming cell per clock cycle with a row-buffer
// memory — the archetypal "student solution" shape — and is verified
// against a plain Go implementation.
//
// Scores are two's-complement 16-bit values; Cascade-Go's unsigned
// arithmetic computes them exactly (mod 2^16) and signed comparisons are
// emitted with the sign-bit-flip idiom (x ^ 0x8000).
package nw

import (
	"fmt"
	"strings"
)

// Config parameterizes one alignment instance.
type Config struct {
	SeqA, SeqB []byte
	Match      int // score for equal characters (e.g. +1)
	Mismatch   int // score for differing characters (e.g. -1)
	Gap        int // gap penalty per skipped character (e.g. -1)
	// Display controls end-of-alignment $display output.
	Display bool
	// Finish issues $finish when the score is ready.
	Finish bool
}

// DefaultConfig aligns two short DNA fragments with the classic +1/-1/-1
// scoring.
func DefaultConfig() Config {
	return Config{
		SeqA:     []byte("GATTACA"),
		SeqB:     []byte("GCATGCU"),
		Match:    1,
		Mismatch: -1,
		Gap:      -1,
	}
}

// Score computes the reference alignment score.
func (c Config) Score() int {
	m, n := len(c.SeqA), len(c.SeqB)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j * c.Gap
	}
	for i := 1; i <= m; i++ {
		cur[0] = i * c.Gap
		for j := 1; j <= n; j++ {
			s := c.Mismatch
			if c.SeqA[i-1] == c.SeqB[j-1] {
				s = c.Match
			}
			best := prev[j-1] + s
			if v := prev[j] + c.Gap; v > best {
				best = v
			}
			if v := cur[j-1] + c.Gap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// Cycles returns how many clock ticks the generated design needs to
// produce its score (init row + one cell per DP entry + drain).
func (c Config) Cycles() int {
	return (len(c.SeqB) + 2) + len(c.SeqA)*len(c.SeqB) + 4
}

func tc16(v int) uint16 { return uint16(int16(v)) }

// Generate emits the alignment module:
//
//	module NW(input wire clk,
//	          output wire signed_done,          // score is valid
//	          output wire [15:0] score,         // two's complement
//	          output wire [31:0] cells);        // DP cells computed
func Generate(c Config) string {
	m, n := len(c.SeqA), len(c.SeqB)
	var sb strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	p("// Needleman-Wunsch: |A|=%d |B|=%d match=%d mismatch=%d gap=%d\n", m, n, c.Match, c.Mismatch, c.Gap)
	p("module NW(\n  input wire clk,\n  output wire done,\n  output wire [15:0] score,\n  output wire [31:0] cells\n);\n")

	// Sequences packed as byte vectors, element i at bits [8i+7:8i].
	packed := func(s []byte) string {
		var hex strings.Builder
		for i := len(s) - 1; i >= 0; i-- {
			fmt.Fprintf(&hex, "%02x", s[i])
		}
		return fmt.Sprintf("%d'h%s", 8*len(s), hex.String())
	}
	p("  localparam [%d:0] SEQA = %s;\n", 8*m-1, packed(c.SeqA))
	p("  localparam [%d:0] SEQB = %s;\n", 8*n-1, packed(c.SeqB))
	p("  localparam [15:0] MATCH = 16'h%04x;\n", tc16(c.Match))
	p("  localparam [15:0] MISMATCH = 16'h%04x;\n", tc16(c.Mismatch))
	p("  localparam [15:0] GAP = 16'h%04x;\n", tc16(c.Gap))

	p(`
  // row holds the previous row for columns >= j and the current row for
  // columns < j (the classic single-buffer sweep).
  reg [15:0] row [0:%d];
  reg [15:0] left, diag, score_r;
  reg [7:0] i, j;       // 1-based indices
  reg [1:0] state = 0;  // 0 init, 1 sweep, 2 done
  reg [31:0] cell_cnt = 0;
  reg done_r = 0;

  wire [7:0] a_ch = (SEQA >> ({8'b0, i - 8'd1} << 3)) & 8'hff;
  wire [7:0] b_ch = (SEQB >> ({8'b0, j - 8'd1} << 3)) & 8'hff;
  wire [15:0] sub = (a_ch == b_ch) ? MATCH : MISMATCH;

  wire [15:0] up = row[j];
  wire [15:0] cand_d = diag + sub;
  wire [15:0] cand_u = up + GAP;
  wire [15:0] cand_l = left + GAP;
  // Signed max via the sign-flip comparison idiom.
  wire [15:0] max_du = ((cand_d ^ 16'h8000) > (cand_u ^ 16'h8000)) ? cand_d : cand_u;
  wire [15:0] best = ((max_du ^ 16'h8000) > (cand_l ^ 16'h8000)) ? max_du : cand_l;

  always @(posedge clk)
    case (state)
      2'd0: begin // fill row[j] with j*GAP
        row[j] <= j * GAP;
        if (j == 8'd%d) begin
          state <= 2'd1;
          i <= 1;
          j <= 1;
          left <= GAP;   // H[1][0]
          diag <= 0;     // H[0][0]
        end else
          j <= j + 1;
      end
      2'd1: begin // one DP cell per cycle
        row[j] <= best;
        diag <= up;
        left <= best;
        cell_cnt <= cell_cnt + 1;
        if (j == 8'd%d) begin
          if (i == 8'd%d) begin
            score_r <= best;
            done_r <= 1;
            state <= 2'd2;
`, n, n, n, m)
	if c.Display {
		p("            $display(\"NW score=%%d cells=%%d\", best, cell_cnt + 1);\n")
	}
	if c.Finish {
		p("            $finish;\n")
	}
	p(`          end else begin
            i <= i + 1;
            j <= 1;
            // Row restart: H[i+1][0] = (i+1)*GAP, diag = H[i][0].
            left <= (i + 8'd1) * GAP;
            diag <= i * GAP;
          end
        end else
          j <= j + 1;
      end
      default: ; // hold
    endcase

  assign done = done_r;
  assign score = score_r;
  assign cells = cell_cnt;
endmodule
`)
	return sb.String()
}

// GenerateProgram wraps the module in a root-level program for the
// Cascade runtime: the module driven by the global clock, with the score
// mirrored onto the LEDs.
func GenerateProgram(c Config) string {
	return Generate(c) + `
wire nw_done;
wire [15:0] nw_score;
wire [31:0] nw_cells;
NW nw(.clk(clk.val), .done(nw_done), .score(nw_score), .cells(nw_cells));
assign led.val = nw_score[7:0];
`
}
