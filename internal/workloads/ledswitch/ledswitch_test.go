package ledswitch

import (
	"testing"

	"cascade/internal/verilog"
)

func TestSourcesParse(t *testing.T) {
	for name, src := range map[string]string{
		"Figure1": Figure1, "Figure3": Figure3, "Figure3WithTasks": Figure3WithTasks,
	} {
		mods, items, errs := verilog.ParseProgramFragment(src)
		if errs != nil {
			t.Fatalf("%s: %v", name, errs)
		}
		if len(mods) == 0 {
			t.Fatalf("%s: no modules", name)
		}
		if name != "Figure1" && len(items) == 0 {
			t.Fatalf("%s: no root items", name)
		}
	}
}

func TestExpectedLed(t *testing.T) {
	if ExpectedLed(0) != 1 || ExpectedLed(7) != 0x80 || ExpectedLed(8) != 1 {
		t.Fatal("rotation oracle wrong")
	}
}
