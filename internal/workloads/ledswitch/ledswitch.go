// Package ledswitch holds the paper's running example (§2.1, Figures 1
// and 3): eight LEDs animated one at a time in sequence, pausing while
// any of four buttons is held. It is the program used throughout the
// paper's exposition and in the user study's starter code.
package ledswitch

// Figure1 is the stand-alone Verilog of Figure 1: a Main module with
// explicit clk/pad/led ports plus the Rol rotator. It is the batch-mode
// form of the program (unsynthesizable tasks included).
const Figure1 = `
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule

module Main(
  input wire clk,
  input wire [3:0] pad,  // dn/up = 1/0
  output wire [7:0] led  // on/off = 1/0
);
  reg [7:0] cnt = 1;
  Rol r(.x(cnt));
  always @(posedge clk)
    if (pad == 0)
      cnt <= r.y;
    else begin
      $display(cnt);  // unsynthesizable!
      $finish;        // unsynthesizable!
    end
  assign led = cnt;
endmodule
`

// Figure3 is the REPL form of the same program (Figure 3): the prelude's
// implicit Clock/Pad/Led instances replace Main's ports, and the
// debugging tasks are omitted so the animation pauses rather than
// terminating.
const Figure3 = `
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule

reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val)
  if (pad.val == 0)
    cnt <= r.y;
assign led.val = cnt;
`

// Figure3WithTasks is Figure 3 with the Figure 1 debugging behaviour:
// pressing a button prints the counter and terminates.
const Figure3WithTasks = `
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule

reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val)
  if (pad.val == 0)
    cnt <= r.y;
  else begin
    $display(cnt);
    $finish;
  end
assign led.val = cnt;
`

// ExpectedLed returns the LED pattern after n completed clock ticks with
// no buttons pressed.
func ExpectedLed(n uint64) uint64 {
	return 1 << (n % 8)
}
