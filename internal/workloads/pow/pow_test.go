package pow

import (
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/netlist"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

func buildFlat(t *testing.T, cfg Config) *elab.Flat {
	t.Helper()
	src := Generate(cfg)
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("parse generated miner: %v\n%s", errs, src)
	}
	f, err := elab.Elaborate(st.Modules[0], "pow", nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return f
}

// driver runs the miner on either execution engine.
type driver interface {
	tick()
	val(name string) uint64
}

type simDriver struct {
	s   *sim.Simulator
	clk *elab.Var
}

func (d *simDriver) settle() {
	for d.s.HasActive() || d.s.HasUpdates() {
		d.s.Evaluate()
		if d.s.HasUpdates() {
			d.s.Update()
		}
	}
}

func (d *simDriver) tick() {
	d.s.SetInput(d.clk, bits.FromUint64(1, 1))
	d.settle()
	d.s.SetInput(d.clk, bits.FromUint64(1, 0))
	d.settle()
}

func (d *simDriver) val(name string) uint64 { return d.s.Value(name).Uint64() }

type hwDriver struct {
	m   *netlist.Machine
	clk *elab.Var
}

func (d *hwDriver) settle() {
	for d.m.HasActive() || d.m.HasUpdates() {
		d.m.Evaluate()
		if d.m.HasUpdates() {
			d.m.Update()
		}
	}
}

func (d *hwDriver) tick() {
	d.m.SetInput(d.clk, bits.FromUint64(1, 1))
	d.settle()
	d.m.SetInput(d.clk, bits.FromUint64(1, 0))
	d.settle()
}

func (d *hwDriver) val(name string) uint64 {
	return d.m.ReadVar(d.m.Prog().Flat.VarNamed(name)).Uint64()
}

// runHashes advances the miner until `hashes` reaches target.
func runHashes(t *testing.T, d driver, target uint64, maxTicks int) {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		if d.val("hashes") >= target {
			return
		}
		d.tick()
	}
	t.Fatalf("miner did not complete %d hashes in %d ticks (done %d)", target, maxTicks, d.val("hashes"))
}

func TestMinerMatchesCryptoSHA256(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Target = 0 // never found: just hash sequentially
	f := buildFlat(t, cfg)
	d := &simDriver{s: sim.New(f, sim.Options{}), clk: f.VarNamed("clk")}
	d.settle()
	for n := uint32(0); n < 3; n++ {
		runHashes(t, d, uint64(n+1), (int(n)+2)*CyclesPerHash+4)
		got := uint32(d.val("hash0"))
		want := cfg.refDigestWord0(n)
		if got != want {
			t.Fatalf("nonce %d: hardware hash0=%08x, crypto/sha256=%08x", n, got, want)
		}
	}
}

func TestMinerCompiledEngineMatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Target = 0
	f := buildFlat(t, cfg)
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	d := &hwDriver{m: netlist.NewMachine(prog), clk: f.VarNamed("clk")}
	d.settle()
	runHashes(t, d, 2, 3*CyclesPerHash)
	got := uint32(d.val("hash0"))
	want := cfg.refDigestWord0(1)
	if got != want {
		t.Fatalf("compiled engine hash0=%08x, want %08x", got, want)
	}
}

func TestMinerFindsNonce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Target = 0x10000000 // ~1/16 hashes solve
	wantNonce, ok := cfg.FindNonce(1000)
	if !ok {
		t.Fatal("reference search found nothing")
	}
	f := buildFlat(t, cfg)
	d := &simDriver{s: sim.New(f, sim.Options{}), clk: f.VarNamed("clk")}
	d.settle()
	maxTicks := (int(wantNonce-cfg.StartNonce) + 2) * CyclesPerHash
	for i := 0; i < maxTicks+10; i++ {
		if d.val("found") == 1 {
			break
		}
		d.tick()
	}
	if d.val("found") != 1 {
		t.Fatal("miner never found a solution")
	}
	if got := uint32(d.val("solution")); got != wantNonce {
		t.Fatalf("solution nonce=%d, want %d", got, wantNonce)
	}
}

func TestMinerDisplayAndFinish(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Target = 0xffffffff // first hash always solves
	cfg.Display = true
	cfg.FinishOnFind = true
	f := buildFlat(t, cfg)
	var out string
	finished := false
	s := sim.New(f, sim.Options{
		Display: func(text string) { out += text },
		Finish:  func(int) { finished = true },
	})
	d := &simDriver{s: s, clk: f.VarNamed("clk")}
	d.settle()
	for i := 0; i < CyclesPerHash+4 && !finished; i++ {
		d.tick()
	}
	if !finished {
		t.Fatal("miner did not $finish")
	}
	if out == "" || out[:5] != "FOUND" {
		t.Fatalf("display output wrong: %q", out)
	}
}

func TestMinerSynthesisStats(t *testing.T) {
	f := buildFlat(t, DefaultConfig())
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats
	// 16 schedule words + 8 working + digest/control: >900 FFs.
	if st.FFs < 900 {
		t.Fatalf("FF count %d implausibly small", st.FFs)
	}
	if st.Cells < 500 {
		t.Fatalf("cell count %d implausibly small", st.Cells)
	}
	t.Logf("pow stats: cells=%d ffs=%d crit=%d ops=%d", st.Cells, st.FFs, st.CritPath, st.CodeOps)
}

func BenchmarkMinerTickInterpreted(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Target = 0
	src := Generate(cfg)
	st, _ := verilog.ParseSourceText(src)
	f, _ := elab.Elaborate(st.Modules[0], "pow", nil)
	d := &simDriver{s: sim.New(f, sim.Options{}), clk: f.VarNamed("clk")}
	d.settle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.tick()
	}
}

func BenchmarkMinerTickCompiled(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Target = 0
	src := Generate(cfg)
	st, _ := verilog.ParseSourceText(src)
	f, _ := elab.Elaborate(st.Modules[0], "pow", nil)
	prog, err := netlist.Compile(f)
	if err != nil {
		b.Fatal(err)
	}
	d := &hwDriver{m: netlist.NewMachine(prog), clk: f.VarNamed("clk")}
	d.settle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.tick()
	}
}
