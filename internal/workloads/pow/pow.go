// Package pow generates the Verilog proof-of-work miner used by the
// paper's first benchmark (§6.1, Figure 11): a SHA-256 engine that
// combines a fixed block of data with an incrementing nonce and searches
// for a hash below a target — the computation of the open-source FPGA
// bitcoin miner the paper runs, rebuilt for Cascade-Go's Verilog subset
// and verified against crypto/sha256.
//
// The design hashes one 512-bit block: 44 bytes of header data followed
// by a 4-byte nonce, then SHA-256 padding. It computes one round per
// cycle with a sliding 16-word message schedule (the classic compact
// implementation), so one hash takes 64 round cycles plus 2 control
// cycles.
package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
)

// k holds the SHA-256 round constants.
var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

var iv = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// HeaderBytes is the fixed portion of the block (44 bytes).
const HeaderBytes = 44

// Config parameterizes the generated miner.
type Config struct {
	Header     [HeaderBytes]byte
	Target     uint32 // hash found when the first digest word < Target
	StartNonce uint32
	// Display controls whether the miner prints found nonces with
	// $display (unsynthesizable Verilog exercised from hardware).
	Display bool
	// FinishOnFind makes the miner $finish at the first solution.
	FinishOnFind bool
}

// BlockBytes assembles the 64-byte padded SHA-256 block for a nonce.
func (c *Config) BlockBytes(nonce uint32) [64]byte {
	var b [64]byte
	copy(b[:HeaderBytes], c.Header[:])
	binary.BigEndian.PutUint32(b[HeaderBytes:], nonce)
	b[48] = 0x80
	binary.BigEndian.PutUint64(b[56:], uint64(48*8))
	return b
}

// HashNonce computes the reference digest for a nonce.
func (c *Config) HashNonce(nonce uint32) [32]byte {
	b := c.BlockBytes(nonce)
	return sha256.Sum256(append(c.Header[:], b[HeaderBytes:48]...))
}

// refDigestWord0 returns the first word of SHA-256 over the 48-byte
// message (header || nonce).
func (c *Config) refDigestWord0(nonce uint32) uint32 {
	msg := make([]byte, 48)
	copy(msg, c.Header[:])
	binary.BigEndian.PutUint32(msg[44:], nonce)
	d := sha256.Sum256(msg)
	return binary.BigEndian.Uint32(d[:4])
}

// FindNonce searches from StartNonce with the reference implementation,
// returning the first solving nonce (tests and expected-value oracles).
func (c *Config) FindNonce(maxTries uint32) (uint32, bool) {
	n := c.StartNonce
	for i := uint32(0); i < maxTries; i++ {
		if c.refDigestWord0(n) < c.Target {
			return n, true
		}
		n++
	}
	return 0, false
}

// Digest computes the full reference digest words for a nonce.
func (c *Config) Digest(nonce uint32) [8]uint32 {
	msg := make([]byte, 48)
	copy(msg, c.Header[:])
	binary.BigEndian.PutUint32(msg[44:], nonce)
	d := sha256.Sum256(msg)
	var w [8]uint32
	for i := range w {
		w[i] = binary.BigEndian.Uint32(d[i*4:])
	}
	return w
}

// Generate emits the miner module. Exposed interface:
//
//	module Pow(input wire clk,
//	           output wire [31:0] hashes,  // completed hashes
//	           output wire [31:0] nonce,   // nonce under test
//	           output wire        found,   // last completed hash solved
//	           output wire [31:0] hash0,   // first word of last digest
//	           output wire [31:0] solution // last solving nonce
//	);
func Generate(c Config) string {
	var sb strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	p("module Pow(\n")
	p("  input wire clk,\n")
	p("  output wire [31:0] hashes,\n")
	p("  output wire [31:0] nonce,\n")
	p("  output wire found,\n")
	p("  output wire [31:0] hash0,\n")
	p("  output wire [31:0] solution\n")
	p(");\n")

	// Round constants as a case-selected localparam table.
	for i, kv := range k {
		p("  localparam [31:0] K%d = 32'h%08x;\n", i, kv)
	}
	for i, v := range iv {
		p("  localparam [31:0] IV%d = 32'h%08x;\n", i, v)
	}
	// Message words M0..M11 (header), M12.. padding.
	for i := 0; i < 11; i++ {
		p("  localparam [31:0] M%d = 32'h%08x;\n", i, binary.BigEndian.Uint32(c.Header[i*4:]))
	}
	p("  localparam [31:0] TARGET = 32'h%08x;\n", c.Target)

	p(`
  // Control: 0 = load, 1 = rounds, 2 = finalize.
  reg [1:0] state = 0;
  reg [6:0] t = 0;
  reg [31:0] n = 32'h%08x;      // nonce under test
  reg [31:0] done_cnt = 0;       // completed hashes
  reg found_r = 0;
  reg [31:0] h0_r = 0;
  reg [31:0] sol = 0;

  // Working registers and the sliding 16-word schedule.
  reg [31:0] a, b, c, d, e, f, g, h;
`, c.StartNonce)
	for i := 0; i < 16; i++ {
		p("  reg [31:0] w%d;\n", i)
	}

	// Round constant mux.
	p("  reg [31:0] kt;\n")
	p("  always @(*)\n    case (t[5:0])\n")
	for i := 0; i < 64; i++ {
		p("      6'd%d: kt = K%d;\n", i, i)
	}
	p("      default: kt = 0;\n    endcase\n")

	// Round combinational logic. The kt+w0 pre-add is registered into
	// the datapath implicitly via wire chains; critical path stays
	// within timing at 50 MHz.
	p(`
  wire [31:0] s1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^ {e[24:0], e[31:25]};
  wire [31:0] ch = (e & f) ^ (~e & g);
  wire [31:0] t1 = h + s1 + ch + kt + w0;
  wire [31:0] s0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^ {a[21:0], a[31:22]};
  wire [31:0] maj = (a & b) ^ (a & c) ^ (b & c);
  wire [31:0] t2 = s0 + maj;

  // Schedule extension: w16 = ssig1(w14) + w9 + ssig0(w1) + w0.
  wire [31:0] sg0 = {w1[6:0], w1[31:7]} ^ {w1[17:0], w1[31:18]} ^ (w1 >> 3);
  wire [31:0] sg1 = {w14[16:0], w14[31:17]} ^ {w14[18:0], w14[31:19]} ^ (w14 >> 10);
  wire [31:0] wnext = sg1 + w9 + sg0 + w0;

  always @(posedge clk) begin
    case (state)
      2'd0: begin // load block for nonce n
`)
	for i := 0; i < 11; i++ {
		p("        w%d <= M%d;\n", i, i)
	}
	p("        w11 <= n;\n")
	p("        w12 <= 32'h80000000;\n")
	p("        w13 <= 0;\n")
	p("        w14 <= 0;\n")
	p("        w15 <= 32'd384;\n")
	p(`        a <= IV0; b <= IV1; c <= IV2; d <= IV3;
        e <= IV4; f <= IV5; g <= IV6; h <= IV7;
        t <= 0;
        state <= 2'd1;
      end
      2'd1: begin // one SHA-256 round per cycle
        h <= g; g <= f; f <= e; e <= d + t1;
        d <= c; c <= b; b <= a; a <= t1 + t2;
`)
	for i := 0; i < 15; i++ {
		p("        w%d <= w%d;\n", i, i+1)
	}
	p("        w15 <= wnext;\n")
	p(`        if (t == 7'd63)
          state <= 2'd2;
        t <= t + 1;
      end
      default: begin // finalize: add IV, check target, next nonce
        h0_r <= a + IV0;
        done_cnt <= done_cnt + 1;
        if (a + IV0 < TARGET) begin
          found_r <= 1;
          sol <= n;
`)
	if c.Display {
		p("          $display(\"FOUND nonce=%%h hash0=%%h\", n, a + IV0);\n")
	}
	if c.FinishOnFind {
		p("          $finish;\n")
	}
	p(`        end else begin
          found_r <= 0;
        end
        n <= n + 1;
        state <= 2'd0;
      end
    endcase
  end

  assign hashes = done_cnt;
  assign nonce = n;
  assign found = found_r;
  assign hash0 = h0_r;
  assign solution = sol;
endmodule
`)
	return sb.String()
}

// DefaultConfig returns the configuration used by the Figure 11
// benchmark: a deterministic header and a target that takes a few dozen
// attempts to satisfy.
func DefaultConfig() Config {
	var c Config
	for i := range c.Header {
		c.Header[i] = byte(i*7 + 3)
	}
	c.Target = 0x04000000 // ~1 in 64 hashes solve
	return c
}

// CyclesPerHash is the number of clock ticks one hash attempt takes
// (load + 64 rounds + finalize).
const CyclesPerHash = 66
