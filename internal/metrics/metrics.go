// Package metrics computes the static program statistics the paper
// aggregates in Table 1 over student solutions: lines of Verilog code,
// always blocks, blocking and non-blocking assignment counts, and display
// statements, plus build counts taken from instrumented-runtime logs.
package metrics

import (
	"fmt"
	"strings"

	"cascade/internal/verilog"
)

// Report holds the Table 1 statistics for one program.
type Report struct {
	Lines              int // non-empty source lines
	AlwaysBlocks       int
	BlockingAssigns    int
	NonblockingAssigns int
	DisplayStmts       int // $display/$write/$monitor occurrences
	Builds             int // from the build log; 0 when no log was kept
}

// Analyze parses src (modules plus root items) and counts its features.
func Analyze(src string) (Report, error) {
	var r Report
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			r.Lines++
		}
	}
	mods, items, errs := verilog.ParseProgramFragment(src)
	if len(errs) > 0 {
		return r, fmt.Errorf("metrics: %v", errs[0])
	}
	for _, m := range mods {
		for _, it := range m.Items {
			r.countItem(it)
		}
	}
	for _, it := range items {
		r.countItem(it)
	}
	return r, nil
}

func (r *Report) countItem(it verilog.Item) {
	switch x := it.(type) {
	case *verilog.AlwaysBlock:
		r.AlwaysBlocks++
		r.countStmt(x.Body)
	case *verilog.InitialBlock:
		r.countStmt(x.Body)
	}
}

func (r *Report) countStmt(s verilog.Stmt) {
	switch x := s.(type) {
	case nil:
	case *verilog.Block:
		for _, st := range x.Stmts {
			r.countStmt(st)
		}
	case *verilog.If:
		r.countStmt(x.Then)
		r.countStmt(x.Else)
	case *verilog.Case:
		for _, item := range x.Items {
			r.countStmt(item.Body)
		}
	case *verilog.For:
		// The loop header's init/post are not counted (they are control,
		// not dataflow, in the paper's accounting).
		r.countStmt(x.Body)
	case *verilog.ProcAssign:
		if x.Blocking {
			r.BlockingAssigns++
		} else {
			r.NonblockingAssigns++
		}
	case *verilog.SysTask:
		switch x.Name {
		case "$display", "$write", "$monitor":
			r.DisplayStmts++
		}
	}
}

// Aggregate summarizes many reports as Table 1 does: mean, min, max.
type Aggregate struct {
	N                                 int
	WithLogs                          int
	Lines, Always, Blocking, Nonblock Stat
	Display, Builds                   Stat
}

// Stat is one mean/min/max row.
type Stat struct {
	Mean     float64
	Min, Max int
}

func summarize(vals []int) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	s := Stat{Min: vals[0], Max: vals[0]}
	total := 0
	for _, v := range vals {
		total += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(total) / float64(len(vals))
	return s
}

// Summarize aggregates reports; build statistics cover only reports with
// a log (Builds > 0), matching the paper's 23-of-31 submission of logs.
func Summarize(reports []Report) Aggregate {
	agg := Aggregate{N: len(reports)}
	var lines, always, blocking, nonblock, display, builds []int
	for _, r := range reports {
		lines = append(lines, r.Lines)
		always = append(always, r.AlwaysBlocks)
		blocking = append(blocking, r.BlockingAssigns)
		nonblock = append(nonblock, r.NonblockingAssigns)
		display = append(display, r.DisplayStmts)
		if r.Builds > 0 {
			builds = append(builds, r.Builds)
			agg.WithLogs++
		}
	}
	agg.Lines = summarize(lines)
	agg.Always = summarize(always)
	agg.Blocking = summarize(blocking)
	agg.Nonblock = summarize(nonblock)
	agg.Display = summarize(display)
	agg.Builds = summarize(builds)
	return agg
}

// Rows renders the aggregate in the paper's Table 1 layout.
func (a Aggregate) Rows() []string {
	row := func(name string, s Stat) string {
		return fmt.Sprintf("%-28s %8.0f %6d %6d", name, s.Mean, s.Min, s.Max)
	}
	return []string{
		fmt.Sprintf("%-28s %8s %6s %6s", "", "mean", "min", "max"),
		row("Lines of Verilog code", a.Lines),
		row("Always blocks", a.Always),
		row("Blocking-assignments", a.Blocking),
		row("Nonblocking-assignments", a.Nonblock),
		row("Display statements", a.Display),
		row("Number of builds", a.Builds),
	}
}
