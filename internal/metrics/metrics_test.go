package metrics

import (
	"strings"
	"testing"
)

func TestAnalyzeCountsEverything(t *testing.T) {
	rep, err := Analyze(`
// comment line (non-empty: counted)
module M(input wire clk);
  reg [3:0] a, b;
  always @(posedge clk) begin
    a <= a + 1;          // nonblocking
    b = a;               // blocking
    $display("%d", a);
    $write("x");
  end
  always @(*) b = a;     // blocking
  initial $monitor("%d", b);
endmodule
wire root_w;
always @(posedge clk.val) root_w <= 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlwaysBlocks != 3 {
		t.Fatalf("always=%d", rep.AlwaysBlocks)
	}
	if rep.BlockingAssigns != 2 || rep.NonblockingAssigns != 2 {
		t.Fatalf("assigns=%d/%d", rep.BlockingAssigns, rep.NonblockingAssigns)
	}
	if rep.DisplayStmts != 3 { // display + write + monitor
		t.Fatalf("displays=%d", rep.DisplayStmts)
	}
	if rep.Lines < 14 {
		t.Fatalf("lines=%d", rep.Lines)
	}
}

func TestAnalyzeRejectsBrokenSource(t *testing.T) {
	if _, err := Analyze("module M("); err == nil {
		t.Fatal("broken source should error")
	}
}

func TestSummarizeAndRows(t *testing.T) {
	reps := []Report{
		{Lines: 100, AlwaysBlocks: 2, BlockingAssigns: 10, NonblockingAssigns: 2, DisplayStmts: 1, Builds: 5},
		{Lines: 300, AlwaysBlocks: 8, BlockingAssigns: 50, NonblockingAssigns: 10, DisplayStmts: 9},
	}
	agg := Summarize(reps)
	if agg.N != 2 || agg.WithLogs != 1 {
		t.Fatalf("n=%d logs=%d", agg.N, agg.WithLogs)
	}
	if agg.Lines.Mean != 200 || agg.Lines.Min != 100 || agg.Lines.Max != 300 {
		t.Fatalf("lines stat %+v", agg.Lines)
	}
	if agg.Builds.Mean != 5 { // only logged submissions count
		t.Fatalf("builds stat %+v", agg.Builds)
	}
	rows := agg.Rows()
	if len(rows) != 7 || !strings.Contains(rows[1], "Lines of Verilog code") {
		t.Fatalf("rows: %v", rows)
	}
}
