package chaos

import (
	"reflect"
	"testing"

	"cascade/internal/fault"
)

// TestScheduleDeterministic: the same config materializes the same
// plan every time — the property the invariant-14 comparison harness
// rests on.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		Seed:          42,
		Steps:         200,
		DaemonOutages: 3,
		Fault:         fault.Config{NetDrop: 0.5, MaxNetFaults: 4},
	}
	a, b := cfg.Schedule(), cfg.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different schedules:\n%v\n%v", a, b)
	}
	if len(a.Outages) != 3 {
		t.Fatalf("planned %d outages, want 3: %v", len(a.Outages), a)
	}
}

// TestScheduleSeedsDiffer: different seeds move the outages (splitmix64
// actually consumes the seed).
func TestScheduleSeedsDiffer(t *testing.T) {
	cfg := Config{Steps: 200, DaemonOutages: 3}
	cfg.Seed = 1
	a := cfg.Schedule()
	cfg.Seed = 2
	b := cfg.Schedule()
	if reflect.DeepEqual(a.Outages, b.Outages) {
		t.Fatalf("seeds 1 and 2 planned identical outages: %v", a)
	}
}

// TestScheduleBounded pins the structural guarantees: outages are
// ordered, non-overlapping, inside the horizon, and each downtime
// respects [MinDownSteps, MaxDownSteps].
func TestScheduleBounded(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		cfg := Config{
			Seed:          seed,
			Steps:         120,
			DaemonOutages: 4,
			MinDownSteps:  2,
			MaxDownSteps:  6,
		}
		s := cfg.Schedule()
		var prevRestart uint64
		for i, o := range s.Outages {
			if o.KillAtStep == 0 || o.RestartAtStep >= s.Steps {
				t.Fatalf("seed %d outage %d escapes horizon: %v", seed, i, s)
			}
			if o.KillAtStep <= prevRestart {
				t.Fatalf("seed %d outage %d overlaps predecessor: %v", seed, i, s)
			}
			down := o.RestartAtStep - o.KillAtStep
			if down < cfg.MinDownSteps || down > cfg.MaxDownSteps {
				t.Fatalf("seed %d outage %d downtime %d outside [%d,%d]: %v",
					seed, i, down, cfg.MinDownSteps, cfg.MaxDownSteps, s)
			}
			prevRestart = o.RestartAtStep
		}
	}
}

// TestScheduleZeroConfig: nothing planned, nothing injected — a chaos
// config you never filled in is a fault-free run.
func TestScheduleZeroConfig(t *testing.T) {
	s := Config{}.Schedule()
	if len(s.Outages) != 0 {
		t.Fatalf("zero config planned outages: %v", s)
	}
	in := s.Injector()
	if err := in.Net("site"); err != nil {
		t.Fatalf("zero config injected a fault: %v", err)
	}
}

// TestFaultSeedAdoption: a zero Fault.Seed inherits the schedule seed,
// so one number names the whole composed schedule.
func TestFaultSeedAdoption(t *testing.T) {
	s := Config{Seed: 7, Fault: fault.Config{NetDrop: 1, MaxNetFaults: 1}}.Schedule()
	if s.Fault.Seed != 7 {
		t.Fatalf("fault seed = %d, want adopted 7", s.Fault.Seed)
	}
	got := (Config{Seed: 7, Fault: fault.Config{Seed: 9}}).Schedule()
	if got.Fault.Seed != 9 {
		t.Fatalf("explicit fault seed overridden: %d", got.Fault.Seed)
	}
}
