// Package chaos builds deterministic, bounded fault schedules that
// compose every failure surface the runtime claims to survive: flaky
// compiles, dropped transport frames, corrupted fabric regions (all via
// internal/fault), daemon kill/restart cycles, and compile-queue
// overload. A schedule is a pure function of its Config — same seed,
// same plan — so a chaos run is replayable and, critically, comparable:
// the self-healing invariant (ROADMAP invariant 14) says a run under
// any bounded chaos schedule must produce byte-identical output to the
// fault-free run, and that is only checkable if "the schedule" is a
// value, not a coin flip per execution.
//
// The package plans; it does not execute. Injected faults are carried
// by a fault.Injector built from the schedule, and daemon outages are
// step-indexed instructions the test harness (or a driver loop) applies
// at step boundaries — kills land between steps, where the runtime's
// committed-state snapshots live, mirroring how a SIGKILL lands between
// two of the daemon's serving frames.
package chaos

import (
	"fmt"
	"strings"

	"cascade/internal/fault"
)

// Config bounds one chaos schedule. The zero value schedules nothing.
type Config struct {
	// Seed selects the schedule. Two configs with the same fields
	// materialize identical schedules.
	Seed uint64

	// Steps is the horizon: every scheduled event lands strictly inside
	// [1, Steps). Default 128.
	Steps uint64

	// DaemonOutages is how many kill/restart cycles to plan. Each
	// outage kills the daemon at a step boundary and restarts it
	// between MinDownSteps and MaxDownSteps steps later; outages never
	// overlap. Defaults: MinDownSteps 1, MaxDownSteps 4.
	DaemonOutages int
	MinDownSteps  uint64
	MaxDownSteps  uint64

	// Fault configures the injector surfaces driven alongside the
	// outages (compile faults, net drops, region faults). Its own caps
	// keep it bounded; a zero Fault.Seed adopts Seed so one number
	// replays the whole composition.
	Fault fault.Config
}

func (c *Config) fill() {
	if c.Steps == 0 {
		c.Steps = 128
	}
	if c.MinDownSteps == 0 {
		c.MinDownSteps = 1
	}
	if c.MaxDownSteps < c.MinDownSteps {
		c.MaxDownSteps = c.MinDownSteps + 3
	}
	if c.Fault.Seed == 0 {
		c.Fault.Seed = c.Seed
	}
}

// Outage is one planned daemon kill/restart cycle. The daemon is
// killed after step KillAtStep completes and restarted after step
// RestartAtStep completes (KillAtStep < RestartAtStep).
type Outage struct {
	KillAtStep    uint64
	RestartAtStep uint64
}

// Schedule is a materialized chaos plan: what Config.Schedule derives,
// frozen into explicit step-indexed events.
type Schedule struct {
	Seed    uint64
	Steps   uint64
	Outages []Outage // ordered, non-overlapping
	Fault   fault.Config
}

// Schedule materializes the plan. It is deterministic: the same Config
// always yields the same Schedule, independent of call count, host, or
// goroutine interleaving (splitmix64 over the seed, no global state).
func (c Config) Schedule() Schedule {
	c.fill()
	s := Schedule{Seed: c.Seed, Steps: c.Steps, Fault: c.Fault}
	if c.DaemonOutages <= 0 {
		return s
	}
	r := rng{state: c.Seed ^ 0xc4a5cade} // offset so Fault and outages decorrelate
	// One outage per equal window of the horizon: non-overlap by
	// construction, and kills spread across the run instead of
	// clustering wherever the raw draws land.
	window := c.Steps / uint64(c.DaemonOutages)
	for i := 0; i < c.DaemonOutages; i++ {
		start := uint64(i) * window
		down := c.MinDownSteps + r.intn(c.MaxDownSteps-c.MinDownSteps+1)
		if down+2 > window {
			// Window too small for this outage: shrink the downtime so
			// the restart still lands inside it (bounded beats faithful).
			if window <= 2 {
				continue
			}
			down = window - 2
		}
		kill := start + 1 + r.intn(window-down-1)
		s.Outages = append(s.Outages, Outage{
			KillAtStep:    kill,
			RestartAtStep: kill + down,
		})
	}
	return s
}

// Injector builds the schedule's fault injector. Each call returns a
// fresh injector at trial zero, so a comparison harness can give the
// serial and parallel arms identical fault timelines.
func (s Schedule) Injector() *fault.Injector {
	return fault.New(s.Fault)
}

// String renders the plan compactly for logs and test failures.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos[seed=%d steps=%d", s.Seed, s.Steps)
	for _, o := range s.Outages {
		fmt.Fprintf(&b, " kill@%d..%d", o.KillAtStep, o.RestartAtStep)
	}
	b.WriteString("]")
	return b.String()
}

// rng is splitmix64: tiny, seedable, and stable across platforms —
// the same generator internal/fault hashes with, reused here so the
// schedule never depends on math/rand's version-varying streams.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a draw in [0, n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}
