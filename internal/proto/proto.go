// Package proto defines the serializable message protocol spoken across
// the runtime↔engine boundary. The paper's engine ABI (§3.5, Figure 7)
// is target-agnostic by design; making each ABI request an explicit,
// versioned message is what lets a subprogram live behind a transport —
// in-process today, a TCP hop to a remote engine daemon tomorrow (the
// direction SYNERGY pushed the Cascade architecture in).
//
// One request/reply pair models one ABI round-trip. Unsynthesizable side
// effects ($display, $finish) do not get their own callback channel:
// engines buffer them and every reply piggybacks the buffered events, so
// IO is delivered on the goroutine that issued the request and the
// runtime's deterministic lane-drain ordering is preserved no matter
// which transport carried the message.
//
// The binary codec (codec.go) is compact and allocation-bounded: vectors
// reuse the internal/bits little-endian byte encoding, frames are
// length-prefixed and capped, and every decode path is bounds-checked so
// malformed input yields an error, never a panic.
package proto

import (
	"cascade/internal/bits"
	"cascade/internal/engine"
	"cascade/internal/sim"
)

// Version is the protocol version carried in every message. A peer
// rejects versions it does not speak. Version 2 added the session
// layer: KindSessionOpen/KindSessionClose and the Session, Quota, and
// Share request fields that let one daemon host independent tenants.
// Version 3 added KindPing liveness probes for supervision and
// half-open connection detection. Version 4 added the compile-farm
// kinds (KindCompileSubmit/Status/Cancel, KindCacheFetch/CachePut) and
// the Farm request/reply payloads, letting a daemon host the back half
// of compile flows and a replicated bitstream cache for remote clients.
const Version = 4

// Kind identifies the ABI request a message carries.
type Kind uint8

// Message kinds. KindSpawn instantiates a subprogram on the serving
// host from shipped source; the rest mirror Figure 7 of the paper.
const (
	KindSpawn Kind = iota + 1
	KindRead
	KindDrainWrites
	KindThereAreEvals
	KindEvaluate
	KindThereAreUpdates
	KindUpdate
	KindGetState
	KindSetState
	KindEndStep
	KindEnd
	// KindSessionOpen opens a tenant session on the daemon: the host
	// carves a fabric region of Quota LEs, registers the tenant on its
	// toolchain with a fair-share of Share workers, and replies with
	// the session ID. KindSessionClose tears the session down, ending
	// its engines and releasing its region. Engines spawned with a
	// non-zero Session field are owned by (and isolated to) that
	// session.
	KindSessionOpen
	KindSessionClose
	// KindPing is a liveness probe: the host answers immediately,
	// before any engine or session lookup, so the reply measures only
	// daemon reachability. The supervisor's heartbeat probes use it,
	// and the TCP transport sends one after every reconnect so a
	// socket that dialed but died (half-open) fails at probe cost
	// instead of burning the whole retry budget.
	KindPing
	// Compile-farm kinds (a daemon started as -compile-worker serves
	// them; see internal/toolchain's FarmBackend and Worker).
	// KindCompileSubmit runs the back half of one compile flow — cache
	// consultation, the place-and-route model, durable storage — against
	// the worker's shard-local cache tiers and returns the outcome.
	// KindCompileStatus polls a key's cache state without compiling.
	// KindCompileCancel is a no-op acknowledgement: like Job.Cancel, the
	// flow still runs to completion so the bitstream reaches the cache —
	// cancellation drops the subscription, never the artifact.
	// KindCacheFetch asks the worker's bitstream cache for a key (the
	// farm's peer-fetch tier); KindCachePut replicates a verified
	// outcome onto the worker.
	KindCompileSubmit
	KindCompileStatus
	KindCompileCancel
	KindCacheFetch
	KindCachePut
	kindMax
)

func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "spawn"
	case KindRead:
		return "read"
	case KindDrainWrites:
		return "drain_writes"
	case KindThereAreEvals:
		return "there_are_evals"
	case KindEvaluate:
		return "evaluate"
	case KindThereAreUpdates:
		return "there_are_updates"
	case KindUpdate:
		return "update"
	case KindGetState:
		return "get_state"
	case KindSetState:
		return "set_state"
	case KindEndStep:
		return "end_step"
	case KindEnd:
		return "end"
	case KindSessionOpen:
		return "session_open"
	case KindSessionClose:
		return "session_close"
	case KindPing:
		return "ping"
	case KindCompileSubmit:
		return "compile_submit"
	case KindCompileStatus:
		return "compile_status"
	case KindCompileCancel:
		return "compile_cancel"
	case KindCacheFetch:
		return "cache_fetch"
	case KindCachePut:
		return "cache_put"
	}
	return "invalid"
}

// IOKind classifies a piggybacked IO event.
type IOKind uint8

// IO event kinds ($display text and $finish).
const (
	IODisplay IOKind = iota + 1
	IOFinish
)

// IOEvent is one buffered unsynthesizable side effect, carried back to
// the requesting side on the next reply for its engine.
type IOEvent struct {
	Kind    IOKind
	Text    string // IODisplay
	Newline bool   // IODisplay
	Code    int    // IOFinish
}

// Request is one ABI request. Kind selects which fields are meaningful;
// unused fields are zero and occupy no space on the wire.
type Request struct {
	Kind   Kind
	Engine uint32 // host-assigned engine ID (0 for Spawn)
	Now    uint64 // $time feed: the runtime's current step counter
	VNow   uint64 // virtual time in ps (host-side JIT readiness)

	// Spawn: instantiate Source (a self-contained module declaration)
	// elaborated at instance path Path with parameter bindings Params.
	// Eager selects the naive re-evaluation ablation; JIT lets the host
	// promote the engine to its own fabric in the background.
	Path   string
	Source string
	Params map[string]*bits.Vector
	Eager  bool
	JIT    bool

	// Read: the input event being delivered.
	Var string
	Val *bits.Vector

	// SetState: the snapshot to install.
	State *sim.State

	// Session scopes the request to a daemon-side tenant session:
	// Spawn binds the new engine to it, SessionClose names the session
	// to tear down. 0 is the legacy sessionless arrangement (the whole
	// daemon fabric is one tenant).
	Session uint32
	// SessionOpen: the requested fabric region size in LEs (0 takes
	// the daemon default) and compile-worker fair share (0: global
	// pool only). Path doubles as the requested tenant name.
	Quota uint64
	Share uint64

	// Farm carries the compile-farm kinds' payload (nil otherwise).
	Farm *FarmJob
}

// FarmJob is the payload of the compile-farm request kinds. A
// CompileSubmit ships the cache key plus the synthesized netlist's
// summary — the toolchain's fit and timing models run from the summary
// alone, so the worker never sees (or re-synthesizes) source, and the
// client keeps the netlist for its own fabric. CacheFetch/Status/Cancel
// use only Key; CachePut adds the verified outcome being replicated.
type FarmJob struct {
	Key       string
	Name      string
	Wrapped   bool
	SubmitPs  uint64
	BackoffPs uint64

	// Netlist summary (CompileSubmit).
	Cells    int
	FFs      int
	MemBits  int
	CritPath int

	// Verified outcome (CachePut). Publish marks the key's bitstream
	// delivered instead of shipping a new outcome: the worker flips the
	// entry so identical submissions hit outright on any clock.
	AreaLEs    int
	RawAreaLEs int
	Publish    bool
}

// Reply is the response to one Request. Err is an engine-level failure
// rendered as text (transport-level failures surface as Go errors from
// the transport instead). Every reply carries the engine's current
// location, its metered work since the previous reply, and any buffered
// IO events.
type Reply struct {
	Kind   Kind
	Engine uint32 // Spawn: the assigned engine ID
	Err    string
	Loc    engine.Location
	Usage  engine.Usage
	IO     []IOEvent

	Bool   bool           // ThereAreEvals / ThereAreUpdates
	Events []engine.Event // DrainWrites
	State  *sim.State     // GetState

	// Epoch is the serving host's boot epoch, stamped on every reply: a
	// nonzero value that changes when the host process restarts. A
	// transport that sees the epoch change knows the daemon it
	// reconnected to is not the one that holds its engines' state — even
	// if a journal re-bound the engine IDs — and can fail the call with
	// a typed error instead of silently executing against stale state.
	// 0 means the host predates epochs or the reply is synthetic.
	Epoch uint32

	// Farm carries a compile-farm reply's payload (nil otherwise).
	Farm *FarmResult
}

// FarmResult is the outcome of one compile-farm request. FlowErr is a
// design verdict (no fit, failed timing closure) as text — the client
// rewraps it so a farmed flow's error output matches a local run's byte
// for byte; transport failures surface as Go errors instead. Found
// reports a CacheFetch hit.
type FarmResult struct {
	AreaLEs    int
	RawAreaLEs int
	CritPath   int
	DurationPs uint64
	CacheHit   bool
	HitSource  string
	FlowErr    string
	Found      bool
}
