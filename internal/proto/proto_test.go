package proto

import (
	"bytes"
	"reflect"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/engine"
	"cascade/internal/sim"
)

func testState() *sim.State {
	return &sim.State{
		Scalars: map[string]*bits.Vector{
			"cnt": bits.FromUint64(8, 0xa5),
			"big": bits.FromUint64(97, 1).ShlUint(96).Or(bits.FromUint64(97, 0xdeadbeef)),
		},
		Arrays: map[string][]*bits.Vector{
			"mem": {bits.FromUint64(16, 1), bits.FromUint64(16, 0xffff), bits.New(16)},
		},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Kind: KindSpawn, Now: 3, VNow: 1e12, Path: "main.m", Source: "module m(); endmodule",
			Params: map[string]*bits.Vector{"W": bits.FromUint64(32, 8)}, Eager: true, JIT: true},
		{Kind: KindRead, Engine: 7, Now: 11, Var: "clk", Val: bits.FromUint64(1, 1)},
		{Kind: KindSetState, Engine: 2, State: testState()},
		{Kind: KindEvaluate, Engine: 9, Now: 1 << 40, VNow: 1 << 50},
		{Kind: KindGetState, Engine: 1},
		{Kind: KindEnd, Engine: 3},
		{Kind: KindSpawn, Path: "main.m", Source: "module m(); endmodule", JIT: true, Session: 4},
		{Kind: KindSessionOpen, Path: "tenant-a", Quota: 12_000, Share: 2},
		{Kind: KindSessionClose, Session: 9},
		{Kind: KindCompileSubmit, VNow: 7, Farm: &FarmJob{
			Key: "fp|wrapped=true", Name: "main.m", Wrapped: true,
			SubmitPs: 1 << 44, BackoffPs: 5e12,
			Cells: 1200, FFs: 340, MemBits: 4096, CritPath: 17}},
		{Kind: KindCompileStatus, Farm: &FarmJob{Key: "fp|wrapped=false"}},
		{Kind: KindCompileCancel, Farm: &FarmJob{Key: "fp|wrapped=false"}},
		{Kind: KindCacheFetch, Farm: &FarmJob{Key: "tenant=a|fp"}},
		{Kind: KindCachePut, Farm: &FarmJob{Key: "fp", AreaLEs: 900, RawAreaLEs: 840, CritPath: 12}},
		{Kind: KindCachePut, Farm: &FarmJob{Key: "fp", Publish: true}},
	}
	for _, req := range reqs {
		enc := EncodeRequest(nil, req)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", req.Kind, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%v: round trip mismatch\n got %+v\nwant %+v", req.Kind, got, req)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	reps := []*Reply{
		{Kind: KindSpawn, Engine: 12, Loc: engine.Software,
			IO: []IOEvent{{Kind: IODisplay, Text: "hello", Newline: true}}},
		{Kind: KindThereAreEvals, Engine: 1, Bool: true, Usage: engine.Usage{Ops: 41, Msgs: 2}},
		{Kind: KindDrainWrites, Engine: 1, Loc: engine.Hardware,
			Usage:  engine.Usage{Cycles: 99, Msgs: 3},
			Events: []engine.Event{{Var: "out", Val: bits.FromUint64(8, 0x42)}},
			IO:     []IOEvent{{Kind: IOFinish, Code: 2}}},
		{Kind: KindGetState, Engine: 4, State: testState()},
		{Kind: KindEvaluate, Engine: 5, Err: "engine 5 unknown"},
		{Kind: KindCompileSubmit, Epoch: 3, Farm: &FarmResult{
			AreaLEs: 910, RawAreaLEs: 850, CritPath: 14, DurationPs: 47e12,
			CacheHit: true, HitSource: "disk"}},
		{Kind: KindCompileSubmit, Farm: &FarmResult{FlowErr: "toolchain: design requires 99 LEs"}},
		{Kind: KindCacheFetch, Farm: &FarmResult{Found: true, AreaLEs: 1, RawAreaLEs: 1, CritPath: 1}},
	}
	for _, rep := range reps {
		enc := EncodeReply(nil, rep)
		var got Reply
		if err := DecodeReply(enc, &got); err != nil {
			t.Fatalf("%v: decode: %v", rep.Kind, err)
		}
		if !reflect.DeepEqual(&got, rep) {
			t.Errorf("%v: round trip mismatch\n got %+v\nwant %+v", rep.Kind, &got, rep)
		}
	}
}

// TestStateEncodingDeterministic checks that identical states produce
// identical bytes (map iteration order must not leak into the wire).
func TestStateEncodingDeterministic(t *testing.T) {
	a := appendState(nil, testState())
	for i := 0; i < 32; i++ {
		if b := appendState(nil, testState()); !bytes.Equal(a, b) {
			t.Fatal("state encoding varies across runs")
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeRequest(nil, &Request{Kind: KindRead, Engine: 1, Var: "x", Val: bits.FromUint64(8, 1)})
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99, byte(KindRead)},
		"bad kind":     {Version, 0},
		"kind too big": {Version, byte(kindMax)},
		"truncated":    valid[:len(valid)-2],
		"trailing":     append(append([]byte{}, valid...), 0xff),
		"huge count": append(EncodeRequest(nil, &Request{Kind: KindSpawn})[:0],
			Version, byte(KindSpawn), 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f),
	}
	for name, data := range cases {
		if _, err := DecodeRequest(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	var rep Reply
	if err := DecodeReply([]byte{Version, byte(KindEvaluate), 1}, &rep); err == nil {
		t.Error("reply decode accepted truncated input")
	}
}

func TestFraming(t *testing.T) {
	payload := EncodeReply(nil, &Reply{Kind: KindEndStep, Engine: 8})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame payload mismatch")
	}
	// Oversized header is rejected without reading the body.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hdr, nil); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(&bytes.Buffer{}, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := AppendFrame(nil, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized append: got %v, want ErrFrameTooLarge", err)
	}
}

func TestVectorBytesRoundTrip(t *testing.T) {
	for _, w := range []int{1, 7, 8, 9, 63, 64, 65, 128, 257} {
		v := bits.FromUint64(w, 0x1234567890abcdef)
		got := bits.FromBytesLE(w, v.AppendBytesLE(nil))
		if !got.Equal(v) || got.Width() != w {
			t.Errorf("width %d: bytes round trip mismatch: %v vs %v", w, got, v)
		}
	}
	// Excess input bits beyond the width are truncated (normalization).
	v := bits.FromBytesLE(4, []byte{0xff, 0xff})
	if v.Uint64() != 0xf {
		t.Errorf("FromBytesLE did not normalize: %v", v)
	}
}
