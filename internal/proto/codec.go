package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"cascade/internal/bits"
	"cascade/internal/engine"
	"cascade/internal/sim"
)

// MaxFrame caps the length of one framed message. It bounds what a
// decoder will allocate on behalf of a peer; a GetState reply for any
// realistic subprogram fits with orders of magnitude to spare.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a frame whose declared length exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")

// errShort is the generic truncated-message error.
var errShort = errors.New("proto: truncated message")

// encoding ---------------------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendVec encodes a vector as uvarint(width) + ByteLen little-endian
// bytes. A nil vector encodes as width 0 (no vector has width 0: New
// clamps to 1).
func appendVec(dst []byte, v *bits.Vector) []byte {
	if v == nil {
		return appendUvarint(dst, 0)
	}
	dst = appendUvarint(dst, uint64(v.Width()))
	return v.AppendBytesLE(dst)
}

// appendState encodes a state snapshot: a presence byte, then scalars
// and arrays in sorted name order (deterministic bytes for identical
// states, so snapshot comparisons work on encodings too).
func appendState(dst []byte, st *sim.State) []byte {
	if st == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	names := make([]string, 0, len(st.Scalars))
	for k := range st.Scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = appendUvarint(dst, uint64(len(names)))
	for _, k := range names {
		dst = appendString(dst, k)
		dst = appendVec(dst, st.Scalars[k])
	}
	names = names[:0]
	for k := range st.Arrays {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = appendUvarint(dst, uint64(len(names)))
	for _, k := range names {
		dst = appendString(dst, k)
		words := st.Arrays[k]
		dst = appendUvarint(dst, uint64(len(words)))
		for _, w := range words {
			dst = appendVec(dst, w)
		}
	}
	return dst
}

func appendParams(dst []byte, params map[string]*bits.Vector) []byte {
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = appendUvarint(dst, uint64(len(names)))
	for _, k := range names {
		dst = appendString(dst, k)
		dst = appendVec(dst, params[k])
	}
	return dst
}

// EncodeRequest appends req's wire encoding to dst and returns the
// extended slice.
func EncodeRequest(dst []byte, req *Request) []byte {
	dst = append(dst, Version, byte(req.Kind))
	dst = appendUvarint(dst, uint64(req.Engine))
	dst = appendUvarint(dst, req.Now)
	dst = appendUvarint(dst, req.VNow)
	switch req.Kind {
	case KindSpawn:
		dst = appendString(dst, req.Path)
		dst = appendString(dst, req.Source)
		dst = appendParams(dst, req.Params)
		dst = appendBool(dst, req.Eager)
		dst = appendBool(dst, req.JIT)
		dst = appendUvarint(dst, uint64(req.Session))
	case KindRead:
		dst = appendString(dst, req.Var)
		dst = appendVec(dst, req.Val)
	case KindSetState:
		dst = appendState(dst, req.State)
	case KindSessionOpen:
		dst = appendString(dst, req.Path)
		dst = appendUvarint(dst, req.Quota)
		dst = appendUvarint(dst, req.Share)
	case KindSessionClose:
		dst = appendUvarint(dst, uint64(req.Session))
	case KindCompileSubmit:
		f := req.Farm
		if f == nil {
			f = &FarmJob{}
		}
		dst = appendString(dst, f.Key)
		dst = appendString(dst, f.Name)
		dst = appendBool(dst, f.Wrapped)
		dst = appendUvarint(dst, f.SubmitPs)
		dst = appendUvarint(dst, f.BackoffPs)
		dst = appendUvarint(dst, uint64(int64(f.Cells)))
		dst = appendUvarint(dst, uint64(int64(f.FFs)))
		dst = appendUvarint(dst, uint64(int64(f.MemBits)))
		dst = appendUvarint(dst, uint64(int64(f.CritPath)))
	case KindCompileStatus, KindCompileCancel, KindCacheFetch:
		f := req.Farm
		if f == nil {
			f = &FarmJob{}
		}
		dst = appendString(dst, f.Key)
	case KindCachePut:
		f := req.Farm
		if f == nil {
			f = &FarmJob{}
		}
		dst = appendString(dst, f.Key)
		dst = appendUvarint(dst, uint64(int64(f.AreaLEs)))
		dst = appendUvarint(dst, uint64(int64(f.RawAreaLEs)))
		dst = appendUvarint(dst, uint64(int64(f.CritPath)))
		dst = appendBool(dst, f.Publish)
	}
	return dst
}

// EncodeReply appends rep's wire encoding to dst and returns the
// extended slice.
func EncodeReply(dst []byte, rep *Reply) []byte {
	dst = append(dst, Version, byte(rep.Kind))
	dst = appendUvarint(dst, uint64(rep.Engine))
	dst = appendString(dst, rep.Err)
	dst = append(dst, byte(rep.Loc))
	dst = appendUvarint(dst, rep.Usage.Ops)
	dst = appendUvarint(dst, rep.Usage.Cycles)
	dst = appendUvarint(dst, rep.Usage.Msgs)
	dst = appendUvarint(dst, rep.Usage.NativeOps)
	dst = appendUvarint(dst, uint64(len(rep.IO)))
	for _, ev := range rep.IO {
		dst = append(dst, byte(ev.Kind))
		switch ev.Kind {
		case IODisplay:
			dst = appendString(dst, ev.Text)
			dst = appendBool(dst, ev.Newline)
		case IOFinish:
			dst = appendUvarint(dst, uint64(int64(ev.Code)))
		}
	}
	dst = appendBool(dst, rep.Bool)
	dst = appendUvarint(dst, uint64(len(rep.Events)))
	for _, ev := range rep.Events {
		dst = appendString(dst, ev.Var)
		dst = appendVec(dst, ev.Val)
	}
	dst = appendState(dst, rep.State)
	dst = appendUvarint(dst, uint64(rep.Epoch))
	if rep.Farm == nil {
		dst = append(dst, 0)
	} else {
		f := rep.Farm
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(int64(f.AreaLEs)))
		dst = appendUvarint(dst, uint64(int64(f.RawAreaLEs)))
		dst = appendUvarint(dst, uint64(int64(f.CritPath)))
		dst = appendUvarint(dst, f.DurationPs)
		dst = appendBool(dst, f.CacheHit)
		dst = appendString(dst, f.HitSource)
		dst = appendString(dst, f.FlowErr)
		dst = appendBool(dst, f.Found)
	}
	return dst
}

// decoding ---------------------------------------------------------------

// reader is a bounds-checked cursor over one message. Every method
// reports errors through the sticky err field; callers check it once.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(errShort)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(errShort)
		return 0
	}
	r.pos += n
	return v
}

// length reads a count/length prefix and rejects values that could not
// possibly fit in the remaining bytes (each counted element occupies at
// least min bytes), so hostile prefixes never drive allocations.
func (r *reader) length(min int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64((len(r.buf)-r.pos)/min+1) {
		r.fail(fmt.Errorf("proto: length %d exceeds remaining input", v))
		return 0
	}
	return int(v)
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail(errShort)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *reader) vec() *bits.Vector {
	w := r.uvarint()
	if r.err != nil {
		return nil
	}
	if w == 0 {
		return nil
	}
	n := (int64(w) + 7) / 8
	if w > uint64(MaxFrame)*8 || n > int64(len(r.buf)-r.pos) {
		r.fail(errShort)
		return nil
	}
	v := bits.FromBytesLE(int(w), r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return v
}

// vecNonNil is vec for positions where the protocol requires a value.
func (r *reader) vecNonNil() *bits.Vector {
	v := r.vec()
	if v == nil && r.err == nil {
		r.fail(errors.New("proto: missing vector"))
	}
	return v
}

func (r *reader) state() *sim.State {
	if !r.bool() {
		return nil
	}
	st := &sim.State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	n := r.length(2)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.string()
		st.Scalars[name] = r.vecNonNil()
	}
	n = r.length(2)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.string()
		cnt := r.length(1)
		words := make([]*bits.Vector, 0, cnt)
		for j := 0; j < cnt && r.err == nil; j++ {
			words = append(words, r.vecNonNil())
		}
		st.Arrays[name] = words
	}
	if r.err != nil {
		return nil
	}
	return st
}

func (r *reader) params() map[string]*bits.Vector {
	n := r.length(2)
	if r.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]*bits.Vector, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.string()
		m[name] = r.vecNonNil()
	}
	if r.err != nil {
		return nil
	}
	return m
}

func (r *reader) header() Kind {
	v := r.u8()
	if r.err == nil && v != Version {
		r.fail(fmt.Errorf("proto: unsupported version %d", v))
		return 0
	}
	k := Kind(r.u8())
	if r.err == nil && (k == 0 || k >= kindMax) {
		r.fail(fmt.Errorf("proto: unknown message kind %d", k))
		return 0
	}
	return k
}

// finish rejects trailing garbage so decode(encode(m)) is exact.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("proto: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

// DecodeRequest parses one request message. Malformed input yields an
// error, never a panic, and allocations are bounded by len(data).
func DecodeRequest(data []byte) (*Request, error) {
	r := &reader{buf: data}
	req := &Request{Kind: r.header()}
	req.Engine = uint32(r.uvarint())
	req.Now = r.uvarint()
	req.VNow = r.uvarint()
	switch req.Kind {
	case KindSpawn:
		req.Path = r.string()
		req.Source = r.string()
		req.Params = r.params()
		req.Eager = r.bool()
		req.JIT = r.bool()
		req.Session = uint32(r.uvarint())
	case KindRead:
		req.Var = r.string()
		req.Val = r.vecNonNil()
	case KindSetState:
		req.State = r.state()
	case KindSessionOpen:
		req.Path = r.string()
		req.Quota = r.uvarint()
		req.Share = r.uvarint()
	case KindSessionClose:
		req.Session = uint32(r.uvarint())
	case KindCompileSubmit:
		f := &FarmJob{}
		f.Key = r.string()
		f.Name = r.string()
		f.Wrapped = r.bool()
		f.SubmitPs = r.uvarint()
		f.BackoffPs = r.uvarint()
		f.Cells = int(int64(r.uvarint()))
		f.FFs = int(int64(r.uvarint()))
		f.MemBits = int(int64(r.uvarint()))
		f.CritPath = int(int64(r.uvarint()))
		req.Farm = f
	case KindCompileStatus, KindCompileCancel, KindCacheFetch:
		req.Farm = &FarmJob{Key: r.string()}
	case KindCachePut:
		f := &FarmJob{}
		f.Key = r.string()
		f.AreaLEs = int(int64(r.uvarint()))
		f.RawAreaLEs = int(int64(r.uvarint()))
		f.CritPath = int(int64(r.uvarint()))
		f.Publish = r.bool()
		req.Farm = f
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeReply parses one reply message into rep (overwriting it).
func DecodeReply(data []byte, rep *Reply) error {
	r := &reader{buf: data}
	*rep = Reply{Kind: r.header()}
	rep.Engine = uint32(r.uvarint())
	rep.Err = r.string()
	rep.Loc = engine.Location(r.u8())
	rep.Usage.Ops = r.uvarint()
	rep.Usage.Cycles = r.uvarint()
	rep.Usage.Msgs = r.uvarint()
	rep.Usage.NativeOps = r.uvarint()
	n := r.length(1)
	for i := 0; i < n && r.err == nil; i++ {
		ev := IOEvent{Kind: IOKind(r.u8())}
		switch ev.Kind {
		case IODisplay:
			ev.Text = r.string()
			ev.Newline = r.bool()
		case IOFinish:
			ev.Code = int(int64(r.uvarint()))
		default:
			r.fail(fmt.Errorf("proto: unknown IO event kind %d", ev.Kind))
		}
		rep.IO = append(rep.IO, ev)
	}
	rep.Bool = r.bool()
	n = r.length(2)
	for i := 0; i < n && r.err == nil; i++ {
		ev := engine.Event{Var: r.string()}
		ev.Val = r.vecNonNil()
		rep.Events = append(rep.Events, ev)
	}
	rep.State = r.state()
	rep.Epoch = uint32(r.uvarint())
	if r.bool() {
		f := &FarmResult{}
		f.AreaLEs = int(int64(r.uvarint()))
		f.RawAreaLEs = int(int64(r.uvarint()))
		f.CritPath = int(int64(r.uvarint()))
		f.DurationPs = r.uvarint()
		f.CacheHit = r.bool()
		f.HitSource = r.string()
		f.FlowErr = r.string()
		f.Found = r.bool()
		rep.Farm = f
	}
	return r.finish()
}

// framing ----------------------------------------------------------------

// AppendFrame appends payload to dst as one length-prefixed frame
// (little-endian u32 length, then the payload).
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// WriteFrame writes payload to w as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r, reusing buf when it
// has capacity. It returns the payload (valid until the next reuse of
// buf) or an error; oversized frames fail without being read.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
