package proto

import (
	"reflect"
	"testing"

	"cascade/internal/bits"
)

// FuzzProtoRoundTrip drives both decoders with arbitrary bytes: a
// malformed frame must error (never panic, never over-allocate), and
// anything that decodes must re-encode to a byte-identical message
// (decode ∘ encode is the identity on the codec's image).
func FuzzProtoRoundTrip(f *testing.F) {
	f.Add(EncodeRequest(nil, &Request{Kind: KindSpawn, Path: "main.m",
		Source: "module m(); endmodule",
		Params: map[string]*bits.Vector{"W": bits.FromUint64(32, 8)}}))
	f.Add(EncodeRequest(nil, &Request{Kind: KindRead, Engine: 1, Var: "clk",
		Val: bits.FromUint64(1, 1)}))
	f.Add(EncodeRequest(nil, &Request{Kind: KindSetState, Engine: 2, State: testState()}))
	f.Add(EncodeReply(nil, &Reply{Kind: KindGetState, Engine: 4, State: testState()}))
	f.Add(EncodeReply(nil, &Reply{Kind: KindDrainWrites, Bool: true,
		IO: []IOEvent{{Kind: IODisplay, Text: "x", Newline: true}, {Kind: IOFinish, Code: 1}}}))
	f.Add([]byte{Version, byte(KindEvaluate), 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			enc := EncodeRequest(nil, req)
			req2, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err)
			}
			if !reflect.DeepEqual(req, req2) {
				t.Fatalf("request not stable under encode/decode:\n%+v\n%+v", req, req2)
			}
		}
		var rep Reply
		if err := DecodeReply(data, &rep); err == nil {
			enc := EncodeReply(nil, &rep)
			var rep2 Reply
			if err := DecodeReply(enc, &rep2); err != nil {
				t.Fatalf("re-decode of re-encoded reply failed: %v", err)
			}
			if !reflect.DeepEqual(&rep, &rep2) {
				t.Fatalf("reply not stable under encode/decode:\n%+v\n%+v", &rep, &rep2)
			}
		}
	})
}
