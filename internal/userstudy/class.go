package userstudy

import (
	"fmt"
	"math/rand"
	"strings"
)

// ClassConfig parameterizes the Table 1 class-study corpus.
type ClassConfig struct {
	Students int
	WithLogs int // students who submitted build logs (23 of 31)
	Seed     int64
}

// DefaultClassConfig mirrors §6.4.
func DefaultClassConfig() ClassConfig {
	return ClassConfig{Students: 31, WithLogs: 23, Seed: 4421}
}

// Submission is one generated student solution.
type Submission struct {
	ID     int
	Source string
	Builds int // 0 when the student did not submit a log
}

// GenerateClass produces the synthetic class corpus: parameterized
// Needleman-Wunsch solutions with the stylistic variation the paper
// observed — students leaned on combinational always blocks full of
// blocking assignments (8x more than non-blocking in aggregate), used
// printf heavily for debugging and final verification, and only ~29%
// arrived at pipelined (register-heavy) designs.
func GenerateClass(cfg ClassConfig) []Submission {
	r := rand.New(rand.NewSource(cfg.Seed))
	subs := make([]Submission, cfg.Students)
	for i := range subs {
		subs[i] = Submission{ID: i, Source: studentSolution(r, i)}
	}
	// Build counts: log-normal-ish distribution with a long tail (the
	// paper saw 1..123 builds, mean 27).
	perm := r.Perm(cfg.Students)
	for k := 0; k < cfg.WithLogs && k < len(perm); k++ {
		b := int(exp(r, 24)) + 1
		if r.Intn(6) == 0 {
			b += 40 + r.Intn(70) // the struggling tail
		}
		if b > 130 {
			b = 130
		}
		subs[perm[k]].Builds = b
	}
	return subs
}

// studentSolution emits one parse-clean solution with seeded stylistic
// variation.
func studentSolution(r *rand.Rand, id int) string {
	var sb strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	// Header boilerplate.
	p("// CS378H assignment 3: Needleman-Wunsch on Cascade\n")
	p("// student %d\n", id)
	for i, n := 0, 5+r.Intn(35); i < n; i++ {
		p("// note %d: remember to check the %s case\n", i, []string{"gap", "match", "edge", "wrap"}[r.Intn(4)])
	}

	seqLen := 4 + r.Intn(12)
	pipelined := r.Float64() < 0.29 // ~29% pipelined solutions (§6.4)

	// Scoring helper modules: combinational blocks stuffed with blocking
	// assignments (the style the paper calls out).
	// A "scoring table" of constants (boilerplate every solution had).
	for k := 0; k < 16; k++ {
		p("localparam [15:0] SCORE_T%d = 16'd%d;\n", k, k*3)
	}
	helpers := 1 + r.Intn(6)
	for h := 0; h < helpers; h++ {
		steps := 6 + r.Intn(14)
		p("module Score%d_%d(input wire [7:0] a, input wire [7:0] b, output reg [15:0] s);\n", id, h)
		p("  reg [15:0] t0;\n")
		p("  always @(*) begin\n")
		p("    t0 = (a == b) ? 16'd%d : 16'h%04x;\n", 1+r.Intn(3), uint16(-1-r.Intn(3)))
		for k := 0; k < steps; k++ {
			p("    t0 = t0 + %d - %d;\n", k%3, k%3)
		}
		p("    s = t0;\n")
		p("  end\n")
		p("endmodule\n\n")
	}

	// The DP core.
	p("module NWCore%d(input wire clk, output reg [15:0] score, output reg done);\n", id)
	p("  localparam N = %d;\n", seqLen)
	p("  reg [15:0] row [0:N];\n")
	p("  reg [15:0] left, diag;\n")
	p("  reg [7:0] i, j;\n")
	p("  reg [1:0] st;\n")
	if pipelined {
		p("  reg [15:0] stage1, stage2; // pipelined candidates\n")
	}
	p("  wire [15:0] up = row[j];\n")
	p("  always @(posedge clk)\n")
	p("    case (st)\n")
	p("      2'd0: begin\n")
	p("        row[j] <= j * 16'hffff;\n")
	p("        if (j == N) st <= 2'd1;\n")
	p("        j <= j + 1;\n")
	p("      end\n")
	p("      2'd1: begin\n")
	if pipelined {
		p("        stage1 <= diag + 1;\n")
		p("        stage2 <= up + 16'hffff;\n")
		p("        row[j] <= ((stage1 ^ 16'h8000) > (stage2 ^ 16'h8000)) ? stage1 : stage2;\n")
	} else {
		p("        row[j] <= ((diag + 1) ^ 16'h8000) > ((up + 16'hffff) ^ 16'h8000) ? diag + 1 : up + 16'hffff;\n")
	}
	p("        diag <= up;\n")
	p("        left <= row[j];\n")
	p("        if (j == N) begin\n")
	p("          if (i == N) begin score <= left; done <= 1; st <= 2'd2; end\n")
	p("          else begin i <= i + 1; j <= 1; end\n")
	p("        end else j <= j + 1;\n")
	p("      end\n")
	p("      default: ;\n")
	p("    endcase\n")
	p("endmodule\n\n")

	// Root items: instantiation plus the debug harness. Students relied
	// overwhelmingly on printf (§6.4).
	p("wire core_done;\nwire [15:0] core_score;\n")
	p("NWCore%d core(.clk(clk.val), .done(core_done), .score(core_score));\n", id)
	displays := 1 + r.Intn(10)
	p("reg [15:0] dbg_tick;\n")
	p("always @(posedge clk.val) begin\n")
	p("  dbg_tick <= dbg_tick + 1;\n")
	for d := 0; d < displays; d++ {
		p("  if (dbg_tick == %d) $display(\"dbg%d t=%%d score=%%d\", $time, core_score);\n", (d+1)*17, d)
	}
	p("end\n")
	if r.Intn(3) > 0 {
		p("always @(posedge clk.val) if (core_done) begin $display(\"final score %%d\", core_score); $finish; end\n")
	}
	// Some students left an experiment scratchpad behind.
	if r.Intn(2) == 0 {
		p("\n// scratch experiments kept for posterity\n")
		p("reg [7:0] scratch%d;\n", id)
		p("integer k%d;\n", id)
		p("initial begin\n")
		for k := 0; k < 2+r.Intn(6); k++ {
			p("  scratch%d = %d;\n", id, r.Intn(200))
		}
		p("  for (k%d = 0; k%d < 4; k%d = k%d + 1)\n    scratch%d = scratch%d + 1;\n", id, id, id, id, id, id)
		p("end\n")
	}
	return sb.String()
}
