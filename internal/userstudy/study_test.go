package userstudy

import (
	"testing"

	"cascade/internal/metrics"
)

func TestStudyIsDeterministic(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("n=%d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStudyReproducesPaperDirections(t *testing.T) {
	s := Summarize(Run(DefaultConfig()))
	// Paper §6.3: Cascade users performed 43% more compilations,
	// completed 21% faster, and spent 67x less time compiling. The model
	// must land in the right direction with comparable magnitude.
	if more := s.MoreBuildsPct(); more < 15 || more > 90 {
		t.Fatalf("more-builds%% = %.1f, want in [15,90] (paper: 43)", more)
	}
	if faster := s.FasterCompletionPct(); faster < 5 || faster > 45 {
		t.Fatalf("faster-completion%% = %.1f, want in [5,45] (paper: 21)", faster)
	}
	if ratio := s.CompileTimeRatio(); ratio < 25 || ratio > 250 {
		t.Fatalf("compile ratio = %.0f, want in [25,250] (paper: 67)", ratio)
	}
	// Per-build test/debug time should be only slightly lower for
	// Cascade (Figure 13's right panel).
	qPer := s.MeanDebug[EnvQuartus] / s.MeanBuilds[EnvQuartus]
	cPer := s.MeanDebug[EnvCascade] / s.MeanBuilds[EnvCascade]
	if cPer > qPer*1.1 || cPer < qPer*0.5 {
		t.Fatalf("per-build debug time should be slightly lower for cascade: q=%.2f c=%.2f", qPer, cPer)
	}
	for _, env := range []Env{EnvQuartus, EnvCascade} {
		if s.Succeeded[env] < s.N[env]-2 {
			t.Fatalf("%v: too many failed subjects (%d/%d)", env, s.Succeeded[env], s.N[env])
		}
	}
}

func TestRowsRender(t *testing.T) {
	rows := Rows(Run(DefaultConfig()))
	if len(rows) != 21 {
		t.Fatalf("rows=%d, want 21", len(rows))
	}
}

func TestClassCorpusParsesAndLandsInTable1Ranges(t *testing.T) {
	subs := GenerateClass(DefaultClassConfig())
	if len(subs) != 31 {
		t.Fatalf("students=%d", len(subs))
	}
	var reports []metrics.Report
	logs := 0
	for _, s := range subs {
		rep, err := metrics.Analyze(s.Source)
		if err != nil {
			t.Fatalf("student %d does not parse: %v\n%s", s.ID, err, s.Source)
		}
		rep.Builds = s.Builds
		if s.Builds > 0 {
			logs++
		}
		reports = append(reports, rep)
	}
	if logs != 23 {
		t.Fatalf("logs=%d, want 23", logs)
	}
	agg := metrics.Summarize(reports)

	// The paper's Table 1 (mean/min/max): lines 287/113/709, always
	// 5/2/12, blocking 57/28/132, nonblocking 7/2/33, display 11/1/32,
	// builds 27/1/123. The synthetic corpus must land in comparable
	// territory (within ~2x on the means).
	within := func(name string, got, wantMean float64) {
		if got < wantMean/2 || got > wantMean*2 {
			t.Errorf("%s mean=%.1f, want within 2x of %.1f", name, got, wantMean)
		}
	}
	within("lines", agg.Lines.Mean, 287)
	within("always", agg.Always.Mean, 5)
	within("blocking", agg.Blocking.Mean, 57)
	within("nonblocking", agg.Nonblock.Mean, 7)
	within("display", agg.Display.Mean, 11)
	within("builds", agg.Builds.Mean, 27)

	// Blocking assignments dominate non-blocking in aggregate (the
	// paper reports 8x).
	if agg.Blocking.Mean < 3*agg.Nonblock.Mean {
		t.Errorf("blocking (%.1f) should dominate nonblocking (%.1f)", agg.Blocking.Mean, agg.Nonblock.Mean)
	}
	t.Logf("table1 rows:\n%s", agg.Rows())
}

func TestMetricsOnKnownProgram(t *testing.T) {
	src := `
module M(input wire clk);
  reg [3:0] a, b;
  always @(posedge clk) begin
    a <= a + 1;
    b = a;
    $display("%d", a);
  end
  always @(*) b = a;
endmodule
wire x;
`
	rep, err := metrics.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlwaysBlocks != 2 || rep.BlockingAssigns != 2 || rep.NonblockingAssigns != 1 || rep.DisplayStmts != 1 {
		t.Fatalf("report wrong: %+v", rep)
	}
}
