// Package userstudy reproduces the paper's two human-subject experiments
// with a seeded stochastic developer-behaviour model (the substitution is
// documented in DESIGN.md: we reproduce the tooling pipeline and the
// causal mechanism — compile latency shapes the edit-compile-test loop —
// not the human population).
//
// Figure 13 (§6.3): n=20 subjects debug a 50-line LED program on either
// the Quartus-IDE flow (full compile per iteration) or Cascade (code runs
// in under a second). The model's compile latencies are taken from the
// real toolchain model on the real starter program.
//
// Table 1 (§6.4): 31 generated student solutions to Needleman-Wunsch,
// analysed with internal/metrics.
package userstudy

import (
	"fmt"
	"math"
	"math/rand"
)

// Env is the development environment a subject uses.
type Env int

// Environments.
const (
	EnvQuartus Env = iota // control group: vendor IDE, full compiles
	EnvCascade            // experiment group: JIT, sub-second starts
)

func (e Env) String() string {
	if e == EnvCascade {
		return "cascade"
	}
	return "quartus"
}

// Config parameterizes the Figure 13 study.
type Config struct {
	N    int   // subjects (half per environment)
	Seed int64 // model seed
	// Compile latencies in minutes, measured on the starter program by
	// the caller (bench harness) with the real toolchain model.
	QuartusCompileMin float64
	CascadeCompileMin float64
	// TimeCapMin aborts a subject who never completes.
	TimeCapMin float64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		N:                 20,
		Seed:              1839,
		QuartusCompileMin: 1.25, // ~75 s full flow for the 50-line starter
		CascadeCompileMin: 0.013,
		TimeCapMin:        90,
	}
}

// Result records one subject's session (one point in Figure 13).
type Result struct {
	ID         int
	Env        Env
	Skill      float64
	Bugs       int
	Builds     int
	TotalMin   float64
	CompileMin float64 // total time spent waiting on compiles
	DebugMin   float64 // total time spent testing/debugging
	Succeeded  bool
}

// AvgCompileMin returns the subject's mean per-build compile wait.
func (r Result) AvgCompileMin() float64 {
	if r.Builds == 0 {
		return 0
	}
	return r.CompileMin / float64(r.Builds)
}

// AvgDebugMin returns the subject's mean per-build test/debug time.
func (r Result) AvgDebugMin() float64 {
	if r.Builds == 0 {
		return 0
	}
	return r.DebugMin / float64(r.Builds)
}

// exp draws an exponential variate with the given mean.
func exp(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Run simulates the study. The behavioural constants encode the paper's
// qualitative findings: expensive compiles push developers toward larger,
// less frequent edits ("wasting time" anxiety), while cheap compiles
// invite smaller iterations; printf debugging trims test time slightly
// but, as the paper notes, Cascade "did not encourage sloppy thought" —
// per-iteration fix probability scales with thinking time either way.
// Run uses a matched-pairs design to keep the ten-subject arms
// comparable: consecutive subjects share ability and bug draws but work
// in different environments, so the arm difference reflects the tooling
// rather than sampling noise.
func Run(cfg Config) []Result {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []Result
	for i := 0; i < cfg.N; i += 2 {
		skill := 0.35 + 0.55*r.Float64()
		bugs := 1 + r.Intn(3)
		for k, env := range []Env{EnvQuartus, EnvCascade} {
			if i+k >= cfg.N {
				break
			}
			subject := Result{ID: i + k, Env: env, Skill: skill, Bugs: bugs}
			simulate(&subject, cfg, rand.New(rand.NewSource(cfg.Seed^int64(1000*i+7*k))))
			out = append(out, subject)
		}
	}
	return out
}

func simulate(s *Result, cfg Config, r *rand.Rand) {
	compileMin := cfg.QuartusCompileMin
	editMean, editFloor := 1.5, 0.7 // batch big edits between slow builds
	testMean, testFloor := 1.05, 0.35
	thoroughness := 0.85 // big batched edits fix bugs more often per try
	if s.Env == EnvCascade {
		compileMin = cfg.CascadeCompileMin
		editMean, editFloor = 0.45, 0.2 // small quick iterations
		testMean, testFloor = 1.0, 0.55 // printf helps a little (§6.3)
		thoroughness = 0.62             // less ground covered per iteration
	}
	bugs := s.Bugs
	for s.TotalMin < cfg.TimeCapMin {
		edit := exp(r, editMean) + editFloor
		compile := compileMin * (0.9 + 0.2*r.Float64())
		test := exp(r, testMean) + testFloor
		s.Builds++
		s.TotalMin += edit + compile + test
		s.CompileMin += compile
		s.DebugMin += test
		// Per-iteration fix probability scales with how much ground the
		// edit covered; skill dominates either way (no "sloppy thought").
		p := s.Skill * thoroughness * math.Min(edit/(editMean+editFloor), 1.5)
		if p < 0.05 {
			p = 0.05
		}
		if p > 0.95 {
			p = 0.95
		}
		if r.Float64() < p {
			bugs--
			if bugs == 0 {
				s.Succeeded = true
				return
			}
		}
	}
}

// Summary aggregates per-environment means (the comparisons quoted in
// §6.3).
type Summary struct {
	N            map[Env]int
	MeanBuilds   map[Env]float64
	MeanTotalMin map[Env]float64
	MeanCompile  map[Env]float64 // total compile minutes per subject
	MeanDebug    map[Env]float64
	Succeeded    map[Env]int
}

// Summarize computes the study's aggregate comparisons.
func Summarize(results []Result) Summary {
	s := Summary{
		N:            map[Env]int{},
		MeanBuilds:   map[Env]float64{},
		MeanTotalMin: map[Env]float64{},
		MeanCompile:  map[Env]float64{},
		MeanDebug:    map[Env]float64{},
		Succeeded:    map[Env]int{},
	}
	for _, r := range results {
		s.N[r.Env]++
		s.MeanBuilds[r.Env] += float64(r.Builds)
		s.MeanTotalMin[r.Env] += r.TotalMin
		s.MeanCompile[r.Env] += r.CompileMin
		s.MeanDebug[r.Env] += r.DebugMin
		if r.Succeeded {
			s.Succeeded[r.Env]++
		}
	}
	for env, n := range s.N {
		if n == 0 {
			continue
		}
		f := float64(n)
		s.MeanBuilds[env] /= f
		s.MeanTotalMin[env] /= f
		s.MeanCompile[env] /= f
		s.MeanDebug[env] /= f
	}
	return s
}

// MoreBuildsPct returns how many percent more compilations Cascade
// subjects performed (the paper reports 43%).
func (s Summary) MoreBuildsPct() float64 {
	if s.MeanBuilds[EnvQuartus] == 0 {
		return 0
	}
	return 100 * (s.MeanBuilds[EnvCascade]/s.MeanBuilds[EnvQuartus] - 1)
}

// FasterCompletionPct returns how many percent faster Cascade subjects
// completed the task (the paper reports 21%).
func (s Summary) FasterCompletionPct() float64 {
	if s.MeanTotalMin[EnvQuartus] == 0 {
		return 0
	}
	return 100 * (1 - s.MeanTotalMin[EnvCascade]/s.MeanTotalMin[EnvQuartus])
}

// CompileTimeRatio returns how many times less time Cascade subjects
// spent compiling (the paper reports 67x).
func (s Summary) CompileTimeRatio() float64 {
	if s.MeanCompile[EnvCascade] == 0 {
		return 0
	}
	return s.MeanCompile[EnvQuartus] / s.MeanCompile[EnvCascade]
}

// Rows renders the per-subject scatter data (Figure 13's two panels).
func Rows(results []Result) []string {
	out := []string{fmt.Sprintf("%-4s %-8s %7s %9s %12s %12s %9s",
		"id", "env", "builds", "total(m)", "avgCompile", "avgDebug", "done")}
	for _, r := range results {
		out = append(out, fmt.Sprintf("%-4d %-8s %7d %9.1f %12.2f %12.2f %9v",
			r.ID, r.Env, r.Builds, r.TotalMin, r.AvgCompileMin(), r.AvgDebugMin(), r.Succeeded))
	}
	return out
}
