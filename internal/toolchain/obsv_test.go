package toolchain

import (
	"context"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/obsv"
)

// TestObserverRecordsBilledLatency pins the compile-latency histogram to
// the toolchain's own virtual billing: every sample it records is the
// DurationPs the job service charged, so the exported histogram can
// never tell a different story than the virtual clock. Cache hits are
// billed (and recorded) too, at cache-hit latency.
func TestObserverRecordsBilledLatency(t *testing.T) {
	obs := obsv.New(obsv.Options{})
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.SetObserver(obs)

	var wantSum uint64
	durations := map[uint64]bool{}
	for _, src := range []string{smallCounter, bigDatapath} {
		j := tc.Submit(context.Background(), flatFor(t, src), false, 0)
		res := j.Result()
		if res.Err != nil {
			t.Fatalf("compile failed: %v", res.Err)
		}
		wantSum += res.DurationPs
		durations[res.DurationPs] = true
	}
	if got := obs.CompileLatency.Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}
	if got := obs.CompileLatency.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d ps, billed %d ps", got, wantSum)
	}

	// A resubmission of an unchanged design is a cache hit billed at
	// cache-hit latency — still recorded, still equal to the billing.
	j := tc.Submit(context.Background(), flatFor(t, smallCounter), false, 0)
	res := j.Result()
	if res.Err != nil {
		t.Fatalf("cached compile failed: %v", res.Err)
	}
	if !res.CacheHit {
		t.Fatal("resubmission should hit the bitstream cache")
	}
	wantSum += res.DurationPs
	if got := obs.CompileLatency.Sum(); got != wantSum {
		t.Errorf("after cache hit: histogram sum = %d ps, billed %d ps", got, wantSum)
	}
	if hits := obs.CacheHits.Value(); hits != 1 {
		t.Errorf("cache-hit counter = %d, want 1", hits)
	}
	if misses := obs.CacheMisses.Value(); misses != 2 {
		t.Errorf("cache-miss counter = %d, want 2", misses)
	}

	// Submitted at virtual time 0, each bitstream-ready event is stamped
	// exactly at its billed duration: the trace and the clock agree.
	readyStamps := map[uint64]bool{}
	for _, ev := range obs.Trace(0) {
		if ev.Kind == obsv.EvBitstreamReady {
			readyStamps[ev.VPs] = true
		}
	}
	for d := range durations {
		if !readyStamps[d] {
			t.Errorf("no bitstream-ready event stamped at billed duration %d ps (stamps %v)",
				d, readyStamps)
		}
	}
}
