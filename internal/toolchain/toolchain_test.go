package toolchain

import (
	"strings"
	"testing"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
)

func flatFor(t *testing.T, src string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const smallCounter = `
module M(input wire clk, output reg [7:0] q);
  always @(posedge clk) q <= q + 1;
endmodule`

const bigDatapath = `
module M(input wire clk, input wire [31:0] x);
  reg [31:0] a, b, c, d;
  always @(posedge clk) begin
    a <= x * x + a;
    b <= a * x + b;
    c <= b * a + c;
    d <= c * b + d;
  end
endmodule`

func TestLatencyGrowsSuperlinearly(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	small := tc.CompileSync(flatFor(t, smallCounter), false)
	big := tc.CompileSync(flatFor(t, bigDatapath), false)
	if small.Err != nil || big.Err != nil {
		t.Fatalf("errs: %v %v", small.Err, big.Err)
	}
	if big.RawAreaLEs <= small.RawAreaLEs {
		t.Fatalf("area ordering wrong: %d <= %d", big.RawAreaLEs, small.RawAreaLEs)
	}
	if big.DurationPs <= small.DurationPs {
		t.Fatalf("latency ordering wrong: %d <= %d", big.DurationPs, small.DurationPs)
	}
	// Superlinearity: latency ratio exceeds area ratio.
	areaRatio := float64(big.RawAreaLEs) / float64(small.RawAreaLEs)
	durRatio := float64(big.DurationPs-DefaultOptions().BasePs) / float64(small.DurationPs-DefaultOptions().BasePs)
	if durRatio <= areaRatio {
		t.Fatalf("latency should grow superlinearly: dur %.2fx vs area %.2fx", durRatio, areaRatio)
	}
}

func TestWrappedCostsAreaAndLittleLatency(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	f := flatFor(t, smallCounter)
	native := tc.CompileSync(f, false)
	wrapped := tc.CompileSync(f, true)
	if wrapped.AreaLEs <= native.RawAreaLEs {
		t.Fatal("wrapper should cost area")
	}
	if wrapped.DurationPs < native.DurationPs || wrapped.DurationPs > native.DurationPs*13/10 {
		t.Fatalf("wrapped latency should be a small constant over native: %d vs %d",
			wrapped.DurationPs, native.DurationPs)
	}
	if tc.Compiles() != 2 {
		t.Fatalf("compile count %d", tc.Compiles())
	}
}

func TestFitFailure(t *testing.T) {
	dev := fpga.NewDevice(10, 50_000_000)
	tc := New(dev, DefaultOptions())
	res := tc.CompileSync(flatFor(t, smallCounter), true)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "does not fit") &&
		!strings.Contains(res.Err.Error(), "device has") {
		t.Fatalf("expected fit failure, got %v", res.Err)
	}
}

func TestTimingClosureFailure(t *testing.T) {
	// A long combinational divide chain cannot close 50 MHz timing.
	src := `
module M(input wire clk, input wire [31:0] x, output wire [31:0] y);
  wire [31:0] a, b;
  assign a = x / 7;
  assign b = a / 5;
  assign y = b / 3;
endmodule`
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, src), false)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "timing closure") {
		t.Fatalf("expected timing failure, got %v", res.Err)
	}
	// A faster device closes it.
	slow := fpga.NewDevice(110_000, 5_000_000) // 5 MHz
	res2 := New(slow, DefaultOptions()).CompileSync(flatFor(t, src), false)
	if res2.Err != nil {
		t.Fatalf("5 MHz device should close timing: %v", res2.Err)
	}
}

func TestSynthesisErrorSurfacesQuickly(t *testing.T) {
	src := `
module M(input wire clk);
  wire a, b;
  assign a = b;
  assign b = a | clk;
endmodule`
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, src), true)
	if res.Err == nil {
		t.Fatal("combinational loop should fail synthesis")
	}
	if res.DurationPs >= DefaultOptions().BasePs {
		t.Fatal("front-end rejections should be fast")
	}
}

func TestJobReadiness(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	now := uint64(1000)
	job := tc.Submit(flatFor(t, smallCounter), true, now)
	if job.Ready(now) {
		t.Fatal("job ready immediately")
	}
	if !job.Ready(job.ReadyAtPs) {
		t.Fatal("job not ready at its deadline")
	}
	if job.ReadyAtPs-now != job.Res.DurationPs {
		t.Fatal("deadline arithmetic wrong")
	}
}

func TestScaleDividesLatency(t *testing.T) {
	dev := fpga.NewCycloneV()
	o := DefaultOptions()
	base := New(dev, o).CompileSync(flatFor(t, smallCounter), false)
	o.Scale = 100
	fast := New(dev, o).CompileSync(flatFor(t, smallCounter), false)
	ratio := float64(base.DurationPs) / float64(fast.DurationPs)
	if ratio < 80 || ratio > 120 {
		t.Fatalf("scale=100 should divide latency ~100x, got %.1fx", ratio)
	}
}

func TestPaperCalibration(t *testing.T) {
	// The calibration targets of DefaultOptions: a trivial design in
	// roughly a minute, documented in EXPERIMENTS.md.
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, smallCounter), false)
	sec := float64(res.DurationPs) / float64(vclock.S)
	if sec < 30 || sec > 300 {
		t.Fatalf("trivial-design latency %.0fs out of calibration band", sec)
	}
}
