package toolchain

import (
	"context"
	"strings"
	"testing"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
)

func flatFor(t *testing.T, src string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const smallCounter = `
module M(input wire clk, output reg [7:0] q);
  always @(posedge clk) q <= q + 1;
endmodule`

const bigDatapath = `
module M(input wire clk, input wire [31:0] x);
  reg [31:0] a, b, c, d;
  always @(posedge clk) begin
    a <= x * x + a;
    b <= a * x + b;
    c <= b * a + c;
    d <= c * b + d;
  end
endmodule`

func TestLatencyGrowsSuperlinearly(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	small := tc.CompileSync(flatFor(t, smallCounter), false)
	big := tc.CompileSync(flatFor(t, bigDatapath), false)
	if small.Err != nil || big.Err != nil {
		t.Fatalf("errs: %v %v", small.Err, big.Err)
	}
	if big.RawAreaLEs <= small.RawAreaLEs {
		t.Fatalf("area ordering wrong: %d <= %d", big.RawAreaLEs, small.RawAreaLEs)
	}
	if big.DurationPs <= small.DurationPs {
		t.Fatalf("latency ordering wrong: %d <= %d", big.DurationPs, small.DurationPs)
	}
	// Superlinearity: latency ratio exceeds area ratio.
	areaRatio := float64(big.RawAreaLEs) / float64(small.RawAreaLEs)
	durRatio := float64(big.DurationPs-DefaultOptions().BasePs) / float64(small.DurationPs-DefaultOptions().BasePs)
	if durRatio <= areaRatio {
		t.Fatalf("latency should grow superlinearly: dur %.2fx vs area %.2fx", durRatio, areaRatio)
	}
}

func TestWrappedCostsAreaAndLittleLatency(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	f := flatFor(t, smallCounter)
	native := tc.CompileSync(f, false)
	wrapped := tc.CompileSync(f, true)
	if wrapped.AreaLEs <= native.RawAreaLEs {
		t.Fatal("wrapper should cost area")
	}
	if wrapped.DurationPs < native.DurationPs || wrapped.DurationPs > native.DurationPs*13/10 {
		t.Fatalf("wrapped latency should be a small constant over native: %d vs %d",
			wrapped.DurationPs, native.DurationPs)
	}
	if tc.Compiles() != 2 {
		t.Fatalf("compile count %d", tc.Compiles())
	}
}

func TestFitFailure(t *testing.T) {
	dev := fpga.NewDevice(10, 50_000_000)
	tc := New(dev, DefaultOptions())
	res := tc.CompileSync(flatFor(t, smallCounter), true)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "does not fit") &&
		!strings.Contains(res.Err.Error(), "device has") {
		t.Fatalf("expected fit failure, got %v", res.Err)
	}
}

func TestTimingClosureFailure(t *testing.T) {
	// A long combinational divide chain cannot close 50 MHz timing.
	src := `
module M(input wire clk, input wire [31:0] x, output wire [31:0] y);
  wire [31:0] a, b;
  assign a = x / 7;
  assign b = a / 5;
  assign y = b / 3;
endmodule`
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, src), false)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "timing closure") {
		t.Fatalf("expected timing failure, got %v", res.Err)
	}
	// A faster device closes it.
	slow := fpga.NewDevice(110_000, 5_000_000) // 5 MHz
	res2 := New(slow, DefaultOptions()).CompileSync(flatFor(t, src), false)
	if res2.Err != nil {
		t.Fatalf("5 MHz device should close timing: %v", res2.Err)
	}
}

func TestSynthesisErrorSurfacesQuickly(t *testing.T) {
	src := `
module M(input wire clk);
  wire a, b;
  assign a = b;
  assign b = a | clk;
endmodule`
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, src), true)
	if res.Err == nil {
		t.Fatal("combinational loop should fail synthesis")
	}
	if res.DurationPs >= DefaultOptions().BasePs {
		t.Fatal("front-end rejections should be fast")
	}
}

func TestJobReadiness(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	now := uint64(1000)
	job := tc.Submit(context.Background(), flatFor(t, smallCounter), true, now)
	job.Wait()
	if job.Ready(now) {
		t.Fatal("job ready immediately")
	}
	readyAt, ok := job.ReadyAt()
	if !ok {
		t.Fatal("job reported cancelled")
	}
	if !job.Ready(readyAt) {
		t.Fatal("job not ready at its deadline")
	}
	if readyAt-now != job.Result().DurationPs {
		t.Fatal("deadline arithmetic wrong")
	}
}

func TestBitstreamCacheHit(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	first := tc.Submit(context.Background(), flatFor(t, smallCounter), true, 0)
	readyAt, ok := first.ReadyAt()
	if !ok || !first.Ready(readyAt) {
		t.Fatal("first compile did not complete")
	}
	// The bitstream is published: an identical netlist submitted later is
	// served from the cache in near-zero virtual time.
	second := tc.Submit(context.Background(), flatFor(t, smallCounter), true, readyAt)
	res := second.Result()
	if res == nil || res.Err != nil {
		t.Fatalf("cached compile failed: %+v", res)
	}
	if !res.CacheHit {
		t.Fatal("second compile of identical netlist should hit the cache")
	}
	if res.DurationPs >= first.Result().DurationPs/1000 {
		t.Fatalf("cache hit should take ~zero virtual time: %d ps vs %d ps",
			res.DurationPs, first.Result().DurationPs)
	}
	st := tc.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A different netlist misses.
	third := tc.Submit(context.Background(), flatFor(t, bigDatapath), true, readyAt)
	if third.Result().CacheHit {
		t.Fatal("different netlist must not hit the cache")
	}
}

func TestInFlightJoin(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	first := tc.Submit(context.Background(), flatFor(t, smallCounter), true, 0)
	firstReady, _ := first.ReadyAt()
	// Resubmitted mid-flight (virtual time before the original flow
	// completes, and never observed ready): the new job joins the
	// original flow and finishes exactly when it does.
	second := tc.Submit(context.Background(), flatFor(t, smallCounter), true, firstReady/2)
	secondReady, ok := second.ReadyAt()
	if !ok {
		t.Fatal("joined job reported cancelled")
	}
	if secondReady != firstReady {
		t.Fatalf("joined job should finish with the original flow: %d != %d", secondReady, firstReady)
	}
	if st := tc.Stats(); st.Joined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelDiscardsJob(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	job := tc.Submit(context.Background(), flatFor(t, smallCounter), true, 0)
	job.Cancel()
	job.Wait()
	if job.Ready(^uint64(0)) {
		t.Fatal("cancelled job must never report ready")
	}
	if job.Result() != nil {
		t.Fatal("cancelled job must not report a result")
	}
	if !job.Canceled() {
		t.Fatal("job should know it was cancelled")
	}
}

func TestContextCancelAbortsJob(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := tc.Submit(ctx, flatFor(t, smallCounter), true, 0)
	job.Wait()
	if !job.Canceled() {
		t.Fatal("job with cancelled context should abort")
	}
	if tc.Stats().Canceled != 1 {
		t.Fatalf("stats: %+v", tc.Stats())
	}
}

func TestScaleDividesLatency(t *testing.T) {
	dev := fpga.NewCycloneV()
	o := DefaultOptions()
	base := New(dev, o).CompileSync(flatFor(t, smallCounter), false)
	o.Scale = 100
	fast := New(dev, o).CompileSync(flatFor(t, smallCounter), false)
	ratio := float64(base.DurationPs) / float64(fast.DurationPs)
	if ratio < 80 || ratio > 120 {
		t.Fatalf("scale=100 should divide latency ~100x, got %.1fx", ratio)
	}
}

func TestPaperCalibration(t *testing.T) {
	// The calibration targets of DefaultOptions: a trivial design in
	// roughly a minute, documented in EXPERIMENTS.md.
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	res := tc.CompileSync(flatFor(t, smallCounter), false)
	sec := float64(res.DurationPs) / float64(vclock.S)
	if sec < 30 || sec > 300 {
		t.Fatalf("trivial-design latency %.0fs out of calibration band", sec)
	}
}
