package toolchain

import (
	"context"
	"strings"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/vclock"
)

// TestTransientFaultRetriedWithBackoff: a flow whose first attempts hit
// transient faults retries with capped exponential backoff in virtual
// time, then succeeds; the result's ready time carries the backoff and
// Stats surfaces the retries.
func TestTransientFaultRetriedWithBackoff(t *testing.T) {
	o := DefaultOptions()
	o.Workers = 1
	tc := New(fpga.NewCycloneV(), o)
	tc.SetFaults(fault.New(fault.Config{Seed: 1, CompileTransient: 1, MaxCompileFaults: 2}))

	f := flatFor(t, smallCounter)
	j := tc.Submit(context.Background(), f, true, 0)
	res := j.Result()
	if res == nil || res.Err != nil {
		t.Fatalf("retried flow must succeed: %+v", res)
	}
	if j.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", j.Retries())
	}
	if j.State() != JobDone {
		t.Fatalf("state = %v, want done", j.State())
	}
	// The two retries cost base + 2*base of backoff on top of the clean
	// flow's duration.
	clean := New(fpga.NewCycloneV(), o).CompileSync(f, true)
	wantBackoff := o.RetryBasePs + 2*o.RetryBasePs
	if got := res.DurationPs - clean.DurationPs; got != wantBackoff {
		t.Fatalf("backoff billed %d ps, want %d ps", got, wantBackoff)
	}
	st := tc.Stats()
	if st.Retried != 2 || st.TransientFaults != 2 || st.PermanentFaults != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestBackoffIsCapped: the per-attempt backoff doubles up to RetryCapPs
// and no further.
func TestBackoffIsCapped(t *testing.T) {
	o := DefaultOptions()
	o.RetryBasePs = 10 * vclock.S
	o.RetryCapPs = 25 * vclock.S
	tc := New(fpga.NewCycloneV(), o)
	want := []uint64{10 * vclock.S, 20 * vclock.S, 25 * vclock.S, 25 * vclock.S}
	for i, w := range want {
		if got := tc.backoffPs(i); got != w {
			t.Fatalf("backoff(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestPermanentFaultFailsOnce: a permanent fault fails the job without
// retries, classifies as permanent in Stats, and the error is reported
// through the result exactly once (the job is never re-queued by the
// service itself).
func TestPermanentFaultFailsOnce(t *testing.T) {
	o := DefaultOptions()
	o.Workers = 1
	tc := New(fpga.NewCycloneV(), o)
	tc.SetFaults(fault.New(fault.Config{Seed: 1, CompilePermanent: 1, MaxCompileFaults: 1}))

	j := tc.Submit(context.Background(), flatFor(t, smallCounter), true, 0)
	res := j.Result()
	if res == nil || res.Err == nil {
		t.Fatalf("permanent fault must fail the job: %+v", res)
	}
	if fault.IsTransient(res.Err) || !fault.IsFault(res.Err) {
		t.Fatalf("error lost its classification: %v", res.Err)
	}
	if j.State() != JobFailed || j.Retries() != 0 {
		t.Fatalf("state=%v retries=%d, want failed/0", j.State(), j.Retries())
	}
	st := tc.Stats()
	if st.PermanentFaults != 1 || st.Retried != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if !strings.Contains(res.Err.Error(), "permanent") {
		t.Fatalf("error text should name the class: %v", res.Err)
	}
}

// TestRetriesExhaustedFailTransient: when transient faults outlast
// MaxRetries the job fails, but the error stays classified transient so
// the caller may resubmit.
func TestRetriesExhaustedFailTransient(t *testing.T) {
	o := DefaultOptions()
	o.Workers = 1
	o.MaxRetries = 2
	tc := New(fpga.NewCycloneV(), o)
	tc.SetFaults(fault.New(fault.Config{Seed: 5, CompileTransient: 1})) // uncapped

	j := tc.Submit(context.Background(), flatFor(t, smallCounter), true, 0)
	res := j.Result()
	if res == nil || res.Err == nil {
		t.Fatal("exhausted retries must fail the job")
	}
	if !fault.IsTransient(res.Err) {
		t.Fatalf("exhausted transient faults must stay transient: %v", res.Err)
	}
	if j.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", j.Retries())
	}
}

// TestFaultyFlowStillCaches: a flow that succeeded after retries lands
// in the bitstream cache; an identical later submission hits without
// re-running the flow (and without re-consulting the exhausted fault
// site, since probability-1 faults are capped).
func TestFaultyFlowStillCaches(t *testing.T) {
	o := DefaultOptions()
	o.Workers = 1
	tc := New(fpga.NewCycloneV(), o)
	tc.SetFaults(fault.New(fault.Config{Seed: 1, CompileTransient: 1, MaxCompileFaults: 1}))

	f := flatFor(t, smallCounter)
	j1 := tc.Submit(context.Background(), f, true, 0)
	at, ok := j1.ReadyAt()
	if !ok {
		t.Fatal("first job canceled?")
	}
	if !j1.Ready(at) {
		t.Fatal("job not ready at its own ready time")
	}
	j2 := tc.Submit(context.Background(), f, true, at)
	res := j2.Result()
	if res == nil || res.Err != nil || !res.CacheHit {
		t.Fatalf("resubmission must hit the cache: %+v", res)
	}
	if tc.Stats().CacheHits != 1 {
		t.Fatalf("stats: %+v", tc.Stats())
	}
}
