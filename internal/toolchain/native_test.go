package toolchain

import (
	"context"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
)

// The native tier's whole reason to exist: a compiled artifact ready in
// virtual milliseconds, while the fabric flow for the same design takes
// virtual minutes.
func TestNativeJobReadyBeforeFabric(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	f := flatFor(t, smallCounter)
	nj := tc.SubmitNative(context.Background(), f, 0)
	fj := tc.Submit(context.Background(), f, true, 0)
	nAt, ok := nj.ReadyAt()
	if !ok {
		t.Fatal("native job canceled")
	}
	fAt, ok := fj.ReadyAt()
	if !ok {
		t.Fatal("fabric job canceled")
	}
	if nAt*100 > fAt {
		t.Fatalf("native tier should be ready orders of magnitude earlier: native %d ps vs fabric %d ps", nAt, fAt)
	}
	res := nj.Result()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.NativeGo || res.Wrapped {
		t.Fatalf("result should be marked native: %+v", res)
	}
	if res.AreaLEs != 0 {
		t.Fatalf("native artifact occupies no fabric, got %d LEs", res.AreaLEs)
	}
	if res.Prog == nil || res.RawAreaLEs == 0 {
		t.Fatal("native result should carry the synthesized netlist and its raw size")
	}
}

// Native artifacts ignore the fabric's fit and timing models: a design
// that overflows the device (or misses timing closure) still compiles
// for the native tier — that is what makes it a useful fallback.
func TestNativeTierSkipsFitAndTiming(t *testing.T) {
	tiny := fpga.NewDevice(10, 50_000_000) // 10 LEs: nothing fits
	tc := New(tiny, DefaultOptions())
	f := flatFor(t, bigDatapath)
	if res := tc.CompileSync(f, true); res.Err == nil {
		t.Fatal("sanity: fabric flow should fail fit on the tiny device")
	}
	res := tc.SubmitNative(context.Background(), f, 0).Result()
	if res.Err != nil {
		t.Fatalf("native flow should ignore device capacity: %v", res.Err)
	}
}

// Native and fabric flows over the same netlist cache under distinct
// keys; identical native resubmissions hit.
func TestNativeCacheKeyedByTier(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	f := flatFor(t, smallCounter)
	first := tc.SubmitNative(context.Background(), f, 0)
	at, _ := first.ReadyAt()
	if hit := first.Result(); hit.CacheHit {
		t.Fatal("first native compile cannot be a cache hit")
	}
	// A fabric submission after the native one must not be served the
	// native artifact.
	fres := tc.Submit(context.Background(), f, true, at).Result()
	if fres.CacheHit || fres.NativeGo {
		t.Fatalf("fabric flow collided with the native cache entry: %+v", fres)
	}
	// An identical native resubmission hits.
	again := tc.SubmitNative(context.Background(), f, at).Result()
	if !again.CacheHit || !again.NativeGo {
		t.Fatalf("native resubmission should hit the tier cache: %+v", again)
	}
	if again.DurationPs >= first.Result().DurationPs {
		t.Fatal("cache hit should be cheaper than the original flow")
	}
}

// Compile-fault schedules never touch the native tier: its flow is an
// in-process pass, and its fault surface lives at runtime (region
// faults handled by eviction), not in the toolchain.
func TestNativeTierImmuneToCompileFaults(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.SetFaults(fault.New(fault.Config{Seed: 1, CompilePermanent: 1, MaxCompileFaults: 100}))
	res := tc.SubmitNative(context.Background(), flatFor(t, smallCounter), 0).Result()
	if res.Err != nil {
		t.Fatalf("native flow consulted the compile-fault schedule: %v", res.Err)
	}
	if res.CacheHit || !res.NativeGo {
		t.Fatalf("unexpected result shape: %+v", res)
	}
}
