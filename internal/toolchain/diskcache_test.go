package toolchain

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cascade/internal/fpga"
)

func diskCacheOptions(dir string) Options {
	o := DefaultOptions()
	o.CacheDir = dir
	return o
}

// waitResult submits f at virtual time nowPs and blocks until the flow
// completes, returning the result.
func waitResult(t *testing.T, tc *Toolchain, src string, nowPs uint64) *Result {
	t.Helper()
	job := tc.Submit(context.Background(), flatFor(t, src), true, nowPs)
	if _, ok := job.ReadyAt(); !ok {
		t.Fatal("job reported cancelled")
	}
	return job.Result()
}

func TestDiskCacheServesFreshProcess(t *testing.T) {
	dir := t.TempDir()

	// Process A: compile once, paying full place-and-route, and record
	// the bitstream on disk.
	a := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	first := waitResult(t, a, smallCounter, 0)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first compile must not be a cache hit")
	}
	if st := a.Stats(); st.DiskWrites != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats after first compile: %+v", st)
	}

	// Process B: a fresh toolchain (empty memory cache) over the same
	// directory. The identical design is served from the disk store at
	// cache-hit latency — place-and-route is not re-run.
	b := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	res := waitResult(t, b, smallCounter, 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.CacheHit {
		t.Fatal("fresh process over the same store should hit the disk cache")
	}
	if res.DurationPs >= first.DurationPs/1000 {
		t.Fatalf("disk hit should take ~zero virtual time: %d ps vs %d ps",
			res.DurationPs, first.DurationPs)
	}
	st := b.Stats()
	if st.DiskHits != 1 || st.CacheHits != 1 || st.CacheMisses != 0 || st.DiskWrites != 0 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	if res.AreaLEs != first.AreaLEs || res.Stats.CritPath != first.Stats.CritPath {
		t.Fatalf("disk hit changed the outcome: %+v vs %+v", res, first)
	}

	// The disk hit published a memory entry: a resubmission in the same
	// process hits memory, not disk.
	again := waitResult(t, b, smallCounter, res.DurationPs)
	if !again.CacheHit {
		t.Fatal("resubmission should hit the in-memory cache")
	}
	if st := b.Stats(); st.DiskHits != 1 {
		t.Fatalf("resubmission should not touch disk again: %+v", st)
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	a := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	if res := waitResult(t, a, smallCounter, 0); res.Err != nil {
		t.Fatal(res.Err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "bs-*.bits"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one entry file, got %v (%v)", entries, err)
	}
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(entries[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh process finds the corrupt entry, rejects it, and compiles
	// normally — corruption degrades to a miss, never a wrong bitstream.
	b := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	res := waitResult(t, b, smallCounter, 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("corrupt entry must be treated as a miss")
	}
	st := b.Stats()
	if st.DiskCorrupt != 1 || st.DiskHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("stats after corrupt entry: %+v", st)
	}
	// The miss re-wrote a clean entry; a third process hits it.
	if st.DiskWrites != 1 {
		t.Fatalf("miss should repopulate the store: %+v", st)
	}
	c := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	if res := waitResult(t, c, smallCounter, 0); !res.CacheHit {
		t.Fatal("repopulated entry should serve the next process")
	}
}

// TestDiskCacheConcurrentCorruptRewriteRace: the corrupt-entry path
// under contention. Each round the entry file is corrupted, then a pack
// of readers hammers Lookup while a writer rewrites the entry clean
// (atomic temp + rename) — the interleavings a shared CacheDir sees
// when several processes recover from a crash-damaged store at once.
// A reader may observe the corrupt blob (miss + eviction) or the clean
// one (hit), and an eviction may even race the rewrite and delete the
// fresh entry; what must never happen is a hit with a wrong outcome, a
// panic, or an unusable store.
func TestDiskCacheConcurrentCorruptRewriteRace(t *testing.T) {
	dir := t.TempDir()
	tc := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	if res := waitResult(t, tc, smallCounter, 0); res.Err != nil {
		t.Fatal(res.Err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "bs-*.bits"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one entry file, got %v (%v)", entries, err)
	}
	path := entries[0]
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := decodeBitsEntry(clean)
	if err != nil {
		t.Fatal(err)
	}
	good := BitMeta{Key: want.Key, AreaLEs: want.AreaLEs,
		RawAreaLEs: want.RawAreaLEs, CritPath: want.CritPath}
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)/2] ^= 0x40

	// Serial sanity first: a corrupt entry is a counted miss.
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := tc.diskLookupIn(dir, want.Key); ok {
		t.Fatal("corrupt entry must miss")
	}
	if st := tc.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("stats after serial corrupt lookup: %+v", st)
	}

	const readers = 8
	const rounds = 25
	for round := 0; round < rounds; round++ {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; k < 4; k++ {
					meta, ok := tc.diskLookupIn(dir, want.Key)
					if ok && (meta.AreaLEs != want.AreaLEs ||
						meta.RawAreaLEs != want.RawAreaLEs ||
						meta.CritPath != want.CritPath) {
						t.Errorf("round %d: lookup served a wrong outcome: %+v", round, meta)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tc.diskStoreIn(dir, good)
		}()
		close(start)
		wg.Wait()
	}

	// Whatever interleaving won, the store ends usable: one rewrite
	// round-trips, and the entry serves cleanly again.
	tc.diskStoreIn(dir, good)
	meta, ok := tc.diskLookupIn(dir, want.Key)
	if !ok || meta != want {
		t.Fatalf("store unusable after the race: ok=%v meta=%+v want=%+v", ok, meta, want)
	}
}

func TestDiskCacheRevalidatesAgainstDevice(t *testing.T) {
	dir := t.TempDir()
	a := New(fpga.NewCycloneV(), diskCacheOptions(dir))
	if res := waitResult(t, a, bigDatapath, 0); res.Err != nil {
		t.Fatal(res.Err)
	}

	// The same design no longer fits a tiny device: the disk entry is
	// recorded against a successful flow, but validity is re-checked
	// against the live device — the fit failure surfaces normally
	// instead of a bogus hit.
	tiny := New(fpga.NewDevice(4, 50_000_000), diskCacheOptions(dir))
	res := waitResult(t, tiny, bigDatapath, 0)
	if res.Err == nil {
		t.Fatal("design should not fit a 4-LE device")
	}
	if res.CacheHit {
		t.Fatal("failed fit must not be served from disk")
	}
	if st := tiny.Stats(); st.DiskHits != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
