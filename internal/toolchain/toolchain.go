// Package toolchain models the blackbox vendor compiler (Quartus in the
// paper) that Cascade hides behind its JIT. The model performs real
// synthesis — internal/netlist lowers the subprogram to a word-level RTL
// netlist — and then imposes the three observable behaviours of a vendor
// flow that the paper's design responds to:
//
//   - latency: compile time grows superlinearly with design size
//     (placement and routing are NP-hard; minutes for small designs,
//     hours for large ones),
//   - fit: designs beyond device capacity fail,
//   - timing closure: designs whose critical path exceeds the fabric
//     clock period fail late, after placement (§6.4's student
//     frustration).
//
// Compilations run as background jobs whose completion is expressed in
// virtual time, so the runtime's JIT state machine can overlap them with
// software execution deterministically.
package toolchain

import (
	"fmt"
	"math"
	"sync"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/vclock"
)

// Options tunes the compile-latency model.
type Options struct {
	// SynthPsPerCell and PlacePs control the latency model:
	// synth = SynthPsPerCell * cells * log2(cells)
	// place = PlacePs * cells^1.2
	SynthPsPerCell uint64
	PlacePs        uint64
	// BasePs is the flow's fixed startup cost.
	BasePs uint64
	// LevelPs is the per-level logic delay used by the timing-closure
	// check: CritPath * LevelPs must fit in the fabric clock period.
	LevelPs uint64
	// Scale divides all latencies (interactive demos); 0 means 1.
	Scale float64
}

// DefaultOptions calibrates the model so the paper's proof-of-work miner
// (~1.7K LEs of user logic) compiles in roughly ten virtual minutes —
// matching Figure 11 — and a 50-line program in about a minute, matching
// the user study's average per-build compile wait.
func DefaultOptions() Options {
	return Options{
		SynthPsPerCell: 12_000 * vclock.Us,
		PlacePs:        20_000 * vclock.Us,
		BasePs:         45 * vclock.S,
		LevelPs:        450, // ps per level: ~44 levels close timing at 50 MHz
		Scale:          1,
	}
}

// InfraLEs is the fixed infrastructure both flows instantiate around the
// user design: the memory-mapped bus bridge and IO glue (the paper's
// Avalon bus and Quartus FIFO IP on the native side).
const InfraLEs = 900

// Toolchain is a blackbox compiler bound to a device.
type Toolchain struct {
	dev  *fpga.Device
	opts Options

	mu       sync.Mutex
	compiles int
}

// New returns a toolchain targeting dev.
func New(dev *fpga.Device, opts Options) *Toolchain {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	return &Toolchain{dev: dev, opts: opts}
}

// Device returns the targeted device.
func (t *Toolchain) Device() *fpga.Device { return t.dev }

// Compiles returns how many compilations have been submitted.
func (t *Toolchain) Compiles() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compiles
}

// Result is the outcome of one compilation.
type Result struct {
	Prog  *netlist.Program
	Stats netlist.Stats
	// AreaLEs is the fabric area of the synthesized design including
	// the ABI wrapper when Wrapped (paper reports 2.9x for PoW, 6.5x
	// for the regex benchmark).
	AreaLEs    int
	RawAreaLEs int // area without the ABI wrapper (native mode)
	Wrapped    bool
	DurationPs uint64
	Err        error
}

// wrapperLEs models the Figure 10 ABI support logic plus the engine
// infrastructure Cascade always ships: shadow registers and access muxes
// over every state bit (~2.4 LE/bit), memory access ports, and the fixed
// AXI stub, masks, open-loop counter, and standard-component glue. The
// fixed part dominates small designs, which is why the paper's regex
// benchmark pays 6.5x while the larger PoW design pays 2.9x.
func wrapperLEs(st netlist.Stats) int {
	stateBits := st.FFs
	return (stateBits*12)/5 + st.MemBits/16 + 1100
}

// latency returns the virtual compile duration for a design with the
// given user-logic cell count. Placement difficulty is superlinear.
func (t *Toolchain) latency(cells int) uint64 {
	c := float64(cells + 16)
	synth := float64(t.opts.SynthPsPerCell) * c * math.Log2(c)
	place := float64(t.opts.PlacePs) * math.Pow(c, 1.3)
	total := (synth + place + float64(t.opts.BasePs)) / t.opts.Scale
	return uint64(total)
}

// CompileSync synthesizes f and applies the fit and timing models.
// wrapped selects the ABI-wrapped flow (JIT engines) versus the native
// flow (§4.5). The returned result carries the virtual duration; callers
// decide when it "finishes" on their timeline.
func (t *Toolchain) CompileSync(f *elab.Flat, wrapped bool) *Result {
	t.mu.Lock()
	t.compiles++
	t.mu.Unlock()

	prog, err := netlist.Compile(f)
	if err != nil {
		// Synthesis errors surface quickly (front-end rejects).
		return &Result{Err: err, DurationPs: t.opts.BasePs / 4}
	}
	st := prog.Stats
	raw := st.LogicElements()
	area := raw + InfraLEs
	if wrapped {
		area = raw + wrapperLEs(st)
	}
	// Compile latency is governed by the user logic (the wrapper and
	// infrastructure are regular, pre-characterized structures); the
	// wrapped flow pays a small constant factor for the extra routing.
	dur := t.latency(raw)
	if wrapped {
		dur = dur * 112 / 100
	}
	res := &Result{
		Prog: prog, Stats: st,
		AreaLEs: area, RawAreaLEs: raw, Wrapped: wrapped,
		DurationPs: dur,
	}
	if area > t.dev.Capacity() {
		res.Err = fmt.Errorf("toolchain: design requires %d LEs, device has %d", area, t.dev.Capacity())
		return res
	}
	// Timing closure is only discovered after placement (late failure).
	if uint64(st.CritPath)*t.opts.LevelPs > t.dev.CyclePs() {
		res.Err = fmt.Errorf("toolchain: timing closure failed: critical path %d levels (%d ps) exceeds %d ps clock period",
			st.CritPath, uint64(st.CritPath)*t.opts.LevelPs, t.dev.CyclePs())
		return res
	}
	return res
}

// Job is a background compilation tracked in virtual time.
type Job struct {
	ReadyAtPs uint64
	Res       *Result
}

// Submit starts a background compilation at virtual time nowPs; the
// result becomes visible once the runtime's virtual clock passes
// ReadyAtPs. Synthesis itself runs inline (it is fast); the vendor
// flow's latency is what the JIT hides.
func (t *Toolchain) Submit(f *elab.Flat, wrapped bool, nowPs uint64) *Job {
	res := t.CompileSync(f, wrapped)
	return &Job{ReadyAtPs: nowPs + res.DurationPs, Res: res}
}

// Ready reports whether the job has finished by virtual time nowPs.
func (j *Job) Ready(nowPs uint64) bool { return nowPs >= j.ReadyAtPs }
