// Package toolchain models the blackbox vendor compiler (Quartus in the
// paper) that Cascade hides behind its JIT. The model performs real
// synthesis — internal/netlist lowers the subprogram to a word-level RTL
// netlist — and then imposes the three observable behaviours of a vendor
// flow that the paper's design responds to:
//
//   - latency: compile time grows superlinearly with design size
//     (placement and routing are NP-hard; minutes for small designs,
//     hours for large ones),
//   - fit: designs beyond device capacity fail,
//   - timing closure: designs whose critical path exceeds the fabric
//     clock period fail late, after placement (§6.4's student
//     frustration).
//
// Compilations run as a background job service: Submit enqueues work on
// a bounded worker pool and returns immediately; completion is expressed
// in virtual time so the runtime's JIT state machine can overlap
// compilation with software execution deterministically. The service
// keeps a content-addressed bitstream cache keyed by a canonical hash of
// the synthesized netlist (netlist.Program.Fingerprint): resubmitting an
// unchanged design — an edit that undoes a change, or a Snapshot
// restored onto a same-shape device — skips the place-and-route model
// entirely, and a resubmission that lands while the original flow is
// still in (virtual) flight joins it instead of starting over. Obsolete
// jobs are cancelled with Job.Cancel (their results are discarded, but
// the flow still runs to the cache in the background); a cancelled
// context aborts jobs that have not yet reached a worker.
//
// The back half of every flow — cache consultation, the place-and-route
// model, durable storage — executes on a pluggable Backend (backend.go):
// the in-process LocalBackend by default, or a sharded compile farm
// (farm.go) installed with UseFarm.
package toolchain

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cascade/internal/elab"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/obsv"
	"cascade/internal/vclock"
)

// Options tunes the compile-latency model and the job service.
type Options struct {
	// SynthPsPerCell and PlacePs control the latency model:
	// synth = SynthPsPerCell * cells * log2(cells)
	// place = PlacePs * cells^1.2
	SynthPsPerCell uint64
	PlacePs        uint64
	// BasePs is the flow's fixed startup cost.
	BasePs uint64
	// LevelPs is the per-level logic delay used by the timing-closure
	// check: CritPath * LevelPs must fit in the fabric clock period.
	LevelPs uint64
	// Scale divides all latencies (interactive demos); 0 means 1.
	Scale float64
	// Workers bounds the job service's concurrent compilations; 0 means
	// one worker per CPU.
	Workers int
	// CacheHitPs is the virtual latency of serving a compilation from
	// the bitstream cache (the flow re-checks the netlist hash and
	// reloads the placed design; no place-and-route). 0 means the
	// default of 2 virtual milliseconds.
	CacheHitPs uint64
	// CacheDir, when set, backs the bitstream cache with a disk store:
	// successful flows are recorded there (atomically, checksummed) and
	// a fresh process over the same directory serves unchanged designs
	// at cache-hit latency instead of re-running place-and-route —
	// crash recovery re-reaches hardware almost immediately. Corrupt or
	// stale entries are detected and treated as misses; entry validity
	// (fit, timing) is re-checked against the live device on every hit.
	CacheDir string
	// MaxRetries bounds how many times a job re-attempts the flow after
	// a transient fault (a flaky license server, a filesystem hiccup)
	// before giving up; 0 means the default of 4. Retries back off
	// exponentially in virtual time: RetryBasePs doubling per attempt
	// up to RetryCapPs (defaults 5s and 60s, divided by Scale like
	// every other latency).
	MaxRetries  int
	RetryBasePs uint64
	RetryCapPs  uint64
	// MaxQueue bounds how many submissions may be in flight (submitted
	// and not yet observed ready or cancelled) before the service
	// load-sheds: excess submissions fail immediately with a result
	// wrapping ErrOverloaded instead of queueing without bound. The
	// bound is measured in virtual time — a job stays "in flight" until
	// its owner observes it ready on the virtual clock — so admission
	// decisions replay deterministically. 0 (the default) disables
	// admission control. Callers are expected to back off and resubmit
	// (the runtime and daemon JIT loops do, with virtual backoff).
	MaxQueue int
	// NativeBasePs and NativePsPerCell control the native-tier latency
	// model: compiling a netlist to closure-threaded Go is a linear pass
	// (no placement, no timing closure), so a native job is ready in
	// virtual milliseconds while the fabric flow for the same design
	// takes virtual minutes. 0 means the defaults of 250 virtual ms base
	// plus 150 virtual µs per cell (~0.5 virtual s for the paper's PoW
	// miner, against its ~10 virtual minute fabric compile).
	NativeBasePs    uint64
	NativePsPerCell uint64
}

// DefaultOptions calibrates the model so the paper's proof-of-work miner
// (~1.7K LEs of user logic) compiles in roughly ten virtual minutes —
// matching Figure 11 — and a 50-line program in about a minute, matching
// the user study's average per-build compile wait.
func DefaultOptions() Options {
	return Options{
		SynthPsPerCell:  12_000 * vclock.Us,
		PlacePs:         20_000 * vclock.Us,
		BasePs:          45 * vclock.S,
		LevelPs:         450, // ps per level: ~44 levels close timing at 50 MHz
		Scale:           1,
		CacheHitPs:      2 * vclock.Ms,
		MaxRetries:      4,
		RetryBasePs:     5 * vclock.S,
		RetryCapPs:      60 * vclock.S,
		NativeBasePs:    250 * vclock.Ms,
		NativePsPerCell: 150 * vclock.Us,
	}
}

// InfraLEs is the fixed infrastructure both flows instantiate around the
// user design: the memory-mapped bus bridge and IO glue (the paper's
// Avalon bus and Quartus FIFO IP on the native side).
const InfraLEs = 900

// Stats is a snapshot of the job service's counters.
type Stats struct {
	Submitted   int // jobs handed to Submit
	Synthesized int // flows that ran synthesis (includes CompileSync)
	CacheHits   int // submissions served from the bitstream cache
	CacheMisses int // submissions that paid for place-and-route
	Joined      int // submissions that joined an in-flight identical flow
	Canceled    int // jobs aborted before completing

	// Fault-handling counters (internal/fault).
	Retried         int // flow attempts re-run after a transient fault
	TransientFaults int // transient compile faults observed
	PermanentFaults int // permanent compile faults observed (reported once)

	// Admission control (Options.MaxQueue) and farm backpressure.
	Shed int // submissions load-shed with ErrOverloaded

	// Disk bitstream-store counters (Options.CacheDir).
	DiskHits    int // submissions served from the on-disk store
	DiskWrites  int // entries durably written
	DiskCorrupt int // entries rejected by verification and evicted

	// PeerHits counts submissions served from another compile shard's
	// cache (FarmBackend peer fetch).
	PeerHits int
}

// Toolchain is a blackbox compiler bound to a device, fronted by a
// background job service with a bitstream cache.
type Toolchain struct {
	dev  *fpga.Device
	opts Options

	// local is the in-process backend every toolchain owns; backend is
	// the installed fabric backend (nil: local). Native jobs always use
	// local (see backendFor).
	local   *LocalBackend
	backend Backend

	mu       sync.Mutex
	faults   *fault.Injector
	obs      *obsv.Observer
	compiles int
	stats    Stats
	sem      chan struct{}
	tenants  map[string]*tenant
	inflight int // submissions not yet observed ready/cancelled (MaxQueue > 0)
}

// ErrOverloaded reports that the job service shed a submission under
// admission control (Options.MaxQueue), or that every shard queue of a
// compile farm was at its bound: too many compilations were already in
// flight. It travels inside the shed job's Result.Err; callers match it
// with errors.Is and resubmit after a virtual-time backoff rather than
// treating the design as uncompilable.
var ErrOverloaded = errors.New("toolchain overloaded")

// New returns a toolchain targeting dev.
func New(dev *fpga.Device, opts Options) *Toolchain {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.CacheHitPs == 0 {
		opts.CacheHitPs = 2 * vclock.Ms
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if opts.RetryBasePs == 0 {
		opts.RetryBasePs = 5 * vclock.S
	}
	if opts.RetryCapPs == 0 {
		opts.RetryCapPs = 60 * vclock.S
	}
	if opts.NativeBasePs == 0 {
		opts.NativeBasePs = 250 * vclock.Ms
	}
	if opts.NativePsPerCell == 0 {
		opts.NativePsPerCell = 150 * vclock.Us
	}
	t := &Toolchain{
		dev:     dev,
		opts:    opts,
		sem:     make(chan struct{}, opts.Workers),
		tenants: map[string]*tenant{},
	}
	t.local = newLocalBackend(t)
	return t
}

// SetFaults installs a fault injector; compile attempts consult it. Call
// before submitting work (jobs snapshot the injector at submit time).
func (t *Toolchain) SetFaults(in *fault.Injector) {
	t.mu.Lock()
	t.faults = in
	t.mu.Unlock()
}

// Faults returns the installed injector (nil when fault-free).
func (t *Toolchain) Faults() *fault.Injector {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// SetObserver installs an observability hub (internal/obsv): the job
// service traces compile submissions, cache outcomes, and completions,
// and records each flow's billed virtual latency. Jobs run on worker
// goroutines, so every event is stamped with job virtual times via
// EmitAt — the workers never touch a live virtual clock. Nil (the
// default) disables instrumentation.
func (t *Toolchain) SetObserver(o *obsv.Observer) {
	t.mu.Lock()
	t.obs = o
	t.mu.Unlock()
}

// observer returns the installed hub (nil-safe to use directly).
func (t *Toolchain) observer() *obsv.Observer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.obs
}

// backoffPs returns the virtual backoff before retry attempt n (0-based),
// capped exponential, scaled like every other flow latency.
func (t *Toolchain) backoffPs(attempt int) uint64 {
	d := t.opts.RetryBasePs
	for i := 0; i < attempt && d < t.opts.RetryCapPs; i++ {
		d <<= 1
	}
	if d > t.opts.RetryCapPs {
		d = t.opts.RetryCapPs
	}
	ps := uint64(float64(d) / t.opts.Scale)
	if ps == 0 {
		ps = 1
	}
	return ps
}

// Device returns the targeted device.
func (t *Toolchain) Device() *fpga.Device { return t.dev }

// Compiles returns how many compilations have run synthesis.
func (t *Toolchain) Compiles() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compiles
}

// Stats returns a snapshot of the job-service counters.
func (t *Toolchain) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Result is the outcome of one compilation.
type Result struct {
	Prog  *netlist.Program
	Stats netlist.Stats
	// AreaLEs is the fabric area of the synthesized design including
	// the ABI wrapper when Wrapped (paper reports 2.9x for PoW, 6.5x
	// for the regex benchmark).
	AreaLEs    int
	RawAreaLEs int // area without the ABI wrapper (native mode)
	Wrapped    bool
	DurationPs uint64
	// CacheHit reports that the flow was served from the bitstream
	// cache (no place-and-route ran); HitSource names the tier that
	// served it (HitMemory, HitJoined, HitDisk, HitPeer).
	CacheHit  bool
	HitSource string
	// NativeGo marks a native-tier artifact: the netlist compiled to
	// closure-threaded Go rather than a bitstream. It occupies no fabric
	// (AreaLEs is 0) and never consults the fit or timing models.
	NativeGo bool
	Err      error
}

// wrapperLEs models the Figure 10 ABI support logic plus the engine
// infrastructure Cascade always ships: shadow registers and access muxes
// over every state bit (~2.4 LE/bit), memory access ports, and the fixed
// AXI stub, masks, open-loop counter, and standard-component glue. The
// fixed part dominates small designs, which is why the paper's regex
// benchmark pays 6.5x while the larger PoW design pays 2.9x.
func wrapperLEs(st netlist.Stats) int {
	stateBits := st.FFs
	return (stateBits*12)/5 + st.MemBits/16 + 1100
}

// latency returns the virtual compile duration for a design with the
// given user-logic cell count. Placement difficulty is superlinear.
func (t *Toolchain) latency(cells int) uint64 {
	c := float64(cells + 16)
	synth := float64(t.opts.SynthPsPerCell) * c * math.Log2(c)
	place := float64(t.opts.PlacePs) * math.Pow(c, 1.3)
	total := (synth + place + float64(t.opts.BasePs)) / t.opts.Scale
	return uint64(total)
}

// nativeLatency returns the virtual compile duration of the native-tier
// flow: a linear translation pass, dominated by its fixed startup cost.
func (t *Toolchain) nativeLatency(cells int) uint64 {
	total := (float64(t.opts.NativeBasePs) + float64(t.opts.NativePsPerCell)*float64(cells)) / t.opts.Scale
	if total < 1 {
		total = 1
	}
	return uint64(total)
}

// finishNative is the back half of the native-tier flow: no placement,
// no fit check (the artifact occupies zero fabric), no timing closure
// (the host CPU has no clock period to close against). The netlist and
// its stats still ride along so the runtime can hand the program to the
// closure-threaded compiler.
func (t *Toolchain) finishNative(prog *netlist.Program) *Result {
	st := prog.Stats
	raw := st.LogicElements()
	return &Result{
		Prog: prog, Stats: st,
		RawAreaLEs: raw, NativeGo: true,
		DurationPs: t.nativeLatency(raw),
	}
}

// hitLatency is the virtual duration of a cache-served flow.
func (t *Toolchain) hitLatency() uint64 {
	ps := uint64(float64(t.opts.CacheHitPs) / t.opts.Scale)
	if ps == 0 {
		ps = 1
	}
	return ps
}

// synth runs real synthesis (the front half of the flow).
func (t *Toolchain) synth(f *elab.Flat) (*netlist.Program, error) {
	t.mu.Lock()
	t.compiles++
	t.stats.Synthesized++
	t.mu.Unlock()
	return netlist.Compile(f)
}

// finish applies the area, fit, and timing models to a synthesized
// netlist (the place-and-route half of the flow) against the
// toolchain's own device.
func (t *Toolchain) finish(prog *netlist.Program, wrapped bool) *Result {
	return t.finishOn(t.dev, prog, wrapped)
}

// finishOn is finish against an explicit device — a tenant's fabric
// partition closes fit and timing against its own region, not the whole
// shared device.
func (t *Toolchain) finishOn(dev *fpga.Device, prog *netlist.Program, wrapped bool) *Result {
	res := t.finishStats(dev, prog.Stats, wrapped)
	res.Prog = prog
	return res
}

// finishStats is the model core of finishOn, computable from the
// netlist summary alone — what a farm compile worker runs when the
// client ships it synthesis results instead of source.
func (t *Toolchain) finishStats(dev *fpga.Device, st netlist.Stats, wrapped bool) *Result {
	raw := st.LogicElements()
	area := raw + InfraLEs
	if wrapped {
		area = raw + wrapperLEs(st)
	}
	// Compile latency is governed by the user logic (the wrapper and
	// infrastructure are regular, pre-characterized structures); the
	// wrapped flow pays a small constant factor for the extra routing.
	dur := t.latency(raw)
	if wrapped {
		dur = dur * 112 / 100
	}
	res := &Result{
		Stats:   st,
		AreaLEs: area, RawAreaLEs: raw, Wrapped: wrapped,
		DurationPs: dur,
	}
	if area > dev.Capacity() {
		res.Err = fmt.Errorf("toolchain: design requires %d LEs, device has %d", area, dev.Capacity())
		return res
	}
	// Timing closure is only discovered after placement (late failure).
	if uint64(st.CritPath)*t.opts.LevelPs > dev.CyclePs() {
		res.Err = fmt.Errorf("toolchain: timing closure failed: critical path %d levels (%d ps) exceeds %d ps clock period",
			st.CritPath, uint64(st.CritPath)*t.opts.LevelPs, dev.CyclePs())
		return res
	}
	return res
}

// CompileSync synthesizes f and applies the fit and timing models,
// bypassing the job service and the cache (benches measure the raw
// flow). wrapped selects the ABI-wrapped flow (JIT engines) versus the
// native flow (§4.5). The returned result carries the virtual duration;
// callers decide when it "finishes" on their timeline.
func (t *Toolchain) CompileSync(f *elab.Flat, wrapped bool) *Result {
	prog, err := t.synth(f)
	if err != nil {
		// Synthesis errors surface quickly (front-end rejects).
		return &Result{Err: err, DurationPs: t.opts.BasePs / 4}
	}
	return t.finish(prog, wrapped)
}
