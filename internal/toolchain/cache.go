package toolchain

import "sync"

// The bitstream cache is layered (DESIGN.md "Compile backends & the
// farm"): the memory tier is a join cache over full Results — it also
// mediates "join an in-flight flow" semantics, so it lives inside each
// backend as an entryCache — while the durable tiers behind it (disk
// store, peer fetch on a compile farm) exchange only the verified flow
// outcome (BitMeta) and are consulted in order through the CacheTier
// interface once a miss has already paid for synthesis.

// Hit sources, carried in Result.HitSource. The empty string means the
// flow paid for the back half (place-and-route or native codegen).
const (
	HitMemory = "memory" // in-memory bitstream cache, published or past availability
	HitJoined = "joined" // joined an identical flow still in (virtual) flight
	HitDisk   = "disk"   // durable on-disk store (Options.CacheDir)
	HitPeer   = "peer"   // another compile shard's cache (FarmBackend)
)

// BitMeta is the durable record of one successful flow outcome — what
// the disk store persists and what compile shards exchange over the
// wire. Validity (fit, timing) is always re-checked against the live
// device by comparing these numbers to a fresh synthesis; the meta is
// never trusted on its own.
type BitMeta struct {
	Key        string
	AreaLEs    int
	RawAreaLEs int
	CritPath   int
}

// CacheTier is one rung of the durable bitstream-cache chain. Tiers are
// consulted in order after the memory tier misses; the first hit wins
// and is served at cache-hit latency. Store records a freshly built
// bitstream; tiers are accelerators — their failures never fail a flow.
type CacheTier interface {
	// Name identifies the tier ("disk", "peer") for hit attribution.
	Name() string
	// Lookup returns the recorded outcome for key, if the tier holds a
	// verified entry.
	Lookup(key string) (BitMeta, bool)
	// Store durably records a successful outcome.
	Store(meta BitMeta)
}

// lookupTiers consults a tier chain in order; the first hit wins.
func lookupTiers(tiers []CacheTier, key string) (BitMeta, string, bool) {
	for _, tier := range tiers {
		if meta, ok := tier.Lookup(key); ok {
			return meta, tier.Name(), true
		}
	}
	return BitMeta{}, "", false
}

// storeTiers records a successful outcome into every tier.
func storeTiers(tiers []CacheTier, meta BitMeta) {
	for _, tier := range tiers {
		tier.Store(meta)
	}
}

// metaMatches reports whether a durable entry's recorded outcome agrees
// with a fresh synthesis against the live device — the staleness guard
// every durable tier is checked through.
func metaMatches(meta BitMeta, res *Result) bool {
	return meta.AreaLEs == res.AreaLEs && meta.RawAreaLEs == res.RawAreaLEs &&
		meta.CritPath == res.Stats.CritPath
}

// cacheEntry is one content-addressed bitstream.
type cacheEntry struct {
	res *Result
	// availAtPs is the virtual time the originating flow completes on
	// its submitter's clock; a resubmission landing earlier joins that
	// flow instead of restarting it.
	availAtPs uint64
	// published is set once an owning job was observed complete in
	// virtual time (the bitstream was actually delivered); published
	// entries hit regardless of the submitter's clock.
	published bool
}

// entryCache is the memory tier: full Results keyed by content hash,
// with join-in-flight semantics. Each backend (and each farm shard)
// owns one.
type entryCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

func newEntryCache() entryCache {
	return entryCache{m: map[string]*cacheEntry{}}
}

// lookup serves a submission from the memory tier. A published entry —
// or one whose originating flow already completed on the submitter's
// clock — hits at cache-hit latency (after any retry backoff the
// submission accrued first); an entry still in (virtual) flight is
// joined: the copy finishes when the original does, but never before
// the submission's own backoff elapsed. The returned Result is a
// shallow copy (Prog and Stats are immutable) with CacheHit set and
// HitSource distinguishing the two cases.
func (c *entryCache) lookup(key string, submitPs, backoffPs, hitPs uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.m[key]
	if !ok {
		return nil, false
	}
	res := *entry.res
	if entry.published || submitPs >= entry.availAtPs {
		res.DurationPs = backoffPs + hitPs
		res.HitSource = HitMemory
	} else {
		res.DurationPs = entry.availAtPs - submitPs
		if min := backoffPs + hitPs; res.DurationPs < min {
			res.DurationPs = min
		}
		res.HitSource = HitJoined
	}
	res.CacheHit = true
	return &res, true
}

// insert records a flow's outcome under key and returns the entry (so a
// farm can replicate the same pointer onto peer shards).
func (c *entryCache) insert(key string, res *Result, published bool, submitPs uint64) *cacheEntry {
	entry := &cacheEntry{res: res, availAtPs: submitPs + res.DurationPs, published: published}
	c.mu.Lock()
	c.m[key] = entry
	c.mu.Unlock()
	return entry
}

// adopt shares an existing entry under key (farm replication: the same
// *cacheEntry lives in several shards' maps, so a join — and a later
// publish — survives any single shard's death).
func (c *entryCache) adopt(key string, entry *cacheEntry) {
	c.mu.Lock()
	c.m[key] = entry
	c.mu.Unlock()
}

// get returns the live entry for key (nil when absent).
func (c *entryCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

// publish marks key's bitstream as delivered: from then on identical
// submissions hit outright, on any clock. Publishing a shared entry
// publishes it on every shard that adopted it.
func (c *entryCache) publish(key string) {
	c.mu.Lock()
	if entry, ok := c.m[key]; ok {
		entry.published = true
	}
	c.mu.Unlock()
}

// clear drops every entry — a restarted shard comes back with cold
// memory (its durable tiers are unaffected).
func (c *entryCache) clear() {
	c.mu.Lock()
	c.m = map[string]*cacheEntry{}
	c.mu.Unlock()
}

// diskTier adapts the on-disk bitstream store (diskcache.go) to the
// CacheTier interface.
type diskTier struct {
	t   *Toolchain
	dir string
}

func (d *diskTier) Name() string { return HitDisk }

func (d *diskTier) Lookup(key string) (BitMeta, bool) {
	meta, ok := d.t.diskLookupIn(d.dir, key)
	if !ok {
		return BitMeta{}, false
	}
	return BitMeta{Key: meta.Key, AreaLEs: meta.AreaLEs, RawAreaLEs: meta.RawAreaLEs, CritPath: meta.CritPath}, true
}

func (d *diskTier) Store(meta BitMeta) {
	d.t.diskStoreIn(d.dir, meta)
}
