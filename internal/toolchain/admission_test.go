package toolchain

import (
	"context"
	"errors"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/vclock"
)

// TestAdmissionControlSheds pins the bounded submit queue: with
// MaxQueue in-flight submissions outstanding, the next one is shed
// immediately with a typed ErrOverloaded result, and admission reopens
// once an in-flight job is observed ready on the virtual clock.
func TestAdmissionControlSheds(t *testing.T) {
	o := DefaultOptions()
	o.MaxQueue = 1
	tc := New(fpga.NewCycloneV(), o)
	ctx := context.Background()

	a := tc.Submit(ctx, flatFor(t, smallCounter), false, 0)
	b := tc.Submit(ctx, flatFor(t, bigDatapath), false, 0)
	res := b.Result()
	if res == nil || res.Err == nil {
		t.Fatal("second submission was admitted past MaxQueue=1")
	}
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("shed error not errors.Is(ErrOverloaded): %v", res.Err)
	}
	if b.State() != JobFailed {
		t.Fatalf("shed job state = %v, want failed", b.State())
	}
	if got := tc.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter = %d, want 1", got)
	}

	// A shed is a backoff signal, not a verdict on the design: once the
	// in-flight job is observed ready, a resubmission is admitted and
	// compiles.
	readyAt, ok := a.ReadyAt()
	if !ok {
		t.Fatal("first job lost")
	}
	if !a.Ready(readyAt) {
		t.Fatal("first job not ready at its own ready time")
	}
	c := tc.Submit(ctx, flatFor(t, bigDatapath), false, readyAt)
	if res := c.Result(); res == nil || res.Err != nil {
		t.Fatalf("resubmission after drain failed: %+v", res)
	}
	if got := tc.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter after drain = %d, want still 1", got)
	}
}

// TestAdmissionControlCancelFreesSlot: cancelling an in-flight job
// must release its admission slot — otherwise abandoned compiles
// permanently shrink the queue.
func TestAdmissionControlCancelFreesSlot(t *testing.T) {
	o := DefaultOptions()
	o.MaxQueue = 1
	tc := New(fpga.NewCycloneV(), o)
	ctx := context.Background()

	a := tc.Submit(ctx, flatFor(t, smallCounter), false, 0)
	a.Wait()
	a.Cancel()
	b := tc.Submit(ctx, flatFor(t, bigDatapath), false, vclock.S)
	if res := b.Result(); res == nil || res.Err != nil {
		t.Fatalf("submission after cancel was shed: %+v", res)
	}
}

// TestAdmissionControlDisabledByDefault: MaxQueue=0 never sheds, no
// matter how many submissions pile up.
func TestAdmissionControlDisabledByDefault(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	ctx := context.Background()
	jobs := make([]*Job, 8)
	for i := range jobs {
		jobs[i] = tc.Submit(ctx, flatFor(t, smallCounter), false, 0)
	}
	for i, j := range jobs {
		if res := j.Result(); res == nil || res.Err != nil {
			t.Fatalf("job %d failed without admission control: %+v", i, res)
		}
	}
	if got := tc.Stats().Shed; got != 0 {
		t.Fatalf("Shed counter = %d, want 0", got)
	}
}
