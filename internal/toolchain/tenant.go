package toolchain

import (
	"context"
	"fmt"
	"sort"

	"cascade/internal/elab"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/obsv"
)

// Multi-tenant job service (the hypervisor direction): one Toolchain can
// be shared by N runtimes, each registered as a tenant with its own
// fair-share slice of the worker pool, its own device (its fabric
// partition) for fit and timing checks, its own fault injector and
// observer, and its own stats mirror. Tenancy is an isolation contract:
//
//   - a tenant's jobs consult only that tenant's fault injector, so one
//     tenant's seeded fault schedule never perturbs another's compiles;
//   - cache keys are namespaced per tenant, so one tenant's earlier
//     compile never turns another tenant's first compile into a cache
//     hit — every tenant's JIT timeline is byte-identical to the same
//     program run against a private toolchain (the shared cache trades
//     cross-tenant hit throughput for that determinism);
//   - fit and timing close against the tenant's partition, not the
//     whole shared fabric;
//   - per-tenant stats mirror exactly what a private toolchain's global
//     counters would read.
//
// The empty tenant ID "" is the default tenant: its jobs use the
// toolchain's own device, injector, observer, stats, and unprefixed
// cache keys, so single-tenant callers (Submit) are untouched.

// tenant is one registered consumer of a shared toolchain.
type tenant struct {
	id     string
	sem    chan struct{} // fair-share compile slots (nil: global pool only)
	dev    *fpga.Device  // fit/timing target (nil: the toolchain's device)
	faults *fault.Injector
	obs    *obsv.Observer
	stats  Stats
}

// jobView resolves where one job's faults, observer, device, stats, and
// cache namespace come from: the tenant it was submitted under, or the
// toolchain's own (default-tenant) state when tn is nil.
type jobView struct {
	t  *Toolchain
	tn *tenant
}

// viewFor resolves the view for a tenant ID, lazily creating a tenant
// record for IDs that were never explicitly registered (they get cache
// isolation and stats, but no quota or private device until
// RegisterTenant says otherwise).
func (t *Toolchain) viewFor(id string) jobView {
	if id == "" {
		return jobView{t: t}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return jobView{t: t, tn: t.tenantLocked(id)}
}

// tenantLocked returns (creating if needed) the record for id. Callers
// hold t.mu.
func (t *Toolchain) tenantLocked(id string) *tenant {
	tn := t.tenants[id]
	if tn == nil {
		tn = &tenant{id: id}
		t.tenants[id] = tn
	}
	return tn
}

func (v jobView) device() *fpga.Device {
	if v.tn != nil && v.tn.dev != nil {
		return v.tn.dev
	}
	return v.t.dev
}

func (v jobView) faults() *fault.Injector {
	v.t.mu.Lock()
	defer v.t.mu.Unlock()
	if v.tn != nil {
		return v.tn.faults
	}
	return v.t.faults
}

func (v jobView) observer() *obsv.Observer {
	v.t.mu.Lock()
	defer v.t.mu.Unlock()
	if v.tn != nil {
		return v.tn.obs
	}
	return v.t.obs
}

// bump applies a counter mutation to the job's stats mirror: the
// tenant's, or the toolchain's global counters for the default tenant.
func (v jobView) bump(fn func(*Stats)) {
	v.t.mu.Lock()
	if v.tn != nil {
		fn(&v.tn.stats)
	} else {
		fn(&v.t.stats)
	}
	v.t.mu.Unlock()
}

// cacheKey namespaces a content-addressed key per tenant. The default
// tenant keeps the bare key (and so the disk-store layout) unchanged.
func (v jobView) cacheKey(base string) string {
	if v.tn == nil {
		return base
	}
	return "tenant=" + v.tn.id + "|" + base
}

// acquire takes the tenant's fair-share slot (when bounded) and then a
// global worker slot, in that order — a tenant at its share must not
// camp on a global worker while it waits for its own quota. It returns
// the tenant slot it holds (nil when unbounded) for release, and false
// when ctx is cancelled before both slots are held.
func (v jobView) acquire(ctx context.Context) (chan struct{}, bool) {
	var tsem chan struct{}
	if v.tn != nil {
		v.t.mu.Lock()
		tsem = v.tn.sem
		v.t.mu.Unlock()
	}
	if tsem != nil {
		select {
		case <-ctx.Done():
			return nil, false
		case tsem <- struct{}{}:
		}
	}
	select {
	case <-ctx.Done():
		if tsem != nil {
			<-tsem
		}
		return nil, false
	case v.t.sem <- struct{}{}:
	}
	return tsem, true
}

// release returns the slots acquire took, in reverse order.
func (v jobView) release(tsem chan struct{}) {
	<-v.t.sem
	if tsem != nil {
		<-tsem
	}
}

// RegisterTenant registers (or re-configures) tenant id on the shared
// job service. workers bounds how many of the tenant's compilations may
// occupy workers concurrently — its fair share of the pool; 0 or
// negative leaves the tenant bounded only by the global pool. dev, when
// non-nil, is the device the tenant's flows check fit and timing
// against (the tenant's fabric partition) instead of the toolchain's
// own. Re-registering keeps the tenant's counters. Do not shrink or
// grow workers while the tenant has jobs in flight.
func (t *Toolchain) RegisterTenant(id string, workers int, dev *fpga.Device) {
	if id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tn := t.tenantLocked(id)
	tn.dev = dev
	if workers > 0 {
		if tn.sem == nil || cap(tn.sem) != workers {
			tn.sem = make(chan struct{}, workers)
		}
	} else {
		tn.sem = nil
	}
}

// UnregisterTenant removes a tenant's registration. Jobs already
// submitted keep their snapshot of the tenant's state; the tenant's
// cache entries stay cached (a future re-registration of the same id
// finds its bitstreams published).
func (t *Toolchain) UnregisterTenant(id string) {
	if id == "" {
		return
	}
	t.mu.Lock()
	delete(t.tenants, id)
	t.mu.Unlock()
}

// SetTenantFaults installs a tenant-scoped fault injector: only jobs
// submitted under id consult it. The toolchain-global injector
// (SetFaults) is never consulted for tenant jobs — one tenant's fault
// schedule must not perturb another's.
func (t *Toolchain) SetTenantFaults(id string, in *fault.Injector) {
	if id == "" {
		t.SetFaults(in)
		return
	}
	t.mu.Lock()
	t.tenantLocked(id).faults = in
	t.mu.Unlock()
}

// SetTenantObserver installs a tenant-scoped observability hub: only
// jobs submitted under id trace into it.
func (t *Toolchain) SetTenantObserver(id string, o *obsv.Observer) {
	if id == "" {
		t.SetObserver(o)
		return
	}
	t.mu.Lock()
	t.tenantLocked(id).obs = o
	t.mu.Unlock()
}

// StatsFor snapshots one tenant's job-service counters. The counters
// mirror exactly what a private toolchain's Stats would read for the
// same submission sequence; "" returns the default tenant's (global)
// counters, i.e. Stats().
func (t *Toolchain) StatsFor(id string) Stats {
	if id == "" {
		return t.Stats()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tn := t.tenants[id]; tn != nil {
		return tn.stats
	}
	return Stats{}
}

// TenantShare returns a tenant's registered fair-share worker bound (0
// when unbounded or unknown).
func (t *Toolchain) TenantShare(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tn := t.tenants[id]; tn != nil && tn.sem != nil {
		return cap(tn.sem)
	}
	return 0
}

// Tenants lists the registered tenant IDs, sorted.
func (t *Toolchain) Tenants() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.tenants))
	for id := range t.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SubmitTenant is Submit scoped to a tenant: the job draws on the
// tenant's fair-share worker quota, consults the tenant's fault
// injector and observer, checks fit and timing against the tenant's
// device, counts into the tenant's stats mirror, and caches under the
// tenant's namespace. tenantID "" is exactly Submit.
func (t *Toolchain) SubmitTenant(ctx context.Context, tenantID string, f *elab.Flat, wrapped bool, nowPs uint64) *Job {
	return t.submitTenant(ctx, tenantID, f, wrapped, false, nowPs)
}

// SubmitNative starts a background native-tier compilation: synthesis
// runs as usual, but the back half targets closure-threaded Go instead
// of the fabric — no fit or timing models, no disk store, and a latency
// bill in virtual milliseconds rather than minutes. The artifact caches
// under its own tier key, so native and fabric flows over the same
// netlist never collide.
func (t *Toolchain) SubmitNative(ctx context.Context, f *elab.Flat, nowPs uint64) *Job {
	return t.submitTenant(ctx, "", f, false, true, nowPs)
}

// SubmitNativeTenant is SubmitNative scoped to a tenant's quota, stats,
// observer, and cache namespace.
func (t *Toolchain) SubmitNativeTenant(ctx context.Context, tenantID string, f *elab.Flat, nowPs uint64) *Job {
	return t.submitTenant(ctx, tenantID, f, false, true, nowPs)
}

func (t *Toolchain) submitTenant(ctx context.Context, tenantID string, f *elab.Flat, wrapped, native bool, nowPs uint64) *Job {
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, abort := context.WithCancel(ctx)
	j := &Job{t: t, name: f.Name, native: native, submitPs: nowPs, done: make(chan struct{}), abort: abort,
		view: t.viewFor(tenantID)}
	j.view.bump(func(s *Stats) { s.Submitted++ })
	// Admission control: with MaxQueue set, a submission arriving while
	// that many are already in flight is shed — it completes instantly
	// (in virtual terms, at cache-hit latency) with ErrOverloaded, and
	// the caller's JIT loop backs off and resubmits. In-flight means
	// "not yet observed ready on the virtual clock", so the decision is
	// a pure function of the submission/observation order the virtual
	// timeline dictates and replays deterministically.
	if t.opts.MaxQueue > 0 {
		t.mu.Lock()
		if t.inflight >= t.opts.MaxQueue {
			n := t.inflight
			t.mu.Unlock()
			j.view.bump(func(s *Stats) { s.Shed++ })
			j.settled = true
			j.complete(&Result{
				Err:        fmt.Errorf("toolchain: %w: %d compiles in flight (max %d)", ErrOverloaded, n, t.opts.MaxQueue),
				DurationPs: t.hitLatency(),
			}, "")
			close(j.done)
			return j
		}
		t.inflight++
		j.tracked = true
		t.mu.Unlock()
	}
	// Fabric submissions on a compile farm are stamped into the farm's
	// event order here, on the submitting thread — the stamp order IS
	// the deterministic submission order the route turnstile replays.
	// Native jobs never farm out (backendFor), so they are not stamped.
	if !native {
		if fb, ok := t.Backend().(*FarmBackend); ok {
			fb.noteSubmit(j)
		}
	}
	detail := fmt.Sprintf("wrapped=%v", wrapped)
	if native {
		detail = "tier=native"
	}
	j.view.observer().EmitAt(nowPs, obsv.EvCompileSubmit, f.Name, detail)
	go j.run(jctx, f, wrapped)
	return j
}
