package toolchain

import (
	"cascade/internal/netlist"
)

// Worker is the worker side of a compile-farm shard: what a
// cascade-engined daemon started with -compile-worker hosts. It owns
// one shard's cache stack — a memory join cache, the durable disk tier
// (the daemon's CacheDir), and an optional peer-fetch tier wired to
// sibling workers — and reproduces the back half of a compile flow from
// a shipped netlist summary: clients never ship source, and the worker
// never re-synthesizes. A cold client process whose farm reaches a warm
// worker gets its bitstream at network-cache-hit latency — the paper's
// "standby" experience without any local state.
type Worker struct {
	t       *Toolchain
	entries entryCache
	local   []CacheTier // durable tiers owned by this shard (disk)
	tiers   []CacheTier // full compile stack: local tiers, then peers
}

// NewWorker builds the worker service over a toolchain (whose device,
// latency model, and CacheDir define this shard's behaviour).
func NewWorker(t *Toolchain) *Worker {
	w := &Worker{t: t, entries: newEntryCache()}
	if t.opts.CacheDir != "" {
		w.local = append(w.local, &diskTier{t: t, dir: t.opts.CacheDir})
	}
	w.tiers = w.local
	return w
}

// SetPeerTier installs a peer-fetch cache tier behind the disk store —
// the worker consults sibling workers before paying for place-and-route.
// store may be nil (fetch-only peers). Only Compile consults peers;
// Fetch and Status answer from this shard's own state, so mutually
// peered workers never chase a miss around the ring.
func (w *Worker) SetPeerTier(lookup func(key string) (BitMeta, bool), store func(BitMeta)) {
	w.tiers = append(w.local[:len(w.local):len(w.local)], &funcTier{name: HitPeer, lookup: lookup, store: store})
}

// funcTier adapts callbacks to CacheTier (the transport wires peer
// workers through it without the toolchain importing the transport).
type funcTier struct {
	name   string
	lookup func(key string) (BitMeta, bool)
	store  func(BitMeta)
}

func (f *funcTier) Name() string { return f.name }
func (f *funcTier) Lookup(key string) (BitMeta, bool) {
	if f.lookup == nil {
		return BitMeta{}, false
	}
	return f.lookup(key)
}
func (f *funcTier) Store(meta BitMeta) {
	if f.store != nil {
		f.store(meta)
	}
}

// Compile serves one compile-submit: the shard-local memory tier first
// (join semantics identical to any backend's), then the fit and timing
// models reproduced from the shipped netlist summary, then the durable
// tiers. The outcome carries no netlist — the client reassembles its
// Result around its own synthesized program.
func (w *Worker) Compile(spec ShardSubmit) ShardOutcome {
	hitPs := w.t.hitLatency()
	if res, ok := w.entries.lookup(spec.Key, spec.SubmitPs, spec.BackoffPs, hitPs); ok {
		return outcomeOf(res)
	}
	st := netlist.Stats{Cells: spec.Cells, FFs: spec.FFs, MemBits: spec.MemBits, CritPath: spec.CritPath}
	res := w.t.finishStats(w.t.Device(), st, spec.Wrapped)
	if meta, src, ok := lookupTiers(w.tiers, spec.Key); ok && res.Err == nil && metaMatches(meta, res) {
		res.DurationPs = spec.BackoffPs + hitPs
		res.CacheHit = true
		res.HitSource = src
		w.entries.insert(spec.Key, res, true, spec.SubmitPs)
		return outcomeOf(res)
	}
	res.DurationPs += spec.BackoffPs
	w.entries.insert(spec.Key, res, false, spec.SubmitPs)
	if res.Err == nil {
		storeTiers(w.tiers, BitMeta{Key: spec.Key, AreaLEs: res.AreaLEs,
			RawAreaLEs: res.RawAreaLEs, CritPath: res.Stats.CritPath})
	}
	return outcomeOf(res)
}

// Status reports whether this worker itself holds a verified outcome
// for key (memory or durable tier) without compiling anything — peers
// are deliberately not consulted, so a status probe (or a sibling's
// cache-fetch) never fans back out across the ring.
func (w *Worker) Status(key string) (BitMeta, bool) {
	if meta, ok := w.memMeta(key); ok {
		return meta, true
	}
	meta, _, ok := lookupTiers(w.local, key)
	return meta, ok
}

// Fetch serves a peer cache-fetch: this worker's memory entries and
// durable tiers, without running any model (the asking shard re-checks
// validity against its own synthesis, like every durable-tier consumer).
func (w *Worker) Fetch(key string) (BitMeta, bool) {
	return w.Status(key)
}

// Put lands a replicated outcome in the worker's durable tiers, or —
// with publish set — marks the key's memory entry delivered.
func (w *Worker) Put(meta BitMeta, publish bool) {
	if publish {
		w.entries.publish(meta.Key)
		return
	}
	storeTiers(w.local, meta)
}

// memMeta extracts a durable record from a completed memory entry.
func (w *Worker) memMeta(k string) (BitMeta, bool) {
	entry := w.entries.get(k)
	if entry == nil || entry.res == nil || entry.res.Err != nil {
		return BitMeta{}, false
	}
	return BitMeta{Key: k, AreaLEs: entry.res.AreaLEs,
		RawAreaLEs: entry.res.RawAreaLEs, CritPath: entry.res.Stats.CritPath}, true
}

// outcomeOf flattens a Result to its wire form; flow errors travel as
// text and are rewrapped client-side.
func outcomeOf(res *Result) ShardOutcome {
	out := ShardOutcome{
		AreaLEs: res.AreaLEs, RawAreaLEs: res.RawAreaLEs, CritPath: res.Stats.CritPath,
		DurationPs: res.DurationPs, CacheHit: res.CacheHit, HitSource: res.HitSource,
	}
	if res.Err != nil {
		out.FlowErr = res.Err.Error()
	}
	return out
}
