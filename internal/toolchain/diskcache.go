package toolchain

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"cascade/internal/persist"
)

// Disk-backed bitstream store. With Options.CacheDir set, every
// successfully placed-and-routed design is also recorded on disk,
// content-addressed by the same canonical netlist fingerprint the
// in-memory cache uses. A fresh process pointed at the same directory —
// crash recovery, a restarted REPL, a CI bench step reusing the build
// step's store — serves resubmissions of unchanged designs at cache-hit
// latency instead of re-running the place-and-route model.
//
// Entries are small checksummed containers holding the flow's verified
// outcome (area, critical path), written atomically (temp file + fsync +
// rename) so a crash mid-write can never leave a half-entry. A corrupt,
// truncated, or stale entry is treated as a miss and deleted; an entry
// whose design no longer fits the current device (different capacity or
// clock) is ignored — validity is re-checked against the live device on
// every load, never trusted from disk.
//
// The store is exposed to backends through the CacheTier interface
// (cache.go); the dir-parameterized helpers below let a compile farm
// give each shard its own store under one root.

const (
	bitsMagic   = "cascade-bits"
	bitsVersion = 1
)

// diskMeta is the persisted outcome of one successful flow.
type diskMeta struct {
	Key        string // full cache key (collision guard for the hashed name)
	AreaLEs    int
	RawAreaLEs int
	CritPath   int
}

// diskPathIn maps a cache key to its entry file under dir.
func diskPathIn(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "bs-"+hex.EncodeToString(sum[:12])+".bits")
}

// diskLookup loads and verifies the entry for key in the configured
// store (Options.CacheDir).
func (t *Toolchain) diskLookup(key string) (diskMeta, bool) {
	return t.diskLookupIn(t.opts.CacheDir, key)
}

// diskLookupIn loads and verifies the entry for key under dir.
// Integrity failures of any kind — unreadable, bad checksum, wrong key
// — count as misses (and remove the bad entry); only a clean entry
// returns ok.
func (t *Toolchain) diskLookupIn(dir, key string) (diskMeta, bool) {
	if dir == "" {
		return diskMeta{}, false
	}
	path := diskPathIn(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return diskMeta{}, false
	}
	meta, err := decodeBitsEntry(data)
	if err != nil || meta.Key != key {
		os.Remove(path)
		t.mu.Lock()
		t.stats.DiskCorrupt++
		t.mu.Unlock()
		return diskMeta{}, false
	}
	return meta, true
}

// diskStoreIn durably records a successful flow outcome under dir.
func (t *Toolchain) diskStoreIn(dir string, meta BitMeta) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return // the store is an accelerator; failures never fail the flow
	}
	text := fmt.Sprintf("key=%s\narea=%d\nrawarea=%d\ncritpath=%d\n",
		meta.Key, meta.AreaLEs, meta.RawAreaLEs, meta.CritPath)
	blob := persist.EncodeContainer(bitsMagic, bitsVersion, []persist.Section{
		{Name: "meta", Data: []byte(text)},
	})
	if err := persist.WriteFileAtomic(diskPathIn(dir, meta.Key), blob, 0o644); err != nil {
		return
	}
	t.mu.Lock()
	t.stats.DiskWrites++
	t.mu.Unlock()
}

func decodeBitsEntry(data []byte) (diskMeta, error) {
	var m diskMeta
	_, secs, err := persist.DecodeContainer(bitsMagic, data)
	if err != nil {
		return m, err
	}
	raw, ok := persist.FindSection(secs, "meta")
	if !ok {
		return m, fmt.Errorf("toolchain: bitstream entry missing meta")
	}
	if _, err := fmt.Sscanf(string(raw), "key=%s\narea=%d\nrawarea=%d\ncritpath=%d",
		&m.Key, &m.AreaLEs, &m.RawAreaLEs, &m.CritPath); err != nil {
		return m, fmt.Errorf("toolchain: bitstream entry meta: %w", err)
	}
	return m, nil
}
