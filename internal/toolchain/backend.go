package toolchain

import (
	"context"
	"errors"

	"cascade/internal/fpga"
	"cascade/internal/netlist"
)

// A Backend executes the back half of a compile flow — everything after
// synthesis: cache consultation, the place-and-route (or native
// codegen) model, and durable storage. The job service (job.go) owns
// the front half — admission control, fair-share slots, the fault
// schedule, synthesis — and hands each synthesized netlist to a
// Backend, so the same Job semantics run unchanged over an in-process
// worker pool (LocalBackend) or a sharded compile farm (FarmBackend).
type Backend interface {
	// Compile runs the back half of the flow for one task. The returned
	// Result's DurationPs is the flow's total virtual bill including
	// task.BackoffPs; HitSource attributes cache hits. A non-nil error
	// means the backend itself could not serve the task (every farm
	// shard down) — it is not a verdict on the design, and callers
	// resubmit like an overload shed.
	Compile(ctx context.Context, task *CompileTask) (*Result, error)
	// Publish marks a key's bitstream as delivered (the submission was
	// observed ready in virtual time): identical submissions hit the
	// cache outright from then on, on any clock.
	Publish(key string)
	// Healthy reports whether the backend can currently serve compiles
	// (a farm with every shard down is unhealthy).
	Healthy() bool
	// Capabilities describes the backend's shape for tooling.
	Capabilities() Capabilities
}

// Capabilities describes a backend for stats and tooling.
type Capabilities struct {
	// Shards is the number of independent compile workers (1 for the
	// in-process pool).
	Shards int
	// Durable reports a disk-backed bitstream store.
	Durable bool
	// PeerCache reports a replicated peer-fetch tier (compile farms).
	PeerCache bool
}

// CompileTask is one unit of back-half work: a synthesized netlist plus
// the submission's identity and virtual-time accounting.
type CompileTask struct {
	// Key is the content-addressed (tenant-namespaced) cache key.
	Key string
	// Name is the subprogram path, for trace events.
	Name string
	// Prog is the synthesized netlist.
	Prog *netlist.Program
	// Wrapped selects the ABI-wrapped flow; Native the native tier.
	Wrapped bool
	Native  bool
	// SubmitPs is the submission's virtual time; BackoffPs the backoff
	// a flaky flow accrued before reaching the backend.
	SubmitPs  uint64
	BackoffPs uint64
	// Dev is the device fit and timing close against (the submitting
	// tenant's fabric partition).
	Dev *fpga.Device

	// job links the task back to its Job for farm bookkeeping (route
	// turnstile, per-shard depth accounting). Nil in direct calls.
	job *Job
}

// ErrShardUnavailable reports that a compile-farm submission could not
// be served because no shard was reachable (every shard down, or the
// routed shard and all its replicas failed). It travels inside the
// job's Result.Err; callers match it with errors.Is and resubmit after
// a virtual-time backoff — like ErrOverloaded, it is a verdict on the
// service's availability, never on the design.
var ErrShardUnavailable = errors.New("compile shard unavailable")

// LocalBackend is the in-process backend: the memory join cache plus
// the durable tier chain (disk, when Options.CacheDir is set), executed
// inline on the job service's worker pool.
type LocalBackend struct {
	t       *Toolchain
	entries entryCache
	tiers   []CacheTier
}

func newLocalBackend(t *Toolchain) *LocalBackend {
	b := &LocalBackend{t: t, entries: newEntryCache()}
	if t.opts.CacheDir != "" {
		b.tiers = append(b.tiers, &diskTier{t: t, dir: t.opts.CacheDir})
	}
	return b
}

// Compile implements Backend.
func (b *LocalBackend) Compile(_ context.Context, task *CompileTask) (*Result, error) {
	t := b.t
	if res, ok := b.entries.lookup(task.Key, task.SubmitPs, task.BackoffPs, t.hitLatency()); ok {
		return res, nil
	}

	// Native tier: the back half is the closure-threading pass — no fit
	// or timing models, no durable tiers (the artifact is rebuilt from
	// the netlist in negligible wall-clock time, so persistence buys
	// nothing). It still lands in the memory cache so identical
	// resubmissions hit or join like any other flow.
	if task.Native {
		res := t.finishNative(task.Prog)
		res.DurationPs += task.BackoffPs
		b.entries.insert(task.Key, res, false, task.SubmitPs)
		return res, nil
	}

	// Apply the fit and timing models (against the tenant's own device
	// partition), then consult the durable tiers. A verified entry whose
	// recorded outcome matches this synthesis — and which still fits the
	// live device — means the bitstream was fully built by an earlier
	// process: serve it at cache-hit latency. Anything less (corrupt,
	// stale, new device) pays for place-and-route as usual.
	res := t.finishOn(task.Dev, task.Prog, task.Wrapped)
	if meta, src, ok := lookupTiers(b.tiers, task.Key); ok && res.Err == nil && metaMatches(meta, res) {
		res.DurationPs = task.BackoffPs + t.hitLatency()
		res.CacheHit = true
		res.HitSource = src
		b.entries.insert(task.Key, res, true, task.SubmitPs)
		return res, nil
	}
	res.DurationPs += task.BackoffPs
	b.entries.insert(task.Key, res, false, task.SubmitPs)
	if res.Err == nil {
		storeTiers(b.tiers, BitMeta{Key: task.Key, AreaLEs: res.AreaLEs,
			RawAreaLEs: res.RawAreaLEs, CritPath: res.Stats.CritPath})
	}
	return res, nil
}

// Publish implements Backend.
func (b *LocalBackend) Publish(key string) { b.entries.publish(key) }

// Healthy implements Backend: the in-process pool is always available.
func (b *LocalBackend) Healthy() bool { return true }

// Capabilities implements Backend.
func (b *LocalBackend) Capabilities() Capabilities {
	return Capabilities{Shards: 1, Durable: len(b.tiers) > 0}
}

// backendFor resolves the backend a job dispatches to. Native jobs
// always use the local backend: the native tier is an in-process
// translation pass whose artifact (closure-threaded Go) cannot be
// shipped from a farm shard, and its virtual latency is milliseconds —
// there is nothing to farm out.
func (t *Toolchain) backendFor(native bool) Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	if native || t.backend == nil {
		return t.local
	}
	return t.backend
}

// SetBackend installs a compile backend for fabric flows. Native-tier
// jobs keep using the local backend regardless. Install backends before
// submitting work; swapping with jobs in flight leaves those jobs on
// the backend they started with.
func (t *Toolchain) SetBackend(b Backend) {
	t.mu.Lock()
	t.backend = b
	t.mu.Unlock()
}

// Backend returns the installed fabric backend (the local backend when
// none was installed).
func (t *Toolchain) Backend() Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.backend == nil {
		return t.local
	}
	return t.backend
}
