package toolchain

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cascade/internal/obsv"
	"cascade/internal/supervise"
	"cascade/internal/vclock"
)

// FarmBackend shards the back half of the compile flow across N compile
// workers with a replicated bitstream cache (DESIGN.md "Compile
// backends & the farm"). Jobs are rendezvous-hashed on the synthesized
// netlist's fingerprint; each shard runs a bounded queue, full queues
// steal to the idlest live shard, and a fully saturated farm sheds with
// ErrOverloaded exactly like admission control. Shards can be
// in-process (Workers) or remote cascade-engined compile workers
// (Links, wired by internal/transport).
//
// Determinism (DESIGN.md key invariant 15): every quantity a route
// decision reads — per-shard queue depth, shard liveness, the hash ring
// — is a pure function of the submission order and the virtual
// timeline. Route decisions commit strictly in submission order (a
// turnstile over the farm lock); queue-depth releases are stamped with
// an event-sequence number when the owner settles the job and are
// applied by later routes only when they precede the routing job's own
// submission stamp. Cache serving reuses the exact memory-tier join
// math of the local backend, peer hits bill exactly one cache-hit
// latency, and farm control messages are metered on a separate counter
// (FarmStats.Msgs/MsgPs) — modelled as fully overlapped with the flow's
// compile window — so a farm-backed run is byte-identical to a
// local-backend run.
type FarmBackend struct {
	t     *Toolchain
	opts  FarmOptions
	tiers []CacheTier // durable tiers all shards share (the disk store)

	shards []*shard

	mu   sync.Mutex
	cond *sync.Cond
	// seqNext/esqNext stamp submissions and settles into one event
	// order; nextRoute is the turnstile: the submission sequence allowed
	// to commit its route next. routed counts committed route decisions
	// — the outage schedule's clock.
	seqNext   uint64
	esqNext   uint64
	nextRoute uint64
	routed    uint64
	pending   []settleEv
	keyHome   map[string]int
	stats     FarmStats

	gDepth   []*obsv.Gauge
	cStolen  *obsv.Counter
	cReroute *obsv.Counter
	cPeer    *obsv.Counter
	cShed    *obsv.Counter
	cUnavail *obsv.Counter
}

// FarmOptions configures a sharded compile farm (Toolchain.UseFarm).
type FarmOptions struct {
	// Workers is the number of in-process compile shards (default 2).
	// Ignored when Links is set.
	Workers int
	// Links connects the farm to remote compile workers (cascade-engined
	// -compile-worker daemons), one shard per link. Wire them with
	// internal/transport.DialFarm.
	Links []ShardLink
	// QueueDepth bounds each shard's queue of unobserved submissions
	// (default 8). A submission routed to a full shard is stolen by the
	// idlest live shard; when every live shard is full it is shed with
	// ErrOverloaded.
	QueueDepth int
	// Replicas is how many shards hold each bitstream (default 2,
	// clamped to the shard count): the acting home plus its successors
	// on the hash ring. Determinism across shard restarts is guaranteed
	// while fewer than Replicas shards are down at once.
	Replicas int
	// MsgPs is the virtual cost billed per farm control message
	// (compile-submit, status, cache-fetch, replication, publish) into
	// FarmStats.MsgPs — a separate meter, never the runtime's virtual
	// clock (default 50 virtual µs, divided by Options.Scale).
	MsgPs uint64
	// Outages is a deterministic shard-fault schedule: shard s is down
	// for every route decision whose ordinal falls in [FromRoute,
	// ToRoute), and restarts cold (empty memory cache) at ToRoute. Use
	// SeededOutages for generated schedules.
	Outages []ShardOutage
	// PnRWallNs, when positive, burns that much wall-clock per
	// place-and-route a shard executes (virtual billing unchanged) —
	// modelling the real CPU cost of a CAD flow so cascade-bench can
	// demonstrate wall-clock throughput scaling across shards.
	PnRWallNs int64
	// WallSlots bounds each in-process shard's concurrent back-half
	// executions (default 1): a shard is one compile machine.
	WallSlots int
	// Supervise tunes the per-shard circuit breaker used for remote
	// links (zero value: supervise defaults).
	Supervise supervise.Options
}

func (o *FarmOptions) fill() {
	if len(o.Links) > 0 {
		o.Workers = len(o.Links)
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > o.Workers {
		o.Replicas = o.Workers
	}
	if o.MsgPs == 0 {
		o.MsgPs = 50 * vclock.Us
	}
	if o.WallSlots <= 0 {
		o.WallSlots = 1
	}
}

// ShardOutage marks one shard dead for a window of route decisions.
// Keying the window on route ordinals (not wall or virtual time) makes
// fault schedules replay exactly: the Nth routing decision of a run
// always sees the same shards alive.
type ShardOutage struct {
	Shard     int
	FromRoute uint64 // first route ordinal the shard is down for (inclusive)
	ToRoute   uint64 // ordinal at which the shard restarts, cold (exclusive)
}

// SeededOutages derives a deterministic outage schedule from a seed:
// n non-overlapping windows spread over the first `routes` route
// decisions, each taking one shard down. Windows never overlap, so with
// the default replication factor (2) the schedule stays within the
// determinism guarantee.
func SeededOutages(seed uint64, shards int, routes uint64, n int) []ShardOutage {
	if shards <= 0 || n <= 0 || routes == 0 {
		return nil
	}
	r := farmRNG{state: seed ^ 0xfa_2a_cade}
	span := routes / uint64(n)
	if span < 2 {
		span = 2
	}
	var out []ShardOutage
	for i := 0; i < n; i++ {
		base := uint64(i) * span
		from := base + r.next()%(span/2+1)
		width := 1 + r.next()%(span/2+1)
		out = append(out, ShardOutage{
			Shard:     int(r.next() % uint64(shards)),
			FromRoute: from,
			ToRoute:   from + width,
		})
	}
	return out
}

// farmRNG is splitmix64 (like internal/chaos): tiny, seedable, stable
// across platforms.
type farmRNG struct{ state uint64 }

func (r *farmRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FarmStats snapshots the farm's counters.
type FarmStats struct {
	Shards      int
	Jobs        uint64 // submissions stamped into the farm's event order
	Routed      uint64 // route decisions committed
	Stolen      uint64 // jobs stolen from a full home shard by an idle one
	Rerouted    uint64 // jobs whose hash-preferred home was down
	Shed        uint64 // jobs shed with every live queue at its bound
	Unavailable uint64 // jobs failed with every shard down
	PeerHits    uint64 // submissions served from another shard's cache
	Replicated  uint64 // replica insertions pushed to peer shards
	Msgs        uint64 // farm control messages billed
	MsgPs       uint64 // their total virtual cost (separate meter)
	Depth       []int  // current per-shard queue depth
	Down        []bool // current per-shard outage state
}

// settleEv is one queue-depth release awaiting application in event
// order. The shard is read from the job at apply time: the turnstile
// guarantees the job's own route committed before any later submission
// applies its settle.
type settleEv struct {
	esq uint64
	j   *Job
}

// shard is one compile worker: in-process (link nil) or remote.
type shard struct {
	idx     int
	link    ShardLink
	entries entryCache
	slots   chan struct{} // wall-clock execution slots (in-process)
	brk     *supervise.Supervisor

	// Guarded by the farm mutex.
	depth     int
	schedDown bool // down per the outage schedule
	brkOpen   bool // down per the circuit breaker (remote links)
}

func (s *shard) down() bool { return s.schedDown || s.brkOpen }

// ShardSubmit is the wire form of one compile-submit to a remote
// worker: the cache key plus the synthesized netlist's summary — the
// model inputs. The worker never re-synthesizes; the client keeps the
// netlist (the runtime needs it to program its own fabric) and the
// worker reproduces the flow outcome from the summary.
type ShardSubmit struct {
	Key       string
	Name      string
	Wrapped   bool
	SubmitPs  uint64
	BackoffPs uint64
	Cells     int
	FFs       int
	MemBits   int
	CritPath  int
}

// ShardOutcome is the wire form of a compile-submit's result. FlowErr
// carries a design verdict (no fit, failed timing) as text; the client
// rewraps it so output formatting matches a local run byte for byte.
type ShardOutcome struct {
	AreaLEs    int
	RawAreaLEs int
	CritPath   int
	DurationPs uint64
	CacheHit   bool
	HitSource  string
	FlowErr    string
}

// ShardLink is the farm's connection to one remote compile worker.
// internal/transport implements it over the engine protocol's framing
// (proto kinds compile-submit/status/cancel/cache-fetch/cache-put);
// defining the interface here keeps the toolchain free of a transport
// dependency.
type ShardLink interface {
	// Submit runs the back half of a flow on the worker and returns its
	// outcome. An error is a transport failure (the shard is dead), not
	// a design verdict.
	Submit(spec ShardSubmit) (ShardOutcome, error)
	// Fetch asks the worker's cache for a key (the peer-fetch tier).
	Fetch(key string) (BitMeta, bool, error)
	// Put replicates a freshly built outcome onto the worker.
	Put(meta BitMeta) error
	// Publish marks a key delivered on the worker.
	Publish(key string) error
	// Ping is the breaker's liveness probe.
	Ping() error
	// Addr names the worker (metrics, REPL).
	Addr() string
	// Close releases the connection.
	Close() error
}

// UseFarm installs a sharded compile farm as the toolchain's fabric
// backend and returns it. Native-tier jobs keep compiling on the local
// backend (their artifact is in-process Go; there is nothing to ship).
// Install the farm before submitting work.
func (t *Toolchain) UseFarm(fo FarmOptions) *FarmBackend {
	fb := newFarmBackend(t, fo)
	t.SetBackend(fb)
	return fb
}

// Farm returns the installed farm backend (nil when compiling locally).
func (t *Toolchain) Farm() *FarmBackend {
	t.mu.Lock()
	defer t.mu.Unlock()
	fb, _ := t.backend.(*FarmBackend)
	return fb
}

// FarmStats snapshots the installed farm's counters; ok is false when
// no farm is installed.
func (t *Toolchain) FarmStats() (FarmStats, bool) {
	fb := t.Farm()
	if fb == nil {
		return FarmStats{}, false
	}
	return fb.Stats(), true
}

func newFarmBackend(t *Toolchain, fo FarmOptions) *FarmBackend {
	fo.fill()
	fb := &FarmBackend{
		t:       t,
		opts:    fo,
		keyHome: map[string]int{},
		stats:   FarmStats{Shards: fo.Workers},
	}
	fb.cond = sync.NewCond(&fb.mu)
	if t.opts.CacheDir != "" {
		// Shards share one durable store: it is content-addressed and
		// written atomically, and sharing it keeps disk-hit behaviour
		// identical to the local backend's (invariant 15 with CacheDir).
		fb.tiers = append(fb.tiers, &diskTier{t: t, dir: t.opts.CacheDir})
	}
	obs := t.observer()
	for i := 0; i < fo.Workers; i++ {
		s := &shard{
			idx:     i,
			entries: newEntryCache(),
			slots:   make(chan struct{}, fo.WallSlots),
			brk:     supervise.New(fo.Supervise),
		}
		if len(fo.Links) > 0 {
			s.link = fo.Links[i]
		}
		fb.shards = append(fb.shards, s)
		fb.gDepth = append(fb.gDepth, obs.NewLabeledGauge(
			"cascade_farm_queue_depth", "compile submissions occupying this shard's bounded queue",
			map[string]string{"shard": fmt.Sprint(i)}))
	}
	fb.cStolen = obs.NewCounter("cascade_farm_steals_total", "jobs stolen from a full home shard by an idle one")
	fb.cReroute = obs.NewCounter("cascade_farm_reroutes_total", "jobs routed past a dead home shard")
	fb.cPeer = obs.NewCounter("cascade_farm_peer_hits_total", "submissions served from another shard's bitstream cache")
	fb.cShed = obs.NewCounter("cascade_farm_shed_total", "jobs shed with every shard queue at its bound")
	fb.cUnavail = obs.NewCounter("cascade_farm_unavailable_total", "jobs failed with every shard down")
	return fb
}

// Stats snapshots the farm counters.
func (fb *FarmBackend) Stats() FarmStats {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	st := fb.stats
	st.Depth = make([]int, len(fb.shards))
	st.Down = make([]bool, len(fb.shards))
	for i, s := range fb.shards {
		st.Depth[i] = s.depth
		st.Down[i] = s.down()
	}
	return st
}

// msgPs is the virtual bill of one farm control message, scaled like
// every other toolchain latency.
func (fb *FarmBackend) msgPs() uint64 {
	ps := uint64(float64(fb.opts.MsgPs) / fb.t.opts.Scale)
	if ps == 0 {
		ps = 1
	}
	return ps
}

// billLocked meters n control messages. Callers hold fb.mu.
func (fb *FarmBackend) billLocked(n uint64) {
	fb.stats.Msgs += n
	fb.stats.MsgPs += n * fb.msgPs()
}

// noteSubmit stamps a submission into the farm's event order; called
// synchronously from submitTenant so the order is the caller's
// deterministic submission order, not worker-goroutine scheduling.
func (fb *FarmBackend) noteSubmit(j *Job) {
	fb.mu.Lock()
	j.farm = fb
	j.farmShard = -1
	j.farmHome = -1
	j.farmSeq = fb.seqNext
	fb.seqNext++
	j.farmESQ = fb.esqNext
	fb.esqNext++
	fb.stats.Jobs++
	fb.mu.Unlock()
}

// noteSettle stamps a queue-depth release. It is applied by later route
// decisions whose submissions observed it (esq order), keeping depth a
// pure function of the virtual-order history.
func (fb *FarmBackend) noteSettle(j *Job) {
	fb.mu.Lock()
	fb.pending = append(fb.pending, settleEv{esq: fb.esqNext, j: j})
	fb.esqNext++
	fb.mu.Unlock()
}

// applySettlesLocked releases the queue slots of every settle stamped
// before limit. Callers hold fb.mu inside the turnstile, so every
// affected job's route has already committed and its shard is final.
func (fb *FarmBackend) applySettlesLocked(limit uint64) {
	kept := fb.pending[:0]
	for _, ev := range fb.pending {
		if ev.esq >= limit {
			kept = append(kept, ev)
			continue
		}
		if sh := ev.j.routedShard(); sh >= 0 {
			s := fb.shards[sh]
			if s.depth > 0 {
				s.depth--
			}
			fb.gDepth[sh].Set(int64(s.depth))
		}
	}
	fb.pending = kept
}

// applyOutagesLocked advances the outage schedule to the route ordinal
// about to be decided. A shard leaving an outage window restarts cold:
// its memory cache clears (replicas on its peers survive); the shared
// durable store is unaffected.
func (fb *FarmBackend) applyOutagesLocked() {
	n := fb.routed
	for _, s := range fb.shards {
		was := s.schedDown
		s.schedDown = false
		for _, o := range fb.opts.Outages {
			if o.Shard == s.idx && o.FromRoute <= n && n < o.ToRoute {
				s.schedDown = true
				break
			}
		}
		if was && !s.schedDown {
			s.entries.clear()
		}
	}
}

// probeLocked lets the breaker re-admit recovered remote shards.
func (fb *FarmBackend) probeLocked(vnow uint64) {
	for _, s := range fb.shards {
		if s.link == nil || !s.brkOpen || !s.brk.ShouldProbe(vnow) {
			continue
		}
		s.brk.ProbeSent(vnow)
		fb.billLocked(1)
		if err := s.link.Ping(); err == nil {
			s.brk.ProbeOK(vnow)
			s.brkOpen = false
		} else {
			s.brk.NoteFailure(vnow)
		}
	}
}

// rank orders the shards by rendezvous (highest-random-weight) hash of
// (shard, fingerprint): each fingerprint gets its own stable preference
// order over the shards, so losing one shard reroutes only that shard's
// keys and no others move (consistent hashing without a ring table).
func (fb *FarmBackend) rank(fingerprint string) []int {
	// FNV-1a over the fingerprint, then one splitmix round per shard.
	h := uint64(14695981039346656037)
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= 1099511628211
	}
	type sw struct {
		idx int
		w   uint64
	}
	ws := make([]sw, len(fb.shards))
	for i := range fb.shards {
		r := farmRNG{state: h ^ (uint64(i+1) * 0x9e3779b97f4a7c15)}
		ws[i] = sw{idx: i, w: r.next()}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].idx < ws[b].idx
	})
	order := make([]int, len(ws))
	for i, w := range ws {
		order[i] = w.idx
	}
	return order
}

// route commits the routing decision for j, in strict submission order.
// It picks the acting home (first live shard in rendezvous order),
// steals to the idlest live shard when the home queue is full, sheds
// with ErrOverloaded when every live queue is full, and fails with
// ErrShardUnavailable when no shard is live.
func (fb *FarmBackend) route(j *Job, fingerprint string) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	for fb.nextRoute != j.farmSeq {
		fb.cond.Wait()
	}
	defer func() {
		fb.nextRoute++
		fb.cond.Broadcast()
	}()
	fb.applySettlesLocked(j.farmESQ)
	fb.applyOutagesLocked()
	fb.probeLocked(j.submitPs)
	fb.routed++
	fb.stats.Routed = fb.routed
	fb.billLocked(2) // compile-submit + compile-status

	order := fb.rank(fingerprint)
	live := make([]bool, len(fb.shards))
	for i, s := range fb.shards {
		live[i] = !s.down()
	}
	home := -1
	for _, idx := range order {
		if live[idx] {
			home = idx
			break
		}
	}
	if home < 0 {
		fb.stats.Unavailable++
		fb.cUnavail.Inc()
		return fmt.Errorf("toolchain: %w: all %d compile shards down", ErrShardUnavailable, len(fb.shards))
	}
	if home != order[0] {
		fb.stats.Rerouted++
		fb.cReroute.Inc()
	}
	exec := home
	if fb.shards[home].depth >= fb.opts.QueueDepth {
		// Job-steal: the idlest live shard takes the work (lowest index
		// breaks ties, so the choice is deterministic).
		best, bestDepth := -1, fb.opts.QueueDepth
		for idx, s := range fb.shards {
			if live[idx] && s.depth < bestDepth {
				best, bestDepth = idx, s.depth
			}
		}
		if best < 0 {
			fb.stats.Shed++
			fb.cShed.Inc()
			return fmt.Errorf("toolchain: %w: every compile shard queue at its bound (%d)", ErrOverloaded, fb.opts.QueueDepth)
		}
		exec = best
		fb.stats.Stolen++
		fb.cStolen.Inc()
		fb.billLocked(1) // steal handoff
	}
	s := fb.shards[exec]
	s.depth++
	fb.gDepth[exec].Set(int64(s.depth))
	j.setRoute(exec, home, order, live)
	return nil
}

// skipRoute consumes j's turnstile slot without a decision — jobs that
// die before routing (dead context, synthesis error) must still pass
// the turnstile or every later submission would wait forever.
func (fb *FarmBackend) skipRoute(j *Job) {
	if fb == nil || j.farm == nil {
		return
	}
	fb.mu.Lock()
	for fb.nextRoute != j.farmSeq {
		fb.cond.Wait()
	}
	fb.nextRoute++
	fb.cond.Broadcast()
	fb.mu.Unlock()
}

// Compile implements Backend: the back half of one flow, executed on
// the shard route() picked.
func (fb *FarmBackend) Compile(ctx context.Context, task *CompileTask) (*Result, error) {
	j := task.job
	if j == nil || j.routedShard() < 0 {
		return nil, fmt.Errorf("toolchain: %w: farm compile without a routed job", ErrShardUnavailable)
	}
	if fb.shards[j.routedShard()].link != nil {
		return fb.remoteCompile(task)
	}
	return fb.shardCompile(ctx, task)
}

// shardCompile runs the back half on an in-process shard: the acting
// home's memory tier (exact local join semantics), then live peers'
// memory tiers in rendezvous order (billed one cache-hit latency, like
// any memory hit — which is what keeps invariant 15), then the durable
// tiers, then the place-and-route model with replicated insertion.
func (fb *FarmBackend) shardCompile(_ context.Context, task *CompileTask) (*Result, error) {
	t := fb.t
	j := task.job
	exec, home := fb.shards[j.farmShard], fb.shards[j.farmHome]
	hitPs := t.hitLatency()

	// The executing shard's wall slot bounds real concurrency: a shard
	// is one compile machine, whichever shard's queue the job sits in.
	exec.slots <- struct{}{}
	defer func() { <-exec.slots }()

	if res, ok := home.entries.lookup(task.Key, task.SubmitPs, task.BackoffPs, hitPs); ok {
		return res, nil
	}
	// Peer fetch: scan the shards that were live at route time, in this
	// fingerprint's rendezvous order. Adopting the peer's live entry
	// (the same pointer) makes the home a replica holder from now on —
	// and lets a later publish reach every holder at once.
	for _, idx := range j.farmOrder {
		if idx == j.farmHome || !j.farmLive[idx] {
			continue
		}
		p := fb.shards[idx]
		if res, ok := p.entries.lookup(task.Key, task.SubmitPs, task.BackoffPs, hitPs); ok {
			res.HitSource = HitPeer
			home.entries.adopt(task.Key, p.entries.get(task.Key))
			fb.mu.Lock()
			fb.stats.PeerHits++
			fb.billLocked(1) // cache-fetch
			fb.mu.Unlock()
			fb.cPeer.Inc()
			return res, nil
		}
	}

	res := t.finishOn(task.Dev, task.Prog, task.Wrapped)
	if meta, src, ok := lookupTiers(fb.tiers, task.Key); ok && res.Err == nil && metaMatches(meta, res) {
		res.DurationPs = task.BackoffPs + hitPs
		res.CacheHit = true
		res.HitSource = src
		fb.insertReplicated(task, res, true)
		return res, nil
	}
	if fb.opts.PnRWallNs > 0 && res.Err == nil {
		// The modelled CAD flow's real CPU burn (bench realism); the
		// virtual bill is untouched.
		time.Sleep(time.Duration(fb.opts.PnRWallNs) * time.Nanosecond)
	}
	res.DurationPs += task.BackoffPs
	fb.insertReplicated(task, res, false)
	if res.Err == nil {
		storeTiers(fb.tiers, BitMeta{Key: task.Key, AreaLEs: res.AreaLEs,
			RawAreaLEs: res.RawAreaLEs, CritPath: res.Stats.CritPath})
	}
	return res, nil
}

// insertReplicated lands a flow outcome on the acting home and adopts
// the same entry onto the next Replicas-1 live shards in rendezvous
// order, so the bitstream (and any join against it) survives the death
// of all but one holder.
func (fb *FarmBackend) insertReplicated(task *CompileTask, res *Result, published bool) {
	j := task.job
	entry := fb.shards[j.farmHome].entries.insert(task.Key, res, published, task.SubmitPs)
	placed := 1
	for _, idx := range j.farmOrder {
		if placed >= fb.opts.Replicas {
			break
		}
		if idx == j.farmHome || !j.farmLive[idx] {
			continue
		}
		fb.shards[idx].entries.adopt(task.Key, entry)
		placed++
	}
	fb.mu.Lock()
	fb.stats.Replicated += uint64(placed - 1)
	fb.billLocked(uint64(placed - 1)) // cache-put per replica
	fb.keyHome[task.Key] = j.farmHome
	fb.mu.Unlock()
}

// remoteCompile ships the flow to the routed worker, failing over
// through the fingerprint's rendezvous order when shards die mid-call;
// failures feed the per-shard breaker (a dead shard is treated like a
// dead engine: reroute, don't strand).
func (fb *FarmBackend) remoteCompile(task *CompileTask) (*Result, error) {
	j := task.job
	st := task.Prog.Stats
	spec := ShardSubmit{
		Key: task.Key, Name: task.Name, Wrapped: task.Wrapped,
		SubmitPs: task.SubmitPs, BackoffPs: task.BackoffPs,
		Cells: st.Cells, FFs: st.FFs, MemBits: st.MemBits, CritPath: st.CritPath,
	}
	tryOrder := append([]int{j.farmShard}, j.farmOrder...)
	tried := map[int]bool{}
	for _, idx := range tryOrder {
		if tried[idx] {
			continue
		}
		tried[idx] = true
		s := fb.shards[idx]
		fb.mu.Lock()
		dead := s.brkOpen
		fb.mu.Unlock()
		if dead && idx != j.farmShard {
			continue
		}
		out, err := s.link.Submit(spec)
		if err != nil {
			fb.mu.Lock()
			if s.brk.NoteFailure(task.SubmitPs) || s.brkOpen {
				s.brkOpen = true
			}
			if idx != j.farmShard {
				// fall through to the next replica
			} else {
				fb.stats.Rerouted++
			}
			fb.mu.Unlock()
			fb.cReroute.Inc()
			continue
		}
		fb.mu.Lock()
		if s.brk.ProbeOK(task.SubmitPs) {
			s.brkOpen = false
		}
		if out.HitSource == HitPeer {
			fb.stats.PeerHits++
		}
		fb.billLocked(2)
		fb.mu.Unlock()
		res := &Result{
			Prog: task.Prog, Stats: st,
			AreaLEs: out.AreaLEs, RawAreaLEs: out.RawAreaLEs,
			Wrapped: task.Wrapped, DurationPs: out.DurationPs,
			CacheHit: out.CacheHit, HitSource: out.HitSource,
		}
		if out.FlowErr != "" {
			res.Err = errors.New(out.FlowErr)
		}
		fb.mu.Lock()
		fb.keyHome[task.Key] = idx
		fb.mu.Unlock()
		return res, nil
	}
	fb.mu.Lock()
	fb.stats.Unavailable++
	fb.mu.Unlock()
	fb.cUnavail.Inc()
	return nil, fmt.Errorf("toolchain: %w: no compile shard of %d answered for %s",
		ErrShardUnavailable, len(fb.shards), task.Name)
}

// Publish implements Backend. In-process, publishing the shared entry
// on any holder publishes every replica; remote, the home worker is
// told (best-effort — a missed publish only costs a join instead of an
// outright hit after a cold restart).
func (fb *FarmBackend) Publish(key string) {
	fb.mu.Lock()
	home, known := fb.keyHome[key]
	remote := len(fb.opts.Links) > 0
	fb.billLocked(1)
	fb.mu.Unlock()
	if remote {
		if known {
			fb.shards[home].link.Publish(key)
		}
		return
	}
	for _, s := range fb.shards {
		s.entries.publish(key)
	}
}

// Healthy implements Backend: at least one shard is live.
func (fb *FarmBackend) Healthy() bool {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	for _, s := range fb.shards {
		if !s.down() {
			return true
		}
	}
	return false
}

// Capabilities implements Backend.
func (fb *FarmBackend) Capabilities() Capabilities {
	return Capabilities{
		Shards:    len(fb.shards),
		Durable:   len(fb.tiers) > 0 || len(fb.opts.Links) > 0,
		PeerCache: true,
	}
}

// Close releases remote links.
func (fb *FarmBackend) Close() error {
	var first error
	for _, l := range fb.opts.Links {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
