package toolchain

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/vclock"
)

// farmPrograms returns n structurally distinct flats (distinct
// fingerprints, so each routes independently).
func farmPrograms(t *testing.T, n int) []string {
	t.Helper()
	var srcs []string
	for i := 0; i < n; i++ {
		srcs = append(srcs, fmt.Sprintf(`
module M(input wire clk, output reg [%d:0] q);
  always @(posedge clk) q <= q + %d;
endmodule`, 7+i%4, i+1))
	}
	return srcs
}

func TestFarmMatchesLocalBackend(t *testing.T) {
	srcs := farmPrograms(t, 6)
	type outcome struct {
		dur  uint64
		area int
		hit  bool
		err  bool
	}
	run := func(farm bool) []outcome {
		tc := New(fpga.NewCycloneV(), DefaultOptions())
		if farm {
			tc.UseFarm(FarmOptions{Workers: 3})
		}
		var out []outcome
		now := uint64(0)
		for _, src := range srcs {
			j := tc.Submit(context.Background(), flatFor(t, src), false, now)
			res := j.Result()
			out = append(out, outcome{dur: res.DurationPs, area: res.AreaLEs, hit: res.CacheHit, err: res.Err != nil})
			ready, _ := j.ReadyAt()
			j.Ready(ready)
			now = ready
		}
		// Resubmit the first program: published, must hit on both paths.
		j := tc.Submit(context.Background(), flatFor(t, srcs[0]), false, now)
		res := j.Result()
		out = append(out, outcome{dur: res.DurationPs, area: res.AreaLEs, hit: res.CacheHit, err: res.Err != nil})
		return out
	}
	local, farm := run(false), run(true)
	for i := range local {
		if local[i] != farm[i] {
			t.Fatalf("job %d diverged: local=%+v farm=%+v", i, local[i], farm[i])
		}
	}
	if !farm[len(farm)-1].hit {
		t.Fatal("resubmission should hit the cache")
	}
}

func TestFarmRoutingIsDeterministic(t *testing.T) {
	srcs := farmPrograms(t, 8)
	route := func() []int {
		tc := New(fpga.NewCycloneV(), DefaultOptions())
		fb := tc.UseFarm(FarmOptions{Workers: 4})
		var shards []int
		for _, src := range srcs {
			j := tc.Submit(context.Background(), flatFor(t, src), false, 0)
			j.Wait()
			shards = append(shards, j.routedShard())
		}
		_ = fb
		return shards
	}
	a, b := route(), route()
	spread := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("routing diverged at job %d: %d vs %d", i, a[i], b[i])
		}
		spread[a[i]] = true
	}
	if len(spread) < 2 {
		t.Fatalf("8 distinct fingerprints should spread over >1 of 4 shards, got %v", a)
	}
}

func TestFarmStealsFromFullHomeAndShedsWhenSaturated(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.UseFarm(FarmOptions{Workers: 2, QueueDepth: 2})
	src := farmPrograms(t, 1)[0]
	// Five submissions of one fingerprint, none observed ready: the home
	// queue (depth 2) fills, two land on the idle shard by steal, and the
	// fifth finds every queue at its bound and is shed.
	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, tc.Submit(context.Background(), flatFor(t, src), false, 0))
	}
	for _, j := range jobs {
		j.Wait()
	}
	st, ok := tc.FarmStats()
	if !ok {
		t.Fatal("farm stats missing")
	}
	if st.Stolen != 2 || st.Shed != 1 {
		t.Fatalf("want 2 steals + 1 shed, got %+v", st)
	}
	last := jobs[4].Result()
	if last.Err == nil || !errors.Is(last.Err, ErrOverloaded) {
		t.Fatalf("saturated farm should shed with ErrOverloaded, got %v", last.Err)
	}
	if last.DurationPs != tc.hitLatency() {
		t.Fatalf("shed should be instant in virtual terms: %d", last.DurationPs)
	}
}

func TestFarmOutageReroutesThenServesFromPeer(t *testing.T) {
	src := farmPrograms(t, 1)[0]
	// Find the fingerprint's preferred home with a throwaway farm.
	probe := New(fpga.NewCycloneV(), DefaultOptions())
	pfb := probe.UseFarm(FarmOptions{Workers: 2})
	pj := probe.Submit(context.Background(), flatFor(t, src), false, 0)
	pj.Wait()
	home := pj.routedShard()
	_ = pfb

	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.UseFarm(FarmOptions{Workers: 2, Outages: []ShardOutage{{Shard: home, FromRoute: 0, ToRoute: 1}}})
	// Route 0: home down, job reroutes to the replica shard and builds
	// there.
	j1 := tc.Submit(context.Background(), flatFor(t, src), false, 0)
	ready, ok := j1.ReadyAt()
	if !ok || !j1.Ready(ready) {
		t.Fatal("first job should complete")
	}
	// Route 1: home restarts cold; the resubmission routes home, misses
	// its empty memory tier, and is served from the peer's cache.
	j2 := tc.Submit(context.Background(), flatFor(t, src), false, ready)
	res := j2.Result()
	if res.Err != nil || !res.CacheHit || res.HitSource != HitPeer {
		t.Fatalf("want a peer-cache hit, got err=%v hit=%v src=%q", res.Err, res.CacheHit, res.HitSource)
	}
	if res.DurationPs != tc.hitLatency() {
		t.Fatalf("peer hit should bill one cache-hit latency, got %d", res.DurationPs)
	}
	st, _ := tc.FarmStats()
	if st.Rerouted != 1 || st.PeerHits != 1 {
		t.Fatalf("want 1 reroute + 1 peer hit, got %+v", st)
	}
	if tc.Stats().PeerHits != 1 {
		t.Fatalf("tenant stats should bank the peer hit: %+v", tc.Stats())
	}
}

func TestFarmReplicationSurvivesHomeDeath(t *testing.T) {
	src := farmPrograms(t, 1)[0]
	probe := New(fpga.NewCycloneV(), DefaultOptions())
	probe.UseFarm(FarmOptions{Workers: 3})
	pj := probe.Submit(context.Background(), flatFor(t, src), false, 0)
	pj.Wait()
	home := pj.routedShard()

	tc := New(fpga.NewCycloneV(), DefaultOptions())
	// Build (route 0) with every shard alive — the bitstream lands on the
	// home plus one replica — then kill the home for the resubmission.
	tc.UseFarm(FarmOptions{Workers: 3, Replicas: 2,
		Outages: []ShardOutage{{Shard: home, FromRoute: 1, ToRoute: 2}}})
	j1 := tc.Submit(context.Background(), flatFor(t, src), false, 0)
	ready, _ := j1.ReadyAt()
	if !j1.Ready(ready) {
		t.Fatal("first job should publish")
	}
	j2 := tc.Submit(context.Background(), flatFor(t, src), false, ready)
	res := j2.Result()
	if res.Err != nil || !res.CacheHit {
		t.Fatalf("replica should serve the published bitstream: err=%v hit=%v", res.Err, res.CacheHit)
	}
	if res.DurationPs != tc.hitLatency() {
		t.Fatalf("published replica hit bills one cache-hit latency, got %d", res.DurationPs)
	}
	st, _ := tc.FarmStats()
	if st.Rerouted != 1 {
		t.Fatalf("dead home should count one reroute: %+v", st)
	}
}

func TestFarmAllShardsDownIsTypedUnavailable(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.UseFarm(FarmOptions{Workers: 2, Outages: []ShardOutage{
		{Shard: 0, FromRoute: 0, ToRoute: 1},
		{Shard: 1, FromRoute: 0, ToRoute: 1},
	}})
	j := tc.Submit(context.Background(), flatFor(t, farmPrograms(t, 1)[0]), false, 0)
	res := j.Result()
	if res.Err == nil || !errors.Is(res.Err, ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable, got %v", res.Err)
	}
	st, _ := tc.FarmStats()
	if st.Unavailable != 1 {
		t.Fatalf("want 1 unavailable, got %+v", st)
	}
	if !tc.Backend().Healthy() {
		// Outages are windows over route ordinals; with the window past,
		// the farm reports healthy again on the next decision. Healthy()
		// reflects the last-applied schedule state.
		t.Log("farm still reports the outage window's state until the next route")
	}
}

func TestFarmSerialAndParallelSubmissionsAgree(t *testing.T) {
	srcs := farmPrograms(t, 8)
	type outcome struct {
		dur  uint64
		area int
		err  bool
	}
	serial := func() []outcome {
		tc := New(fpga.NewCycloneV(), DefaultOptions())
		tc.UseFarm(FarmOptions{Workers: 4})
		var out []outcome
		for _, src := range srcs {
			j := tc.Submit(context.Background(), flatFor(t, src), false, 0)
			res := j.Result()
			out = append(out, outcome{res.DurationPs, res.AreaLEs, res.Err != nil})
		}
		return out
	}()
	parallel := func() []outcome {
		tc := New(fpga.NewCycloneV(), DefaultOptions())
		tc.UseFarm(FarmOptions{Workers: 4})
		var jobs []*Job
		for _, src := range srcs {
			jobs = append(jobs, tc.Submit(context.Background(), flatFor(t, src), false, 0))
		}
		var out []outcome
		for _, j := range jobs {
			res := j.Result()
			out = append(out, outcome{res.DurationPs, res.AreaLEs, res.Err != nil})
		}
		return out
	}()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d diverged: serial=%+v parallel=%+v", i, serial[i], parallel[i])
		}
	}
}

func TestFarmBillsControlMessagesOnSeparateMeter(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	tc.UseFarm(FarmOptions{Workers: 2, MsgPs: 100 * vclock.Us})
	j := tc.Submit(context.Background(), flatFor(t, farmPrograms(t, 1)[0]), false, 0)
	res := j.Result()
	local := New(fpga.NewCycloneV(), DefaultOptions()).CompileSync(flatFor(t, farmPrograms(t, 1)[0]), false)
	if res.DurationPs != local.DurationPs {
		t.Fatalf("farm messages must never bill the flow's virtual clock: farm=%d local=%d",
			res.DurationPs, local.DurationPs)
	}
	st, _ := tc.FarmStats()
	if st.Msgs == 0 || st.MsgPs != st.Msgs*100*vclock.Us {
		t.Fatalf("message meter wrong: %+v", st)
	}
}

func TestSeededOutagesAreStableAndBounded(t *testing.T) {
	a := SeededOutages(42, 3, 100, 4)
	b := SeededOutages(42, 3, 100, 4)
	if len(a) != 4 {
		t.Fatalf("want 4 windows, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not stable at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Shard < 0 || a[i].Shard >= 3 || a[i].ToRoute <= a[i].FromRoute {
			t.Fatalf("window %d malformed: %+v", i, a[i])
		}
		if i > 0 && a[i].FromRoute < a[i-1].ToRoute {
			t.Fatalf("windows overlap: %+v then %+v", a[i-1], a[i])
		}
	}
	if c := SeededOutages(43, 3, 100, 4); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Fatal("different seeds should differ")
	}
}

func TestFarmCapabilitiesAndBackendSwap(t *testing.T) {
	tc := New(fpga.NewCycloneV(), DefaultOptions())
	if caps := tc.Backend().Capabilities(); caps.Shards != 1 || caps.PeerCache {
		t.Fatalf("local capabilities wrong: %+v", caps)
	}
	fb := tc.UseFarm(FarmOptions{Workers: 3})
	if caps := tc.Backend().Capabilities(); caps.Shards != 3 || !caps.PeerCache {
		t.Fatalf("farm capabilities wrong: %+v", caps)
	}
	if tc.Farm() != fb {
		t.Fatal("Farm() should return the installed backend")
	}
	// Native jobs stay on the local backend even with a farm installed.
	j := tc.SubmitNative(context.Background(), flatFor(t, farmPrograms(t, 1)[0]), 0)
	res := j.Result()
	if res.Err != nil || !res.NativeGo {
		t.Fatalf("native flow broken under farm: %+v", res)
	}
	st, _ := tc.FarmStats()
	if st.Jobs != 0 {
		t.Fatalf("native job must not be stamped into the farm order: %+v", st)
	}
}
