package toolchain

import (
	"context"
	"fmt"
	"sync"

	"cascade/internal/elab"
	"cascade/internal/fault"
	"cascade/internal/netlist"
	"cascade/internal/obsv"
	"cascade/internal/vclock"
)

// JobState is the lifecycle state of a background compilation.
type JobState int

// Job lifecycle states. A job that hits a transient fault moves to
// JobRetrying while it backs off (in virtual time) before re-attempting
// the flow; JobFailed covers both permanent faults and design errors
// (no fit, failed timing closure).
const (
	JobQueued JobState = iota
	JobRunning
	JobRetrying
	JobDone
	JobFailed
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobRetrying:
		return "retrying"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is a background compilation tracked in virtual time.
type Job struct {
	t        *Toolchain
	view     jobView // tenant scoping: faults, observer, device, stats, cache namespace
	name     string  // subprogram path, for trace events
	native   bool    // native-tier flow (closure-threaded Go, not a bitstream)
	submitPs uint64
	done     chan struct{}

	// Farm bookkeeping, written at submit (under the farm lock) and read
	// by the route turnstile: the submission's commit sequence, its
	// event-sequence number, and — once routed — the shard whose queue
	// depth it occupies plus the route-time view (rendezvous order and
	// shard liveness) the compile executes against. Zero-valued for
	// local-backend jobs.
	farm      *FarmBackend
	farmSeq   uint64
	farmESQ   uint64
	farmShard int
	farmHome  int
	farmOrder []int
	farmLive  []bool

	mu        sync.Mutex
	state     JobState
	retries   int
	canceled  bool
	settled   bool // left the in-flight count (admission control)
	tracked   bool // counted into Toolchain.inflight at submit
	res       *Result
	readyAtPs uint64
	pubKey    string  // cache key to publish on first observed readiness ("" means none)
	be        Backend // the backend that served the flow
	abort     context.CancelFunc
}

// State returns the job's lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Native reports whether this is a native-tier job.
func (j *Job) Native() bool { return j.native }

// Retries returns how many transient-fault retries this job has run.
func (j *Job) Retries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.retries
}

// setRoute records the farm's routing decision: the executing shard,
// the acting home, and the route-time view (rendezvous order, liveness
// snapshot) the compile runs against. Called under the farm lock inside
// the turnstile.
func (j *Job) setRoute(exec, home int, order []int, live []bool) {
	j.farmShard = exec
	j.farmHome = home
	j.farmOrder = order
	j.farmLive = live
}

// routedShard is the shard whose queue depth this job occupies (-1
// before routing, and forever for jobs that died pre-route). Read under
// the farm lock by settle application, and by the job's own worker
// goroutine after its route committed.
func (j *Job) routedShard() int { return j.farmShard }

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Submit starts a background compilation at virtual time nowPs. The
// call returns immediately; the job runs on the service's worker pool
// and its result becomes visible once it has compiled and the caller's
// virtual clock passes its ready time. Cancelling ctx aborts the job if
// it has not yet reached a worker; Job.Cancel discards the result of an
// obsolete job at any point.
func (t *Toolchain) Submit(ctx context.Context, f *elab.Flat, wrapped bool, nowPs uint64) *Job {
	return t.SubmitTenant(ctx, "", f, wrapped, nowPs)
}

// run executes the flow on a worker slot.
func (j *Job) run(ctx context.Context, f *elab.Flat, wrapped bool) {
	defer close(j.done)
	defer j.abort() // release the derived context once the flow ends
	t := j.t
	// The backend decision was snapshotted at submit time (noteSubmit set
	// j.farm iff the farm stamped this submission into its event order):
	// resolving it again here could race a concurrent SetBackend swap and
	// leave a farm-sequenced job running locally — deadlocking the
	// turnstile — or an unsequenced job waiting at it forever.
	farm := j.farm
	be := t.backendFor(j.native)
	if farm != nil {
		be = farm
	} else if _, swapped := be.(*FarmBackend); swapped {
		be = t.local // farm installed after this job was submitted
	}
	j.mu.Lock()
	j.be = be
	j.mu.Unlock()
	// A context dead before any work was attempted aborts the job
	// deterministically. After this point the flow runs to completion
	// even if the owner Cancels it: whether the worker goroutine had
	// started when the cancel landed is a wall-clock race, and letting
	// that race decide the Synthesized/CacheMisses counters (or whether
	// the bitstream reaches the cache) would make otherwise-identical
	// runs diverge. Cancellation discards the subscription, not the flow.
	if ctx.Err() != nil {
		farm.skipRoute(j)
		j.markCanceled()
		return
	}

	// Farm jobs synthesize before taking a worker slot: the router needs
	// the netlist fingerprint, and route decisions commit strictly in
	// submission order (the farm turnstile) — an ordered commit must
	// never wait behind a later submission's worker slot, or the
	// turnstile deadlocks. Local jobs keep the classic order (slot,
	// faults, synthesis) untouched.
	var prog *netlist.Program
	if farm != nil {
		var err error
		prog, err = j.synth(f)
		if err != nil {
			farm.skipRoute(j)
			j.complete(&Result{Err: err, DurationPs: t.opts.BasePs / 4}, "")
			return
		}
		if err := farm.route(j, prog.Fingerprint()); err != nil {
			// Every shard queue at its bound (ErrOverloaded) or every
			// shard down (ErrShardUnavailable): shed the submission like
			// admission control does — instant in virtual terms, callers
			// back off and resubmit.
			j.view.bump(func(s *Stats) { s.Shed++ })
			j.complete(&Result{Err: err, DurationPs: t.hitLatency()}, "")
			return
		}
	}

	// Wait for the tenant's fair-share slot, then a global worker; a
	// context cancelled while queued aborts the job before any work is
	// done.
	tsem, ok := j.view.acquire(ctx)
	if !ok {
		j.markCanceled()
		return
	}
	defer j.view.release(tsem)
	j.setState(JobRunning)

	// Consult the fault schedule for this attempt. Transient faults are
	// retried with capped exponential backoff accumulated in *virtual*
	// time (the flow's wall-clock is already virtual; retries just make
	// the job ready later); permanent faults fail the job once and are
	// never re-queued. The backoff accrued by a flaky flow is carried
	// into the result's duration, cache hit or not. The schedule is the
	// submitting tenant's own — another tenant's injector never fires
	// here.
	// The native tier never consults the compile-fault schedule: the
	// flow is an in-process translation pass with no license server or
	// vendor toolchain to flake. Its fault surface is at runtime instead
	// (region faults against the compiled code cache, which the runtime
	// answers with a native -> interpreter demotion).
	var backoff uint64
	for attempt := 0; !j.native; attempt++ {
		err := j.view.faults().Compile(f.Name)
		if err == nil {
			break
		}
		if fault.IsTransient(err) && attempt < t.opts.MaxRetries {
			backoff += t.backoffPs(attempt)
			j.view.bump(func(s *Stats) {
				s.Retried++
				s.TransientFaults++
			})
			j.mu.Lock()
			j.state = JobRetrying
			j.retries++
			j.mu.Unlock()
			continue
		}
		transient := fault.IsTransient(err)
		j.view.bump(func(s *Stats) {
			if transient {
				s.TransientFaults++
			} else {
				s.PermanentFaults++
			}
		})
		j.complete(&Result{
			Err:        fmt.Errorf("toolchain: flow failed: %w", err),
			DurationPs: backoff + t.opts.BasePs/4,
		}, "")
		return
	}

	if prog == nil {
		var err error
		prog, err = j.synth(f)
		if err != nil {
			j.complete(&Result{Err: err, DurationPs: backoff + t.opts.BasePs/4}, "")
			return
		}
	}
	key := j.view.cacheKey(fmt.Sprintf("%s|wrapped=%v", prog.Fingerprint(), wrapped))
	if j.native {
		key = j.view.cacheKey(prog.Fingerprint() + "|tier=native")
	}

	task := &CompileTask{
		Key: key, Name: j.name, Prog: prog,
		Wrapped: wrapped, Native: j.native,
		SubmitPs: j.submitPs, BackoffPs: backoff,
		Dev: j.view.device(), job: j,
	}
	res, cerr := be.Compile(ctx, task)
	if cerr != nil {
		// The backend itself failed the task (no shard reachable) — not
		// a verdict on the design. Complete with the typed error so the
		// caller's JIT loop backs off and resubmits once shards reopen.
		j.complete(&Result{Err: cerr, DurationPs: backoff + t.hitLatency()}, "")
		return
	}
	j.classify(res)
	j.complete(res, key)
}

// classify banks a served flow's cache outcome into the tenant's stats
// mirror and the observability hub, attributing the hit source.
func (j *Job) classify(res *Result) {
	switch res.HitSource {
	case HitJoined:
		j.view.bump(func(s *Stats) { s.Joined++ })
		if obs := j.view.observer(); obs != nil {
			obs.CacheHits.Inc()
			obs.EmitAt(j.submitPs, obsv.EvCacheHit, j.name, "joined in-flight flow")
		}
	case HitMemory, HitDisk, HitPeer:
		src := res.HitSource
		j.view.bump(func(s *Stats) {
			s.CacheHits++
			switch src {
			case HitDisk:
				s.DiskHits++
			case HitPeer:
				s.PeerHits++
			}
		})
		if obs := j.view.observer(); obs != nil {
			detail := "memory"
			switch src {
			case HitDisk:
				detail = "disk store"
			case HitPeer:
				detail = "peer cache"
			}
			obs.CacheHits.Inc()
			obs.EmitAt(j.submitPs, obsv.EvCacheHit, j.name, detail)
		}
	default:
		j.view.bump(func(s *Stats) { s.CacheMisses++ })
		if obs := j.view.observer(); obs != nil {
			detail := "place-and-route"
			if j.native {
				detail = "native codegen"
			}
			obs.CacheMisses.Inc()
			obs.EmitAt(j.submitPs, obsv.EvCacheMiss, j.name, detail)
		}
	}
}

// synth is the job-service path through synthesis: the global
// synthesized-flow count still ticks (Compiles observes real synthesis
// runs machine-wide), but the stats mirror is the submitting tenant's.
func (j *Job) synth(f *elab.Flat) (*netlist.Program, error) {
	j.t.mu.Lock()
	j.t.compiles++
	j.t.mu.Unlock()
	j.view.bump(func(s *Stats) { s.Synthesized++ })
	return netlist.Compile(f)
}

// markCanceled moves the job to the cancelled state. The stats counter
// increments exactly once per job, on the first transition — whether the
// worker noticed the abort or the owner called Cancel first is a
// wall-clock race, and racy accounting would make otherwise-identical
// sessions diverge in :stats.
func (j *Job) markCanceled() {
	j.mu.Lock()
	already := j.canceled
	j.canceled = true
	j.state = JobCanceled
	j.mu.Unlock()
	if already {
		return
	}
	j.view.bump(func(s *Stats) { s.Canceled++ })
	j.settle()
}

// settle removes the job from the in-flight count, exactly once. A job
// settles when its owner observes it ready on the virtual clock or
// cancels it — the moments the submission stops occupying the bounded
// queue admission control meters. On a farm the settle also frees the
// job's slot in its shard's bounded queue, stamped into the farm's
// event order so later route decisions observe it deterministically.
func (j *Job) settle() {
	j.mu.Lock()
	already := j.settled
	j.settled = true
	tracked := j.tracked
	j.mu.Unlock()
	if already {
		return
	}
	if j.farm != nil {
		j.farm.noteSettle(j)
	}
	if !tracked {
		return
	}
	j.t.mu.Lock()
	if j.t.inflight > 0 {
		j.t.inflight--
	}
	j.t.mu.Unlock()
}

func (j *Job) complete(res *Result, pubKey string) {
	j.mu.Lock()
	j.res = res
	j.readyAtPs = j.submitPs + res.DurationPs
	j.pubKey = pubKey
	switch {
	case j.canceled:
		// A cancelled job's flow still completes (see Cancel), but the
		// lifecycle state stays cancelled.
	case res.Err != nil:
		j.state = JobFailed
	default:
		j.state = JobDone
	}
	readyAt := j.readyAtPs
	j.mu.Unlock()
	if o := j.view.observer(); o != nil {
		// The histogram records exactly the virtual duration the flow
		// bills (TestObserverRecordsBilledLatency pins the two together);
		// the completion event is stamped at the flow's virtual finish.
		o.CompileLatency.Observe(res.DurationPs)
		switch {
		case res.Err != nil:
			o.EmitAt(readyAt, obsv.EvCompileFailed, j.name, res.Err.Error())
		case res.NativeGo:
			o.EmitAt(readyAt, obsv.EvBitstreamReady, j.name,
				fmt.Sprintf("tier=native virtual=%.3fs cacheHit=%v", float64(res.DurationPs)/float64(vclock.S), res.CacheHit))
		default:
			o.EmitAt(readyAt, obsv.EvBitstreamReady, j.name,
				fmt.Sprintf("area=%dLEs virtual=%.3fs cacheHit=%v", res.AreaLEs, float64(res.DurationPs)/float64(vclock.S), res.CacheHit))
		}
	}
}

// Cancel marks the job obsolete: its result will never be reported
// ready. The flow itself still runs to completion in the background and
// its bitstream reaches the cache — cancellation drops the
// subscription, not the artifact. (Aborting the worker here would race
// its startup: whether the flow had begun when the cancel landed is
// wall-clock scheduling, and the stats counters and cache warmth must
// not depend on it. Abandoning queued work promptly is what the submit
// context is for.)
func (j *Job) Cancel() {
	j.markCanceled()
}

// Wait blocks until the job has left the worker pool (compiled,
// cancelled, or failed).
func (j *Job) Wait() { <-j.done }

// Canceled reports whether the job was cancelled.
func (j *Job) Canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// ReadyAt blocks until the flow's duration is known and returns the
// virtual time at which the job finishes; ok is false for cancelled
// jobs.
func (j *Job) ReadyAt() (ps uint64, ok bool) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled || j.res == nil {
		return 0, false
	}
	return j.readyAtPs, true
}

// Result blocks until the job completes and returns its result (nil for
// cancelled jobs).
func (j *Job) Result() *Result {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return nil
	}
	return j.res
}

// Ready reports whether the job has finished by virtual time nowPs. It
// blocks until the flow's virtual duration is known (synthesis is fast
// in wall-clock terms) so that readiness depends only on virtual time —
// the JIT timeline stays deterministic no matter how fast the host
// steps. The first time a job is observed ready its bitstream is
// published: from then on identical submissions hit the cache outright,
// on any clock (the mechanism behind restoring a Snapshot onto a
// same-shape device without re-running place-and-route).
func (j *Job) Ready(nowPs uint64) bool {
	<-j.done
	j.mu.Lock()
	if j.canceled || j.res == nil || nowPs < j.readyAtPs {
		j.mu.Unlock()
		return false
	}
	pubKey, be := j.pubKey, j.be
	j.mu.Unlock()
	if pubKey != "" && be != nil {
		be.Publish(pubKey)
	}
	j.settle()
	return true
}
