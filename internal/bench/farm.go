package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/toolchain"
)

// FarmRow is one worker-count sample of the compile-farm scaling
// experiment.
type FarmRow struct {
	Workers    int
	WallSec    float64
	JobsPerSec float64
	Stolen     uint64
	Msgs       uint64
}

// Farm holds the compile-farm experiment: aggregate compile throughput
// against worker count (each shard burns real wall clock per
// place-and-route, so throughput is CPU-bound like a real CAD farm),
// plus the cold-start path — the virtual latency a restarted client
// pays when the farm's replicated cache serves its bitstream versus
// re-running the full flow.
type Farm struct {
	Rows    []FarmRow
	Jobs    int
	Scaling float64 // throughput at 4 workers over 1 worker (ideal: 4)

	MissPs    uint64  // full place-and-route flow, virtual ps
	ColdHitPs uint64  // cache-served restart, virtual ps
	ColdRatio float64 // MissPs / ColdHitPs
}

// farmBenchProgram returns the i-th distinct design: counters of
// different widths and strides, so every job carries its own netlist
// fingerprint and the farm has real routing work.
func farmBenchProgram(i int) string {
	return fmt.Sprintf(`
        reg [%d:0] cnt = 0;
        always @(posedge clk.val) cnt <= cnt + %d;
        assign led.val = cnt[7:0];
    `, 8+i, 1+2*i)
}

// pnrWallNs is the modelled real CPU burn of one place-and-route
// (FarmOptions.PnRWallNs): large enough to dominate scheduling noise,
// small enough that the 1-worker serial baseline stays under a second.
const pnrWallNs = 15e6 // 15 ms

// RunFarm measures compile-farm throughput scaling: the same batch of
// distinct designs submitted to farms of 1, 2, and 4 workers, each
// place-and-route burning pnrWallNs of real wall clock on its shard.
func RunFarm() (*Farm, error) {
	const jobs = 16
	flats := make([]*elab.Flat, jobs)
	for i := range flats {
		f, err := elabMain(farmBenchProgram(i))
		if err != nil {
			return nil, err
		}
		flats[i] = f
	}

	out := &Farm{Jobs: jobs}
	for _, workers := range []int{1, 2, 4} {
		dev := fpga.NewCycloneV()
		tco := toolchain.DefaultOptions()
		tco.Scale = 1e9
		tco.BasePs = 1
		tco.Workers = jobs // the client never bottlenecks the shards
		tc := toolchain.New(dev, tco)
		// Capacity exactly equals the batch: queues bound at jobs/workers,
		// so a job whose rendezvous home is saturated steals to the
		// idlest shard (balancing the batch) and nothing ever sheds.
		fb := tc.UseFarm(toolchain.FarmOptions{
			Workers:    workers,
			QueueDepth: (jobs + workers - 1) / workers,
			PnRWallNs:  pnrWallNs,
		})

		start := time.Now()
		var wg sync.WaitGroup
		for i, f := range flats {
			wg.Add(1)
			go func(i int, f *elab.Flat) {
				defer wg.Done()
				j := tc.Submit(context.Background(), f, true, 0)
				if res := j.Result(); res.Err != nil {
					panic(fmt.Sprintf("farm bench job %d: %v", i, res.Err))
				}
			}(i, f)
		}
		wg.Wait()
		wall := time.Since(start).Seconds()
		st := fb.Stats()
		out.Rows = append(out.Rows, FarmRow{
			Workers:    workers,
			WallSec:    wall,
			JobsPerSec: float64(jobs) / wall,
			Stolen:     st.Stolen,
			Msgs:       st.Msgs,
		})
		fb.Close()
	}
	out.Scaling = out.Rows[len(out.Rows)-1].JobsPerSec / out.Rows[0].JobsPerSec

	// Cold start: a fresh submission misses and pays the full flow; a
	// restarted client resubmitting the same design is served from the
	// farm's replicated cache at cache-hit latency. Paper-faithful
	// latencies (Scale 1) so the virtual numbers mean something.
	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tc := toolchain.New(dev, tco)
	tc.UseFarm(toolchain.FarmOptions{Workers: 2})
	j := tc.Submit(context.Background(), flats[0], true, 0)
	res := j.Result()
	if res.Err != nil {
		return nil, res.Err
	}
	out.MissPs = res.DurationPs
	ready, _ := j.ReadyAt()
	j.Ready(ready) // publish, as a client observing readiness would
	j2 := tc.Submit(context.Background(), flats[0], true, ready)
	res2 := j2.Result()
	if res2.Err != nil {
		return nil, res2.Err
	}
	if !res2.CacheHit {
		return nil, fmt.Errorf("cold-start resubmission missed the farm cache")
	}
	out.ColdHitPs = res2.DurationPs
	if out.ColdHitPs > 0 {
		out.ColdRatio = float64(out.MissPs) / float64(out.ColdHitPs)
	}
	return out, nil
}
