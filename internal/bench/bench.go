// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment runs the real system — parser, IR,
// engines, scheduler, JIT — on the real workloads, measures steady-state
// virtual-clock rates by execution, and extends the deterministic rates
// across the paper's 900-second timelines analytically (measure-then-
// extrapolate, the same thing a frequency counter does; see
// EXPERIMENTS.md for the methodology note).
package bench

import (
	"fmt"
	"strings"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/ir"
	"cascade/internal/metrics"
	"cascade/internal/runtime"
	"cascade/internal/stdlib"
	"cascade/internal/toolchain"
	"cascade/internal/userstudy"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
	"cascade/internal/workloads/ledswitch"
	"cascade/internal/workloads/pow"
	"cascade/internal/workloads/regexgen"
)

// Point is one sample of a time series.
type Point struct {
	TSec float64
	Y    float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// measureRate runs n ticks and returns the virtual tick rate in Hz.
func measureRate(r *runtime.Runtime, n uint64) float64 {
	t0, k0 := r.VirtualNow(), r.Ticks()
	r.RunTicks(n)
	dt := float64(r.VirtualNow()-t0) / float64(vclock.S)
	if dt <= 0 {
		return 0
	}
	return float64(r.Ticks()-k0) / dt
}

// powProgram is the Figure 11 benchmark program: the miner driven by the
// global clock.
func powProgram() string {
	cfg := pow.DefaultConfig()
	cfg.Target = 0 // run forever; the figure measures throughput
	return pow.Generate(cfg) + `
wire [31:0] pow_hashes, pow_nonce, pow_hash0, pow_sol;
wire pow_found;
Pow miner(.clk(clk.val), .hashes(pow_hashes), .nonce(pow_nonce),
          .found(pow_found), .hash0(pow_hash0), .solution(pow_sol));
`
}

// Fig11 holds the proof-of-work benchmark results.
type Fig11 struct {
	Series []Series

	StartupSec        float64 // Cascade time-to-first-instruction
	IVerilogHz        float64 // interpreted baseline steady rate
	CascadeSimHz      float64 // Cascade software-phase rate
	CascadeOpenLoopHz float64
	NativeHz          float64
	QuartusCompileSec float64 // native flow latency
	CascadeCompileSec float64 // background (wrapped) flow latency
	SimSpeedup        float64 // CascadeSimHz / IVerilogHz (paper: 2.4x)
	OpenLoopGap       float64 // NativeHz / CascadeOpenLoopHz (paper: 2.9x)
	SpatialOverhead   float64 // wrapped/native area (paper: 2.9x)

	// Stats is the Cascade runtime's final status snapshot (phase,
	// virtual-time breakdown, compile-cache counters) — the same struct
	// the REPL's :stats line prints.
	Stats runtime.Stats
}

// RunFig11 regenerates Figure 11.
func RunFig11() (*Fig11, error) {
	prog := powProgram()
	out := &Fig11{}

	// iVerilog baseline: eager interpretation, no JIT.
	iv := runtime.New(runtime.Options{Features: runtime.Features{DisableJIT: true, EagerSim: true}})
	if err := iv.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	if err := iv.Eval(prog); err != nil {
		return nil, err
	}
	out.IVerilogHz = measureRate(iv, 400)

	// Cascade: measure the software phase, let the background compile
	// finish, then measure open loop.
	cas := runtime.New(runtime.Options{OpenLoopTargetPs: 200 * vclock.Us})
	if err := cas.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	if err := cas.Eval(prog); err != nil {
		return nil, err
	}
	out.StartupSec = float64(cas.StartupPs()) / float64(vclock.S)
	out.CascadeSimHz = measureRate(cas, 400)
	readyAt, pending := cas.CompileReadyAt()
	if !pending {
		return nil, fmt.Errorf("fig11: no background compilation in flight")
	}
	out.CascadeCompileSec = float64(readyAt) / float64(vclock.S)
	if cas.VirtualNow() < readyAt {
		cas.Idle(readyAt - cas.VirtualNow() + 1)
	}
	if !cas.WaitForPhase(runtime.PhaseOpenLoop, 50_000) {
		return nil, fmt.Errorf("fig11: cascade never reached open loop (phase %v)", cas.Phase())
	}
	cas.Step() // stabilize the adaptive burst size
	out.CascadeOpenLoopHz = measureRate(cas, 40_000)
	out.Stats = cas.Stats()

	// Quartus baseline: native compile latency of the exact source,
	// then full fabric speed.
	dev := fpga.NewCycloneV()
	tc := toolchain.New(dev, toolchain.DefaultOptions())
	flat, err := elabMain(prog)
	if err != nil {
		return nil, err
	}
	nres := tc.CompileSync(flat, false)
	if nres.Err != nil {
		return nil, fmt.Errorf("fig11: native compile: %w", nres.Err)
	}
	out.QuartusCompileSec = float64(nres.DurationPs) / float64(vclock.S)
	out.NativeHz = float64(dev.ClockHz())

	wres := tc.CompileSync(flat, true)
	if wres.Err != nil {
		return nil, fmt.Errorf("fig11: wrapped compile: %w", wres.Err)
	}
	out.SpatialOverhead = float64(wres.AreaLEs) / float64(nres.RawAreaLEs)
	out.SimSpeedup = out.CascadeSimHz / out.IVerilogHz
	out.OpenLoopGap = out.NativeHz / out.CascadeOpenLoopHz

	// Assemble the 900-second timeline.
	horizon := 900.0
	out.Series = []Series{
		{Name: "iVerilog", Points: []Point{
			{0.5, out.IVerilogHz}, {horizon, out.IVerilogHz},
		}},
		{Name: "Quartus", Points: []Point{
			{out.QuartusCompileSec, out.NativeHz}, {horizon, out.NativeHz},
		}},
		{Name: "Cascade", Points: []Point{
			{out.StartupSec, out.CascadeSimHz},
			{out.CascadeCompileSec, out.CascadeSimHz},
			{out.CascadeCompileSec + 1, out.CascadeOpenLoopHz},
			{horizon, out.CascadeOpenLoopHz},
		}},
	}
	return out, nil
}

// Tier holds the native-tier trajectory: the PoW miner's virtual tick
// rate on each rung of the extended JIT ladder (interpreter -> native
// closure-threaded Go -> fabric open loop) and the virtual times at
// which the promotions land.
type Tier struct {
	Series []Series

	StartupSec     float64
	InterpHz       float64 // interpreter rate before the native swap
	NativeHz       float64 // native-tier rate before the fabric arrives
	OpenLoopHz     float64 // steady state once the bitstream takes over
	NativeReadySec float64 // virtual time of the sw -> native swap
	FabricReadySec float64 // virtual time the fabric flow completes
	NativeSpeedup  float64 // NativeHz / InterpHz
	Stats          runtime.Stats
}

// tierOf returns the user engine's execution rung from a runtime
// snapshot ("" before the first engine is scheduled).
func tierOf(st runtime.Stats) string {
	for _, e := range st.Engines {
		if e.Tier != "" {
			return e.Tier
		}
	}
	return ""
}

// RunTier regenerates the native-tier trajectory experiment: Figure 11's
// ladder with the middle rung switched on (WithNativeTier).
func RunTier() (*Tier, error) {
	prog := powProgram()
	out := &Tier{}
	cas := runtime.New(runtime.Options{
		OpenLoopTargetPs: 200 * vclock.Us,
		Features:         runtime.Features{NativeTier: true},
	})
	if err := cas.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	if err := cas.Eval(prog); err != nil {
		return nil, err
	}
	out.StartupSec = float64(cas.StartupPs()) / float64(vclock.S)
	if got := tierOf(cas.Stats()); got != "interpreter" {
		return nil, fmt.Errorf("tier: program should start on the interpreter, got %q", got)
	}
	out.InterpHz = measureRate(cas, 400)

	// Step until the native compile lands (virtual milliseconds away).
	promoted := false
	for i := 0; i < 10_000; i++ {
		if tierOf(cas.Stats()) == "native" {
			promoted = true
			break
		}
		cas.RunTicks(25)
	}
	if !promoted {
		return nil, fmt.Errorf("tier: native promotion never happened (phase %v)", cas.Phase())
	}
	out.NativeReadySec = float64(cas.VirtualNow()) / float64(vclock.S)
	out.NativeHz = measureRate(cas, 4000)
	out.NativeSpeedup = out.NativeHz / out.InterpHz

	// The fabric flow is still in flight; fast-forward to it.
	readyAt, pending := cas.CompileReadyAt()
	if !pending {
		return nil, fmt.Errorf("tier: no fabric compilation in flight")
	}
	out.FabricReadySec = float64(readyAt) / float64(vclock.S)
	if cas.VirtualNow() < readyAt {
		cas.Idle(readyAt - cas.VirtualNow() + 1)
	}
	if !cas.WaitForPhase(runtime.PhaseOpenLoop, 50_000) {
		return nil, fmt.Errorf("tier: cascade never reached open loop (phase %v)", cas.Phase())
	}
	cas.Step()
	out.OpenLoopHz = measureRate(cas, 40_000)
	out.Stats = cas.Stats()

	horizon := 900.0
	out.Series = []Series{
		{Name: "Cascade+native-tier", Points: []Point{
			{out.StartupSec, out.InterpHz},
			{out.NativeReadySec, out.InterpHz},
			{out.NativeReadySec + 0.01, out.NativeHz},
			{out.FabricReadySec, out.NativeHz},
			{out.FabricReadySec + 1, out.OpenLoopHz},
			{horizon, out.OpenLoopHz},
		}},
	}
	return out, nil
}

// elabMain builds the inlined root module of a program and elaborates it
// (the design the toolchain baselines compile).
func elabMain(src string) (*elab.Flat, error) {
	p := ir.NewProgram()
	mods, items, errs := verilog.ParseProgramFragment(runtime.DefaultPrelude + "\n" + src)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	for _, m := range mods {
		if err := p.DeclareModule(m); err != nil {
			return nil, err
		}
	}
	p.AddRootItems(items...)
	d, err := ir.Build(p, stdlib.Registry())
	if err != nil {
		return nil, err
	}
	inl, err := ir.Inline(d)
	if err != nil {
		return nil, err
	}
	return elab.Elaborate(inl.Sub(ir.RootPath).Module, ir.RootPath, nil)
}

// Fig12 holds the regex streaming benchmark results.
type Fig12 struct {
	Series []Series

	Pattern           string
	DFAStates         int
	CascadeSimIOs     float64
	CascadeOpenIOs    float64
	QuartusIOs        float64
	QuartusCompileSec float64
	SpatialOverhead   float64 // paper: 6.5x
}

// Fig12Pattern is the Snort-style pattern used by the benchmark.
const Fig12Pattern = `GET /[a-z]*\.html`

// RunFig12 regenerates Figure 12: IO operations (bytes consumed) per
// second against time, Cascade versus the native flow.
func RunFig12() (*Fig12, error) {
	prog, dfa, err := regexgen.GenerateStreaming(Fig12Pattern)
	if err != nil {
		return nil, err
	}
	out := &Fig12{Pattern: Fig12Pattern, DFAStates: dfa.States()}

	feed := func(r *runtime.Runtime) *stdlib.Stream {
		s := r.World().Stream("main.fifo")
		return s
	}
	// measureIOs runs n ticks keeping the FIFO fed and returns IO/s.
	measureIOs := func(r *runtime.Runtime, n uint64) float64 {
		stream := feed(r)
		t0 := r.VirtualNow()
		c0 := stream.Consumed
		remaining := n
		for remaining > 0 {
			if stream.PendingIn() < 4096 {
				stream.PushBytes(make([]byte, 65536))
			}
			chunk := remaining
			if chunk > 2000 {
				chunk = 2000
			}
			r.RunTicks(chunk)
			remaining -= chunk
		}
		dt := float64(r.VirtualNow()-t0) / float64(vclock.S)
		if dt <= 0 {
			return 0
		}
		return float64(stream.Consumed-c0) / dt
	}

	cas := runtime.New(runtime.Options{OpenLoopTargetPs: 200 * vclock.Us})
	if err := cas.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	if err := cas.Eval(prog); err != nil {
		return nil, err
	}
	feed(cas).PushBytes(make([]byte, 65536))
	out.CascadeSimIOs = measureIOs(cas, 300)
	readyAt, pending := cas.CompileReadyAt()
	if !pending {
		return nil, fmt.Errorf("fig12: no background compilation in flight")
	}
	if cas.VirtualNow() < readyAt {
		cas.Idle(readyAt - cas.VirtualNow() + 1)
	}
	if !cas.WaitForPhase(runtime.PhaseOpenLoop, 50_000) {
		return nil, fmt.Errorf("fig12: cascade never reached open loop (phase %v)", cas.Phase())
	}
	cas.Step()
	out.CascadeOpenIOs = measureIOs(cas, 30_000)

	// Quartus baseline: native compile of the same program; at runtime
	// the benchmark is bus-bound (one byte per transaction), so the
	// native IO rate is the bridge rate.
	flat, err := elabMain(prog)
	if err != nil {
		return nil, err
	}
	dev := fpga.NewCycloneV()
	tc := toolchain.New(dev, toolchain.DefaultOptions())
	nres := tc.CompileSync(flat, false)
	if nres.Err != nil {
		return nil, fmt.Errorf("fig12: native compile: %w", nres.Err)
	}
	out.QuartusCompileSec = float64(nres.DurationPs) / float64(vclock.S)
	model := vclock.DefaultModel()
	out.QuartusIOs = float64(vclock.S) / float64(model.MsgPs)

	wres := tc.CompileSync(flat, true)
	if wres.Err != nil {
		return nil, fmt.Errorf("fig12: wrapped compile: %w", wres.Err)
	}
	out.SpatialOverhead = float64(wres.AreaLEs) / float64(nres.RawAreaLEs)

	horizon := 900.0
	compiledAt := float64(readyAt) / float64(vclock.S)
	out.Series = []Series{
		{Name: "Quartus", Points: []Point{
			{out.QuartusCompileSec, out.QuartusIOs}, {horizon, out.QuartusIOs},
		}},
		{Name: "Cascade", Points: []Point{
			{0.5, out.CascadeSimIOs},
			{compiledAt, out.CascadeSimIOs},
			{compiledAt + 1, out.CascadeOpenIOs},
			{horizon, out.CascadeOpenIOs},
		}},
	}
	return out, nil
}

// Fig13 holds the user-study results.
type Fig13 struct {
	Rows    []string
	Summary userstudy.Summary
	// Compile latencies measured on the real starter program.
	QuartusCompileSec float64
	CascadeStartupSec float64
}

// RunFig13 regenerates Figure 13, deriving the two environments' compile
// latencies from the real pipeline on the real starter program.
func RunFig13() (*Fig13, error) {
	// The starter program is the 50-line running example.
	flat, err := elabMain(strippedTasks(ledswitch.Figure3))
	if err != nil {
		return nil, err
	}
	dev := fpga.NewCycloneV()
	tc := toolchain.New(dev, toolchain.DefaultOptions())
	nres := tc.CompileSync(flat, false)
	if nres.Err != nil {
		return nil, err
	}
	quartusSec := float64(nres.DurationPs) / float64(vclock.S)

	// Cascade's per-build latency is its startup time.
	cas := runtime.New(runtime.Options{})
	if err := cas.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	if err := cas.Eval(ledswitch.Figure3); err != nil {
		return nil, err
	}
	cascadeSec := float64(cas.StartupPs()) / float64(vclock.S)
	if cascadeSec < 0.9 {
		cascadeSec = 0.9 // perceived floor: the sub-second REPL turnaround
	}

	cfg := userstudy.DefaultConfig()
	cfg.QuartusCompileMin = quartusSec / 60
	cfg.CascadeCompileMin = cascadeSec / 60
	results := userstudy.Run(cfg)
	return &Fig13{
		Rows:              userstudy.Rows(results),
		Summary:           userstudy.Summarize(results),
		QuartusCompileSec: quartusSec,
		CascadeStartupSec: cascadeSec,
	}, nil
}

// strippedTasks removes nothing today (the Figure 3 starter has no
// tasks); kept for clarity at the call site.
func strippedTasks(src string) string { return src }

// Table1 regenerates the class-study statistics.
func Table1() (metrics.Aggregate, error) {
	subs := userstudy.GenerateClass(userstudy.DefaultClassConfig())
	var reports []metrics.Report
	for _, s := range subs {
		rep, err := metrics.Analyze(s.Source)
		if err != nil {
			return metrics.Aggregate{}, fmt.Errorf("student %d: %w", s.ID, err)
		}
		rep.Builds = s.Builds
		reports = append(reports, rep)
	}
	return metrics.Summarize(reports), nil
}

// FormatSeries renders series as aligned text rows.
func FormatSeries(series []Series, yLabel string) string {
	var sb strings.Builder
	for _, s := range series {
		fmt.Fprintf(&sb, "# %s (%s)\n", s.Name, yLabel)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%10.1f  %14.1f\n", p.TSec, p.Y)
		}
	}
	return sb.String()
}
