package bench

import (
	"testing"
)

// These tests assert the *shape* claims of the paper's evaluation: who
// wins, by roughly what factor, and where the crossovers fall. Absolute
// numbers live in EXPERIMENTS.md.

func TestFig11Shape(t *testing.T) {
	f, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig11: startup=%.2fs iverilog=%.0fHz sim=%.0fHz ol=%.2fMHz native=%.0fMHz "+
		"quartus=%.0fs cascadeCompile=%.0fs simSpeedup=%.2fx olGap=%.2fx spatial=%.2fx",
		f.StartupSec, f.IVerilogHz, f.CascadeSimHz, f.CascadeOpenLoopHz/1e6, f.NativeHz/1e6,
		f.QuartusCompileSec, f.CascadeCompileSec, f.SimSpeedup, f.OpenLoopGap, f.SpatialOverhead)

	// Cascade begins execution in under a second (paper: <1s).
	if f.StartupSec >= 1.0 {
		t.Errorf("startup %.2fs, want <1s", f.StartupSec)
	}
	// iVerilog runs immediately but in the sub-kHz band (paper: 650 Hz).
	if f.IVerilogHz < 100 || f.IVerilogHz > 20_000 {
		t.Errorf("iVerilog rate %.0f Hz out of band", f.IVerilogHz)
	}
	// Cascade simulates faster than iVerilog (paper: 2.4x).
	if f.SimSpeedup < 1.2 || f.SimSpeedup > 8 {
		t.Errorf("sim speedup %.2fx, want ~2.4x", f.SimSpeedup)
	}
	// Quartus needs minutes of compilation (paper: ~10 min).
	if f.QuartusCompileSec < 120 || f.QuartusCompileSec > 1800 {
		t.Errorf("quartus compile %.0fs, want minutes", f.QuartusCompileSec)
	}
	// Open loop lands within ~3x of native (paper: 2.9x).
	if f.OpenLoopGap < 1.5 || f.OpenLoopGap > 4.5 {
		t.Errorf("open-loop gap %.2fx, want ~2.9x", f.OpenLoopGap)
	}
	// Spatial overhead is small-constant (paper: 2.9x).
	if f.SpatialOverhead < 1.5 || f.SpatialOverhead > 5 {
		t.Errorf("spatial overhead %.2fx, want ~2.9x", f.SpatialOverhead)
	}
	// The crossover ordering: Cascade compiles in the background and
	// transitions no later than twice the native flow (the wrapped
	// design is bigger, so somewhat later is expected).
	if f.CascadeCompileSec < f.QuartusCompileSec*0.5 || f.CascadeCompileSec > f.QuartusCompileSec*4 {
		t.Errorf("cascade compile %.0fs vs quartus %.0fs: implausible ratio", f.CascadeCompileSec, f.QuartusCompileSec)
	}
}

func TestTierShape(t *testing.T) {
	f, err := RunTier()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tier: interp=%.0fHz native=%.0fHz (%.1fx) ol=%.2fMHz nativeReady=%.2fs fabricReady=%.0fs",
		f.InterpHz, f.NativeHz, f.NativeSpeedup, f.OpenLoopHz/1e6, f.NativeReadySec, f.FabricReadySec)

	// The native compile lands within virtual seconds, the fabric flow
	// minutes later: three orders of magnitude between the rungs.
	if f.NativeReadySec > 5 {
		t.Errorf("native ready at %.2fs, want within seconds", f.NativeReadySec)
	}
	if f.FabricReadySec < f.NativeReadySec*50 {
		t.Errorf("fabric ready %.0fs vs native %.2fs: rungs not separated", f.FabricReadySec, f.NativeReadySec)
	}
	// The issue's acceptance bar: native at least 2x the interpreter.
	if f.NativeSpeedup < 2 {
		t.Errorf("native speedup %.1fx, want >=2x", f.NativeSpeedup)
	}
	// The ladder is monotone: each rung is faster than the last.
	if f.OpenLoopHz <= f.NativeHz {
		t.Errorf("open loop %.0fHz not above native %.0fHz", f.OpenLoopHz, f.NativeHz)
	}
}

func TestFig12Shape(t *testing.T) {
	f, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig12: states=%d sim=%.0f IO/s ol=%.0f KIO/s quartus=%.0f KIO/s compile=%.0fs spatial=%.2fx",
		f.DFAStates, f.CascadeSimIOs, f.CascadeOpenIOs/1e3, f.QuartusIOs/1e3, f.QuartusCompileSec, f.SpatialOverhead)

	// Simulation-phase IO in the tens-of-KIO/s band (paper: 32 KIO/s).
	if f.CascadeSimIOs < 200 || f.CascadeSimIOs > 100_000 {
		t.Errorf("sim IO rate %.0f out of band", f.CascadeSimIOs)
	}
	// After migration, Cascade approaches but does not exceed the
	// native rate (paper: 492 vs 560 KIO/s).
	if f.CascadeOpenIOs > f.QuartusIOs {
		t.Errorf("cascade %.0f IO/s exceeds native %.0f", f.CascadeOpenIOs, f.QuartusIOs)
	}
	if f.CascadeOpenIOs < f.QuartusIOs/2 {
		t.Errorf("cascade %.0f IO/s should be close to native %.0f", f.CascadeOpenIOs, f.QuartusIOs)
	}
	// Both far exceed the simulation phase.
	if f.CascadeOpenIOs < f.CascadeSimIOs*4 {
		t.Errorf("migration should multiply IO throughput: %.0f -> %.0f", f.CascadeSimIOs, f.CascadeOpenIOs)
	}
	// The regex design is small; spatial overhead exceeds the PoW one
	// (paper: 6.5x vs 2.9x) because the wrapper amortizes worse.
	if f.SpatialOverhead < 2 || f.SpatialOverhead > 12 {
		t.Errorf("spatial overhead %.2fx out of band (paper: 6.5x)", f.SpatialOverhead)
	}
}

func TestFig13Shape(t *testing.T) {
	f, err := RunFig13()
	if err != nil {
		t.Fatal(err)
	}
	s := f.Summary
	t.Logf("fig13: quartusCompile=%.0fs cascadeStartup=%.2fs builds +%.0f%% faster %.0f%% compileRatio %.0fx",
		f.QuartusCompileSec, f.CascadeStartupSec, s.MoreBuildsPct(), s.FasterCompletionPct(), s.CompileTimeRatio())
	if s.MoreBuildsPct() < 15 {
		t.Errorf("cascade should drive more builds: %+.0f%%", s.MoreBuildsPct())
	}
	if s.FasterCompletionPct() < 5 {
		t.Errorf("cascade should complete faster: %+.0f%%", s.FasterCompletionPct())
	}
	if s.CompileTimeRatio() < 25 {
		t.Errorf("compile-time ratio %.0fx, want order of paper's 67x", s.CompileTimeRatio())
	}
	if len(f.Rows) != 21 {
		t.Errorf("rows=%d", len(f.Rows))
	}
}

func TestTable1Shape(t *testing.T) {
	agg, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range agg.Rows() {
		t.Log(row)
	}
	if agg.N != 31 || agg.WithLogs != 23 {
		t.Errorf("corpus shape: n=%d logs=%d", agg.N, agg.WithLogs)
	}
	if agg.Blocking.Mean < 3*agg.Nonblock.Mean {
		t.Errorf("blocking should dominate nonblocking (paper: 8x)")
	}
}

func TestFarmShape(t *testing.T) {
	f, err := RunFarm()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f.Rows {
		t.Logf("workers=%d %.1f jobs/s stolen=%d", row.Workers, row.JobsPerSec, row.Stolen)
	}
	t.Logf("scaling=%.2fx miss=%dps coldhit=%dps", f.Scaling, f.MissPs, f.ColdHitPs)
	if len(f.Rows) != 3 {
		t.Fatalf("rows=%d", len(f.Rows))
	}
	// Wall-clock throughput must grow with workers. The bound is loose
	// (ideal is 4x) so a loaded CI machine doesn't flake the suite; the
	// printed experiment shows the near-linear figure.
	if f.Scaling < 1.5 {
		t.Errorf("1->4 workers scaled only %.2fx", f.Scaling)
	}
	// Cold start reaches hardware at cache-hit latency: orders of
	// magnitude below the full flow.
	if f.ColdHitPs == 0 || f.MissPs == 0 || f.ColdHitPs*100 > f.MissPs {
		t.Errorf("cold start not at cache-hit latency: hit=%dps full=%dps", f.ColdHitPs, f.MissPs)
	}
}
