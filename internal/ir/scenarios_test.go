package ir

import (
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// buildProgram assembles a program from module sources and root items.
func buildProgram(t *testing.T, modules string, rootItems string) *Program {
	t.Helper()
	p := NewProgram()
	if modules != "" {
		st, errs := verilog.ParseSourceText(modules)
		if errs != nil {
			t.Fatal(errs)
		}
		for _, m := range st.Modules {
			if err := p.DeclareModule(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	items, errs := verilog.ParseItems(rootItems)
	if errs != nil {
		t.Fatal(errs)
	}
	p.AddRootItems(items...)
	return p
}

// runMerged inlines a design and simulates the merged module.
func runMerged(t *testing.T, d *Design) *sim.Simulator {
	t.Helper()
	inl, err := Inline(d)
	if err != nil {
		t.Fatal(err)
	}
	f, err := elab.Elaborate(inl.Sub(RootPath).Module, RootPath, nil)
	if err != nil {
		t.Fatalf("elaborate merged: %v\n%s", err, verilog.Print(inl.Sub(RootPath).Module))
	}
	return sim.New(f, sim.Options{})
}

func settle(s *sim.Simulator) {
	for s.HasActive() || s.HasUpdates() {
		s.Evaluate()
		if s.HasUpdates() {
			s.Update()
		}
	}
}

func tickMerged(s *sim.Simulator) {
	s.SetInputByName("clk__val", bits.FromUint64(1, 1))
	settle(s)
	s.SetInputByName("clk__val", bits.FromUint64(1, 0))
	settle(s)
}

func TestProceduralHierWrite(t *testing.T) {
	// Writing a stdlib input from an always block: the promoted port
	// must become an output reg.
	p := buildProgram(t, "", `
Clock clk();
Led#(8) led();
reg [7:0] n = 0;
always @(posedge clk.val) begin
  n <= n + 1;
  led.val <= n;
end`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	main := d.Sub("main").Module
	var ledPort *verilog.Port
	for _, pt := range main.Ports {
		if pt.Name == "led__val" {
			ledPort = pt
		}
	}
	if ledPort == nil || ledPort.Kind != verilog.Reg || ledPort.Dir != verilog.Output {
		t.Fatalf("procedural hier write should promote an output reg: %+v", ledPort)
	}
	s := runMerged(t, d)
	settle(s)
	for i := 0; i < 4; i++ {
		tickMerged(s)
	}
	if got := s.Value("led__val").Uint64(); got != 3 {
		t.Fatalf("led__val=%d, want 3 (lags n by one)", got)
	}
}

func TestMultipleInstancesOfSameModule(t *testing.T) {
	p := buildProgram(t, `
module Inc(input wire [7:0] x, output wire [7:0] y);
  assign y = x + 1;
endmodule`, `
wire [7:0] s0, s1, s2;
assign s0 = 8'd5;
Inc i0(.x(s0), .y(s1));
Inc i1(.x(s1), .y(s2));`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if d.Sub("main.i0") == nil || d.Sub("main.i1") == nil {
		t.Fatal("both instances should become subprograms")
	}
	s := runMerged(t, d)
	settle(s)
	if got := s.Value("s2").Uint64(); got != 7 {
		t.Fatalf("chained instances: s2=%d, want 7", got)
	}
}

func TestUnconnectedPortsReadZero(t *testing.T) {
	p := buildProgram(t, `
module Pass(input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);
  assign o = a + b;
endmodule`, `
wire [7:0] r;
Pass ps(.a(8'd9), .b(), .o(r));`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s := runMerged(t, d)
	settle(s)
	if got := s.Value("r").Uint64(); got != 9 {
		t.Fatalf("unconnected input should read zero: r=%d", got)
	}
}

func TestStdlibInstanceInsideUserModule(t *testing.T) {
	// A user module may itself instantiate a stdlib component; the
	// component becomes a peer at a nested path.
	p := buildProgram(t, `
module Blinker(input wire c, output wire [7:0] light);
  Led#(8) inner();
  reg [7:0] n = 0;
  always @(posedge c) n <= n + 1;
  assign inner.val = n;
  assign light = n;
endmodule`, `
Clock clk();
wire [7:0] l;
Blinker b(.c(clk.val), .light(l));`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if d.Sub("main.b.inner") == nil || !d.Sub("main.b.inner").IsStd {
		t.Fatalf("nested stdlib instance missing: %+v", d.Subs)
	}
	// After inline, the wire to the nested stdlib component must come
	// from the merged module with a prefixed port.
	inl, err := Inline(d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range inl.Wires {
		if w.To.Sub == "main.b.inner" && w.From.Sub == RootPath && w.From.Port == "b__inner__val" {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested stdlib wire not re-pointed: %+v", inl.Wires)
	}
}

func TestHierReadOfInternalRegister(t *testing.T) {
	// Reading a child's internal (non-port) register promotes it to an
	// output, preserving its initializer.
	p := buildProgram(t, `
module Holder(input wire c);
  reg [7:0] secret = 8'h2a;
  always @(posedge c) secret <= secret + 0;
endmodule`, `
Clock clk();
Holder h(.c(clk.val));
wire [7:0] spy;
assign spy = h.secret;`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	hmod := d.Sub("main.h").Module
	var port *verilog.Port
	for _, pt := range hmod.Ports {
		if pt.Name == "secret" {
			port = pt
		}
	}
	if port == nil || port.Dir != verilog.Output || port.Init == nil {
		t.Fatalf("internal reg not promoted with init: %+v", port)
	}
	s := runMerged(t, d)
	settle(s)
	if got := s.Value("spy").Uint64(); got != 0x2a {
		t.Fatalf("spy=%#x, want 0x2a", got)
	}
}

func TestParamExprsInInstancePropagate(t *testing.T) {
	p := buildProgram(t, `
module W#(parameter N = 2)(output wire [N-1:0] o);
  assign o = {N{1'b1}};
endmodule`, `
localparam K = 3;
wire [5:0] o;
W#(K * 2) w(.o(o));`)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Sub("main.w").Params["N"].Uint64(); got != 6 {
		t.Fatalf("param expr: N=%d, want 6", got)
	}
	s := runMerged(t, d)
	settle(s)
	if got := s.Value("o").Uint64(); got != 0b111111 {
		t.Fatalf("o=%06b", got)
	}
}
