package ir

import (
	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// exprRewriter maps expressions bottom-up; the hook runs on leaf
// identifier forms (Ident, HierIdent) and may return a replacement.
type exprRewriter func(e verilog.Expr) verilog.Expr

func rewriteExpr(e verilog.Expr, f exprRewriter) verilog.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *verilog.Ident, *verilog.HierIdent:
		return f(e)
	case *verilog.Number, *verilog.StringLit:
		return e
	case *verilog.Unary:
		return &verilog.Unary{OpPos: x.OpPos, Op: x.Op, X: rewriteExpr(x.X, f)}
	case *verilog.Binary:
		return &verilog.Binary{OpPos: x.OpPos, Op: x.Op, X: rewriteExpr(x.X, f), Y: rewriteExpr(x.Y, f)}
	case *verilog.Ternary:
		return &verilog.Ternary{QPos: x.QPos, Cond: rewriteExpr(x.Cond, f), Then: rewriteExpr(x.Then, f), Else: rewriteExpr(x.Else, f)}
	case *verilog.Index:
		return &verilog.Index{LPos: x.LPos, X: rewriteExpr(x.X, f), Idx: rewriteExpr(x.Idx, f)}
	case *verilog.RangeSel:
		return &verilog.RangeSel{LPos: x.LPos, X: rewriteExpr(x.X, f), Hi: rewriteExpr(x.Hi, f), Lo: rewriteExpr(x.Lo, f)}
	case *verilog.Concat:
		parts := make([]verilog.Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = rewriteExpr(p, f)
		}
		return &verilog.Concat{LPos: x.LPos, Parts: parts}
	case *verilog.Repl:
		return &verilog.Repl{LPos: x.LPos, Count: rewriteExpr(x.Count, f), X: rewriteExpr(x.X, f)}
	case *verilog.SysCall:
		args := make([]verilog.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteExpr(a, f)
		}
		return &verilog.SysCall{CallPos: x.CallPos, Name: x.Name, Args: args}
	}
	return e
}

func rewriteRange(r *verilog.Range, f exprRewriter) *verilog.Range {
	if r == nil {
		return nil
	}
	return &verilog.Range{Hi: rewriteExpr(r.Hi, f), Lo: rewriteExpr(r.Lo, f)}
}

func rewriteStmt(s verilog.Stmt, f exprRewriter) verilog.Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *verilog.Block:
		out := &verilog.Block{BeginPos: x.BeginPos}
		for _, st := range x.Stmts {
			out.Stmts = append(out.Stmts, rewriteStmt(st, f))
		}
		return out
	case *verilog.If:
		return &verilog.If{IfPos: x.IfPos, Cond: rewriteExpr(x.Cond, f),
			Then: rewriteStmt(x.Then, f), Else: rewriteStmt(x.Else, f)}
	case *verilog.Case:
		out := &verilog.Case{CasePos: x.CasePos, IsCasez: x.IsCasez, Subject: rewriteExpr(x.Subject, f)}
		for _, it := range x.Items {
			ni := &verilog.CaseItem{ItemPos: it.ItemPos, Body: rewriteStmt(it.Body, f)}
			for _, e := range it.Exprs {
				ni.Exprs = append(ni.Exprs, rewriteExpr(e, f))
			}
			out.Items = append(out.Items, ni)
		}
		return out
	case *verilog.ProcAssign:
		return &verilog.ProcAssign{AssignPos: x.AssignPos, Blocking: x.Blocking,
			LHS: rewriteExpr(x.LHS, f), RHS: rewriteExpr(x.RHS, f)}
	case *verilog.For:
		return &verilog.For{ForPos: x.ForPos,
			Init: rewriteStmt(x.Init, f).(*verilog.ProcAssign),
			Cond: rewriteExpr(x.Cond, f),
			Post: rewriteStmt(x.Post, f).(*verilog.ProcAssign),
			Body: rewriteStmt(x.Body, f)}
	case *verilog.SysTask:
		out := &verilog.SysTask{TaskPos: x.TaskPos, Name: x.Name}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteExpr(a, f))
		}
		return out
	case *verilog.NullStmt:
		return x
	}
	return s
}

func rewriteItem(it verilog.Item, f exprRewriter) verilog.Item {
	switch x := it.(type) {
	case *verilog.NetDecl:
		out := &verilog.NetDecl{DeclPos: x.DeclPos, Kind: x.Kind, Range: rewriteRange(x.Range, f)}
		for _, dn := range x.Names {
			out.Names = append(out.Names, &verilog.DeclName{
				NamePos: dn.NamePos, Name: renameIdent(dn.Name, f),
				Array: rewriteRange(dn.Array, f), Init: rewriteExpr(dn.Init, f),
			})
		}
		return out
	case *verilog.ParamDecl:
		return &verilog.ParamDecl{DeclPos: x.DeclPos, Local: x.Local,
			Range: rewriteRange(x.Range, f), Name: x.Name, Value: rewriteExpr(x.Value, f)}
	case *verilog.ContAssign:
		return &verilog.ContAssign{AssignPos: x.AssignPos,
			LHS: rewriteExpr(x.LHS, f), RHS: rewriteExpr(x.RHS, f)}
	case *verilog.AlwaysBlock:
		out := &verilog.AlwaysBlock{AlwaysPos: x.AlwaysPos, Star: x.Star, Body: rewriteStmt(x.Body, f)}
		for _, ev := range x.Events {
			out.Events = append(out.Events, verilog.Event{Edge: ev.Edge, Expr: rewriteExpr(ev.Expr, f)})
		}
		return out
	case *verilog.InitialBlock:
		return &verilog.InitialBlock{InitialPos: x.InitialPos, Body: rewriteStmt(x.Body, f)}
	case *verilog.Instance:
		out := &verilog.Instance{InstPos: x.InstPos, ModName: x.ModName, Name: x.Name}
		for _, pa := range x.Params {
			out.Params = append(out.Params, &verilog.ParamAssign{Name: pa.Name, Expr: rewriteExpr(pa.Expr, f)})
		}
		for _, c := range x.Conns {
			out.Conns = append(out.Conns, &verilog.PortConn{ConnPos: c.ConnPos, Name: c.Name, Expr: rewriteExpr(c.Expr, f)})
		}
		return out
	}
	return it
}

// renameIdent applies the rewriter to a bare declared name by round-
// tripping it through an Ident node.
func renameIdent(name string, f exprRewriter) string {
	if out, ok := f(&verilog.Ident{Name: name}).(*verilog.Ident); ok {
		return out.Name
	}
	return name
}

// substParams returns a rewriter that replaces parameter identifiers with
// literal values; other identifiers pass through a second rewriter.
func substParams(env map[string]*bits.Vector, then exprRewriter) exprRewriter {
	return func(e verilog.Expr) verilog.Expr {
		if id, ok := e.(*verilog.Ident); ok {
			if v, bound := env[id.Name]; bound {
				return numberOf(v)
			}
		}
		if then != nil {
			return then(e)
		}
		return e
	}
}

// numberOf renders a bit vector as a sized literal AST node.
func numberOf(v *bits.Vector) *verilog.Number {
	return &verilog.Number{Literal: v.String(), Val: v, Sized: true}
}
