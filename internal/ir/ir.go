// Package ir implements Cascade-Go's distributed-system intermediate
// representation (paper §3.3). A user program — module declarations plus
// statements eval'd into an implicit root module — is split at module
// granularity into stand-alone subprograms with a constrained protocol:
// variables accessed across module boundaries are promoted to ports
// (Figure 4), nested instantiations are replaced by assignments, and the
// resulting flat system of peers communicates over the runtime's
// data/control plane according to the Wires table.
//
// The package also implements the §4.2 user-logic inlining optimization:
// all user subprograms merge into a single module, leaving only
// standard-library components as separate peers.
package ir

import (
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// RootPath is the instance path of the implicit root module.
const RootPath = "main"

// Program is the user's source program as accumulated by the REPL:
// module declarations in the outer scope plus items appended to the end
// of the implicit root module (paper §3.1).
type Program struct {
	Modules   map[string]*verilog.Module
	order     []string
	RootItems []verilog.Item
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Modules: map[string]*verilog.Module{}}
}

// DeclareModule adds a module declaration to the outer scope. Redefining
// a module is an error: Cascade's REPL is append-only (paper §7.2 — edits
// to eval'd code would violate the monotonicity invariant).
func (p *Program) DeclareModule(m *verilog.Module) error {
	if _, dup := p.Modules[m.Name]; dup {
		return fmt.Errorf("module %s is already declared (Cascade programs are append-only)", m.Name)
	}
	p.Modules[m.Name] = m
	p.order = append(p.order, m.Name)
	return nil
}

// AddRootItems appends items to the implicit root module.
func (p *Program) AddRootItems(items ...verilog.Item) {
	p.RootItems = append(p.RootItems, items...)
}

// Clone returns a shallow copy sharing AST nodes (the AST is never
// mutated after parse, so sharing is safe). Used for trial builds: the
// REPL integrates an eval only if the extended program still builds.
func (p *Program) Clone() *Program {
	c := NewProgram()
	for _, name := range p.order {
		c.Modules[name] = p.Modules[name]
		c.order = append(c.order, name)
	}
	c.RootItems = append([]verilog.Item{}, p.RootItems...)
	return c
}

// ModuleNames returns declared module names in declaration order.
func (p *Program) ModuleNames() []string {
	return append([]string{}, p.order...)
}

// StdParam is a declared parameter of a standard-library module.
type StdParam struct {
	Name    string
	Default *bits.Vector
}

// StdPort is a port of a standard-library module; Width receives the
// resolved parameter values.
type StdPort struct {
	Name  string
	Dir   verilog.PortDir
	Width func(params map[string]*bits.Vector) int
}

// StdSpec describes one standard-library module to the IR.
type StdSpec struct {
	Name   string
	Params []StdParam
	Ports  []StdPort
}

// Port returns the named port spec, or nil.
func (s *StdSpec) Port(name string) *StdPort {
	for i := range s.Ports {
		if s.Ports[i].Name == name {
			return &s.Ports[i]
		}
	}
	return nil
}

// Registry maps standard-library module names to their specs.
type Registry map[string]*StdSpec

// SubProgram is one node of the distributed system.
type SubProgram struct {
	Path    string // instance path, e.g. "main" or "main.r"
	IsStd   bool
	StdType string                  // stdlib module name when IsStd
	Params  map[string]*bits.Vector // header parameter values (elab overrides)
	Module  *verilog.Module         // promoted, self-contained source (user subprograms)

	env map[string]*bits.Vector // full constant environment (incl. localparams)
}

// Endpoint identifies one side of a wire: a subprogram port.
type Endpoint struct {
	Sub  string
	Port string
}

// Wire is a data-plane connection from a producer port to a consumer
// port.
type Wire struct {
	From Endpoint
	To   Endpoint
}

// Design is the built distributed system.
type Design struct {
	Subs  []*SubProgram
	Wires []Wire
}

// Sub returns the subprogram at path, or nil.
func (d *Design) Sub(path string) *SubProgram {
	for _, s := range d.Subs {
		if s.Path == path {
			return s
		}
	}
	return nil
}

// UserSubs returns the non-stdlib subprograms.
func (d *Design) UserSubs() []*SubProgram {
	var out []*SubProgram
	for _, s := range d.Subs {
		if !s.IsStd {
			out = append(out, s)
		}
	}
	return out
}

// StdSubs returns the stdlib subprograms.
func (d *Design) StdSubs() []*SubProgram {
	var out []*SubProgram
	for _, s := range d.Subs {
		if s.IsStd {
			out = append(out, s)
		}
	}
	return out
}

// Error is an IR-construction error.
type Error struct {
	Pos verilog.Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.Line == 0 {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos verilog.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
