package ir

import (
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// testRegistry mimics the stdlib shapes used by the paper's Figure 3.
func testRegistry() Registry {
	fixed := func(w int) func(map[string]*bits.Vector) int {
		return func(map[string]*bits.Vector) int { return w }
	}
	paramN := func(p map[string]*bits.Vector) int { return int(p["N"].Uint64()) }
	return Registry{
		"Clock": {Name: "Clock", Ports: []StdPort{{Name: "val", Dir: verilog.Output, Width: fixed(1)}}},
		"Pad": {Name: "Pad",
			Params: []StdParam{{Name: "N", Default: bits.FromUint64(32, 4)}},
			Ports:  []StdPort{{Name: "val", Dir: verilog.Output, Width: paramN}}},
		"Led": {Name: "Led",
			Params: []StdParam{{Name: "N", Default: bits.FromUint64(32, 8)}},
			Ports:  []StdPort{{Name: "val", Dir: verilog.Input, Width: paramN}}},
	}
}

// figure3Program builds the paper's Figure 3 program: the Rol declaration
// plus root-module items using implicit stdlib instances.
func figure3Program(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	st, errs := verilog.ParseSourceText(`
module Rol(input wire [7:0] x, output wire [7:0] y);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	if err := p.DeclareModule(st.Modules[0]); err != nil {
		t.Fatal(err)
	}
	items, errs := verilog.ParseItems(`
Clock clk();
Pad#(4) pad();
Led#(8) led();
reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val)
  if (pad.val == 0)
    cnt <= r.y;
assign led.val = cnt;`)
	if errs != nil {
		t.Fatal(errs)
	}
	p.AddRootItems(items...)
	return p
}

func TestBuildFigure3(t *testing.T) {
	d, err := Build(figure3Program(t), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]*SubProgram{}
	for _, s := range d.Subs {
		paths[s.Path] = s
	}
	for _, want := range []string{"main", "main.r", "main.clk", "main.pad", "main.led"} {
		if paths[want] == nil {
			t.Fatalf("missing subprogram %s (have %v)", want, d.Subs)
		}
	}
	if !paths["main.clk"].IsStd || paths["main.r"].IsStd {
		t.Fatal("stdlib classification wrong")
	}
	if got := paths["main.pad"].Params["N"].Uint64(); got != 4 {
		t.Fatalf("pad N=%d", got)
	}

	// The promoted root must expose the Figure 4 ports.
	main := paths["main"].Module
	ports := map[string]verilog.PortDir{}
	for _, p := range main.Ports {
		ports[p.Name] = p.Dir
	}
	wantPorts := map[string]verilog.PortDir{
		"r__x":     verilog.Output,
		"r__y":     verilog.Input,
		"clk__val": verilog.Input,
		"pad__val": verilog.Input,
		"led__val": verilog.Output,
	}
	for name, dir := range wantPorts {
		if got, ok := ports[name]; !ok || got != dir {
			t.Fatalf("port %s: got (%v,%v), want %v", name, got, ok, dir)
		}
	}

	// No hierarchical references or instances may survive.
	src := verilog.Print(main)
	if strings.Contains(src, ".val") || strings.Contains(src, "r.y") {
		t.Fatalf("hierarchical references survived:\n%s", src)
	}

	// Wires: r__x feeds main.r x; main.r y feeds r__y; clk val feeds in.
	wireSet := map[string]bool{}
	for _, w := range d.Wires {
		wireSet[w.From.Sub+"."+w.From.Port+"->"+w.To.Sub+"."+w.To.Port] = true
	}
	for _, want := range []string{
		"main.r__x->main.r.x",
		"main.r.y->main.r__y",
		"main.clk.val->main.clk__val",
		"main.pad.val->main.pad__val",
		"main.led__val->main.led.val",
	} {
		if !wireSet[want] {
			t.Fatalf("missing wire %s; have %v", want, wireSet)
		}
	}

	// Every user subprogram must elaborate cleanly.
	for _, s := range d.UserSubs() {
		if _, err := elab.Elaborate(s.Module, s.Path, s.Params); err != nil {
			t.Fatalf("elaborate %s: %v\n%s", s.Path, err, verilog.Print(s.Module))
		}
	}
}

func TestInlineFigure3(t *testing.T) {
	d, err := Build(figure3Program(t), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	inl, err := Inline(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(inl.UserSubs()) != 1 {
		t.Fatalf("inline left %d user subs", len(inl.UserSubs()))
	}
	merged := inl.Sub("main").Module
	f, err := elab.Elaborate(merged, "main", nil)
	if err != nil {
		t.Fatalf("elaborate merged: %v\n%s", err, verilog.Print(merged))
	}

	// Simulate the merged module directly: it should reproduce the LED
	// animation of the running example.
	s := sim.New(f, sim.Options{})
	settle := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	settle()
	if got := s.Value("led__val").Uint64(); got != 1 {
		t.Fatalf("initial led=%d", got)
	}
	for i := 0; i < 3; i++ {
		s.SetInputByName("clk__val", bits.FromUint64(1, 1))
		settle()
		s.SetInputByName("clk__val", bits.FromUint64(1, 0))
		settle()
	}
	if got := s.Value("led__val").Uint64(); got != 8 {
		t.Fatalf("led after 3 ticks = %d, want 8", got)
	}
	// Pressing a pad pauses.
	s.SetInputByName("pad__val", bits.FromUint64(4, 1))
	settle()
	s.SetInputByName("clk__val", bits.FromUint64(1, 1))
	settle()
	if got := s.Value("led__val").Uint64(); got != 8 {
		t.Fatalf("led moved while paused: %d", got)
	}

	// Inlined wires all connect stdlib to main.
	for _, w := range inl.Wires {
		if w.From.Sub != "main" && !strings.Contains(w.From.Sub, "clk") && !strings.Contains(w.From.Sub, "pad") {
			t.Fatalf("unexpected wire source %v", w)
		}
	}
}

func TestBuildParameterPropagation(t *testing.T) {
	p := NewProgram()
	st, errs := verilog.ParseSourceText(`
module Counter#(parameter N = 4)(input wire clk, output wire [N-1:0] out);
  reg [N-1:0] q = 0;
  always @(posedge clk) q <= q + 1;
  assign out = q;
endmodule
module Pair#(parameter W = 2)(input wire clk, output wire [2*W-1:0] both);
  wire [W-1:0] a_out, b_out;
  Counter#(W) a(.clk(clk), .out(a_out));
  Counter#(.N(2*W)) b(.clk(clk));
  assign both = {a_out, b.out[W-1:0]};
endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	for _, m := range st.Modules {
		if err := p.DeclareModule(m); err != nil {
			t.Fatal(err)
		}
	}
	items, errs := verilog.ParseItems(`Clock clk(); Pair#(3) pr(.clk(clk.val));`)
	if errs != nil {
		t.Fatal(errs)
	}
	p.AddRootItems(items...)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	a := d.Sub("main.pr.a")
	if a == nil || a.Params["N"].Uint64() != 3 {
		t.Fatalf("a params wrong: %+v", a)
	}
	bsub := d.Sub("main.pr.b")
	if bsub == nil || bsub.Params["N"].Uint64() != 6 {
		t.Fatalf("b params wrong: %+v", bsub)
	}
	for _, s := range d.UserSubs() {
		if _, err := elab.Elaborate(s.Module, s.Path, s.Params); err != nil {
			t.Fatalf("elaborate %s: %v\n%s", s.Path, err, verilog.Print(s.Module))
		}
	}
	// Inline and elaborate the merged design too.
	inl, err := Inline(d)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := elab.Elaborate(inl.Sub("main").Module, "main", nil)
	if err != nil {
		t.Fatalf("elaborate merged: %v\n%s", err, verilog.Print(inl.Sub("main").Module))
	}
	if v := mf.VarNamed("pr__a__q"); v == nil || v.Width != 3 {
		t.Fatalf("nested inlined var wrong: %+v", v)
	}
	if v := mf.VarNamed("pr__b__q"); v == nil || v.Width != 6 {
		t.Fatalf("nested inlined var wrong: %+v", v)
	}

	// Behaviour: both counters advance on a clock tick.
	s := sim.New(mf, sim.Options{})
	settle := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	settle()
	for i := 0; i < 5; i++ {
		s.SetInputByName("clk__val", bits.FromUint64(1, 1))
		settle()
		s.SetInputByName("clk__val", bits.FromUint64(1, 0))
		settle()
	}
	if got := s.Value("pr__a__q").Uint64(); got != 5 {
		t.Fatalf("a.q=%d, want 5", got)
	}
	if got := s.Value("pr__b__q").Uint64(); got != 5 {
		t.Fatalf("b.q=%d, want 5", got)
	}
	if got := s.Value("pr__both").Uint64(); got != (5<<3 | 5) {
		t.Fatalf("both=%b", got)
	}
}

func TestBuildErrors(t *testing.T) {
	reg := testRegistry()
	cases := map[string]string{
		"unknown module":  `Nope n();`,
		"deep hierarchy":  `Clock clk(); always @(posedge clk.val.x) ;`,
		"read input":      `Led#(8) led(); assign led.val = 1; wire [7:0] w; assign w = led.val;`,
		"unknown stdport": `Clock clk(); wire w; assign w = clk.bogus;`,
		"double instance": `Clock c(); Clock c();`,
		"bad param":       `Pad#(.Q(3)) p();`,
	}
	for name, src := range cases {
		p := NewProgram()
		items, errs := verilog.ParseItems(src)
		if errs != nil {
			t.Fatalf("%s: parse: %v", name, errs)
		}
		p.AddRootItems(items...)
		if _, err := Build(p, reg); err == nil {
			t.Fatalf("%s: expected build error", name)
		}
	}
}

func TestProgramAppendOnly(t *testing.T) {
	p := NewProgram()
	st, _ := verilog.ParseSourceText(`module A(); endmodule`)
	if err := p.DeclareModule(st.Modules[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareModule(st.Modules[0]); err == nil {
		t.Fatal("redefinition should fail (append-only REPL semantics)")
	}
	c := p.Clone()
	items, _ := verilog.ParseItems(`wire x;`)
	c.AddRootItems(items...)
	if len(p.RootItems) != 0 {
		t.Fatal("clone mutated original")
	}
}

func TestBuildPositionalConnections(t *testing.T) {
	p := NewProgram()
	st, errs := verilog.ParseSourceText(`
module Add(input wire [3:0] a, input wire [3:0] b, output wire [3:0] s);
  assign s = a + b;
endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	if err := p.DeclareModule(st.Modules[0]); err != nil {
		t.Fatal(err)
	}
	items, errs := verilog.ParseItems(`
wire [3:0] x, y, sum;
assign x = 3; assign y = 9;
Add add(x, y, sum);`)
	if errs != nil {
		t.Fatal(errs)
	}
	p.AddRootItems(items...)
	d, err := Build(p, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	inl, err := Inline(d)
	if err != nil {
		t.Fatal(err)
	}
	f, err := elab.Elaborate(inl.Sub("main").Module, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(f, sim.Options{})
	for s.HasActive() || s.HasUpdates() {
		s.Evaluate()
		if s.HasUpdates() {
			s.Update()
		}
	}
	if got := s.Value("sum").Uint64(); got != 12 {
		t.Fatalf("positional connection: sum=%d, want 12", got)
	}
}
