package ir

import (
	"fmt"
	"strings"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// Build splits a program into the distributed-system IR: one subprogram
// per module instance, hierarchical references promoted to ports, and a
// wires table describing the data plane. reg supplies the standard
// library's module specs. The implicit root module is assembled from
// p.RootItems and rooted at RootPath.
func Build(p *Program, reg Registry) (*Design, error) {
	b := &builder{prog: p, reg: reg, design: &Design{}}
	root := &verilog.Module{Name: RootPath, Items: p.RootItems}
	if _, err := b.split(root, RootPath, nil, nil); err != nil {
		return nil, err
	}
	return b.design, nil
}

type builder struct {
	prog   *Program
	reg    Registry
	design *Design
}

// childInst is a resolved instantiation inside one module.
type childInst struct {
	inst   *verilog.Instance
	std    *StdSpec                // nil for user modules
	mod    *verilog.Module         // nil for stdlib
	params map[string]*bits.Vector // resolved child parameter values
	header map[string]*bits.Vector // header-only subset (elab overrides)
	// promotion bookkeeping
	extraOutputs map[string]bool // child vars to promote to outputs
}

// split transforms one module instance into a subprogram, recursing into
// children. It returns the index of the created subprogram.
func (b *builder) split(mod *verilog.Module, path string, overrides map[string]*bits.Vector, extraOutputs map[string]bool) (int, error) {
	env, headerEnv, err := b.paramEnv(mod, overrides)
	if err != nil {
		return 0, err
	}

	// Resolve instances.
	children := map[string]*childInst{}
	var childOrder []string
	var bodyItems []verilog.Item
	for _, it := range mod.Items {
		inst, ok := it.(*verilog.Instance)
		if !ok {
			bodyItems = append(bodyItems, it)
			continue
		}
		ci, err := b.resolveInstance(inst, env)
		if err != nil {
			return 0, err
		}
		if _, dup := children[inst.Name]; dup {
			return 0, errf(inst.InstPos, "duplicate instance name %s", inst.Name)
		}
		children[inst.Name] = ci
		childOrder = append(childOrder, inst.Name)
	}

	// Promotion plan: new ports on this module keyed by mangled name.
	type promo struct {
		dir   verilog.PortDir
		kind  verilog.NetKind
		width int
		init  verilog.Expr
	}
	promos := map[string]*promo{}
	var promoOrder []string
	addPromo := func(pos verilog.Pos, name string, pr *promo) error {
		if existing, dup := promos[name]; dup {
			if existing.dir != pr.dir {
				return errf(pos, "%s is driven from both sides of the module boundary", name)
			}
			if pr.kind == verilog.Reg {
				existing.kind = verilog.Reg
			}
			return nil
		}
		promos[name] = pr
		promoOrder = append(promoOrder, name)
		return nil
	}

	var addedAssigns []verilog.Item

	// Connections become promoted ports plus assignments (Figure 4).
	for _, name := range childOrder {
		ci := children[name]
		conns, err := b.namedConns(ci)
		if err != nil {
			return 0, err
		}
		for _, c := range conns {
			if c.Expr == nil {
				continue // explicitly unconnected
			}
			dir, width, kind, err := b.childPortInfo(ci, c.Name, c.ConnPos)
			if err != nil {
				return 0, err
			}
			mangled := name + "__" + c.Name
			switch dir {
			case verilog.Input:
				// Parent drives the child input: output port + assign.
				if err := addPromo(c.ConnPos, mangled, &promo{dir: verilog.Output, kind: verilog.Wire, width: width}); err != nil {
					return 0, err
				}
				addedAssigns = append(addedAssigns, &verilog.ContAssign{
					AssignPos: c.ConnPos,
					LHS:       &verilog.Ident{IdentPos: c.ConnPos, Name: mangled},
					RHS:       c.Expr,
				})
				b.design.Wires = append(b.design.Wires, Wire{
					From: Endpoint{Sub: path, Port: mangled},
					To:   Endpoint{Sub: path + "." + name, Port: c.Name},
				})
			case verilog.Output:
				// Child drives a parent lvalue: input port + assign.
				if !isLValueForm(c.Expr) {
					return 0, errf(c.ConnPos, "connection to output port %s.%s must be an assignable expression", name, c.Name)
				}
				if err := addPromo(c.ConnPos, mangled, &promo{dir: verilog.Input, kind: kind, width: width}); err != nil {
					return 0, err
				}
				addedAssigns = append(addedAssigns, &verilog.ContAssign{
					AssignPos: c.ConnPos,
					LHS:       c.Expr,
					RHS:       &verilog.Ident{IdentPos: c.ConnPos, Name: mangled},
				})
				b.design.Wires = append(b.design.Wires, Wire{
					From: Endpoint{Sub: path + "." + name, Port: c.Name},
					To:   Endpoint{Sub: path, Port: mangled},
				})
			default:
				return 0, errf(c.ConnPos, "inout ports are not supported")
			}
		}
	}

	// Collect hierarchical references over body items plus the assigns
	// added above (connections may themselves use hierarchical names).
	scanItems := append(append([]verilog.Item{}, bodyItems...), addedAssigns...)
	refs, err := collectHierRefs(scanItems)
	if err != nil {
		return 0, err
	}
	for _, ref := range refs {
		ci, ok := children[ref.inst]
		if !ok {
			return 0, errf(ref.pos, "%s.%s: %s is not an instance in this scope", ref.inst, ref.varName, ref.inst)
		}
		mangled := ref.inst + "__" + ref.varName
		if ref.write {
			dir, width, _, err := b.childPortInfo(ci, ref.varName, ref.pos)
			if err != nil {
				return 0, err
			}
			if dir != verilog.Input {
				return 0, errf(ref.pos, "cannot assign to %s.%s: not an input of %s", ref.inst, ref.varName, ref.inst)
			}
			kind := verilog.Wire
			if ref.procedural {
				kind = verilog.Reg
			}
			if err := addPromo(ref.pos, mangled, &promo{dir: verilog.Output, kind: kind, width: width}); err != nil {
				return 0, err
			}
			b.design.Wires = append(b.design.Wires, Wire{
				From: Endpoint{Sub: path, Port: mangled},
				To:   Endpoint{Sub: path + "." + ref.inst, Port: ref.varName},
			})
			continue
		}
		// Read: promote the child variable to an output if necessary.
		// (The child keeps any initializer; the parent-side input port
		// receives the value on the first data-plane broadcast.)
		width, _, err := b.childVarInfo(ci, ref.varName, ref.pos)
		if err != nil {
			return 0, err
		}
		if _, dup := promos[mangled]; !dup {
			if err := addPromo(ref.pos, mangled, &promo{dir: verilog.Input, kind: verilog.Wire, width: width}); err != nil {
				return 0, err
			}
			b.design.Wires = append(b.design.Wires, Wire{
				From: Endpoint{Sub: path + "." + ref.inst, Port: ref.varName},
				To:   Endpoint{Sub: path, Port: mangled},
			})
			if ci.std == nil {
				ci.extraOutputs[ref.varName] = true
			}
		}
	}

	// Rewrite hierarchical references to the mangled local names.
	mangle := func(e verilog.Expr) verilog.Expr {
		if h, ok := e.(*verilog.HierIdent); ok {
			return &verilog.Ident{IdentPos: h.IdentPos, Name: strings.Join(h.Parts, "__")}
		}
		return e
	}
	var newItems []verilog.Item
	for _, it := range scanItems {
		newItems = append(newItems, rewriteItem(it, mangle))
	}

	// Assemble the promoted module.
	pm := &verilog.Module{NamePos: mod.NamePos, Name: mod.Name, Items: newItems}
	for _, pd := range mod.Params {
		pm.Params = append(pm.Params, pd)
	}
	declared := map[string]bool{}
	for _, pt := range mod.Ports {
		pm.Ports = append(pm.Ports, pt)
		declared[pt.Name] = true
	}
	for _, name := range promoOrder {
		if declared[name] || declaresVar(newItems, name) {
			return 0, errf(mod.NamePos, "promoted port %s collides with an existing declaration in %s", name, mod.Name)
		}
		pr := promos[name]
		pm.Ports = append(pm.Ports, &verilog.Port{
			Dir:   pr.dir,
			Kind:  pr.kind,
			Range: widthRange(pr.width),
			Name:  name,
			Init:  pr.init,
		})
	}

	// Promote extra outputs requested by the parent: move item
	// declarations into the port list, preserving initializers.
	if len(extraOutputs) > 0 {
		pm2, err := promoteVarsToOutputs(pm, extraOutputs, env)
		if err != nil {
			return 0, err
		}
		pm = pm2
	}

	idx := len(b.design.Subs)
	b.design.Subs = append(b.design.Subs, &SubProgram{
		Path:   path,
		Params: headerEnv,
		Module: pm,
		env:    env,
	})

	// Recurse into children (stdlib children become leaf subprograms).
	for _, name := range childOrder {
		ci := children[name]
		childPath := path + "." + name
		if ci.std != nil {
			b.design.Subs = append(b.design.Subs, &SubProgram{
				Path:    childPath,
				IsStd:   true,
				StdType: ci.std.Name,
				Params:  ci.params,
			})
			continue
		}
		if _, err := b.split(ci.mod, childPath, ci.header, ci.extraOutputs); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// paramEnv evaluates a module's parameters (with overrides) and
// localparams into a constant environment.
func (b *builder) paramEnv(mod *verilog.Module, overrides map[string]*bits.Vector) (env, header map[string]*bits.Vector, err error) {
	env = map[string]*bits.Vector{}
	header = map[string]*bits.Vector{}
	for _, pd := range mod.Params {
		var v *bits.Vector
		if ov, ok := overrides[pd.Name]; ok {
			v = ov
		} else {
			v, err = constEvalAST(pd.Value, env)
			if err != nil {
				return nil, nil, errf(pd.DeclPos, "parameter %s: %v", pd.Name, err)
			}
		}
		if pd.Range != nil {
			w, werr := b.rangeWidth(pd.Range, env, pd.DeclPos)
			if werr != nil {
				return nil, nil, werr
			}
			v = v.Resize(w)
		}
		env[pd.Name] = v
		header[pd.Name] = v
	}
	for _, it := range mod.Items {
		pd, ok := it.(*verilog.ParamDecl)
		if !ok {
			continue
		}
		v, perr := constEvalAST(pd.Value, env)
		if perr != nil {
			return nil, nil, errf(pd.DeclPos, "parameter %s: %v", pd.Name, perr)
		}
		if pd.Range != nil {
			w, werr := b.rangeWidth(pd.Range, env, pd.DeclPos)
			if werr != nil {
				return nil, nil, werr
			}
			v = v.Resize(w)
		}
		env[pd.Name] = v
	}
	return env, header, nil
}

func (b *builder) rangeWidth(r *verilog.Range, env map[string]*bits.Vector, pos verilog.Pos) (int, error) {
	hi, err := constEvalAST(r.Hi, env)
	if err != nil {
		return 0, errf(pos, "range bound: %v", err)
	}
	lo, err := constEvalAST(r.Lo, env)
	if err != nil {
		return 0, errf(pos, "range bound: %v", err)
	}
	h, l := int(hi.Uint64()), int(lo.Uint64())
	if l != 0 || h < 0 {
		return 0, errf(pos, "ranges must be [N:0]")
	}
	return h + 1, nil
}

// resolveInstance binds an instantiation to its module or stdlib spec and
// evaluates its parameter overrides in the parent environment.
func (b *builder) resolveInstance(inst *verilog.Instance, parentEnv map[string]*bits.Vector) (*childInst, error) {
	ci := &childInst{inst: inst, extraOutputs: map[string]bool{}}
	if spec, ok := b.reg[inst.ModName]; ok {
		ci.std = spec
		ci.params = map[string]*bits.Vector{}
		for _, sp := range spec.Params {
			ci.params[sp.Name] = sp.Default
		}
		for i, pa := range inst.Params {
			v, err := constEvalAST(pa.Expr, parentEnv)
			if err != nil {
				return nil, errf(inst.InstPos, "parameter of %s: %v", inst.Name, err)
			}
			name := pa.Name
			if name == "" {
				if i >= len(spec.Params) {
					return nil, errf(inst.InstPos, "too many parameters for %s", inst.ModName)
				}
				name = spec.Params[i].Name
			}
			if _, known := ci.params[name]; !known {
				return nil, errf(inst.InstPos, "%s has no parameter %s", inst.ModName, name)
			}
			ci.params[name] = v
		}
		ci.header = ci.params
		return ci, nil
	}
	mod, ok := b.prog.Modules[inst.ModName]
	if !ok {
		return nil, errf(inst.InstPos, "unknown module %s", inst.ModName)
	}
	ci.mod = mod
	ci.header = map[string]*bits.Vector{}
	for i, pa := range inst.Params {
		v, err := constEvalAST(pa.Expr, parentEnv)
		if err != nil {
			return nil, errf(inst.InstPos, "parameter of %s: %v", inst.Name, err)
		}
		name := pa.Name
		if name == "" {
			if i >= len(mod.Params) {
				return nil, errf(inst.InstPos, "too many parameters for %s", inst.ModName)
			}
			name = mod.Params[i].Name
		}
		found := false
		for _, pd := range mod.Params {
			if pd.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, errf(inst.InstPos, "%s has no parameter %s", inst.ModName, name)
		}
		ci.header[name] = v
	}
	full, _, err := b.paramEnv(mod, ci.header)
	if err != nil {
		return nil, err
	}
	ci.params = full
	return ci, nil
}

// namedConns normalizes an instance's connections to named form.
func (b *builder) namedConns(ci *childInst) ([]*verilog.PortConn, error) {
	var portNames []string
	if ci.std != nil {
		for _, p := range ci.std.Ports {
			portNames = append(portNames, p.Name)
		}
	} else {
		for _, p := range ci.mod.Ports {
			portNames = append(portNames, p.Name)
		}
	}
	out := make([]*verilog.PortConn, 0, len(ci.inst.Conns))
	seen := map[string]bool{}
	for i, c := range ci.inst.Conns {
		name := c.Name
		if name == "" {
			if i >= len(portNames) {
				return nil, errf(c.ConnPos, "too many connections for %s", ci.inst.ModName)
			}
			name = portNames[i]
		}
		if seen[name] {
			return nil, errf(c.ConnPos, "port %s connected twice", name)
		}
		seen[name] = true
		out = append(out, &verilog.PortConn{ConnPos: c.ConnPos, Name: name, Expr: c.Expr})
	}
	return out, nil
}

// childPortInfo returns direction, width, and kind of a child's port.
func (b *builder) childPortInfo(ci *childInst, port string, pos verilog.Pos) (verilog.PortDir, int, verilog.NetKind, error) {
	if ci.std != nil {
		sp := ci.std.Port(port)
		if sp == nil {
			return 0, 0, 0, errf(pos, "%s has no port %s", ci.std.Name, port)
		}
		return sp.Dir, sp.Width(ci.params), verilog.Wire, nil
	}
	for _, p := range ci.mod.Ports {
		if p.Name != port {
			continue
		}
		w := 1
		if p.Range != nil {
			var err error
			w, err = b.rangeWidth(p.Range, ci.params, pos)
			if err != nil {
				return 0, 0, 0, err
			}
		}
		return p.Dir, w, p.Kind, nil
	}
	return 0, 0, 0, errf(pos, "%s has no port %s", ci.inst.ModName, port)
}

// childVarInfo returns the width and initializer of any child variable
// readable through a hierarchical reference.
func (b *builder) childVarInfo(ci *childInst, name string, pos verilog.Pos) (int, verilog.Expr, error) {
	if ci.std != nil {
		sp := ci.std.Port(name)
		if sp == nil {
			return 0, nil, errf(pos, "%s has no variable %s", ci.std.Name, name)
		}
		if sp.Dir == verilog.Input {
			return 0, nil, errf(pos, "cannot read input %s.%s hierarchically", ci.inst.Name, name)
		}
		return sp.Width(ci.params), nil, nil
	}
	for _, p := range ci.mod.Ports {
		if p.Name == name {
			if p.Dir == verilog.Input {
				return 0, nil, errf(pos, "cannot read input port %s.%s hierarchically", ci.inst.Name, name)
			}
			w := 1
			if p.Range != nil {
				var err error
				w, err = b.rangeWidth(p.Range, ci.params, pos)
				if err != nil {
					return 0, nil, err
				}
			}
			return w, nil, nil
		}
	}
	for _, it := range ci.mod.Items {
		nd, ok := it.(*verilog.NetDecl)
		if !ok {
			continue
		}
		for _, dn := range nd.Names {
			if dn.Name != name {
				continue
			}
			if dn.Array != nil {
				return 0, nil, errf(pos, "cannot read memory %s.%s hierarchically", ci.inst.Name, name)
			}
			w := 1
			if nd.Kind == verilog.Integer {
				w = 32
			} else if nd.Range != nil {
				var err error
				w, err = b.rangeWidth(nd.Range, ci.params, pos)
				if err != nil {
					return 0, nil, err
				}
			}
			return w, dn.Init, nil
		}
	}
	return 0, nil, errf(pos, "%s has no variable %s", ci.inst.ModName, name)
}

// hierRef is one hierarchical reference occurrence.
type hierRef struct {
	inst       string
	varName    string
	pos        verilog.Pos
	write      bool
	procedural bool
}

// collectHierRefs finds all hierarchical references in items, classifying
// reads vs writes.
func collectHierRefs(items []verilog.Item) ([]hierRef, error) {
	var refs []hierRef
	var firstErr error
	record := func(e verilog.Expr, write, procedural bool) {
		h, ok := lvalueRoot(e).(*verilog.HierIdent)
		if !ok {
			return
		}
		if len(h.Parts) != 2 {
			if firstErr == nil {
				firstErr = errf(h.IdentPos, "only direct-child hierarchical references are supported: %s", strings.Join(h.Parts, "."))
			}
			return
		}
		refs = append(refs, hierRef{inst: h.Parts[0], varName: h.Parts[1], pos: h.IdentPos, write: write, procedural: procedural})
	}
	readsIn := func(e verilog.Expr) {
		verilog.WalkExprs(e, func(x verilog.Expr) {
			if h, ok := x.(*verilog.HierIdent); ok {
				record(h, false, false)
			}
		})
	}
	var scanStmt func(s verilog.Stmt)
	scanStmt = func(s verilog.Stmt) {
		switch x := s.(type) {
		case nil:
		case *verilog.Block:
			for _, st := range x.Stmts {
				scanStmt(st)
			}
		case *verilog.If:
			readsIn(x.Cond)
			scanStmt(x.Then)
			scanStmt(x.Else)
		case *verilog.Case:
			readsIn(x.Subject)
			for _, it := range x.Items {
				for _, e := range it.Exprs {
					readsIn(e)
				}
				scanStmt(it.Body)
			}
		case *verilog.ProcAssign:
			record(x.LHS, true, true)
			readsInLValueIndices(x.LHS, readsIn)
			readsIn(x.RHS)
		case *verilog.For:
			scanStmt(x.Init)
			readsIn(x.Cond)
			scanStmt(x.Post)
			scanStmt(x.Body)
		case *verilog.SysTask:
			for _, a := range x.Args {
				readsIn(a)
			}
		}
	}
	for _, it := range items {
		switch x := it.(type) {
		case *verilog.NetDecl:
			for _, dn := range x.Names {
				readsIn(dn.Init)
			}
		case *verilog.ParamDecl:
			readsIn(x.Value)
		case *verilog.ContAssign:
			record(x.LHS, true, false)
			readsInLValueIndices(x.LHS, readsIn)
			readsIn(x.RHS)
		case *verilog.AlwaysBlock:
			for _, ev := range x.Events {
				readsIn(ev.Expr)
			}
			scanStmt(x.Body)
		case *verilog.InitialBlock:
			scanStmt(x.Body)
		}
	}
	return refs, firstErr
}

// lvalueRoot returns the base identifier form of an lvalue expression.
func lvalueRoot(e verilog.Expr) verilog.Expr {
	for {
		switch x := e.(type) {
		case *verilog.Index:
			e = x.X
		case *verilog.RangeSel:
			e = x.X
		default:
			return e
		}
	}
}

// readsInLValueIndices feeds the index sub-expressions of an lvalue to
// the read scanner (they are reads even though the base is a write).
func readsInLValueIndices(e verilog.Expr, readsIn func(verilog.Expr)) {
	switch x := e.(type) {
	case *verilog.Index:
		readsIn(x.Idx)
		readsInLValueIndices(x.X, readsIn)
	case *verilog.RangeSel:
		readsIn(x.Hi)
		readsIn(x.Lo)
		readsInLValueIndices(x.X, readsIn)
	case *verilog.Concat:
		for _, p := range x.Parts {
			readsInLValueIndices(p, readsIn)
		}
	}
}

func isLValueForm(e verilog.Expr) bool {
	switch x := e.(type) {
	case *verilog.Ident, *verilog.HierIdent:
		return true
	case *verilog.Index:
		return isLValueForm(x.X)
	case *verilog.RangeSel:
		return isLValueForm(x.X)
	case *verilog.Concat:
		for _, p := range x.Parts {
			if !isLValueForm(p) {
				return false
			}
		}
		return true
	}
	return false
}

// declaresVar reports whether items declare a variable with this name.
func declaresVar(items []verilog.Item, name string) bool {
	for _, it := range items {
		if nd, ok := it.(*verilog.NetDecl); ok {
			for _, dn := range nd.Names {
				if dn.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// widthRange builds a [w-1:0] range literal (nil for width 1).
func widthRange(w int) *verilog.Range {
	if w <= 1 {
		return nil
	}
	return &verilog.Range{
		Hi: numberOf(bits.FromUint64(32, uint64(w-1))),
		Lo: numberOf(bits.New(32)),
	}
}

// promoteVarsToOutputs moves item-level variable declarations into the
// port list as outputs, preserving initializers via Port.Init.
func promoteVarsToOutputs(m *verilog.Module, names map[string]bool, env map[string]*bits.Vector) (*verilog.Module, error) {
	out := &verilog.Module{NamePos: m.NamePos, Name: m.Name, Params: m.Params}
	promoted := map[string]bool{}
	for _, p := range m.Ports {
		out.Ports = append(out.Ports, p)
		if names[p.Name] {
			promoted[p.Name] = true // already a port
		}
	}
	for _, it := range m.Items {
		nd, ok := it.(*verilog.NetDecl)
		if !ok {
			out.Items = append(out.Items, it)
			continue
		}
		var keep []*verilog.DeclName
		for _, dn := range nd.Names {
			if !names[dn.Name] || promoted[dn.Name] {
				keep = append(keep, dn)
				continue
			}
			if dn.Array != nil {
				return nil, errf(dn.NamePos, "cannot promote memory %s to a port", dn.Name)
			}
			kind := nd.Kind
			if kind == verilog.Integer {
				kind = verilog.Reg
			}
			rng := nd.Range
			if nd.Kind == verilog.Integer {
				rng = widthRange(32)
			}
			out.Ports = append(out.Ports, &verilog.Port{
				PortPos: dn.NamePos,
				Dir:     verilog.Output,
				Kind:    kind,
				Range:   rng,
				Name:    dn.Name,
				Init:    dn.Init,
			})
			promoted[dn.Name] = true
		}
		if len(keep) > 0 {
			out.Items = append(out.Items, &verilog.NetDecl{DeclPos: nd.DeclPos, Kind: nd.Kind, Range: nd.Range, Names: keep})
		}
	}
	for n := range names {
		if !promoted[n] {
			return nil, errf(m.NamePos, "cannot promote %s in %s: no such variable", n, m.Name)
		}
	}
	return out, nil
}

// constEvalAST evaluates a constant AST expression under a parameter
// environment (used before elaboration exists for a module).
func constEvalAST(e verilog.Expr, env map[string]*bits.Vector) (*bits.Vector, error) {
	switch x := e.(type) {
	case *verilog.Number:
		return x.Val, nil
	case *verilog.Ident:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("%s is not a constant", x.Name)
	case *verilog.Unary:
		v, err := constEvalAST(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case verilog.UNeg:
			return v.Neg(), nil
		case verilog.UBitNot:
			return v.Not(), nil
		case verilog.UNot:
			return bits.FromBool(v.IsZero()), nil
		case verilog.UPlus:
			return v, nil
		}
		return nil, fmt.Errorf("operator not allowed in constant expression")
	case *verilog.Binary:
		a, err := constEvalAST(x.X, env)
		if err != nil {
			return nil, err
		}
		b, err := constEvalAST(x.Y, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case verilog.BAdd:
			return a.Add(b), nil
		case verilog.BSub:
			return a.Sub(b), nil
		case verilog.BMul:
			return a.Mul(b), nil
		case verilog.BDiv:
			return a.Div(b), nil
		case verilog.BMod:
			return a.Mod(b), nil
		case verilog.BPow:
			return a.Pow(b), nil
		case verilog.BShl, verilog.BAShl:
			return a.Shl(b), nil
		case verilog.BShr, verilog.BAShr:
			return a.Shr(b), nil
		case verilog.BBitAnd:
			return a.And(b), nil
		case verilog.BBitOr:
			return a.Or(b), nil
		case verilog.BBitXor:
			return a.Xor(b), nil
		case verilog.BEq:
			return bits.FromBool(a.Equal(b)), nil
		case verilog.BNeq:
			return bits.FromBool(!a.Equal(b)), nil
		case verilog.BLt:
			return bits.FromBool(a.Cmp(b) < 0), nil
		case verilog.BLe:
			return bits.FromBool(a.Cmp(b) <= 0), nil
		case verilog.BGt:
			return bits.FromBool(a.Cmp(b) > 0), nil
		case verilog.BGe:
			return bits.FromBool(a.Cmp(b) >= 0), nil
		case verilog.BLogAnd:
			return bits.FromBool(a.Bool() && b.Bool()), nil
		case verilog.BLogOr:
			return bits.FromBool(a.Bool() || b.Bool()), nil
		}
		return nil, fmt.Errorf("operator not allowed in constant expression")
	case *verilog.Ternary:
		c, err := constEvalAST(x.Cond, env)
		if err != nil {
			return nil, err
		}
		if c.Bool() {
			return constEvalAST(x.Then, env)
		}
		return constEvalAST(x.Else, env)
	}
	return nil, fmt.Errorf("expression is not constant")
}
