package ir

import (
	"sort"
	"strings"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// PrefixOf gives the inline renaming rule: a variable v of subprogram
// "main.a.b" becomes "a__b__v" in the merged module. The runtime uses
// the same rule to map engine state across the inline boundary.
func PrefixOf(path string) string {
	if path == RootPath {
		return ""
	}
	rel := strings.TrimPrefix(path, RootPath+".")
	return strings.ReplaceAll(rel, ".", "__") + "__"
}

// Inline merges every user subprogram into a single flat module rooted at
// RootPath (paper §4.2). Parameters are substituted as constants, child
// variables are renamed per PrefixOf, and the wires between user
// subprograms become shared variables. Only standard-library components
// remain as separate peers; the returned design's wires connect them to
// the merged subprogram.
//
// Verilog does not allow dynamic allocation of modules, so inlining is
// tractable, sound, and complete.
func Inline(d *Design) (*Design, error) {
	users := d.UserSubs()
	if len(users) == 0 {
		return d, nil
	}

	prefixOf := PrefixOf

	isStdPath := map[string]bool{}
	for _, s := range d.StdSubs() {
		isStdPath[s.Path] = true
	}

	// Classify wires. A user-side endpoint renames to prefix+port.
	renameEnd := func(e Endpoint) Endpoint {
		if isStdPath[e.Sub] {
			return e
		}
		return Endpoint{Sub: RootPath, Port: prefixOf(e.Sub) + e.Port}
	}
	// stdFacing marks merged names that keep port status, with direction.
	type facing struct {
		dir verilog.PortDir
	}
	stdFacing := map[string]facing{}
	var newWires []Wire
	for _, w := range d.Wires {
		fromStd, toStd := isStdPath[w.From.Sub], isStdPath[w.To.Sub]
		nf, nt := renameEnd(w.From), renameEnd(w.To)
		switch {
		case fromStd && toStd:
			newWires = append(newWires, Wire{From: nf, To: nt})
		case fromStd:
			stdFacing[nt.Port] = facing{dir: verilog.Input}
			newWires = append(newWires, Wire{From: nf, To: nt})
		case toStd:
			stdFacing[nf.Port] = facing{dir: verilog.Output}
			newWires = append(newWires, Wire{From: nf, To: nt})
		default:
			// user-to-user: both endpoints collapse onto one variable.
			if nf.Port != nt.Port {
				return nil, errf(verilog.Pos{}, "internal: inlined wire endpoints disagree: %s vs %s", nf.Port, nt.Port)
			}
		}
	}

	merged := &verilog.Module{Name: RootPath}

	// Track declarations for former ports: name -> chosen port decl.
	type portDecl struct {
		port *verilog.Port
	}
	exPorts := map[string]*portDecl{}
	var exPortOrder []string

	for _, sub := range users {
		prefix := prefixOf(sub.Path)
		rename := substParams(sub.env, func(e verilog.Expr) verilog.Expr {
			if id, ok := e.(*verilog.Ident); ok {
				return &verilog.Ident{IdentPos: id.IdentPos, Name: prefix + id.Name}
			}
			return e
		})
		// Items: drop param decls (substituted); rename the rest.
		for _, it := range sub.Module.Items {
			if _, isParam := it.(*verilog.ParamDecl); isParam {
				continue
			}
			merged.Items = append(merged.Items, rewriteItem(it, rename))
		}
		// Ports become either merged-module ports (stdlib-facing) or
		// internal declarations.
		for _, p := range sub.Module.Ports {
			name := prefix + p.Name
			np := &verilog.Port{
				PortPos: p.PortPos,
				Dir:     p.Dir,
				Kind:    p.Kind,
				Range:   rewriteRange(p.Range, rename),
				Name:    name,
				Init:    rewriteExpr(p.Init, rename),
			}
			if prev, dup := exPorts[name]; dup {
				// Both sides of an internal wire declared it; prefer the
				// driver's (reg beats wire: the reg side holds state).
				if np.Kind == verilog.Reg {
					prev.port = np
				}
				continue
			}
			exPorts[name] = &portDecl{port: np}
			exPortOrder = append(exPortOrder, name)
		}
	}

	// Emit ports and declarations.
	for _, name := range exPortOrder {
		pd := exPorts[name].port
		if f, keep := stdFacing[name]; keep {
			pd.Dir = f.dir
			merged.Ports = append(merged.Ports, pd)
			continue
		}
		// Former cross-module port, now an internal variable.
		decl := &verilog.NetDecl{
			DeclPos: pd.PortPos,
			Kind:    pd.Kind,
			Range:   pd.Range,
			Names:   []*verilog.DeclName{{NamePos: pd.PortPos, Name: name, Init: pd.Init}},
		}
		merged.Items = append(merged.Items, decl)
	}

	out := &Design{Wires: newWires}
	out.Subs = append(out.Subs, &SubProgram{
		Path:   RootPath,
		Params: map[string]*bits.Vector{},
		Module: merged,
		env:    map[string]*bits.Vector{},
	})
	for _, s := range d.StdSubs() {
		out.Subs = append(out.Subs, s)
	}
	sort.SliceStable(out.Wires, func(i, j int) bool {
		if out.Wires[i].From.Sub != out.Wires[j].From.Sub {
			return out.Wires[i].From.Sub < out.Wires[j].From.Sub
		}
		return out.Wires[i].From.Port < out.Wires[j].From.Port
	})
	return out, nil
}
