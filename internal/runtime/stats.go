package runtime

import (
	"fmt"

	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fault"
	"cascade/internal/njit"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
	"cascade/internal/vclock"
)

// EngineStat describes one scheduled engine: where it executes, which
// transport its ABI dispatches over, and the transport's cumulative
// counters for this path (carried across the restarts and hot swaps
// that rebuild clients).
type EngineStat struct {
	Path      string
	Location  string // "software" or "hardware"
	Transport string // "local" or "tcp"
	// Tier names the execution rung within the location for in-process
	// engines: "interpreter", "native" (closure-threaded Go), or
	// "fabric". Empty for stdlib peripherals and remote engines (the
	// daemon does not report its internal tier).
	Tier  string
	Xport transport.Stats
}

// Stats is a stable snapshot of the runtime's externally observable
// status: the JIT phase, where each engine lives, the virtual-time
// breakdown, and the compile service's counters. It is the single
// struct tooling (cmd/cascade-bench, the REPL status line) consumes
// instead of reaching into internals.
type Stats struct {
	Phase       Phase
	Steps       uint64
	Ticks       uint64
	Time        vclock.Breakdown
	AreaLEs     int
	Parallelism int
	Finished    bool

	// Engines lists the scheduled engines in schedule order (forwarded
	// stdlib components are absorbed and no longer listed).
	Engines []EngineStat

	// Compile snapshots the toolchain job service (cache hits/misses,
	// joins, cancellations, fault retries); PendingCompiles counts this
	// runtime's in-flight background jobs.
	Compile         toolchain.Stats
	PendingCompiles int

	// HWFaults counts hardware-engine faults the runtime observed;
	// Evictions counts the hardware→software reverse hot-swaps they
	// triggered. Faults snapshots the injector's own counters (zero when
	// running fault-free).
	HWFaults  int
	Evictions int
	Faults    fault.Stats

	// Native-tier counters (Features.NativeTier): in-flight native
	// compilations, native-engine faults observed, and the
	// native→interpreter demotions they triggered.
	PendingNative int
	NativeFaults  int
	Demotions     int

	// Persist counts the crash-safe persistence layer's work (journal
	// records, checkpoints, bytes, replay); Enabled is false on
	// runtimes without persistence.
	Persist PersistStats

	// Remote reports the shared daemon connection ("" when engines run
	// in-process); Xport sums the transport counters across every
	// scheduled engine, retired clients included.
	Remote string
	Xport  transport.Stats

	// Supervise snapshots the self-healing supervisor — breaker state,
	// probes, trips, failovers, re-hosts (Enabled=false when supervision
	// is off).
	Supervise supervise.Stats

	// Farm snapshots the sharded compile farm when one is installed on
	// the toolchain (Features.CompileFarm / cascade.WithCompileFarm);
	// Shards == 0 when compiles run on the local backend.
	Farm toolchain.FarmStats

	// Tenant is the runtime's tenant ID on a shared (hypervisor-owned)
	// toolchain; "" for a classic single-tenant runtime. RegionLEs is
	// the capacity of the runtime's fabric partition — its Device's
	// capacity, meaningful when a hypervisor carved it out of a shared
	// fabric. When Tenant is set, Compile is the tenant's own stats
	// mirror, not the shared service's global counters.
	Tenant    string
	RegionLEs int
}

// Stats snapshots the runtime. It takes the runtime lock, so monitoring
// goroutines may call it while the controller steps; the snapshot is a
// consistent between-steps state.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Phase:           r.phase,
		Steps:           r.steps,
		Ticks:           r.ticks,
		Time:            r.vclk.Breakdown(),
		AreaLEs:         r.areaLEs,
		Parallelism:     r.par,
		Finished:        r.finished,
		Compile:         r.opts.Toolchain.StatsFor(r.opts.Tenant),
		PendingCompiles: len(r.jobs),
		HWFaults:        r.hwFaults,
		Evictions:       r.evictions,
		PendingNative:   len(r.njobs),
		NativeFaults:    r.nativeFaults,
		Demotions:       r.demotions,
		Faults:          r.opts.Injector.Stats(),
		Persist:         r.persistStats(),
		Supervise:       r.sup.Stats(),
	}
	if fs, ok := r.opts.Toolchain.FarmStats(); ok {
		st.Farm = fs
	}
	if r.opts.Remote != nil {
		st.Remote = r.opts.Remote.Addr
	}
	if r.opts.Tenant != "" {
		st.Tenant = r.opts.Tenant
		st.RegionLEs = r.opts.Device.Capacity()
	}
	for _, path := range r.sched {
		c, ok := r.engines[path]
		if !ok {
			continue
		}
		es := EngineStat{
			Path:      path,
			Location:  c.Loc().String(),
			Transport: c.TransportKind(),
			Tier:      engineTier(c),
			Xport:     c.Stats(),
		}
		st.Engines = append(st.Engines, es)
		st.Xport.Add(es.Xport)
	}
	// Counters banked from retired clients (paths currently forwarded or
	// mid-rebuild) still belong to the lifetime totals.
	for _, s := range r.xstats {
		st.Xport.Add(s)
	}
	return st
}

// engineTier names the execution rung an in-process client currently
// dispatches to ("" for remote engines and stdlib peripherals).
func engineTier(c *transport.Client) string {
	switch c.Underlying().(type) {
	case *sweng.Engine:
		return "interpreter"
	case *njit.Engine:
		return "native"
	case *hweng.Engine:
		return "fabric"
	}
	return ""
}

// Summary renders the snapshot as one status line (the REPL's :stats).
func (s Stats) Summary() string {
	sec := func(ps uint64) float64 { return float64(ps) / float64(vclock.S) }
	line := fmt.Sprintf(
		"phase=%v steps=%d ticks=%d vtime=%.3fs compute=%.3fs comm=%.3fs overhead=%.3fs idle=%.3fs messages=%d area=%d LEs lanes=%d compiles[pending=%d hits=%d misses=%d joined=%d canceled=%d retried=%d]",
		s.Phase, s.Steps, s.Ticks,
		sec(s.Time.NowPs), sec(s.Time.ComputePs), sec(s.Time.CommPs),
		sec(s.Time.OverheadPs), sec(s.Time.IdlePs), s.Time.Messages,
		s.AreaLEs, s.Parallelism,
		s.PendingCompiles, s.Compile.CacheHits, s.Compile.CacheMisses,
		s.Compile.Joined, s.Compile.Canceled, s.Compile.Retried)
	if s.Tenant != "" {
		line += fmt.Sprintf(" tenant[%s region=%dLEs]", s.Tenant, s.RegionLEs)
	}
	if s.PendingNative > 0 || s.NativeFaults > 0 || s.Demotions > 0 {
		line += fmt.Sprintf(" native[pending=%d faults=%d demotions=%d]",
			s.PendingNative, s.NativeFaults, s.Demotions)
	}
	if s.Faults.Injected > 0 || s.HWFaults > 0 || s.Evictions > 0 {
		line += fmt.Sprintf(" faults[injected=%d transient=%d permanent=%d hw=%d evictions=%d]",
			s.Faults.Injected, s.Faults.Transient, s.Faults.Permanent,
			s.HWFaults, s.Evictions)
	}
	// The remote segment keys on wire traffic, not on a configured
	// address: counters banked from retired clients (a session whose
	// remote engines were torn down, forwarded, or rebuilt mid-run) are
	// still lifetime totals the user asked for, and RoundTrips alone
	// cannot gate it — Local clients meter fast-path round-trips too, so
	// every in-process session has RoundTrips > 0 with zero wire bytes.
	if s.Remote != "" || s.Xport.WireActivity() {
		addr := s.Remote
		if addr == "" {
			addr = "(retired)"
		}
		line += fmt.Sprintf(" remote[%s roundtrips=%d out=%dB in=%dB drops=%d retries=%d]",
			addr, s.Xport.RoundTrips, s.Xport.BytesOut, s.Xport.BytesIn,
			s.Xport.Drops, s.Xport.Retries)
	}
	if s.Farm.Shards > 0 {
		line += fmt.Sprintf(" farm[shards=%d jobs=%d routed=%d stolen=%d rerouted=%d shed=%d unavailable=%d peerhits=%d replicated=%d msgs=%d]",
			s.Farm.Shards, s.Farm.Jobs, s.Farm.Routed, s.Farm.Stolen,
			s.Farm.Rerouted, s.Farm.Shed, s.Farm.Unavailable,
			s.Farm.PeerHits, s.Farm.Replicated, s.Farm.Msgs)
	}
	if s.Supervise.Enabled {
		line += fmt.Sprintf(" supervise[state=%s probes=%d fails=%d trips=%d failovers=%d rehosts=%d]",
			s.Supervise.State, s.Supervise.Probes, s.Supervise.ProbeFailures,
			s.Supervise.Trips, s.Supervise.Failovers, s.Supervise.Rehosts)
	}
	if s.Persist.Enabled {
		line += fmt.Sprintf(" persist[records=%d journal=%dB ckpts=%d ckptBytes=%d ckptMs=%d replayed=%d]",
			s.Persist.Records, s.Persist.JournalBytes, s.Persist.Checkpoints,
			s.Persist.CheckpointBytes, s.Persist.CheckpointNs/1e6, s.Persist.ReplayedRecords)
		if s.Persist.Err != "" {
			line += " persist-error=" + s.Persist.Err
		}
	}
	return line
}
