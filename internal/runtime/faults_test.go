package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/sim"
	"cascade/internal/toolchain"
)

// runWithFaults is runEquiv plus an injector: it executes prog for n
// ticks and returns every observable along with the final Stats.
func runWithFaults(t *testing.T, prog string, cfg *fault.Config, par, n int) (string, []uint64, map[string]*sim.State, Stats) {
	t.Helper()
	view := &BufView{Quiet: true}
	opts := Options{View: view, Features: Features{DisableInline: true}, Parallelism: par}
	if cfg != nil {
		opts.Injector = fault.New(*cfg)
	}
	r := newTestRuntime(t, opts)
	r.MustEval(prog)
	leds := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.RunTicks(1)
		leds = append(leds, r.World().Led("main.led"))
	}
	return view.Output(), leds, r.captureStates(), r.Stats()
}

// TestFaultDeterminismProperty is the degradation property test: random
// multi-engine programs run under injected faults — transient compile
// failures (retried with virtual-time backoff), region faults on the
// first placement (the compile is resubmitted), and a bus error in each
// engine's first hardware step (the engine is evicted back to software,
// then re-promoted from the bitstream cache). None of it may be
// observable: display output, the per-tick LED trace, and the final
// state must be identical to the fault-free run, serial or parallel.
// Only the virtual-time billing and the Stats counters may differ.
func TestFaultDeterminismProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := genEquivProgram(rand.New(rand.NewSource(seed)))
			cfg := fault.Config{
				Seed:             uint64(seed) + 1,
				CompileTransient: 1, MaxCompileFaults: 2,
				RegionFault: 1, MaxRegionFaults: 1,
				BusError: 1, MaxBusFaults: 1,
			}
			cleanOut, cleanLed, cleanSt, _ := runWithFaults(t, prog, nil, 1, 96)
			out, led, st, stats := runWithFaults(t, prog, &cfg, 1, 96)
			if out != cleanOut {
				t.Errorf("display output diverged under faults:\nclean:  %q\nfaulty: %q\nprogram:\n%s", cleanOut, out, prog)
			}
			if !reflect.DeepEqual(led, cleanLed) {
				t.Errorf("LED trace diverged under faults:\nclean:  %v\nfaulty: %v\nprogram:\n%s", cleanLed, led, prog)
			}
			if !reflect.DeepEqual(st, cleanSt) {
				t.Errorf("final states diverged under faults:\nclean:  %v\nfaulty: %v", cleanSt, st)
			}
			// The faults must actually have happened for the comparison to
			// mean anything: at least one retried compile and at least one
			// hardware eviction.
			if stats.Compile.Retried < 1 {
				t.Errorf("no compile retries recorded: %+v", stats.Compile)
			}
			if stats.Compile.TransientFaults < 1 {
				t.Errorf("no transient compile faults recorded: %+v", stats.Compile)
			}
			if stats.HWFaults < 1 || stats.Evictions < 1 {
				t.Errorf("no hardware eviction happened (hwFaults=%d evictions=%d); the degradation path was not exercised",
					stats.HWFaults, stats.Evictions)
			}
			if stats.Faults.Injected == 0 {
				t.Errorf("injector reports nothing injected: %+v", stats.Faults)
			}
			// A parallel faulty run agrees with the serial faulty run (and
			// therefore with the clean one) on every observable.
			outP, ledP, stP, statsP := runWithFaults(t, prog, &cfg, 8, 96)
			if outP != cleanOut || !reflect.DeepEqual(ledP, cleanLed) || !reflect.DeepEqual(stP, cleanSt) {
				t.Errorf("parallel faulty run diverged:\nclean out: %q\npar out:   %q\nclean led: %v\npar led:   %v",
					cleanOut, outP, cleanLed, ledP)
			}
			// Injector decisions are per-site counters, so the parallel
			// run injects exactly the same faults. (Checks is excluded:
			// billing differs across lane counts by design, so engines
			// spend a different number of steps being probed in hardware.)
			fs, fp := stats.Faults, statsP.Faults
			fs.Checks, fp.Checks = 0, 0
			if fs != fp {
				t.Errorf("fault schedule depended on parallelism: serial %+v parallel %+v", stats.Faults, statsP.Faults)
			}
		})
	}
}

// TestBatchMakespanUnit pins down the settleBatch billing rule and the
// PR 1 regression: with more batch members than lanes, billing the bare
// slowest member pretended unbounded parallelism existed.
func TestBatchMakespanUnit(t *testing.T) {
	// One lane runs the batch back-to-back: the serial sum.
	if got := batchMakespanPs(80, 10, 1); got != 80 {
		t.Errorf("serial: got %d, want 80", got)
	}
	// The batch fits in the lanes: the slowest member is the makespan.
	if got := batchMakespanPs(20, 10, 2); got != 10 {
		t.Errorf("fits-in-lanes: got %d, want 10", got)
	}
	// Oversubscribed: 8 members of cost 10 on 2 lanes take 4 rounds.
	// The old code billed maxCompute = 10 here — 4x under-billed.
	oldBill := uint64(10)
	if got := batchMakespanPs(80, 10, 2); got != 40 {
		t.Errorf("oversubscribed: got %d, want 40", got)
	} else if got == oldBill {
		t.Errorf("oversubscribed bill did not diverge from the old max-only rule")
	}
	// A single dominant member still sets the floor.
	if got := batchMakespanPs(80, 70, 2); got != 70 {
		t.Errorf("dominant member: got %d, want 70", got)
	}
	// Monotone in batch size: adding members never cheapens the batch.
	prev := uint64(0)
	for n := 1; n <= 32; n++ {
		got := batchMakespanPs(uint64(n)*10, 10, 4)
		if got < prev {
			t.Fatalf("makespan not monotone: n=%d got %d after %d", n, got, prev)
		}
		prev = got
	}
}

// makespanProg instantiates six identical counter engines so evaluate
// batches are larger than a small lane count.
const makespanProg = `
module Work(input wire c, output wire [7:0] out);
  reg [7:0] acc = 1;
  always @(posedge c) acc <= acc + 3;
  assign out = acc;
endmodule
Work w0(.c(clk.val)); Work w1(.c(clk.val)); Work w2(.c(clk.val));
Work w3(.c(clk.val)); Work w4(.c(clk.val)); Work w5(.c(clk.val));
assign led.val = w0.out ^ w1.out ^ w2.out ^ w3.out ^ w4.out ^ w5.out;
`

// TestSettleBatchOversubscribedBilling is the integration regression for
// the settleBatch fix: six engines on two lanes must bill strictly more
// compute than six engines on eight lanes (under the old max-only rule
// the two were identical), and never more than the serial runtime.
func TestSettleBatchOversubscribedBilling(t *testing.T) {
	run := func(par int) uint64 {
		r := newTestRuntime(t, Options{
			Features:    Features{DisableInline: true, DisableJIT: true},
			Parallelism: par,
		})
		r.MustEval(makespanProg)
		r.RunTicks(32)
		return r.Stats().Time.ComputePs
	}
	c1, c2, c8 := run(1), run(2), run(8)
	if c2 <= c8 {
		t.Errorf("2 lanes billed %d ≤ 8 lanes %d: oversubscription is free again (the PR 1 bug)", c2, c8)
	}
	if c1 < c2 {
		t.Errorf("serial billed %d < 2 lanes %d: parallelism made compute more expensive than serial", c1, c2)
	}
}

// TestDeviceCapacityAcrossEvalCycles loops program-change cycles and
// checks fabric accounting at each edge: a re-eval releases all placed
// hardware immediately, a promotion's footprint matches the runtime's
// own accounting, and cancelled compiles never place anything.
func TestDeviceCapacityAcrossEvalCycles(t *testing.T) {
	dev := fpga.NewCycloneV()
	r := newTestRuntime(t, Options{Device: dev})
	r.MustEval(figure3)
	for i := 0; i < 3; i++ {
		if !r.WaitForPhase(PhaseOpenLoop, 20000) {
			t.Fatalf("cycle %d: never reached open loop: %v", i, r.Phase())
		}
		if dev.Used() == 0 {
			t.Fatalf("cycle %d: open loop with nothing placed", i)
		}
		if dev.Used() != r.AreaLEs() {
			t.Fatalf("cycle %d: device says %d LEs, runtime says %d", i, dev.Used(), r.AreaLEs())
		}
		// Appending to the program tears hardware down (reverse of
		// Figure 9): the fabric must be fully released, immediately.
		r.MustEval(fmt.Sprintf("wire cap_probe_%d;", i))
		if dev.Used() != 0 {
			t.Fatalf("cycle %d: re-eval leaked %d LEs", i, dev.Used())
		}
	}
	// Submit→cancel cycles: a compile cancelled before its hot swap must
	// never consume fabric.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if err := r.EvalCtx(ctx, fmt.Sprintf("wire cancel_probe_%d;", i)); err != nil {
			t.Fatalf("eval: %v", err)
		}
		cancel()
		for _, j := range r.jobs {
			j.Cancel()
		}
		r.RunTicks(200)
		if dev.Used() != 0 {
			t.Fatalf("cancel cycle %d: %d LEs placed by a cancelled compile", i, dev.Used())
		}
	}
}

// TestStatsConcurrentWithRun hammers Stats (and Snapshot) from a
// monitoring goroutine while the controller runs the scheduler; the race
// detector enforces the locking contract documented on Runtime.mu.
func TestStatsConcurrentWithRun(t *testing.T) {
	r := newTestRuntime(t, Options{Parallelism: 4})
	r.MustEval(figure3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			st := r.Stats()
			if st.Steps > 0 && st.Ticks > st.Steps {
				panic("ticks ran ahead of steps")
			}
			if i%100 == 0 {
				_ = r.Snapshot()
			}
		}
	}()
	if err := r.RunTicksCtx(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	<-done
	if st := r.Stats(); st.Ticks < 400 {
		t.Fatalf("runtime made no progress under concurrent Stats: %+v", st)
	}
}

// TestIdleSplitsAtCompileReady: Idle across a compile's ready point must
// split the advance there and service the hot swap at that moment. The
// old code jumped the whole span in one AdvanceRaw and serviced
// afterwards, so the swap's own cost landed *after* the span and the
// entire span was attributed to idle; with the split, the swap's
// communication cost consumes part of the window and the idle share is
// strictly smaller than the requested span.
func TestIdleSplitsAtCompileReady(t *testing.T) {
	dev := fpga.NewCycloneV()
	// The default (realistic) toolchain: the compile is ready far in the
	// virtual future, so the idle span genuinely crosses it.
	r := newTestRuntime(t, Options{Device: dev, Toolchain: toolchain.New(dev, toolchain.DefaultOptions())})
	r.MustEval(figure3)
	r.RunTicks(1)
	start := r.VirtualNow()
	at, ok := r.CompileReadyAt()
	if !ok || at <= start {
		t.Fatalf("compile unexpectedly ready already (at=%d vnow=%d)", at, start)
	}
	idleBefore := r.Clock().Breakdown().IdlePs
	span := (at - start) * 3 // idle well past the ready point
	r.Idle(span)
	if _, pending := r.CompileReadyAt(); pending {
		t.Fatal("idle past the ready point left the compile unserviced")
	}
	if elapsed := r.VirtualNow() - start; elapsed < span {
		t.Fatalf("Idle(%d) only advanced %d", span, elapsed)
	}
	idleSpent := r.Clock().Breakdown().IdlePs - idleBefore
	if idleSpent >= span {
		t.Fatalf("idle attribution: %d of a %d span billed idle; the swap at the ready point should have consumed part of the window", idleSpent, span)
	}
	// The swap actually happened mid-idle, without a single Step.
	if r.Phase() != PhaseHardware && r.Phase() != PhaseForwarded && r.Phase() != PhaseOpenLoop {
		t.Fatalf("phase after idle across ready point: %v", r.Phase())
	}
}
