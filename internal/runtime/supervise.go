package runtime

import (
	"fmt"
	"strings"

	"cascade/internal/bits"
	"cascade/internal/engine/sweng"
	"cascade/internal/obsv"
	"cascade/internal/proto"
	"cascade/internal/supervise"
	"cascade/internal/transport"
	"cascade/internal/verilog"
)

// serviceSupervision runs the self-healing state machine between time
// steps (after serviceJIT, still in the observable part of the step).
// It feeds the breaker the round-trip failures the step observed, sends
// liveness probes on the virtual-time heartbeat cadence (immediately
// when the step saw failures — the daemon is likely gone, confirm now
// rather than waiting out the cadence; and as the half-open trial once
// the reopen timeout elapses), fails remote engines over to local
// software when the breaker trips, and re-hosts them when it closes
// again. Everything is billed on the virtual clock; no wall-clock
// reads, so a supervised run replays byte-identically.
func (r *Runtime) serviceSupervision() {
	if r.sup == nil || r.opts.Remote == nil || r.design == nil {
		return
	}
	vnow := r.vclk.Now()
	fails := r.supFails
	r.supFails = 0
	restarted := r.supRestart
	r.supRestart = false
	tripped := false
	// A daemon-restart detection (boot epoch changed on reconnect) is
	// proof of state loss, not a mere reachability blip: force the trip
	// past the threshold. Counting it as an ordinary failure would let a
	// successful follow-up probe reset the streak and strand the run on
	// a latched, inert client serving nothing.
	if restarted && r.sup.ForceTrip(vnow) {
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvBreaker, "", "-> open (daemon restarted: remote state stale)")
			o.BreakerTrips.Inc()
		}
		tripped = true
	}
	for i := 0; i < fails; i++ {
		if r.noteSupFailure(vnow) {
			tripped = true
		}
	}
	if !tripped && r.remoteT != nil && (fails > 0 || r.sup.ShouldProbe(vnow)) {
		if r.probeRemote(vnow) {
			tripped = true
		}
	}
	if tripped {
		r.failoverRemote()
		return
	}
	// Healthy: commit this step's observable state. The committed
	// snapshot is the failover seed — its display side effects have
	// already been flushed, so an engine re-seeded from it continues the
	// output stream with no duplicates and no holes (a step lost to an
	// inert engine drops a clock edge, never an output line).
	if fails == 0 && r.sup.State() == supervise.Closed {
		r.commitRemoteStates()
	}
}

// noteSupFailure counts one failure against the breaker, tracing the
// transition it causes, and reports whether the breaker tripped.
func (r *Runtime) noteSupFailure(vnow uint64) (tripped bool) {
	prev := r.sup.State()
	tripped = r.sup.NoteFailure(vnow)
	if o := r.obs(); o != nil {
		o.ProbeFailures.Inc()
	}
	switch {
	case tripped:
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvBreaker, "", "closed -> open (tripped)")
			o.BreakerTrips.Inc()
		}
	case prev == supervise.HalfOpen && r.sup.State() == supervise.Open:
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvBreaker, "", "half-open -> open (trial failed)")
		}
	}
	return tripped
}

// probeRemote sends one liveness probe (a KindPing round-trip, answered
// by the daemon before any engine lookup) and resolves it against the
// breaker. A successful half-open trial closes the breaker and re-hosts
// the failed-over engines. It reports whether the probe tripped the
// breaker.
func (r *Runtime) probeRemote(vnow uint64) (tripped bool) {
	wasOpen := r.sup.State() == supervise.Open
	r.sup.ProbeSent(vnow)
	if wasOpen {
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvBreaker, "", "open -> half-open (trial probe)")
		}
	}
	req := proto.Request{Kind: proto.KindPing, VNow: vnow}
	var rep proto.Reply
	cost, err := r.remoteT.Roundtrip(&req, &rep)
	// A probe is a protocol message like any other: one serialized
	// boundary crossing per attempt, billed in virtual time.
	r.vclk.AdvanceComm(1+cost.Retries, &r.opts.Model)
	if o := r.obs(); o != nil {
		o.Probes.Inc()
	}
	if err != nil {
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvProbe, "", "failed: "+err.Error())
		}
		return r.noteSupFailure(vnow)
	}
	if o := r.obs(); o != nil {
		o.Emit(obsv.EvProbe, "", "ok")
	}
	if r.sup.ProbeOK(vnow) {
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvBreaker, "", "half-open -> closed (recovered)")
		}
		r.opts.View.Info("remote engine daemon recovered: re-hosting failed-over engines")
		r.rehostRemote()
	}
	return false
}

// commitRemoteStates snapshots every remote engine's end-of-step state
// into the committed map (the failover seed). Snapshot transfers are
// billed through the client's per-word MMIO meter like any state
// access. A snapshot that fails mid-transfer latches on the client and
// is counted against the breaker next step; the previous commit stays.
func (r *Runtime) commitRemoteStates() {
	for _, s := range r.design.UserSubs() {
		c := r.engines[s.Path]
		if c == nil || !c.Remote() || c.Err() != nil {
			continue
		}
		st := c.GetState()
		if c.Err() != nil {
			continue
		}
		r.committed[s.Path] = st
	}
}

// failoverRemote is the breaker-trip path: every remote engine is
// replaced by a fresh local software engine re-seeded from its last
// committed state, and execution continues without the daemon. The JIT
// phase does not climb while failed over — no local fabric compile is
// submitted (the outage would abandon it on re-host); the native tier,
// when enabled, gives the engine its usual faster local rung.
func (r *Runtime) failoverRemote() {
	n := 0
	for _, s := range r.design.UserSubs() {
		c := r.engines[s.Path]
		if c == nil || !c.Remote() {
			continue
		}
		f := r.elabsExec()[s.Path]
		if f == nil {
			r.opts.View.Error(fmt.Errorf("runtime: cannot fail over %s: no elaboration", s.Path))
			continue
		}
		r.retireClient(s.Path, c)
		sw := sweng.New(f, r.lane(s.Path), r.now, r.opts.Features.EagerSim)
		// Construction re-runs initial blocks; the user saw that output
		// when the program integrated, and the committed state overwrites
		// their variable effects.
		r.discardLane(s.Path)
		if st := r.committed[s.Path]; st != nil {
			sw.SetState(st)
		}
		r.engines[s.Path] = r.wrapLocal(s.Path, sw)
		r.failedOver[s.Path] = true
		r.vclk.AdvanceOverhead(uint64(len(f.Vars)+1) * r.opts.Model.DispatchPs / 4)
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvFailover, s.Path, "re-seeded locally from last committed state")
		}
		if r.opts.Features.NativeTier && !r.opts.Features.DisableJIT {
			r.njobs[s.Path] = r.submitNativeCompile(r.jobCtx(), f)
		}
		n++
	}
	if n == 0 {
		return
	}
	r.sup.NoteFailover(n)
	if o := r.obs(); o != nil {
		o.Failovers.Add(uint64(n))
	}
	r.opts.View.Info("remote engine daemon unreachable: %d engine(s) failed over to local software", n)
}

// rehostRemote is the recovery path: once a half-open trial closes the
// breaker, every failed-over engine is spawned back onto the daemon,
// seeded with its current local state, and the local engine retired. A
// spawn or handoff failure stops the sweep — the remaining engines stay
// local and the next recovery retries (the failure also counts against
// the breaker through the usual error path).
func (r *Runtime) rehostRemote() {
	if len(r.failedOver) == 0 {
		return
	}
	n := 0
	for _, s := range r.design.UserSubs() {
		if !r.failedOver[s.Path] {
			continue
		}
		c := r.engines[s.Path]
		if c == nil {
			continue
		}
		st := c.GetState()
		nc, err := r.spawnRemoteRebind(s.Path, s.Module, s.Params)
		if err != nil {
			r.opts.View.Info("re-host of %s failed (%v); staying local", s.Path, err)
			break
		}
		nc.SetState(st)
		if nc.Err() != nil {
			r.opts.View.Info("re-host of %s failed mid-handoff; staying local", s.Path)
			break
		}
		if j, ok := r.njobs[s.Path]; ok {
			j.Cancel()
			delete(r.njobs, s.Path)
		}
		r.retireClient(s.Path, c)
		c.End()
		r.engines[s.Path] = nc
		r.committed[s.Path] = st
		delete(r.failedOver, s.Path)
		if o := r.obs(); o != nil {
			o.Emit(obsv.EvRehost, s.Path, "re-hosted on "+r.opts.Remote.Addr)
		}
		n++
	}
	if n == 0 {
		return
	}
	r.sup.NoteRehost(n)
	if o := r.obs(); o != nil {
		o.Rehosts.Add(uint64(n))
	}
	r.opts.View.Info("%d engine(s) re-hosted on %s", n, r.opts.Remote.Addr)
}

// spawnRemoteRebind is spawnRemote with session recovery: a daemon that
// restarted without its journal no longer knows this runtime's session
// ID, so an "unknown session" refusal opens a fresh session and retries
// once. (A daemon resumed from a journal re-binds the old ID and the
// first spawn just works.)
func (r *Runtime) spawnRemoteRebind(path string, mod *verilog.Module, params map[string]*bits.Vector) (*transport.Client, error) {
	nc, err := r.spawnRemote(path, mod, params)
	if err == nil || r.remoteSess == 0 || !strings.Contains(err.Error(), "unknown session") {
		return nc, err
	}
	ro := r.opts.Remote
	sess, serr := transport.OpenSession(r.remoteT, ro.SessionName,
		ro.SessionQuotaLEs, ro.SessionShare, r.vclk.Now())
	if serr != nil {
		return nil, err
	}
	r.remoteSess = sess
	r.opts.View.Info("daemon session re-opened as %d (previous session lost)", sess)
	return r.spawnRemote(path, mod, params)
}
