package runtime

import (
	"path/filepath"
	"strings"
	"testing"

	"cascade/internal/chaos"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/toolchain"
)

// chaosProg is the invariant-14 workload: two independent counters so
// failover, re-host, and the overload path (two simultaneous native
// submissions against a MaxQueue=1 toolchain) all have more than one
// engine to disagree about. CtrA executes $finish, so every arm runs to
// the same functional endpoint no matter how many clock edges chaos
// eats along the way.
const chaosProg = `
module CtrA(input wire c);
  reg [7:0] n = 0;
  always @(posedge c) begin
    n <= n + 1;
    $display("a=%d", n);
    if (n == 8'd40) $finish;
  end
endmodule
module CtrB(input wire c);
  reg [7:0] n = 0;
  always @(posedge c) begin
    n <= n + 1;
    $display("b=%d", n);
  end
endmodule
CtrA a(.c(clk.val));
CtrB b(.c(clk.val));
`

// chaosArm is one run's comparable observables.
type chaosArm struct {
	out    string // the display stream — the paper-visible output
	vtime  uint64 // final virtual clock
	phases string // phase trajectory (transitions only)
	stats  Stats
}

// runChaosArm executes chaosProg to $finish. With a schedule it runs
// against a journaled daemon under full chaos — net drops and compile
// faults from the schedule's injector, daemon kill/restart cycles
// applied at the scheduled step boundaries, and client-side admission
// control (MaxQueue=1) so the post-failover native submissions overload
// and shed. Without a schedule it is the fault-free local baseline.
func runChaosArm(t *testing.T, sched *chaos.Schedule, par int) chaosArm {
	t.Helper()
	view := &BufView{Quiet: true}
	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	opts := Options{View: view, Parallelism: par, Device: dev}
	var d *testDaemon
	if sched != nil {
		tco.MaxQueue = 1
		d = newTestDaemon(t, filepath.Join(t.TempDir(), "host.journal"), false)
		opts.Remote = supRemoteOptions(d.addr)
		opts.Supervise = supTestOptions()
		opts.Injector = sched.Injector()
		// DisableInline keeps the two counters separate engines, so a
		// failover submits two native compilations into the MaxQueue=1
		// toolchain at once — the overload surface under test.
		opts.Features = Features{NativeTier: true, DisableInline: true}
	} else {
		opts.Features = Features{DisableJIT: true}
	}
	opts.Toolchain = toolchain.New(dev, tco)
	r := New(opts)
	if err := r.Eval(DefaultPrelude); err != nil {
		t.Fatal(err)
	}
	defer r.CloseRemote()
	r.MustEval(chaosProg)

	step0 := r.steps
	phases := []string{r.phase.String()}
	next := 0
	const maxSteps = 20000
	for i := 0; i < maxSteps && !r.Finished(); i++ {
		r.Step()
		// Outages land between steps — where a SIGKILL lands between two
		// served frames — at the schedule's step offsets.
		if sched != nil && next < len(sched.Outages) {
			o := sched.Outages[next]
			switch r.steps - step0 {
			case o.KillAtStep:
				d.kill()
			case o.RestartAtStep:
				d.restart()
				next++
			}
		}
		if p := r.phase.String(); p != phases[len(phases)-1] {
			phases = append(phases, p)
		}
	}
	if !r.Finished() {
		t.Fatalf("arm never finished (par=%d sched=%v)", par, sched)
	}
	r.flushDisplays()
	return chaosArm{
		out:    view.Output(),
		vtime:  r.vclk.Now(),
		phases: strings.Join(phases, ">"),
		stats:  r.Stats(),
	}
}

// TestChaosInvariant14 is ROADMAP invariant 14: under any bounded,
// seeded chaos schedule — dropped frames, compile faults, daemon
// kill/restart cycles, load-shed compile submissions — the program's
// output is byte-identical to the fault-free run, and the serial and
// parallel arms of the same schedule agree on output, final virtual
// time, and phase trajectory.
func TestChaosInvariant14(t *testing.T) {
	sched := chaos.Config{
		Seed:          1777,
		Steps:         100,
		DaemonOutages: 2,
		MinDownSteps:  2,
		MaxDownSteps:  5,
		Fault: fault.Config{
			// Caps keep the drop surface bounded AND below the transport's
			// retry budget, so an injected drop costs retries, never an
			// unavailability verdict the two arms could attribute to
			// different requests. (Compile and region faults compose
			// through the same injector; their determinism property is
			// pinned separately by TestFaultDeterminismProperty.)
			NetDrop:      1,
			MaxNetFaults: 2,
		},
	}.Schedule()
	if len(sched.Outages) != 2 {
		t.Fatalf("schedule did not plan 2 outages: %v", sched)
	}

	baseline := runChaosArm(t, nil, 1)
	serial := runChaosArm(t, &sched, 1)
	replay := runChaosArm(t, &sched, 1)
	parallel := runChaosArm(t, &sched, 4)

	// The invariant: chaos may cost time, never correctness.
	if serial.out != baseline.out {
		t.Fatalf("%v: serial chaos output diverged from fault-free baseline\nchaos:\n%s\nbaseline:\n%s",
			sched, serial.out, baseline.out)
	}
	if parallel.out != baseline.out {
		t.Fatalf("%v: parallel chaos output diverged from fault-free baseline\nchaos:\n%s\nbaseline:\n%s",
			sched, parallel.out, baseline.out)
	}

	// Replay determinism: the same schedule at the same dispatch width
	// reproduces the run byte-for-byte — output, final virtual clock,
	// and phase trajectory. (Virtual time is NOT compared across widths:
	// batch makespan billing legitimately depends on lane count.)
	if serial.out != replay.out || serial.vtime != replay.vtime || serial.phases != replay.phases {
		t.Fatalf("%v: chaos replay diverged:\nrun:    vtime=%d phases=%s\nreplay: vtime=%d phases=%s",
			sched, serial.vtime, serial.phases, replay.vtime, replay.phases)
	}

	// The schedule actually exercised what it claims to compose.
	sup := serial.stats.Supervise
	if sup.Trips == 0 || sup.Failovers == 0 || sup.Rehosts == 0 {
		t.Fatalf("%v: chaos run did not exercise the failover loop: %+v", sched, sup)
	}
	if serial.stats.Faults.Injected == 0 {
		t.Fatalf("%v: injector never fired: %+v", sched, serial.stats.Faults)
	}
	if serial.stats.Compile.Shed == 0 {
		t.Fatalf("%v: admission control never shed: %+v", sched, serial.stats.Compile)
	}
}
