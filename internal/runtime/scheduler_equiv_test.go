package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cascade/internal/sim"
)

// genEquivProgram emits a random multi-module program: K independent
// counter modules, each its own engine under DisableInline, some of
// which $display on every posedge, plus a root-level display and an LED
// driven by the xor of every counter. The generator only uses constructs
// whose semantics are deterministic for a race-free synchronous program,
// so serial and parallel schedules must agree on every observable.
func genEquivProgram(rng *rand.Rand) string {
	var sb strings.Builder
	k := 2 + rng.Intn(3)
	displays := 0
	for i := 0; i < k; i++ {
		w := 4 + rng.Intn(5) // 4..8 bits
		init := rng.Intn(1 << w)
		inc := 1 + rng.Intn(7)
		fmt.Fprintf(&sb, "module Gen%d(input wire c, output wire [%d:0] out);\n", i, w-1)
		fmt.Fprintf(&sb, "  reg [%d:0] acc = %d;\n", w-1, init)
		fmt.Fprintf(&sb, "  always @(posedge c) begin\n")
		fmt.Fprintf(&sb, "    acc <= acc + %d;\n", inc)
		// At least two modules must print so that lane-drain ordering
		// across engines is actually exercised.
		if rng.Intn(2) == 0 || (displays < 2 && i >= k-2) {
			fmt.Fprintf(&sb, "    $display(\"m%d=%%d\", acc);\n", i)
			displays++
		}
		fmt.Fprintf(&sb, "  end\n")
		fmt.Fprintf(&sb, "  assign out = acc;\n")
		fmt.Fprintf(&sb, "endmodule\n")
		fmt.Fprintf(&sb, "Gen%d g%d(.c(clk.val));\n", i, i)
	}
	sb.WriteString("always @(posedge clk.val) $display(\"root=%d\", g0.out);\n")
	sb.WriteString("assign led.val = g0.out")
	for i := 1; i < k; i++ {
		fmt.Fprintf(&sb, " ^ g%d.out", i)
	}
	sb.WriteString(";\n")
	return sb.String()
}

// runEquiv executes prog for n ticks at the given parallelism and
// returns every observable: program output, the per-tick LED trace, and
// the final per-subprogram state.
func runEquiv(t *testing.T, prog string, feats Features, par, n int) (string, []uint64, map[string]*sim.State) {
	t.Helper()
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: feats, Parallelism: par})
	r.MustEval(prog)
	leds := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.RunTicks(1)
		leds = append(leds, r.World().Led("main.led"))
	}
	return view.Output(), leds, r.captureStates()
}

// TestSerialParallelEquivalence is the scheduler-equivalence property
// test (DESIGN.md invariants): for random multi-engine programs, a
// parallel runtime must be observationally indistinguishable from a
// serial one — identical display output in identical order, identical
// LED trace at every tick, identical final engine state. Odd seeds run
// the full JIT (engines migrate to hardware mid-trace; virtual-time
// billing differs between the two runtimes, but observables may not).
func TestSerialParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		feats := Features{DisableInline: true}
		if seed%2 == 0 {
			feats.DisableJIT = true
		}
		t.Run(fmt.Sprintf("seed%d_jit%v", seed, !feats.DisableJIT), func(t *testing.T) {
			prog := genEquivProgram(rand.New(rand.NewSource(seed)))
			outS, ledS, stS := runEquiv(t, prog, feats, 1, 48)
			outP, ledP, stP := runEquiv(t, prog, feats, 8, 48)
			if outS != outP {
				t.Errorf("display output diverged:\nserial:   %q\nparallel: %q\nprogram:\n%s", outS, outP, prog)
			}
			if !reflect.DeepEqual(ledS, ledP) {
				t.Errorf("LED trace diverged:\nserial:   %v\nparallel: %v\nprogram:\n%s", ledS, ledP, prog)
			}
			if !reflect.DeepEqual(stS, stP) {
				t.Errorf("final states diverged:\nserial:   %v\nparallel: %v\nprogram:\n%s", stS, stP, prog)
			}
		})
	}
}

// TestServiceJITDropsCanceledJobs checks the runtime side of compile
// cancellation: a job cancelled after submission (re-eval, context
// cancellation) must be removed from the pending set and the program
// must keep running in software rather than wait on it forever.
func TestServiceJITDropsCanceledJobs(t *testing.T) {
	r := newTestRuntime(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	if err := r.EvalCtx(ctx, figure3); err != nil {
		t.Fatalf("eval: %v", err)
	}
	cancel()
	// Cancel is unconditional (a context abort only wins the race when
	// the worker has not started), so cancel the jobs directly too:
	// deterministic regardless of goroutine scheduling.
	for _, j := range r.jobs {
		j.Cancel()
	}
	r.RunTicks(500)
	if r.Phase() != PhaseInlined {
		t.Fatalf("cancelled compile must pin the program in software, got %v", r.Phase())
	}
	if len(r.jobs) != 0 {
		t.Fatalf("serviceJIT left %d cancelled jobs pending", len(r.jobs))
	}
	if _, pending := r.CompileReadyAt(); pending {
		t.Fatal("CompileReadyAt still reports a pending compile")
	}
	// A fresh eval resubmits and the JIT proceeds normally.
	r.MustEval(`wire unused_resub;`)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("JIT stuck after resubmit: %v", r.Phase())
	}
}

// TestBufViewConcurrentReads drives the runtime while another goroutine
// hammers the BufView accessors; the race detector enforces the View
// concurrency contract documented in runtime.go.
func TestBufViewConcurrentReads(t *testing.T) {
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: Features{DisableJIT: true, DisableInline: true}})
	r.MustEval(genEquivProgram(rand.New(rand.NewSource(99))))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			_ = view.Output()
			_ = view.Infos()
			_ = view.Errors()
		}
	}()
	r.RunTicks(300)
	<-done
	if !strings.Contains(view.Output(), "root=") {
		t.Fatalf("program produced no output: %q", view.Output())
	}
}

// TestStatsSnapshot checks the stable status snapshot satellites hang
// off of: engine inventory, parallelism, vclock breakdown, and the
// compile-service counters (including a bitstream-cache hit after a
// state-preserving re-eval of an unchanged netlist... which a new eval
// is not, so here: miss counts at least).
func TestStatsSnapshot(t *testing.T) {
	r := newTestRuntime(t, Options{Parallelism: 3})
	r.MustEval(figure3)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no open loop: %v", r.Phase())
	}
	r.RunTicks(20)
	st := r.Stats()
	if st.Phase != PhaseOpenLoop {
		t.Fatalf("phase: %v", st.Phase)
	}
	if st.Parallelism != 3 {
		t.Fatalf("parallelism: %d", st.Parallelism)
	}
	if st.Ticks == 0 || st.Steps == 0 {
		t.Fatalf("no progress recorded: %+v", st)
	}
	if st.Time.NowPs == 0 || st.Time.NowPs != r.VirtualNow() {
		t.Fatalf("vclock snapshot wrong: %d vs %d", st.Time.NowPs, r.VirtualNow())
	}
	if st.Compile.Submitted == 0 || st.Compile.CacheMisses == 0 {
		t.Fatalf("compile stats empty: %+v", st.Compile)
	}
	if len(st.Engines) == 0 {
		t.Fatal("no engines in snapshot")
	}
	hw := false
	for _, e := range st.Engines {
		if strings.Contains(e.Location, "hardware") {
			hw = true
		}
	}
	if !hw {
		t.Fatalf("open-loop runtime reports no hardware engine: %+v", st.Engines)
	}
	if !strings.Contains(st.Summary(), "phase=") {
		t.Fatalf("summary malformed: %q", st.Summary())
	}
}
