package runtime

import (
	"bufio"
	"context"
	"fmt"
	"sort"
	"strings"

	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/ir"
	"cascade/internal/persist"
	"cascade/internal/sim"
	"cascade/internal/stdlib"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
)

// Snapshot is a portable capture of a running program: its source, the
// state of every subprogram (including standard-library components),
// the virtual-time accounting, and the board's host-driven input pins.
// The paper's future-work section (§9) proposes using Cascade's ability
// to move programs between hardware and software to bootstrap virtual
// machine migration; a Snapshot taken on one runtime Restores onto
// another — a different device, a different toolchain, mid-computation —
// and execution continues exactly where it left off (in software first,
// with the new target's JIT climbing back to hardware). Checkpoints on
// disk are snapshots too: internal/persist frames them with per-section
// checksums so a torn write is detected, never half-restored.
type Snapshot struct {
	Source string                // the eval'd program (reparseable)
	States map[string]*sim.State // per-subprogram state, by instance path
	Steps  uint64                // scheduler time ($time continuity)
	VTime  vclock.Breakdown      // virtual-clock accounting at capture
	Inputs []stdlib.InputState   // host-driven board inputs (pads, resets, GPIO)
}

// Snapshot captures the runtime's program and state. Like every state
// operation it happens between time steps; taking the lock makes it
// safe to call from a monitoring goroutine while the controller runs.
func (r *Runtime) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// snapshotLocked is Snapshot's body; callers hold r.mu.
func (r *Runtime) snapshotLocked() *Snapshot {
	snap := &Snapshot{
		Source: r.ProgramSource(),
		States: r.captureStates(),
		Steps:  r.steps,
		VTime:  r.vclk.Breakdown(),
		Inputs: r.opts.World.InputStates(),
	}
	// Standard-library components carry state too (FIFO contents, LED
	// values, the clock phase).
	for path, e := range r.stdEngines {
		snap.States[path] = e.GetState()
	}
	return snap
}

// Restore installs a snapshot onto this runtime, replacing whatever
// program it was running (a fresh runtime works too). The program source
// is re-integrated, every subprogram's state is injected, and the JIT
// starts over on the new target's engines.
//
// Restore validates the whole snapshot — parse, build, elaboration,
// standard-library construction — before touching any runtime state,
// and rolls the runtime back to its fresh state if the final engine
// build fails: a corrupt or rejected snapshot never leaves state
// half-installed or the runtime marked as built, so the caller can
// Restore another snapshot (or Eval a program) on the same runtime.
func (r *Runtime) Restore(snap *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	mods, items, errs := verilog.ParseProgramFragment(snap.Source)
	if len(errs) > 0 {
		return fmt.Errorf("runtime: snapshot source: %v", errs[0])
	}
	prog := ir.NewProgram()
	for _, m := range mods {
		if err := prog.DeclareModule(m); err != nil {
			return err
		}
	}
	prog.AddRootItems(items...)
	design, err := ir.Build(prog, stdlib.Registry())
	if err != nil {
		return err
	}
	elabs := map[string]*elab.Flat{}
	for _, s := range design.UserSubs() {
		f, err := elab.Elaborate(s.Module, s.Path, s.Params)
		if err != nil {
			return err
		}
		elabs[s.Path] = f
	}
	// Pre-create the standard-library engines with their restored state,
	// so restart's initial data-plane broadcast carries the snapshot's
	// values: user engines (whose restored inputs already match) see no
	// change and no clock edge is fabricated. Built into a local map
	// first — nothing is installed until everything constructed.
	stdEngines := map[string]engine.Engine{}
	for _, sub := range design.StdSubs() {
		e, err := stdlib.New(sub.Path, sub.StdType, sub.Params, r.opts.World)
		if err != nil {
			return err
		}
		if st, ok := snap.States[sub.Path]; ok {
			e.SetState(st)
		}
		stdEngines[sub.Path] = e
	}

	// Input kinds are validated before anything mutates, so the apply
	// loop below cannot fail partway.
	for _, in := range snap.Inputs {
		switch in.Kind {
		case stdlib.InputPad, stdlib.InputReset, stdlib.InputGPIO:
		default:
			return fmt.Errorf("runtime: snapshot input kind %q", in.Kind)
		}
	}

	// Validation complete: commit. A used runtime (the REPL's :load on a
	// live session) is torn down only now — a snapshot that fails any
	// check above leaves the running program untouched.
	if r.everBuilt {
		r.resetFreshLocked()
	}
	// Board inputs land first so stdlib engines sample the snapshot's
	// values on their first EndStep.
	for _, in := range snap.Inputs {
		r.opts.World.ApplyInput(in.Kind, in.Path, in.Value)
	}
	r.prog = prog
	r.flatDesign = design
	r.elabs = elabs
	r.steps = snap.Steps
	r.ticks = snap.Steps / 2
	r.vclk.Restore(snap.VTime)
	r.stdEngines = stdEngines
	if err := r.restart(context.Background(), snap.States); err != nil {
		// A failed engine build must not leave the runtime half-restored:
		// roll back to the fresh state so it remains usable.
		r.resetFreshLocked()
		return fmt.Errorf("runtime: restore failed: %w", err)
	}
	return nil
}

// resetFreshLocked returns the runtime to its just-constructed state:
// engines torn down, background compilations cancelled, program and
// counters cleared. Callers hold r.mu.
func (r *Runtime) resetFreshLocked() {
	for _, j := range r.jobs {
		j.Cancel()
	}
	r.jobs = map[string]*toolchain.Job{}
	for _, j := range r.njobs {
		j.Cancel()
	}
	r.njobs = map[string]*toolchain.Job{}
	for path, c := range r.engines {
		if hw := asHW(c); hw != nil {
			hw.Release()
		}
		if _, std := r.stdEngines[path]; !std {
			c.End()
		}
		r.retireClient(path, c)
	}
	r.engines = map[string]*transport.Client{}
	r.stdEngines = map[string]engine.Engine{}
	r.lanes = map[string]*laneIO{}
	r.elabs = map[string]*elab.Flat{}
	r.execElabs = nil
	r.sched = nil
	r.routesFrom = map[string][]ir.Wire{}
	r.groupOf = map[string]string{}
	r.prog = ir.NewProgram()
	r.flatDesign, r.design = nil, nil
	r.inlined = false
	r.setPhase(PhaseEmpty)
	r.steps, r.ticks = 0, 0
	r.finished = false
	r.displayQ = nil
	r.areaLEs = 0
	r.everBuilt = false
	r.constructDisplays = 0
	r.clockPath, r.clockVar = "", ""
	r.vclk = vclock.Clock{}
	r.hwFaults, r.evictions = 0, 0
	r.nativeFaults, r.demotions = 0, 0
	r.olIters, r.olWallCap = 64, 1<<14
}

// Snapshot container format. Version 2 is a checksummed
// internal/persist container (magic + format version + CRC per
// section): a "meta" section with the scalar counters, a "world"
// section with the board's input pins, one "state:<path>" section per
// subprogram, and a trailing "source" section. Version 1 — the bare
// text blob older :save files hold — is still decoded.
const (
	snapshotMagic   = "cascade-snapshot"
	snapshotVersion = 2
)

// EncodeSnapshot renders a snapshot as a self-contained, checksummed
// blob (persist container v2): a torn or bit-flipped file is detected
// by DecodeSnapshot instead of half-restoring.
func EncodeSnapshot(snap *Snapshot) string {
	return string(persist.EncodeContainer(snapshotMagic, snapshotVersion, snapshotSections(snap)))
}

// snapshotSections renders the container sections shared by
// EncodeSnapshot and the checkpoint writer (which appends its own
// journal-position section).
func snapshotSections(snap *Snapshot) []persist.Section {
	var meta strings.Builder
	fmt.Fprintf(&meta, "steps=%d\n", snap.Steps)
	fmt.Fprintf(&meta, "vnow=%d\n", snap.VTime.NowPs)
	fmt.Fprintf(&meta, "vcompute=%d\n", snap.VTime.ComputePs)
	fmt.Fprintf(&meta, "vcomm=%d\n", snap.VTime.CommPs)
	fmt.Fprintf(&meta, "voverhead=%d\n", snap.VTime.OverheadPs)
	fmt.Fprintf(&meta, "vmessages=%d\n", snap.VTime.Messages)
	secs := []persist.Section{{Name: "meta", Data: []byte(meta.String())}}

	var world strings.Builder
	for _, in := range snap.Inputs {
		fmt.Fprintf(&world, "%s %s %d\n", in.Kind, in.Path, in.Value)
	}
	secs = append(secs, persist.Section{Name: "world", Data: []byte(world.String())})

	var paths []string
	for p := range snap.States {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		secs = append(secs, persist.Section{
			Name: "state:" + p,
			Data: []byte(snap.States[p].EncodeText()),
		})
	}
	secs = append(secs, persist.Section{Name: "source", Data: []byte(snap.Source)})
	return secs
}

// DecodeSnapshot parses EncodeSnapshot's format (and the legacy v1 text
// blob). Arbitrary or corrupted bytes are rejected with an error, never
// half-decoded: every section must verify against its checksum before
// any of it is interpreted.
func DecodeSnapshot(text string) (*Snapshot, error) {
	if strings.HasPrefix(text, "#cascade-snapshot steps=") {
		return decodeSnapshotV1(text)
	}
	_, secs, err := persist.DecodeContainer(snapshotMagic, []byte(text))
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	snap, _, err := snapshotFromSections(secs)
	return snap, err
}

// snapshotFromSections interprets decoded container sections; unknown
// sections are returned to the caller (the checkpoint loader reads its
// journal-position section from them).
func snapshotFromSections(secs []persist.Section) (*Snapshot, []persist.Section, error) {
	snap := &Snapshot{States: map[string]*sim.State{}}
	var extra []persist.Section
	seen := map[string]bool{}
	for _, s := range secs {
		switch {
		case s.Name == "meta":
			if err := decodeSnapshotMeta(snap, s.Data); err != nil {
				return nil, nil, err
			}
		case s.Name == "world":
			if err := decodeSnapshotWorld(snap, s.Data); err != nil {
				return nil, nil, err
			}
		case s.Name == "source":
			snap.Source = string(s.Data)
		case strings.HasPrefix(s.Name, "state:"):
			path := strings.TrimPrefix(s.Name, "state:")
			if path == "" {
				return nil, nil, fmt.Errorf("runtime: snapshot state section with empty path")
			}
			st, err := sim.DecodeStateText(string(s.Data))
			if err != nil {
				return nil, nil, fmt.Errorf("runtime: snapshot state %s: %w", path, err)
			}
			snap.States[path] = st
		default:
			extra = append(extra, s)
			continue
		}
		if seen[s.Name] {
			return nil, nil, fmt.Errorf("runtime: snapshot section %s duplicated", s.Name)
		}
		seen[s.Name] = true
	}
	if !seen["meta"] || !seen["source"] {
		return nil, nil, fmt.Errorf("runtime: snapshot missing meta or source section")
	}
	return snap, extra, nil
}

func decodeSnapshotMeta(snap *Snapshot, data []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("runtime: snapshot meta line %.40q", line)
		}
		var n uint64
		if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
			return fmt.Errorf("runtime: snapshot meta %s: %w", key, err)
		}
		switch key {
		case "steps":
			snap.Steps = n
		case "vnow":
			snap.VTime.NowPs = n
		case "vcompute":
			snap.VTime.ComputePs = n
		case "vcomm":
			snap.VTime.CommPs = n
		case "voverhead":
			snap.VTime.OverheadPs = n
		case "vmessages":
			snap.VTime.Messages = n
		default:
			// Unknown keys are tolerated: later format revisions may add
			// counters without breaking older readers.
		}
	}
	return sc.Err()
}

func decodeSnapshotWorld(snap *Snapshot, data []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var in stdlib.InputState
		if _, err := fmt.Sscanf(line, "%s %s %d", &in.Kind, &in.Path, &in.Value); err != nil {
			return fmt.Errorf("runtime: snapshot world line %.40q: %w", line, err)
		}
		switch in.Kind {
		case stdlib.InputPad, stdlib.InputReset, stdlib.InputGPIO:
		default:
			return fmt.Errorf("runtime: snapshot world kind %q", in.Kind)
		}
		snap.Inputs = append(snap.Inputs, in)
	}
	return sc.Err()
}

// decodeSnapshotV1 parses the legacy (pre-checksum) text format, kept
// so snapshots written by older :save invocations still restore.
func decodeSnapshotV1(text string) (*Snapshot, error) {
	snap := &Snapshot{States: map[string]*sim.State{}}
	head, rest, found := strings.Cut(text, "\n")
	if !found || !strings.HasPrefix(head, "#cascade-snapshot") {
		return nil, fmt.Errorf("runtime: not a snapshot")
	}
	if _, err := fmt.Sscanf(head, "#cascade-snapshot steps=%d", &snap.Steps); err != nil {
		return nil, fmt.Errorf("runtime: snapshot header: %w", err)
	}
	for {
		if strings.HasPrefix(rest, "#source\n") {
			snap.Source = strings.TrimPrefix(rest, "#source\n")
			return snap, nil
		}
		if !strings.HasPrefix(rest, "#state ") {
			return nil, fmt.Errorf("runtime: malformed snapshot section near %.40q", rest)
		}
		var path string
		head, rest, _ = strings.Cut(rest, "\n")
		path = strings.TrimPrefix(head, "#state ")
		// The state body runs until the next # directive.
		end := strings.Index(rest, "\n#")
		var body string
		if end < 0 {
			body, rest = rest, ""
		} else {
			body, rest = rest[:end+1], rest[end+1:]
		}
		st, err := sim.DecodeStateText(body)
		if err != nil {
			return nil, err
		}
		snap.States[path] = st
	}
}
