package runtime

import (
	"context"
	"fmt"
	"strings"

	"cascade/internal/elab"
	"cascade/internal/ir"
	"cascade/internal/sim"
	"cascade/internal/stdlib"
	"cascade/internal/verilog"
)

// Snapshot is a portable capture of a running program: its source and
// the state of every subprogram, including standard-library components.
// The paper's future-work section (§9) proposes using Cascade's ability
// to move programs between hardware and software to bootstrap virtual
// machine migration; a Snapshot taken on one runtime Restores onto
// another — a different device, a different toolchain, mid-computation —
// and execution continues exactly where it left off (in software first,
// with the new target's JIT climbing back to hardware).
type Snapshot struct {
	Source string                // the eval'd program (reparseable)
	States map[string]*sim.State // per-subprogram state, by instance path
	Steps  uint64                // scheduler time ($time continuity)
}

// Snapshot captures the runtime's program and state. Like every state
// operation it happens between time steps; taking the lock makes it
// safe to call from a monitoring goroutine while the controller runs.
func (r *Runtime) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{
		Source: r.ProgramSource(),
		States: r.captureStates(),
		Steps:  r.steps,
	}
	// Standard-library components carry state too (FIFO contents, LED
	// values, the clock phase).
	for path, e := range r.stdEngines {
		snap.States[path] = e.GetState()
	}
	return snap
}

// Restore installs a snapshot onto this runtime, which must be fresh (no
// program eval'd yet). The program source is re-integrated, every
// subprogram's state is injected, and the JIT starts over on the new
// target's engines.
func (r *Runtime) Restore(snap *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.everBuilt {
		return fmt.Errorf("runtime: Restore requires a fresh runtime")
	}
	mods, items, errs := verilog.ParseProgramFragment(snap.Source)
	if len(errs) > 0 {
		return fmt.Errorf("runtime: snapshot source: %v", errs[0])
	}
	prog := ir.NewProgram()
	for _, m := range mods {
		if err := prog.DeclareModule(m); err != nil {
			return err
		}
	}
	prog.AddRootItems(items...)
	design, err := ir.Build(prog, stdlib.Registry())
	if err != nil {
		return err
	}
	elabs := map[string]*elab.Flat{}
	for _, s := range design.UserSubs() {
		f, err := elab.Elaborate(s.Module, s.Path, s.Params)
		if err != nil {
			return err
		}
		elabs[s.Path] = f
	}
	r.prog = prog
	r.flatDesign = design
	r.elabs = elabs
	r.steps = snap.Steps
	r.ticks = snap.Steps / 2
	// Pre-create the standard-library engines with their restored state,
	// so restart's initial data-plane broadcast carries the snapshot's
	// values: user engines (whose restored inputs already match) see no
	// change and no clock edge is fabricated.
	for _, sub := range design.StdSubs() {
		e, err := stdlib.New(sub.Path, sub.StdType, sub.Params, r.opts.World)
		if err != nil {
			return err
		}
		if st, ok := snap.States[sub.Path]; ok {
			e.SetState(st)
		}
		r.stdEngines[sub.Path] = e
	}
	return r.restart(context.Background(), snap.States)
}

// EncodeSnapshot renders a snapshot as a self-contained text blob.
func EncodeSnapshot(snap *Snapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#cascade-snapshot steps=%d\n", snap.Steps)
	var paths []string
	for p := range snap.States {
		paths = append(paths, p)
	}
	// Deterministic order.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[j] < paths[i] {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}
	for _, p := range paths {
		fmt.Fprintf(&sb, "#state %s\n%s", p, snap.States[p].EncodeText())
	}
	fmt.Fprintf(&sb, "#source\n%s", snap.Source)
	return sb.String()
}

// DecodeSnapshot parses EncodeSnapshot's format.
func DecodeSnapshot(text string) (*Snapshot, error) {
	snap := &Snapshot{States: map[string]*sim.State{}}
	head, rest, found := strings.Cut(text, "\n")
	if !found || !strings.HasPrefix(head, "#cascade-snapshot") {
		return nil, fmt.Errorf("runtime: not a snapshot")
	}
	if _, err := fmt.Sscanf(head, "#cascade-snapshot steps=%d", &snap.Steps); err != nil {
		return nil, fmt.Errorf("runtime: snapshot header: %w", err)
	}
	for {
		if strings.HasPrefix(rest, "#source\n") {
			snap.Source = strings.TrimPrefix(rest, "#source\n")
			return snap, nil
		}
		if !strings.HasPrefix(rest, "#state ") {
			return nil, fmt.Errorf("runtime: malformed snapshot section near %.40q", rest)
		}
		var path string
		head, rest, _ = strings.Cut(rest, "\n")
		path = strings.TrimPrefix(head, "#state ")
		// The state body runs until the next # directive.
		end := strings.Index(rest, "\n#")
		var body string
		if end < 0 {
			body, rest = rest, ""
		} else {
			body, rest = rest[:end+1], rest[end+1:]
		}
		st, err := sim.DecodeStateText(body)
		if err != nil {
			return nil, err
		}
		snap.States[path] = st
	}
}
