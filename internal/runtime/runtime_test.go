package runtime

import (
	"strings"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
)

// figure3 is the user program of the paper's Figure 3 (prelude supplies
// clk/pad/led).
const figure3 = `
module Rol(input wire [7:0] x, output wire [7:0] y);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule
reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val)
  if (pad.val == 0)
    cnt <= r.y;
assign led.val = cnt;
`

// fastToolchain compiles near-instantly in virtual time (tests that
// exercise the lifecycle rather than the latency).
func fastToolchain(dev *fpga.Device) *toolchain.Toolchain {
	o := toolchain.DefaultOptions()
	o.Scale = 1e9
	o.BasePs = 1
	return toolchain.New(dev, o)
}

func newTestRuntime(t testing.TB, opts Options) *Runtime {
	t.Helper()
	if opts.Device == nil {
		opts.Device = fpga.NewCycloneV()
	}
	if opts.Toolchain == nil {
		opts.Toolchain = fastToolchain(opts.Device)
	}
	r := New(opts)
	if err := r.Eval(DefaultPrelude); err != nil {
		t.Fatalf("prelude: %v", err)
	}
	return r
}

// ledSequence runs n ticks and samples the LED value after each tick.
func ledSequence(r *Runtime, n int) []uint64 {
	var seq []uint64
	for i := 0; i < n; i++ {
		r.RunTicks(1)
		seq = append(seq, r.World().Led("main.led"))
	}
	return seq
}

func expectAnimation(t *testing.T, seq []uint64, startVal uint64) {
	t.Helper()
	want := startVal
	for i, got := range seq {
		if got != want {
			t.Fatalf("animation broke at tick %d: led=%#x, want %#x (seq %v)", i, got, want, seq)
		}
		if want == 0x80 {
			want = 1
		} else {
			want <<= 1
		}
	}
}

func TestRunningExampleSoftwareOnly(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(figure3)
	seq := ledSequence(r, 10)
	expectAnimation(t, seq, 2)
	if r.Phase() != PhaseInlined {
		t.Fatalf("DisableJIT should stay in software, got %v", r.Phase())
	}
	// Pressing a button pauses the animation; releasing resumes it.
	// Pads are sampled between time steps, so the press takes effect
	// after at most one tick.
	r.World().PressPad("main.pad", 1)
	r.RunTicks(1)
	before := r.World().Led("main.led")
	r.RunTicks(5)
	if got := r.World().Led("main.led"); got != before {
		t.Fatalf("paused animation moved: %#x -> %#x", before, got)
	}
	r.World().PressPad("main.pad", 0)
	r.RunTicks(1)
	// One tick is consumed re-sampling the pad; the next must move.
	r.RunTicks(1)
	if got := r.World().Led("main.led"); got == before {
		t.Fatal("animation did not resume after release")
	}
}

func TestJITLifecycleReachesOpenLoop(t *testing.T) {
	view := &BufView{}
	r := newTestRuntime(t, Options{View: view})
	r.MustEval(figure3)
	if !r.WaitForPhase(PhaseOpenLoop, 10000) {
		t.Fatalf("never reached open loop; phase=%v errors=%v infos=%v", r.Phase(), view.Errors(), view.Infos())
	}
	if len(view.Errors()) > 0 {
		t.Fatalf("runtime errors: %v", view.Errors())
	}
	if r.AreaLEs() <= 0 {
		t.Fatal("hardware engine should occupy fabric")
	}
}

func TestAnimationContinuousAcrossMigration(t *testing.T) {
	// The LED sequence must be the exact rotation sequence with no
	// resets or skips even as engines migrate software -> hardware ->
	// forwarded -> open loop underneath it.
	r := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(figure3)
	var seq []uint64
	sawPhases := map[Phase]bool{}
	for tick := 0; tick < 600; tick++ {
		r.RunTicks(1)
		seq = append(seq, r.World().Led("main.led"))
		sawPhases[r.Phase()] = true
	}
	// Drop trailing samples beyond one observation per tick: with
	// open-loop bursts RunTicks(1) may advance several ticks; verify the
	// sampled subsequence is consistent with the rotation instead.
	last := seq[0]
	pos := map[uint64]int{}
	val := uint64(1)
	for i := 0; i < 8; i++ {
		pos[val] = i
		val <<= 1
	}
	for i := 1; i < len(seq); i++ {
		cur := seq[i]
		if cur == last {
			continue
		}
		// Position must advance monotonically modulo 8.
		if _, ok := pos[cur]; !ok {
			t.Fatalf("invalid led value %#x", cur)
		}
		last = cur
	}
	if !sawPhases[PhaseOpenLoop] {
		t.Fatalf("test never observed open loop: %v", sawPhases)
	}
	if seq[0] == 0 {
		t.Fatal("led never driven")
	}
}

func TestStatePreservedOnMigration(t *testing.T) {
	// Slow the toolchain slightly so we can observe software execution
	// first, then confirm cnt did not reset to 1 on the hot swap.
	dev := fpga.NewCycloneV()
	o := toolchain.DefaultOptions()
	o.Scale = 1e4 // compiles in ~a few virtual ms
	r := newTestRuntime(t, Options{Device: dev, Toolchain: toolchain.New(dev, o), OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(figure3)
	r.RunTicks(5)
	if r.Phase() != PhaseInlined {
		t.Fatalf("expected to still be in software after 5 ticks, got %v", r.Phase())
	}
	ledBefore := r.World().Led("main.led")
	if ledBefore == 1 {
		t.Fatal("animation should have advanced in software")
	}
	if !r.WaitForPhase(PhaseOpenLoop, 100000) {
		t.Fatalf("no open loop: %v", r.Phase())
	}
	// The animation advances exactly one position per tick from reset,
	// so at any sampling instant led must equal 1<<(ticks mod 8) — a
	// reset during migration would break the phase permanently.
	_ = ledBefore
	for i := 0; i < 5; i++ {
		r.RunTicks(1)
		// The counter advances on each rising edge; rising edges happen
		// on odd scheduler steps, so ceil(steps/2) have occurred.
		want := uint64(1) << (((r.Steps() + 1) / 2) % 8)
		if got := r.World().Led("main.led"); got != want {
			t.Fatalf("step %d: led=%#x, want %#x (state lost across migration)", r.Steps(), got, want)
		}
	}
}

func TestDisplayWorksInEveryPhase(t *testing.T) {
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(`
reg [15:0] n = 0;
always @(posedge clk.val) begin
  n <= n + 1;
  if (n[5:0] == 0) $display("beat %d", n);
end`)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no open loop: %v (%v)", r.Phase(), view.Errors())
	}
	r.RunTicks(500)
	out := view.Output()
	if !strings.Contains(out, "beat 0\n") || !strings.Contains(out, "beat 64\n") {
		t.Fatalf("missing early beats:\n%s", out)
	}
	if !strings.Contains(out, "beat 384\n") {
		t.Fatalf("display stopped after migration to hardware:\n%s", out)
	}
	// Beats must arrive in order with no duplicates.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	lastBeat := -1
	for _, l := range lines {
		if !strings.HasPrefix(l, "beat ") {
			continue
		}
		var v int
		if _, err := fmtSscanf(l, &v); err != nil {
			t.Fatalf("bad line %q", l)
		}
		if v <= lastBeat {
			t.Fatalf("beats out of order or duplicated: %q after %d", l, lastBeat)
		}
		lastBeat = v
	}
}

// fmtSscanf avoids importing fmt twice in tests.
func fmtSscanf(line string, v *int) (int, error) {
	var n int
	var err error
	n, err = sscanBeat(line, v)
	return n, err
}

func sscanBeat(line string, v *int) (int, error) {
	s := strings.TrimPrefix(line, "beat ")
	s = strings.TrimSpace(s)
	val := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		val = val*10 + int(c-'0')
	}
	*v = val
	return 1, nil
}

func TestFinishStopsRuntime(t *testing.T) {
	r := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(`
reg [7:0] n = 0;
always @(posedge clk.val) begin
  n <= n + 1;
  if (n == 50) $finish;
end`)
	if !r.RunUntilFinish(100000) {
		t.Fatal("program never finished")
	}
	if r.Ticks() > 120 {
		t.Fatalf("finish should stop promptly, ran %d ticks", r.Ticks())
	}
}

func TestEvalExtendsRunningProgram(t *testing.T) {
	r := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(`reg [7:0] cnt = 1;
always @(posedge clk.val) cnt <= cnt + 1;`)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no open loop: %v", r.Phase())
	}
	r.RunTicks(50)
	// Appending code moves engines back to software without resetting
	// cnt (paper §4.4: "the process is started anew").
	if err := r.Eval(`assign led.val = cnt;`); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if r.Phase() != PhaseInlined {
		t.Fatalf("eval should return to software, got %v", r.Phase())
	}
	r.RunTicks(2)
	led := r.World().Led("main.led")
	if led < 50 {
		t.Fatalf("cnt was reset by eval: led=%d", led)
	}
	// And the JIT climbs back to open loop.
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no re-ascent to open loop: %v", r.Phase())
	}
}

func TestEvalErrorLeavesProgramIntact(t *testing.T) {
	r := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(`reg [7:0] cnt = 1; always @(posedge clk.val) cnt <= cnt + 1; assign led.val = cnt;`)
	r.RunTicks(5)
	before := r.World().Led("main.led")
	for _, bad := range []string{
		`assign led.val = 1;`, // would double-drive through promotion collision
		`wire [3:0] w = ;`,    // parse error
		`assign q = missing;`, // undeclared
		`module Rol(); endmodule
		 module Rol(); endmodule`, // duplicate module
	} {
		if err := r.Eval(bad); err == nil {
			t.Fatalf("eval(%q) should fail", bad)
		}
	}
	r.RunTicks(1)
	if got := r.World().Led("main.led"); got < before {
		t.Fatal("failed evals disturbed the running program")
	}
}

func TestFIFOEchoThroughRuntime(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`
FIFO#(8, 16) fifo();
reg [7:0] acc = 0;
assign fifo.rreq = !fifo.empty;
assign fifo.wreq = !fifo.empty;
assign fifo.wdata = fifo.rdata + 1;
always @(posedge clk.val)
  if (!fifo.empty) acc <= acc + fifo.rdata;`)
	stream := r.World().Stream("main.fifo")
	stream.PushBytes([]byte{1, 2, 3, 4, 5})
	r.RunTicks(40)
	out := stream.TakeOutput()
	if len(out) != 5 {
		t.Fatalf("echoed %d words, want 5: %v", len(out), out)
	}
	for i, v := range out {
		if v != uint64(i+2) {
			t.Fatalf("echo wrong at %d: got %d, want %d", i, v, i+2)
		}
	}
}

func TestFIFOBackpressure(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`FIFO#(8, 4) fifo();`) // nothing pops
	stream := r.World().Stream("main.fifo")
	stream.PushBytes(make([]byte, 100))
	r.RunTicks(20)
	if got := stream.PendingIn(); got != 96 {
		t.Fatalf("device should hold only its depth: pending=%d, want 96", got)
	}
}

func TestVirtualRates(t *testing.T) {
	// Software rate must be orders of magnitude below the open-loop
	// rate, which must be within ~3x of the 50 MHz fabric clock.
	swr := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	swr.MustEval(figure3)
	t0, n0 := swr.VirtualNow(), swr.Ticks()
	swr.RunTicks(200)
	swRate := float64(swr.Ticks()-n0) / (float64(swr.VirtualNow()-t0) / float64(vclock.S))

	r := newTestRuntime(t, Options{OpenLoopTargetPs: 1 * vclock.Ms})
	r.MustEval(figure3)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no open loop: %v", r.Phase())
	}
	r.Step() // one burst to stabilize the adaptive iteration budget
	t1, n1 := r.VirtualNow(), r.Ticks()
	for i := 0; i < 5; i++ {
		r.Step()
	}
	olRate := float64(r.Ticks()-n1) / (float64(r.VirtualNow()-t1) / float64(vclock.S))

	if swRate <= 0 || olRate <= 0 {
		t.Fatalf("rates not positive: sw=%f ol=%f", swRate, olRate)
	}
	if olRate < swRate*100 {
		t.Fatalf("open loop should be far faster: sw=%.0f Hz, ol=%.0f Hz", swRate, olRate)
	}
	native := 50e6
	if olRate < native/4 || olRate > native {
		t.Fatalf("open-loop rate %.2f MHz should be within ~3x of 50 MHz", olRate/1e6)
	}
}

func TestAblationFlags(t *testing.T) {
	// No forwarding: stuck at PhaseHardware.
	r := newTestRuntime(t, Options{Features: Features{DisableForwarding: true}})
	r.MustEval(figure3)
	r.RunTicks(200)
	if r.Phase() != PhaseHardware {
		t.Fatalf("forwarding disabled: got %v", r.Phase())
	}
	// No open loop: stuck at PhaseForwarded.
	r = newTestRuntime(t, Options{Features: Features{DisableOpenLoop: true}})
	r.MustEval(figure3)
	r.RunTicks(200)
	if r.Phase() != PhaseForwarded {
		t.Fatalf("open loop disabled: got %v", r.Phase())
	}
	// No inline: multiple engines, no forwarding possible.
	r = newTestRuntime(t, Options{Features: Features{DisableInline: true}})
	r.MustEval(figure3)
	r.RunTicks(200)
	if r.Phase() != PhaseHardware {
		t.Fatalf("inline disabled: got %v", r.Phase())
	}
	seq := ledSequence(r, 8)
	expectAnimation(t, seq, seq[0])
}

func TestNativeModeAreaMatchesRaw(t *testing.T) {
	devA := fpga.NewCycloneV()
	ra := newTestRuntime(t, Options{Device: devA, Toolchain: fastToolchain(devA), OpenLoopTargetPs: 10 * vclock.Us})
	ra.MustEval(figure3)
	ra.WaitForPhase(PhaseOpenLoop, 20000)
	wrapped := ra.AreaLEs()

	devB := fpga.NewCycloneV()
	rb := newTestRuntime(t, Options{Device: devB, Toolchain: fastToolchain(devB), Features: Features{Native: true}, OpenLoopTargetPs: 10 * vclock.Us})
	rb.MustEval(figure3)
	rb.RunTicks(500)
	native := rb.AreaLEs()

	if native <= 0 || wrapped <= native {
		t.Fatalf("ABI wrapper should cost area: wrapped=%d native=%d", wrapped, native)
	}
}

func TestStartupLatencyUnderOneSecond(t *testing.T) {
	r := newTestRuntime(t, Options{})
	r.MustEval(figure3)
	if r.StartupPs() > vclock.S {
		t.Fatalf("startup latency %.3fs exceeds 1s", float64(r.StartupPs())/float64(vclock.S))
	}
}

func TestTimeSystemFunction(t *testing.T) {
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: Features{DisableJIT: true}})
	r.MustEval(`
reg once = 0;
always @(posedge clk.val)
  if (!once) begin
    once <= 1;
    $display("t=%d", $time);
  end`)
	r.RunTicks(3)
	if !strings.Contains(view.Output(), "t=") {
		t.Fatalf("no $time output: %q", view.Output())
	}
}

func TestDeviceCapacityExceeded(t *testing.T) {
	dev := fpga.NewDevice(50, 50_000_000) // tiny device
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{Device: dev, Toolchain: fastToolchain(dev), View: view})
	r.MustEval(figure3)
	r.RunTicks(300)
	if r.Phase() != PhaseInlined {
		t.Fatalf("oversized design should stay in software, got %v", r.Phase())
	}
	if len(view.Errors()) == 0 {
		t.Fatal("fit failure should be reported to the view")
	}
}
