package runtime

import (
	"strings"
	"testing"

	"cascade/internal/vclock"
	"cascade/internal/workloads/nw"
	"cascade/internal/workloads/pow"
)

// TestNWThroughFullJIT runs the class-study workload end to end: the
// score must match the Go reference no matter which engines executed
// which portion of the computation.
func TestNWThroughFullJIT(t *testing.T) {
	cfg := nw.Config{
		SeqA: []byte("GATTACA"), SeqB: []byte("GCATGCU"),
		Match: 1, Mismatch: -1, Gap: -1,
		Display: true,
	}
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(nw.GenerateProgram(cfg))
	r.RunTicks(uint64(cfg.Cycles()) + 16)
	want := cfg.Score()
	out := view.Output()
	if !strings.Contains(out, "NW score=") {
		t.Fatalf("no score display: %q", out)
	}
	// The displayed score (two's complement decimal of the 16-bit reg).
	if want == 0 && !strings.Contains(out, "score=0 ") {
		t.Fatalf("score mismatch: want %d, got %q", want, out)
	}
	if r.Phase() != PhaseOpenLoop {
		t.Fatalf("should have reached hardware: %v", r.Phase())
	}
}

// TestPoWThroughFullJIT verifies the miner finds the crypto/sha256
// predicted nonce even with engine migrations underneath it.
func TestPoWThroughFullJIT(t *testing.T) {
	cfg := pow.DefaultConfig()
	cfg.Target = 0x20000000 // ~1/8 hashes solve
	cfg.Display = true
	cfg.FinishOnFind = true
	wantNonce, ok := cfg.FindNonce(500)
	if !ok {
		t.Fatal("no reference solution")
	}
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
`)
	budget := uint64((wantNonce + 2)) * pow.CyclesPerHash * 2
	if !r.RunUntilFinish(budget * 2) {
		t.Fatalf("miner never finished (budget %d steps)", budget*2)
	}
	if !strings.Contains(view.Output(), "FOUND nonce=") {
		t.Fatalf("no FOUND display: %q", view.Output())
	}
	// The displayed nonce is hex.
	if want := "FOUND nonce=" + hex8(wantNonce); !strings.Contains(view.Output(), want) {
		t.Fatalf("wrong nonce: want %q in %q", want, view.Output())
	}
}

func hex8(v uint32) string {
	const d = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = d[v&0xf]
		v >>= 4
	}
	return string(out)
}

// TestMemoryComponentThroughRuntime exercises the stdlib Memory with a
// program that writes then reads back.
func TestMemoryComponentThroughRuntime(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`
Memory#(4, 8) mem();
reg [3:0] st = 0;
reg [7:0] got = 0;
assign mem.waddr = 4'd9;
assign mem.wdata = 8'h5a;
assign mem.wen = (st == 1);
assign mem.raddr = 4'd9;
always @(posedge clk.val) begin
  st <= st + 1;
  got <= mem.rdata;
end
assign led.val = got;
`)
	r.RunTicks(8)
	if got := r.World().Led("main.led"); got != 0x5a {
		t.Fatalf("memory readback=%#x, want 0x5a", got)
	}
}

// TestGPIOThroughRuntime drives GPIO inputs and observes outputs.
func TestGPIOThroughRuntime(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`GPIO#(8) gp(); assign gp.out = {gp.in[3:0], gp.in[7:4]};`)
	r.World().DriveGPIO("main.gp", 0xa5)
	r.RunTicks(2)
	if got := r.World().GPIO("main.gp"); got != 0x5a {
		t.Fatalf("gpio swap=%#x, want 0x5a", got)
	}
}

// TestResetComponentThroughRuntime uses Reset to clear a counter.
func TestResetComponentThroughRuntime(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`
Reset rst();
reg [7:0] n = 0;
always @(posedge clk.val)
  if (rst.val) n <= 0;
  else n <= n + 1;
assign led.val = n;
`)
	r.RunTicks(5)
	if got := r.World().Led("main.led"); got == 0 {
		t.Fatal("counter stuck")
	}
	r.World().SetReset("main.rst", true)
	r.RunTicks(3)
	if got := r.World().Led("main.led"); got != 0 {
		t.Fatalf("reset ignored: %d", got)
	}
	r.World().SetReset("main.rst", false)
	r.RunTicks(3)
	if got := r.World().Led("main.led"); got == 0 {
		t.Fatal("counter did not resume")
	}
}

// TestMonitorThroughRuntime checks $monitor re-display semantics.
func TestMonitorThroughRuntime(t *testing.T) {
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: Features{DisableJIT: true}})
	r.MustEval(`
reg [3:0] x = 0;
initial $monitor("x=%d", x);
always @(posedge clk.val) if (x < 3) x <= x + 1;
`)
	r.RunTicks(8)
	out := view.Output()
	for _, want := range []string{"x=0\n", "x=1\n", "x=2\n", "x=3\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("monitor missing %q in %q", want, out)
		}
	}
	// x stops changing; no further lines.
	if strings.Count(out, "x=3") != 1 {
		t.Fatalf("monitor repeated without change: %q", out)
	}
}

// TestWriteTask checks $write concatenation (no newline).
func TestWriteTask(t *testing.T) {
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: Features{DisableJIT: true}})
	r.MustEval(`
reg once = 0;
always @(posedge clk.val) if (!once) begin
  once <= 1;
  $write("a");
  $write("b");
  $display("c");
end
`)
	r.RunTicks(3)
	if !strings.Contains(view.Output(), "abc\n") {
		t.Fatalf("write/display composition wrong: %q", view.Output())
	}
}

// TestIncrementalEvalSequence grows a program across several evals, with
// engines migrating between each (the REPL usage pattern).
func TestIncrementalEvalSequence(t *testing.T) {
	r := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	steps := []string{
		`reg [7:0] a = 0;`,
		`always @(posedge clk.val) a <= a + 1;`,
		`reg [7:0] b = 100;`,
		`always @(posedge clk.val) b <= b - 1;`,
		`assign led.val = a + b;`,
	}
	for i, src := range steps {
		if err := r.Eval(src); err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
		r.RunTicks(20)
	}
	// From the moment both always blocks exist, a+b is invariant: a
	// counts up exactly as fast as b counts down. Any engine rebuild
	// that lost state would break it.
	sum := r.World().Led("main.led")
	if sum == 0 {
		t.Fatal("led never driven")
	}
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("no open loop after eval sequence: %v", r.Phase())
	}
	for i := 0; i < 5; i++ {
		r.RunTicks(30)
		if got := r.World().Led("main.led"); got != sum {
			t.Fatalf("a+b invariant broken: %d -> %d", sum, got)
		}
	}
}

// TestProgramSourceEchoesEvals verifies :program's data source.
func TestProgramSourceEchoesEvals(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`module Helper(input wire x, output wire y); assign y = !x; endmodule`)
	r.MustEval(`wire p, q; Helper h(.x(p), .y(q));`)
	src := r.ProgramSource()
	for _, want := range []string{"module Helper", "Helper h(", "root module items"} {
		if !strings.Contains(src, want) {
			t.Fatalf("program source missing %q:\n%s", want, src)
		}
	}
}
