package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
)

// persistTestOptions builds Options for a persisted runtime: fast
// toolchain, buffered view, open loop disabled (open-loop burst sizing
// adapts to wall-clock time, so exact step-for-step replay is only
// guaranteed through the lock-step phases; see replay_test.go for the
// same exclusion).
func persistTestOptions(dir string, par int, inj *fault.Injector) (Options, *BufView) {
	view := &BufView{Quiet: true}
	dev := fpga.NewCycloneV()
	return Options{
		Device:      dev,
		Toolchain:   fastToolchain(dev),
		View:        view,
		Parallelism: par,
		Injector:    inj,
		Features:    Features{DisableOpenLoop: true},
		Persist:     &PersistOptions{Dir: dir, EverySteps: 64, SyncEveryRecord: true},
	}, view
}

// persistScript drives a deterministic session with display output,
// inputs, and a mid-run eval. Each op is applied through the same
// helper the recovery continuation uses, so reference and recovered
// runs are byte-comparable.
const persistProgA = `
reg [7:0] n = 0;
always @(posedge clk.val) begin
  n <= n + 1;
  if (n % 16 == 0) $display("n=%d pad=%d", n, pad.val);
end
assign led.val = n;`

const persistProgB = `
reg [7:0] m = 0;
always @(posedge clk.val) begin
  m <= m + 3;
  if (m % 32 == 1) $display("m=%d", m);
end`

type persistOp struct {
	kind  string // "eval", "pad", "ticks"
	src   string
	value uint64
	ticks uint64
}

func persistScriptOps() []persistOp {
	return []persistOp{
		{kind: "eval", src: DefaultPrelude},
		{kind: "eval", src: persistProgA},
		{kind: "ticks", ticks: 40},
		{kind: "pad", value: 5},
		{kind: "ticks", ticks: 60},
		{kind: "eval", src: persistProgB},
		{kind: "ticks", ticks: 50},
		{kind: "pad", value: 2},
		{kind: "ticks", ticks: 70},
	}
}

func applyPersistOp(r *Runtime, op persistOp) error {
	switch op.kind {
	case "eval":
		return r.Eval(op.src)
	case "pad":
		r.World().PressPad("main.pad", op.value)
		return nil
	case "ticks":
		r.RunTicks(op.ticks)
		return nil
	}
	return fmt.Errorf("unknown op %q", op.kind)
}

// copyDir snapshots a persistence directory (the moment of a simulated
// kill: everything durable survives, nothing else does).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts, view := persistTestOptions(dir, 1, nil)
	r, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh dir reported recovery")
	}
	r.MustEval(DefaultPrelude)
	r.MustEval(persistProgA)
	r.World().PressPad("main.pad", 3)
	r.RunTicks(200) // crosses the 64-step checkpoint cadence
	st := r.Stats()
	if !st.Persist.Enabled || st.Persist.Checkpoints == 0 {
		t.Fatalf("no checkpoints written: %+v", st.Persist)
	}
	if st.Persist.Records == 0 || st.Persist.JournalBytes == 0 {
		t.Fatalf("journal not populated: %+v", st.Persist)
	}
	wantSteps, wantLed, wantOut := r.Steps(), r.World().Led("main.led"), view.Output()
	if wantOut == "" {
		t.Fatal("reference run produced no output")
	}
	if err := r.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	// A new process over the same directory resumes exactly.
	opts2, view2 := persistTestOptions(dir, 1, nil)
	r2, info2, err := Open(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.ClosePersistence()
	if !info2.Recovered {
		t.Fatal("recovery not detected")
	}
	if r2.Steps() != wantSteps {
		t.Fatalf("resumed at step %d, want %d", r2.Steps(), wantSteps)
	}
	if got := r2.World().Led("main.led"); got != wantLed {
		t.Fatalf("led after recovery = %d, want %d", got, wantLed)
	}
	if got := r2.World().Pad("main.pad"); got != 3 {
		t.Fatalf("pad state lost across recovery: %d", got)
	}
	// The recovered output stream continues the original's: checkpoint
	// offset + replayed bytes reconstruct a prefix of the reference.
	rebuilt := wantOut[:info2.OutputBytesAtCheckpoint] + view2.Output()
	if !strings.HasPrefix(wantOut, rebuilt) {
		t.Fatalf("replay output diverged:\nref  %q\ngot  %q", wantOut, rebuilt)
	}
	// Both continue to the same future.
	r.RunTicks(50)
	r2.RunTicks(50)
	if a, b := r.World().Led("main.led"), r2.World().Led("main.led"); a != b {
		t.Fatalf("post-recovery divergence: led %d vs %d", b, a)
	}
	if view.Output() != wantOut[:info2.OutputBytesAtCheckpoint]+view2.Output() {
		t.Fatalf("post-recovery output diverged")
	}
}

// TestCrashRecoveryAtEveryRecordBoundary is the crash-recovery property
// test: run a scripted session once as reference, snapshotting the
// persistence directory after every journal append (every possible
// kill point on a record boundary); then, for every snapshot, recover
// a fresh process from it, replay, finish the rest of the script, and
// require the full observable output and final state to be
// byte-identical to the reference. Mid-record kills are
// TestCrashRecoveryTornTail's subject.
func TestCrashRecoveryAtEveryRecordBoundary(t *testing.T) {
	configs := []struct {
		name string
		par  int
		inj  func() *fault.Injector
	}{
		{name: "serial", par: 1, inj: func() *fault.Injector { return nil }},
		{name: "parallel", par: 4, inj: func() *fault.Injector { return nil }},
		{name: "faults", par: 1, inj: func() *fault.Injector {
			return fault.New(fault.Config{Seed: 7, BusError: 0.02, MaxBusFaults: 3, CompileTransient: 0.3, MaxCompileFaults: 2})
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			refDir := t.TempDir()
			killRoot := t.TempDir()

			// Reference run: copy the directory at every record boundary
			// (every possible kill point) and note where the script
			// resumes for each — an eval or input record means its op is
			// durable and will be replayed (resume after it); an advance
			// record means a "ticks" op is mid-flight (resume inside it,
			// positionally).
			opts, refView := persistTestOptions(refDir, cfg.par, cfg.inj())
			ops := persistScriptOps()
			var kills []int // kill i -> script op index to resume from
			curOp := 0
			opts.Persist.hookAfterAppend = func(seq uint64, kind byte) {
				resume := curOp
				if kind == recKindEval || kind == recKindInput {
					resume = curOp + 1
				}
				kills = append(kills, resume)
				copyDir(t, refDir, filepath.Join(killRoot, fmt.Sprintf("k%06d", len(kills))))
			}
			ref, info, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			if info.Recovered {
				t.Fatal("fresh dir reported recovery")
			}
			stepsAfter := make([]uint64, len(ops))
			for i, op := range ops {
				curOp = i
				if err := applyPersistOp(ref, op); err != nil {
					t.Fatal(err)
				}
				stepsAfter[i] = ref.Steps()
			}
			ref.ClosePersistence()
			refOut := refView.Output()
			refSteps, refLed := ref.Steps(), ref.World().Led("main.led")
			if len(kills) < 20 {
				t.Fatalf("only %d kill points; journaling is not running", len(kills))
			}

			// Thin the kill set to keep runtime bounded while still
			// covering every op transition: always take boundaries where
			// the op index changes, plus every 17th.
			var take []int
			for i := range kills {
				if i == 0 || i == len(kills)-1 || kills[i] != kills[i-1] || i%17 == 0 {
					take = append(take, i)
				}
			}

			for _, i := range take {
				killDir := filepath.Join(killRoot, fmt.Sprintf("k%06d", i+1))
				opts2, view2 := persistTestOptions(killDir, cfg.par, cfg.inj())
				r2, info2, err := Open(opts2)
				if err != nil {
					t.Fatalf("kill %d: recovery: %v", i, err)
				}
				// Finish the script from the resume index. Ops before it
				// were replayed by Open; a "ticks" op runs positionally to
				// the step count the reference reached after it, so a
				// mid-op resume tops up exactly the missing steps.
				for j := kills[i]; j < len(ops); j++ {
					if ops[j].kind == "ticks" {
						for r2.Steps() < stepsAfter[j] {
							r2.Step()
						}
						continue
					}
					if err := applyPersistOp(r2, ops[j]); err != nil {
						t.Fatalf("kill %d: continue op %d %q: %v", i, j, ops[j].kind, err)
					}
				}
				if r2.Steps() != refSteps {
					t.Fatalf("kill %d: finished at step %d, want %d", i, r2.Steps(), refSteps)
				}
				if got := r2.World().Led("main.led"); got != refLed {
					t.Fatalf("kill %d: led %d, want %d", i, got, refLed)
				}
				got := refOut[:info2.OutputBytesAtCheckpoint] + view2.Output()
				if got != refOut {
					t.Fatalf("kill %d: output not byte-identical\nref %q\ngot %q", i, refOut, got)
				}
				r2.ClosePersistence()
			}
		})
	}
}

// TestCrashRecoveryTornTail kills mid-record: truncate the active
// journal segment at arbitrary byte offsets and require recovery to
// drop the torn tail cleanly and resume from the last whole record.
func TestCrashRecoveryTornTail(t *testing.T) {
	refDir := t.TempDir()
	opts, _ := persistTestOptions(refDir, 1, nil)
	r, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	r.MustEval(DefaultPrelude)
	r.MustEval(persistProgA)
	r.RunTicks(100)
	refSteps := r.Steps()
	r.ClosePersistence()

	// Find the newest journal segment and tear it at several offsets.
	wals, _ := filepath.Glob(filepath.Join(refDir, "wal-*.wal"))
	if len(wals) == 0 {
		t.Fatal("no journal segments")
	}
	active := wals[len(wals)-1]
	whole, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) < 64 {
		t.Fatalf("active segment too small to tear (%d bytes)", len(whole))
	}
	for _, cut := range []int{len(whole) - 1, len(whole) - 7, len(whole) / 2, 3} {
		tornDir := t.TempDir()
		copyDir(t, refDir, tornDir)
		if err := os.WriteFile(filepath.Join(tornDir, filepath.Base(active)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		opts2, _ := persistTestOptions(tornDir, 1, nil)
		r2, info2, err := Open(opts2)
		if err != nil {
			t.Fatalf("cut=%d: recovery: %v", cut, err)
		}
		if !info2.Recovered {
			t.Fatalf("cut=%d: nothing recovered", cut)
		}
		if r2.Steps() > refSteps {
			t.Fatalf("cut=%d: recovered past the reference (%d > %d)", cut, r2.Steps(), refSteps)
		}
		// The torn runtime keeps working: it can still run and obey the
		// program's invariant led == step count low byte.
		r2.RunTicks(10)
		want := ((r2.Steps() + 1) / 2) & 0xff
		if got := r2.World().Led("main.led"); got != want {
			t.Fatalf("cut=%d: invariant broken after torn-tail recovery: led=%d want=%d", cut, got, want)
		}
		r2.ClosePersistence()
	}
}

// TestCrashRecoveryCorruptCheckpointFallsBack corrupts the newest
// checkpoint file and requires recovery to fall back to the previous
// one, replay through the gap, and reach the same state.
func TestCrashRecoveryCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts, _ := persistTestOptions(dir, 1, nil)
	opts.Persist.EverySteps = 32 // several checkpoints over the run
	r, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	r.MustEval(DefaultPrelude)
	r.MustEval(persistProgA)
	r.RunTicks(120)
	refSteps, refLed := r.Steps(), r.World().Led("main.led")
	r.ClosePersistence()

	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) < 2 {
		t.Fatalf("need ≥2 checkpoints, have %v", ckpts)
	}
	newest := ckpts[len(ckpts)-1]
	data, _ := os.ReadFile(newest)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	opts2, _ := persistTestOptions(dir, 1, nil)
	r2, info2, err := Open(opts2)
	if err != nil {
		t.Fatalf("recovery with corrupt newest checkpoint: %v", err)
	}
	defer r2.ClosePersistence()
	if len(info2.CorruptCheckpoints) != 1 {
		t.Fatalf("corrupt checkpoint not reported: %+v", info2)
	}
	if r2.Steps() != refSteps {
		t.Fatalf("fallback recovery at step %d, want %d", r2.Steps(), refSteps)
	}
	if got := r2.World().Led("main.led"); got != refLed {
		t.Fatalf("fallback led %d, want %d", got, refLed)
	}
}

// TestOpenRefusesUnrecoverableDir: if every retained checkpoint is
// corrupt and the journal cannot replay from genesis, Open must fail
// loudly instead of silently starting fresh.
func TestOpenRefusesUnrecoverableDir(t *testing.T) {
	dir := t.TempDir()
	opts, _ := persistTestOptions(dir, 1, nil)
	opts.Persist.EverySteps = 16
	r, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	r.MustEval(DefaultPrelude)
	r.MustEval(persistProgA)
	r.RunTicks(200) // enough checkpoints that genesis segments are pruned
	r.ClosePersistence()

	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) < 2 {
		t.Fatalf("want pruned retention set, have %v", ckpts)
	}
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if g, _ := filepath.Glob(filepath.Join(dir, "wal-000000.wal")); len(g) != 0 {
		t.Fatalf("genesis segment still retained (%v); test needs pruning to have occurred", wals)
	}
	for _, c := range ckpts {
		if err := os.WriteFile(c, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	opts2, _ := persistTestOptions(dir, 1, nil)
	if _, _, err := Open(opts2); err == nil {
		t.Fatal("Open accepted an unrecoverable directory")
	}
}

func TestOpenRequiresPersistDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Persist.Dir should fail")
	}
}
