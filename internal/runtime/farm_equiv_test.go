package runtime

import (
	"strings"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/toolchain"
)

// farmProg is the invariant-15 workload: four distinct counters so the
// farm has four different netlist fingerprints to route, steal, and
// replicate. CtrA executes $finish, so every arm runs to the same
// functional endpoint; the others free-run until it does.
const farmProg = `
module CtrA(input wire c);
  reg [7:0] n = 0;
  always @(posedge c) begin
    n <= n + 1;
    $display("a=%d", n);
    if (n == 8'd40) $finish;
  end
endmodule
module CtrB(input wire c);
  reg [9:0] n = 0;
  always @(posedge c) begin
    n <= n + 2;
    $display("b=%d", n);
  end
endmodule
module CtrC(input wire c);
  reg [11:0] n = 0;
  always @(posedge c) begin
    n <= n + 3;
    $display("c=%d", n);
  end
endmodule
module CtrD(input wire c);
  reg [13:0] n = 0;
  always @(posedge c) begin
    n <= n + 5;
    $display("d=%d", n);
  end
endmodule
CtrA a(.c(clk.val));
CtrB b(.c(clk.val));
CtrC cc(.c(clk.val));
CtrD d(.c(clk.val));
`

// farmArm is one run's comparable observables for invariant 15.
type farmArm struct {
	out    string
	vtime  uint64
	phases string
	stats  Stats
}

// runFarmArm executes farmProg to $finish with the full JIT enabled.
// With fo == nil compiles run on the in-process local backend; otherwise
// the runtime installs a compile farm with those options. DisableInline
// keeps the four counters separate engines, so the farm sees four
// distinct flows instead of one merged root.
func runFarmArm(t *testing.T, fo *toolchain.FarmOptions, par int) farmArm {
	t.Helper()
	view := &BufView{Quiet: true}
	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	opts := Options{
		View:        view,
		Parallelism: par,
		Device:      dev,
		Toolchain:   toolchain.New(dev, tco),
		Features:    Features{DisableInline: true},
		Farm:        fo,
	}
	r := New(opts)
	if err := r.Eval(DefaultPrelude); err != nil {
		t.Fatal(err)
	}
	r.MustEval(farmProg)

	phases := []string{r.phase.String()}
	const maxSteps = 20000
	for i := 0; i < maxSteps && !r.Finished(); i++ {
		r.Step()
		if p := r.phase.String(); p != phases[len(phases)-1] {
			phases = append(phases, p)
		}
	}
	if !r.Finished() {
		t.Fatalf("arm never finished (par=%d farm=%+v)", par, fo)
	}
	r.flushDisplays()
	return farmArm{
		out:    view.Output(),
		vtime:  r.vclk.Now(),
		phases: strings.Join(phases, ">"),
		stats:  r.Stats(),
	}
}

// mustMatch asserts two arms agree on the invariant-15 triple: display
// output, final virtual clock, and phase trajectory.
func mustMatch(t *testing.T, name string, got, want farmArm) {
	t.Helper()
	if got.out != want.out {
		t.Fatalf("%s: output diverged\ngot:\n%s\nwant:\n%s", name, got.out, want.out)
	}
	if got.vtime != want.vtime {
		t.Fatalf("%s: vtime diverged: got %d want %d", name, got.vtime, want.vtime)
	}
	if got.phases != want.phases {
		t.Fatalf("%s: phases diverged:\ngot:  %s\nwant: %s", name, got.phases, want.phases)
	}
}

// TestFarmInvariant15 is ROADMAP invariant 15: a run whose compiles are
// served by the sharded farm is byte-identical — output, final virtual
// clock, phase trajectory — to the same run on the in-process local
// backend, serially and in parallel, including under seeded shard
// outages and queue-pressure job steals. The farm may change where a
// flow runs, never what the program observes.
func TestFarmInvariant15(t *testing.T) {
	localSerial := runFarmArm(t, nil, 1)
	localPar := runFarmArm(t, nil, 4)

	// Plain farm, serial + replay + parallel.
	plain := toolchain.FarmOptions{Workers: 2}
	farmSerial := runFarmArm(t, &plain, 1)
	farmReplay := runFarmArm(t, &plain, 1)
	farmPar := runFarmArm(t, &plain, 4)

	mustMatch(t, "farm serial vs local serial", farmSerial, localSerial)
	mustMatch(t, "farm parallel vs local parallel", farmPar, localPar)
	mustMatch(t, "farm replay", farmReplay, farmSerial)
	if farmSerial.stats.Farm.Jobs < 4 || farmSerial.stats.Farm.Routed < 4 {
		t.Fatalf("farm arm did not route the four flows: %+v", farmSerial.stats.Farm)
	}

	// Queue pressure: depth-1 queues force a steal when two flows home
	// to the same shard, which moves work off its rendezvous home
	// without changing any bill (the steal handoff lands on the farm's
	// message meter, never the runtime clock). Five shards keep total
	// capacity above the in-flight flow count, so pressure steals but
	// never sheds — a shed resubmits later and legitimately shifts
	// promotion timing, which is the overload path, not this invariant.
	steal := toolchain.FarmOptions{Workers: 5, QueueDepth: 1}
	stealArm := runFarmArm(t, &steal, 1)
	mustMatch(t, "steal arm vs local serial", stealArm, localSerial)
	if stealArm.stats.Farm.Stolen == 0 {
		t.Fatalf("steal arm never stole: %+v", stealArm.stats.Farm)
	}

	// Seeded shard outages: homes go dark on a deterministic
	// route-ordinal schedule, flows reroute to the next shard in
	// rendezvous order, and the triple still matches the local run.
	outages := toolchain.SeededOutages(0xcab1e, 3, 4, 2)
	down := toolchain.FarmOptions{Workers: 3, Outages: outages}
	downArm := runFarmArm(t, &down, 1)
	downReplay := runFarmArm(t, &down, 1)
	mustMatch(t, "outage arm vs local serial", downArm, localSerial)
	mustMatch(t, "outage replay", downReplay, downArm)
	if downArm.stats.Farm.Rerouted == 0 {
		t.Fatalf("outage arm never rerouted: %+v outages=%+v", downArm.stats.Farm, outages)
	}
}

// TestFarmUnavailableResubmitsUntilShardReturns pins the degradation
// path invariant 15 deliberately excludes from the byte-identical
// triple: when every shard is down at route time the flow fails with
// the typed ErrShardUnavailable, the scheduler resubmits at the next
// step boundary, and the run still reaches the same functional endpoint
// with the same output once the shard's outage window closes — late,
// never wrong.
func TestFarmUnavailableResubmitsUntilShardReturns(t *testing.T) {
	local := runFarmArm(t, nil, 1)
	down := toolchain.FarmOptions{
		Workers: 1,
		Outages: []toolchain.ShardOutage{{Shard: 0, FromRoute: 0, ToRoute: 3}},
	}
	arm := runFarmArm(t, &down, 1)
	if arm.out != local.out {
		t.Fatalf("outage recovery changed output\ngot:\n%s\nwant:\n%s", arm.out, local.out)
	}
	fs := arm.stats.Farm
	if fs.Unavailable == 0 {
		t.Fatalf("single-shard outage never surfaced ErrShardUnavailable: %+v", fs)
	}
	if fs.Routed <= fs.Unavailable {
		t.Fatalf("no flow ever landed after the outage window: %+v", fs)
	}
	if arm.stats.Compile.CacheMisses == 0 {
		t.Fatalf("no compile completed after recovery: %+v", arm.stats.Compile)
	}
}
