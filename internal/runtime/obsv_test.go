package runtime

import (
	"testing"
	"time"

	"cascade/internal/fault"
	"cascade/internal/obsv"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
	"cascade/internal/vclock"
)

// TestOpenLoopDeterministicWithPinnedWall proves the determinism rule the
// observability layer is built around: every host-side wall-clock read
// (open-loop burst sizing is the one that influences scheduling) goes
// through Observer.WallNow, so pinning the wall clock makes two runs of
// the same program produce byte-identical virtual timelines — wall time
// adapts *how often* control returns, never *what* gets billed.
func TestOpenLoopDeterministicWithPinnedWall(t *testing.T) {
	pinned := time.Unix(1_700_000_000, 0)
	run := func() (Stats, string) {
		obs := obsv.New(obsv.Options{WallClock: func() time.Time { return pinned }})
		r := newTestRuntime(t, Options{
			Observer:         obs,
			Parallelism:      2,
			OpenLoopTargetPs: 10 * vclock.Us,
		})
		r.MustEval(figure3)
		if !r.WaitForPhase(PhaseOpenLoop, 20000) {
			t.Fatalf("never reached open loop: %v", r.Phase())
		}
		r.RunTicks(5000)
		st := r.Stats()
		return st, st.Summary()
	}
	st1, sum1 := run()
	st2, sum2 := run()
	if sum1 != sum2 {
		t.Errorf("summaries diverge under a pinned wall clock:\n%s\n%s", sum1, sum2)
	}
	if st1.Time != st2.Time {
		t.Errorf("virtual-time breakdowns diverge:\n%+v\n%+v", st1.Time, st2.Time)
	}
	if st1.Steps != st2.Steps || st1.Ticks != st2.Ticks {
		t.Errorf("step counts diverge: steps %d/%d ticks %d/%d",
			st1.Steps, st2.Steps, st1.Ticks, st2.Ticks)
	}
	if st1.Phase != PhaseOpenLoop {
		t.Errorf("expected to sample in open loop, got %v", st1.Phase)
	}
}

// TestObserverTracesJITLifecycle runs the paper's Figure 3 program to
// open loop and checks the trace tells the JIT story end to end: eval,
// elaboration, a compile submitted and resolved, the bitstream landing,
// the hot swap — each hot swap preceded by its own submit and ready
// events — and the phase gauge tracking the Figure 9 climb.
func TestObserverTracesJITLifecycle(t *testing.T) {
	obs := obsv.New(obsv.Options{})
	r := newTestRuntime(t, Options{Observer: obs, OpenLoopTargetPs: 10 * vclock.Us})
	r.MustEval(figure3)
	if !r.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("never reached open loop: %v", r.Phase())
	}
	evs := obs.Trace(0)
	seen := map[obsv.EventKind]bool{}
	for _, ev := range evs {
		seen[ev.Kind] = true
	}
	for _, want := range []obsv.EventKind{
		obsv.EvEval, obsv.EvElaborate, obsv.EvCompileSubmit,
		obsv.EvBitstreamReady, obsv.EvHotSwap, obsv.EvPhase,
	} {
		if !seen[want] {
			t.Errorf("trace is missing a %v event", want)
		}
	}
	// Every hot swap must be preceded by a compile-submit and a
	// bitstream-ready for the same path: the trace reconstructs the
	// sw→hw migration sequence.
	for i, ev := range evs {
		if ev.Kind != obsv.EvHotSwap {
			continue
		}
		submitted, ready := false, false
		for _, prev := range evs[:i] {
			if prev.Path != ev.Path {
				continue
			}
			switch prev.Kind {
			case obsv.EvCompileSubmit:
				submitted = true
			case obsv.EvBitstreamReady:
				ready = true
			}
		}
		if !submitted || !ready {
			t.Errorf("hot swap of %s lacks its prelude: submit=%v ready=%v",
				ev.Path, submitted, ready)
		}
	}
	if obs.Promotions.Value() == 0 {
		t.Error("promotion counter never incremented")
	}
	if obs.CompileLatency.Count() == 0 {
		t.Error("compile-latency histogram is empty")
	}
	if obs.BatchMakespan.Count() == 0 {
		t.Error("batch-makespan histogram is empty")
	}
	if got := obs.Phase.Value(); got != int64(PhaseOpenLoop) {
		t.Errorf("phase gauge = %d, want %d", got, int64(PhaseOpenLoop))
	}
	if got := obs.AreaLEs.Value(); got != int64(r.AreaLEs()) {
		t.Errorf("area gauge = %d, want %d", got, r.AreaLEs())
	}
}

// TestStatsSummaryGolden locks the exact Summary rendering, base line and
// every optional segment: faults, remote (configured address, the
// "(retired)" banked-counters case, and the local-only case that must
// NOT render one), and persistence with and without an error.
func TestStatsSummaryGolden(t *testing.T) {
	base := Stats{
		Phase: PhaseOpenLoop,
		Steps: 10,
		Ticks: 5,
		Time: vclock.Breakdown{
			NowPs:      2 * vclock.S,
			ComputePs:  1 * vclock.S,
			CommPs:     500 * vclock.Ms,
			OverheadPs: 250 * vclock.Ms,
			IdlePs:     250 * vclock.Ms,
			Messages:   42,
		},
		AreaLEs:         1234,
		Parallelism:     4,
		PendingCompiles: 1,
		Compile: toolchain.Stats{
			CacheHits:   2,
			CacheMisses: 3,
			Joined:      1,
			Canceled:    0,
			Retried:     4,
		},
	}
	const baseLine = "phase=hardware(open-loop) steps=10 ticks=5 vtime=2.000s compute=1.000s" +
		" comm=0.500s overhead=0.250s idle=0.250s messages=42 area=1234 LEs lanes=4" +
		" compiles[pending=1 hits=2 misses=3 joined=1 canceled=0 retried=4]"

	cases := []struct {
		name   string
		mutate func(*Stats)
		want   string
	}{
		{"base", func(*Stats) {}, baseLine},
		{"tenant", func(s *Stats) {
			s.Tenant = "a"
			s.RegionLEs = 5000
		}, baseLine + " tenant[a region=5000LEs]"},
		{"faults", func(s *Stats) {
			s.Faults = fault.Stats{Injected: 3, Transient: 2, Permanent: 1}
			s.HWFaults = 2
			s.Evictions = 1
		}, baseLine + " faults[injected=3 transient=2 permanent=1 hw=2 evictions=1]"},
		{"remote-configured", func(s *Stats) {
			s.Remote = "127.0.0.1:9925"
			s.Xport = transport.Stats{RoundTrips: 10, BytesOut: 100, BytesIn: 200, Drops: 1, Retries: 2}
		}, baseLine + " remote[127.0.0.1:9925 roundtrips=10 out=100B in=200B drops=1 retries=2]"},
		{"remote-retired", func(s *Stats) {
			// No configured address, but wire traffic was banked from
			// retired clients: the lifetime totals must still render.
			s.Xport = transport.Stats{RoundTrips: 7, BytesOut: 64, BytesIn: 128, Retries: 1}
		}, baseLine + " remote[(retired) roundtrips=7 out=64B in=128B drops=0 retries=1]"},
		{"local-only", func(s *Stats) {
			// Local clients meter fast-path round-trips with zero wire
			// bytes; that must not fabricate a remote segment.
			s.Xport = transport.Stats{RoundTrips: 999}
		}, baseLine},
		{"supervise", func(s *Stats) {
			s.Supervise = supervise.Stats{Enabled: true, State: "half-open",
				Probes: 9, ProbeFailures: 3, Trips: 2, Failovers: 2, Rehosts: 1}
		}, baseLine + " supervise[state=half-open probes=9 fails=3 trips=2 failovers=2 rehosts=1]"},
		{"persist", func(s *Stats) {
			s.Persist = PersistStats{
				Enabled:         true,
				Records:         12,
				JournalBytes:    3456,
				Checkpoints:     2,
				CheckpointBytes: 789,
				CheckpointNs:    5_000_000,
				ReplayedRecords: 3,
			}
		}, baseLine + " persist[records=12 journal=3456B ckpts=2 ckptBytes=789 ckptMs=5 replayed=3]"},
		{"persist-error", func(s *Stats) {
			s.Persist = PersistStats{Enabled: true, Err: "disk full"}
		}, baseLine + " persist[records=0 journal=0B ckpts=0 ckptBytes=0 ckptMs=0 replayed=0] persist-error=disk full"},
		{"everything", func(s *Stats) {
			s.Tenant = "a"
			s.RegionLEs = 5000
			s.Faults = fault.Stats{Injected: 3, Transient: 2, Permanent: 1}
			s.HWFaults = 2
			s.Evictions = 1
			s.Remote = "127.0.0.1:9925"
			s.Xport = transport.Stats{RoundTrips: 10, BytesOut: 100, BytesIn: 200, Drops: 1, Retries: 2}
			s.Supervise = supervise.Stats{Enabled: true, State: "closed",
				Probes: 50, ProbeFailures: 4, Trips: 1, Failovers: 1, Rehosts: 1}
			s.Persist = PersistStats{Enabled: true, Records: 12, JournalBytes: 3456,
				Checkpoints: 2, CheckpointBytes: 789, CheckpointNs: 5_000_000, ReplayedRecords: 3}
		}, baseLine +
			" tenant[a region=5000LEs]" +
			" faults[injected=3 transient=2 permanent=1 hw=2 evictions=1]" +
			" remote[127.0.0.1:9925 roundtrips=10 out=100B in=200B drops=1 retries=2]" +
			" supervise[state=closed probes=50 fails=4 trips=1 failovers=1 rehosts=1]" +
			" persist[records=12 journal=3456B ckpts=2 ckptBytes=789 ckptMs=5 replayed=3]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base
			tc.mutate(&st)
			if got := st.Summary(); got != tc.want {
				t.Errorf("Summary mismatch:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}
