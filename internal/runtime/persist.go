package runtime

import (
	"fmt"
	"sync"

	"cascade/internal/obsv"
	"cascade/internal/persist"
)

// Crash-safe persistence. A persisted runtime writes two kinds of state
// under its directory: periodic checkpoints (full snapshots in the
// checksummed container format, written atomically) and a write-ahead
// side-effect journal recording everything that changes execution
// between checkpoints — board inputs, eval'd source fragments, and
// scheduler advances. Because the scheduler is deterministic given those
// inputs (the paper's event-order-independence invariant is what makes
// "replay the journal" a correct recovery strategy at all), recovery is
// exact: load the newest checkpoint that verifies, replay the journal
// suffix, and the runtime reaches the same observable state — same
// program, same engine state, same LEDs, same display-output stream —
// the crashed process had at its last durable record.

// Journal record kinds.
const (
	// recKindInput is a host-driven board input ("kind path value"),
	// appended write-ahead: the record is durable before the input is
	// applied, so a recovered process never shows an input's effect
	// without also replaying its cause.
	recKindInput byte = 1
	// recKindEval is a source fragment committed into the running
	// program, appended after validation and before the commit.
	recKindEval byte = 2
	// recKindAdvance marks a completed scheduler step or open-loop burst
	// ("steps vnow"), appended after the step's effects are observable.
	recKindAdvance byte = 3
)

// PersistOptions configures crash-safe persistence for a runtime opened
// with Open (facade: cascade.Open + cascade.WithPersistence).
type PersistOptions struct {
	// Dir is the persistence directory (created if missing): checkpoint
	// files plus write-ahead journal segments.
	Dir string

	// EverySteps takes an automatic checkpoint each time this many
	// scheduler steps complete. When both cadences are zero, Open
	// defaults to every 4096 steps.
	EverySteps uint64

	// EveryVirtualPs additionally checkpoints when this much virtual
	// time has elapsed since the last checkpoint (0 disables).
	EveryVirtualPs uint64

	// Keep is how many checkpoints (and the journal segments needed to
	// roll them forward) retention preserves; minimum and default 2, so
	// a corrupted newest checkpoint always has a fallback.
	Keep int

	// SyncEveryRecord fsyncs the journal after every record, including
	// per-step advances. Off by default: inputs, evals, and checkpoints
	// are always synced, while advance records between them ride on the
	// next sync (a crash then costs at most the unsynced tail of steps,
	// never consistency).
	SyncEveryRecord bool

	// hookAfterAppend, set only by tests, observes every journal append
	// (after any fsync) with the record's sequence number and kind —
	// the crash-recovery property test copies the directory here to
	// simulate a kill at every record boundary.
	hookAfterAppend func(seq uint64, kind byte)
}

// PersistStats counts the persistence layer's work; zero-valued (with
// Enabled false) on runtimes without persistence.
type PersistStats struct {
	Enabled bool
	Dir     string
	// Records counts journal records appended by this process;
	// JournalBytes is the active segment's current size.
	Records      uint64
	JournalBytes int64
	// Checkpoints counts checkpoints written by this process;
	// CheckpointBytes is the size of the newest one; CheckpointNs is
	// cumulative wall-clock time spent encoding and writing them.
	Checkpoints     int
	CheckpointBytes int64
	CheckpointNs    int64
	// ReplayedRecords counts journal records replayed at Open.
	ReplayedRecords int
	// Err carries the first disk error, after which the journal stops
	// accepting records (execution continues without durability).
	Err string
}

// RecoveryInfo describes what Open found and replayed.
type RecoveryInfo struct {
	// Recovered is true when the directory held state (a checkpoint, a
	// journal, or both) that was restored into the runtime; callers
	// must then skip their usual initial Eval (the prelude and program
	// are already part of the recovered state).
	Recovered bool
	// CheckpointSeq is the journal position the restored checkpoint
	// covered (0 when recovery replayed from genesis).
	CheckpointSeq uint64
	// LastSeq is the journal position after replay; appends continue
	// from here.
	LastSeq uint64
	// Replay counters, by record kind.
	ReplayedRecords int
	ReplayedEvals   int
	ReplayedInputs  int
	// ResumedSteps is the scheduler position after replay.
	ResumedSteps uint64
	// OutputBytesAtCheckpoint is how many display-output bytes the
	// crashed process had flushed when the restored checkpoint was
	// taken: the recovered process's output stream continues the
	// original's from exactly that offset.
	OutputBytesAtCheckpoint uint64
	// CorruptCheckpoints lists checkpoint files that failed
	// verification and were skipped in favor of an older one.
	CorruptCheckpoints []string
}

// persister is the runtime's attachment to a persist.Store. Its mutex
// serializes journal appends from the controller (advances, evals)
// against input recordings from user goroutines, and covers the store's
// segment rotation during checkpoints.
type persister struct {
	opts  PersistOptions
	store *persist.Store

	mu  sync.Mutex
	seq uint64 // last assigned journal sequence number
	err error  // sticky first disk error

	lastCkptSteps uint64
	lastCkptPs    uint64

	records         uint64
	checkpoints     int
	checkpointBytes int64
	checkpointNs    int64
	replayed        int
	errReported     bool
}

// append assigns the next sequence number and journals one record.
func (p *persister) append(kind byte, data []byte, sync bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	p.seq++
	if err := p.store.Append(p.seq, kind, data); err != nil {
		p.err = err
		return err
	}
	if sync || p.opts.SyncEveryRecord {
		if err := p.store.Sync(); err != nil {
			p.err = err
			return err
		}
	}
	p.records++
	if p.opts.hookAfterAppend != nil {
		p.opts.hookAfterAppend(p.seq, kind)
	}
	return nil
}

// Open creates a runtime with crash-safe persistence rooted at
// opts.Persist.Dir, recovering whatever state a previous process left
// there: the newest checkpoint that verifies (corrupt ones fall back to
// older ones), rolled forward by replaying the journal suffix. Torn
// journal tails are truncated at the last record boundary; recovery is
// exact up to the last durable record. When info.Recovered is true the
// returned runtime is already mid-execution — do not re-Eval the
// prelude or program.
func Open(opts Options) (*Runtime, *RecoveryInfo, error) {
	if opts.Persist == nil || opts.Persist.Dir == "" {
		return nil, nil, fmt.Errorf("runtime: Open requires Options.Persist.Dir (use New for a runtime without persistence)")
	}
	po := *opts.Persist
	if po.Keep < 2 {
		po.Keep = 2
	}
	if po.EverySteps == 0 && po.EveryVirtualPs == 0 {
		po.EverySteps = 4096
	}
	r := New(opts)

	store, st, err := persist.Open(po.Dir, decodeCheckpointSeq)
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: open persistence dir: %w", err)
	}
	info := &RecoveryInfo{
		CheckpointSeq:      st.CheckpointSeq,
		CorruptCheckpoints: st.CorruptCheckpoints,
	}
	// Every retained checkpoint corrupt with no journal to replay from
	// genesis is data loss, not a fresh start: refuse rather than
	// silently restart the program from nothing.
	if st.Empty() && len(st.CorruptCheckpoints) > 0 {
		store.Close()
		return nil, nil, fmt.Errorf("runtime: persistence dir %s is unrecoverable: all checkpoints corrupt (%v) and no replayable journal",
			po.Dir, st.CorruptCheckpoints)
	}

	lastSeq := st.CheckpointSeq
	if !st.Empty() {
		info.Recovered = true
		if st.Checkpoint != nil {
			snap, outBytes, err := decodeCheckpoint(st.Checkpoint)
			if err != nil {
				store.Close()
				return nil, nil, fmt.Errorf("runtime: checkpoint: %w", err)
			}
			if err := r.Restore(snap); err != nil {
				store.Close()
				return nil, nil, fmt.Errorf("runtime: restore checkpoint: %w", err)
			}
			r.mu.Lock()
			// Restoring re-ran the program's initial blocks; their
			// display lines are part of the output the original process
			// already flushed (counted in outBytes), not new output.
			r.displayQ = nil
			r.outBytes = outBytes
			r.mu.Unlock()
			info.OutputBytesAtCheckpoint = outBytes
		}
		for _, rec := range st.Records {
			lastSeq = rec.Seq
			switch rec.Kind {
			case recKindEval:
				if err := r.Eval(string(rec.Data)); err != nil {
					store.Close()
					return nil, nil, fmt.Errorf("runtime: replay eval (journal seq %d): %w", rec.Seq, err)
				}
				info.ReplayedEvals++
			case recKindInput:
				var kind, path string
				var v uint64
				if _, err := fmt.Sscanf(string(rec.Data), "%s %s %d", &kind, &path, &v); err != nil {
					store.Close()
					return nil, nil, fmt.Errorf("runtime: replay input (journal seq %d): %w", rec.Seq, err)
				}
				if err := r.World().ApplyInput(kind, path, v); err != nil {
					store.Close()
					return nil, nil, fmt.Errorf("runtime: replay input (journal seq %d): %w", rec.Seq, err)
				}
				info.ReplayedInputs++
			case recKindAdvance:
				var target, vnow uint64
				if _, err := fmt.Sscanf(string(rec.Data), "%d %d", &target, &vnow); err != nil {
					store.Close()
					return nil, nil, fmt.Errorf("runtime: replay advance (journal seq %d): %w", rec.Seq, err)
				}
				for r.Steps() < target && !r.Finished() {
					r.Step()
				}
				r.syncVirtualTime(vnow)
			default:
				store.Close()
				return nil, nil, fmt.Errorf("runtime: unknown journal record kind %d (journal seq %d)", rec.Kind, rec.Seq)
			}
			info.ReplayedRecords++
		}
	}
	info.ResumedSteps = r.Steps()
	info.LastSeq = lastSeq
	if info.Recovered {
		r.obs().Emit(obsv.EvRecovery, "", fmt.Sprintf("checkpoint seq=%d replayed=%d records resumed steps=%d",
			st.CheckpointSeq, info.ReplayedRecords, r.Steps()))
	}

	p := &persister{
		opts:          po,
		store:         store,
		seq:           lastSeq,
		lastCkptSteps: r.Steps(),
		lastCkptPs:    r.VirtualNow(),
		replayed:      info.ReplayedRecords,
	}
	r.mu.Lock()
	r.pers = p
	r.mu.Unlock()
	// From here on, every board input is journaled write-ahead. Replay
	// above used ApplyInput, which bypasses the recorder, so nothing
	// was double-journaled.
	r.World().SetInputRecorder(func(kind, path string, value uint64) {
		if err := p.append(recKindInput, fmt.Appendf(nil, "%s %s %d", kind, path, value), true); err != nil {
			r.reportPersistError(err)
		}
	})
	return r, info, nil
}

// Checkpoint forces a checkpoint now (between steps). The runtime also
// checkpoints automatically on the configured cadence.
func (r *Runtime) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pers == nil {
		return fmt.Errorf("runtime: persistence not enabled")
	}
	return r.checkpointLocked()
}

// ClosePersistence syncs and closes the journal and detaches the input
// recorder; the runtime keeps executing without durability. No-op
// without persistence.
func (r *Runtime) ClosePersistence() error {
	r.mu.Lock()
	p := r.pers
	r.pers = nil
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	r.World().SetInputRecorder(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Close()
}

// PersistDir returns the persistence directory ("" when disabled).
func (r *Runtime) PersistDir() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pers == nil {
		return ""
	}
	return r.pers.opts.Dir
}

// persistAfterStep journals the completed step and services the
// auto-checkpoint cadence. Called at the end of step() with r.mu held.
func (r *Runtime) persistAfterStep() {
	p := r.pers
	if p == nil {
		return
	}
	data := fmt.Appendf(nil, "%d %d", r.steps, r.vclk.Now())
	if err := p.append(recKindAdvance, data, false); err != nil {
		r.reportPersistError(err)
		return
	}
	now := r.vclk.Now()
	due := (p.opts.EverySteps > 0 && r.steps-p.lastCkptSteps >= p.opts.EverySteps) ||
		(p.opts.EveryVirtualPs > 0 && now-p.lastCkptPs >= p.opts.EveryVirtualPs)
	if !due {
		return
	}
	if err := r.checkpointLocked(); err != nil {
		r.reportPersistError(err)
	}
}

// checkpointLocked snapshots the runtime and writes the next durable
// checkpoint, rotating the journal. Callers hold r.mu.
func (r *Runtime) checkpointLocked() error {
	p := r.pers
	// Checkpoint timing reads the observer's wall clock (pinnable in
	// tests); it feeds only stats and metrics, never virtual billing.
	start := r.obs().WallNow()
	// The covered journal position is read before the snapshot: an
	// input racing in between lands in both the snapshot and the replay
	// suffix, and applying it twice is idempotent — the reverse order
	// could lose it entirely.
	p.mu.Lock()
	seqAt := p.seq
	if p.err != nil {
		p.mu.Unlock()
		return p.err
	}
	p.mu.Unlock()
	// Flush queued display output first so the checkpoint's output-byte
	// offset accounts for every line the program has produced up to
	// this step (the queue itself is not checkpointed).
	r.flushDisplays()
	snap := r.snapshotLocked()
	secs := snapshotSections(snap)
	secs = append(secs, persist.Section{
		Name: "journal",
		Data: fmt.Appendf(nil, "lastseq=%d\noutbytes=%d\n", seqAt, r.outBytes),
	})
	payload := persist.EncodeContainer(snapshotMagic, snapshotVersion, secs)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if _, err := p.store.WriteCheckpoint(payload, p.opts.Keep); err != nil {
		p.err = err
		return err
	}
	p.lastCkptSteps = r.steps
	p.lastCkptPs = r.vclk.Now()
	p.checkpoints++
	p.checkpointBytes = int64(len(payload))
	wallNs := r.obs().WallNow().Sub(start).Nanoseconds()
	if wallNs < 0 {
		wallNs = 0 // a pinned/frozen test clock may not advance
	}
	p.checkpointNs += wallNs
	if o := r.opts.Observer; o != nil {
		o.Emit(obsv.EvCheckpoint, "", fmt.Sprintf("seq=%d bytes=%d", seqAt, len(payload)))
		o.Checkpoints.Inc()
		o.CheckpointWall.Observe(uint64(wallNs))
	}
	return nil
}

// persistEval journals a validated source fragment ahead of its commit.
// Called from EvalCtx with r.mu held; returns an error if the record
// cannot be made durable (the eval is then refused, keeping the journal
// a superset of applied effects).
func (r *Runtime) persistEval(src string) error {
	if r.pers == nil {
		return nil
	}
	if err := r.pers.append(recKindEval, []byte(src), true); err != nil {
		return fmt.Errorf("persist eval: %w", err)
	}
	return nil
}

// reportPersistError surfaces the first journal disk error on the view;
// later ones are identical (the error is sticky and appends stop).
func (r *Runtime) reportPersistError(err error) {
	p := r.pers
	if p == nil {
		return
	}
	p.mu.Lock()
	first := !p.errReported
	p.errReported = true
	p.mu.Unlock()
	if first {
		r.opts.View.Error(fmt.Errorf("persistence disabled after disk error: %w", err))
	}
}

// syncVirtualTime rolls the virtual clock forward to at least target
// (replay: idle waits are not journaled per se, but each advance record
// carries the clock so recovery lands on the same timeline).
func (r *Runtime) syncVirtualTime(target uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now := r.vclk.Now(); target > now {
		r.vclk.AdvanceRaw(target - now)
	}
}

// persistStats snapshots the persister's counters; r.mu held.
func (r *Runtime) persistStats() PersistStats {
	p := r.pers
	if p == nil {
		return PersistStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PersistStats{
		Enabled:         true,
		Dir:             p.opts.Dir,
		Records:         p.records,
		JournalBytes:    p.store.JournalBytes(),
		Checkpoints:     p.checkpoints,
		CheckpointBytes: p.checkpointBytes,
		CheckpointNs:    p.checkpointNs,
		ReplayedRecords: p.replayed,
	}
	if p.err != nil {
		st.Err = p.err.Error()
	}
	return st
}

// decodeCheckpointSeq is the persist.Store decoder: fully verify a
// candidate checkpoint payload and extract the journal position it
// covers. Any failure marks the checkpoint corrupt and recovery falls
// back to an older one.
func decodeCheckpointSeq(payload []byte) (uint64, error) {
	_, secs, err := persist.DecodeContainer(snapshotMagic, payload)
	if err != nil {
		return 0, err
	}
	_, extra, err := snapshotFromSections(secs)
	if err != nil {
		return 0, err
	}
	seq, _, err := parseJournalSection(extra)
	return seq, err
}

// decodeCheckpoint decodes a verified checkpoint payload into its
// snapshot and flushed-output offset.
func decodeCheckpoint(payload []byte) (*Snapshot, uint64, error) {
	_, secs, err := persist.DecodeContainer(snapshotMagic, payload)
	if err != nil {
		return nil, 0, err
	}
	snap, extra, err := snapshotFromSections(secs)
	if err != nil {
		return nil, 0, err
	}
	_, outBytes, err := parseJournalSection(extra)
	if err != nil {
		return nil, 0, err
	}
	return snap, outBytes, nil
}

// parseJournalSection reads the checkpoint-only "journal" section: the
// last covered sequence number and the flushed-output byte offset.
func parseJournalSection(secs []persist.Section) (seq, outBytes uint64, err error) {
	data, ok := persist.FindSection(secs, "journal")
	if !ok {
		return 0, 0, fmt.Errorf("checkpoint missing journal section")
	}
	if _, err := fmt.Sscanf(string(data), "lastseq=%d\noutbytes=%d", &seq, &outBytes); err != nil {
		return 0, 0, fmt.Errorf("checkpoint journal section: %w", err)
	}
	return seq, outBytes, nil
}
