package runtime

import (
	"strings"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/vclock"
	"cascade/internal/workloads/pow"
)

func TestSnapshotRestoreContinuesExactly(t *testing.T) {
	src := `
reg [15:0] n = 0;
always @(posedge clk.val) n <= n + 3;
assign led.val = n[7:0];`
	a := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	a.MustEval(src)
	a.RunTicks(40)
	ledA := a.World().Led("main.led")
	snap := a.Snapshot()

	// Restore onto a different "machine": a bigger device, slower
	// toolchain.
	dev := fpga.NewDevice(200_000, 50_000_000)
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), OpenLoopTargetPs: 10 * vclock.Us})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.World().Led("main.led"); got != ledA {
		t.Fatalf("led not restored: %d vs %d", got, ledA)
	}
	if b.Steps() != a.Steps() {
		t.Fatalf("$time discontinuity: %d vs %d", b.Steps(), a.Steps())
	}
	// Both continue obeying the program's invariant n = 3*posedges
	// (open-loop bursts advance the two runtimes by different tick
	// counts, so compare each against the invariant, not each other).
	a.RunTicks(10)
	b.RunTicks(10)
	for _, rt := range []*Runtime{a, b} {
		want := (3 * ((rt.Steps() + 1) / 2)) & 0xff
		if got := rt.World().Led("main.led"); got != want {
			t.Fatalf("invariant broken after migration: led=%d, want %d at step %d", got, want, rt.Steps())
		}
	}
	// The restored runtime's JIT climbs to hardware on the new device.
	if !b.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("restored runtime stuck in %v", b.Phase())
	}
}

func TestSnapshotRoundTripsThroughText(t *testing.T) {
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval(`
FIFO#(8, 16) fifo();
reg [7:0] sum = 0;
assign fifo.rreq = !fifo.empty;
always @(posedge clk.val) if (!fifo.empty) sum <= sum + fifo.rdata;`)
	a.World().Stream("main.fifo").Push(1, 2, 3, 4, 5, 6)
	a.RunTicks(6) // consume some, leave some queued in the FIFO

	blob := EncodeSnapshot(a.Snapshot())
	if !strings.HasPrefix(blob, "#cascade-snapshot") {
		t.Fatal("bad header")
	}
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	// newTestRuntime evals the prelude; Restore needs a truly fresh one.
	dev := fpga.NewCycloneV()
	b = New(Options{Device: dev, Toolchain: fastToolchain(dev), Features: Features{DisableJIT: true}})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The FIFO's queued words traveled inside the snapshot: finish the
	// sum on the new runtime.
	a.RunTicks(20)
	b.RunTicks(20)
	wantSum := uint64(1 + 2 + 3 + 4 + 5 + 6)
	stA := a.engines["main"].GetState().Scalars["sum"].Uint64()
	stB := b.engines["main"].GetState().Scalars["sum"].Uint64()
	if stA != wantSum || stB != wantSum {
		t.Fatalf("sums diverged: a=%d b=%d want %d", stA, stB, wantSum)
	}
}

func TestSnapshotPoWMigrationMidSearch(t *testing.T) {
	cfg := pow.DefaultConfig()
	cfg.Target = 0x10000000
	cfg.FinishOnFind = true
	wantNonce, ok := cfg.FindNonce(1000)
	if !ok {
		t.Fatal("no reference solution")
	}
	prog := pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
assign led.val = sol[7:0];
`
	a := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	a.MustEval(prog)
	// Run partway through the search, then migrate.
	a.RunTicks(uint64(wantNonce) * pow.CyclesPerHash / 2)
	snap := a.Snapshot()

	dev := fpga.NewCycloneV()
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), OpenLoopTargetPs: 10 * vclock.Us})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !b.RunUntilFinish(uint64(wantNonce+4) * pow.CyclesPerHash * 4) {
		t.Fatal("migrated miner never finished")
	}
	if got := b.World().Led("main.led"); got != uint64(wantNonce&0xff) {
		t.Fatalf("migrated miner found nonce %#x, want low byte of %#x", got, wantNonce)
	}
}

func TestRestoreRefusesUsedRuntime(t *testing.T) {
	a := newTestRuntime(t, Options{})
	if err := a.Restore(&Snapshot{Source: "wire x;"}); err == nil {
		t.Fatal("restore onto a used runtime should fail")
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a snapshot",
		"#cascade-snapshot steps=zero\nrest",
		"#cascade-snapshot steps=1\n#bogus\n",
	} {
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("DecodeSnapshot(%q) should fail", bad)
		}
	}
}
