package runtime

import (
	"strings"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/stdlib"
	"cascade/internal/vclock"
	"cascade/internal/workloads/pow"
)

func TestSnapshotRestoreContinuesExactly(t *testing.T) {
	src := `
reg [15:0] n = 0;
always @(posedge clk.val) n <= n + 3;
assign led.val = n[7:0];`
	a := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	a.MustEval(src)
	a.RunTicks(40)
	ledA := a.World().Led("main.led")
	snap := a.Snapshot()

	// Restore onto a different "machine": a bigger device, slower
	// toolchain.
	dev := fpga.NewDevice(200_000, 50_000_000)
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), OpenLoopTargetPs: 10 * vclock.Us})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.World().Led("main.led"); got != ledA {
		t.Fatalf("led not restored: %d vs %d", got, ledA)
	}
	if b.Steps() != a.Steps() {
		t.Fatalf("$time discontinuity: %d vs %d", b.Steps(), a.Steps())
	}
	// Both continue obeying the program's invariant n = 3*posedges
	// (open-loop bursts advance the two runtimes by different tick
	// counts, so compare each against the invariant, not each other).
	a.RunTicks(10)
	b.RunTicks(10)
	for _, rt := range []*Runtime{a, b} {
		want := (3 * ((rt.Steps() + 1) / 2)) & 0xff
		if got := rt.World().Led("main.led"); got != want {
			t.Fatalf("invariant broken after migration: led=%d, want %d at step %d", got, want, rt.Steps())
		}
	}
	// The restored runtime's JIT climbs to hardware on the new device.
	if !b.WaitForPhase(PhaseOpenLoop, 20000) {
		t.Fatalf("restored runtime stuck in %v", b.Phase())
	}
}

func TestSnapshotRoundTripsThroughText(t *testing.T) {
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval(`
FIFO#(8, 16) fifo();
reg [7:0] sum = 0;
assign fifo.rreq = !fifo.empty;
always @(posedge clk.val) if (!fifo.empty) sum <= sum + fifo.rdata;`)
	a.World().Stream("main.fifo").Push(1, 2, 3, 4, 5, 6)
	a.RunTicks(6) // consume some, leave some queued in the FIFO

	blob := EncodeSnapshot(a.Snapshot())
	if !strings.HasPrefix(blob, "#cascade-snapshot") {
		t.Fatal("bad header")
	}
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	// newTestRuntime evals the prelude; Restore needs a truly fresh one.
	dev := fpga.NewCycloneV()
	b = New(Options{Device: dev, Toolchain: fastToolchain(dev), Features: Features{DisableJIT: true}})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The FIFO's queued words traveled inside the snapshot: finish the
	// sum on the new runtime.
	a.RunTicks(20)
	b.RunTicks(20)
	wantSum := uint64(1 + 2 + 3 + 4 + 5 + 6)
	stA := a.engines["main"].GetState().Scalars["sum"].Uint64()
	stB := b.engines["main"].GetState().Scalars["sum"].Uint64()
	if stA != wantSum || stB != wantSum {
		t.Fatalf("sums diverged: a=%d b=%d want %d", stA, stB, wantSum)
	}
}

func TestSnapshotPoWMigrationMidSearch(t *testing.T) {
	cfg := pow.DefaultConfig()
	cfg.Target = 0x10000000
	cfg.FinishOnFind = true
	wantNonce, ok := cfg.FindNonce(1000)
	if !ok {
		t.Fatal("no reference solution")
	}
	prog := pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
assign led.val = sol[7:0];
`
	a := newTestRuntime(t, Options{OpenLoopTargetPs: 10 * vclock.Us})
	a.MustEval(prog)
	// Run partway through the search, then migrate.
	a.RunTicks(uint64(wantNonce) * pow.CyclesPerHash / 2)
	snap := a.Snapshot()

	dev := fpga.NewCycloneV()
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), OpenLoopTargetPs: 10 * vclock.Us})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !b.RunUntilFinish(uint64(wantNonce+4) * pow.CyclesPerHash * 4) {
		t.Fatal("migrated miner never finished")
	}
	if got := b.World().Led("main.led"); got != uint64(wantNonce&0xff) {
		t.Fatalf("migrated miner found nonce %#x, want low byte of %#x", got, wantNonce)
	}
}

func TestRestoreReplacesRunningProgram(t *testing.T) {
	// Session A: a counter, advanced past zero, snapshotted.
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval("reg [7:0] n = 0; always @(posedge clk.val) n <= n + 1; assign led.val = n;")
	a.RunTicks(20)
	snap := a.Snapshot()

	// Session B runs a different program; Restore replaces it in place
	// (the REPL's :load on a live session).
	b := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	b.MustEval("reg [7:0] m = 99; assign led.val = m;")
	b.RunTicks(4)
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore onto a used runtime: %v", err)
	}
	if b.Ticks() != a.Ticks() {
		t.Fatalf("restored tick count %d != %d", b.Ticks(), a.Ticks())
	}
	a.RunTicks(8)
	b.RunTicks(8)
	if la, lb := a.World().Led("main.led"), b.World().Led("main.led"); la != lb {
		t.Fatalf("replaced program diverged: %d != %d", la, lb)
	}
}

func TestRestoreFailureKeepsRunningProgram(t *testing.T) {
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval("reg [7:0] m = 42; assign led.val = m;")
	r.RunTicks(4)
	if err := r.Restore(&Snapshot{Source: "module Broken("}); err == nil {
		t.Fatal("corrupt snapshot should be rejected")
	}
	// The rejected restore never touched the running program.
	r.RunTicks(2)
	if led := r.World().Led("main.led"); led != 42 {
		t.Fatalf("program lost after failed restore: led=%d", led)
	}
}

func TestSnapshotCarriesBoardInputs(t *testing.T) {
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval(`
reg [7:0] n = 0;
always @(posedge clk.val) n <= n + pad.val;
assign led.val = n;`)
	a.World().PressPad("main.pad", 5)
	a.RunTicks(4)
	snap := a.Snapshot()

	dev := fpga.NewCycloneV()
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), Features: Features{DisableJIT: true}})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The held-down pad traveled with the snapshot: without it the
	// restored counter would freeze.
	if got := b.World().Pad("main.pad"); got != 5 {
		t.Fatalf("pad state lost: %d, want 5", got)
	}
	a.RunTicks(6)
	b.RunTicks(6)
	if la, lb := a.World().Led("main.led"), b.World().Led("main.led"); la != lb {
		t.Fatalf("restored run diverged: led %d vs %d", lb, la)
	}
}

func TestSnapshotCarriesVirtualTime(t *testing.T) {
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval(`always @(posedge clk.val) ;`)
	a.RunTicks(50)
	snap := a.Snapshot()
	if snap.VTime.NowPs == 0 {
		t.Fatal("snapshot did not capture virtual time")
	}
	dev := fpga.NewCycloneV()
	b := New(Options{Device: dev, Toolchain: fastToolchain(dev), Features: Features{DisableJIT: true}})
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if b.VirtualNow() < snap.VTime.NowPs {
		t.Fatalf("virtual clock went backwards: %d < %d", b.VirtualNow(), snap.VTime.NowPs)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	a := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	a.MustEval(`reg [7:0] n = 0; always @(posedge clk.val) n <= n + 1; assign led.val = n;`)
	a.RunTicks(10)
	blob := EncodeSnapshot(a.Snapshot())

	// Flip bytes spread across the blob: decode must reject every one.
	for _, frac := range []int{3, 2} {
		bad := []byte(blob)
		bad[len(bad)/frac] ^= 0x20
		if _, err := DecodeSnapshot(string(bad)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", len(bad)/frac)
		}
	}
	// Truncation at any point must be rejected, never half-decoded.
	for _, n := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeSnapshot(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestDecodeSnapshotLegacyV1(t *testing.T) {
	// Snapshots written before the checksummed container still load.
	snap, err := DecodeSnapshot("#cascade-snapshot steps=8\n#source\nwire x;\n")
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if snap.Steps != 8 || snap.Source != "wire x;\n" {
		t.Fatalf("legacy decode got steps=%d source=%q", snap.Steps, snap.Source)
	}
}

func TestRestoreFailureLeavesRuntimeReusable(t *testing.T) {
	dev := fpga.NewCycloneV()
	r := New(Options{Device: dev, Toolchain: fastToolchain(dev), Features: Features{DisableJIT: true}})

	// A snapshot that fails validation must not consume the runtime's
	// freshness: each rejected restore leaves it ready for the next.
	for _, snap := range []*Snapshot{
		{Source: "module garbage("}, // parse error
		{Source: "Undefined u();"},  // build error
		{Source: "wire x;", Inputs: []stdlib.InputState{{Kind: "bogus", Path: "p"}}}, // bad input kind
	} {
		if err := r.Restore(snap); err == nil {
			t.Fatalf("restore of %q should fail", snap.Source)
		}
	}
	good := &Snapshot{Source: DefaultPrelude + " reg [7:0] n = 9; assign led.val = n;", Steps: 4}
	if err := r.Restore(good); err != nil {
		t.Fatalf("runtime unusable after failed restores: %v", err)
	}
	r.RunTicks(2)
	if got := r.World().Led("main.led"); got != 9 {
		t.Fatalf("restored program not running: led=%d", got)
	}
}

func TestResetFreshAllowsRestoreAfterUse(t *testing.T) {
	// resetFreshLocked is Restore's rollback for failures that strike
	// after the commit point; exercise it directly.
	r := newTestRuntime(t, Options{Features: Features{DisableJIT: true}})
	r.MustEval(`reg [7:0] n = 0; always @(posedge clk.val) n <= n + 1; assign led.val = n;`)
	r.RunTicks(10)
	r.mu.Lock()
	r.resetFreshLocked()
	r.mu.Unlock()
	if r.Steps() != 0 {
		t.Fatalf("reset runtime reports %d steps", r.Steps())
	}
	if err := r.Restore(&Snapshot{Source: DefaultPrelude + " assign led.val = 7;"}); err != nil {
		t.Fatalf("restore after reset: %v", err)
	}
	r.RunTicks(2)
	if got := r.World().Led("main.led"); got != 7 {
		t.Fatalf("led=%d after post-reset restore", got)
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a snapshot",
		"#cascade-snapshot steps=zero\nrest",
		"#cascade-snapshot steps=1\n#bogus\n",
	} {
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("DecodeSnapshot(%q) should fail", bad)
		}
	}
}
