package runtime

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/supervise"
	"cascade/internal/transport"
	"cascade/internal/vclock"
)

// testDaemon is a restartable stand-in for cascade-engined: a
// transport.Host served on a loopback listener whose address survives
// kill/restart cycles. kill severs the listener and every live
// connection (what a SIGKILL does to the process's sockets); restart
// builds a fresh host on the same address, resuming from the journal
// when one is configured. Kills happen between steps in these tests, so
// no request is mid-Handle when the old host's journal goes quiet.
type testDaemon struct {
	t       testing.TB
	addr    string
	journal string // "" disables daemon-side session resumption
	jit     bool
	// faults, when non-zero, gives each host incarnation its own
	// injector (compile faults, region faults on the daemon fabric).
	// Restarts rebuild the injector at trial zero — scripted restarts
	// therefore reset the fault timeline at the same points every run.
	faults fault.Config

	mu    sync.Mutex
	l     net.Listener
	conns map[net.Conn]bool
	host  *transport.Host
}

func newTestDaemon(t testing.TB, journal string, jit bool) *testDaemon {
	return newChaosDaemon(t, journal, jit, fault.Config{})
}

func newChaosDaemon(t testing.TB, journal string, jit bool, faults fault.Config) *testDaemon {
	d := &testDaemon{t: t, journal: journal, jit: jit, faults: faults, conns: map[net.Conn]bool{}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.addr = l.Addr().String()
	d.serve(l)
	t.Cleanup(d.kill)
	return d
}

func (d *testDaemon) serve(l net.Listener) {
	dev := fpga.NewCycloneV()
	var inj *fault.Injector
	if d.faults != (fault.Config{}) {
		inj = fault.New(d.faults)
	}
	host := transport.NewHost(transport.HostOptions{
		Device:     dev,
		Toolchain:  fastToolchain(dev),
		DisableJIT: !d.jit,
		Injector:   inj,
	})
	if d.journal != "" {
		if _, _, err := host.EnableJournal(d.journal); err != nil {
			d.t.Fatal(err)
		}
	}
	d.mu.Lock()
	d.l, d.host = l, host
	d.mu.Unlock()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			d.mu.Lock()
			d.conns[conn] = true
			d.mu.Unlock()
			go func() {
				host.ServeConn(conn)
				d.mu.Lock()
				delete(d.conns, conn)
				d.mu.Unlock()
			}()
		}
	}()
}

// kill drops the daemon mid-run.
func (d *testDaemon) kill() {
	d.mu.Lock()
	l := d.l
	d.l = nil
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// restart brings the daemon back on the same address.
func (d *testDaemon) restart() {
	l, err := net.Listen("tcp", d.addr)
	if err != nil {
		d.t.Fatal(err)
	}
	d.serve(l)
}

// sessions reports the live host's session count.
func (d *testDaemon) sessions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.host.Sessions()
}

// supCtrProg prints its counter on every posedge, so any state lost or
// duplicated across a failover shows up as a hole or a repeat in the
// output stream.
const supCtrProg = `
module Ctr(input wire c, output wire [7:0] out);
  reg [7:0] n = 0;
  always @(posedge c) begin
    n <= n + 1;
    $display("n=%d", n);
  end
  assign out = n;
endmodule
Ctr ctr(.c(clk.val));
assign led.val = ctr.out;
`

// supTestOptions are the aggressive supervision timings the tests use:
// near-instant reopen so recovery is probed on the next step, and a
// heartbeat well inside the run's virtual span.
func supTestOptions() *supervise.Options {
	return &supervise.Options{
		ProbeIntervalPs: 10 * vclock.Us,
		FailThreshold:   2,
		ReopenPs:        1,
	}
}

func supRemoteOptions(addr string) *RemoteOptions {
	return &RemoteOptions{
		Addr:        addr,
		DialTimeout: time.Second,
		CallTimeout: time.Second,
	}
}

// checkContinuousCounter parses "n=<k>" display lines and fails on any
// hole or duplicate: the sequence a fault-free run prints. Lost clock
// edges during an outage shift the values to later ticks but must never
// tear the sequence itself.
func checkContinuousCounter(t *testing.T, out string, minLines int) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < minLines {
		t.Fatalf("only %d output lines, want at least %d:\n%s", len(lines), minLines, out)
	}
	prev := -1
	for _, ln := range lines {
		var v int
		if _, err := fmt.Sscanf(ln, "n=%d", &v); err != nil {
			t.Fatalf("unparsable output line %q: %v", ln, err)
		}
		if prev >= 0 && v != prev+1 {
			t.Fatalf("output discontinuity: %d follows %d (hole or duplicate)\n%s", v, prev, out)
		}
		prev = v
	}
}

// TestSupervisedFailoverAndRehost drives the full self-healing loop
// against a real daemon: healthy remote execution, daemon killed
// mid-run (breaker trips, engines fail over to local software re-seeded
// from the last committed state, output continues), daemon restarted
// (half-open trial closes the breaker, engines re-host). The counter
// stream must stay continuous across both transitions.
func TestSupervisedFailoverAndRehost(t *testing.T) {
	d := newTestDaemon(t, filepath.Join(t.TempDir(), "host.journal"), false)
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{
		View:      view,
		Features:  Features{DisableJIT: true},
		Remote:    supRemoteOptions(d.addr),
		Supervise: supTestOptions(),
	})
	defer r.CloseRemote()
	r.MustEval(supCtrProg)

	r.RunTicks(8)
	st := r.Stats()
	if !st.Supervise.Enabled || st.Supervise.State != "closed" {
		t.Fatalf("healthy supervision stats = %+v", st.Supervise)
	}
	if st.Supervise.Trips != 0 {
		t.Fatalf("breaker tripped on a healthy daemon: %+v", st.Supervise)
	}
	remoteEngines := 0
	for _, e := range st.Engines {
		if e.Transport == "tcp" {
			remoteEngines++
		}
	}
	if remoteEngines == 0 {
		t.Fatalf("no remote engines before the outage: %+v", st.Engines)
	}

	d.kill()
	r.RunTicks(8)
	st = r.Stats()
	if st.Supervise.Trips == 0 {
		t.Fatalf("breaker did not trip after daemon death: %+v", st.Supervise)
	}
	if st.Supervise.Failovers == 0 {
		t.Fatalf("no failover after trip: %+v", st.Supervise)
	}
	for _, e := range st.Engines {
		if e.Transport == "tcp" {
			t.Fatalf("engine %s still on tcp after failover: %+v", e.Path, st.Engines)
		}
	}
	if got := r.World().Led("main.led"); got == 0 {
		t.Fatal("counter frozen after failover: led still 0")
	}

	d.restart()
	r.RunTicks(8)
	st = r.Stats()
	if st.Supervise.Rehosts == 0 {
		t.Fatalf("no re-host after daemon recovery: %+v", st.Supervise)
	}
	if st.Supervise.State != "closed" {
		t.Fatalf("breaker not closed after recovery: %+v", st.Supervise)
	}
	remoteEngines = 0
	for _, e := range st.Engines {
		if e.Transport == "tcp" {
			remoteEngines++
		}
	}
	if remoteEngines == 0 {
		t.Fatalf("engines not re-hosted after recovery: %+v", st.Engines)
	}

	// The whole trajectory — remote, local, remote again — printed one
	// continuous counter sequence.
	checkContinuousCounter(t, view.Output(), 12)

	if !strings.Contains(st.Summary(), "supervise[state=closed") {
		t.Fatalf("summary missing supervise segment: %s", st.Summary())
	}
}

// TestSupervisedSessionReopenAfterRestart: the daemon restarts WITHOUT
// a journal, so the runtime's session ID is gone. The re-host sweep
// must detect the "unknown session" refusal, open a fresh session, and
// land the engines in it — not stay local forever.
func TestSupervisedSessionReopenAfterRestart(t *testing.T) {
	d := newTestDaemon(t, "", false)
	view := &BufView{} // not Quiet: the reopen notice is asserted below
	ro := supRemoteOptions(d.addr)
	ro.SessionQuotaLEs = 5000
	ro.SessionName = "alice"
	r := newTestRuntime(t, Options{
		View:      view,
		Features:  Features{DisableJIT: true},
		Remote:    ro,
		Supervise: supTestOptions(),
	})
	defer r.CloseRemote()
	r.MustEval(supCtrProg)

	r.RunTicks(4)
	if d.sessions() != 1 {
		t.Fatalf("daemon sessions before outage = %d, want 1", d.sessions())
	}
	d.kill()
	r.RunTicks(6)
	d.restart()
	if d.sessions() != 0 {
		t.Fatalf("journalless restart kept %d sessions", d.sessions())
	}
	r.RunTicks(6)

	st := r.Stats()
	if st.Supervise.Rehosts == 0 {
		t.Fatalf("no re-host after restart: %+v", st.Supervise)
	}
	if d.sessions() != 1 {
		t.Fatalf("re-host did not re-open a session: %d", d.sessions())
	}
	reopened := false
	for _, in := range view.Infos() {
		if strings.Contains(in, "session re-opened") {
			reopened = true
		}
	}
	if !reopened {
		t.Fatalf("missing session-reopen notice in infos: %v", view.Infos())
	}
	checkContinuousCounter(t, view.Output(), 8)
}

// TestSupervisedRestartEpochDetection: a daemon killed and restarted
// within the same inter-step gap — with its journal — re-binds the SAME
// engine IDs, so every retry would succeed... against state that is
// journal-stale (the journal replays spawns and the last SetState, not
// execution progress). The transport must catch the boot-epoch change
// on its reconnect probe and fail fast with ErrDaemonRestarted, and the
// supervisor must force-trip PAST an absurdly high failure threshold:
// one "failure" whose follow-up probe succeeds would otherwise never
// trip, stranding the run on a latched client. The failover re-seeds
// from committed state, recovery re-hosts, and the counter stream stays
// continuous — no repeats from the stale daemon state, no holes.
func TestSupervisedRestartEpochDetection(t *testing.T) {
	d := newTestDaemon(t, filepath.Join(t.TempDir(), "host.journal"), false)
	view := &BufView{Quiet: true}
	ro := supRemoteOptions(d.addr)
	ro.Retries = 4 // plenty of budget: fail-fast must beat it
	r := newTestRuntime(t, Options{
		View:     view,
		Features: Features{DisableJIT: true},
		Remote:   ro,
		Supervise: &supervise.Options{
			ProbeIntervalPs: 10 * vclock.Us,
			FailThreshold:   1 << 20, // only a forced trip can open it
			ReopenPs:        1,
		},
	})
	defer r.CloseRemote()
	r.MustEval(supCtrProg)

	r.RunTicks(6)
	// Kill and restart within the same inter-step gap: the next
	// round-trip's retry loop redials into the resumed daemon, whose
	// journal re-bound the old engine IDs under a new boot epoch.
	d.kill()
	d.restart()
	r.RunTicks(8)

	st := r.Stats()
	if st.Supervise.Trips == 0 {
		t.Fatalf("epoch change did not force-trip the breaker: %+v", st.Supervise)
	}
	if st.Supervise.Failovers == 0 {
		t.Fatalf("no failover from committed state after forced trip: %+v", st.Supervise)
	}
	if st.Supervise.Rehosts == 0 {
		t.Fatalf("no re-host onto the reborn daemon: %+v", st.Supervise)
	}
	if st.Supervise.State != "closed" {
		t.Fatalf("breaker not closed after recovery: %+v", st.Supervise)
	}
	remote := 0
	for _, e := range st.Engines {
		if e.Transport == "tcp" {
			remote++
		}
	}
	if remote == 0 {
		t.Fatalf("engines not back on the daemon: %+v", st.Engines)
	}
	// The stale daemon state never reached the output: one continuous
	// count across kill, restart, failover, and re-host.
	checkContinuousCounter(t, view.Output(), 10)
}
