package runtime

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/sim"
	"cascade/internal/transport"
)

// loopbackDaemon stands in for cascade-engined: a transport.Host with its
// own device and fast toolchain, served on a loopback listener. Returns
// the address to point Options.Remote at.
func loopbackDaemon(t testing.TB, disableJIT bool) string {
	t.Helper()
	dev := fpga.NewCycloneV()
	host := transport.NewHost(transport.HostOptions{
		Device:     dev,
		Toolchain:  fastToolchain(dev),
		DisableJIT: disableJIT,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go host.ServeListener(l)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// runEquivRemote is runEquiv with the user engines hosted on a loopback
// daemon: same program, same observables, every ABI interaction a TCP
// round-trip.
func runEquivRemote(t *testing.T, prog string, feats Features, par, n int, ro *RemoteOptions, inj *fault.Injector) (string, []uint64, map[string]*sim.State, Stats) {
	t.Helper()
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: feats, Parallelism: par, Remote: ro, Injector: inj})
	defer r.CloseRemote()
	r.MustEval(prog)
	leds := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.RunTicks(1)
		leds = append(leds, r.World().Led("main.led"))
	}
	return view.Output(), leds, r.captureStates(), r.Stats()
}

// TestSerialParallelRemoteEquivalence extends the scheduler-equivalence
// property to the third schedule: for random multi-engine programs, a
// runtime whose user engines live behind the TCP engine protocol must be
// observationally indistinguishable from the in-process serial one —
// identical display output in identical order, identical LED trace at
// every tick, identical final engine state. Odd seeds leave the JIT on,
// so the daemon promotes engines onto its own fabric mid-trace and the
// client only sees the location flip; observables still may not change.
func TestSerialParallelRemoteEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		feats := Features{DisableInline: true}
		if seed%2 == 0 {
			feats.DisableJIT = true
		}
		t.Run(fmt.Sprintf("seed%d_jit%v", seed, !feats.DisableJIT), func(t *testing.T) {
			prog := genEquivProgram(rand.New(rand.NewSource(seed)))
			outS, ledS, stS := runEquiv(t, prog, feats, 1, 48)

			addr := loopbackDaemon(t, feats.DisableJIT)
			ro := &RemoteOptions{Addr: addr}
			outR, ledR, stR, stats := runEquivRemote(t, prog, feats, 8, 48, ro, nil)

			if outS != outR {
				t.Errorf("display output diverged:\nserial: %q\nremote: %q\nprogram:\n%s", outS, outR, prog)
			}
			if !reflect.DeepEqual(ledS, ledR) {
				t.Errorf("LED trace diverged:\nserial: %v\nremote: %v\nprogram:\n%s", ledS, ledR, prog)
			}
			if !reflect.DeepEqual(stS, stR) {
				t.Errorf("final states diverged:\nserial: %v\nremote: %v\nprogram:\n%s", stS, stR, prog)
			}
			if stats.Remote != addr {
				t.Errorf("stats remote = %q, want %q", stats.Remote, addr)
			}
			if stats.Xport.RoundTrips == 0 || stats.Xport.BytesOut == 0 {
				t.Errorf("remote run metered no protocol traffic: %+v", stats.Xport)
			}
			tcp := 0
			for _, e := range stats.Engines {
				if e.Transport == "tcp" {
					tcp++
				}
			}
			if tcp == 0 {
				t.Errorf("no engine reports the tcp transport: %+v", stats.Engines)
			}
		})
	}
}

// TestRemoteSessionEquivalence reruns the remote-equivalence property
// with the runtime opted into a daemon session: engines spawn bound to
// a tenant region instead of the shared daemon fabric, observables are
// still byte-identical to the serial baseline, and closing the remote
// connection tears the session down on the daemon.
func TestRemoteSessionEquivalence(t *testing.T) {
	prog := genEquivProgram(rand.New(rand.NewSource(3)))
	feats := Features{DisableInline: true}
	outS, ledS, stS := runEquiv(t, prog, feats, 1, 48)

	dev := fpga.NewCycloneV()
	host := transport.NewHost(transport.HostOptions{
		Device:    dev,
		Toolchain: fastToolchain(dev),
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go host.ServeListener(l)
	defer l.Close()

	ro := &RemoteOptions{Addr: l.Addr().String(),
		SessionQuotaLEs: dev.Capacity() / 2, SessionShare: 1, SessionName: "repl"}
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{View: view, Features: feats, Parallelism: 4, Remote: ro})
	r.MustEval(prog)
	leds := make([]uint64, 0, 48)
	for i := 0; i < 48; i++ {
		r.RunTicks(1)
		leds = append(leds, r.World().Led("main.led"))
	}
	outR, stR := view.Output(), r.captureStates()

	if host.Sessions() != 1 {
		t.Fatalf("daemon sessions = %d, want 1", host.Sessions())
	}
	if outS != outR {
		t.Errorf("display output diverged in session:\nserial: %q\nremote: %q", outS, outR)
	}
	if !reflect.DeepEqual(ledS, leds) {
		t.Errorf("LED trace diverged in session:\nserial: %v\nremote: %v", ledS, leds)
	}
	if !reflect.DeepEqual(stS, stR) {
		t.Errorf("final states diverged in session")
	}
	if err := r.CloseRemote(); err != nil {
		t.Fatalf("close remote: %v", err)
	}
	if host.Sessions() != 0 {
		t.Fatalf("session leaked on daemon after CloseRemote: %d", host.Sessions())
	}
}

// TestRemoteEquivalenceWithNetDrops re-runs the remote schedule under
// deterministic network-fault injection: a capped number of injected
// message drops, each absorbed by the transport's retry budget. Drops
// must be billed (visible in the transport counters) but must not change
// a single observable byte.
func TestRemoteEquivalenceWithNetDrops(t *testing.T) {
	prog := genEquivProgram(rand.New(rand.NewSource(1)))
	feats := Features{DisableInline: true, DisableJIT: true}
	outS, ledS, stS := runEquiv(t, prog, feats, 1, 48)

	addr := loopbackDaemon(t, true)
	inj := fault.New(fault.Config{Seed: 11, NetDrop: 1, MaxNetFaults: 3})
	ro := &RemoteOptions{Addr: addr, Retries: 3}
	outR, ledR, stR, stats := runEquivRemote(t, prog, feats, 4, 48, ro, inj)

	if outS != outR {
		t.Errorf("display output diverged under drops:\nserial: %q\nremote: %q", outS, outR)
	}
	if !reflect.DeepEqual(ledS, ledR) {
		t.Errorf("LED trace diverged under drops:\nserial: %v\nremote: %v", ledS, ledR)
	}
	if !reflect.DeepEqual(stS, stR) {
		t.Errorf("final states diverged under drops")
	}
	if stats.Xport.Drops != 3 {
		t.Errorf("injected drops not fully exercised: %d, want 3", stats.Xport.Drops)
	}
	if stats.Xport.Retries != 3 {
		t.Errorf("drops must be absorbed by retries: %d retries for %d drops",
			stats.Xport.Retries, stats.Xport.Drops)
	}
}

// TestLaneFlushOrdering is the -race regression for the laneIO contract
// (see the type comment in runtime.go): engines dispatched on worker
// lanes append $display output concurrently with other lanes, and the
// controller's schedule-order drain must still produce output
// byte-identical to a fully serial run. The program makes every engine
// print on every posedge so lanes are hot on each batch.
func TestLaneFlushOrdering(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&sb, "module Chat%d(input wire c, output wire [7:0] out);\n", i)
		fmt.Fprintf(&sb, "  reg [7:0] n = %d;\n", i+1)
		fmt.Fprintf(&sb, "  always @(posedge c) begin n <= n + %d; $display(\"e%d=%%d\", n); end\n", i+1, i)
		fmt.Fprintf(&sb, "  assign out = n;\nendmodule\nChat%d ch%d(.c(clk.val));\n", i, i)
	}
	sb.WriteString("assign led.val = ch0.out ^ ch1.out ^ ch2.out ^ ch3.out ^ ch4.out;\n")
	prog := sb.String()
	feats := Features{DisableInline: true, DisableJIT: true}

	outSerial, _, _ := runEquiv(t, prog, feats, 1, 64)
	if strings.Count(outSerial, "\n") < 5*64 {
		t.Fatalf("program did not chat enough: %d lines", strings.Count(outSerial, "\n"))
	}
	for trial := 0; trial < 3; trial++ {
		outPar, _, _ := runEquiv(t, prog, feats, 8, 64)
		if outPar != outSerial {
			t.Fatalf("trial %d: parallel drain order diverged from serial:\nserial:   %q\nparallel: %q",
				trial, outSerial, outPar)
		}
	}
}

// TestRemoteRecovery checks that crash-safe persistence composes with
// remote engines: program state flows back over GetState for
// checkpoints, a new process recovers from the directory, respawns its
// engines on the daemon, restores them over SetState, and continues to
// the same future as an uninterrupted reference.
func TestRemoteRecovery(t *testing.T) {
	addr := loopbackDaemon(t, true)
	remoteOpts := func(dir string) (Options, *BufView) {
		opts, view := persistTestOptions(dir, 1, nil)
		opts.Remote = &RemoteOptions{Addr: addr}
		return opts, view
	}

	dir := t.TempDir()
	opts, view := remoteOpts(dir)
	r, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh dir reported recovery")
	}
	r.MustEval(DefaultPrelude)
	r.MustEval(persistProgA)
	r.World().PressPad("main.pad", 3)
	r.RunTicks(200) // crosses the 64-step checkpoint cadence
	st := r.Stats()
	if st.Persist.Checkpoints == 0 {
		t.Fatalf("no checkpoints written: %+v", st.Persist)
	}
	if st.Xport.RoundTrips == 0 {
		t.Fatalf("reference run metered no remote traffic: %+v", st.Xport)
	}
	wantSteps, wantLed, wantOut := r.Steps(), r.World().Led("main.led"), view.Output()
	if wantOut == "" {
		t.Fatal("reference run produced no output")
	}
	if err := r.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	r.CloseRemote()

	// A new process over the same directory resumes exactly, engines
	// respawned on the daemon and restored over SetState.
	opts2, view2 := remoteOpts(dir)
	r2, info2, err := Open(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.ClosePersistence()
	defer r2.CloseRemote()
	if !info2.Recovered {
		t.Fatal("recovery not detected")
	}
	if r2.Steps() != wantSteps {
		t.Fatalf("resumed at step %d, want %d", r2.Steps(), wantSteps)
	}
	if got := r2.World().Led("main.led"); got != wantLed {
		t.Fatalf("led after recovery = %d, want %d", got, wantLed)
	}
	rebuilt := wantOut[:info2.OutputBytesAtCheckpoint] + view2.Output()
	if !strings.HasPrefix(wantOut, rebuilt) {
		t.Fatalf("replay output diverged:\nref %q\ngot %q", wantOut, rebuilt)
	}
	// Both continue to the same future.
	r.RunTicks(50)
	r2.RunTicks(50)
	if a, b := r.World().Led("main.led"), r2.World().Led("main.led"); a != b {
		t.Fatalf("post-recovery divergence: led %d vs %d", b, a)
	}
}
