// Package runtime implements the Cascade runtime (paper §3.4, Figure 5):
// the controller/view pair, the ordered interrupt queue, the batched
// scheduler of Figure 6, and the JIT state machine of Figure 9 that
// carries a program from software engines through inlining, background
// hardware compilation, ABI forwarding, and open-loop scheduling.
//
// The runtime is driven by Step/Run calls from a single controller
// goroutine; within a Step the evaluate and update batches of Figure 6
// are dispatched to the scheduled engines in parallel (the batching
// exists precisely so requests can be issued asynchronously), while
// interrupt flushes, routing, and hot swaps stay on the controller.
// Work is billed on a virtual clock (internal/vclock) so JIT behaviour
// over time is deterministic and the evaluation's figures are
// reproducible.
package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"strings"
	"sync"
	"time"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/ir"
	"cascade/internal/njit"
	"cascade/internal/obsv"
	"cascade/internal/sim"
	"cascade/internal/stdlib"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
)

// Phase is the JIT state of the user's program (Figure 9).
type Phase int

// JIT phases.
const (
	PhaseEmpty     Phase = iota
	PhaseSoftware        // user logic in per-module software engines (9.1)
	PhaseInlined         // user logic inlined into one software engine (9.2)
	PhaseHardware        // user logic on the fabric, stdlib separate (9.3)
	PhaseForwarded       // stdlib absorbed via ABI forwarding (9.4)
	PhaseOpenLoop        // open-loop bursts (9.5)
	PhaseNative          // native mode (§4.5)
)

func (p Phase) String() string {
	switch p {
	case PhaseSoftware:
		return "software"
	case PhaseInlined:
		return "software(inlined)"
	case PhaseHardware:
		return "hardware"
	case PhaseForwarded:
		return "hardware(forwarded)"
	case PhaseOpenLoop:
		return "hardware(open-loop)"
	case PhaseNative:
		return "native"
	}
	return "empty"
}

// View receives program output and runtime status (the V of Figure 5).
//
// Concurrency contract: the runtime invokes View methods only from the
// controller goroutine (the one calling Eval/Step/Run), never from the
// worker goroutines that execute engine batches — system-task output
// produced inside a batch is buffered per engine and flushed in
// deterministic schedule order once the batch has joined. A View
// therefore does not need to be safe against concurrent calls from the
// runtime; it only needs internal locking if the application itself
// reads it from other goroutines while the runtime runs (BufView locks
// for exactly that reason).
type View interface {
	Display(text string)
	Info(format string, args ...any)
	Error(err error)
}

// BufView is a View that records everything (tests and benches). It is
// safe for concurrent use: monitoring goroutines may read Output/Infos/
// Errors while the controller goroutine appends.
type BufView struct {
	// Quiet drops Info traffic.
	Quiet bool

	mu    sync.Mutex
	out   strings.Builder
	infos []string
	errs  []error
}

// Display implements View.
func (v *BufView) Display(text string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.out.WriteString(text)
}

// Info implements View.
func (v *BufView) Info(format string, args ...any) {
	if v.Quiet {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.infos = append(v.infos, fmt.Sprintf(format, args...))
}

// Error implements View.
func (v *BufView) Error(err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.errs = append(v.errs, err)
}

// Output returns everything Display has written.
func (v *BufView) Output() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.out.String()
}

// Infos returns a copy of the Info lines seen so far.
func (v *BufView) Infos() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.infos...)
}

// Errors returns a copy of the errors seen so far.
func (v *BufView) Errors() []error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]error(nil), v.errs...)
}

// DefaultPrelude declares the IO environment of the paper's testbed: a
// global clock, four buttons, and a bank of eight LEDs, implicitly
// instantiated when Cascade begins execution (paper §3.2, Figure 3).
const DefaultPrelude = "Clock clk(); Pad#(4) pad(); Led#(8) led();"

// Features selects the runtime's execution strategies. The zero value
// enables everything (the full JIT of Figure 9); each field disables one
// stage, matching the paper's ablations.
type Features struct {
	DisableJIT        bool // never leave software
	EagerSim          bool // naive eager re-evaluation (iVerilog baseline, §5.1)
	DisableInline     bool // compile subprograms separately (§4.2 ablation)
	DisableForwarding bool // keep stdlib engines scheduled (§4.3 ablation)
	DisableOpenLoop   bool // stay in lock-step hardware (§4.4 ablation)
	Native            bool // §4.5: compile exactly as written, no ABI
	// NativeTier stages the JIT through a middle rung: alongside the
	// fabric compile, each subprogram is also handed to the toolchain's
	// native tier, which lowers the synthesized netlist to
	// closure-threaded Go (internal/njit). The native job is ready in
	// virtual milliseconds, so the interpreter is replaced by compiled
	// code long before the bitstream arrives; the fabric swap then takes
	// over from the native engine, and a native-tier fault demotes back
	// to the interpreter. Off by default.
	NativeTier bool
}

// Options configures a runtime.
type Options struct {
	World     *stdlib.World
	Device    *fpga.Device
	Toolchain *toolchain.Toolchain
	Model     vclock.Model
	View      View

	// Features holds the ablation and mode switches; the zero value is
	// the full JIT.
	Features Features

	// Parallelism bounds how many engines an evaluate/update batch is
	// dispatched to concurrently within a Step. 0 means one lane per
	// CPU; 1 runs batches serially on the controller goroutine.
	Parallelism int

	// Observer receives JIT lifecycle trace events and metrics
	// (internal/obsv). Nil disables observability at near-zero cost: the
	// scheduler's instrumentation is nil-receiver no-ops. The runtime
	// also routes every host-side wall-clock read (open-loop burst
	// profiling, checkpoint timing) through Observer.WallNow, so a
	// test-pinned wall clock makes even the wall-adaptive paths
	// deterministic — and proves wall time never leaks into virtual
	// billing.
	Observer *obsv.Observer

	// Injector injects deterministic faults (internal/fault) into the
	// toolchain, the device, and the hardware engines: flaky compiles
	// are retried with virtual-time backoff, and a faulted hardware
	// engine is evicted back to software between steps (the reverse
	// hot-swap) instead of killing execution. Nil runs fault-free.
	Injector *fault.Injector

	// OpenLoopTargetPs is the adaptive profiling target: each open-loop
	// burst should stall the runtime for about this much virtual time.
	OpenLoopTargetPs uint64

	// Persist enables crash-safe persistence (durable checkpoints plus
	// a write-ahead side-effect journal) rooted at Persist.Dir. It is
	// honored by Open, which also recovers whatever state a previous
	// process left in the directory; New ignores it.
	Persist *PersistOptions

	// Remote, when set, hosts the user's engines on a cascade-engined
	// daemon instead of in-process: each subprogram is shipped over the
	// engine protocol at integration time and every ABI interaction
	// becomes a billed TCP round-trip. Stdlib engines (the peripherals)
	// always stay local — they are the board. JIT promotion happens on
	// the daemon's own fabric; forwarding and open-loop scheduling
	// require in-process hardware and are skipped.
	Remote *RemoteOptions

	// Supervise enables self-healing supervision of the remote engine
	// daemon (internal/supervise): virtual-time liveness probes over the
	// engine protocol, a per-host circuit breaker that trips after
	// consecutive round-trip failures, automatic failover of remote
	// engines onto local software engines re-seeded from their last
	// committed state, and automatic re-hosting once the daemon answers
	// probes again. Nil (the default) disables supervision at zero cost;
	// it only acts when Remote is also set.
	Supervise *supervise.Options

	// Farm installs a sharded compile farm as the toolchain's fabric
	// backend (toolchain.UseFarm): compile flows are rendezvous-hashed
	// across in-process shards (Workers) or remote compile-worker
	// daemons (Links), with a replicated bitstream cache, bounded
	// per-shard queues with job stealing, and deterministic outage
	// schedules. On a shared toolchain that already carries a farm (the
	// hypervisor arrangement, where every tenant runtime passes the same
	// Options), the existing farm is kept — installation is idempotent.
	// Nil (the default) keeps the in-process local backend.
	Farm *toolchain.FarmOptions

	// Tenant scopes this runtime on a *shared* Toolchain (the hypervisor
	// arrangement, internal/hyper): compiles are submitted under this
	// tenant ID, so they draw on the tenant's fair-share worker quota,
	// consult only the tenant's fault injector and observer, close fit
	// and timing against the tenant's Device (its fabric partition), and
	// count into the tenant's stats mirror. "" — the default — is the
	// classic single-tenant arrangement: the runtime owns its toolchain
	// and wires injector and observer globally onto it.
	Tenant string
}

// RemoteOptions configures the connection to a remote engine daemon.
type RemoteOptions struct {
	// Addr is the daemon's TCP address (host:port).
	Addr string
	// DialTimeout, CallTimeout, and Retries tune the transport; zero
	// values take the transport defaults.
	DialTimeout time.Duration
	CallTimeout time.Duration
	Retries     int
	// SessionQuotaLEs, when positive, opens a tenant session on the
	// daemon before the first spawn: the daemon carves a fabric region
	// of this many LEs and this runtime's engines promote onto it,
	// isolated from other clients of the same daemon. Zero keeps the
	// legacy sessionless arrangement (all clients share the daemon
	// fabric). SessionName names the tenant (default: daemon-assigned);
	// SessionShare bounds the session's concurrent compile workers on
	// the daemon toolchain (0: global pool only).
	SessionQuotaLEs int
	SessionShare    int
	SessionName     string
}

// Runtime executes one Cascade program.
type Runtime struct {
	// mu serializes the scheduler's mutation entry points (Step, Eval,
	// Idle, Restore) against Stats and Snapshot, so monitoring
	// goroutines can observe a consistent between-steps state while the
	// controller runs. Everything else remains controller-only.
	mu sync.Mutex

	opts Options
	par  int // resolved Parallelism
	vclk vclock.Clock

	prog       *ir.Program
	flatDesign *ir.Design // non-inlined design (state-mapping reference)
	design     *ir.Design // currently executing design
	inlined    bool

	// engines maps each scheduled path to its transport client: the
	// scheduler dispatches every ABI call through the message protocol,
	// and the client decides whether that means a direct in-process call
	// (Local transport, zero-copy) or a TCP round-trip to a daemon. The
	// bare in-process engine, where one exists, is reachable through
	// Client.Underlying for the operations that genuinely need it (hot
	// swaps, forwarding, open-loop bursts).
	engines    map[string]*transport.Client
	lanes      map[string]*laneIO    // per-engine buffered IO handlers
	elabs      map[string]*elab.Flat // flatDesign elaborations
	execElabs  map[string]*elab.Flat // executing-design elaborations
	stdEngines map[string]engine.Engine
	sched      []string             // scheduled engine paths, in order
	routesFrom map[string][]ir.Wire // producer "path\x00var" -> wires
	groupOf    map[string]string    // forwarded engine -> owner path

	// remoteT is the shared connection to the remote engine daemon (nil
	// unless Options.Remote is set); xstats accumulates per-path
	// transport counters across the restarts that retire and rebuild
	// clients, so :engines reports lifetime totals. xerrs collects
	// transport errors latched by clients — possibly on worker
	// goroutines mid-batch — for the controller to report from the
	// observable part of the step, keeping the View single-threaded.
	remoteT    *transport.TCP
	remoteSess uint32 // daemon session ID (0: sessionless)
	xstats     map[string]transport.Stats
	xerrMu     sync.Mutex
	xerrs      []error

	// sup is the self-healing supervisor for the daemon connection (nil:
	// supervision disabled). committed holds each remote engine's last
	// end-of-step state snapshot — the failover seed; failedOver marks
	// engines currently re-seeded locally, awaiting re-host; supFails
	// counts the round-trip failures the current step latched against
	// the breaker (fed by flushTransportErrs, drained by
	// serviceSupervision, both controller-only).
	sup        *supervise.Supervisor
	committed  map[string]*sim.State
	failedOver map[string]bool
	supFails   int
	// supRestart marks that a latched failure carried the daemon-restart
	// sentinel: the remote is reachable but its state is journal-stale,
	// so the breaker is force-tripped regardless of threshold.
	supRestart bool

	jobs      map[string]*toolchain.Job
	njobs     map[string]*toolchain.Job // native-tier compilations (Features.NativeTier)
	evalCtx   context.Context           // context the current program version was eval'd under
	phase     Phase
	clockPath string // stdlib Clock subprogram path ("" if none)
	clockVar  string // user engine input carrying the clock

	// Degradation counters: hardware faults observed and the
	// hardware→software evictions they triggered; native-tier faults
	// and the native→interpreter demotions they triggered.
	hwFaults     int
	evictions    int
	nativeFaults int
	demotions    int

	// pers is the crash-safe persistence attachment (nil when the
	// runtime was built with New rather than Open); outBytes counts
	// display-output bytes flushed to the view, the offset checkpoints
	// record so a recovered process continues the output stream exactly.
	pers     *persister
	outBytes uint64

	steps     uint64
	ticks     uint64
	finished  bool
	displayQ  []string
	olIters   int
	olWallCap int // wall-clock-adaptive burst bound (paper §4.4)
	areaLEs   int
	startupPs uint64 // virtual time at which execution first began
	everBuilt bool
	// constructDisplays counts the display lines the previous build's
	// initial blocks emitted during engine construction: the program is
	// append-only, so on re-integration the same lines re-appear as a
	// prefix and are suppressed (the user already saw them), while
	// freshly eval'd initial blocks still print.
	constructDisplays int
}

// New creates a runtime. Missing options get paper-calibrated defaults.
func New(opts Options) *Runtime {
	if opts.World == nil {
		opts.World = stdlib.NewWorld()
	}
	if opts.Device == nil {
		opts.Device = fpga.NewCycloneV()
	}
	if opts.Toolchain == nil {
		opts.Toolchain = toolchain.New(opts.Device, toolchain.DefaultOptions())
	}
	if opts.Model == (vclock.Model{}) {
		opts.Model = vclock.DefaultModel()
	}
	if opts.View == nil {
		opts.View = &BufView{Quiet: true}
	}
	if opts.OpenLoopTargetPs == 0 {
		opts.OpenLoopTargetPs = 100 * vclock.Ms
	}
	if opts.Injector != nil {
		// One injector feeds all three fault surfaces: compile attempts
		// (toolchain), placements and region integrity (device), and
		// MMIO transactions (hardware engines, via the device). Under a
		// tenant ID the toolchain wiring is tenant-scoped — the shared
		// toolchain's global injector (another tenant's, or nobody's)
		// must never see this runtime's compiles, and vice versa. The
		// device is this runtime's own partition either way.
		if opts.Tenant != "" {
			opts.Toolchain.SetTenantFaults(opts.Tenant, opts.Injector)
		} else {
			opts.Toolchain.SetFaults(opts.Injector)
		}
		opts.Device.SetFaults(opts.Injector)
	}
	if opts.Observer != nil {
		// One observer sees the whole pipeline: the toolchain stamps
		// compile events with job virtual times, the injector reports
		// fault sites, and the runtime emits the controller-side
		// lifecycle (phases, hot swaps, evictions, checkpoints). Scoped
		// per tenant on a shared toolchain, like the injector.
		if opts.Tenant != "" {
			opts.Toolchain.SetTenantObserver(opts.Tenant, opts.Observer)
		} else {
			opts.Toolchain.SetObserver(opts.Observer)
		}
		if opts.Injector != nil {
			opts.Injector.SetObserver(opts.Observer)
		}
	}
	if opts.Farm != nil && opts.Toolchain.Farm() == nil {
		// Idempotent on shared toolchains: the first tenant runtime
		// installs the farm, later ones find it already in place.
		opts.Toolchain.UseFarm(*opts.Farm)
	}
	par := opts.Parallelism
	if par == 0 {
		par = goruntime.NumCPU()
	}
	if par < 1 {
		par = 1
	}
	r := &Runtime{
		opts:       opts,
		par:        par,
		prog:       ir.NewProgram(),
		engines:    map[string]*transport.Client{},
		lanes:      map[string]*laneIO{},
		elabs:      map[string]*elab.Flat{},
		stdEngines: map[string]engine.Engine{},
		routesFrom: map[string][]ir.Wire{},
		groupOf:    map[string]string{},
		jobs:       map[string]*toolchain.Job{},
		njobs:      map[string]*toolchain.Job{},
		xstats:     map[string]transport.Stats{},
		committed:  map[string]*sim.State{},
		failedOver: map[string]bool{},
		olIters:    64,
		olWallCap:  1 << 14, // ramps up while bursts stay cheap
	}
	if opts.Supervise != nil {
		r.sup = supervise.New(*opts.Supervise)
	}
	// Emit (controller-only) stamps events off the runtime's virtual
	// clock; concurrent emitters (toolchain workers, transports, the
	// injector) use EmitAt and never touch this closure.
	opts.Observer.SetVirtualNow(func() uint64 { return r.vclk.Now() })
	// Serve /metrics, /trace, and /debug/pprof if the observer names an
	// address (no-op otherwise; idempotent if the caller already did).
	if err := opts.Observer.StartHTTP(); err != nil {
		opts.View.Error(err)
	} else if addr := opts.Observer.HTTPAddr(); addr != "" {
		opts.View.Info("observability endpoint on http://%s (/metrics, /trace, /debug/pprof)", addr)
	}
	return r
}

// Observer returns the configured observability hub (nil when disabled).
func (r *Runtime) Observer() *obsv.Observer { return r.opts.Observer }

// obs is shorthand for the (possibly nil) observer at instrumentation
// sites.
func (r *Runtime) obs() *obsv.Observer { return r.opts.Observer }

// submitCompile starts a background compilation of f under this
// runtime's tenant scope (the default tenant when Options.Tenant is "").
func (r *Runtime) submitCompile(ctx context.Context, f *elab.Flat) *toolchain.Job {
	return r.opts.Toolchain.SubmitTenant(ctx, r.opts.Tenant, f, !r.opts.Features.Native, r.vclk.Now())
}

// submitNativeCompile starts a background native-tier compilation of f
// (closure-threaded Go, ready long before the fabric flow) under this
// runtime's tenant scope.
func (r *Runtime) submitNativeCompile(ctx context.Context, f *elab.Flat) *toolchain.Job {
	return r.opts.Toolchain.SubmitNativeTenant(ctx, r.opts.Tenant, f, r.vclk.Now())
}

// setPhase transitions the JIT phase, tracing the transition and
// updating the phase gauge. Controller goroutine only.
func (r *Runtime) setPhase(p Phase) {
	if r.phase == p {
		return
	}
	prev := r.phase
	r.phase = p
	if o := r.opts.Observer; o != nil {
		o.Emit(obsv.EvPhase, "", prev.String()+" -> "+p.String())
		o.Phase.Set(int64(p))
	}
}

// World returns the virtual peripheral board.
func (r *Runtime) World() *stdlib.World { return r.opts.World }

// Phase returns the current JIT phase.
func (r *Runtime) Phase() Phase { return r.phase }

// Ticks returns completed virtual clock ticks.
func (r *Runtime) Ticks() uint64 { return r.ticks }

// Steps returns completed scheduler time steps (two per tick); this is
// also the value of $time.
func (r *Runtime) Steps() uint64 { return r.steps }

// VirtualNow returns the virtual time in picoseconds.
func (r *Runtime) VirtualNow() uint64 { return r.vclk.Now() }

// Clock returns the virtual clock (cost breakdown for benches).
func (r *Runtime) Clock() *vclock.Clock { return &r.vclk }

// Finished reports whether the program executed $finish.
func (r *Runtime) Finished() bool { return r.finished }

// AreaLEs returns the fabric area of the current hardware engine(s).
func (r *Runtime) AreaLEs() int { return r.areaLEs }

// Parallelism returns the resolved engine-dispatch width.
func (r *Runtime) Parallelism() int { return r.par }

// StartupPs returns the virtual time between the first Eval and the
// first executed step (the "time to first instruction" the paper reports
// as under one second).
func (r *Runtime) StartupPs() uint64 { return r.startupPs }

// engine IO lanes --------------------------------------------------------

// laneIO is the engine.IOHandler handed to each engine. System-task side
// effects land in the engine's own lane — possibly from a worker
// goroutine while a batch executes in parallel — and the controller
// drains lanes in schedule order once the batch has joined, which keeps
// the interrupt queue's ordering deterministic and identical to a serial
// schedule.
//
// Flush-ordering contract (TestLaneFlushOrdering): appends to one lane
// happen from at most one goroutine at a time — the worker lane its
// engine is dispatched on during a batch, or the controller between
// batches. Remote engines preserve this by construction: their
// $display/$finish events ride back piggybacked on protocol replies and
// the transport client replays them into the lane on the goroutine that
// issued the round-trip, so no transport or daemon goroutine ever
// touches a lane. The mutex is therefore not what provides the
// ordering; it provides the happens-before edge between a worker's
// appends and the controller's drain (the WaitGroup join also provides
// one, but drainLane must stay correct even when called for an engine
// the current batch did not dispatch).
type laneIO struct {
	mu       sync.Mutex
	displays []string
	finished bool
}

// Display implements engine.IOHandler.
func (l *laneIO) Display(text string, newline bool) {
	if newline {
		text += "\n"
	}
	l.mu.Lock()
	l.displays = append(l.displays, text)
	l.mu.Unlock()
}

// Finish implements engine.IOHandler.
func (l *laneIO) Finish(code int) {
	l.mu.Lock()
	l.finished = true
	l.mu.Unlock()
}

// lane returns (creating if needed) the IO lane for an engine path.
func (r *Runtime) lane(path string) *laneIO {
	l, ok := r.lanes[path]
	if !ok {
		l = &laneIO{}
		r.lanes[path] = l
	}
	return l
}

// drainLane moves an engine's buffered system-task output onto the
// runtime's interrupt queue. Controller goroutine only.
func (r *Runtime) drainLane(path string) {
	l, ok := r.lanes[path]
	if !ok {
		return
	}
	l.mu.Lock()
	displays := l.displays
	l.displays = nil
	fin := l.finished
	l.finished = false
	l.mu.Unlock()
	r.displayQ = append(r.displayQ, displays...)
	if fin {
		r.finished = true
	}
}

// discardLane drops an engine's buffered, not-yet-drained output.
// Eviction uses it: constructing the replacement software engine re-runs
// initial blocks whose display output the user already saw when the
// program first integrated (and whose variable effects the restored
// state overwrites).
func (r *Runtime) discardLane(path string) {
	l, ok := r.lanes[path]
	if !ok {
		return
	}
	l.mu.Lock()
	l.displays = nil
	l.finished = false
	l.mu.Unlock()
}

func (r *Runtime) flushDisplays() {
	for _, t := range r.displayQ {
		r.opts.View.Display(t)
		r.outBytes += uint64(len(t))
	}
	r.displayQ = nil
}

// transport clients --------------------------------------------------------

// wrapLocal wraps an in-process engine in a Local-transport client,
// re-seeding any counters a retired client for the same path left
// behind.
func (r *Runtime) wrapLocal(path string, e engine.Engine) *transport.Client {
	c := transport.NewLocalClient(e, r.noteTransportErr)
	if s, ok := r.xstats[path]; ok {
		c.SeedStats(s)
		delete(r.xstats, path)
	}
	return c
}

// retireClient banks a client's cumulative transport counters before the
// client is dropped (restart, forwarding), so the path's lifetime totals
// survive into its replacement.
func (r *Runtime) retireClient(path string, c *transport.Client) {
	s := r.xstats[path]
	s.Add(c.Stats())
	r.xstats[path] = s
}

// noteTransportErr is the onErr hook handed to every client. Clients
// latch transport failures on whichever goroutine issued the round-trip
// — possibly a worker lane mid-batch — so the error is queued here and
// reported by the controller from the observable part of the step,
// preserving the View's single-threaded contract.
func (r *Runtime) noteTransportErr(err error) {
	r.xerrMu.Lock()
	r.xerrs = append(r.xerrs, err)
	r.xerrMu.Unlock()
}

// flushTransportErrs reports queued transport errors. Controller only.
func (r *Runtime) flushTransportErrs() {
	r.xerrMu.Lock()
	errs := r.xerrs
	r.xerrs = nil
	r.xerrMu.Unlock()
	for _, err := range errs {
		// Transport-unavailable failures (dial failed, retry budget
		// exhausted) count against the supervisor's breaker; engine-level
		// errors travel in reply envelopes and never carry the sentinel.
		if r.sup != nil && errors.Is(err, transport.ErrEngineUnavailable) {
			r.supFails++
			if errors.Is(err, transport.ErrDaemonRestarted) {
				r.supRestart = true
			}
		}
		r.opts.View.Error(err)
	}
}

// asSW returns the in-process software engine behind a client, or nil.
func asSW(c *transport.Client) *sweng.Engine {
	sw, _ := c.Underlying().(*sweng.Engine)
	return sw
}

// asHW returns the in-process hardware engine behind a client, or nil
// (remote engines report Hardware without exposing one).
func asNative(c *transport.Client) *njit.Engine {
	ne, _ := c.Underlying().(*njit.Engine)
	return ne
}

func asHW(c *transport.Client) *hweng.Engine {
	hw, _ := c.Underlying().(*hweng.Engine)
	return hw
}

// spawnRemote instantiates one user subprogram on the remote daemon: the
// module is printed back to Verilog, shipped with its parameter bindings
// over the shared TCP transport, and re-elaborated on the far side. The
// client's IO lands in the same lane an in-process engine would use —
// piggybacked on replies and replayed on the calling goroutine, so
// ordering is untouched.
func (r *Runtime) spawnRemote(path string, mod *verilog.Module, params map[string]*bits.Vector) (*transport.Client, error) {
	if r.remoteT == nil {
		ro := r.opts.Remote
		t, err := transport.DialTCP(ro.Addr, transport.TCPOptions{
			DialTimeout: ro.DialTimeout,
			CallTimeout: ro.CallTimeout,
			Retries:     ro.Retries,
			Injector:    r.opts.Injector,
			Observer:    r.opts.Observer,
		})
		if err != nil {
			return nil, fmt.Errorf("remote engine: %w", err)
		}
		if ro.SessionQuotaLEs > 0 {
			sess, err := transport.OpenSession(t, ro.SessionName,
				ro.SessionQuotaLEs, ro.SessionShare, r.vclk.Now())
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("remote session: %w", err)
			}
			r.remoteSess = sess
			r.obs().Emit(obsv.EvSpawn, "session",
				fmt.Sprintf("daemon session %d quota=%dLEs", sess, ro.SessionQuotaLEs))
		}
		r.remoteT = t
	}
	spec := transport.SpawnSpec{
		Path:    path,
		Source:  verilog.Print(mod),
		Params:  params,
		Eager:   r.opts.Features.EagerSim,
		JIT:     !r.opts.Features.DisableJIT,
		Session: r.remoteSess,
	}
	c, err := transport.Spawn(r.remoteT, spec, r.lane(path), r.now,
		func() uint64 { return r.vclk.Now() }, r.noteTransportErr)
	if err != nil {
		return nil, fmt.Errorf("remote engine %s: %w", path, err)
	}
	c.SetObserver(r.opts.Observer)
	r.obs().Emit(obsv.EvSpawn, path, "remote engine on "+r.opts.Remote.Addr)
	if s, ok := r.xstats[path]; ok {
		c.SeedStats(s)
		delete(r.xstats, path)
	}
	return c, nil
}

// CloseRemote tears down the connection to the remote engine daemon, if
// one was ever established.
func (r *Runtime) CloseRemote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.remoteT == nil {
		return nil
	}
	var err error
	if r.remoteSess != 0 {
		err = transport.CloseSession(r.remoteT, r.remoteSess, r.vclk.Now())
		r.remoteSess = 0
	}
	if cerr := r.remoteT.Close(); err == nil {
		err = cerr
	}
	r.remoteT = nil
	return err
}

// Shutdown tears the runtime down for good: background compilations are
// cancelled, fabric regions released, every engine Ended (for remote
// engines that is a protocol round-trip freeing the daemon-side
// instance), the daemon connection closed, and persistence synced and
// closed. A hypervisor calls this when a session closes so the tenant's
// region and daemon state are actually reclaimed; the runtime must not
// be used afterwards.
func (r *Runtime) Shutdown() error {
	r.mu.Lock()
	r.resetFreshLocked()
	r.mu.Unlock()
	err := r.CloseRemote()
	if perr := r.ClosePersistence(); err == nil && perr != nil {
		err = perr
	}
	return err
}

// Eval integrates new source into the running program: module
// declarations enter the outer scope; items are appended to the implicit
// root module. The extended program is trial-built first, so errors leave
// the running program untouched (paper §3.1). On success all user logic
// returns to software engines and JIT compilation restarts (§4.4).
func (r *Runtime) Eval(src string) error {
	return r.EvalCtx(context.Background(), src)
}

// EvalCtx is Eval with a context: background compilations kicked off for
// this program version are bound to ctx, so cancelling it aborts any
// still-queued compile jobs instead of leaking them.
func (r *Runtime) EvalCtx(ctx context.Context, src string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	mods, items, errs := verilog.ParseProgramFragment(src)
	if len(errs) > 0 {
		return fmt.Errorf("parse: %v", errs[0])
	}
	for _, w := range verilog.Lint(mods, items) {
		r.opts.View.Info("%s", w)
	}
	trial := r.prog.Clone()
	for _, m := range mods {
		if err := trial.DeclareModule(m); err != nil {
			return err
		}
	}
	trial.AddRootItems(items...)
	design, err := ir.Build(trial, stdlib.Registry())
	if err != nil {
		return err
	}
	r.obs().Emit(obsv.EvEval, "", fmt.Sprintf("modules=%d items=%d bytes=%d", len(mods), len(items), len(src)))
	// Every user subprogram must elaborate (type checking).
	newElabs := map[string]*elab.Flat{}
	for _, s := range design.UserSubs() {
		f, err := elab.Elaborate(s.Module, s.Path, s.Params)
		if err != nil {
			return err
		}
		newElabs[s.Path] = f
		r.obs().Emit(obsv.EvElaborate, s.Path, fmt.Sprintf("vars=%d", len(f.Vars)))
	}
	// Commit — journaled first, so a crash between here and the commit
	// replays an eval the crashed process had accepted but not applied
	// (deterministically reaching the same state), never the reverse.
	if err := r.persistEval(src); err != nil {
		return err
	}
	saved := r.captureStates()
	r.prog = trial
	r.flatDesign = design
	r.elabs = newElabs
	return r.restart(ctx, saved)
}

// MustEval is Eval for known-good source; it panics on error.
func (r *Runtime) MustEval(src string) {
	if err := r.Eval(src); err != nil {
		panic(err)
	}
}

// captureStates snapshots per-subprogram state from the current engines,
// keyed by subprogram path (un-inlining names when necessary).
func (r *Runtime) captureStates() map[string]*sim.State {
	out := map[string]*sim.State{}
	if r.flatDesign == nil {
		return out
	}
	if !r.inlined {
		for _, s := range r.flatDesign.UserSubs() {
			if e, ok := r.engines[s.Path]; ok {
				out[s.Path] = e.GetState()
			}
		}
		return out
	}
	main, ok := r.engines[ir.RootPath]
	if !ok {
		return out
	}
	merged := main.GetState()
	for _, s := range r.flatDesign.UserSubs() {
		prefix := ir.PrefixOf(s.Path)
		f := r.elabs[s.Path]
		if f == nil {
			continue
		}
		st := &sim.State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
		for _, v := range f.Vars {
			if v.IsArray() {
				if ws, ok := merged.Arrays[prefix+v.Name]; ok {
					st.Arrays[v.Name] = ws
				}
				continue
			}
			if val, ok := merged.Scalars[prefix+v.Name]; ok {
				st.Scalars[v.Name] = val
			}
		}
		out[s.Path] = st
	}
	return out
}

// mergeStates builds the inlined engine's state from per-sub snapshots.
func mergeStates(saved map[string]*sim.State) *sim.State {
	merged := &sim.State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	for path, st := range saved {
		prefix := ir.PrefixOf(path)
		for name, v := range st.Scalars {
			merged.Scalars[prefix+name] = v
		}
		for name, ws := range st.Arrays {
			merged.Arrays[prefix+name] = ws
		}
	}
	return merged
}

// restart rebuilds engines for the current program: Figure 9 phase 1 (or
// 2 when inlining is enabled), releasing any hardware, cancelling
// now-obsolete background compilations, and resubmitting fresh ones
// bound to ctx.
func (r *Runtime) restart(ctx context.Context, saved map[string]*sim.State) error {
	r.evalCtx = ctx // evictions resubmit compiles under the same context
	// Tear down engines: release in-process hardware, End everything
	// but the persistent stdlib peripherals (for remote engines End is a
	// protocol round-trip that frees the daemon-side instance), and bank
	// each client's transport counters for its successor.
	for path, c := range r.engines {
		if hw := asHW(c); hw != nil {
			hw.Release()
		}
		if _, std := r.stdEngines[path]; !std {
			c.End()
		}
		r.retireClient(path, c)
	}
	// Compilations for the superseded program version are obsolete: the
	// toolchain drops them (finished flows stay in its bitstream cache).
	for _, j := range r.jobs {
		j.Cancel()
	}
	r.jobs = map[string]*toolchain.Job{}
	for _, j := range r.njobs {
		j.Cancel()
	}
	r.njobs = map[string]*toolchain.Job{}
	r.engines = map[string]*transport.Client{}
	r.lanes = map[string]*laneIO{}
	r.execElabs = map[string]*elab.Flat{}
	r.committed = map[string]*sim.State{}
	r.failedOver = map[string]bool{}
	r.sched = nil
	r.groupOf = map[string]string{}
	r.areaLEs = 0
	evalStart := r.vclk.Now()

	// Choose the executing design: inlined unless disabled.
	r.design = r.flatDesign
	r.inlined = false
	execElabs := r.elabs
	if !r.opts.Features.DisableInline {
		inl, err := ir.Inline(r.flatDesign)
		if err != nil {
			return err
		}
		f, err := elab.Elaborate(inl.Sub(ir.RootPath).Module, ir.RootPath, nil)
		if err != nil {
			return fmt.Errorf("inline elaboration: %w\n%s", err, verilog.Print(inl.Sub(ir.RootPath).Module))
		}
		r.design = inl
		r.inlined = true
		execElabs = map[string]*elab.Flat{ir.RootPath: f}
		// Inlining costs a pass over the program.
		r.vclk.AdvanceOverhead(uint64(len(f.Vars)) * r.opts.Model.DispatchPs / 8)
	}

	// Stdlib engines persist across restarts; create missing ones.
	r.clockPath = ""
	for _, s := range r.design.StdSubs() {
		e, ok := r.stdEngines[s.Path]
		if !ok {
			var err error
			e, err = stdlib.New(s.Path, s.StdType, s.Params, r.opts.World)
			if err != nil {
				return err
			}
			r.stdEngines[s.Path] = e
		}
		if s.StdType == "Clock" && r.clockPath == "" {
			r.clockPath = s.Path
		}
		r.engines[s.Path] = r.wrapLocal(s.Path, e)
		r.sched = append(r.sched, s.Path)
	}

	// User engines start in software with preserved state. On
	// re-integration, initial blocks re-execute inside the fresh
	// engines; their variable effects are overwritten by the restored
	// state and the display side effects the user has already seen — a
	// deterministic prefix, because the program is append-only — are
	// suppressed. Initial blocks in freshly eval'd code still print.
	qMark := len(r.displayQ)
	for _, s := range r.design.UserSubs() {
		f := execElabs[s.Path]
		if f == nil {
			var err error
			f, err = elab.Elaborate(s.Module, s.Path, s.Params)
			if err != nil {
				return err
			}
		}
		var c *transport.Client
		// A tripped breaker keeps new engines local: the daemon is
		// presumed dead, so a re-integration mid-outage builds failed-over
		// software engines and lets recovery re-host them later. A nil
		// supervisor always reports Closed, preserving the plain remote
		// path.
		if r.opts.Remote != nil && r.sup.State() == supervise.Closed {
			var err error
			c, err = r.spawnRemote(s.Path, s.Module, s.Params)
			if err != nil {
				return err
			}
			if r.inlined {
				st := mergeStates(saved)
				c.SetState(st)
				r.committed[s.Path] = st
			} else if st, ok := saved[s.Path]; ok {
				c.SetState(st)
				r.committed[s.Path] = st
			}
		} else {
			e := sweng.New(f, r.lane(s.Path), r.now, r.opts.Features.EagerSim)
			if r.inlined {
				e.SetState(mergeStates(saved))
			} else if st, ok := saved[s.Path]; ok {
				e.SetState(st)
			}
			c = r.wrapLocal(s.Path, e)
			if r.opts.Remote != nil {
				r.failedOver[s.Path] = true
				if r.opts.Features.NativeTier && !r.opts.Features.DisableJIT {
					r.njobs[s.Path] = r.submitNativeCompile(ctx, f)
				}
			}
		}
		r.drainLane(s.Path) // initial-block output emitted at construction
		r.engines[s.Path] = c
		r.elabsExec()[s.Path] = f
		r.sched = append(r.sched, s.Path)
		// Creating a software engine is fast but not free.
		r.vclk.AdvanceOverhead(uint64(len(f.Vars)+1) * r.opts.Model.DispatchPs / 4)

		// Kick off background hardware compilation (Figure 9.2 -> 9.3).
		// Remote engines compile on the daemon's toolchain (the spawn
		// request carries the JIT flag), not the runtime's.
		if !r.opts.Features.DisableJIT && r.opts.Remote == nil {
			r.jobs[s.Path] = r.submitCompile(ctx, f)
			// The native tier compiles in parallel with the fabric flow:
			// a cheap intermediate artifact that replaces the interpreter
			// within virtual milliseconds (Figure 9's ladder grows a rung).
			if r.opts.Features.NativeTier {
				r.njobs[s.Path] = r.submitNativeCompile(ctx, f)
			}
		}
	}
	constructed := len(r.displayQ) - qMark
	if r.everBuilt && r.constructDisplays > 0 {
		drop := r.constructDisplays
		if drop > constructed {
			drop = constructed
		}
		r.displayQ = append(r.displayQ[:qMark], r.displayQ[qMark+drop:]...)
	}
	r.constructDisplays = constructed
	r.everBuilt = true
	r.rebuildRoutes()
	r.resolveClockVar()
	// Initial data-plane broadcast: every engine announces its output
	// values before the first scheduler iteration, so no engine acts on
	// a zero-valued input that the producer never actually drove.
	for _, path := range r.sched {
		r.route(path, r.engines[path])
	}
	if r.phase == PhaseEmpty {
		r.startupPs = r.vclk.Now() - evalStart
	}
	if r.inlined {
		r.setPhase(PhaseInlined)
	} else {
		r.setPhase(PhaseSoftware)
	}
	return nil
}

// ProgramSource renders the current program as Verilog: module
// declarations in the outer scope followed by the root module's items
// (the source a user has eval'd so far, echoed back by the REPL's
// :program command).
func (r *Runtime) ProgramSource() string {
	var sb strings.Builder
	for _, name := range r.prog.ModuleNames() {
		sb.WriteString(verilog.Print(r.prog.Modules[name]))
		sb.WriteString("\n")
	}
	if len(r.prog.RootItems) > 0 {
		sb.WriteString("// root module items\n")
		for _, it := range r.prog.RootItems {
			sb.WriteString(verilog.Print(it))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// CompileReadyAt returns the virtual time at which the latest pending
// background compilation finishes, and whether one is pending.
func (r *Runtime) CompileReadyAt() (uint64, bool) {
	var latest uint64
	found := false
	for _, jobs := range []map[string]*toolchain.Job{r.jobs, r.njobs} {
		for _, j := range jobs {
			at, ok := j.ReadyAt()
			if !ok {
				continue
			}
			if at > latest {
				latest = at
			}
			found = true
		}
	}
	return latest, found
}

// elabsExec returns the elaboration table for the executing design.
func (r *Runtime) elabsExec() map[string]*elab.Flat {
	if r.execElabs == nil {
		r.execElabs = map[string]*elab.Flat{}
	}
	return r.execElabs
}

func (r *Runtime) rebuildRoutes() {
	r.routesFrom = map[string][]ir.Wire{}
	for _, w := range r.design.Wires {
		key := w.From.Sub + "\x00" + w.From.Port
		r.routesFrom[key] = append(r.routesFrom[key], w)
	}
}

// resolveClockVar finds the user-engine input fed by the stdlib clock.
func (r *Runtime) resolveClockVar() {
	r.clockVar = ""
	if r.clockPath == "" {
		return
	}
	for _, w := range r.design.Wires {
		if w.From.Sub == r.clockPath && w.From.Port == "val" && w.To.Sub == ir.RootPath {
			r.clockVar = w.To.Port
			return
		}
	}
}

func (r *Runtime) now() uint64 { return r.steps }
