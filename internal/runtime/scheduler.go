package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cascade/internal/engine"
	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fault"
	"cascade/internal/ir"
	"cascade/internal/njit"
	"cascade/internal/obsv"
	"cascade/internal/stdlib"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
)

// Step executes one scheduler time step (Figure 6): evaluate batches to a
// fixed point, commit update batches, then — in the observable state —
// flush interrupts, run end-of-step work, advance time, and service the
// JIT state machine (hot swaps happen only here, where semantics cannot
// be disturbed). In the open-loop phase a Step instead runs a burst of
// iterations inside the hardware engine.
//
// Batches are the unit of parallelism (the paper batches requests
// precisely so they can be issued asynchronously): within a round the
// controller polls engines serially in schedule order, dispatches every
// engine with pending work concurrently across up to Parallelism worker
// lanes, and then — back on the controller — drains buffered IO and
// routes outputs, again in schedule order. Because engines only exchange
// values through the controller's routing, a round is a Jacobi iteration
// of the same monotone fixpoint the serial Gauss-Seidel schedule
// computes, and by the event-order-independence invariant the observable
// states that result are identical.
func (r *Runtime) Step() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.step()
}

// step is Step's body; callers hold r.mu.
func (r *Runtime) step() {
	if r.finished || r.design == nil {
		return
	}
	if r.phase == PhaseOpenLoop {
		r.openLoopBurst()
		r.persistAfterStep()
		return
	}

	model := &r.opts.Model
	for {
		// EvalAll over engines with evaluation events.
		batch := r.poll((*transport.Client).ThereAreEvals)
		if len(batch) > 0 {
			r.runBatch(batch, false)
			continue
		}
		// Update batch.
		batch = r.poll((*transport.Client).ThereAreUpdates)
		if len(batch) == 0 {
			break
		}
		r.runBatch(batch, true)
	}

	// Observable state: flush the interrupt queue, end the step.
	r.flushDisplays()
	r.flushTransportErrs()
	for _, path := range r.sched {
		e := r.engines[path]
		e.EndStep()
		r.drainLane(path)
		r.route(path, e)
	}
	r.steps++
	r.ticks = r.steps / 2
	r.vclk.AdvanceOverhead(model.DispatchPs)
	r.settleCosts()
	r.serviceFaults()
	r.serviceJIT()
	r.serviceSupervision()
	r.persistAfterStep()
}

// poll collects the schedule-ordered batch of engines with pending work,
// billing the control-plane traffic of asking.
func (r *Runtime) poll(pending func(*transport.Client) bool) []string {
	var batch []string
	for _, path := range r.sched {
		e := r.engines[path]
		r.billCtrl(e) // there_are_* poll
		if !pending(e) {
			continue
		}
		r.billCtrl(e) // the evaluate/update request itself
		batch = append(batch, path)
	}
	return batch
}

// runBatch dispatches one evaluate or update batch across the worker
// lanes, then drains IO, routes outputs, and settles costs serially in
// schedule order on the controller goroutine.
func (r *Runtime) runBatch(batch []string, update bool) {
	work := func(e engine.Engine) {
		if update {
			e.Update()
		} else {
			e.Evaluate()
		}
	}
	if r.par > 1 && len(batch) > 1 {
		sem := make(chan struct{}, r.par)
		var wg sync.WaitGroup
		for _, path := range batch {
			e := r.engines[path]
			sem <- struct{}{}
			wg.Add(1)
			go func(e engine.Engine) {
				defer wg.Done()
				work(e)
				<-sem
			}(e)
		}
		wg.Wait()
	} else {
		for _, path := range batch {
			work(r.engines[path])
		}
	}
	for _, path := range batch {
		r.drainLane(path)
		r.route(path, r.engines[path])
	}
	r.settleBatch(batch)
}

// billCtrl charges one control-plane message for talking to a
// hardware-located engine (software engines share the heap). Remote
// engines are excluded: their clients meter every round-trip — polls
// included — through Usage.Msgs, which settleBatch/settleCosts convert
// to comm time; billing here too would double-charge.
func (r *Runtime) billCtrl(c *transport.Client) {
	if !c.Remote() && c.Loc() == engine.Hardware {
		r.vclk.AdvanceComm(1, &r.opts.Model)
	}
}

// route broadcasts an engine's pending output writes along the wires
// table, billing boundary crossings. As in billCtrl, remote endpoints
// are billed through their clients' per-round-trip meter, not here.
func (r *Runtime) route(fromPath string, c *transport.Client) {
	evs := c.DrainWrites()
	if len(evs) == 0 {
		return
	}
	model := &r.opts.Model
	fromHW := !c.Remote() && c.Loc() == engine.Hardware
	for _, ev := range evs {
		if fromHW {
			r.vclk.AdvanceComm(1, model) // bus read of the changed output
		}
		for _, w := range r.routesFrom[fromPath+"\x00"+ev.Var] {
			target, ok := r.engines[w.To.Sub]
			if !ok {
				continue // consumer was forwarded or removed
			}
			if !target.Remote() && target.Loc() == engine.Hardware {
				r.vclk.AdvanceComm(1, model) // bus write of the input
			}
			target.Read(engine.Event{Var: w.To.Port, Val: ev.Val})
		}
	}
}

// settleEngine drains one client's metered work, bills its serialized
// communication (messages cross the memory-mapped bus — or, for remote
// engines, the TCP transport, which the client meters per round-trip),
// and returns its compute cost in picoseconds for the caller's makespan
// arithmetic. Usage is location-agnostic: a remote subprogram reports
// interpreter ops while its host runs it in software and fabric cycles
// after the host promotes it, and the same conversion applies.
func (r *Runtime) settleEngine(c *transport.Client) uint64 {
	model := &r.opts.Model
	u := c.UsageDelta()
	if u.Msgs > 0 {
		r.vclk.AdvanceComm(u.Msgs, model)
	}
	return u.Ops*model.SWEvalOpPs + u.Cycles*model.HWCyclePs + u.NativeOps*model.NativeOpPs
}

// settleBatch converts the batch's engine work counters into virtual
// time. With parallel lanes, compute is billed as the batch's makespan:
// when the batch fits in the lanes (len ≤ Parallelism) that is the
// slowest member, and when it does not, the lanes run multiple rounds
// and the bill is at least ceil(sum/lanes) — billing bare max there
// would pretend an unbounded number of lanes existed and under-charge
// (the PR 1 bug). In serial mode (Parallelism 1) the engines run
// back-to-back and the sum is the honest cost. Communication is always
// summed: the memory-mapped bus serializes transfers.
func (r *Runtime) settleBatch(batch []string) {
	model := &r.opts.Model
	var maxCompute, sumCompute uint64
	for _, path := range batch {
		c := r.settleEngine(r.engines[path])
		sumCompute += c
		if c > maxCompute {
			maxCompute = c
		}
	}
	span := batchMakespanPs(sumCompute, maxCompute, r.par)
	r.vclk.AdvanceCompute(span)
	if o := r.opts.Observer; o != nil {
		o.BatchMakespan.Observe(span)
		o.LaneOccupancy.Observe(uint64(len(batch)))
	}
	// FIFO host transfers cross the memory-mapped bridge regardless of
	// which side the engine lives on (the Figure 12 bottleneck).
	for _, e := range r.stdEngines {
		if f, ok := e.(*stdlib.FIFO); ok {
			r.vclk.AdvanceComm(f.TransfersDelta(), model)
		}
	}
}

// batchMakespanPs is the compute bill for a batch with the given summed
// and maximum per-engine costs across `lanes` worker lanes: the
// longest-running lane under any work-conserving assignment is at least
// max(maxCompute, ceil(sum/lanes)). One lane degenerates to the serial
// sum.
func batchMakespanPs(sumCompute, maxCompute uint64, lanes int) uint64 {
	if lanes <= 1 {
		return sumCompute
	}
	span := (sumCompute + uint64(lanes) - 1) / uint64(lanes)
	if span < maxCompute {
		span = maxCompute
	}
	return span
}

// settleCosts converts all engine work counters into virtual time (the
// end-of-step sweep; EndStep work is serial on the controller).
func (r *Runtime) settleCosts() {
	model := &r.opts.Model
	for _, path := range r.sched {
		r.vclk.AdvanceCompute(r.settleEngine(r.engines[path]))
	}
	for _, e := range r.stdEngines {
		if f, ok := e.(*stdlib.FIFO); ok {
			r.vclk.AdvanceComm(f.TransfersDelta(), model)
		}
	}
}

// serviceJIT runs the Figure 9 state machine between time steps.
func (r *Runtime) serviceJIT() {
	if r.opts.Features.DisableJIT {
		return
	}
	r.serviceNativeTier()
	// Hot swap any finished compilations. Jobs are visited in sorted
	// path order, not map order: with admission control on, observing a
	// job ready frees its in-flight slot and a shed job's resubmit
	// consumes one, so the visit order decides which engine wins the
	// slot — it must not vary run to run.
	for _, path := range sortedJobPaths(r.jobs) {
		job := r.jobs[path]
		if job.Canceled() {
			// Aborted (context cancelled): the program stays where it
			// is; drop the job so phase accounting doesn't wait on it.
			delete(r.jobs, path)
			continue
		}
		if !job.Ready(r.vclk.Now()) {
			continue
		}
		delete(r.jobs, path)
		res := job.Result()
		if res.Err != nil {
			// An admission-control shed is a backoff signal, not a verdict
			// on the design: resubmit now that the virtual clock has moved
			// past the shed point (in-flight work keeps draining, so the
			// retry is eventually admitted).
			if errors.Is(res.Err, toolchain.ErrOverloaded) || errors.Is(res.Err, toolchain.ErrShardUnavailable) {
				if f := r.elabsExec()[path]; f != nil {
					r.jobs[path] = r.submitCompile(r.jobCtx(), f)
					msg := "compile shed under load: resubmitted"
					if errors.Is(res.Err, toolchain.ErrShardUnavailable) {
						msg = "compile farm unreachable: resubmitted"
					}
					r.obs().Emit(obsv.EvRecovery, path, msg)
				}
				continue
			}
			r.opts.View.Error(res.Err)
			continue
		}
		c := r.engines[path]
		// The fabric swap's source is whichever software rung currently
		// holds the engine: the interpreter, or the native tier if it
		// got there first (the common case with Features.NativeTier).
		var old engine.Engine
		if sw := asSW(c); sw != nil {
			old = sw
		} else if ne := asNative(c); ne != nil {
			old = ne
		} else {
			continue
		}
		hw, err := hweng.New(path, res.Prog, r.opts.Device, res.AreaLEs, r.lane(path), r.opts.Features.Native, r.now)
		if err != nil {
			r.opts.View.Error(err)
			// A transient programming fault (a bitstream lost on the way
			// to the fabric) is not fatal: resubmit the compile — the
			// bitstream cache makes the retry nearly free — and keep
			// executing in software meanwhile. Permanent errors are
			// reported once and the engine stays in software.
			if fault.IsTransient(err) {
				if f := r.elabsExec()[path]; f != nil {
					r.jobs[path] = r.submitCompile(r.jobCtx(), f)
					r.obs().Emit(obsv.EvRecovery, path, "transient programming fault: compile resubmitted")
				}
			}
			continue
		}
		// Inherit state and control (between steps: always safe). The
		// swap happens inside the client, so the path's transport stats
		// and the scheduler's dispatch route are untouched.
		hw.SetState(old.GetState())
		r.vclk.AdvanceComm(hw.MsgsDelta(), &r.opts.Model)
		old.End()
		c.SwapLocal(hw)
		r.areaLEs += res.AreaLEs
		if o := r.opts.Observer; o != nil {
			from := "sw"
			if _, wasNative := old.(*njit.Engine); wasNative {
				from = "native"
			}
			o.Emit(obsv.EvHotSwap, path, fmt.Sprintf("%s->hw area=%dLEs cacheHit=%v", from, res.AreaLEs, res.CacheHit))
			o.Promotions.Inc()
			o.AreaLEs.Set(int64(r.areaLEs))
		}
		if res.CacheHit {
			r.opts.View.Info("engine %s moved to hardware (%d LEs, bitstream cache hit)",
				path, res.AreaLEs)
		} else {
			r.opts.View.Info("engine %s moved to hardware (%d LEs, crit path %d levels)",
				path, res.AreaLEs, res.Stats.CritPath)
		}
	}

	// Phase transitions once every user engine is in hardware. Location
	// is read from the clients, so it covers remote engines the daemon
	// promoted onto its own fabric as well as in-process hardware.
	if len(r.jobs) != 0 {
		return
	}
	allHW := true
	var userHW *hweng.Engine
	users := 0
	for _, s := range r.design.UserSubs() {
		users++
		c := r.engines[s.Path]
		if c.Loc() != engine.Hardware {
			allHW = false
			break
		}
		userHW = asHW(c)
	}
	if users == 0 {
		return
	}
	if !allHW {
		// A remote host evicts faulted engines on its own; the phase
		// retreats here, when the reply envelopes show the move, and
		// climbs again as the daemon recompiles. (Local evictions retreat
		// the phase in evict directly.)
		if r.phase == PhaseHardware || r.phase == PhaseNative {
			if r.inlined {
				r.setPhase(PhaseInlined)
			} else {
				r.setPhase(PhaseSoftware)
			}
		}
		return
	}
	if r.phase == PhaseInlined || r.phase == PhaseSoftware {
		if r.opts.Features.Native {
			r.setPhase(PhaseNative)
		} else {
			r.setPhase(PhaseHardware)
		}
	}
	// ABI forwarding needs a single user engine (inlined designs) living
	// in this process: the forwarder absorbs stdlib engine objects, which
	// cannot cross the wire. Remote engines stay in lock-step hardware.
	if (r.phase == PhaseHardware || r.phase == PhaseNative) && users == 1 &&
		userHW != nil && !r.opts.Features.DisableForwarding {
		r.forwardStdlib(userHW)
	}
	// Open loop needs everything in one engine plus a known clock.
	if r.phase == PhaseForwarded && !r.opts.Features.DisableOpenLoop &&
		len(r.sched) == 1 && r.clockVar != "" {
		r.setPhase(PhaseOpenLoop)
		r.opts.View.Info("entering open-loop scheduling on %s", r.clockVar)
	}
}

// serviceNativeTier hot-swaps finished native-tier compilations
// (Features.NativeTier): the interpreter is replaced by a compiled
// closure-threaded evaluator (internal/njit) long before the fabric
// flow delivers a bitstream. The swap mirrors the fabric promotion —
// state handoff between steps, inside the client, so dispatch routes
// and transport counters are untouched — but bills no bus traffic:
// both engines share the heap. The fabric swap later takes over from
// the native engine the same way it would from the interpreter.
// sortedJobPaths snapshots a job map's keys in sorted order, so the
// service passes visit jobs deterministically (Go map order varies per
// run, and under admission control visit order decides who gets the
// freed in-flight slot).
func sortedJobPaths(m map[string]*toolchain.Job) []string {
	if len(m) == 0 {
		return nil
	}
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func (r *Runtime) serviceNativeTier() {
	for _, path := range sortedJobPaths(r.njobs) {
		job := r.njobs[path]
		if job.Canceled() {
			delete(r.njobs, path)
			continue
		}
		if !job.Ready(r.vclk.Now()) {
			continue
		}
		delete(r.njobs, path)
		res := job.Result()
		if res.Err != nil {
			// Shed under load: back off one service pass and resubmit,
			// exactly as the fabric flow does.
			if errors.Is(res.Err, toolchain.ErrOverloaded) || errors.Is(res.Err, toolchain.ErrShardUnavailable) {
				if f := r.elabsExec()[path]; f != nil {
					r.njobs[path] = r.submitNativeCompile(r.jobCtx(), f)
					r.obs().Emit(obsv.EvRecovery, path, "native compile shed under load: resubmitted")
				}
				continue
			}
			r.opts.View.Error(res.Err)
			continue
		}
		c := r.engines[path]
		old := asSW(c)
		if old == nil {
			// Already promoted past the interpreter — a warm bitstream
			// cache can deliver the fabric first. The artifact stays
			// cached; nothing to swap.
			continue
		}
		ne := njit.New(path, res.Prog, r.lane(path), r.opts.Injector, r.now)
		ne.SetState(old.GetState())
		old.End()
		c.SwapLocal(ne)
		// Compiling-in the state costs a pass over the slots, not bus
		// round-trips.
		r.vclk.AdvanceOverhead(uint64(len(res.Prog.Slots)+1) * r.opts.Model.DispatchPs / 4)
		if o := r.opts.Observer; o != nil {
			o.Emit(obsv.EvHotSwap, path, fmt.Sprintf("sw->native cacheHit=%v", res.CacheHit))
			o.Promotions.Inc()
		}
		r.opts.View.Info("engine %s promoted to native code (%d cells compiled)", path, res.RawAreaLEs)
	}
}

// jobCtx is the context background compilations are bound to: the one
// the current program version was eval'd under.
func (r *Runtime) jobCtx() context.Context {
	if r.evalCtx != nil {
		return r.evalCtx
	}
	return context.Background()
}

// serviceFaults runs between time steps, after costs settle: any
// hardware engine that latched an injected fault during the step is
// evicted back to a software engine — the reverse hot-swap. Execution
// degrades gracefully (the program keeps running, slower) instead of
// dying with the fabric.
func (r *Runtime) serviceFaults() {
	if r.opts.Injector == nil {
		return
	}
	var faulted []string
	for _, path := range r.sched {
		if hw := asHW(r.engines[path]); hw != nil && hw.Fault() != nil {
			faulted = append(faulted, path)
		}
	}
	for _, path := range faulted {
		if hw := asHW(r.engines[path]); hw != nil {
			r.evict(path, hw)
		}
	}
	// The native tier degrades the same way: a latched region fault
	// against the compiled code cache demotes the engine back to the
	// interpreter between steps.
	var nfaulted []string
	for _, path := range r.sched {
		if ne := asNative(r.engines[path]); ne != nil && ne.Fault() != nil {
			nfaulted = append(nfaulted, path)
		}
	}
	for _, path := range nfaulted {
		if ne := asNative(r.engines[path]); ne != nil {
			r.evictNative(path, ne)
		}
	}
}

// evict performs the hardware→software reverse hot-swap for one faulted
// engine. Like the forward swap it runs between steps, where state
// movement cannot disturb program semantics: the engine's state is read
// out through the ABI's shadow registers (GetState survives bus and
// region faults by design — that is what the wrapper's state access
// exists for), a fresh software engine inherits it, the fabric region
// is released, and the compile is resubmitted so the JIT can climb back
// to hardware — served from the bitstream cache, re-promotion is cheap.
func (r *Runtime) evict(path string, hw *hweng.Engine) {
	model := &r.opts.Model
	r.hwFaults++
	r.obs().Emit(obsv.EvFault, path, fmt.Sprintf("hardware fault latched: %v", hw.Fault()))
	r.opts.View.Info("hardware fault on %s (%v): degrading to software", path, hw.Fault())

	// A forwarded (or open-loop) engine first hands its absorbed stdlib
	// components back to the runtime's schedule.
	if r.phase == PhaseForwarded || r.phase == PhaseOpenLoop {
		r.unforward(hw)
	}

	// Pull state out of the fabric (billed as bus reads) and release
	// the region.
	st := hw.GetState()
	r.vclk.AdvanceComm(hw.MsgsDelta(), model)
	hw.Release()
	r.areaLEs -= hw.AreaLEs()

	f := r.elabsExec()[path]
	if f == nil {
		// No elaboration to rebuild from (cannot happen for engines the
		// runtime itself promoted); report and keep the schedule alive.
		r.opts.View.Error(fmt.Errorf("runtime: cannot evict %s: no elaboration", path))
		return
	}
	sw := sweng.New(f, r.lane(path), r.now, r.opts.Features.EagerSim)
	// Constructing a software engine re-runs initial blocks; the user
	// saw that output when the program first integrated, and the
	// restored state overwrites their variable effects — discard it.
	r.discardLane(path)
	sw.SetState(st)
	r.engines[path].SwapLocal(sw)
	r.evictions++
	r.vclk.AdvanceOverhead(uint64(len(f.Vars)+1) * model.DispatchPs / 4)
	if o := r.opts.Observer; o != nil {
		o.Emit(obsv.EvEviction, path, fmt.Sprintf("hw->sw area=%dLEs released", hw.AreaLEs()))
		o.Evictions.Inc()
		o.AreaLEs.Set(int64(r.areaLEs))
	}

	// The JIT retreats one phase and climbs again.
	if r.inlined {
		r.setPhase(PhaseInlined)
	} else {
		r.setPhase(PhaseSoftware)
	}
	if !r.opts.Features.DisableJIT {
		if _, pending := r.jobs[path]; !pending {
			r.jobs[path] = r.submitCompile(r.jobCtx(), f)
			r.obs().Emit(obsv.EvRecovery, path, "eviction: compile resubmitted (bitstream cache warm)")
		}
	}
	r.opts.View.Info("engine %s moved to software (%d LEs released), recompiling", path, hw.AreaLEs())
}

// evictNative performs the native→interpreter reverse hot-swap for one
// faulted native-tier engine: state is read out (heap to heap, no bus),
// a fresh software engine inherits it, and the native compile is
// resubmitted — a cache hit, so the tier climbs back almost instantly
// unless the fault schedule keeps firing. The JIT phase is untouched:
// the native tier lives inside the software phase.
func (r *Runtime) evictNative(path string, ne *njit.Engine) {
	model := &r.opts.Model
	r.nativeFaults++
	r.obs().Emit(obsv.EvFault, path, fmt.Sprintf("native-tier fault latched: %v", ne.Fault()))
	r.opts.View.Info("native code fault on %s (%v): degrading to interpreter", path, ne.Fault())

	st := ne.GetState()
	f := r.elabsExec()[path]
	if f == nil {
		r.opts.View.Error(fmt.Errorf("runtime: cannot demote %s: no elaboration", path))
		return
	}
	sw := sweng.New(f, r.lane(path), r.now, r.opts.Features.EagerSim)
	// Constructing a software engine re-runs initial blocks; the user
	// saw that output when the program first integrated, and the
	// restored state overwrites their variable effects — discard it.
	r.discardLane(path)
	sw.SetState(st)
	r.engines[path].SwapLocal(sw)
	r.demotions++
	r.vclk.AdvanceOverhead(uint64(len(f.Vars)+1) * model.DispatchPs / 4)
	if o := r.opts.Observer; o != nil {
		o.Emit(obsv.EvEviction, path, "native->sw code cache released")
		o.Evictions.Inc()
	}
	if !r.opts.Features.DisableJIT {
		if _, pending := r.njobs[path]; !pending {
			r.njobs[path] = r.submitNativeCompile(r.jobCtx(), f)
			r.obs().Emit(obsv.EvRecovery, path, "demotion: native compile resubmitted (tier cache warm)")
		}
	}
	r.opts.View.Info("engine %s moved to interpreter, recompiling native tier", path)
}

// unforward reverses forwardStdlib: absorbed stdlib engines return to
// the runtime's schedule and routing table (the engine objects
// themselves persisted in stdEngines, state intact), exactly as restart
// would lay them out.
func (r *Runtime) unforward(hw *hweng.Engine) {
	r.sched = nil
	for _, s := range r.design.StdSubs() {
		e, ok := r.stdEngines[s.Path]
		if !ok {
			continue
		}
		r.engines[s.Path] = r.wrapLocal(s.Path, e)
		delete(r.groupOf, s.Path)
		r.sched = append(r.sched, s.Path)
	}
	for _, s := range r.design.UserSubs() {
		r.sched = append(r.sched, s.Path)
	}
	// Group-internal wires return from the forwarder to the runtime.
	r.rebuildRoutes()
	r.opts.View.Info("stdlib components unforwarded from %s", hw.Name())
}

// forwardStdlib absorbs stdlib engines into the user hardware engine
// (Figure 9.4): the runtime ceases direct interaction with them and
// group-internal wires leave the runtime's routing table.
func (r *Runtime) forwardStdlib(hw *hweng.Engine) {
	group := map[string]bool{hw.Name(): true}
	for _, s := range r.design.StdSubs() {
		// The forwarder absorbs the bare stdlib engine; its transport
		// client retires (stats banked for when unforward re-wraps it).
		inner := r.stdEngines[s.Path]
		hw.Forward(s.Path, inner)
		group[s.Path] = true
		r.groupOf[s.Path] = hw.Name()
		if c, ok := r.engines[s.Path]; ok {
			r.retireClient(s.Path, c)
		}
		delete(r.engines, s.Path)
	}
	// Rebuild the schedule: only the user engine remains.
	r.sched = []string{hw.Name()}
	// Hand group-internal wires to the forwarder; keep the rest.
	kept := map[string][]ir.Wire{}
	for key, ws := range r.routesFrom {
		for _, w := range ws {
			if group[w.From.Sub] && group[w.To.Sub] {
				fromName, toName := w.From.Sub, w.To.Sub
				if fromName == hw.Name() {
					fromName = ""
				}
				if toName == hw.Name() {
					toName = ""
				}
				hw.ForwardWire(fromName, w.From.Port, toName, w.To.Port)
				continue
			}
			kept[key] = append(kept[key], w)
		}
	}
	r.routesFrom = kept
	r.setPhase(PhaseForwarded)
	r.opts.View.Info("stdlib components forwarded into %s", hw.Name())
}

// openLoopBurst runs one adaptively-sized burst of scheduler iterations
// inside the hardware engine (Figure 9.5).
func (r *Runtime) openLoopBurst() {
	c, ok := r.engines[ir.RootPath]
	if !ok {
		r.setPhase(PhaseForwarded)
		return
	}
	hw := asHW(c)
	if hw == nil {
		r.setPhase(PhaseForwarded)
		return
	}
	model := &r.opts.Model
	r.vclk.AdvanceComm(1, model) // the open_loop request
	iters := r.olIters
	if iters > r.olWallCap {
		iters = r.olWallCap
	}
	// Wall time is read through the observer's clock, never time.Now
	// directly: burst sizing is the one place host wall time influences
	// scheduling (how many iterations run before control returns), so
	// routing it here lets tests pin the clock and prove the virtual
	// timeline is independent of the host (TestOpenLoopDeterministicWithPinnedWall).
	// Wall time still never reaches r.vclk — only iteration counts do.
	wallStart := r.obs().WallNow()
	done := hw.OpenLoop(r.clockVar, iters)
	wall := r.obs().WallNow().Sub(wallStart)
	r.steps += uint64(done)
	r.ticks = r.steps / 2
	r.vclk.AdvanceCompute(hw.CyclesDelta() * model.HWCyclePs)
	r.vclk.AdvanceComm(hw.MsgsDelta(), model)
	for _, e := range r.stdEngines {
		if f, ok := e.(*stdlib.FIFO); ok {
			r.vclk.AdvanceComm(f.TransfersDelta(), model)
		}
	}
	r.vclk.AdvanceOverhead(model.DispatchPs)
	r.drainLane(hw.Name())
	r.flushDisplays()
	if hw.Finished() {
		r.finished = true
	}
	if hw.Fault() != nil {
		// A fault latched mid-burst: the reverse hot-swap, exactly as in
		// the lock-step phases (serviceFaults does not see open-loop
		// steps, which return before it runs).
		r.evict(hw.Name(), hw)
		return
	}
	if done == 0 {
		// No forward progress (e.g. missing clock): fall back.
		r.setPhase(PhaseForwarded)
		return
	}
	// Adaptive profiling: size the next burst so control returns to the
	// runtime after roughly OpenLoopTargetPs of virtual time.
	perIter := model.HWCyclesPerIter * model.HWCyclePs / 2
	if perIter == 0 {
		perIter = 1
	}
	target := int(r.opts.OpenLoopTargetPs / perIter)
	if target < 2 {
		target = 2
	}
	if target > 1<<22 {
		target = 1 << 22
	}
	target &^= 1 // whole clock ticks per burst
	r.olIters = target
	// Adaptive profiling also bounds real time so the runtime (and the
	// user's REPL) regains control regularly (paper: "a small number of
	// seconds"; we target tens of milliseconds for interactivity).
	switch {
	case wall > 120*time.Millisecond:
		r.olWallCap = done / 2
		if r.olWallCap < 64 {
			r.olWallCap = 64
		}
	case wall < 20*time.Millisecond && r.olWallCap < 1<<22:
		r.olWallCap *= 2
	}
}

// RunTicks advances until n more virtual clock ticks have elapsed.
func (r *Runtime) RunTicks(n uint64) {
	goal := r.ticks + n
	for r.ticks < goal && !r.finished {
		r.Step()
	}
}

// RunTicksCtx is RunTicks with cancellation: it returns early (with
// ctx's error) if the context is cancelled between steps.
func (r *Runtime) RunTicksCtx(ctx context.Context, n uint64) error {
	goal := r.ticks + n
	for r.ticks < goal && !r.finished {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.Step()
	}
	return nil
}

// RunVirtual advances until the virtual clock passes ps picoseconds.
func (r *Runtime) RunVirtual(ps uint64) {
	goal := r.vclk.Now() + ps
	for r.vclk.Now() < goal && !r.finished {
		r.Step()
	}
}

// RunUntilFinish steps until $finish or the step budget is exhausted; it
// reports whether the program finished.
func (r *Runtime) RunUntilFinish(maxSteps uint64) bool {
	start := r.steps
	for !r.finished && r.steps-start < maxSteps {
		r.Step()
	}
	r.flushDisplays()
	return r.finished
}

// RunUntilFinishCtx is RunUntilFinish with cancellation between steps.
func (r *Runtime) RunUntilFinishCtx(ctx context.Context, maxSteps uint64) (bool, error) {
	start := r.steps
	for !r.finished && r.steps-start < maxSteps {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		r.Step()
	}
	r.flushDisplays()
	return r.finished, nil
}

// WaitForPhase steps until the runtime reaches the phase (or a step
// budget runs out); it reports success.
func (r *Runtime) WaitForPhase(p Phase, maxSteps uint64) bool {
	start := r.steps
	for r.phase != p && !r.finished && r.steps-start < maxSteps {
		r.Step()
	}
	return r.phase == p
}

// Idle advances virtual time without executing (used by benches to model
// a user thinking, or a program waiting out a compile). The advance is
// split at each pending compile job's ready point: the JIT is serviced
// at the moment its result becomes available, not after one raw jump to
// the far end — jumping past the ready point lumped the whole span into
// idle and kept vclock.Breakdown's idle-vs-hardware attribution wrong
// for everything that happened after the swap should have occurred.
func (r *Runtime) Idle(ps uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.vclk.Now() + ps
	for {
		now := r.vclk.Now()
		if now >= end {
			break
		}
		at, ok := r.earliestReady(now, end)
		if !ok {
			r.vclk.AdvanceRaw(end - now)
			break
		}
		r.vclk.AdvanceRaw(at - now)
		// Servicing may itself submit new work (a transient placement
		// fault resubmits the compile), so the loop re-scans for ready
		// points each pass.
		r.serviceJIT()
	}
	r.serviceJIT()
}

// earliestReady returns the earliest pending-compile ready point strictly
// inside (now, end), if any.
func (r *Runtime) earliestReady(now, end uint64) (uint64, bool) {
	var best uint64
	found := false
	for _, jobs := range []map[string]*toolchain.Job{r.jobs, r.njobs} {
		for _, j := range jobs {
			at, ok := j.ReadyAt()
			if !ok || at <= now || at >= end {
				continue
			}
			if !found || at < best {
				best = at
			}
			found = true
		}
	}
	return best, found
}
