package runtime

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/sim"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
)

// tierOf returns the named engine's tier from a Stats snapshot ("" if
// the path is not scheduled).
func tierOf(st Stats, path string) string {
	for _, e := range st.Engines {
		if e.Path == path {
			return e.Tier
		}
	}
	return ""
}

func userTier(st Stats) string {
	for _, e := range st.Engines {
		if e.Tier != "" {
			return e.Tier
		}
	}
	return ""
}

// TestNativeTierLadder walks the promotion ladder end to end on real
// toolchain latencies: the program starts on the interpreter, the
// native tier replaces it within virtual milliseconds (three orders of
// magnitude before the fabric flow), and the bitstream later takes over
// from the native engine. The LED animation must survive every rung.
func TestNativeTierLadder(t *testing.T) {
	dev := fpga.NewCycloneV()
	view := &BufView{Quiet: true}
	r := newTestRuntime(t, Options{
		View:      view,
		Device:    dev,
		Toolchain: toolchain.New(dev, toolchain.DefaultOptions()), // real latencies
		Features:  Features{NativeTier: true},
	})
	r.MustEval(figure3)

	st := r.Stats()
	if got := userTier(st); got != "interpreter" {
		t.Fatalf("fresh program should run on the interpreter, got %q", got)
	}
	if st.PendingNative != 1 {
		t.Fatalf("native compile not submitted: pendingNative=%d", st.PendingNative)
	}

	// One virtual second covers the native compile (~0.5s for this tiny
	// design) but is nowhere near the fabric flow (~1 virtual minute).
	r.Idle(1 * vclock.S)
	st = r.Stats()
	if got := userTier(st); got != "native" {
		t.Fatalf("after 1 virtual second the native tier should hold the engine, got %q (pendingNative=%d)",
			got, st.PendingNative)
	}
	if st.Phase == PhaseHardware || st.Phase == PhaseOpenLoop {
		t.Fatalf("native promotion must not advance the JIT phase, got %v", st.Phase)
	}
	// The program still runs correctly on the native rung.
	seq := ledSequence(r, 8)
	expectAnimation(t, seq, 2)

	// Fast-forward past the fabric compile: the bitstream takes over
	// from the native engine.
	r.Idle(30 * 60 * vclock.S)
	st = r.Stats()
	if got := userTier(st); got != "" && got != "fabric" {
		t.Fatalf("fabric should take over from the native tier, still on %q (phase %v)", got, st.Phase)
	}
	if st.Phase != PhaseHardware && st.Phase != PhaseForwarded && st.Phase != PhaseOpenLoop {
		t.Fatalf("JIT never reached hardware: phase %v", st.Phase)
	}
	// The hardware engine inherited the native tier's state and keeps
	// executing. (Per-tick LED sampling aliases under open-loop bursts,
	// so assert forward progress rather than the animation.)
	before := r.Ticks()
	r.RunTicks(4)
	if r.Ticks() <= before {
		t.Fatalf("no forward progress after the fabric swap: ticks %d -> %d", before, r.Ticks())
	}
}

// TestNativeTierDemotion seeds a region fault against the native code
// cache: the engine demotes back to the interpreter between steps, the
// native compile is resubmitted (a tier-cache hit), and the program's
// observables never notice.
func TestNativeTierDemotion(t *testing.T) {
	dev := fpga.NewCycloneV()
	view := &BufView{Quiet: true}
	opts := toolchain.DefaultOptions()
	// Keep the fabric out of the picture: this test isolates the
	// native <-> interpreter cycle.
	opts.BasePs = 100_000 * vclock.S // far beyond the test horizon
	r := newTestRuntime(t, Options{
		View:      view,
		Device:    dev,
		Toolchain: toolchain.New(dev, opts),
		Features:  Features{NativeTier: true},
		Injector:  fault.New(fault.Config{Seed: 7, RegionFault: 1, MaxRegionFaults: 1}),
	})
	r.MustEval(figure3)
	r.Idle(1 * vclock.S)
	if got := userTier(r.Stats()); got != "native" {
		t.Fatalf("engine should be native before the fault, got %q", got)
	}
	// The first native step trips the region fault; the demotion runs
	// between steps and the animation stays intact.
	seq := ledSequence(r, 12)
	expectAnimation(t, seq, 2)
	st := r.Stats()
	if st.NativeFaults < 1 || st.Demotions < 1 {
		t.Fatalf("seeded native fault did not demote: faults=%d demotions=%d", st.NativeFaults, st.Demotions)
	}
	// MaxRegionFaults=1: the resubmitted native compile re-promotes and
	// stays healthy this time.
	r.Idle(1 * vclock.S)
	if got := userTier(r.Stats()); got != "native" {
		t.Fatalf("engine should re-promote to native after the demotion, got %q", got)
	}
	seq = ledSequence(r, 8)
	expectAnimation(t, seq, seq[0])
}

// runNativeEquiv executes prog with the native tier in the ladder (and
// optionally a fault schedule) and returns every observable.
func runNativeEquiv(t *testing.T, prog string, cfg *fault.Config, par, n int) (string, []uint64, map[string]*sim.State, Stats) {
	t.Helper()
	view := &BufView{Quiet: true}
	opts := Options{View: view, Features: Features{DisableInline: true, NativeTier: true}, Parallelism: par}
	if cfg != nil {
		opts.Injector = fault.New(*cfg)
	}
	r := newTestRuntime(t, opts)
	r.MustEval(prog)
	leds := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.RunTicks(1)
		leds = append(leds, r.World().Led("main.led"))
	}
	return view.Output(), leds, r.captureStates(), r.Stats()
}

// TestNativeTierEquivalenceProperty extends the scheduler-equivalence
// property to the native tier: for random multi-engine programs, a run
// whose engines climb interpreter -> native -> fabric mid-trace — and,
// under a seeded fault schedule, fall back down mid-trace — must be
// observationally identical to the plain interpreter run, serially and
// in parallel. Only billing and counters may differ.
func TestNativeTierEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := genEquivProgram(rand.New(rand.NewSource(seed)))
			// Baseline: pure interpreter, no JIT at all.
			cleanOut, cleanLed, cleanSt := runEquiv(t, prog, Features{DisableInline: true, DisableJIT: true}, 1, 96)

			out, led, st, stats := runNativeEquiv(t, prog, nil, 1, 96)
			if out != cleanOut {
				t.Errorf("display output diverged with native tier:\nclean:  %q\nnative: %q\nprogram:\n%s", cleanOut, out, prog)
			}
			if !reflect.DeepEqual(led, cleanLed) {
				t.Errorf("LED trace diverged with native tier:\nclean:  %v\nnative: %v\nprogram:\n%s", cleanLed, led, prog)
			}
			if !reflect.DeepEqual(st, cleanSt) {
				t.Errorf("final states diverged with native tier:\nclean:  %v\nnative: %v", cleanSt, st)
			}
			// The tier must actually have been exercised: every engine
			// compiled natively (hit or miss) before the fabric arrived.
			if stats.Compile.Submitted < 2 {
				t.Errorf("native jobs not submitted alongside fabric jobs: %+v", stats.Compile)
			}

			// Parallel agrees with serial.
			outP, ledP, stP, _ := runNativeEquiv(t, prog, nil, 8, 96)
			if outP != cleanOut || !reflect.DeepEqual(ledP, cleanLed) || !reflect.DeepEqual(stP, cleanSt) {
				t.Errorf("parallel native-tier run diverged:\nclean out: %q\npar out:   %q", cleanOut, outP)
			}

			// Seeded faults: native demotions (region faults hit the
			// "native:" sites too) plus the usual fabric faults, all
			// mid-run, all invisible.
			cfg := fault.Config{
				Seed:        uint64(seed) + 1,
				RegionFault: 1, MaxRegionFaults: 2,
				BusError: 1, MaxBusFaults: 1,
			}
			outF, ledF, stF, statsF := runNativeEquiv(t, prog, &cfg, 1, 96)
			if outF != cleanOut || !reflect.DeepEqual(ledF, cleanLed) || !reflect.DeepEqual(stF, cleanSt) {
				t.Errorf("faulty native-tier run diverged:\nclean out: %q\nfault out: %q\nclean led: %v\nfault led: %v",
					cleanOut, outF, cleanLed, ledF)
			}
			if statsF.NativeFaults < 1 || statsF.Demotions < 1 {
				t.Errorf("seeded schedule never demoted a native engine: faults=%d demotions=%d",
					statsF.NativeFaults, statsF.Demotions)
			}
		})
	}
}
