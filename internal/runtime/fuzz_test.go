package runtime

import (
	"testing"
)

// FuzzDecodeSnapshot hardens the snapshot codec against adversarial or
// corrupted input: recovery feeds whatever bytes it finds on disk into
// DecodeSnapshot, so the decoder must reject garbage with an error —
// never panic, and never return a snapshot from a blob whose checksums
// don't verify.
func FuzzDecodeSnapshot(f *testing.F) {
	// A real v2 snapshot (container format, per-section CRCs).
	rt := newTestRuntime(f, Options{Features: Features{DisableJIT: true}})
	rt.MustEval("reg [7:0] n = 0; always @(posedge clk.val) n <= n + 1; assign led.val = n;")
	rt.World().PressPad("main.pad", 3)
	rt.RunTicks(10)
	good := EncodeSnapshot(rt.Snapshot())
	f.Add(good)
	// The legacy v1 text format.
	f.Add("#cascade-snapshot steps=8\n#source\nwire x;\n")
	// Structural near-misses.
	f.Add("")
	f.Add("#cascade-snapshot")
	f.Add(good[:len(good)/2])
	f.Add(good + "tail")

	f.Fuzz(func(t *testing.T, text string) {
		snap, err := DecodeSnapshot(text)
		if err != nil {
			return
		}
		// Whatever decodes must survive an encode/decode round trip:
		// the codec's output is always re-parseable.
		again, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if again.Steps != snap.Steps || again.Source != snap.Source ||
			len(again.States) != len(snap.States) || len(again.Inputs) != len(snap.Inputs) {
			t.Fatalf("round trip changed the snapshot: %+v vs %+v", again, snap)
		}
	})
}
