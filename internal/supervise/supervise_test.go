package supervise

import (
	"testing"

	"cascade/internal/vclock"
)

// TestBreakerLifecycle walks the canonical trajectory: closed →
// (threshold failures) → open → reopen timeout → half-open trial →
// closed, with the counters and probe due-times pinned at every stop.
func TestBreakerLifecycle(t *testing.T) {
	s := New(Options{
		ProbeIntervalPs: 100 * vclock.Ms,
		FailThreshold:   2,
		ReopenPs:        vclock.S,
	})
	if s.State() != Closed {
		t.Fatalf("initial state = %v", s.State())
	}
	if s.ShouldProbe(50 * vclock.Ms) {
		t.Fatal("probe due before the heartbeat interval elapsed")
	}
	if !s.ShouldProbe(100 * vclock.Ms) {
		t.Fatal("probe not due at the heartbeat interval")
	}
	s.ProbeSent(100 * vclock.Ms)
	if s.ProbeOK(100 * vclock.Ms) {
		t.Fatal("closed-state probe reported a recovery")
	}
	if s.ShouldProbe(150 * vclock.Ms) {
		t.Fatal("probe due again immediately after one was sent")
	}

	// One failure: under threshold, still closed.
	if s.NoteFailure(200 * vclock.Ms) {
		t.Fatal("tripped below the threshold")
	}
	if s.State() != Closed {
		t.Fatalf("state after one failure = %v", s.State())
	}
	// Second consecutive failure: trip.
	if !s.NoteFailure(300 * vclock.Ms) {
		t.Fatal("did not trip at the threshold")
	}
	if s.State() != Open {
		t.Fatalf("state after trip = %v", s.State())
	}

	// Open: no probe until the reopen timeout.
	if s.ShouldProbe(300*vclock.Ms + 999*vclock.Ms) {
		t.Fatal("probe due while open, before the reopen timeout")
	}
	reopenAt := 300*vclock.Ms + vclock.S
	if !s.ShouldProbe(reopenAt) {
		t.Fatal("half-open trial not due at the reopen timeout")
	}
	s.ProbeSent(reopenAt)
	if s.State() != HalfOpen {
		t.Fatalf("state after trial probe sent = %v", s.State())
	}

	// Trial fails: back to open, another full reopen period, no new trip.
	s.NoteFailure(reopenAt)
	if s.State() != Open {
		t.Fatalf("state after failed trial = %v", s.State())
	}
	if s.ShouldProbe(reopenAt + vclock.S - 1) {
		t.Fatal("probe due before the second reopen period elapsed")
	}
	secondTrial := reopenAt + vclock.S
	s.ProbeSent(secondTrial)
	if !s.ProbeOK(secondTrial) {
		t.Fatal("successful trial did not report recovery")
	}
	if s.State() != Closed {
		t.Fatalf("state after recovery = %v", s.State())
	}

	st := s.Stats()
	want := Stats{Enabled: true, State: "closed", Probes: 3, ProbeFailures: 3, Trips: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

// TestFailuresMustBeConsecutive: a success between failures resets the
// streak — sporadic drops on a healthy link never trip the breaker.
func TestFailuresMustBeConsecutive(t *testing.T) {
	s := New(Options{FailThreshold: 2})
	s.NoteFailure(1)
	s.ProbeOK(2)
	if s.NoteFailure(3) {
		t.Fatal("tripped on non-consecutive failures")
	}
	if s.State() != Closed {
		t.Fatalf("state = %v, want closed", s.State())
	}
}

// TestForceTrip: a forced trip bypasses the threshold (the caller has
// proof of state loss), counts as a real trip, and is idempotent while
// Open. From HalfOpen it re-opens as a fresh trip.
func TestForceTrip(t *testing.T) {
	s := New(Options{FailThreshold: 1 << 20, ReopenPs: 5})
	if !s.ForceTrip(10) {
		t.Fatal("forced trip below threshold did not trip")
	}
	if s.State() != Open || s.Stats().Trips != 1 {
		t.Fatalf("after force-trip: state=%v stats=%+v", s.State(), s.Stats())
	}
	if s.ForceTrip(11) {
		t.Fatal("force-trip while already open reported a transition")
	}
	if !s.ShouldProbe(15) {
		t.Fatal("reopen timeout did not arm the trial probe")
	}
	s.ProbeSent(15) // -> half-open
	if !s.ForceTrip(16) {
		t.Fatal("force-trip from half-open did not re-open")
	}
	if s.State() != Open || s.Stats().Trips != 2 {
		t.Fatalf("after half-open force-trip: state=%v stats=%+v", s.State(), s.Stats())
	}
}

// TestNilSupervisorIsFree: every method is a nil-receiver no-op, so
// disabled supervision never probes, never trips, and reports zeroes.
func TestNilSupervisorIsFree(t *testing.T) {
	var s *Supervisor
	if s.ShouldProbe(1 << 60) {
		t.Fatal("nil supervisor wants to probe")
	}
	s.ProbeSent(1)
	if s.ProbeOK(1) {
		t.Fatal("nil supervisor recovered")
	}
	if s.NoteFailure(1) {
		t.Fatal("nil supervisor tripped")
	}
	if s.ForceTrip(1) {
		t.Fatal("nil supervisor force-tripped")
	}
	s.NoteFailover(3)
	s.NoteRehost(3)
	if s.State() != Closed {
		t.Fatalf("nil state = %v", s.State())
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestDefaultsFilled pins the documented defaults.
func TestDefaultsFilled(t *testing.T) {
	s := New(Options{})
	if s.opts.ProbeIntervalPs != 100*vclock.Ms || s.opts.FailThreshold != 2 || s.opts.ReopenPs != 2*vclock.S {
		t.Fatalf("defaults = %+v", s.opts)
	}
}
