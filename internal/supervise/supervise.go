// Package supervise is the self-healing layer for engine placements:
// a virtual-time heartbeat prober and a per-host circuit breaker. The
// paper's core promise is that the runtime always answers — the JIT
// ladder degrades to software rather than stalling — and supervision
// extends that promise across the process boundary: when a remote
// engine daemon hangs or dies, the breaker trips, the runtime re-seeds
// local engines from the last committed state and keeps stepping, and
// once the daemon answers probes again the engines are re-hosted.
//
// The supervisor is a pure state machine over the runtime's virtual
// clock: probe due-times, trip thresholds, and reopen timeouts are all
// virtual durations, so a supervised run replays byte-identically —
// no wall-clock reads, matching the PR 5 guarantee. All methods are
// nil-receiver safe no-ops, so supervision costs nothing when
// disabled.
package supervise

import "cascade/internal/vclock"

// State is the circuit breaker's state.
type State int

// Breaker states: Closed (healthy: requests flow, probes at the
// heartbeat cadence), Open (tripped: the remote is presumed dead, all
// placements are local), HalfOpen (the reopen timeout elapsed: one
// trial probe decides between Closed and another Open period).
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Options tunes a Supervisor. All durations are virtual picoseconds.
type Options struct {
	// ProbeIntervalPs is the heartbeat cadence while Closed (default
	// 100 virtual ms). Probes are billed as one protocol message on
	// the caller's virtual clock.
	ProbeIntervalPs uint64
	// FailThreshold is how many consecutive failures — failed probes
	// or round-trips the caller counts against the breaker — trip it
	// (default 2).
	FailThreshold int
	// ReopenPs is how long the breaker stays Open before a half-open
	// trial probe (default 2 virtual s).
	ReopenPs uint64
}

func (o *Options) fill() {
	if o.ProbeIntervalPs == 0 {
		o.ProbeIntervalPs = 100 * vclock.Ms
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.ReopenPs == 0 {
		o.ReopenPs = 2 * vclock.S
	}
}

// Stats is a snapshot of a supervisor's counters.
type Stats struct {
	Enabled       bool
	State         string
	Probes        uint64 // liveness probes sent
	ProbeFailures uint64 // probes or counted round-trips that failed
	Trips         uint64 // closed -> open transitions
	Failovers     uint64 // engines re-seeded locally after a trip
	Rehosts       uint64 // engines re-hosted remotely after recovery
}

// Supervisor is the per-host breaker. It is driven from the
// controller goroutine at step boundaries (the runtime's supervision
// service), so it needs no locking; Stats() snapshots are taken under
// the runtime's own mutex like every other counter.
type Supervisor struct {
	opts Options

	state       State
	lastProbePs uint64 // when the previous probe was sent
	openedAtPs  uint64 // when the breaker last tripped
	consecFails int

	probes     uint64
	probeFails uint64
	trips      uint64
	failovers  uint64
	rehosts    uint64
}

// New builds a supervisor with its breaker Closed.
func New(opts Options) *Supervisor {
	opts.fill()
	return &Supervisor{opts: opts}
}

// State returns the breaker state (Closed for nil).
func (s *Supervisor) State() State {
	if s == nil {
		return Closed
	}
	return s.state
}

// ShouldProbe reports whether a liveness probe is due at virtual time
// vnow: the heartbeat cadence elapsed while Closed, or the reopen
// timeout elapsed while Open (the half-open trial). While HalfOpen a
// probe is always due — the trial is in flight until it resolves.
func (s *Supervisor) ShouldProbe(vnow uint64) bool {
	if s == nil {
		return false
	}
	switch s.state {
	case Closed:
		return vnow >= s.lastProbePs+s.opts.ProbeIntervalPs
	case Open:
		return vnow >= s.openedAtPs+s.opts.ReopenPs
	default: // HalfOpen
		return true
	}
}

// ProbeSent records that a probe left at vnow. Callers bill it as one
// protocol message on their virtual clock.
func (s *Supervisor) ProbeSent(vnow uint64) {
	if s == nil {
		return
	}
	s.probes++
	s.lastProbePs = vnow
	if s.state == Open {
		s.state = HalfOpen
	}
}

// ProbeOK resolves a probe as answered. From HalfOpen the breaker
// closes; recovered reports that transition so the caller can re-host
// failed-over engines.
func (s *Supervisor) ProbeOK(vnow uint64) (recovered bool) {
	if s == nil {
		return false
	}
	s.consecFails = 0
	if s.state == HalfOpen {
		s.state = Closed
		s.lastProbePs = vnow
		return true
	}
	return false
}

// NoteFailure counts one failure — a failed probe, or a round-trip
// the caller observed fail against the host — at vnow. Reaching
// FailThreshold consecutive failures while Closed trips the breaker;
// any failure while HalfOpen re-opens it. tripped reports a
// transition into Open, i.e. the moment to fail over.
func (s *Supervisor) NoteFailure(vnow uint64) (tripped bool) {
	if s == nil {
		return false
	}
	s.probeFails++
	switch s.state {
	case Closed:
		s.consecFails++
		if s.consecFails >= s.opts.FailThreshold {
			s.trip(vnow)
			return true
		}
	case HalfOpen:
		// The trial failed: back to Open for another reopen period.
		// Not a fresh trip — the failover already happened.
		s.state = Open
		s.openedAtPs = vnow
		s.consecFails = 0
	}
	return false
}

// ForceTrip trips the breaker immediately, bypassing the consecutive-
// failure threshold. It exists for failures that carry their own proof
// of state loss — a daemon boot-epoch change means the remote's engine
// state is stale no matter how reachable it is, and counting toward a
// threshold (or letting a successful follow-up probe reset it) would
// leave the runtime running against a latched, inert client forever.
// tripped reports a transition into Open (false when already Open).
func (s *Supervisor) ForceTrip(vnow uint64) (tripped bool) {
	if s == nil || s.state == Open {
		return false
	}
	s.trip(vnow)
	return true
}

func (s *Supervisor) trip(vnow uint64) {
	s.state = Open
	s.openedAtPs = vnow
	s.consecFails = 0
	s.trips++
}

// NoteFailover records n engines re-seeded locally after a trip.
func (s *Supervisor) NoteFailover(n int) {
	if s == nil {
		return
	}
	s.failovers += uint64(n)
}

// NoteRehost records n engines re-hosted remotely after recovery.
func (s *Supervisor) NoteRehost(n int) {
	if s == nil {
		return
	}
	s.rehosts += uint64(n)
}

// Stats snapshots the counters (zero-valued, Enabled=false, for nil).
func (s *Supervisor) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Enabled:       true,
		State:         s.state.String(),
		Probes:        s.probes,
		ProbeFailures: s.probeFails,
		Trips:         s.trips,
		Failovers:     s.failovers,
		Rehosts:       s.rehosts,
	}
}
