package obsv

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cascade/internal/vclock"
)

// A nil Observer must be fully usable: every method no-ops, every
// constructor returns a usable nil metric.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Emit(EvHotSwap, "root.x", "sw->hw")
	o.EmitAt(123, EvFault, "", "boom")
	o.SetVirtualNow(func() uint64 { return 1 })
	if got := o.Trace(10); got != nil {
		t.Fatalf("nil trace = %v", got)
	}
	if o.WallNow().IsZero() {
		t.Fatal("nil WallNow returned zero time")
	}
	if o.MetricsText() != "" {
		t.Fatal("nil metrics text non-empty")
	}
	o.WriteTraceJSONL(io.Discard)
	if err := o.StartHTTP(); err != nil {
		t.Fatal(err)
	}
	if o.HTTPAddr() != "" {
		t.Fatal("nil HTTPAddr non-empty")
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	c := o.NewCounter("x", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := o.NewGauge("y", "")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := o.NewHistogram("z", "", []uint64{1, 2}, 1)
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
}

func TestEmitStampsAndOrder(t *testing.T) {
	wall := time.Unix(1_000, 0)
	o := New(Options{TraceCap: 8, WallClock: func() time.Time { return wall }})
	vps := uint64(0)
	o.SetVirtualNow(func() uint64 { return vps })

	vps = 5 * vclock.Ms
	o.Emit(EvCompileSubmit, "root.f", "job=1")
	vps = 9 * vclock.Ms
	o.Emit(EvBitstreamReady, "root.f", "job=1")
	o.EmitAt(0, EvTransportError, "root.g", "conn reset")

	evs := o.Trace(0)
	if len(evs) != 3 {
		t.Fatalf("trace len = %d, want 3", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 || evs[2].Seq != 3 {
		t.Fatalf("bad seqs: %+v", evs)
	}
	if evs[0].VPs != 5*vclock.Ms || evs[1].VPs != 9*vclock.Ms || evs[2].VPs != 0 {
		t.Fatalf("bad virtual stamps: %+v", evs)
	}
	for _, ev := range evs {
		if ev.WallNs != wall.UnixNano() {
			t.Fatalf("wall stamp %d, want pinned %d", ev.WallNs, wall.UnixNano())
		}
	}
	if o.Events.Value() != 3 {
		t.Fatalf("events counter = %d", o.Events.Value())
	}
}

func TestRingWrapsAndCountsDrops(t *testing.T) {
	o := New(Options{TraceCap: 4})
	for i := 0; i < 10; i++ {
		o.EmitAt(uint64(i), EvEval, "", fmt.Sprintf("n=%d", i))
	}
	evs := o.Trace(0)
	if len(evs) != 4 {
		t.Fatalf("trace len = %d, want 4", len(evs))
	}
	// Oldest-first: events 7, 8, 9, 10 (seq) survive.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if o.TraceDropped.Value() != 6 {
		t.Fatalf("dropped = %d, want 6", o.TraceDropped.Value())
	}
	// A bounded tail of the ring.
	tail := o.Trace(2)
	if len(tail) != 2 || tail[0].Seq != 9 || tail[1].Seq != 10 {
		t.Fatalf("tail = %+v", tail)
	}
}

func TestTraceJSONL(t *testing.T) {
	o := New(Options{TraceCap: 8, WallClock: func() time.Time { return time.Unix(0, 42) }})
	o.EmitAt(7, EvCacheHit, "root.m", `key="a\b"`)
	var sb strings.Builder
	o.WriteTraceJSONL(&sb)
	got := sb.String()
	want := `{"seq":1,"wall_ns":42,"vps":7,"kind":"cache-hit","path":"root.m","detail":"key=\"a\\b\""}` + "\n"
	if got != want {
		t.Fatalf("jsonl:\n got %q\nwant %q", got, want)
	}
}

func TestMetricsPromFormat(t *testing.T) {
	o := New(Options{})
	o.CacheHits.Add(3)
	o.CacheMisses.Inc()
	o.Phase.Set(3)
	o.CompileLatency.Observe(2 * vclock.Ms) // 0.002 s virtual
	o.CompileLatency.Observe(10 * vclock.S)
	text := o.MetricsText()

	for _, want := range []string{
		"# TYPE cascade_compile_cache_hits_total counter",
		"cascade_compile_cache_hits_total 3",
		"cascade_compile_cache_misses_total 1",
		"# TYPE cascade_phase gauge",
		"cascade_phase 3",
		"# TYPE cascade_compile_latency_virtual_seconds histogram",
		`cascade_compile_latency_virtual_seconds_bucket{le="+Inf"} 2`,
		"cascade_compile_latency_virtual_seconds_count 2",
		"cascade_compile_latency_virtual_seconds_sum 10.002",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	o := New(Options{})
	h := o.NewHistogram("t_units", "", []uint64{10, 100}, 1)
	for _, v := range []uint64{1, 10, 11, 100, 101} {
		h.Observe(v)
	}
	text := o.MetricsText()
	for _, want := range []string{
		`t_units_bucket{le="10"} 2`,
		`t_units_bucket{le="100"} 4`,
		`t_units_bucket{le="+Inf"} 5`,
		"t_units_sum 223",
		"t_units_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 10, 3)
	want := []uint64{10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	o := New(Options{Addr: "127.0.0.1:0", TraceCap: 8})
	if err := o.StartHTTP(); err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	// Idempotent: a second call keeps the first server.
	addr := o.HTTPAddr()
	if err := o.StartHTTP(); err != nil {
		t.Fatal(err)
	}
	if o.HTTPAddr() != addr {
		t.Fatal("second StartHTTP rebound")
	}

	o.Promotions.Inc()
	o.EmitAt(1*vclock.S, EvHotSwap, "root.clk", "sw->hw")

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}
	if m := get("/metrics"); !strings.Contains(m, "cascade_promotions_total 1") {
		t.Fatalf("/metrics missing promotions:\n%s", m)
	}
	if tr := get("/trace?n=1"); !strings.Contains(tr, `"kind":"hot-swap"`) {
		t.Fatalf("/trace missing event: %s", tr)
	}
	if pp := get("/debug/pprof/cmdline"); pp == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// Concurrent EmitAt + Observe + scrape must be race-clean (run under
// -race in CI).
func TestConcurrentEmitScrape(t *testing.T) {
	o := New(Options{TraceCap: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.EmitAt(uint64(i), EvFault, "root.x", "w")
				o.Faults.Inc()
				o.TransportRTT.Observe(uint64(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			o.MetricsText()
			o.Trace(0)
		}
	}()
	wg.Wait()
	<-done
	if o.Events.Value() != 2000 {
		t.Fatalf("events = %d", o.Events.Value())
	}
	if o.Faults.Value() != 2000 || o.TransportRTT.Count() != 2000 {
		t.Fatal("metric counts off under concurrency")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 12, VPs: 1500 * vclock.Ms, Kind: EvEviction, Path: "root.f", Detail: "hw fault"}
	s := ev.String()
	for _, want := range []string{"12", "1.500000s", "eviction", "root.f", "hw fault"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	if !strings.Contains(Event{Kind: EvPhase}.String(), " - ") {
		t.Fatalf("global event should render path placeholder: %q", Event{Kind: EvPhase}.String())
	}
}
