package obsv

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// httpServer is the listener + server pair StartHTTP manages.
type httpServer struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the observability mux: /metrics (Prometheus text),
// /trace (JSONL, ?n= tail), and /debug/pprof/* for live profiling.
// Returns nil on a nil Observer.
func (o *Observer) Handler() http.Handler {
	if o == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WriteMetrics(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, ev := range o.Trace(n) {
			ev.writeJSON(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartHTTP serves the Handler on Options.Addr. It is idempotent (the
// first successful call wins; later calls return nil) and a no-op when
// Addr is empty or the Observer nil, so both the facade and the daemon
// can call it unconditionally.
func (o *Observer) StartHTTP() error {
	if o == nil {
		return nil
	}
	o.httpMu.Lock()
	defer o.httpMu.Unlock()
	if o.addr == "" || o.srv != nil {
		return nil
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("obsv: listen %s: %w", o.addr, err)
	}
	srv := &http.Server{Handler: o.Handler()}
	o.srv = &httpServer{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// HTTPAddr returns the bound address ("" until StartHTTP succeeds).
// With Addr ":0" this is how tests and logs learn the chosen port.
func (o *Observer) HTTPAddr() string {
	if o == nil {
		return ""
	}
	o.httpMu.Lock()
	defer o.httpMu.Unlock()
	if o.srv == nil {
		return ""
	}
	return o.srv.ln.Addr().String()
}

// Close shuts the HTTP endpoint down (if one was started). The Observer
// itself stays usable; StartHTTP may be called again.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	o.httpMu.Lock()
	defer o.httpMu.Unlock()
	if o.srv == nil {
		return nil
	}
	err := o.srv.srv.Close()
	o.srv = nil
	return err
}
