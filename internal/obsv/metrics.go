package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one exportable series. Implementations render themselves in
// the Prometheus text exposition format (HELP/TYPE header plus sample
// lines) so /metrics is a straight walk of the registry.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
}

// Counter is a monotonically increasing counter. All methods are safe
// on a nil receiver (they no-op / return zero), so instrumentation call
// sites never need their own nil checks.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
		c.name, c.help, c.name, c.name, c.v.Load())
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the stored value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
		g.name, g.help, g.name, g.name, g.v.Load())
}

// labeled renders one series of a labeled family: the HELP/TYPE header
// carries the bare family name (a valid Prometheus metric name), the
// sample line carries the label set. The registry deduplicates on
// name+labels, so one family fans out into one series per label set —
// the per-tenant breakdowns the hypervisor exports.
type labeled struct {
	family, labels string // labels rendered `k="v",...`, sorted by key
	inner          metric // the bare Counter or Gauge holding the value
}

// LabelSet renders a label map in Prometheus sample syntax, keys sorted.
func LabelSet(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	return sb.String()
}

func (l *labeled) metricName() string { return l.family + "{" + l.labels + "}" }

func (l *labeled) writeProm(w io.Writer) {
	switch m := l.inner.(type) {
	case *Counter:
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n",
			l.family, m.help, l.family, l.family, l.labels, m.v.Load())
	case *Gauge:
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{%s} %d\n",
			l.family, m.help, l.family, l.family, l.labels, m.v.Load())
	}
}

// Histogram is a fixed-bucket cumulative histogram over uint64 samples.
// Samples are recorded in a native integer unit (picoseconds of virtual
// time, nanoseconds of wall time, engines per batch); `scale` divides
// values only at render time so the exported series follow the
// Prometheus base-unit convention (seconds) without any floating point
// on the record path. Observe is lock-free: one atomic add into the
// bucket, one into the sum, one into the count.
type Histogram struct {
	name, help string
	bounds     []uint64 // ascending upper bounds; +Inf is implicit
	scale      float64  // render divisor (0 or 1 = raw unit)
	counts     []atomic.Uint64
	sum        atomic.Uint64
	n          atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed samples, in the native unit.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) metricName() string { return h.name }

// promFloat renders a scaled value without scientific notation (some
// scrapers are picky) and without trailing-zero noise.
func promFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}

func (h *Histogram) writeProm(w io.Writer) {
	scale := h.scale
	if scale == 0 {
		scale = 1
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, promFloat(float64(b)/scale), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, promFloat(float64(h.sum.Load())/scale))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.n.Load())
}

// ExpBuckets returns count ascending bucket bounds starting at start and
// multiplying by factor, for registering histograms over quantities that
// span orders of magnitude.
func ExpBuckets(start uint64, factor float64, count int) []uint64 {
	out := make([]uint64, 0, count)
	v := float64(start)
	for i := 0; i < count; i++ {
		out = append(out, uint64(v))
		v *= factor
	}
	return out
}

// registry is an ordered, named collection of metrics.
type registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]metric
}

func (r *registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]metric{}
	}
	if _, dup := r.byName[m.metricName()]; dup {
		panic("obsv: duplicate metric " + m.metricName())
	}
	r.byName[m.metricName()] = m
	r.metrics = append(r.metrics, m)
}

// writeProm renders every registered metric in registration order.
func (r *registry) writeProm(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.writeProm(w)
	}
}

// NewCounter registers a counter. Returns nil (a valid no-op counter)
// on a nil Observer.
func (o *Observer) NewCounter(name, help string) *Counter {
	if o == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	o.reg.add(c)
	return c
}

// NewGauge registers a gauge. Returns nil on a nil Observer.
func (o *Observer) NewGauge(name, help string) *Gauge {
	if o == nil {
		return nil
	}
	g := &Gauge{name: name, help: help}
	o.reg.add(g)
	return g
}

// NewLabeledCounter registers one series of a labeled counter family
// (e.g. cascade_tenant_quanta_total{tenant="a"}). Series of one family
// are distinct metrics sharing a name; registering the same name+labels
// twice panics like any duplicate, so callers cache the returned
// counter per label set. Returns nil on a nil Observer.
func (o *Observer) NewLabeledCounter(name, help string, labels map[string]string) *Counter {
	if o == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	o.reg.add(&labeled{family: name, labels: LabelSet(labels), inner: c})
	return c
}

// NewLabeledGauge registers one series of a labeled gauge family (e.g.
// cascade_tenant_resident{tenant="a"}). Same dedup/caching contract as
// NewLabeledCounter. Returns nil on a nil Observer.
func (o *Observer) NewLabeledGauge(name, help string, labels map[string]string) *Gauge {
	if o == nil {
		return nil
	}
	g := &Gauge{name: name, help: help}
	o.reg.add(&labeled{family: name, labels: LabelSet(labels), inner: g})
	return g
}

// NewHistogram registers a histogram over the given ascending bucket
// bounds (in the native unit); scale divides values at render time so
// the exported series use Prometheus base units. Returns nil on a nil
// Observer.
func (o *Observer) NewHistogram(name, help string, bounds []uint64, scale float64) *Histogram {
	if o == nil {
		return nil
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]uint64(nil), bounds...),
		scale:  scale,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	o.reg.add(h)
	return h
}

// WriteMetrics renders the full registry in the Prometheus text
// exposition format. Safe on a nil Observer (writes nothing).
func (o *Observer) WriteMetrics(w io.Writer) {
	if o == nil {
		return
	}
	o.reg.writeProm(w)
}

// MetricsText is WriteMetrics into a string (the REPL's :metrics).
func (o *Observer) MetricsText() string {
	if o == nil {
		return ""
	}
	var sb strings.Builder
	o.WriteMetrics(&sb)
	return sb.String()
}
