package obsv

import "testing"

// The disabled path is the one every user pays: a nil Observer threaded
// through the scheduler's hot loops. It must stay within a few ns/op and
// zero allocations — CI gates on these benchmarks (see
// .github/workflows/ci.yml), mirroring the Local transport fast-path
// gate.

func BenchmarkObsvDisabledEmit(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(EvHotSwap, "root.x", "sw->hw")
	}
}

func BenchmarkObsvDisabledObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkObsvDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsvEnabledEmit(b *testing.B) {
	o := New(Options{TraceCap: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.EmitAt(uint64(i), EvHotSwap, "root.x", "sw->hw")
	}
}

func BenchmarkObsvEnabledObserve(b *testing.B) {
	o := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CompileLatency.Observe(uint64(i))
	}
}

// TestDisabledPathAllocFree asserts the nil fast paths allocate nothing;
// the ns/op bound is enforced by the CI benchmark gate where timing is
// meaningful.
func TestDisabledPathAllocFree(t *testing.T) {
	var o *Observer
	var h *Histogram
	var c *Counter
	allocs := testing.AllocsPerRun(1000, func() {
		o.Emit(EvHotSwap, "root.x", "sw->hw")
		o.EmitAt(7, EvFault, "root.y", "z")
		h.Observe(42)
		c.Inc()
		o.WallNow()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}
