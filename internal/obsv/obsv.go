// Package obsv is Cascade-Go's observability layer: a lock-cheap
// structured event trace plus a metrics registry, threaded through the
// JIT lifecycle (parse → elaborate → compile-submit → cache-hit/miss →
// bitstream-ready → hot-swap → eviction → fault → recovery). The paper's
// value proposition — execution "simply gets faster" as modules migrate
// from software simulation into hardware — is invisible without a record
// of *when* those transitions happened and what they cost; SYNERGY's
// runtime-as-a-service direction makes the same point for the
// scheduler/compiler pipeline as a whole.
//
// Design rules:
//
//   - Disabled means free. A nil *Observer is valid everywhere; every
//     method (and every method on a nil Counter/Gauge/Histogram) no-ops
//     in a couple of nanoseconds with zero allocations, so call sites
//     need no guards and the scheduler's hot paths cost nothing when
//     observability is off (benchmark-gated, like the Local transport
//     fast path).
//
//   - Observation never feeds back into execution. Events carry both a
//     wall-clock and a virtual-time stamp, but nothing in this package
//     is ever *read* by the runtime's scheduling or billing decisions —
//     the byte-identical replay property cannot regress through it. The
//     one wall-clock the runtime does consume (open-loop burst sizing,
//     checkpoint timing) is routed through WallNow precisely so tests
//     can pin it and prove virtual time independent of it.
//
//   - Virtual stamps are explicit off the controller. Emit stamps events
//     with the installed virtual-clock func and therefore may only be
//     called from the controller goroutine (the one advancing the
//     clock); concurrent emitters — toolchain workers, transports, the
//     fault injector — use EmitAt with an explicit stamp (0 = unknown)
//     so no goroutine races the clock.
package obsv

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cascade/internal/vclock"
)

// EventKind classifies one JIT lifecycle event.
type EventKind uint8

// The event taxonomy. The ordering follows the lifecycle of one
// subprogram: source enters (eval/elaborate), a compile is submitted and
// resolved against the bitstream cache, the bitstream lands, the engine
// hot-swaps into hardware — and, on the failure path, faults, evictions,
// and recoveries walk it back down.
const (
	EvEval           EventKind = iota // source fragment parsed and integrated
	EvElaborate                       // one subprogram elaborated (type-checked)
	EvCompileSubmit                   // background compilation submitted
	EvCacheHit                        // submission served from the bitstream cache
	EvCacheMiss                       // submission paid for place-and-route
	EvBitstreamReady                  // flow complete; bitstream available at the stamp
	EvCompileFailed                   // flow complete with an error
	EvHotSwap                         // engine migrated between software and hardware
	EvEviction                        // hardware→software reverse hot-swap
	EvFault                           // a fault was injected or observed
	EvRecovery                        // recovery action (resubmit, journal replay)
	EvPhase                           // runtime phase transition (Figure 9)
	EvCheckpoint                      // durable checkpoint written
	EvSpawn                           // engine spawned on a remote host
	EvTransportError                  // transport round-trip failed after retries
	EvProbe                           // supervision liveness probe sent (detail: outcome)
	EvBreaker                         // circuit breaker state transition
	EvFailover                        // remote engine re-seeded locally after a trip
	EvRehost                          // failed-over engine re-hosted on the remote
)

var eventKindNames = [...]string{
	EvEval:           "eval",
	EvElaborate:      "elaborate",
	EvCompileSubmit:  "compile-submit",
	EvCacheHit:       "cache-hit",
	EvCacheMiss:      "cache-miss",
	EvBitstreamReady: "bitstream-ready",
	EvCompileFailed:  "compile-failed",
	EvHotSwap:        "hot-swap",
	EvEviction:       "eviction",
	EvFault:          "fault",
	EvRecovery:       "recovery",
	EvPhase:          "phase",
	EvCheckpoint:     "checkpoint",
	EvSpawn:          "spawn",
	EvTransportError: "transport-error",
	EvProbe:          "probe",
	EvBreaker:        "breaker",
	EvFailover:       "failover",
	EvRehost:         "rehost",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one trace record: what happened, to which engine path, when
// on the wall clock, and when on the virtual timeline (0 when the
// emitter had no virtual stamp — e.g. a transport failure).
type Event struct {
	Seq    uint64
	WallNs int64 // wall-clock stamp, UnixNano
	VPs    uint64
	Kind   EventKind
	Path   string // engine/instance path; "" for runtime-global events
	Detail string
}

// String renders the event as one human-readable trace line (the REPL's
// :trace).
func (e Event) String() string {
	path := e.Path
	if path == "" {
		path = "-"
	}
	return fmt.Sprintf("%6d  vt=%-12s %-15s %-16s %s",
		e.Seq, fmt.Sprintf("%.6fs", float64(e.VPs)/float64(vclock.S)), e.Kind, path, e.Detail)
}

// jsonEscape escapes a string for a JSON string literal (the fields we
// emit are short; this avoids pulling encoding/json onto the path).
func jsonEscape(s string) string {
	var sb []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			sb = append(sb, '\\', c)
		case c == '\n':
			sb = append(sb, '\\', 'n')
		case c == '\t':
			sb = append(sb, '\\', 't')
		case c < 0x20:
			sb = append(sb, fmt.Sprintf("\\u%04x", c)...)
		default:
			sb = append(sb, c)
		}
	}
	return string(sb)
}

// writeJSON renders the event as one JSONL record.
func (e Event) writeJSON(w io.Writer) {
	fmt.Fprintf(w, `{"seq":%d,"wall_ns":%d,"vps":%d,"kind":%q,"path":%q,"detail":"%s"}`+"\n",
		e.Seq, e.WallNs, e.VPs, e.Kind.String(), e.Path, jsonEscape(e.Detail))
}

// Options configures an Observer.
type Options struct {
	// Addr, when non-empty, is the TCP address StartHTTP serves
	// /metrics, /trace, and /debug/pprof on ("127.0.0.1:0" picks a free
	// port; read the result from HTTPAddr).
	Addr string
	// TraceCap bounds the event ring buffer (default 4096). When the
	// ring is full the oldest events are overwritten; the drop count is
	// exported as cascade_trace_dropped_total.
	TraceCap int
	// WallClock overrides the wall-clock source (tests pin it to prove
	// virtual-time determinism; default time.Now).
	WallClock func() time.Time
}

// Observer is the per-process observability hub: an event ring, a
// metrics registry, and (optionally) an HTTP endpoint. One Observer may
// be shared by a runtime, its toolchain, its transports, and its fault
// injector — or sit host-side inside cascade-engined.
type Observer struct {
	wall func() time.Time
	reg  registry

	mu   sync.Mutex
	vnow func() uint64 // virtual clock; Emit-only, controller goroutine
	seq  uint64
	ring []Event
	head int // next write position
	n    int // events currently buffered

	httpMu sync.Mutex
	addr   string
	srv    *httpServer

	// Core metric set. Everything here is pre-registered by New so
	// instrumentation is a field access plus one atomic op; additional
	// series can be registered with NewCounter/NewGauge/NewHistogram.
	Events          *Counter   // cascade_events_total
	TraceDropped    *Counter   // cascade_trace_dropped_total
	CompileLatency  *Histogram // cascade_compile_latency_virtual_seconds
	TransportRTT    *Histogram // cascade_transport_roundtrip_seconds (wall)
	BatchMakespan   *Histogram // cascade_settle_batch_makespan_virtual_seconds
	LaneOccupancy   *Histogram // cascade_batch_engines
	CheckpointWall  *Histogram // cascade_checkpoint_seconds (wall)
	CacheHits       *Counter   // cascade_compile_cache_hits_total
	CacheMisses     *Counter   // cascade_compile_cache_misses_total
	Promotions      *Counter   // cascade_promotions_total
	Evictions       *Counter   // cascade_evictions_total
	Faults          *Counter   // cascade_faults_injected_total
	TransportErrors *Counter   // cascade_transport_errors_total
	TransportDrops  *Counter   // cascade_transport_drops_total
	TransportRetry  *Counter   // cascade_transport_retries_total
	Checkpoints     *Counter   // cascade_checkpoints_total
	Probes          *Counter   // cascade_supervise_probes_total
	ProbeFailures   *Counter   // cascade_supervise_probe_failures_total
	BreakerTrips    *Counter   // cascade_supervise_breaker_trips_total
	Failovers       *Counter   // cascade_supervise_failovers_total
	Rehosts         *Counter   // cascade_supervise_rehosts_total
	Phase           *Gauge     // cascade_phase
	AreaLEs         *Gauge     // cascade_area_les
}

// New builds an Observer. It does not listen; call StartHTTP (idempotent
// — the runtime does it for you) to serve the endpoint named in
// Options.Addr.
func New(opts Options) *Observer {
	if opts.TraceCap <= 0 {
		opts.TraceCap = 4096
	}
	wall := opts.WallClock
	if wall == nil {
		wall = time.Now
	}
	o := &Observer{
		wall: wall,
		ring: make([]Event, opts.TraceCap),
		addr: opts.Addr,
	}
	o.Events = o.NewCounter("cascade_events_total", "Lifecycle events emitted into the trace ring.")
	o.TraceDropped = o.NewCounter("cascade_trace_dropped_total", "Trace events overwritten because the ring was full.")
	// Virtual compile latencies span ~1 virtual ms (cache hit) to hours
	// (paper-faithful place-and-route of large designs).
	o.CompileLatency = o.NewHistogram("cascade_compile_latency_virtual_seconds",
		"Virtual duration of background compilations as billed by the toolchain (cache hits included).",
		ExpBuckets(vclock.Ms, 4, 16), float64(vclock.S))
	// Wall round-trips: 1µs (loopback) up to ~4s.
	o.TransportRTT = o.NewHistogram("cascade_transport_roundtrip_seconds",
		"Wall-clock latency of transport round-trips to remote engines.",
		ExpBuckets(1000, 4, 12), 1e9)
	o.BatchMakespan = o.NewHistogram("cascade_settle_batch_makespan_virtual_seconds",
		"Virtual makespan billed per evaluate/update batch.",
		ExpBuckets(uint64(vclock.Ns), 4, 16), float64(vclock.S))
	o.LaneOccupancy = o.NewHistogram("cascade_batch_engines",
		"Engines dispatched per scheduler batch (lane occupancy).",
		[]uint64{1, 2, 4, 8, 16, 32, 64}, 1)
	o.CheckpointWall = o.NewHistogram("cascade_checkpoint_seconds",
		"Wall-clock cost of writing one durable checkpoint.",
		ExpBuckets(100_000, 4, 12), 1e9)
	o.CacheHits = o.NewCounter("cascade_compile_cache_hits_total", "Compilations served from the bitstream cache (ratio = hits / (hits+misses)).")
	o.CacheMisses = o.NewCounter("cascade_compile_cache_misses_total", "Compilations that paid for place-and-route.")
	o.Promotions = o.NewCounter("cascade_promotions_total", "Software-to-hardware hot swaps.")
	o.Evictions = o.NewCounter("cascade_evictions_total", "Hardware-to-software reverse hot swaps.")
	o.Faults = o.NewCounter("cascade_faults_injected_total", "Faults injected across all surfaces.")
	o.TransportErrors = o.NewCounter("cascade_transport_errors_total", "Transport round-trips that failed after the retry budget.")
	o.TransportDrops = o.NewCounter("cascade_transport_drops_total", "Fault-injected frame drops consumed by transports.")
	o.TransportRetry = o.NewCounter("cascade_transport_retries_total", "Transport reconnect/resend attempts beyond the first.")
	o.Checkpoints = o.NewCounter("cascade_checkpoints_total", "Durable checkpoints written.")
	o.Probes = o.NewCounter("cascade_supervise_probes_total", "Supervision liveness probes sent to remote engine hosts.")
	o.ProbeFailures = o.NewCounter("cascade_supervise_probe_failures_total", "Supervision probes that failed (or round-trips counted against the breaker).")
	o.BreakerTrips = o.NewCounter("cascade_supervise_breaker_trips_total", "Circuit-breaker closed-to-open transitions.")
	o.Failovers = o.NewCounter("cascade_supervise_failovers_total", "Remote engines re-seeded onto local engines after a breaker trip.")
	o.Rehosts = o.NewCounter("cascade_supervise_rehosts_total", "Failed-over engines re-hosted on their remote once the breaker closed.")
	o.Phase = o.NewGauge("cascade_phase", "Current JIT phase (0=empty 1=software 2=inlined 3=hardware 4=forwarded 5=open-loop 6=native).")
	o.AreaLEs = o.NewGauge("cascade_area_les", "Fabric area of the current hardware engines, in logic elements.")
	return o
}

// Enabled reports whether o records anything (false for nil).
func (o *Observer) Enabled() bool { return o != nil }

// WallNow is the host-side wall clock every component consults instead
// of calling time.Now directly: with observability configured it is the
// (possibly test-pinned) Options.WallClock, and on a nil Observer it
// falls back to time.Now. Routing all wall reads through here is what
// lets the determinism tests *prove* wall time never leaks into virtual
// billing — pin the clock, replay, compare bytes.
func (o *Observer) WallNow() time.Time {
	if o == nil {
		return time.Now()
	}
	return o.wall()
}

// SetVirtualNow installs the virtual-clock source Emit stamps events
// with. The runtime installs its vclock at construction; components
// without one leave it unset and use EmitAt.
func (o *Observer) SetVirtualNow(fn func() uint64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.vnow = fn
	o.mu.Unlock()
}

// Emit records one event stamped with the installed virtual clock.
// Controller goroutine only (the virtual clock is not synchronized);
// concurrent emitters use EmitAt.
func (o *Observer) Emit(kind EventKind, path, detail string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	vps := uint64(0)
	if o.vnow != nil {
		vps = o.vnow()
	}
	o.emitLocked(vps, kind, path, detail)
	o.mu.Unlock()
}

// EmitAt records one event with an explicit virtual stamp (0 when the
// emitter has none). Safe from any goroutine.
func (o *Observer) EmitAt(vps uint64, kind EventKind, path, detail string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.emitLocked(vps, kind, path, detail)
	o.mu.Unlock()
}

// emitLocked appends to the ring; o.mu held.
func (o *Observer) emitLocked(vps uint64, kind EventKind, path, detail string) {
	o.seq++
	ev := Event{
		Seq:    o.seq,
		WallNs: o.wall().UnixNano(),
		VPs:    vps,
		Kind:   kind,
		Path:   path,
		Detail: detail,
	}
	if o.n == len(o.ring) {
		o.TraceDropped.Inc()
	} else {
		o.n++
	}
	o.ring[o.head] = ev
	o.head = (o.head + 1) % len(o.ring)
	o.Events.Inc()
}

// Trace returns the most recent n events, oldest first (n <= 0 or
// n > buffered returns everything buffered). Safe on a nil Observer.
func (o *Observer) Trace(n int) []Event {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if n <= 0 || n > o.n {
		n = o.n
	}
	out := make([]Event, 0, n)
	start := o.head - n
	if start < 0 {
		start += len(o.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, o.ring[(start+i)%len(o.ring)])
	}
	return out
}

// WriteTraceJSONL exports the buffered trace as JSON Lines, oldest
// event first.
func (o *Observer) WriteTraceJSONL(w io.Writer) {
	if o == nil {
		return
	}
	for _, ev := range o.Trace(0) {
		ev.writeJSON(w)
	}
}
