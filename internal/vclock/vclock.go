// Package vclock implements Cascade-Go's virtual-time accounting
// (paper §4.1, Figure 8). Engines occupy different physical clock
// domains — software in GHz, FPGA fabric in MHz — and the runtime's
// performance is defined by its virtual clock: the rate at which it
// dispatches scheduler iterations. Every unit of work (software
// interpreter ops, hardware cycles, data/control-plane messages, runtime
// dispatch) advances a shared virtual timeline by a cost drawn from a
// Model; the evaluation figures plot ticks against this timeline.
//
// Virtual time is measured in picoseconds so a 50 MHz fabric cycle
// (20,000 ps) and a multi-GHz CPU op can share one integer axis.
package vclock

// Picosecond multiples.
const (
	Ns uint64 = 1000
	Us uint64 = 1000 * Ns
	Ms uint64 = 1000 * Us
	S  uint64 = 1000 * Ms
)

// Model assigns virtual-time costs to the runtime's unit operations. The
// defaults approximate the paper's platform: an 800 MHz ARM host, a
// 50 MHz Cyclone V fabric, and a memory-mapped IO bus.
type Model struct {
	// SWEvalOpPs is the cost of one software-engine interpreter
	// operation (process execution, variable write).
	SWEvalOpPs uint64
	// HWCyclePs is one FPGA fabric cycle (20,000 ps at 50 MHz).
	HWCyclePs uint64
	// HWCyclesPerIter is the fabric cycles one ABI-wrapped scheduler
	// iteration costs in hardware (latch commit + clock toggle + task
	// check, per Figure 10). With 2 iterations per virtual tick this is
	// what bounds open-loop throughput below native.
	HWCyclesPerIter uint64
	// MsgPs is one data/control-plane message between the runtime and a
	// hardware-located engine (an MMIO round trip).
	MsgPs uint64
	// DispatchPs is the runtime's own per-iteration overhead.
	DispatchPs uint64
	// NativeOpPs is one compiled native-tier operation (internal/njit):
	// a fused closure over word-packed state, far cheaper than an
	// interpreted op but still software, so it cannot beat the fabric.
	NativeOpPs uint64
}

// DefaultModel returns costs calibrated to the paper's testbed.
func DefaultModel() Model {
	return Model{
		// ~12K ARM cycles per interpreted event (AST walk plus queue
		// management at 800 MHz) — calibrated so the PoW benchmark
		// simulates in the paper's sub-kHz band.
		SWEvalOpPs:      15 * Us,
		HWCyclePs:       20 * Ns,   // 50 MHz fabric
		HWCyclesPerIter: 3,         // ABI wrapper costs ~3 cycles per tick
		MsgPs:           1800 * Ns, // MMIO round trip (~560K transfers/s)
		DispatchPs:      300 * Ns,  // scheduler bookkeeping per iteration
		// ~240 ARM cycles per compiled closure at 800 MHz: ~50x faster
		// than the interpreter, ~15x slower than a fabric cycle.
		NativeOpPs: 300 * Ns,
	}
}

// Clock is a monotonically advancing virtual timeline with work counters.
type Clock struct {
	nowPs uint64

	// Counters partition elapsed time by cause (Figure 8's compute /
	// communication / overhead split).
	ComputePs  uint64
	CommPs     uint64
	OverheadPs uint64
	Messages   uint64
}

// Now returns the current virtual time in picoseconds.
func (c *Clock) Now() uint64 { return c.nowPs }

// NowSeconds returns the current virtual time in seconds.
func (c *Clock) NowSeconds() float64 { return float64(c.nowPs) / float64(S) }

// AdvanceCompute advances the timeline by compute work.
func (c *Clock) AdvanceCompute(ps uint64) {
	c.nowPs += ps
	c.ComputePs += ps
}

// AdvanceComm advances the timeline by n messages at the model cost.
func (c *Clock) AdvanceComm(n uint64, m *Model) {
	ps := n * m.MsgPs
	c.nowPs += ps
	c.CommPs += ps
	c.Messages += n
}

// AdvanceOverhead advances the timeline by runtime overhead.
func (c *Clock) AdvanceOverhead(ps uint64) {
	c.nowPs += ps
	c.OverheadPs += ps
}

// AdvanceRaw advances the timeline without attribution (used for
// idle waits, e.g. waiting out a background compilation).
func (c *Clock) AdvanceRaw(ps uint64) { c.nowPs += ps }

// Breakdown is a stable snapshot of a clock's virtual-time accounting,
// partitioned by cause (Figure 8's compute / communication / overhead
// split). IdlePs is time that elapsed without attribution — waits on
// background compilations.
type Breakdown struct {
	NowPs      uint64
	ComputePs  uint64
	CommPs     uint64
	OverheadPs uint64
	IdlePs     uint64
	Messages   uint64
}

// Restore sets the clock to a previously captured breakdown (snapshot
// restore and crash recovery: the recovered timeline continues from the
// captured virtual time, so $time-relative behaviour and the JIT's
// compile-overlap accounting stay continuous across the gap).
func (c *Clock) Restore(b Breakdown) {
	c.nowPs = b.NowPs
	c.ComputePs = b.ComputePs
	c.CommPs = b.CommPs
	c.OverheadPs = b.OverheadPs
	c.Messages = b.Messages
}

// Breakdown snapshots the clock.
func (c *Clock) Breakdown() Breakdown {
	attributed := c.ComputePs + c.CommPs + c.OverheadPs
	idle := uint64(0)
	if c.nowPs > attributed {
		idle = c.nowPs - attributed
	}
	return Breakdown{
		NowPs:      c.nowPs,
		ComputePs:  c.ComputePs,
		CommPs:     c.CommPs,
		OverheadPs: c.OverheadPs,
		IdlePs:     idle,
		Messages:   c.Messages,
	}
}
