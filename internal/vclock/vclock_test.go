package vclock

import "testing"

func TestUnits(t *testing.T) {
	if S != 1_000_000_000_000 {
		t.Fatalf("S=%d", S)
	}
	if Ms != 1_000_000_000 || Us != 1_000_000 || Ns != 1_000 {
		t.Fatal("unit ladder wrong")
	}
}

func TestDefaultModelShape(t *testing.T) {
	m := DefaultModel()
	if m.HWCyclePs != 20*Ns {
		t.Fatalf("fabric period %d", m.HWCyclePs)
	}
	// The design depends on the clock-domain gap: software events are
	// orders slower than fabric cycles, and messages dwarf both.
	if m.SWEvalOpPs <= m.HWCyclePs*10 {
		t.Fatal("software ops should be much slower than fabric cycles")
	}
	if m.MsgPs <= m.HWCyclePs*10 {
		t.Fatal("messages should dwarf fabric cycles (the open-loop motivation)")
	}
	if m.HWCyclesPerIter < 2 || m.HWCyclesPerIter > 6 {
		t.Fatalf("wrapper cycles per tick %d out of the ~3x band", m.HWCyclesPerIter)
	}
}

func TestClockAttribution(t *testing.T) {
	var c Clock
	m := DefaultModel()
	c.AdvanceCompute(100)
	c.AdvanceComm(2, &m)
	c.AdvanceOverhead(50)
	c.AdvanceRaw(7)
	want := 100 + 2*m.MsgPs + 50 + 7
	if c.Now() != want {
		t.Fatalf("now=%d want %d", c.Now(), want)
	}
	if c.ComputePs != 100 || c.OverheadPs != 50 || c.CommPs != 2*m.MsgPs || c.Messages != 2 {
		t.Fatalf("attribution wrong: %+v", c)
	}
	if c.NowSeconds() <= 0 {
		t.Fatal("seconds conversion")
	}
}
