// Package repl implements Cascade-Go's user interface (paper §3.1,
// Figure 3): a read-eval-print loop in the style of a Python interpreter.
// Verilog is lexed, parsed, and type-checked one input at a time; module
// declarations join the outer scope, statements append to the implicit
// root module, and code begins executing the moment it is accepted — IO
// side effects are visible immediately, while the JIT compiles hardware
// in the background. Batch mode feeds a file through the same path.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"cascade/internal/hyper"
	"cascade/internal/persist"
	"cascade/internal/runtime"
	"cascade/internal/vclock"
	"cascade/internal/verilog"
)

// REPL couples a runtime to an input/output stream.
type REPL struct {
	rt  *runtime.Runtime
	out io.Writer

	// Multi-tenant attachment (NewSession): evals and ticks route
	// through sess so the hypervisor's residency scheduler stays in
	// charge, and hv powers the :sessions view. Both nil for the classic
	// single-tenant REPL.
	hv   *hyper.Hypervisor
	sess *hyper.Session

	mu   sync.Mutex // guards rt
	stop chan struct{}
	wg   sync.WaitGroup
}

// view adapts the REPL's writer to the runtime's view interface.
type view struct {
	out io.Writer
}

func (v *view) Display(text string)        { fmt.Fprint(v.out, text) }
func (v *view) Info(f string, args ...any) { fmt.Fprintf(v.out, "[cascade] "+f+"\n", args...) }
func (v *view) Error(err error)            { fmt.Fprintf(v.out, "[cascade] error: %v\n", err) }

// New builds a REPL over a runtime configured with opts; the runtime's
// view is pointed at out. The standard prelude is evaluated.
func New(opts runtime.Options, out io.Writer) (*REPL, error) {
	opts.View = &view{out: out}
	rt := runtime.New(opts)
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		return nil, err
	}
	return &REPL{rt: rt, out: out, stop: make(chan struct{})}, nil
}

// NewSession builds a REPL over a tenant session of hv instead of a
// private runtime: the hypervisor owns device and toolchain, the
// session's program output is pointed at out, and every eval and tick
// goes through the session so fabric residency is scheduled fairly
// against the other tenants. The standard prelude is evaluated.
// Closing the REPL closes the session.
func NewSession(hv *hyper.Hypervisor, out io.Writer, opts ...hyper.SessionOption) (*REPL, error) {
	opts = append(opts, hyper.WithView(&view{out: out}))
	sess, err := hv.NewSession(opts...)
	if err != nil {
		return nil, err
	}
	if err := sess.Eval(runtime.DefaultPrelude); err != nil {
		sess.Close()
		return nil, err
	}
	return &REPL{rt: sess.Runtime(), out: out, hv: hv, sess: sess, stop: make(chan struct{})}, nil
}

// Session returns the tenant session behind a NewSession REPL (nil for
// single-tenant REPLs).
func (r *REPL) Session() *hyper.Session { return r.sess }

// NewRestored builds a REPL around a restored snapshot instead of the
// standard prelude: the migrated program continues under interactive
// control (the -restore flag of cmd/cascade).
func NewRestored(opts runtime.Options, snap *runtime.Snapshot, out io.Writer) (*REPL, error) {
	opts.View = &view{out: out}
	rt := runtime.New(opts)
	if err := rt.Restore(snap); err != nil {
		return nil, err
	}
	return &REPL{rt: rt, out: out, stop: make(chan struct{})}, nil
}

// Open builds a REPL over a crash-safe persistent runtime (the
// -checkpoint-dir flag of cmd/cascade): opts.Persist must name a
// directory, and whatever state a previous process left there is
// recovered before the prompt appears. On a fresh directory the
// standard prelude is evaluated as usual; on recovery the program is
// already mid-execution and resumes where the journal left off.
func Open(opts runtime.Options, out io.Writer) (*REPL, *runtime.RecoveryInfo, error) {
	opts.View = &view{out: out}
	rt, info, err := runtime.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	if !info.Recovered {
		if err := rt.Eval(runtime.DefaultPrelude); err != nil {
			rt.ClosePersistence()
			return nil, nil, err
		}
	}
	return &REPL{rt: rt, out: out, stop: make(chan struct{})}, info, nil
}

// Runtime exposes the underlying runtime (tests, commands).
func (r *REPL) Runtime() *runtime.Runtime { return r.rt }

// eval routes source through the session when one is attached (so a
// closed session reports ErrClosed instead of mutating a dead tenant).
// Callers hold r.mu.
func (r *REPL) eval(ctx context.Context, src string) error {
	if r.sess != nil {
		return r.sess.EvalCtx(ctx, src)
	}
	return r.rt.EvalCtx(ctx, src)
}

// runTicks routes stepping through the session's residency scheduler
// when one is attached. Callers hold r.mu.
func (r *REPL) runTicks(ctx context.Context, n uint64) error {
	if r.sess != nil {
		return r.sess.RunTicksCtx(ctx, n)
	}
	return r.rt.RunTicksCtx(ctx, n)
}

// start launches the background scheduler: the program keeps running
// while the user types.
func (r *REPL) start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			r.mu.Lock()
			if !r.rt.Finished() {
				r.runTicks(context.Background(), 1)
			}
			fin := r.rt.Finished()
			r.mu.Unlock()
			if fin {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
}

// Close stops the background scheduler and, for a NewSession REPL,
// closes the tenant session (releasing its fabric region).
func (r *REPL) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
	if r.sess != nil {
		r.sess.Close()
	}
}

// InputComplete reports whether src forms a complete eval unit: balanced
// module/begin/case nesting and brackets, ending at a statement boundary.
func InputComplete(src string) bool {
	toks, _ := verilog.LexAll(src)
	depth, paren := 0, 0
	last := verilog.EOF
	for _, t := range toks {
		switch t.Kind {
		case verilog.KwModule, verilog.KwBegin, verilog.KwCase, verilog.KwCasez:
			depth++
		case verilog.KwEndmodule, verilog.KwEnd, verilog.KwEndcase:
			depth--
		case verilog.LParen, verilog.LBrack, verilog.LBrace:
			paren++
		case verilog.RParen, verilog.RBrack, verilog.RBrace:
			paren--
		}
		if t.Kind != verilog.EOF {
			last = t.Kind
		}
	}
	if depth > 0 || paren > 0 {
		return false
	}
	switch last {
	case verilog.Semi, verilog.KwEndmodule, verilog.KwEnd, verilog.KwEndcase, verilog.EOF:
		return true
	}
	return false
}

// Interact runs the interactive loop until EOF or :quit.
func (r *REPL) Interact(in io.Reader) error {
	fmt.Fprintln(r.out, "Cascade-Go — a JIT compiler for Verilog. Type :help for commands.")
	r.start()
	defer r.Close()
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(r.out, "CASCADE >>> ")
		} else {
			fmt.Fprint(r.out, "        ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if quit := r.command(trimmed); quit {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if InputComplete(pending.String()) && strings.TrimSpace(pending.String()) != "" {
			src := pending.String()
			pending.Reset()
			r.mu.Lock()
			err := r.eval(context.Background(), src)
			r.mu.Unlock()
			if err != nil {
				fmt.Fprintf(r.out, "error: %v\n", err)
			}
		}
		prompt()
	}
	return scanner.Err()
}

// command handles a :directive; it reports whether the REPL should exit.
func (r *REPL) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return true
	case ":help", ":h":
		fmt.Fprint(r.out, `commands:
  :help            this text
  :quit            exit
  :phase           current JIT phase and virtual time
  :stats           scheduler and device statistics
  :health          remote-engine supervision: breaker state, probes, failovers
  :engines         per-engine location, transport, and traffic counters
  :pad <value>     press/release buttons (bit i = button i)
  :leds            show the LED bank
  :run <ticks>     run N clock ticks synchronously
  :sessions        list the hypervisor's live tenant sessions
  :program         echo the program eval'd so far
  :save <path>     write a migratable snapshot of the running program
  :load <path>     replace the running program with a saved snapshot
  :trace [n]       show the last n lifecycle events (default 20)
  :metrics         dump the metrics registry in Prometheus text format
`)
	case ":phase":
		r.mu.Lock()
		fmt.Fprintf(r.out, "phase=%v vtime=%.3fs ticks=%d area=%d LEs\n",
			r.rt.Phase(), float64(r.rt.VirtualNow())/float64(vclock.S), r.rt.Ticks(), r.rt.AreaLEs())
		r.mu.Unlock()
	case ":stats":
		r.mu.Lock()
		st := r.rt.Stats()
		r.mu.Unlock()
		fmt.Fprintln(r.out, st.Summary())
		for _, e := range st.Engines {
			fmt.Fprintf(r.out, "  engine %-12s %s\n", e.Path, e.Location)
		}
		if r.sess != nil {
			in := r.sess.Info()
			fmt.Fprintf(r.out, "  session %s region=%dLEs share=%s resident=%v quanta=%d (of %d tenants)\n",
				in.ID, in.QuotaLEs, shareLabel(in.CompileShare), in.Resident, in.Quanta, r.hv.SessionCount())
		}
	case ":health":
		r.mu.Lock()
		st := r.rt.Stats()
		r.mu.Unlock()
		sup := st.Supervise
		if !sup.Enabled {
			fmt.Fprintln(r.out, "supervision off (enable with -supervise; engines fail hard after the retry budget)")
			break
		}
		fmt.Fprintf(r.out, "breaker=%s probes=%d failures=%d trips=%d failovers=%d rehosts=%d\n",
			sup.State, sup.Probes, sup.ProbeFailures, sup.Trips, sup.Failovers, sup.Rehosts)
		if st.Remote != "" {
			fmt.Fprintf(r.out, "daemon %s: roundtrips=%d drops=%d retries=%d\n",
				st.Remote, st.Xport.RoundTrips, st.Xport.Drops, st.Xport.Retries)
		}
		for _, e := range st.Engines {
			if e.Transport == "tcp" {
				fmt.Fprintf(r.out, "  engine %-12s remote (%s)\n", e.Path, e.Location)
			}
		}
	case ":sessions":
		if r.hv == nil {
			fmt.Fprintln(r.out, "not serving a hypervisor (single-tenant runtime)")
			break
		}
		infos := r.hv.SessionInfos()
		if len(infos) == 0 {
			fmt.Fprintln(r.out, "no live sessions")
			break
		}
		fmt.Fprintf(r.out, "%-10s %-20s %10s %6s %9s %7s %8s\n",
			"ID", "PHASE", "REGION", "SHARE", "RESIDENT", "QUANTA", "TICKS")
		for _, in := range infos {
			resident := "-"
			if in.Resident {
				resident = "yes"
			}
			fmt.Fprintf(r.out, "%-10s %-20s %8dLE %6s %9s %7d %8d\n",
				in.ID, in.Phase, in.QuotaLEs, shareLabel(in.CompileShare),
				resident, in.Quanta, in.Ticks)
		}
	case ":engines":
		r.mu.Lock()
		st := r.rt.Stats()
		r.mu.Unlock()
		if st.Remote != "" {
			fmt.Fprintf(r.out, "remote daemon: %s\n", st.Remote)
		}
		if len(st.Engines) == 0 {
			fmt.Fprintln(r.out, "no engines scheduled")
			break
		}
		fmt.Fprintf(r.out, "%-16s %-10s %-12s %-9s %10s %10s %10s %6s %7s\n",
			"PATH", "LOCATION", "TIER", "TRANSPORT", "ROUNDTRIPS", "OUT", "IN", "DROPS", "RETRIES")
		for _, e := range st.Engines {
			tier := e.Tier
			if tier == "" {
				tier = "-"
			}
			fmt.Fprintf(r.out, "%-16s %-10s %-12s %-9s %10d %9dB %9dB %6d %7d\n",
				e.Path, e.Location, tier, e.Transport,
				e.Xport.RoundTrips, e.Xport.BytesOut, e.Xport.BytesIn,
				e.Xport.Drops, e.Xport.Retries)
		}
	case ":pad":
		if len(fields) < 2 {
			fmt.Fprintln(r.out, "usage: :pad <value>")
			break
		}
		var v uint64
		fmt.Sscanf(fields[1], "%v", &v)
		r.rt.World().PressPad("main.pad", v)
		fmt.Fprintf(r.out, "pad=%d\n", v)
	case ":leds":
		v := r.rt.World().Led("main.led")
		var lights strings.Builder
		for i := 7; i >= 0; i-- {
			if v>>uint(i)&1 == 1 {
				lights.WriteString("●")
			} else {
				lights.WriteString("○")
			}
		}
		fmt.Fprintf(r.out, "led=%08b %s\n", v, lights.String())
	case ":save":
		if len(fields) < 2 {
			fmt.Fprintln(r.out, "usage: :save <path>")
			break
		}
		r.mu.Lock()
		blob := runtime.EncodeSnapshot(r.rt.Snapshot())
		r.mu.Unlock()
		// Atomic write: a crash mid-save leaves either the previous
		// file or the new one, never a torn snapshot.
		if err := persist.WriteFileAtomic(fields[1], []byte(blob), 0o644); err != nil {
			fmt.Fprintf(r.out, "save failed: %v\n", err)
			break
		}
		fmt.Fprintf(r.out, "snapshot written to %s (%d bytes)\n", fields[1], len(blob))
	case ":load":
		if len(fields) < 2 {
			fmt.Fprintln(r.out, "usage: :load <path>")
			break
		}
		blob, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintf(r.out, "load failed: %v\n", err)
			break
		}
		snap, err := runtime.DecodeSnapshot(string(blob))
		if err != nil {
			fmt.Fprintf(r.out, "load failed: %v\n", err)
			break
		}
		r.mu.Lock()
		err = r.rt.Restore(snap)
		r.mu.Unlock()
		if err != nil {
			// Restore validates before mutating: the running program
			// is untouched and the session continues.
			fmt.Fprintf(r.out, "load failed (program unchanged): %v\n", err)
			break
		}
		if r.rt.PersistDir() != "" {
			// The journal describes the replaced program; cut a fresh
			// checkpoint so a crash recovers the loaded one.
			if err := r.rt.Checkpoint(); err != nil {
				fmt.Fprintf(r.out, "warning: checkpoint after load failed: %v\n", err)
			}
		}
		fmt.Fprintf(r.out, "snapshot loaded from %s: ticks=%d phase=%v\n",
			fields[1], r.rt.Ticks(), r.rt.Phase())
	case ":trace":
		o := r.rt.Observer()
		if !o.Enabled() {
			fmt.Fprintln(r.out, "observability is off (start with -observe, or WithObservability)")
			break
		}
		n := 20
		if len(fields) > 1 {
			fmt.Sscanf(fields[1], "%d", &n)
		}
		r.mu.Lock()
		evs := o.Trace(n)
		r.mu.Unlock()
		if len(evs) == 0 {
			fmt.Fprintln(r.out, "no events recorded yet")
			break
		}
		for _, ev := range evs {
			fmt.Fprintln(r.out, ev.String())
		}
	case ":metrics":
		o := r.rt.Observer()
		if !o.Enabled() {
			fmt.Fprintln(r.out, "observability is off (start with -observe, or WithObservability)")
			break
		}
		fmt.Fprint(r.out, o.MetricsText())
	case ":program":
		r.mu.Lock()
		fmt.Fprint(r.out, r.rt.ProgramSource())
		r.mu.Unlock()
	case ":run":
		n := uint64(1)
		if len(fields) > 1 {
			fmt.Sscanf(fields[1], "%d", &n)
		}
		r.mu.Lock()
		r.runTicks(context.Background(), n)
		r.mu.Unlock()
		fmt.Fprintf(r.out, "ticks=%d\n", r.rt.Ticks())
	default:
		fmt.Fprintf(r.out, "unknown command %s (:help)\n", fields[0])
	}
	return false
}

// Batch evaluates a whole source file and runs until $finish or the tick
// budget is exhausted (paper: "Cascade can also be run in batch mode with
// input provided through a file. The process is the same.").
func (r *REPL) Batch(src string, maxTicks uint64) error {
	return r.BatchCtx(context.Background(), src, maxTicks)
}

// BatchCtx is Batch with cancellation: a cancelled context stops the run
// between ticks and aborts any in-flight background compilations.
func (r *REPL) BatchCtx(ctx context.Context, src string, maxTicks uint64) error {
	if err := r.eval(ctx, src); err != nil {
		return err
	}
	return r.runBudget(ctx, maxTicks)
}

// Resume continues a recovered program until $finish or the tick budget
// is exhausted, without re-evaluating anything: the recovered runtime is
// already mid-execution (batch mode restarted over a persistence
// directory).
func (r *REPL) Resume(maxTicks uint64) error {
	return r.runBudget(context.Background(), maxTicks)
}

func (r *REPL) runBudget(ctx context.Context, maxTicks uint64) error {
	start := r.rt.Ticks()
	for !r.rt.Finished() && r.rt.Ticks()-start < maxTicks {
		if err := r.runTicks(ctx, 1); err != nil {
			return err
		}
	}
	return nil
}

// shareLabel renders a compile-worker fair share ("pool" for the
// unbounded default).
func shareLabel(n int) string {
	if n <= 0 {
		return "pool"
	}
	return fmt.Sprintf("%d", n)
}
