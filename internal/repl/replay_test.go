package repl

import (
	"fmt"
	"strings"
	"testing"

	"cascade/internal/fault"
	"cascade/internal/runtime"
)

// replayProg counts and prints on every posedge; plenty of activity for
// the JIT to promote mid-run and for an injected bus fault to evict.
const replayProg = `
reg [7:0] cnt = 1;
always @(posedge clk.val) begin
  cnt <= cnt + 1;
  $display("cnt=%d", cnt);
end
assign led.val = cnt;
`

// TestDeterministicReplay: the same fault seed must reproduce the same
// session byte for byte — program output, runtime Info lines (including
// the degradation and recovery messages), and the final stats summary.
// Open loop is disabled because its burst sizing adapts to wall-clock
// time; everything else in the runtime runs on the virtual clock.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		r, out := newTestREPL(t, runtime.Options{
			Parallelism: 2,
			Features:    runtime.Features{DisableOpenLoop: true},
			Injector: fault.New(fault.Config{
				Seed:             7,
				CompileTransient: 1, MaxCompileFaults: 1,
				BusError: 1, MaxBusFaults: 1,
			}),
		})
		if err := r.Batch(replayProg, 200); err != nil {
			t.Fatalf("batch: %v", err)
		}
		fmt.Fprintln(out, r.Runtime().Stats().Summary())
		return out.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different session:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	// The session must actually contain the failure-and-recovery story,
	// or byte-identity proves nothing about the fault path.
	for _, want := range []string{
		"degrading to software", // the eviction
		"moved to hardware",     // a (re-)promotion
		"evictions=1",           // the stats summary records it
		"cnt=",                  // the program ran
	} {
		if !strings.Contains(a, want) {
			t.Errorf("replayed session missing %q:\n%s", want, a)
		}
	}
}
