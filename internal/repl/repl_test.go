package repl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/hyper"
	"cascade/internal/runtime"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/workloads/ledswitch"
)

func newTestREPL(t *testing.T, opts runtime.Options) (*REPL, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	if opts.Device == nil {
		opts.Device = fpga.NewCycloneV()
	}
	if opts.Toolchain == nil {
		o := toolchain.DefaultOptions()
		o.Scale = 1e9
		o.BasePs = 1
		opts.Toolchain = toolchain.New(opts.Device, o)
	}
	r, err := New(opts, &out)
	if err != nil {
		t.Fatal(err)
	}
	return r, &out
}

func TestInputComplete(t *testing.T) {
	complete := []string{
		"wire x;",
		"assign led.val = cnt;",
		"module M(); endmodule",
		"always @(posedge clk.val) begin cnt <= cnt + 1; end",
		"reg [7:0] a = 1;",
	}
	incomplete := []string{
		"module M(",
		"module M();",
		"always @(posedge clk.val) begin",
		"assign x = (a +",
		"case (s)",
		"wire x", // no semicolon
	}
	for _, s := range complete {
		if !InputComplete(s) {
			t.Errorf("should be complete: %q", s)
		}
	}
	for _, s := range incomplete {
		if InputComplete(s) {
			t.Errorf("should be incomplete: %q", s)
		}
	}
}

func TestBatchRunsFigure1Style(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{})
	err := r.Batch(ledswitch.Figure3WithTasks, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Run some ticks, press a button, expect the display + finish.
	r.Runtime().World().PressPad("main.pad", 1)
	for i := 0; i < 10 && !r.Runtime().Finished(); i++ {
		r.Runtime().RunTicks(1)
	}
	if !r.Runtime().Finished() {
		t.Fatal("button press should have triggered $finish")
	}
	if !strings.Contains(out.String(), "\n") {
		t.Fatalf("no display output: %q", out.String())
	}
}

func TestInteractSession(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{})
	session := strings.NewReader(`
module Rol(input wire [7:0] x, output wire [7:0] y);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule
reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val)
  if (pad.val == 0)
    cnt <= r.y;
assign led.val = cnt;
:run 16
:leds
:phase
:stats
:pad 1
:quit
`)
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "CASCADE >>>") {
		t.Fatal("no prompt")
	}
	if !strings.Contains(text, "led=") {
		t.Fatalf(":leds output missing:\n%s", text)
	}
	if !strings.Contains(text, "phase=") {
		t.Fatalf(":phase output missing:\n%s", text)
	}
	if !strings.Contains(text, "pad=1") {
		t.Fatalf(":pad output missing:\n%s", text)
	}
}

func TestEnginesCommand(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableJIT: true}})
	session := strings.NewReader(`
reg [7:0] cnt = 1;
always @(posedge clk.val) cnt <= cnt + 1;
assign led.val = cnt;
:run 8
:engines
:quit
`)
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "TRANSPORT") {
		t.Fatalf(":engines header missing:\n%s", text)
	}
	if !strings.Contains(text, "local") {
		t.Fatalf(":engines should list local transports:\n%s", text)
	}
	if !strings.Contains(text, "software") {
		t.Fatalf(":engines should list engine locations:\n%s", text)
	}
}

// TestHealthCommand pins the :health rendering in both arrangements —
// the golden companion to TestStatsSummaryGolden's supervise[] case.
func TestHealthCommand(t *testing.T) {
	// Supervision off: the command says so instead of rendering zeros.
	r, out := newTestREPL(t, runtime.Options{})
	if err := r.Interact(strings.NewReader(":health\n:quit\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "supervision off") {
		t.Fatalf(":health without supervision should say so:\n%s", out.String())
	}

	// Supervision on: the breaker status line, exactly as formatted.
	r, out = newTestREPL(t, runtime.Options{Supervise: &supervise.Options{}})
	if err := r.Interact(strings.NewReader(":health\n:quit\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(),
		"breaker=closed probes=0 failures=0 trips=0 failovers=0 rehosts=0") {
		t.Fatalf(":health breaker line missing or drifted:\n%s", out.String())
	}
}

// TestSessionREPLGolden attaches a REPL to a hypervisor session and pins
// the :sessions table and the :stats per-tenant segment (the golden
// companions to TestStatsSummaryGolden's tenant[] case).
func TestSessionREPLGolden(t *testing.T) {
	to := toolchain.DefaultOptions()
	to.Scale = 1e9
	to.BasePs = 1
	hv, err := hyper.New(hyper.WithToolchainOptions(to))
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Close()

	var out strings.Builder
	r, err := NewSession(hv, &out,
		hyper.WithID("alpha"), hyper.WithQuota(16_000), hyper.WithCompileShare(2))
	if err != nil {
		t.Fatal(err)
	}

	// A second, idle tenant so :sessions exercises the multi-row path
	// (and the "pool" rendering of the unbounded default share).
	beta, err := hv.NewSession(hyper.WithID("beta"))
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()

	session := strings.NewReader(`
reg [7:0] n = 0;
always @(posedge clk.val) n <= n + 1;
assign led.val = n;
:run 32
:sessions
:stats
:quit
`)
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	// The :sessions table header, exactly as formatted.
	const header = "ID         PHASE                    REGION  SHARE  RESIDENT  QUANTA    TICKS"
	if !strings.Contains(text, header) {
		t.Fatalf(":sessions header missing or drifted:\n%s", text)
	}
	// alpha's row (region quota, bounded share) and beta's row (idle
	// tenant, "pool" rendering of the unbounded default share).
	for _, want := range []string{"alpha", "16000LE", "beta", "pool"} {
		if !strings.Contains(text, want) {
			t.Fatalf(":sessions table missing %q:\n%s", want, text)
		}
	}

	// The :stats per-tenant segment.
	if !strings.Contains(text, "session alpha region=16000LEs share=2") {
		t.Fatalf(":stats session segment missing:\n%s", text)
	}
	if !strings.Contains(text, "(of 2 tenants)") {
		t.Fatalf(":stats session segment should count live tenants:\n%s", text)
	}
	// And the runtime Summary line's tenant[] segment rides along.
	if !strings.Contains(text, "tenant[alpha region=16000LEs]") {
		t.Fatalf("Summary tenant segment missing:\n%s", text)
	}
}

// TestSessionsCommandSingleTenant: a classic single-runtime REPL has no
// hypervisor; :sessions must say so instead of fabricating a table.
func TestSessionsCommandSingleTenant(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableJIT: true}})
	if err := r.Interact(strings.NewReader(":sessions\n:quit\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not serving a hypervisor") {
		t.Fatalf(":sessions should report single-tenant mode:\n%s", out.String())
	}
}

func TestInteractReportsErrors(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableJIT: true}})
	session := strings.NewReader("assign q = nothing;\n:quit\n")
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("expected an error report:\n%s", out.String())
	}
}

func TestMultiLineInput(t *testing.T) {
	r, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableJIT: true}})
	session := strings.NewReader(`
reg [3:0] n = 0;
always @(posedge clk.val) begin
  n <= n + 1;
  if (n == 3)
    $display("three");
end
:run 12
:quit
`)
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "three") {
		t.Fatalf("multi-line always block did not execute:\n%s", out.String())
	}
	// The continuation prompt must have been shown.
	if !strings.Contains(out.String(), "... ") {
		t.Fatalf("no continuation prompt:\n%s", out.String())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.snap")

	// Session A: build up state, save, keep running past the save point.
	a, _ := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableOpenLoop: true}})
	session := strings.NewReader(
		"reg [7:0] n = 0; always @(posedge clk.val) n <= n + 1; assign led.val = n;\n" +
			":run 24\n:save " + path + "\n:run 10\n:quit\n")
	if err := a.Interact(session); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if _, err := runtime.DecodeSnapshot(string(blob)); err != nil {
		t.Fatalf(":save wrote an undecodable snapshot: %v", err)
	}

	// Session B: :load replaces the fresh program with the saved one and
	// execution continues from the saved tick count.
	b, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableOpenLoop: true}})
	if err := b.Interact(strings.NewReader(":load " + path + "\n:run 8\n:quit\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot loaded") {
		t.Fatalf(":load did not confirm:\n%s", out.String())
	}
	if got := b.Runtime().Ticks(); got < 24 {
		t.Fatalf("loaded session should resume past the save point, at tick %d", got)
	}
	if led := b.Runtime().World().Led("main.led"); led != b.Runtime().Steps()/2%256 {
		t.Fatalf("restored counter out of sync: led=%d steps=%d", led, b.Runtime().Steps())
	}
}

func TestLoadRejectsCorruptSnapshotAndKeepsSession(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, out := newTestREPL(t, runtime.Options{Features: runtime.Features{DisableJIT: true}})
	session := strings.NewReader(
		"reg [7:0] n = 3; assign led.val = n;\n:run 4\n:load " + path + "\n:run 4\n:leds\n:quit\n")
	if err := r.Interact(session); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "load failed") {
		t.Fatalf("corrupt snapshot should be rejected:\n%s", out.String())
	}
	// The running program survived the failed load.
	if led := r.Runtime().World().Led("main.led"); led != 3 {
		t.Fatalf("program lost after failed :load: led=%d", led)
	}
}
