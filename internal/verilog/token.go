// Package verilog implements the Verilog frontend used by Cascade-Go: a
// lexer, recursive-descent parser, abstract syntax tree, pretty-printer,
// and structural checker for the synthesizable core of Verilog-2005 plus
// the unsynthesizable system tasks the paper relies on ($display, $write,
// $finish, $monitor, $time).
package verilog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	ILLEGAL
	IDENT    // foo, \escaped
	SYSIDENT // $display
	NUMBER   // 8'h80, 42
	STRING   // "..."

	// Keywords.
	KwModule
	KwEndmodule
	KwInput
	KwOutput
	KwInout
	KwWire
	KwReg
	KwInteger
	KwParameter
	KwLocalparam
	KwAssign
	KwAlways
	KwInitial
	KwBegin
	KwEnd
	KwIf
	KwElse
	KwCase
	KwCasez
	KwEndcase
	KwDefault
	KwFor
	KwPosedge
	KwNegedge
	KwOr

	// Operators and punctuation.
	LParen    // (
	RParen    // )
	LBrack    // [
	RBrack    // ]
	LBrace    // {
	RBrace    // }
	Semi      // ;
	Colon     // :
	Comma     // ,
	Dot       // .
	At        // @
	Hash      // #
	Question  // ?
	Eq        // =
	PlusOp    // +
	MinusOp   // -
	StarOp    // *
	SlashOp   // /
	PercentOp // %
	PowerOp   // **
	EqEq      // ==
	NotEq     // !=
	CaseEq    // ===
	CaseNotEq // !==
	Lt        // <
	LtEq      // <=  (also non-blocking assign)
	Gt        // >
	GtEq      // >=
	AndAnd    // &&
	OrOr      // ||
	Bang      // !
	Amp       // &
	Pipe      // |
	Caret     // ^
	Tilde     // ~
	TildeAmp  // ~&
	TildePipe // ~|
	TildeXor  // ~^ or ^~
	Shl       // <<
	Shr       // >>
	AShl      // <<<
	AShr      // >>>
)

var keywords = map[string]TokenKind{
	"module":     KwModule,
	"endmodule":  KwEndmodule,
	"input":      KwInput,
	"output":     KwOutput,
	"inout":      KwInout,
	"wire":       KwWire,
	"reg":        KwReg,
	"integer":    KwInteger,
	"parameter":  KwParameter,
	"localparam": KwLocalparam,
	"assign":     KwAssign,
	"always":     KwAlways,
	"initial":    KwInitial,
	"begin":      KwBegin,
	"end":        KwEnd,
	"if":         KwIf,
	"else":       KwElse,
	"case":       KwCase,
	"casez":      KwCasez,
	"endcase":    KwEndcase,
	"default":    KwDefault,
	"for":        KwFor,
	"posedge":    KwPosedge,
	"negedge":    KwNegedge,
	"or":         KwOr,
}

var tokenNames = map[TokenKind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "identifier", SYSIDENT: "system identifier",
	NUMBER: "number", STRING: "string",
	KwModule: "module", KwEndmodule: "endmodule", KwInput: "input", KwOutput: "output",
	KwInout: "inout", KwWire: "wire", KwReg: "reg", KwInteger: "integer",
	KwParameter: "parameter", KwLocalparam: "localparam", KwAssign: "assign",
	KwAlways: "always", KwInitial: "initial", KwBegin: "begin", KwEnd: "end",
	KwIf: "if", KwElse: "else", KwCase: "case", KwCasez: "casez", KwEndcase: "endcase",
	KwDefault: "default", KwFor: "for", KwPosedge: "posedge", KwNegedge: "negedge", KwOr: "or",
	LParen: "(", RParen: ")", LBrack: "[", RBrack: "]", LBrace: "{", RBrace: "}",
	Semi: ";", Colon: ":", Comma: ",", Dot: ".", At: "@", Hash: "#", Question: "?",
	Eq: "=", PlusOp: "+", MinusOp: "-", StarOp: "*", SlashOp: "/", PercentOp: "%",
	PowerOp: "**", EqEq: "==", NotEq: "!=", CaseEq: "===", CaseNotEq: "!==",
	Lt: "<", LtEq: "<=", Gt: ">", GtEq: ">=", AndAnd: "&&", OrOr: "||", Bang: "!",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", TildeAmp: "~&", TildePipe: "~|",
	TildeXor: "~^", Shl: "<<", Shr: ">>", AShl: "<<<", AShr: ">>>",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, SYSIDENT, NUMBER, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
