package verilog

import (
	"strings"
	"testing"
)

func lintSrc(t *testing.T, src string) []Warning {
	t.Helper()
	mods, items, errs := ParseProgramFragment(src)
	if errs != nil {
		t.Fatal(errs)
	}
	return Lint(mods, items)
}

func hasWarning(ws []Warning, substr string) bool {
	for _, w := range ws {
		if strings.Contains(w.Msg, substr) {
			return true
		}
	}
	return false
}

func TestLintBlockingInClockedBlock(t *testing.T) {
	ws := lintSrc(t, `
module M(input wire clk);
  reg [3:0] q;
  always @(posedge clk) q = q + 1;
endmodule`)
	if !hasWarning(ws, "blocking assignment in a clocked") {
		t.Fatalf("missing warning: %v", ws)
	}
}

func TestLintNonblockingInCombBlock(t *testing.T) {
	ws := lintSrc(t, `
module M(input wire a);
  reg q;
  always @(*) q <= a;
endmodule`)
	if !hasWarning(ws, "non-blocking assignment in a combinational") {
		t.Fatalf("missing warning: %v", ws)
	}
}

func TestLintIncompleteSensitivityList(t *testing.T) {
	ws := lintSrc(t, `
module M(input wire a, input wire b);
  reg q;
  always @(a) q = a & b;
endmodule`)
	if !hasWarning(ws, "missing from the sensitivity list") {
		t.Fatalf("missing warning: %v", ws)
	}
	// Complete lists and @* are clean.
	ws = lintSrc(t, `
module M(input wire a, input wire b);
  reg q, p;
  always @(a or b) q = a & b;
  always @(*) p = a | b;
endmodule`)
	if hasWarning(ws, "sensitivity") {
		t.Fatalf("false positive: %v", ws)
	}
}

func TestLintUnusedVariable(t *testing.T) {
	ws := lintSrc(t, `
module M(input wire a);
  wire ghost;
  wire used;
  assign used = a;
endmodule
wire root_ghost;`)
	if !hasWarning(ws, "ghost is declared but never used") {
		t.Fatalf("missing module-scope warning: %v", ws)
	}
	if !hasWarning(ws, "root_ghost is declared but never used") {
		t.Fatalf("missing root-scope warning: %v", ws)
	}
	if hasWarning(ws, "used is declared") {
		t.Fatalf("false positive on used: %v", ws)
	}
}

func TestLintCleanProgramIsQuiet(t *testing.T) {
	ws := lintSrc(t, `
module Rol(input wire [7:0] x, output wire [7:0] y);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule
reg [7:0] cnt = 1;
Rol r(.x(cnt));
always @(posedge clk.val) cnt <= r.y;
assign led.val = cnt;`)
	// clk/led are prelude instances unknown to the linter's scope — only
	// structural warnings matter; there must be none.
	if len(ws) != 0 {
		t.Fatalf("clean program warned: %v", ws)
	}
}
