package verilog

import (
	"fmt"
	"strings"
)

// Print renders a node back to Verilog source. The output reparses to an
// equivalent AST (round-trip property, tested in printer_test.go), which is
// what lets Cascade do source-to-source transformation for its hardware
// engines (paper §5.2).
func Print(n Node) string {
	var pr printer
	pr.node(n)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) node(n Node) {
	switch x := n.(type) {
	case *Module:
		p.module(x)
	case Item:
		p.item(x)
	case Stmt:
		p.stmt(x)
	case Expr:
		p.expr(x, 0)
	default:
		p.printf("/* ? %T */", n)
	}
}

func (p *printer) module(m *Module) {
	p.printf("module %s", m.Name)
	if len(m.Params) > 0 {
		p.printf("#(")
		for i, pd := range m.Params {
			if i > 0 {
				p.printf(", ")
			}
			p.printf("parameter ")
			p.rng(pd.Range)
			p.printf("%s = ", pd.Name)
			p.expr(pd.Value, 0)
		}
		p.printf(")")
	}
	p.printf("(")
	for i, pt := range m.Ports {
		if i > 0 {
			p.printf(", ")
		}
		p.printf("%s %s ", pt.Dir, pt.Kind)
		p.rng(pt.Range)
		p.printf("%s", pt.Name)
		if pt.Init != nil {
			p.printf(" = ")
			p.expr(pt.Init, 0)
		}
	}
	p.printf(");")
	p.indent++
	for _, it := range m.Items {
		p.nl()
		p.item(it)
	}
	p.indent--
	p.nl()
	p.printf("endmodule")
	p.nl()
}

func (p *printer) rng(r *Range) {
	if r == nil {
		return
	}
	p.printf("[")
	p.expr(r.Hi, 0)
	p.printf(":")
	p.expr(r.Lo, 0)
	p.printf("] ")
}

func (p *printer) item(it Item) {
	switch x := it.(type) {
	case *NetDecl:
		p.printf("%s ", x.Kind)
		if x.Kind != Integer {
			p.rng(x.Range)
		}
		for i, dn := range x.Names {
			if i > 0 {
				p.printf(", ")
			}
			p.printf("%s", dn.Name)
			if dn.Array != nil {
				p.printf(" [")
				p.expr(dn.Array.Hi, 0)
				p.printf(":")
				p.expr(dn.Array.Lo, 0)
				p.printf("]")
			}
			if dn.Init != nil {
				p.printf(" = ")
				p.expr(dn.Init, 0)
			}
		}
		p.printf(";")
	case *ParamDecl:
		kw := "parameter"
		if x.Local {
			kw = "localparam"
		}
		p.printf("%s ", kw)
		p.rng(x.Range)
		p.printf("%s = ", x.Name)
		p.expr(x.Value, 0)
		p.printf(";")
	case *ContAssign:
		p.printf("assign ")
		p.expr(x.LHS, 0)
		p.printf(" = ")
		p.expr(x.RHS, 0)
		p.printf(";")
	case *AlwaysBlock:
		p.printf("always @")
		if x.Star {
			p.printf("(*)")
		} else {
			p.printf("(")
			for i, ev := range x.Events {
				if i > 0 {
					p.printf(" or ")
				}
				switch ev.Edge {
				case Posedge:
					p.printf("posedge ")
				case Negedge:
					p.printf("negedge ")
				}
				p.expr(ev.Expr, 0)
			}
			p.printf(")")
		}
		p.printf(" ")
		p.stmtInline(x.Body)
	case *InitialBlock:
		p.printf("initial ")
		p.stmtInline(x.Body)
	case *Instance:
		p.printf("%s", x.ModName)
		if len(x.Params) > 0 {
			p.printf("#(")
			for i, pa := range x.Params {
				if i > 0 {
					p.printf(", ")
				}
				if pa.Name != "" {
					p.printf(".%s(", pa.Name)
					p.expr(pa.Expr, 0)
					p.printf(")")
				} else {
					p.expr(pa.Expr, 0)
				}
			}
			p.printf(")")
		}
		p.printf(" %s(", x.Name)
		for i, c := range x.Conns {
			if i > 0 {
				p.printf(", ")
			}
			if c.Name != "" {
				p.printf(".%s(", c.Name)
				if c.Expr != nil {
					p.expr(c.Expr, 0)
				}
				p.printf(")")
			} else if c.Expr != nil {
				p.expr(c.Expr, 0)
			}
		}
		p.printf(");")
	default:
		p.printf("/* ? item %T */", it)
	}
}

// stmtInline prints a statement continuing the current line (used after
// always/initial headers and if/else).
func (p *printer) stmtInline(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.printf("begin")
		p.indent++
		for _, st := range b.Stmts {
			p.nl()
			p.stmt(st)
		}
		p.indent--
		p.nl()
		p.printf("end")
		return
	}
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.stmtInline(x)
	case *If:
		p.printf("if (")
		p.expr(x.Cond, 0)
		p.printf(") ")
		p.stmtInline(x.Then)
		if x.Else != nil {
			p.nl()
			p.printf("else ")
			p.stmtInline(x.Else)
		}
	case *Case:
		kw := "case"
		if x.IsCasez {
			kw = "casez"
		}
		p.printf("%s (", kw)
		p.expr(x.Subject, 0)
		p.printf(")")
		p.indent++
		for _, it := range x.Items {
			p.nl()
			if it.Exprs == nil {
				p.printf("default: ")
			} else {
				for i, e := range it.Exprs {
					if i > 0 {
						p.printf(", ")
					}
					p.expr(e, 0)
				}
				p.printf(": ")
			}
			p.stmtInline(it.Body)
		}
		p.indent--
		p.nl()
		p.printf("endcase")
	case *ProcAssign:
		p.expr(x.LHS, 0)
		if x.Blocking {
			p.printf(" = ")
		} else {
			p.printf(" <= ")
		}
		p.expr(x.RHS, 0)
		p.printf(";")
	case *For:
		p.printf("for (")
		p.expr(x.Init.LHS, 0)
		p.printf(" = ")
		p.expr(x.Init.RHS, 0)
		p.printf("; ")
		p.expr(x.Cond, 0)
		p.printf("; ")
		p.expr(x.Post.LHS, 0)
		p.printf(" = ")
		p.expr(x.Post.RHS, 0)
		p.printf(") ")
		p.stmtInline(x.Body)
	case *SysTask:
		p.printf("%s", x.Name)
		if len(x.Args) > 0 {
			p.printf("(")
			for i, a := range x.Args {
				if i > 0 {
					p.printf(", ")
				}
				p.expr(a, 0)
			}
			p.printf(")")
		}
		p.printf(";")
	case *NullStmt:
		p.printf(";")
	default:
		p.printf("/* ? stmt %T */", s)
	}
}

var binOpText = map[BinaryOp]string{
	BAdd: "+", BSub: "-", BMul: "*", BDiv: "/", BMod: "%", BPow: "**",
	BEq: "==", BNeq: "!=", BCaseEq: "===", BCaseNeq: "!==",
	BLt: "<", BLe: "<=", BGt: ">", BGe: ">=",
	BLogAnd: "&&", BLogOr: "||",
	BBitAnd: "&", BBitOr: "|", BBitXor: "^", BBitXnor: "~^",
	BShl: "<<", BShr: ">>", BAShl: "<<<", BAShr: ">>>",
}

var binOpPrec = map[BinaryOp]int{
	BLogOr: 1, BLogAnd: 2, BBitOr: 3, BBitXor: 4, BBitXnor: 4, BBitAnd: 5,
	BEq: 6, BNeq: 6, BCaseEq: 6, BCaseNeq: 6,
	BLt: 7, BLe: 7, BGt: 7, BGe: 7,
	BShl: 8, BShr: 8, BAShl: 8, BAShr: 8,
	BAdd: 9, BSub: 9, BMul: 10, BDiv: 10, BMod: 10, BPow: 11,
}

var unOpText = map[UnaryOp]string{
	UNot: "!", UBitNot: "~", UNeg: "-", UPlus: "+",
	URedAnd: "&", URedOr: "|", URedXor: "^",
	URedNand: "~&", URedNor: "~|", URedXnor: "~^",
}

// expr prints e, parenthesizing when its precedence is below prec.
func (p *printer) expr(e Expr, prec int) {
	switch x := e.(type) {
	case *Ident:
		p.printf("%s", x.Name)
	case *HierIdent:
		p.printf("%s", strings.Join(x.Parts, "."))
	case *Number:
		p.printf("%s", x.Literal)
	case *StringLit:
		p.printf("%q", x.Value)
	case *Unary:
		p.printf("%s", unOpText[x.Op])
		p.expr(x.X, 12)
	case *Binary:
		myPrec := binOpPrec[x.Op]
		if myPrec < prec {
			p.printf("(")
		}
		p.expr(x.X, myPrec)
		p.printf(" %s ", binOpText[x.Op])
		p.expr(x.Y, myPrec+1)
		if myPrec < prec {
			p.printf(")")
		}
	case *Ternary:
		if prec > 0 {
			p.printf("(")
		}
		p.expr(x.Cond, 1)
		p.printf(" ? ")
		p.expr(x.Then, 0)
		p.printf(" : ")
		p.expr(x.Else, 0)
		if prec > 0 {
			p.printf(")")
		}
	case *Index:
		p.expr(x.X, 12)
		p.printf("[")
		p.expr(x.Idx, 0)
		p.printf("]")
	case *RangeSel:
		p.expr(x.X, 12)
		p.printf("[")
		p.expr(x.Hi, 0)
		p.printf(":")
		p.expr(x.Lo, 0)
		p.printf("]")
	case *Concat:
		p.printf("{")
		for i, part := range x.Parts {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(part, 0)
		}
		p.printf("}")
	case *Repl:
		p.printf("{")
		p.expr(x.Count, 12)
		p.printf("{")
		p.expr(x.X, 0)
		p.printf("}}")
	case *SysCall:
		p.printf("%s", x.Name)
		if len(x.Args) > 0 {
			p.printf("(")
			for i, a := range x.Args {
				if i > 0 {
					p.printf(", ")
				}
				p.expr(a, 0)
			}
			p.printf(")")
		}
	default:
		p.printf("/* ? expr %T */", e)
	}
}
