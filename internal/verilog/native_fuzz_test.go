package verilog

import "testing"

// FuzzParseFragment is the native fuzz target the CI smoke-runs: no
// input, however mangled, may panic the lexer or any parser entry
// point, and printing whatever parsed must re-parse without a crash
// (the REPL echoes programs back through Print).
func FuzzParseFragment(f *testing.F) {
	seeds := []string{
		"",
		"wire x;",
		"module M(input wire c, output wire [7:0] y); assign y = c ? 1 : 0; endmodule",
		"reg [7:0] cnt = 1;\nalways @(posedge clk.val) cnt <= (cnt == 8'h80) ? 1 : (cnt << 1);",
		"always @(posedge clk.val) begin $display(\"n=%d\", n); if (n == 9) $finish; end",
		"case (s) 2'b00: x = 1; default: x = 0; endcase",
		"assign led.val = g0.out ^ g1.out;",
		"module M(; endmodule",
		"8'hZZ 4'bxx01 {a, b[3:0], 2'd3}",
		"// comment\n/* block */ wire y;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		LexAll(src)
		ParseSourceText(src)
		ParseItems(src)
		mods, items, errs := ParseProgramFragment(src)
		if len(errs) > 0 {
			return
		}
		// Accepted input must survive a print/re-parse round trip.
		for _, m := range mods {
			if _, es := ParseSourceText(Print(m)); len(es) > 0 {
				t.Errorf("printed module no longer parses:\n%s", Print(m))
			}
		}
		for _, it := range items {
			ParseItems(Print(it))
		}
	})
}
