package verilog

import "cascade/internal/bits"

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// SourceText is a parsed compilation unit: a sequence of module
// declarations. The REPL parses fragments (single items or statements)
// through dedicated entry points instead.
type SourceText struct {
	Modules []*Module
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	Input PortDir = iota
	Output
	Inout
)

func (d PortDir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return "inout"
	}
}

// NetKind distinguishes wire, reg, and integer declarations.
type NetKind int

// Net kinds.
const (
	Wire NetKind = iota
	Reg
	Integer // treated as reg [31:0]
)

func (k NetKind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Reg:
		return "reg"
	default:
		return "integer"
	}
}

// Range is a bit range [Hi:Lo]; both bounds are constant expressions.
type Range struct {
	Hi, Lo Expr
}

// Module is a module declaration.
type Module struct {
	NamePos Pos
	Name    string
	Params  []*ParamDecl // header #(parameter ...) parameters
	Ports   []*Port      // ANSI-style header ports
	Items   []Item
}

// Pos returns the module's source position.
func (m *Module) Pos() Pos { return m.NamePos }

// Port is an ANSI-style module port declaration. Init is a non-standard
// extension used by the IR when it promotes an initialized register to an
// output port (output reg [7:0] cnt = 1); the parser accepts it so
// promoted modules round-trip through the printer.
type Port struct {
	PortPos Pos
	Dir     PortDir
	Kind    NetKind // Wire unless declared reg
	Range   *Range  // nil for 1-bit
	Name    string
	Init    Expr // reg output initializer (nil if absent)
}

// Pos returns the port's source position.
func (p *Port) Pos() Pos { return p.PortPos }

// Item is a module-body item.
type Item interface {
	Node
	item()
}

// DeclName is one declarator in a net declaration: a name with an optional
// unpacked array range (memories) and an optional initializer (regs only).
type DeclName struct {
	NamePos Pos
	Name    string
	Array   *Range // reg [w:0] m [hi:lo]
	Init    Expr   // reg [7:0] cnt = 1
}

// NetDecl declares one or more wires, regs, or integers.
type NetDecl struct {
	DeclPos Pos
	Kind    NetKind
	Range   *Range // packed range; nil for 1-bit (or 32-bit integer)
	Names   []*DeclName
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	DeclPos Pos
	Local   bool
	Range   *Range
	Name    string
	Value   Expr
}

// ContAssign is a continuous assignment (assign lhs = rhs).
type ContAssign struct {
	AssignPos Pos
	LHS       Expr // must be an lvalue form
	RHS       Expr
}

// EdgeKind classifies sensitivity-list events.
type EdgeKind int

// Edge kinds.
const (
	AnyEdge EdgeKind = iota // level sensitivity: @(a or b)
	Posedge
	Negedge
)

// Event is one entry of an always block's sensitivity list.
type Event struct {
	Edge EdgeKind
	Expr Expr // signal expression (usually an identifier)
}

// AlwaysBlock is an always block with a sensitivity list or @*.
type AlwaysBlock struct {
	AlwaysPos Pos
	Star      bool // always @* / @(*)
	Events    []Event
	Body      Stmt
}

// InitialBlock is an initial block (software-only; runs once at time 0).
type InitialBlock struct {
	InitialPos Pos
	Body       Stmt
}

// PortConn is one connection in a module instantiation.
type PortConn struct {
	ConnPos Pos
	Name    string // empty for positional connections
	Expr    Expr   // nil for unconnected (.x())
}

// ParamAssign is one parameter override in an instantiation.
type ParamAssign struct {
	Name string // empty for positional
	Expr Expr
}

// Instance is a module instantiation.
type Instance struct {
	InstPos Pos
	ModName string
	Params  []*ParamAssign
	Name    string
	Conns   []*PortConn
}

func (*NetDecl) item()      {}
func (*ParamDecl) item()    {}
func (*ContAssign) item()   {}
func (*AlwaysBlock) item()  {}
func (*InitialBlock) item() {}
func (*Instance) item()     {}

// Pos implementations for items.
func (n *NetDecl) Pos() Pos      { return n.DeclPos }
func (n *ParamDecl) Pos() Pos    { return n.DeclPos }
func (n *ContAssign) Pos() Pos   { return n.AssignPos }
func (n *AlwaysBlock) Pos() Pos  { return n.AlwaysPos }
func (n *InitialBlock) Pos() Pos { return n.InitialPos }
func (n *Instance) Pos() Pos     { return n.InstPos }

// Stmt is a procedural statement.
type Stmt interface {
	Node
	stmt()
}

// Block is a begin/end statement sequence.
type Block struct {
	BeginPos Pos
	Stmts    []Stmt
}

// If is an if/else statement.
type If struct {
	IfPos Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // nil if absent
}

// CaseItem is one arm of a case statement; Exprs is nil for default.
type CaseItem struct {
	ItemPos Pos
	Exprs   []Expr
	Body    Stmt
}

// Case is a case or casez statement.
type Case struct {
	CasePos Pos
	IsCasez bool
	Subject Expr
	Items   []*CaseItem
}

// ProcAssign is a procedural assignment; Blocking selects = vs <=.
type ProcAssign struct {
	AssignPos Pos
	Blocking  bool
	LHS       Expr
	RHS       Expr
}

// For is a for loop with blocking-assignment init and post statements.
// Bounds must be static for synthesis; the elaborator unrolls them.
type For struct {
	ForPos Pos
	Init   *ProcAssign
	Cond   Expr
	Post   *ProcAssign
	Body   Stmt
}

// SysTask is a system-task statement such as $display("%d", x) or $finish.
type SysTask struct {
	TaskPos Pos
	Name    string // with '$'
	Args    []Expr
}

// NullStmt is a lone semicolon.
type NullStmt struct {
	SemiPos Pos
}

func (*Block) stmt()      {}
func (*If) stmt()         {}
func (*Case) stmt()       {}
func (*ProcAssign) stmt() {}
func (*For) stmt()        {}
func (*SysTask) stmt()    {}
func (*NullStmt) stmt()   {}

// Pos implementations for statements.
func (s *Block) Pos() Pos      { return s.BeginPos }
func (s *If) Pos() Pos         { return s.IfPos }
func (s *Case) Pos() Pos       { return s.CasePos }
func (s *ProcAssign) Pos() Pos { return s.AssignPos }
func (s *For) Pos() Pos        { return s.ForPos }
func (s *SysTask) Pos() Pos    { return s.TaskPos }
func (s *NullStmt) Pos() Pos   { return s.SemiPos }

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// Ident is a simple identifier reference.
type Ident struct {
	IdentPos Pos
	Name     string
}

// HierIdent is a dotted hierarchical reference such as r.y or clk.val.
type HierIdent struct {
	IdentPos Pos
	Parts    []string // at least two
}

// Number is a literal, pre-parsed to a bit vector. Mask is non-nil for
// casez wildcard labels like 4'b1??0: 1s mark the specified positions.
type Number struct {
	NumPos  Pos
	Literal string
	Val     *bits.Vector
	Mask    *bits.Vector
	Sized   bool // literal carried an explicit width
}

// StringLit is a string literal (only valid as a $display format or as a
// packed-byte expression).
type StringLit struct {
	StrPos Pos
	Value  string
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UNot     UnaryOp = iota + 1 // !
	UBitNot                     // ~
	UNeg                        // -
	UPlus                       // +
	URedAnd                     // &
	URedOr                      // |
	URedXor                     // ^
	URedNand                    // ~&
	URedNor                     // ~|
	URedXnor                    // ~^
)

// Unary is a unary-operator expression.
type Unary struct {
	OpPos Pos
	Op    UnaryOp
	X     Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	BAdd BinaryOp = iota + 1
	BSub
	BMul
	BDiv
	BMod
	BPow
	BEq
	BNeq
	BCaseEq  // === treated as == in the 2-state model
	BCaseNeq // !== treated as !=
	BLt
	BLe
	BGt
	BGe
	BLogAnd
	BLogOr
	BBitAnd
	BBitOr
	BBitXor
	BBitXnor
	BShl
	BShr
	BAShl // <<< behaves as << for unsigned operands
	BAShr // >>> behaves as >> for unsigned operands
)

// Binary is a binary-operator expression.
type Binary struct {
	OpPos Pos
	Op    BinaryOp
	X, Y  Expr
}

// Ternary is cond ? then : else.
type Ternary struct {
	QPos Pos
	Cond Expr
	Then Expr
	Else Expr
}

// Index is a bit select x[i] or memory word select m[i].
type Index struct {
	LPos Pos
	X    Expr
	Idx  Expr
}

// RangeSel is a constant part select x[hi:lo].
type RangeSel struct {
	LPos   Pos
	X      Expr
	Hi, Lo Expr
}

// Concat is {a, b, ...}.
type Concat struct {
	LPos  Pos
	Parts []Expr
}

// Repl is a replication {n{x}}.
type Repl struct {
	LPos  Pos
	Count Expr
	X     Expr
}

// SysCall is a system function call in expression position, e.g. $time.
type SysCall struct {
	CallPos Pos
	Name    string
	Args    []Expr
}

func (*Ident) expr()     {}
func (*HierIdent) expr() {}
func (*Number) expr()    {}
func (*StringLit) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Ternary) expr()   {}
func (*Index) expr()     {}
func (*RangeSel) expr()  {}
func (*Concat) expr()    {}
func (*Repl) expr()      {}
func (*SysCall) expr()   {}

// Pos implementations for expressions.
func (e *Ident) Pos() Pos     { return e.IdentPos }
func (e *HierIdent) Pos() Pos { return e.IdentPos }
func (e *Number) Pos() Pos    { return e.NumPos }
func (e *StringLit) Pos() Pos { return e.StrPos }
func (e *Unary) Pos() Pos     { return e.OpPos }
func (e *Binary) Pos() Pos    { return e.OpPos }
func (e *Ternary) Pos() Pos   { return e.QPos }
func (e *Index) Pos() Pos     { return e.LPos }
func (e *RangeSel) Pos() Pos  { return e.LPos }
func (e *Concat) Pos() Pos    { return e.LPos }
func (e *Repl) Pos() Pos      { return e.LPos }
func (e *SysCall) Pos() Pos   { return e.CallPos }

// WalkExprs calls f for every sub-expression of e (including e itself) in
// pre-order. Statements and items have analogous helpers in walk.go.
func WalkExprs(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, f)
	case *Binary:
		WalkExprs(x.X, f)
		WalkExprs(x.Y, f)
	case *Ternary:
		WalkExprs(x.Cond, f)
		WalkExprs(x.Then, f)
		WalkExprs(x.Else, f)
	case *Index:
		WalkExprs(x.X, f)
		WalkExprs(x.Idx, f)
	case *RangeSel:
		WalkExprs(x.X, f)
		WalkExprs(x.Hi, f)
		WalkExprs(x.Lo, f)
	case *Concat:
		for _, p := range x.Parts {
			WalkExprs(p, f)
		}
	case *Repl:
		WalkExprs(x.Count, f)
		WalkExprs(x.X, f)
	case *SysCall:
		for _, a := range x.Args {
			WalkExprs(a, f)
		}
	}
}
