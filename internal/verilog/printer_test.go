package verilog

import (
	"reflect"
	"testing"
)

// stripPos recursively zeroes Pos fields so structural comparison ignores
// source locations.
func stripPos(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			stripPos(v.Elem())
		}
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(Pos{}) {
			if v.CanSet() {
				v.Set(reflect.Zero(v.Type()))
			}
			return
		}
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.CanSet() || f.Kind() == reflect.Ptr || f.Kind() == reflect.Interface || f.Kind() == reflect.Slice || f.Kind() == reflect.Struct {
				stripPos(f)
			}
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			stripPos(v.Index(i))
		}
	}
}

func normalized(t *testing.T, st *SourceText) *SourceText {
	t.Helper()
	stripPos(reflect.ValueOf(st))
	return st
}

// Round-trip property: print(parse(x)) reparses to the same AST.
func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		runningExample,
		`module Counter#(parameter N = 4)(input wire clk, output reg [N-1:0] out);
		   always @(posedge clk) out <= out + 1;
		 endmodule`,
		`module M();
		   reg [31:0] mem [0:63];
		   integer i;
		   wire [7:0] a, b;
		   assign a = mem[3][7:0];
		   always @(*) begin
		     if (a > b) mem[0] <= {a, b};
		     else case (a)
		       8'h00: mem[1] <= 0;
		       8'h01, 8'h02: mem[2] <= {4{a[1:0]}};
		       default: ;
		     endcase
		   end
		   initial begin
		     for (i = 0; i < 4; i = i + 1)
		       mem[i] = i * 2 ** 3 % 5;
		     $display("%d %h", a, b);
		     $finish;
		   end
		 endmodule`,
		`module Ops(input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);
		   assign o = (~a & b | a ^ b ~^ a) + (&a ? |b : ^a) - !a;
		   assign o[0] = a < b && a >= b || a !== b === 1'b1;
		 endmodule`,
	}
	for i, src := range sources {
		st1, errs := ParseSourceText(src)
		if errs != nil {
			t.Fatalf("case %d: parse 1: %v", i, errs)
		}
		var printed string
		for _, m := range st1.Modules {
			printed += Print(m)
		}
		st2, errs := ParseSourceText(printed)
		if errs != nil {
			t.Fatalf("case %d: reparse failed: %v\nprinted:\n%s", i, errs, printed)
		}
		if !reflect.DeepEqual(normalized(t, st1), normalized(t, st2)) {
			t.Fatalf("case %d: round trip changed AST.\nprinted:\n%s", i, printed)
		}
	}
}

func TestPrintExprPrecedenceParens(t *testing.T) {
	e, errs := ParseExpr("(a + b) * c")
	if errs != nil {
		t.Fatal(errs)
	}
	got := Print(e)
	e2, errs := ParseExpr(got)
	if errs != nil {
		t.Fatalf("reparse %q: %v", got, errs)
	}
	stripPos(reflect.ValueOf(&e))
	stripPos(reflect.ValueOf(&e2))
	if !reflect.DeepEqual(e, e2) {
		t.Fatalf("round trip changed %q", got)
	}
}
