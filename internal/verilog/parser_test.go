package verilog

import (
	"strings"
	"testing"
)

// runningExample is the paper's Figure 1 program.
const runningExample = `
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule

module Main(
  input wire clk,
  input wire [3:0] pad,
  output wire [7:0] led
);
  reg [7:0] cnt = 1;
  Rol r(.x(cnt));
  always @(posedge clk)
    if (pad == 0)
      cnt <= r.y;
    else begin
      $display(cnt);
      $finish;
    end
  assign led = cnt;
endmodule
`

func mustParse(t *testing.T, src string) *SourceText {
	t.Helper()
	st, errs := ParseSourceText(src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return st
}

func TestParseRunningExample(t *testing.T) {
	st := mustParse(t, runningExample)
	if len(st.Modules) != 2 {
		t.Fatalf("got %d modules, want 2", len(st.Modules))
	}
	rol, main := st.Modules[0], st.Modules[1]
	if rol.Name != "Rol" || main.Name != "Main" {
		t.Fatalf("module names: %s, %s", rol.Name, main.Name)
	}
	if len(rol.Ports) != 2 || rol.Ports[0].Dir != Input || rol.Ports[1].Dir != Output {
		t.Fatalf("Rol ports wrong: %+v", rol.Ports)
	}
	if len(main.Items) != 4 {
		t.Fatalf("Main items: got %d, want 4", len(main.Items))
	}
	inst, ok := main.Items[1].(*Instance)
	if !ok || inst.ModName != "Rol" || inst.Name != "r" {
		t.Fatalf("instance wrong: %+v", main.Items[1])
	}
	if len(inst.Conns) != 1 || inst.Conns[0].Name != "x" {
		t.Fatalf("connection wrong: %+v", inst.Conns)
	}
	alw, ok := main.Items[2].(*AlwaysBlock)
	if !ok || len(alw.Events) != 1 || alw.Events[0].Edge != Posedge {
		t.Fatalf("always wrong: %+v", main.Items[2])
	}
	ifs, ok := alw.Body.(*If)
	if !ok {
		t.Fatalf("always body is %T, want *If", alw.Body)
	}
	pa, ok := ifs.Then.(*ProcAssign)
	if !ok || pa.Blocking {
		t.Fatalf("then branch should be a non-blocking assign: %+v", ifs.Then)
	}
	if _, ok := pa.RHS.(*HierIdent); !ok {
		t.Fatalf("rhs should be hierarchical r.y: %T", pa.RHS)
	}
	blk, ok := ifs.Else.(*Block)
	if !ok || len(blk.Stmts) != 2 {
		t.Fatalf("else branch wrong: %+v", ifs.Else)
	}
	disp := blk.Stmts[0].(*SysTask)
	if disp.Name != "$display" || len(disp.Args) != 1 {
		t.Fatalf("display wrong: %+v", disp)
	}
	fin := blk.Stmts[1].(*SysTask)
	if fin.Name != "$finish" {
		t.Fatalf("finish wrong: %+v", fin)
	}
}

func TestParseParameterizedModule(t *testing.T) {
	src := `
module Counter#(parameter N = 4, parameter [7:0] STEP = 1)(
  input wire clk,
  output reg [N-1:0] out
);
  always @(posedge clk) out <= out + STEP;
endmodule
`
	st := mustParse(t, src)
	m := st.Modules[0]
	if len(m.Params) != 2 || m.Params[0].Name != "N" || m.Params[1].Name != "STEP" {
		t.Fatalf("params wrong: %+v", m.Params)
	}
	if m.Params[1].Range == nil {
		t.Fatal("STEP should carry a range")
	}
	if m.Ports[1].Kind != Reg {
		t.Fatal("out should be a reg port")
	}
}

func TestParseInstanceParamStyles(t *testing.T) {
	src := `
module M();
  Pad#(4) pad();
  Counter#(.N(8), .STEP(2)) c(.clk(clk), .out(o));
  Rol r2(a, b);
endmodule
`
	st := mustParse(t, src)
	items := st.Modules[0].Items
	pad := items[0].(*Instance)
	if len(pad.Params) != 1 || pad.Params[0].Name != "" {
		t.Fatalf("positional param wrong: %+v", pad.Params)
	}
	c := items[1].(*Instance)
	if len(c.Params) != 2 || c.Params[0].Name != "N" {
		t.Fatalf("named params wrong: %+v", c.Params)
	}
	r2 := items[2].(*Instance)
	if len(r2.Conns) != 2 || r2.Conns[0].Name != "" {
		t.Fatalf("positional conns wrong: %+v", r2.Conns)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, errs := ParseExpr("a + b * c << 2 == d & e | f && g")
	if errs != nil {
		t.Fatal(errs)
	}
	// Expected grouping: ((((a + (b*c)) << 2) == d) & e | f) && g
	top := e.(*Binary)
	if top.Op != BLogAnd {
		t.Fatalf("top op: %v", top.Op)
	}
	or := top.X.(*Binary)
	if or.Op != BBitOr {
		t.Fatalf("next op: %v", or.Op)
	}
	and := or.X.(*Binary)
	if and.Op != BBitAnd {
		t.Fatalf("next op: %v", and.Op)
	}
	eq := and.X.(*Binary)
	if eq.Op != BEq {
		t.Fatalf("next op: %v", eq.Op)
	}
	shl := eq.X.(*Binary)
	if shl.Op != BShl {
		t.Fatalf("next op: %v", shl.Op)
	}
	add := shl.X.(*Binary)
	if add.Op != BAdd {
		t.Fatalf("next op: %v", add.Op)
	}
	if add.Y.(*Binary).Op != BMul {
		t.Fatal("b*c should bind tighter than +")
	}
}

func TestParsePowerRightAssoc(t *testing.T) {
	e, errs := ParseExpr("a ** b ** c")
	if errs != nil {
		t.Fatal(errs)
	}
	top := e.(*Binary)
	if top.Op != BPow {
		t.Fatal("top should be power")
	}
	if _, ok := top.Y.(*Binary); !ok {
		t.Fatal("power should be right-associative")
	}
}

func TestParseTernaryAndConcat(t *testing.T) {
	e, errs := ParseExpr("sel ? {a, 2'b01, {3{b}}} : c[7:4]")
	if errs != nil {
		t.Fatal(errs)
	}
	tern := e.(*Ternary)
	cc := tern.Then.(*Concat)
	if len(cc.Parts) != 3 {
		t.Fatalf("concat parts: %d", len(cc.Parts))
	}
	if _, ok := cc.Parts[2].(*Repl); !ok {
		t.Fatal("third part should be replication")
	}
	if _, ok := tern.Else.(*RangeSel); !ok {
		t.Fatal("else should be a part select")
	}
}

func TestParseUnaryReductions(t *testing.T) {
	for src, op := range map[string]UnaryOp{
		"&x": URedAnd, "|x": URedOr, "^x": URedXor,
		"~&x": URedNand, "~|x": URedNor, "~^x": URedXnor, "!x": UNot, "~x": UBitNot, "-x": UNeg,
	} {
		e, errs := ParseExpr(src)
		if errs != nil {
			t.Fatalf("%s: %v", src, errs)
		}
		if u := e.(*Unary); u.Op != op {
			t.Fatalf("%s: got op %v, want %v", src, u.Op, op)
		}
	}
}

func TestParseCaseAndFor(t *testing.T) {
	src := `
module M(input wire clk);
  reg [1:0] s;
  integer i;
  reg [7:0] acc;
  always @(posedge clk) begin
    case (s)
      2'd0: s <= 2'd1;
      2'd1, 2'd2: s <= 2'd3;
      default: s <= 0;
    endcase
    for (i = 0; i < 4; i = i + 1)
      acc = acc + i;
  end
endmodule
`
	st := mustParse(t, src)
	alw := st.Modules[0].Items[3].(*AlwaysBlock)
	blk := alw.Body.(*Block)
	cs := blk.Stmts[0].(*Case)
	if len(cs.Items) != 3 {
		t.Fatalf("case items: %d", len(cs.Items))
	}
	if len(cs.Items[1].Exprs) != 2 {
		t.Fatal("second arm should have two labels")
	}
	if cs.Items[2].Exprs != nil {
		t.Fatal("third arm should be default")
	}
	f := blk.Stmts[1].(*For)
	if !f.Init.Blocking || !f.Post.Blocking {
		t.Fatal("for clauses must be blocking assigns")
	}
}

func TestParseMemoryDecl(t *testing.T) {
	src := `
module M();
  reg [31:0] mem [0:63];
  reg [7:0] a = 8'hff, b;
endmodule
`
	st := mustParse(t, src)
	d := st.Modules[0].Items[0].(*NetDecl)
	if d.Names[0].Array == nil {
		t.Fatal("mem should have array range")
	}
	d2 := st.Modules[0].Items[1].(*NetDecl)
	if len(d2.Names) != 2 || d2.Names[0].Init == nil || d2.Names[1].Init != nil {
		t.Fatalf("multi declarator wrong: %+v", d2.Names)
	}
}

func TestParseItemsForRepl(t *testing.T) {
	items, errs := ParseItems(`reg [7:0] cnt = 1; Rol r(.x(cnt)); assign led.val = cnt;`)
	if errs != nil {
		t.Fatal(errs)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	ca := items[2].(*ContAssign)
	if _, ok := ca.LHS.(*HierIdent); !ok {
		t.Fatal("assign target should be hierarchical led.val")
	}
}

func TestParseErrorsRecover(t *testing.T) {
	src := `
module Bad();
  assign x = ;
  wire y;
endmodule
module Good();
  wire z;
endmodule
`
	st, errs := ParseSourceText(src)
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	if len(st.Modules) != 2 {
		t.Fatalf("recovery should still yield 2 modules, got %d", len(st.Modules))
	}
	if len(st.Modules[1].Items) != 1 {
		t.Fatal("Good module should parse cleanly after error")
	}
}

func TestParseErrorMessagesHavePositions(t *testing.T) {
	_, errs := ParseSourceText("module M();\n  assign = 1;\nendmodule")
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
	if !strings.Contains(errs[0].Error(), "2:") {
		t.Fatalf("error should cite line 2: %v", errs[0])
	}
}

func TestParseCommentsAndDirectives(t *testing.T) {
	src := "module M(); // line\n/* block\ncomment */ wire x;\nendmodule"
	st := mustParse(t, src)
	if len(st.Modules[0].Items) != 1 {
		t.Fatal("comments should be skipped")
	}
}

func TestLexSizedLiterals(t *testing.T) {
	toks, errs := LexAll("8'h80 4'b10_10 'd42 12 x")
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	want := []string{"8'h80", "4'b10_10", "'d42", "12"}
	for i, w := range want {
		if toks[i].Kind != NUMBER || toks[i].Text != w {
			t.Fatalf("token %d: got %v, want NUMBER %q", i, toks[i], w)
		}
	}
	if toks[4].Kind != IDENT {
		t.Fatal("x should lex as identifier")
	}
}

func TestLexOperators(t *testing.T) {
	toks, errs := LexAll("=== !== <<< >>> << >> <= >= == != && || ~& ~| ~^ ^~ **")
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	want := []TokenKind{CaseEq, CaseNotEq, AShl, AShr, Shl, Shr, LtEq, GtEq, EqEq, NotEq,
		AndAnd, OrOr, TildeAmp, TildePipe, TildeXor, TildeXor, PowerOp, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, errs := LexAll(`"a\nb\tc\"d"`)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if toks[0].Text != "a\nb\tc\"d" {
		t.Fatalf("string: %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", "8'q3", "$"} {
		_, errs := LexAll(src)
		if len(errs) == 0 {
			t.Fatalf("LexAll(%q): expected error", src)
		}
	}
}
