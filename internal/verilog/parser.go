package verilog

import (
	"errors"
	"fmt"

	"cascade/internal/bits"
)

// Parser is a recursive-descent parser for the supported Verilog subset.
// It recovers from errors at item boundaries so a REPL can report several
// problems per line.
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// parseError aborts the current item; the parser syncs and continues.
type parseError struct{ err error }

// NewParser returns a parser over src. Lexical errors are carried into the
// parser's error list.
func NewParser(src string) *Parser {
	toks, lexErrs := LexAll(src)
	return &Parser{toks: toks, errs: lexErrs}
}

// Errors returns all syntax errors found so far.
func (p *Parser) Errors() []error { return p.errs }

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) Token {
	if !p.at(k) {
		p.fail("expected %s, found %s", k, p.cur())
	}
	return p.next()
}

func (p *Parser) fail(format string, args ...any) {
	err := fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
	panic(parseError{err})
}

// recoverItem converts a parseError panic into a recorded error and syncs
// the token stream to the next likely item boundary.
func (p *Parser) recoverItem() {
	if r := recover(); r != nil {
		pe, ok := r.(parseError)
		if !ok {
			panic(r)
		}
		p.errs = append(p.errs, pe.err)
		p.sync()
	}
}

func (p *Parser) sync() {
	for {
		switch p.cur().Kind {
		case EOF, KwEndmodule, KwModule:
			return
		case Semi, KwEnd, KwEndcase:
			p.next()
			return
		}
		p.next()
	}
}

// ParseSourceText parses a whole compilation unit.
func ParseSourceText(src string) (*SourceText, []error) {
	p := NewParser(src)
	st := &SourceText{}
	for !p.at(EOF) {
		before := p.pos
		m := p.parseModuleRecover()
		if m != nil {
			st.Modules = append(st.Modules, m)
		}
		if p.pos == before {
			// Error recovery stopped on a boundary token without
			// consuming it; force progress.
			p.next()
		}
		if len(p.errs) > 200 {
			p.errs = append(p.errs, errors.New("too many errors; giving up"))
			break
		}
	}
	if len(p.errs) > 0 {
		return st, p.errs
	}
	return st, nil
}

// ParseItems parses a sequence of module items (REPL input that extends
// the root module).
func ParseItems(src string) ([]Item, []error) {
	p := NewParser(src)
	var items []Item
	for !p.at(EOF) {
		before := p.pos
		it := p.parseItemRecover()
		if it != nil {
			items = append(items, it)
		}
		if p.pos == before {
			p.next() // force progress past an unconsumed boundary token
		}
		if len(p.errs) > 200 {
			p.errs = append(p.errs, errors.New("too many errors; giving up"))
			break
		}
	}
	if len(p.errs) > 0 {
		return items, p.errs
	}
	return items, nil
}

// ParseProgramFragment parses REPL or batch input that freely mixes
// module declarations (added to the outer scope) with module items
// (appended to the implicit root module), the two forms Cascade's eval
// accepts (paper §3.1).
func ParseProgramFragment(src string) ([]*Module, []Item, []error) {
	p := NewParser(src)
	var mods []*Module
	var items []Item
	for !p.at(EOF) {
		before := p.pos
		if p.at(KwModule) {
			if m := p.parseModuleRecover(); m != nil {
				mods = append(mods, m)
			}
		} else if it := p.parseItemRecover(); it != nil {
			items = append(items, it)
		}
		if p.pos == before {
			p.next() // force progress past an unconsumed boundary token
		}
		if len(p.errs) > 200 {
			p.errs = append(p.errs, errors.New("too many errors; giving up"))
			break
		}
	}
	return mods, items, p.errs
}

// ParseExpr parses a single expression (used by tests and the REPL's
// immediate-expression mode).
func ParseExpr(src string) (e Expr, errs []error) {
	p := NewParser(src)
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			errs = append(p.errs, pe.err)
		}
	}()
	e = p.parseExpr()
	if !p.at(EOF) {
		p.errs = append(p.errs, fmt.Errorf("%s: trailing input after expression", p.cur().Pos))
	}
	if len(p.errs) > 0 {
		return e, p.errs
	}
	return e, nil
}

func (p *Parser) parseModuleRecover() *Module {
	defer p.recoverItem()
	if !p.at(KwModule) {
		p.fail("expected module, found %s", p.cur())
	}
	return p.parseModule()
}

func (p *Parser) parseItemRecover() Item {
	defer p.recoverItem()
	return p.parseItem()
}

func (p *Parser) parseModule() *Module {
	tok := p.expect(KwModule)
	name := p.expect(IDENT)
	m := &Module{NamePos: tok.Pos, Name: name.Text}

	if p.accept(Hash) {
		p.expect(LParen)
		for {
			p.expect(KwParameter)
			var r *Range
			if p.at(LBrack) {
				r = p.parseRange()
			}
			pn := p.expect(IDENT)
			p.expect(Eq)
			val := p.parseExpr()
			m.Params = append(m.Params, &ParamDecl{DeclPos: pn.Pos, Range: r, Name: pn.Text, Value: val})
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(RParen)
	}

	if p.accept(LParen) {
		if !p.at(RParen) {
			dir, kind, rng := Input, Wire, (*Range)(nil)
			haveDir := false
			for {
				if p.at(KwInput) || p.at(KwOutput) || p.at(KwInout) {
					switch p.next().Kind {
					case KwInput:
						dir = Input
					case KwOutput:
						dir = Output
					default:
						dir = Inout
					}
					haveDir = true
					kind = Wire
					rng = nil
					if p.accept(KwWire) {
						kind = Wire
					} else if p.accept(KwReg) {
						kind = Reg
					}
					if p.at(LBrack) {
						rng = p.parseRange()
					}
				}
				if !haveDir {
					p.fail("port list must declare a direction (ANSI style)")
				}
				pn := p.expect(IDENT)
				port := &Port{PortPos: pn.Pos, Dir: dir, Kind: kind, Range: cloneRange(rng), Name: pn.Text}
				if p.accept(Eq) {
					if port.Kind != Reg || port.Dir != Output {
						p.fail("only output reg ports may carry an initializer")
					}
					port.Init = p.parseExpr()
				}
				m.Ports = append(m.Ports, port)
				if !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
	}
	p.expect(Semi)

	for !p.at(KwEndmodule) && !p.at(EOF) {
		before := p.pos
		it := p.parseItemRecover()
		if it != nil {
			m.Items = append(m.Items, it)
		}
		if p.pos == before {
			p.next() // force progress past an unconsumed boundary token
		}
	}
	p.expect(KwEndmodule)
	return m
}

func cloneRange(r *Range) *Range {
	if r == nil {
		return nil
	}
	return &Range{Hi: r.Hi, Lo: r.Lo}
}

func (p *Parser) parseRange() *Range {
	p.expect(LBrack)
	hi := p.parseExpr()
	p.expect(Colon)
	lo := p.parseExpr()
	p.expect(RBrack)
	return &Range{Hi: hi, Lo: lo}
}

// parseItem parses one module item.
func (p *Parser) parseItem() Item {
	switch p.cur().Kind {
	case KwWire, KwReg, KwInteger:
		return p.parseNetDecl()
	case KwParameter, KwLocalparam:
		return p.parseParamDecl()
	case KwAssign:
		return p.parseContAssign()
	case KwAlways:
		return p.parseAlways()
	case KwInitial:
		tok := p.next()
		return &InitialBlock{InitialPos: tok.Pos, Body: p.parseStmt()}
	case IDENT:
		return p.parseInstance()
	case Semi:
		p.next()
		return nil
	}
	p.fail("expected module item, found %s", p.cur())
	return nil
}

func (p *Parser) parseNetDecl() *NetDecl {
	tok := p.next()
	d := &NetDecl{DeclPos: tok.Pos}
	switch tok.Kind {
	case KwWire:
		d.Kind = Wire
	case KwReg:
		d.Kind = Reg
	case KwInteger:
		d.Kind = Integer
	}
	if d.Kind != Integer && p.at(LBrack) {
		d.Range = p.parseRange()
	}
	for {
		n := p.expect(IDENT)
		dn := &DeclName{NamePos: n.Pos, Name: n.Text}
		if p.at(LBrack) {
			if d.Kind == Wire {
				p.fail("wire %s cannot have an unpacked array dimension", n.Text)
			}
			dn.Array = p.parseRange()
		}
		if p.accept(Eq) {
			dn.Init = p.parseExpr()
		}
		d.Names = append(d.Names, dn)
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(Semi)
	return d
}

func (p *Parser) parseParamDecl() *ParamDecl {
	tok := p.next()
	local := tok.Kind == KwLocalparam
	var r *Range
	if p.at(LBrack) {
		r = p.parseRange()
	}
	n := p.expect(IDENT)
	p.expect(Eq)
	v := p.parseExpr()
	p.expect(Semi)
	return &ParamDecl{DeclPos: tok.Pos, Local: local, Range: r, Name: n.Text, Value: v}
}

func (p *Parser) parseContAssign() *ContAssign {
	tok := p.expect(KwAssign)
	lhs := p.parseLValue()
	p.expect(Eq)
	rhs := p.parseExpr()
	p.expect(Semi)
	return &ContAssign{AssignPos: tok.Pos, LHS: lhs, RHS: rhs}
}

func (p *Parser) parseAlways() *AlwaysBlock {
	tok := p.expect(KwAlways)
	a := &AlwaysBlock{AlwaysPos: tok.Pos}
	p.expect(At)
	if p.accept(StarOp) {
		a.Star = true
	} else {
		p.expect(LParen)
		if p.accept(StarOp) {
			a.Star = true
		} else {
			for {
				ev := Event{Edge: AnyEdge}
				if p.accept(KwPosedge) {
					ev.Edge = Posedge
				} else if p.accept(KwNegedge) {
					ev.Edge = Negedge
				}
				ev.Expr = p.parseExpr()
				a.Events = append(a.Events, ev)
				if !p.accept(KwOr) && !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
	}
	a.Body = p.parseStmt()
	return a
}

func (p *Parser) parseInstance() *Instance {
	mod := p.expect(IDENT)
	inst := &Instance{InstPos: mod.Pos, ModName: mod.Text}
	if p.accept(Hash) {
		p.expect(LParen)
		if !p.at(RParen) {
			for {
				pa := &ParamAssign{}
				if p.accept(Dot) {
					pa.Name = p.expect(IDENT).Text
					p.expect(LParen)
					pa.Expr = p.parseExpr()
					p.expect(RParen)
				} else {
					pa.Expr = p.parseExpr()
				}
				inst.Params = append(inst.Params, pa)
				if !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
	}
	name := p.expect(IDENT)
	inst.Name = name.Text
	p.expect(LParen)
	if !p.at(RParen) {
		for {
			c := &PortConn{ConnPos: p.cur().Pos}
			if p.accept(Dot) {
				c.Name = p.expect(IDENT).Text
				p.expect(LParen)
				if !p.at(RParen) {
					c.Expr = p.parseExpr()
				}
				p.expect(RParen)
			} else {
				c.Expr = p.parseExpr()
			}
			inst.Conns = append(inst.Conns, c)
			if !p.accept(Comma) {
				break
			}
		}
	}
	p.expect(RParen)
	p.expect(Semi)
	return inst
}

// parseStmt parses one procedural statement.
func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case KwBegin:
		tok := p.next()
		b := &Block{BeginPos: tok.Pos}
		for !p.at(KwEnd) && !p.at(EOF) {
			b.Stmts = append(b.Stmts, p.parseStmt())
		}
		p.expect(KwEnd)
		return b
	case KwIf:
		tok := p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		then := p.parseStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseStmt()
		}
		return &If{IfPos: tok.Pos, Cond: cond, Then: then, Else: els}
	case KwCase, KwCasez:
		return p.parseCase()
	case KwFor:
		return p.parseFor()
	case SYSIDENT:
		return p.parseSysTask()
	case Semi:
		tok := p.next()
		return &NullStmt{SemiPos: tok.Pos}
	case IDENT, LBrace:
		return p.parseProcAssign()
	}
	p.fail("expected statement, found %s", p.cur())
	return nil
}

func (p *Parser) parseCase() *Case {
	tok := p.next()
	c := &Case{CasePos: tok.Pos, IsCasez: tok.Kind == KwCasez}
	p.expect(LParen)
	c.Subject = p.parseExpr()
	p.expect(RParen)
	for !p.at(KwEndcase) && !p.at(EOF) {
		it := &CaseItem{ItemPos: p.cur().Pos}
		if p.accept(KwDefault) {
			p.accept(Colon)
		} else {
			for {
				it.Exprs = append(it.Exprs, p.parseExpr())
				if !p.accept(Comma) {
					break
				}
			}
			p.expect(Colon)
		}
		it.Body = p.parseStmt()
		c.Items = append(c.Items, it)
	}
	p.expect(KwEndcase)
	return c
}

func (p *Parser) parseFor() *For {
	tok := p.expect(KwFor)
	p.expect(LParen)
	init := p.parseSimpleAssign()
	p.expect(Semi)
	cond := p.parseExpr()
	p.expect(Semi)
	post := p.parseSimpleAssign()
	p.expect(RParen)
	body := p.parseStmt()
	return &For{ForPos: tok.Pos, Init: init, Cond: cond, Post: post, Body: body}
}

// parseSimpleAssign parses "lvalue = expr" without a trailing semicolon
// (for-loop init/post clauses).
func (p *Parser) parseSimpleAssign() *ProcAssign {
	lhs := p.parseLValue()
	tok := p.expect(Eq)
	rhs := p.parseExpr()
	return &ProcAssign{AssignPos: tok.Pos, Blocking: true, LHS: lhs, RHS: rhs}
}

func (p *Parser) parseSysTask() *SysTask {
	tok := p.expect(SYSIDENT)
	st := &SysTask{TaskPos: tok.Pos, Name: tok.Text}
	if p.accept(LParen) {
		if !p.at(RParen) {
			for {
				st.Args = append(st.Args, p.parseExpr())
				if !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
	}
	p.expect(Semi)
	return st
}

func (p *Parser) parseProcAssign() *ProcAssign {
	lhs := p.parseLValue()
	var blocking bool
	switch p.cur().Kind {
	case Eq:
		blocking = true
	case LtEq:
		blocking = false
	default:
		p.fail("expected = or <= after lvalue, found %s", p.cur())
	}
	tok := p.next()
	rhs := p.parseExpr()
	p.expect(Semi)
	return &ProcAssign{AssignPos: tok.Pos, Blocking: blocking, LHS: lhs, RHS: rhs}
}

// parseLValue parses an assignment target: an identifier, hierarchical
// identifier, bit/part select, or concatenation of lvalues.
func (p *Parser) parseLValue() Expr {
	if p.at(LBrace) {
		tok := p.next()
		c := &Concat{LPos: tok.Pos}
		for {
			c.Parts = append(c.Parts, p.parseLValue())
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(RBrace)
		return c
	}
	base := p.parsePrimaryIdent()
	for p.at(LBrack) {
		lpos := p.next().Pos
		first := p.parseExpr()
		if p.accept(Colon) {
			lo := p.parseExpr()
			p.expect(RBrack)
			base = &RangeSel{LPos: lpos, X: base, Hi: first, Lo: lo}
		} else {
			p.expect(RBrack)
			base = &Index{LPos: lpos, X: base, Idx: first}
		}
	}
	return base
}

func (p *Parser) parsePrimaryIdent() Expr {
	n := p.expect(IDENT)
	if p.at(Dot) {
		parts := []string{n.Text}
		for p.accept(Dot) {
			parts = append(parts, p.expect(IDENT).Text)
		}
		return &HierIdent{IdentPos: n.Pos, Parts: parts}
	}
	return &Ident{IdentPos: n.Pos, Name: n.Text}
}

// Operator precedence, lowest first. Level 0 is the ternary conditional,
// handled separately in parseExpr.
var binPrec = map[TokenKind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4, TildeXor: 4,
	Amp:  5,
	EqEq: 6, NotEq: 6, CaseEq: 6, CaseNotEq: 6,
	Lt: 7, LtEq: 7, Gt: 7, GtEq: 7,
	Shl: 8, Shr: 8, AShl: 8, AShr: 8,
	PlusOp: 9, MinusOp: 9,
	StarOp: 10, SlashOp: 10, PercentOp: 10,
	PowerOp: 11,
}

var binOps = map[TokenKind]BinaryOp{
	OrOr: BLogOr, AndAnd: BLogAnd, Pipe: BBitOr, Caret: BBitXor, TildeXor: BBitXnor,
	Amp: BBitAnd, EqEq: BEq, NotEq: BNeq, CaseEq: BCaseEq, CaseNotEq: BCaseNeq,
	Lt: BLt, LtEq: BLe, Gt: BGt, GtEq: BGe,
	Shl: BShl, Shr: BShr, AShl: BAShl, AShr: BAShr,
	PlusOp: BAdd, MinusOp: BSub, StarOp: BMul, SlashOp: BDiv, PercentOp: BMod,
	PowerOp: BPow,
}

// parseExpr parses a full expression including the ternary conditional.
func (p *Parser) parseExpr() Expr {
	cond := p.parseBinary(1)
	if p.at(Question) {
		tok := p.next()
		then := p.parseExpr()
		p.expect(Colon)
		els := p.parseExpr()
		return &Ternary{QPos: tok.Pos, Cond: cond, Then: then, Else: els}
	}
	return cond
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs
		}
		tok := p.next()
		// Power is right-associative; everything else left-associative.
		nextMin := prec + 1
		if tok.Kind == PowerOp {
			nextMin = prec
		}
		rhs := p.parseBinary(nextMin)
		lhs = &Binary{OpPos: tok.Pos, Op: binOps[tok.Kind], X: lhs, Y: rhs}
	}
}

var unaryOps = map[TokenKind]UnaryOp{
	Bang: UNot, Tilde: UBitNot, MinusOp: UNeg, PlusOp: UPlus,
	Amp: URedAnd, Pipe: URedOr, Caret: URedXor,
	TildeAmp: URedNand, TildePipe: URedNor, TildeXor: URedXnor,
}

func (p *Parser) parseUnary() Expr {
	if op, ok := unaryOps[p.cur().Kind]; ok {
		tok := p.next()
		return &Unary{OpPos: tok.Pos, Op: op, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for p.at(LBrack) {
		lpos := p.next().Pos
		first := p.parseExpr()
		if p.accept(Colon) {
			lo := p.parseExpr()
			p.expect(RBrack)
			e = &RangeSel{LPos: lpos, X: e, Hi: first, Lo: lo}
		} else {
			p.expect(RBrack)
			e = &Index{LPos: lpos, X: e, Idx: first}
		}
	}
	return e
}

func (p *Parser) parsePrimary() Expr {
	switch p.cur().Kind {
	case NUMBER:
		tok := p.next()
		v, mask, err := bits.ParseMaskedLiteral(tok.Text)
		if err != nil {
			p.fail("%v", err)
		}
		sized := false
		for _, c := range tok.Text {
			if c == '\'' {
				sized = true
				break
			}
		}
		return &Number{NumPos: tok.Pos, Literal: tok.Text, Val: v, Mask: mask, Sized: sized}
	case STRING:
		tok := p.next()
		return &StringLit{StrPos: tok.Pos, Value: tok.Text}
	case IDENT:
		return p.parsePrimaryIdent()
	case SYSIDENT:
		tok := p.next()
		call := &SysCall{CallPos: tok.Pos, Name: tok.Text}
		if p.accept(LParen) {
			if !p.at(RParen) {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if !p.accept(Comma) {
						break
					}
				}
			}
			p.expect(RParen)
		}
		return call
	case LParen:
		p.next()
		e := p.parseExpr()
		p.expect(RParen)
		return e
	case LBrace:
		tok := p.next()
		first := p.parseExpr()
		if p.at(LBrace) {
			// Replication: {n{expr}}.
			p.next()
			inner := p.parseExpr()
			p.expect(RBrace)
			p.expect(RBrace)
			return &Repl{LPos: tok.Pos, Count: first, X: inner}
		}
		c := &Concat{LPos: tok.Pos, Parts: []Expr{first}}
		for p.accept(Comma) {
			c.Parts = append(c.Parts, p.parseExpr())
		}
		p.expect(RBrace)
		return c
	}
	p.fail("expected expression, found %s", p.cur())
	return nil
}
