package verilog

import (
	"fmt"
	"strings"
)

// Lexer converts Verilog source text into a token stream. It handles //
// line comments, /* */ block comments, sized number literals (the size,
// tick, base, and digits are assembled into a single NUMBER token), string
// literals with the escapes $display supports, and all operators in the
// supported subset.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '_'
}

// skipSpaceAndComments consumes whitespace and comments; it reports an
// unterminated block comment as an error.
func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token in the stream. At end of input it returns
// EOF forever.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		return l.lexIdent(pos)
	case c == '$':
		return l.lexSysIdent(pos)
	case isDigit(c) || c == '\'':
		return l.lexNumber(pos)
	case c == '"':
		return l.lexString(pos)
	case c == '`':
		// Compiler directives are not supported; skip the directive name
		// and return the following token so batch files with `timescale
		// don't wedge the lexer.
		l.advance()
		for l.off < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		l.errorf(pos, "compiler directives are not supported (skipped)")
		return l.Next()
	}
	return l.lexOperator(pos)
}

func (l *Lexer) lexIdent(pos Pos) Token {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: pos}
	}
	return Token{Kind: IDENT, Text: text, Pos: pos}
}

func (l *Lexer) lexSysIdent(pos Pos) Token {
	start := l.off
	l.advance() // '$'
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if text == "$" {
		l.errorf(pos, "stray '$'")
		return Token{Kind: ILLEGAL, Text: text, Pos: pos}
	}
	return Token{Kind: SYSIDENT, Text: text, Pos: pos}
}

// lexNumber assembles [size] ' base digits, or a plain decimal, into one
// NUMBER token whose text is parseable by bits.ParseLiteral.
func (l *Lexer) lexNumber(pos Pos) Token {
	start := l.off
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	if l.peek() == '\'' {
		l.advance() // tick
		b := l.peek()
		if b == 'h' || b == 'H' || b == 'd' || b == 'D' || b == 'o' || b == 'O' || b == 'b' || b == 'B' {
			binary := b == 'b' || b == 'B'
			l.advance()
			digStart := l.off
			for l.off < len(l.src) && (isBaseDigit(l.peek()) || (binary && l.peek() == '?')) {
				l.advance()
			}
			if l.off == digStart {
				l.errorf(pos, "number literal missing digits")
				return Token{Kind: ILLEGAL, Text: l.src[start:l.off], Pos: pos}
			}
		} else {
			l.errorf(pos, "invalid number base %q", string(b))
			return Token{Kind: ILLEGAL, Text: l.src[start:l.off], Pos: pos}
		}
	}
	return Token{Kind: NUMBER, Text: strings.TrimSpace(l.src[start:l.off]), Pos: pos}
}

func (l *Lexer) lexString(pos Pos) Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: STRING, Text: sb.String(), Pos: pos}
		case '\\':
			if l.off >= len(l.src) {
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				sb.WriteByte(e)
			}
		case '\n':
			l.errorf(pos, "unterminated string literal")
			return Token{Kind: ILLEGAL, Text: sb.String(), Pos: pos}
		default:
			sb.WriteByte(c)
		}
	}
	l.errorf(pos, "unterminated string literal")
	return Token{Kind: ILLEGAL, Text: sb.String(), Pos: pos}
}

func (l *Lexer) lexOperator(pos Pos) Token {
	two := func(kind TokenKind, text string) Token {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: pos}
	}
	three := func(kind TokenKind, text string) Token {
		l.advance()
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: pos}
	}
	one := func(kind TokenKind) Token {
		c := l.advance()
		return Token{Kind: kind, Text: string(c), Pos: pos}
	}

	c, c1, c2 := l.peek(), l.peekAt(1), l.peekAt(2)
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '[':
		return one(LBrack)
	case ']':
		return one(RBrack)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	case ',':
		return one(Comma)
	case '.':
		return one(Dot)
	case '@':
		return one(At)
	case '#':
		return one(Hash)
	case '?':
		return one(Question)
	case '+':
		return one(PlusOp)
	case '-':
		return one(MinusOp)
	case '/':
		return one(SlashOp)
	case '%':
		return one(PercentOp)
	case '*':
		if c1 == '*' {
			return two(PowerOp, "**")
		}
		return one(StarOp)
	case '=':
		if c1 == '=' && c2 == '=' {
			return three(CaseEq, "===")
		}
		if c1 == '=' {
			return two(EqEq, "==")
		}
		return one(Eq)
	case '!':
		if c1 == '=' && c2 == '=' {
			return three(CaseNotEq, "!==")
		}
		if c1 == '=' {
			return two(NotEq, "!=")
		}
		return one(Bang)
	case '<':
		if c1 == '<' && c2 == '<' {
			return three(AShl, "<<<")
		}
		if c1 == '<' {
			return two(Shl, "<<")
		}
		if c1 == '=' {
			return two(LtEq, "<=")
		}
		return one(Lt)
	case '>':
		if c1 == '>' && c2 == '>' {
			return three(AShr, ">>>")
		}
		if c1 == '>' {
			return two(Shr, ">>")
		}
		if c1 == '=' {
			return two(GtEq, ">=")
		}
		return one(Gt)
	case '&':
		if c1 == '&' {
			return two(AndAnd, "&&")
		}
		return one(Amp)
	case '|':
		if c1 == '|' {
			return two(OrOr, "||")
		}
		return one(Pipe)
	case '^':
		if c1 == '~' {
			return two(TildeXor, "^~")
		}
		return one(Caret)
	case '~':
		if c1 == '&' {
			return two(TildeAmp, "~&")
		}
		if c1 == '|' {
			return two(TildePipe, "~|")
		}
		if c1 == '^' {
			return two(TildeXor, "~^")
		}
		return one(Tilde)
	}
	l.errorf(pos, "unexpected character %q", string(c))
	l.advance()
	return Token{Kind: ILLEGAL, Text: string(c), Pos: pos}
}

// LexAll tokenizes src completely, returning the tokens (ending with EOF)
// and any lexical errors.
func LexAll(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, l.Errors()
}
