package verilog

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// srcGen emits random well-formed source text covering the whole grammar,
// for parse/print round-trip fuzzing.
type srcGen struct {
	r *rand.Rand
}

func (g *srcGen) ident(prefix string) string {
	return fmt.Sprintf("%s%d", prefix, g.r.Intn(6))
}

func (g *srcGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d'h%x", 1+g.r.Intn(16), g.r.Intn(1<<12))
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(100))
		default:
			return g.ident("v")
		}
	}
	switch g.r.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1),
			[]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">", "&&", "||", "**", "~^", "<<<", ">>>"}[g.r.Intn(20)],
			g.expr(depth-1))
	case 1:
		return fmt.Sprintf("%s%s", []string{"!", "~", "-", "&", "|", "^", "~&", "~|", "~^"}[g.r.Intn(9)], g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("{%s, %s}", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("{%d{%s}}", 1+g.r.Intn(4), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("%s[%d]", g.ident("v"), g.r.Intn(8))
	case 6:
		return fmt.Sprintf("%s[%d:%d]", g.ident("v"), 4+g.r.Intn(4), g.r.Intn(4))
	case 7:
		return g.ident("v") + "." + g.ident("p")
	default:
		return fmt.Sprintf("(%s)", g.expr(depth-1))
	}
}

func (g *srcGen) stmt(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("%s <= %s;", g.ident("v"), g.expr(1))
	}
	switch g.r.Intn(7) {
	case 0:
		return fmt.Sprintf("begin %s %s end", g.stmt(depth-1), g.stmt(depth-1))
	case 1:
		return fmt.Sprintf("if (%s) %s else %s", g.expr(1), g.stmt(depth-1), g.stmt(depth-1))
	case 2:
		return fmt.Sprintf("case (%s) %d: %s %d, %d: %s default: %s endcase",
			g.expr(1), g.r.Intn(4), g.stmt(depth-1), 4+g.r.Intn(4), 8+g.r.Intn(4), g.stmt(depth-1), g.stmt(depth-1))
	case 3:
		return fmt.Sprintf("for (%s = 0; %s < %d; %s = %s + 1) %s",
			g.ident("v"), g.ident("v"), g.r.Intn(8), g.ident("v"), g.ident("v"), g.stmt(depth-1))
	case 4:
		return fmt.Sprintf("$display(\"x=%%d y=%%h\", %s, %s);", g.expr(1), g.expr(1))
	case 5:
		return fmt.Sprintf("%s = %s;", g.ident("v"), g.expr(depth-1))
	default:
		return fmt.Sprintf("%s[%d] <= %s;", g.ident("v"), g.r.Intn(8), g.expr(depth-1))
	}
}

func (g *srcGen) module(i int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module Fz%d", i)
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "#(parameter N = %d, parameter [7:0] K = 8'h%x)", 1+g.r.Intn(8), g.r.Intn(256))
	}
	fmt.Fprintf(&sb, "(input wire clk, input wire [7:0] v0, output reg [7:0] v1, output wire [3:0] v2);\n")
	fmt.Fprintf(&sb, "  localparam L = %d;\n", g.r.Intn(50))
	fmt.Fprintf(&sb, "  reg [15:0] v3 = %d;\n", g.r.Intn(100))
	fmt.Fprintf(&sb, "  wire [7:0] v4, v5;\n")
	fmt.Fprintf(&sb, "  integer v6;\n")
	fmt.Fprintf(&sb, "  reg [7:0] v7 [0:15];\n")
	fmt.Fprintf(&sb, "  assign v4 = %s;\n", g.expr(2))
	fmt.Fprintf(&sb, "  always @(posedge clk) %s\n", g.stmt(2))
	fmt.Fprintf(&sb, "  always @(*) %s\n", g.stmt(1))
	fmt.Fprintf(&sb, "  always @(v4 or v5) %s\n", g.stmt(1))
	fmt.Fprintf(&sb, "  initial %s\n", g.stmt(1))
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "  Fz%d#(.N(2)) sub(.clk(clk), .v0(v4));\n", i+1)
	}
	fmt.Fprintf(&sb, "endmodule\n")
	return sb.String()
}

// TestPrintParseRoundTripFuzz: parse(print(parse(x))) equals parse(x)
// structurally for randomly generated source across the grammar.
func TestPrintParseRoundTripFuzz(t *testing.T) {
	g := &srcGen{r: rand.New(rand.NewSource(2024))}
	for trial := 0; trial < 200; trial++ {
		src := g.module(trial)
		st1, errs := ParseSourceText(src)
		if errs != nil {
			t.Fatalf("trial %d: generated source does not parse: %v\n%s", trial, errs, src)
		}
		printed := Print(st1.Modules[0])
		st2, errs := ParseSourceText(printed)
		if errs != nil {
			t.Fatalf("trial %d: printed source does not reparse: %v\noriginal:\n%s\nprinted:\n%s", trial, errs, src, printed)
		}
		a, b := st1.Modules[0], st2.Modules[0]
		stripPos(reflect.ValueOf(a))
		stripPos(reflect.ValueOf(b))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: round trip changed AST\noriginal:\n%s\nprinted:\n%s", trial, src, printed)
		}
		// Idempotence: printing the reparsed AST yields identical text.
		if again := Print(st2.Modules[0]); again != printed {
			t.Fatalf("trial %d: printer not idempotent", trial)
		}
	}
}

// TestLexerNeverPanics feeds mangled source to the lexer.
func TestLexerNeverPanics(t *testing.T) {
	g := &srcGen{r: rand.New(rand.NewSource(7))}
	junk := []byte(`~!@#$%^&*()_+{}[]|\:";'<>?,./` + "`")
	for trial := 0; trial < 300; trial++ {
		src := []byte(g.module(trial))
		// Mutate a few bytes.
		for k := 0; k < 5; k++ {
			src[g.r.Intn(len(src))] = junk[g.r.Intn(len(junk))]
		}
		LexAll(string(src)) // must not panic
	}
}

// TestParserNeverPanicsOnMangledInput feeds mangled source to the parser.
func TestParserNeverPanicsOnMangledInput(t *testing.T) {
	g := &srcGen{r: rand.New(rand.NewSource(8))}
	for trial := 0; trial < 300; trial++ {
		src := []byte(g.module(trial))
		// Delete a random span: unbalanced constructs, truncations.
		if len(src) > 20 {
			a := g.r.Intn(len(src) - 10)
			b := a + g.r.Intn(len(src)-a)
			src = append(src[:a], src[b:]...)
		}
		ParseSourceText(string(src))                      // must not panic
		ParseProgramFragment(string(src))                 // must not panic
		ParseItems(string(src))                           // must not panic
		_, _ = ParseExpr(string(src[:min(len(src), 40)])) // must not panic
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
