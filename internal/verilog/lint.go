package verilog

import "fmt"

// Warning is a non-fatal style or correctness diagnostic.
type Warning struct {
	Pos Pos
	Msg string
}

func (w Warning) String() string { return fmt.Sprintf("%s: warning: %s", w.Pos, w.Msg) }

// Lint reports the mistakes the paper's class study surfaced as common
// (§6.4): incomplete sensitivity lists (which synthesis silently
// "fixes", diverging from simulation), blocking assignments inside
// clocked blocks, non-blocking assignments inside combinational blocks,
// and declared-but-never-used variables. The REPL surfaces these when
// code is eval'd; none of them block integration.
func Lint(mods []*Module, items []Item) []Warning {
	var out []Warning
	for _, m := range mods {
		out = append(out, lintItems(m.Items, m.Name)...)
	}
	out = append(out, lintItems(items, "the root module")...)
	return out
}

func lintItems(items []Item, scope string) []Warning {
	var out []Warning

	declared := map[string]Pos{}
	used := map[string]bool{}
	noteUse := func(e Expr) {
		WalkExprs(e, func(x Expr) {
			switch t := x.(type) {
			case *Ident:
				used[t.Name] = true
			case *HierIdent:
				used[t.Parts[0]] = true
			}
		})
	}
	var noteStmtUses func(s Stmt)
	noteStmtUses = func(s Stmt) {
		switch x := s.(type) {
		case nil:
		case *Block:
			for _, st := range x.Stmts {
				noteStmtUses(st)
			}
		case *If:
			noteUse(x.Cond)
			noteStmtUses(x.Then)
			noteStmtUses(x.Else)
		case *Case:
			noteUse(x.Subject)
			for _, it := range x.Items {
				for _, e := range it.Exprs {
					noteUse(e)
				}
				noteStmtUses(it.Body)
			}
		case *ProcAssign:
			noteUse(x.LHS)
			noteUse(x.RHS)
		case *For:
			noteStmtUses(x.Init)
			noteUse(x.Cond)
			noteStmtUses(x.Post)
			noteStmtUses(x.Body)
		case *SysTask:
			for _, a := range x.Args {
				noteUse(a)
			}
		}
	}

	for _, it := range items {
		switch x := it.(type) {
		case *NetDecl:
			for _, dn := range x.Names {
				declared[dn.Name] = dn.NamePos
				noteUse(dn.Init)
			}
		case *ContAssign:
			noteUse(x.LHS)
			noteUse(x.RHS)
		case *Instance:
			used[x.Name] = true
			for _, c := range x.Conns {
				noteUse(c.Expr)
			}
			for _, p := range x.Params {
				noteUse(p.Expr)
			}
		case *AlwaysBlock:
			noteStmtUses(x.Body)
			for _, ev := range x.Events {
				noteUse(ev.Expr)
			}
			out = append(out, lintAlways(x, scope)...)
		case *InitialBlock:
			noteStmtUses(x.Body)
		}
	}

	for name, pos := range declared {
		if !used[name] {
			out = append(out, Warning{Pos: pos, Msg: fmt.Sprintf("%s is declared but never used in %s", name, scope)})
		}
	}
	return out
}

func lintAlways(a *AlwaysBlock, scope string) []Warning {
	var out []Warning

	edgeTriggered := false
	levelList := map[string]bool{}
	pureLevel := len(a.Events) > 0
	for _, ev := range a.Events {
		if ev.Edge != AnyEdge {
			edgeTriggered = true
			pureLevel = false
		} else if id, ok := rootIdentOf(ev.Expr); ok {
			levelList[id] = true
		}
	}

	// Classify assignments and collect reads in the body.
	reads := map[string]Pos{}
	writes := map[string]bool{}
	var blockingPos, nonblockingPos []Pos
	var scan func(s Stmt)
	noteReads := func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if id, ok := x.(*Ident); ok {
				if _, seen := reads[id.Name]; !seen {
					reads[id.Name] = id.IdentPos
				}
			}
		})
	}
	scan = func(s Stmt) {
		switch x := s.(type) {
		case nil:
		case *Block:
			for _, st := range x.Stmts {
				scan(st)
			}
		case *If:
			noteReads(x.Cond)
			scan(x.Then)
			scan(x.Else)
		case *Case:
			noteReads(x.Subject)
			for _, it := range x.Items {
				for _, e := range it.Exprs {
					noteReads(e)
				}
				scan(it.Body)
			}
		case *ProcAssign:
			noteReads(x.RHS)
			if id, ok := rootIdentOf(x.LHS); ok {
				writes[id] = true
			}
			if x.Blocking {
				blockingPos = append(blockingPos, x.AssignPos)
			} else {
				nonblockingPos = append(nonblockingPos, x.AssignPos)
			}
		case *For:
			noteReads(x.Cond)
			scan(x.Body)
		case *SysTask:
			for _, e := range x.Args {
				noteReads(e)
			}
		}
	}
	scan(a.Body)

	if edgeTriggered && len(blockingPos) > 0 {
		out = append(out, Warning{Pos: blockingPos[0], Msg: fmt.Sprintf(
			"blocking assignment in a clocked always block in %s (use <= for registers)", scope)})
	}
	if (a.Star || pureLevel) && len(nonblockingPos) > 0 {
		out = append(out, Warning{Pos: nonblockingPos[0], Msg: fmt.Sprintf(
			"non-blocking assignment in a combinational always block in %s (use =)", scope)})
	}
	if pureLevel {
		for name, pos := range reads {
			if !levelList[name] && !writes[name] {
				out = append(out, Warning{Pos: pos, Msg: fmt.Sprintf(
					"%s is read but missing from the sensitivity list in %s (simulation and hardware may diverge; use @*)", name, scope)})
			}
		}
	}
	return out
}

// rootIdentOf returns the base identifier name of an expression.
func rootIdentOf(e Expr) (string, bool) {
	switch x := e.(type) {
	case *Ident:
		return x.Name, true
	case *HierIdent:
		return x.Parts[0], true
	case *Index:
		return rootIdentOf(x.X)
	case *RangeSel:
		return rootIdentOf(x.X)
	}
	return "", false
}
