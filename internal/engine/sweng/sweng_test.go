package sweng

import (
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/verilog"
)

type recordIO struct {
	out      strings.Builder
	finished bool
}

func (r *recordIO) Display(text string, newline bool) {
	r.out.WriteString(text)
	if newline {
		r.out.WriteString("\n")
	}
}
func (r *recordIO) Finish(code int) { r.finished = true }

func build(t *testing.T, src string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "e", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const counter = `
module M(input wire clk, input wire [3:0] step, output wire [7:0] q);
  reg [7:0] acc = 0;
  always @(posedge clk) begin
    acc <= acc + step;
    if (acc == 8'd6) $display("six at %d", $time);
    if (acc == 8'd12) $finish;
  end
  assign q = acc;
endmodule`

func tick(e *Engine) {
	for _, c := range []uint64{1, 0} {
		e.Read(engine.Event{Var: "clk", Val: bits.FromUint64(1, c)})
		for e.ThereAreEvals() || e.ThereAreUpdates() {
			e.Evaluate()
			if e.ThereAreUpdates() {
				e.Update()
			}
		}
		e.EndStep()
	}
}

func TestEngineABILifecycle(t *testing.T) {
	io := &recordIO{}
	now := uint64(0)
	e := New(build(t, counter), io, func() uint64 { return now }, false)
	if e.Loc() != engine.Software || e.Name() != "e" {
		t.Fatal("identity wrong")
	}
	e.Read(engine.Event{Var: "step", Val: bits.FromUint64(4, 3)})
	// acc: 3,6,9,12; the $finish guard reads acc==12 at the fifth edge.
	for i := 0; i < 5 && !e.Finished(); i++ {
		now = uint64(i)
		tick(e)
	}
	// Outputs broadcast only when changed.
	evs := e.DrainWrites()
	found := false
	for _, ev := range evs {
		if ev.Var == "q" {
			found = true
		}
	}
	if !found {
		t.Fatalf("q not broadcast: %v", evs)
	}
	if len(e.DrainWrites()) != 0 {
		t.Fatal("unchanged outputs re-broadcast")
	}
	if !strings.Contains(io.out.String(), "six at") {
		t.Fatalf("display lost: %q", io.out.String())
	}
	if !io.finished || !e.Finished() {
		t.Fatal("finish not propagated")
	}
}

func TestOpsDeltaFeedsCostModel(t *testing.T) {
	e := New(build(t, counter), nil, nil, false)
	e.OpsDelta() // clear construction work
	tick(e)
	if d := e.OpsDelta(); d == 0 {
		t.Fatal("a tick should cost interpreter ops")
	}
	if d := e.OpsDelta(); d != 0 {
		t.Fatalf("delta should reset: %d", d)
	}
}

func TestStateHandOffBetweenSoftwareEngines(t *testing.T) {
	f := build(t, counter)
	a := New(f, nil, nil, false)
	a.Read(engine.Event{Var: "step", Val: bits.FromUint64(4, 2)})
	for i := 0; i < 3; i++ {
		tick(a)
	}
	b := New(build(t, counter), nil, nil, false)
	b.SetState(a.GetState())
	if got := b.GetState().Scalars["acc"].Uint64(); got != 6 {
		t.Fatalf("acc not transferred: %d", got)
	}
	// Continue on b: must pick up where a stopped.
	tick(b)
	if got := b.GetState().Scalars["acc"].Uint64(); got != 8 {
		t.Fatalf("b did not continue: %d", got)
	}
}

func TestEagerAndLazyAgree(t *testing.T) {
	lazy := New(build(t, counter), nil, nil, false)
	eager := New(build(t, counter), nil, nil, true)
	for _, e := range []*Engine{lazy, eager} {
		e.Read(engine.Event{Var: "step", Val: bits.FromUint64(4, 1)})
	}
	lazy.OpsDelta()
	eager.OpsDelta()
	var lazyOps, eagerOps uint64
	for i := 0; i < 5; i++ {
		tick(lazy)
		tick(eager)
	}
	lazyOps, eagerOps = lazy.OpsDelta(), eager.OpsDelta()
	if lazy.GetState().Signature() != eager.GetState().Signature() {
		t.Fatal("eager and lazy evaluation diverged")
	}
	if eagerOps <= lazyOps {
		t.Fatalf("eager should cost more ops: %d vs %d", eagerOps, lazyOps)
	}
}
