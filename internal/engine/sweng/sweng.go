// Package sweng implements Cascade-Go's software engines (paper §5.1):
// a subprogram held as an elaborated IR and executed by the event-driven
// interpreter in internal/sim. Software engines compile in microseconds —
// they are what lets eval'd code start running immediately — at the cost
// of interpreter-speed execution. They inhabit the same process as the
// runtime, so communication costs nothing.
package sweng

import (
	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/sim"
)

// Engine is a software engine.
type Engine struct {
	name string
	flat *elab.Flat
	s    *sim.Simulator
	io   engine.IOHandler

	lastOut map[string]*bits.Vector
	lastOps uint64
}

// New builds a software engine for an elaborated subprogram. now
// supplies virtual time for $time; io receives system-task side effects;
// eager selects the naive re-evaluation strategy (baseline/ablation).
func New(flat *elab.Flat, io engine.IOHandler, now func() uint64, eager bool) *Engine {
	e := &Engine{
		name:    flat.Name,
		flat:    flat,
		io:      io,
		lastOut: map[string]*bits.Vector{},
	}
	e.s = sim.New(flat, sim.Options{
		Display: func(text string) {
			if io != nil {
				newline := len(text) > 0 && text[len(text)-1] == '\n'
				if newline {
					text = text[:len(text)-1]
				}
				io.Display(text, newline)
			}
		},
		Finish: func(code int) {
			if io != nil {
				io.Finish(code)
			}
		},
		Now:   now,
		Eager: eager,
	})
	return e
}

// Flat exposes the engine's elaborated subprogram.
func (e *Engine) Flat() *elab.Flat { return e.flat }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Loc implements engine.Engine.
func (e *Engine) Loc() engine.Location { return engine.Software }

// GetState implements engine.Engine.
func (e *Engine) GetState() *sim.State { return e.s.GetState() }

// SetState implements engine.Engine.
func (e *Engine) SetState(st *sim.State) { e.s.SetState(st) }

// Read implements engine.Engine.
func (e *Engine) Read(ev engine.Event) {
	e.s.SetInputByName(ev.Var, ev.Val)
}

// DrainWrites implements engine.Engine: it reports output ports whose
// value changed since the last drain.
func (e *Engine) DrainWrites() []engine.Event {
	var evs []engine.Event
	for _, v := range e.flat.Outputs {
		cur := e.s.Value(v.Name)
		last, seen := e.lastOut[v.Name]
		if !seen || !last.Equal(cur) {
			e.lastOut[v.Name] = cur
			evs = append(evs, engine.Event{Var: v.Name, Val: cur.Clone()})
		}
	}
	return evs
}

// ThereAreEvals implements engine.Engine.
func (e *Engine) ThereAreEvals() bool { return e.s.HasActive() }

// Evaluate implements engine.Engine.
func (e *Engine) Evaluate() { e.s.Evaluate() }

// ThereAreUpdates implements engine.Engine.
func (e *Engine) ThereAreUpdates() bool { return e.s.HasUpdates() }

// Update implements engine.Engine.
func (e *Engine) Update() { e.s.Update() }

// EndStep implements engine.Engine.
func (e *Engine) EndStep() { e.s.EndStep() }

// End implements engine.Engine.
func (e *Engine) End() {}

// Finished reports whether the subprogram executed $finish.
func (e *Engine) Finished() bool { return e.s.Finished() }

// OpsDelta returns interpreter operations executed since the last call
// (the runtime's compute-cost feed).
func (e *Engine) OpsDelta() uint64 {
	total := e.s.EvalOps + e.s.WriteOps + e.s.UpdateOps
	d := total - e.lastOps
	e.lastOps = total
	return d
}

// UsageDelta implements engine.UsageReporter.
func (e *Engine) UsageDelta() engine.Usage {
	return engine.Usage{Ops: e.OpsDelta()}
}
