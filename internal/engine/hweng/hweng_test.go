package hweng

import (
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/stdlib"
	"cascade/internal/verilog"
)

type recordIO struct {
	out      strings.Builder
	finished bool
}

func (r *recordIO) Display(text string, newline bool) {
	r.out.WriteString(text)
	if newline {
		r.out.WriteString("\n")
	}
}
func (r *recordIO) Finish(code int) { r.finished = true }

func compile(t *testing.T, src string) *netlist.Program {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := netlist.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The inlined running-example shape: clock input from a forwarded Clock,
// counter state, LED output, and a display task.
const mainSrc = `
module main(input wire clk__val, input wire [3:0] pad__val, output wire [7:0] led__val);
  reg [7:0] cnt = 1;
  always @(posedge clk__val)
    if (pad__val == 0)
      cnt <= (cnt == 8'h80) ? 1 : (cnt << 1);
    else
      $display("paused %d", cnt);
  assign led__val = cnt;
endmodule`

func newHW(t *testing.T, io engine.IOHandler) (*Engine, *fpga.Device) {
	t.Helper()
	dev := fpga.NewCycloneV()
	e, err := New("main", compile(t, mainSrc), dev, 500, io, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, dev
}

func TestPlacementAndRelease(t *testing.T) {
	e, dev := newHW(t, nil)
	if dev.Used() != 500 {
		t.Fatalf("placement: %d", dev.Used())
	}
	e.Release()
	if dev.Used() != 0 {
		t.Fatalf("release: %d", dev.Used())
	}
}

func TestLockStepTickAndBilling(t *testing.T) {
	e, dev := newHW(t, nil)
	e.MsgsDelta()
	e.CyclesDelta()
	r0, w0 := dev.BusTransactions()
	for _, c := range []uint64{1, 0} {
		e.Read(engine.Event{Var: "clk__val", Val: bits.FromUint64(1, c)})
		for e.ThereAreEvals() || e.ThereAreUpdates() {
			e.Evaluate()
			if e.ThereAreUpdates() {
				e.Update()
			}
		}
		e.EndStep()
		e.DrainWrites()
	}
	if msgs := e.MsgsDelta(); msgs == 0 {
		t.Fatal("lock-step interaction should cost bus messages")
	}
	if cyc := e.CyclesDelta(); cyc == 0 {
		t.Fatal("evaluation should cost fabric cycles")
	}
	r1, w1 := dev.BusTransactions()
	if r1 == r0 && w1 == w0 {
		t.Fatal("device bus counters untouched")
	}
	st := e.GetState()
	if st.Scalars["cnt"].Uint64() != 2 {
		t.Fatalf("cnt=%d after one tick", st.Scalars["cnt"].Uint64())
	}
}

func TestStateAccessBillsPerWord(t *testing.T) {
	e, _ := newHW(t, nil)
	e.MsgsDelta()
	st := e.GetState()
	if got := e.MsgsDelta(); got == 0 {
		t.Fatal("get_state should cost bus reads")
	}
	e.SetState(st)
	if got := e.MsgsDelta(); got == 0 {
		t.Fatal("set_state should cost bus writes")
	}
}

func TestForwardedOpenLoop(t *testing.T) {
	io := &recordIO{}
	e, _ := newHW(t, io)
	clock := stdlib.NewClock("main.clk")
	e.Forward("main.clk", clock)
	e.ForwardWire("main.clk", "val", "", "clk__val")
	if e.Inner("main.clk") != clock {
		t.Fatal("forwarded component not reachable")
	}
	done := e.OpenLoop("clk__val", 20)
	if done != 20 {
		t.Fatalf("open loop ran %d iterations, want 20", done)
	}
	// 20 iterations = 10 ticks: cnt rotated 10 times from 1.
	st := e.GetState()
	if got := st.Scalars["cnt"].Uint64(); got != 1<<(10%8) {
		t.Fatalf("cnt=%#x after 10 open-loop ticks", got)
	}
	// Wrapped open loop costs ~3 cycles per tick.
	cyc := e.CyclesDelta()
	if cyc < 25 || cyc > 40 {
		t.Fatalf("open-loop cycles %d, want ~30 for 10 ticks", cyc)
	}
}

func TestOpenLoopStopsOnSystemTask(t *testing.T) {
	io := &recordIO{}
	e, _ := newHW(t, io)
	clock := stdlib.NewClock("main.clk")
	e.Forward("main.clk", clock)
	e.ForwardWire("main.clk", "val", "", "clk__val")
	// Press the pad: the display task must pull control back.
	e.Read(engine.Event{Var: "pad__val", Val: bits.FromUint64(4, 1)})
	done := e.OpenLoop("clk__val", 1000)
	if done >= 1000 {
		t.Fatal("open loop should stop early on a system task")
	}
	if !strings.Contains(io.out.String(), "paused") {
		t.Fatalf("display not forwarded: %q", io.out.String())
	}
}

func TestOpenLoopUnknownClockRefuses(t *testing.T) {
	e, _ := newHW(t, nil)
	if got := e.OpenLoop("nope", 100); got != 0 {
		t.Fatalf("unknown clock should run 0 iterations, ran %d", got)
	}
}

func TestNativeCyclesPerTick(t *testing.T) {
	dev := fpga.NewCycloneV()
	e, err := New("main", compile(t, mainSrc), dev, 300, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := stdlib.NewClock("main.clk")
	e.Forward("main.clk", clock)
	e.ForwardWire("main.clk", "val", "", "clk__val")
	e.CyclesDelta()
	e.OpenLoop("clk__val", 20)
	if cyc := e.CyclesDelta(); cyc != 10 {
		t.Fatalf("native open loop should cost 1 cycle/tick: %d for 10 ticks", cyc)
	}
}

func TestFinishFromHardware(t *testing.T) {
	io := &recordIO{}
	dev := fpga.NewCycloneV()
	src := `
module main(input wire clk__val);
  reg [3:0] n = 0;
  always @(posedge clk__val) begin
    n <= n + 1;
    if (n == 5) $finish;
  end
endmodule`
	e, err := New("main", compile(t, src), dev, 100, io, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := stdlib.NewClock("main.clk")
	e.Forward("main.clk", clock)
	e.ForwardWire("main.clk", "val", "", "clk__val")
	e.OpenLoop("clk__val", 1000)
	if !e.Finished() || !io.finished {
		t.Fatal("$finish not surfaced from hardware")
	}
}
