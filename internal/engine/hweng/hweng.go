// Package hweng implements Cascade-Go's hardware engines (paper §5.2).
// A hardware engine is a subprogram synthesized to a netlist "bitstream"
// executing on the simulated FPGA (internal/fpga), reached through an
// AXI-style memory-mapped stub that this package models: every ABI
// request and data-plane event crossing the host/fabric boundary is
// counted as a bus transaction and billed on the virtual clock.
//
// Hardware engines implement the two optional ABI capabilities that give
// Cascade its performance (paper §4.3–4.4): Forward absorbs
// standard-library component engines so the user-logic engine answers the
// runtime on their behalf, and OpenLoop runs many scheduler iterations
// entirely on the fabric, returning control only when the iteration
// budget is spent or a system task needs the runtime.
package hweng

import (
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/sim"
)

// route is a data-plane wire inside the forward group. Engine names are
// instance paths; "" denotes the user-logic machine itself.
type route struct {
	fromName, fromVar string
	toName, toVar     string
}

// Engine is a hardware engine.
type Engine struct {
	name string
	flat *elab.Flat
	m    *netlist.Machine
	dev  *fpga.Device
	io   engine.IOHandler

	// Native engines carry no ABI wrapper (paper §4.5): full fabric
	// speed, no state access, no system tasks.
	native bool

	inner  map[string]engine.Engine // forwarded components
	order  []string
	routes []route

	// Separate change-tracking for the runtime-facing data plane
	// (DrainWrites) and the group-internal routing (drainGroup): an
	// internal delivery must not hide a change from the runtime.
	lastOut  map[string]uint64SliceKey
	lastInt  map[string]uint64SliceKey
	finished bool

	// Fault handling: the engine consults the device's injector on
	// control-plane transactions (bus faults) and at step boundaries
	// (region faults), and latches the first hit. A latched fault does
	// not corrupt execution — detection happens on the MMIO handshake,
	// and the ABI wrapper's shadow registers (Figure 10) keep the
	// engine's state readable — it signals the runtime to evict this
	// engine back to software between steps.
	flt     *fault.Injector
	fault   error
	areaLEs int

	// Perf counters, drained by the runtime's virtual clock.
	cycles uint64 // fabric cycles consumed
	msgs   uint64 // MMIO transactions
}

// uint64SliceKey stores a compact signature of an output value.
type uint64SliceKey struct {
	sig string
}

// New places a compiled program on the device and returns its engine.
func New(name string, prog *netlist.Program, dev *fpga.Device, areaLEs int, io engine.IOHandler, native bool, now func() uint64) (*Engine, error) {
	if err := dev.Place(name, areaLEs); err != nil {
		return nil, err
	}
	e := &Engine{
		name:    name,
		flat:    prog.Flat,
		m:       netlist.NewMachine(prog),
		dev:     dev,
		io:      io,
		native:  native,
		flt:     dev.Faults(),
		areaLEs: areaLEs,
		inner:   map[string]engine.Engine{},
		lastOut: map[string]uint64SliceKey{},
		lastInt: map[string]uint64SliceKey{},
	}
	e.m.NowFn = now
	return e, nil
}

// Release frees the engine's fabric region.
func (e *Engine) Release() { e.dev.Release(e.name) }

// AreaLEs returns the fabric area this engine's region reserves.
func (e *Engine) AreaLEs() int { return e.areaLEs }

// Fault returns the first injected hardware fault observed by this
// engine (nil while healthy). The runtime polls it between time steps
// and responds with a hardware→software eviction.
func (e *Engine) Fault() error { return e.fault }

// checkBus runs one bus-fault trial, latching the first hit.
func (e *Engine) checkBus() {
	if e.fault != nil {
		return
	}
	if err := e.flt.Bus(e.name); err != nil {
		e.fault = err
	}
}

// checkRegion runs one region-integrity trial, latching the first hit.
func (e *Engine) checkRegion() {
	if e.fault != nil {
		return
	}
	if err := e.flt.Region(e.name); err != nil {
		e.fault = err
	}
}

// Flat exposes the engine's elaborated subprogram.
func (e *Engine) Flat() *elab.Flat { return e.flat }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Loc implements engine.Engine.
func (e *Engine) Loc() engine.Location { return engine.Hardware }

// Finished reports whether $finish has executed.
func (e *Engine) Finished() bool { return e.finished }

// CyclesDelta returns fabric cycles consumed since the last call.
func (e *Engine) CyclesDelta() uint64 {
	d := e.cycles
	e.cycles = 0
	return d
}

// MsgsDelta returns MMIO transactions since the last call.
func (e *Engine) MsgsDelta() uint64 {
	d := e.msgs
	e.msgs = 0
	return d
}

// UsageDelta implements engine.UsageReporter.
func (e *Engine) UsageDelta() engine.Usage {
	return engine.Usage{Cycles: e.CyclesDelta(), Msgs: e.MsgsDelta()}
}

// bill records one MMIO control transaction (and gives the fault
// schedule one shot at it).
func (e *Engine) bill() {
	e.msgs++
	e.dev.CountWrite(1)
	e.checkBus()
}

// GetState implements engine.Engine. Reading state out of the fabric
// costs one bus read per 32-bit word (the ABI's address-mapped access,
// Figure 10 lines 49–53).
func (e *Engine) GetState() *sim.State {
	st := e.m.GetState()
	words := uint64(0)
	for _, v := range st.Scalars {
		words += uint64((v.Width() + 31) / 32)
	}
	for _, ws := range st.Arrays {
		for _, v := range ws {
			words += uint64((v.Width() + 31) / 32)
		}
	}
	e.msgs += words
	e.dev.CountRead(words)
	return st
}

// SetState implements engine.Engine (bus writes, symmetric to GetState).
func (e *Engine) SetState(st *sim.State) {
	words := uint64(0)
	for _, v := range st.Scalars {
		words += uint64((v.Width() + 31) / 32)
	}
	for _, ws := range st.Arrays {
		for _, v := range ws {
			words += uint64((v.Width() + 31) / 32)
		}
	}
	e.msgs += words
	e.dev.CountWrite(words)
	e.m.SetState(st)
}

// Read implements engine.Engine: one bus write per input event.
func (e *Engine) Read(ev engine.Event) {
	v := e.flat.VarNamed(ev.Var)
	if v == nil {
		return
	}
	e.msgs++
	e.dev.CountWrite(1)
	e.m.SetInput(v, ev.Val)
}

// DrainWrites implements engine.Engine: one bus read per changed output.
func (e *Engine) DrainWrites() []engine.Event {
	var evs []engine.Event
	for _, v := range e.flat.Outputs {
		cur := e.m.ReadVar(v)
		sig := cur.String()
		if last, seen := e.lastOut[v.Name]; !seen || last.sig != sig {
			e.lastOut[v.Name] = uint64SliceKey{sig: sig}
			evs = append(evs, engine.Event{Var: v.Name, Val: cur})
			e.msgs++
			e.dev.CountRead(1)
		}
	}
	return evs
}

// ThereAreEvals implements engine.Engine, answering for forwarded
// components as well (ABI forwarding, paper §4.3).
func (e *Engine) ThereAreEvals() bool {
	e.bill()
	if e.m.HasActive() {
		return true
	}
	for _, name := range e.order {
		if e.inner[name].ThereAreEvals() {
			return true
		}
	}
	return false
}

// Evaluate implements engine.Engine: one fabric cycle plus recursive
// evaluation of forwarded components, with group-internal data routing.
func (e *Engine) Evaluate() {
	e.bill()
	e.cycles++
	if e.m.HasActive() {
		e.m.Evaluate()
	}
	e.drainGroup()
	for _, name := range e.order {
		in := e.inner[name]
		if in.ThereAreEvals() {
			in.Evaluate()
		}
	}
	e.drainGroup()
	e.drainMachineEvents()
}

// ThereAreUpdates implements engine.Engine.
func (e *Engine) ThereAreUpdates() bool {
	e.bill()
	if e.m.HasUpdates() {
		return true
	}
	for _, name := range e.order {
		if e.inner[name].ThereAreUpdates() {
			return true
		}
	}
	return false
}

// Update implements engine.Engine: one fabric cycle (the latch write of
// Figure 10) plus forwarded updates.
func (e *Engine) Update() {
	e.bill()
	e.cycles++
	if e.m.HasUpdates() {
		e.m.Update()
	}
	for _, name := range e.order {
		in := e.inner[name]
		if in.ThereAreUpdates() {
			in.Update()
		}
	}
	e.drainGroup()
}

// EndStep implements engine.Engine. The step boundary is also where the
// region's integrity is checked (a lost bitstream surfaces here).
func (e *Engine) EndStep() {
	e.m.EndStep()
	e.drainMachineEvents()
	for _, name := range e.order {
		e.inner[name].EndStep()
	}
	e.checkRegion()
}

// End implements engine.Engine.
func (e *Engine) End() {
	for _, name := range e.order {
		e.inner[name].End()
	}
}

// Forward implements engine.Forwarder.
func (e *Engine) Forward(name string, inner engine.Engine) {
	if _, dup := e.inner[name]; !dup {
		e.order = append(e.order, name)
	}
	e.inner[name] = inner
}

// ForwardWire implements engine.Forwarder: registers a data-plane route
// internal to the forward group, used during open-loop execution.
func (e *Engine) ForwardWire(fromName, fromVar, toName, toVar string) {
	e.routes = append(e.routes, route{fromName, fromVar, toName, toVar})
}

// Inner returns the forwarded component with the given path (nil if not
// forwarded here).
func (e *Engine) Inner(name string) engine.Engine { return e.inner[name] }

// drainMachineEvents forwards captured $display/$finish side effects to
// the runtime's IO handler.
func (e *Engine) drainMachineEvents() bool {
	evs := e.m.DrainEvents()
	for _, ev := range evs {
		if ev.Finish {
			e.finished = true
			if e.io != nil {
				e.io.Finish(0)
			}
			continue
		}
		if e.io != nil {
			e.io.Display(ev.Text, ev.Newline)
		}
	}
	return len(evs) > 0
}

// deliver routes an event within the forward group.
func (e *Engine) deliver(fromName, fromVar string, ev engine.Event) {
	for _, r := range e.routes {
		if r.fromName != fromName || r.fromVar != fromVar {
			continue
		}
		if r.toName == "" {
			if v := e.flat.VarNamed(r.toVar); v != nil {
				e.m.SetInput(v, ev.Val)
			}
			continue
		}
		if in, ok := e.inner[r.toName]; ok {
			in.Read(engine.Event{Var: r.toVar, Val: ev.Val})
		}
	}
}

// drainGroup broadcasts pending output changes inside the group. It is a
// no-op until components have been forwarded, so it never interferes with
// the runtime-facing DrainWrites tracking.
func (e *Engine) drainGroup() {
	if len(e.routes) == 0 && len(e.order) == 0 {
		return
	}
	for _, v := range e.flat.Outputs {
		cur := e.m.ReadVar(v)
		sig := cur.String()
		if last, seen := e.lastInt[v.Name]; !seen || last.sig != sig {
			e.lastInt[v.Name] = uint64SliceKey{sig: sig}
			e.deliver("", v.Name, engine.Event{Var: v.Name, Val: cur})
		}
	}
	for _, name := range e.order {
		for _, ev := range e.inner[name].DrainWrites() {
			e.deliver(name, ev.Var, ev)
		}
	}
}

// OpenLoop implements engine.OpenLooper: it replicates the Cascade
// scheduler entirely inside the fabric for up to steps scheduler
// iterations (two iterations per clock tick), stopping early if a system
// task fires. It returns the number of iterations completed. The clock
// toggling comes from the forwarded Clock component's own updates, so
// the schedule is identical to the runtime's — only the per-iteration
// messages disappear, which is what lets the virtual clock approach
// fabric speed. clk names the engine's clock input and must exist.
func (e *Engine) OpenLoop(clk string, steps int) int {
	e.bill()
	e.checkRegion() // one integrity trial per burst
	if e.flat.VarNamed(clk) == nil {
		return 0
	}
	done := 0
	for done < steps {
		// One scheduler iteration: settle evaluations and updates, then
		// end the step for the whole group (the Clock re-arms here).
		e.settleGroup()
		e.m.EndStep()
		for _, name := range e.order {
			e.inner[name].EndStep()
		}
		e.drainGroup()
		done++
		if e.native {
			// Native designs spend one fabric cycle per tick.
			if done%2 == 0 {
				e.cycles++
			}
		} else {
			// ABI wrapper overhead: latch commit + clock toggle + task
			// check cost ~3 cycles per tick (Figure 10), the source of
			// the paper's ~2.9x open-loop gap to native.
			if done%2 == 0 {
				e.cycles += 3
			}
		}
		if e.drainMachineEvents() || e.finished {
			break
		}
	}
	return done
}

// settleGroup runs the evaluate/update fixpoint across the machine and
// forwarded components, routing data internally.
func (e *Engine) settleGroup() {
	for {
		progress := true
		for progress {
			progress = false
			if e.m.HasActive() {
				e.m.Evaluate()
				progress = true
			}
			e.drainGroup()
			for _, name := range e.order {
				in := e.inner[name]
				if in.ThereAreEvals() {
					in.Evaluate()
					progress = true
				}
			}
			e.drainGroup()
		}
		updated := false
		if e.m.HasUpdates() {
			e.m.Update()
			updated = true
		}
		for _, name := range e.order {
			in := e.inner[name]
			if in.ThereAreUpdates() {
				in.Update()
				updated = true
			}
		}
		if !updated {
			return
		}
		e.drainGroup()
	}
}
