// Package engine defines Cascade-Go's target-specific engine ABI
// (paper §3.5, Figure 7). An engine is the runtime state of one
// subprogram; the runtime stays agnostic to whether an engine runs in
// software (internal/engine/sweng) or on the simulated FPGA
// (internal/engine/hweng) and migrates state between them through this
// interface. New backends are added by implementing Engine — this is not
// an interface exposed to Verilog programmers.
package engine

import (
	"cascade/internal/bits"
	"cascade/internal/sim"
)

// Location says where an engine executes.
type Location int

// Engine locations.
const (
	Software Location = iota
	Hardware
)

func (l Location) String() string {
	if l == Hardware {
		return "hardware"
	}
	return "software"
}

// Event is a data-plane message: a named subprogram input or output
// changed value.
type Event struct {
	Var string
	Val *bits.Vector
}

// IOHandler receives unsynthesizable side effects from an engine
// ($display text, $finish). The runtime's view implements it.
type IOHandler interface {
	Display(text string, newline bool)
	Finish(code int)
}

// Engine is the target-specific ABI. Method names follow Figure 7 of the
// paper, Go-cased.
type Engine interface {
	// Name returns the subprogram's instance path (e.g. "main.r").
	Name() string
	// Loc reports where the engine executes.
	Loc() Location

	// GetState snapshots the engine's internal state so the runtime can
	// migrate it; SetState installs a snapshot. Both are called only in
	// observable states (between time steps).
	GetState() *sim.State
	SetState(st *sim.State)

	// Read delivers an input change discovered on the data plane.
	Read(ev Event)
	// DrainWrites returns output changes produced since the previous
	// drain, for broadcast on the data plane (the ABI's write method).
	DrainWrites() []Event

	// ThereAreEvals reports pending evaluation events; Evaluate performs
	// them all (EvalAll in the Cascade scheduler).
	ThereAreEvals() bool
	Evaluate()

	// ThereAreUpdates reports queued non-blocking updates; Update
	// commits them all.
	ThereAreUpdates() bool
	Update()

	// EndStep runs between time steps when the interrupt queue is empty;
	// End runs at shutdown.
	EndStep()
	End()
}

// Usage is the work an engine performed since its last report, in the
// units the virtual clock bills: software interpreter operations,
// fabric clock cycles, and messages that crossed a serialized boundary
// (MMIO transactions for hardware engines, transport round-trips and
// state words for remote ones).
type Usage struct {
	Ops       uint64 // software interpreter operations
	Cycles    uint64 // hardware fabric cycles
	Msgs      uint64 // bus/transport messages
	NativeOps uint64 // compiled native-tier operations (internal/njit)
}

// Add accumulates o into u.
func (u *Usage) Add(o Usage) {
	u.Ops += o.Ops
	u.Cycles += o.Cycles
	u.Msgs += o.Msgs
	u.NativeOps += o.NativeOps
}

// UsageReporter is implemented by engines that meter their work. The
// runtime drains deltas when it settles batch and end-of-step costs;
// engines that do not implement it are billed nothing (stdlib
// components share the controller's heap).
type UsageReporter interface {
	// UsageDelta returns the work performed since the previous call and
	// resets the counters.
	UsageDelta() Usage
}

// OpenLooper is the optional open-loop scheduling capability (paper
// §4.4): the engine simulates many scheduler iterations internally,
// toggling the named clock variable, until the iteration budget is spent
// or a system task requires runtime intervention.
type OpenLooper interface {
	// OpenLoop runs up to steps full clock ticks; it returns the number
	// of ticks actually completed.
	OpenLoop(clk string, steps int) int
}

// Forwarder is the optional ABI-forwarding capability (paper §4.3): an
// engine that has absorbed standard-library components answers the
// runtime's requests on their behalf.
type Forwarder interface {
	// Forward attaches a contained component whose requests this engine
	// now answers; the runtime ceases direct interaction with it.
	Forward(name string, inner Engine)
}
