package engine_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/stdlib"
	"cascade/internal/transport"
	"cascade/internal/verilog"
)

// Compile-time conformance: every engine implementation satisfies the
// ABI (transport clients included — a remote engine is indistinguishable
// through this interface), and hardware engines provide the optional
// capabilities.
var (
	_ engine.Engine     = (*sweng.Engine)(nil)
	_ engine.Engine     = (*hweng.Engine)(nil)
	_ engine.Engine     = (*transport.Client)(nil)
	_ engine.OpenLooper = (*hweng.Engine)(nil)
	_ engine.Forwarder  = (*hweng.Engine)(nil)
	_ engine.Engine     = (*stdlib.Clock)(nil)
	_ engine.Engine     = (*stdlib.Pad)(nil)
	_ engine.Engine     = (*stdlib.Led)(nil)
	_ engine.Engine     = (*stdlib.Reset)(nil)
	_ engine.Engine     = (*stdlib.GPIO)(nil)
	_ engine.Engine     = (*stdlib.Memory)(nil)
	_ engine.Engine     = (*stdlib.FIFO)(nil)
)

// TestLocations checks the location taxonomy the scheduler's billing
// depends on.
func TestLocations(t *testing.T) {
	st, errs := verilog.ParseSourceText(`module M(input wire clk); endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	sw := sweng.New(f, nil, nil, false)
	if sw.Loc() != engine.Software || sw.Loc().String() != "software" {
		t.Fatal("sweng location")
	}
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hweng.New("m", prog, fpga.NewCycloneV(), 10, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Loc() != engine.Hardware || hw.Loc().String() != "hardware" {
		t.Fatal("hweng location")
	}
	w := stdlib.NewWorld()
	c, err := stdlib.New("p", "Clock", nil, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loc() != engine.Hardware {
		t.Fatal("stdlib engines are pre-compiled hardware")
	}
}

// conformSrc is the subprogram the cross-transport conformance cases
// drive: state, a blocking display on every posedge, an output port, and
// a $finish once the counter wraps — every observable the ABI carries.
const conformSrc = `module Walk(input wire clk, output wire [7:0] out);
  reg [7:0] n = 1;
  always @(posedge clk) begin
    n <= {n[6:0], n[7]};
    $display("walk=%b", n);
    if (n == 8'h80) $finish;
  end
  assign out = n;
endmodule`

// conformIO records display/finish side effects for byte comparison.
type conformIO struct {
	out  strings.Builder
	fins int
}

func (c *conformIO) Display(text string, newline bool) {
	c.out.WriteString(text)
	if newline {
		c.out.WriteByte('\n')
	}
}

func (c *conformIO) Finish(code int) { c.fins++ }

// newConformSW elaborates conformSrc into a fresh software engine.
func newConformSW(t *testing.T, io engine.IOHandler) *sweng.Engine {
	t.Helper()
	st, errs := verilog.ParseSourceText(conformSrc)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "main.w", nil)
	if err != nil {
		t.Fatal(err)
	}
	return sweng.New(f, io, nil, false)
}

// driveABI runs the scheduler's per-step Figure-7 sequence for n ticks
// and returns the drained data-plane trace.
func driveABI(e engine.Engine, ticks int) string {
	var sb strings.Builder
	for i := 0; i < 2*ticks; i++ {
		e.Read(engine.Event{Var: "clk", Val: bits.FromUint64(1, uint64(i%2))})
		for e.ThereAreEvals() {
			e.Evaluate()
		}
		for e.ThereAreUpdates() {
			e.Update()
		}
		e.EndStep()
		for _, ev := range e.DrainWrites() {
			fmt.Fprintf(&sb, "%d:%s=%s;", i, ev.Var, ev.Val)
		}
	}
	return sb.String()
}

// TestConformanceAcrossTransports runs the full ABI conformance sequence
// against the same subprogram hosted three ways — a bare software
// engine, a Local-transport client, and a client behind a loopback-TCP
// engine host — and requires byte-identical $display output, identical
// $finish counts, identical data-plane traces, and identical state
// snapshots. The transports must be invisible.
func TestConformanceAcrossTransports(t *testing.T) {
	const ticks = 10

	ioBare := &conformIO{}
	bare := newConformSW(t, ioBare)
	traceBare := driveABI(bare, ticks)
	sigBare := bare.GetState().Signature()

	ioLocal := &conformIO{}
	local := transport.NewLocalClient(newConformSW(t, ioLocal), nil)
	traceLocal := driveABI(local, ticks)
	sigLocal := local.GetState().Signature()

	host := transport.NewHost(transport.HostOptions{DisableJIT: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go host.ServeListener(l)
	tcpT, err := transport.DialTCP(l.Addr().String(), transport.TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()
	ioTCP := &conformIO{}
	remote, err := transport.Spawn(tcpT, transport.SpawnSpec{Path: "main.w", Source: conformSrc}, ioTCP, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	traceTCP := driveABI(remote, ticks)
	sigTCP := remote.GetState().Signature()

	if ioLocal.out.String() != ioBare.out.String() {
		t.Errorf("local display output diverges:\nbare:  %q\nlocal: %q", ioBare.out.String(), ioLocal.out.String())
	}
	if ioTCP.out.String() != ioBare.out.String() {
		t.Errorf("tcp display output diverges:\nbare: %q\ntcp:  %q", ioBare.out.String(), ioTCP.out.String())
	}
	if ioBare.out.Len() == 0 {
		t.Error("conformance program produced no display output")
	}
	if ioLocal.fins != ioBare.fins || ioTCP.fins != ioBare.fins {
		t.Errorf("$finish counts diverge: bare=%d local=%d tcp=%d", ioBare.fins, ioLocal.fins, ioTCP.fins)
	}
	if traceLocal != traceBare {
		t.Errorf("local data-plane trace diverges:\nbare:  %q\nlocal: %q", traceBare, traceLocal)
	}
	if traceTCP != traceBare {
		t.Errorf("tcp data-plane trace diverges:\nbare: %q\ntcp:  %q", traceBare, traceTCP)
	}
	if sigLocal != sigBare || sigTCP != sigBare {
		t.Errorf("state snapshots diverge: bare=%s local=%s tcp=%s", sigBare, sigLocal, sigTCP)
	}

	// State migration through each transport: install the bare engine's
	// snapshot into a fresh remote engine and require the signatures to
	// agree — SetState/GetState must round-trip over the wire.
	fresh, err := transport.Spawn(tcpT, transport.SpawnSpec{Path: "main.w2", Source: conformSrc}, &conformIO{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetState(bare.GetState())
	if got := fresh.GetState().Signature(); got != sigBare {
		t.Errorf("SetState/GetState did not round-trip over TCP: %s vs %s", got, sigBare)
	}
	remote.End()
	fresh.End()
}
