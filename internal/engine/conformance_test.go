package engine_test

import (
	"testing"

	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fpga"
	"cascade/internal/netlist"
	"cascade/internal/stdlib"
	"cascade/internal/verilog"
)

// Compile-time conformance: every engine implementation satisfies the
// ABI, and hardware engines provide the optional capabilities.
var (
	_ engine.Engine     = (*sweng.Engine)(nil)
	_ engine.Engine     = (*hweng.Engine)(nil)
	_ engine.OpenLooper = (*hweng.Engine)(nil)
	_ engine.Forwarder  = (*hweng.Engine)(nil)
	_ engine.Engine     = (*stdlib.Clock)(nil)
	_ engine.Engine     = (*stdlib.Pad)(nil)
	_ engine.Engine     = (*stdlib.Led)(nil)
	_ engine.Engine     = (*stdlib.Reset)(nil)
	_ engine.Engine     = (*stdlib.GPIO)(nil)
	_ engine.Engine     = (*stdlib.Memory)(nil)
	_ engine.Engine     = (*stdlib.FIFO)(nil)
)

// TestLocations checks the location taxonomy the scheduler's billing
// depends on.
func TestLocations(t *testing.T) {
	st, errs := verilog.ParseSourceText(`module M(input wire clk); endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	sw := sweng.New(f, nil, nil, false)
	if sw.Loc() != engine.Software || sw.Loc().String() != "software" {
		t.Fatal("sweng location")
	}
	prog, err := netlist.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hweng.New("m", prog, fpga.NewCycloneV(), 10, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Loc() != engine.Hardware || hw.Loc().String() != "hardware" {
		t.Fatal("hweng location")
	}
	w := stdlib.NewWorld()
	c, err := stdlib.New("p", "Clock", nil, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loc() != engine.Hardware {
		t.Fatal("stdlib engines are pre-compiled hardware")
	}
}
