package fpga

import (
	"testing"

	"cascade/internal/fault"
)

// TestFailedReplaceKeepsOldReservation: a re-place that does not fit
// must leave the existing reservation (and the engine running in it)
// untouched — the old code dropped it, leaking capacity accounting.
func TestFailedReplaceKeepsOldReservation(t *testing.T) {
	d := NewDevice(1000, 50_000_000)
	if err := d.Place("main", 600); err != nil {
		t.Fatal(err)
	}
	if err := d.Place("main", 1200); err == nil {
		t.Fatal("oversized re-place must fail")
	}
	if d.Used() != 600 {
		t.Fatalf("failed re-place dropped the old reservation: used=%d, want 600", d.Used())
	}
	// A fitting re-place swaps atomically: the region's own footprint
	// does not count against its replacement.
	if err := d.Place("main", 900); err != nil {
		t.Fatalf("swap re-place should fit: %v", err)
	}
	if d.Used() != 900 {
		t.Fatalf("used=%d, want 900", d.Used())
	}
	d.Release("main")
	if d.Used() != 0 {
		t.Fatalf("used=%d after release, want 0", d.Used())
	}
}

// TestPlaceRegionFault: an injected region fault fails programming
// without reserving anything, and clears once the schedule's cap is
// spent (a retried placement succeeds).
func TestPlaceRegionFault(t *testing.T) {
	d := NewDevice(1000, 50_000_000)
	d.SetFaults(fault.New(fault.Config{Seed: 2, RegionFault: 1, MaxRegionFaults: 1}))
	err := d.Place("main", 100)
	if err == nil {
		t.Fatal("first placement must hit the injected region fault")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("region faults are transient (re-place clears them): %v", err)
	}
	if d.Used() != 0 {
		t.Fatalf("faulted placement leaked %d LEs", d.Used())
	}
	if err := d.Place("main", 100); err != nil {
		t.Fatalf("retried placement must succeed: %v", err)
	}
	if d.Used() != 100 {
		t.Fatalf("used=%d, want 100", d.Used())
	}
}
