package fpga

import "testing"

func TestCycloneVParameters(t *testing.T) {
	d := NewCycloneV()
	if d.Capacity() != 110_000 {
		t.Fatalf("capacity %d", d.Capacity())
	}
	if d.ClockHz() != 50_000_000 {
		t.Fatalf("clock %d", d.ClockHz())
	}
	if d.CyclePs() != 20_000 {
		t.Fatalf("period %d ps", d.CyclePs())
	}
}

func TestPlacementAccounting(t *testing.T) {
	d := NewDevice(100, 1_000_000)
	if err := d.Place("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := d.Place("b", 50); err == nil {
		t.Fatal("overcommit accepted")
	}
	if d.Used() != 60 {
		t.Fatalf("used=%d", d.Used())
	}
	// Re-placing a region replaces its reservation.
	if err := d.Place("a", 30); err != nil {
		t.Fatal(err)
	}
	if err := d.Place("b", 50); err != nil {
		t.Fatalf("room freed by re-place: %v", err)
	}
	d.Release("a")
	if d.Used() != 50 {
		t.Fatalf("used after release=%d", d.Used())
	}
	d.Release("missing") // no-op
	if d.Used() != 50 {
		t.Fatal("releasing unknown region changed accounting")
	}
}

func TestBusCounters(t *testing.T) {
	d := NewDevice(10, 1_000_000)
	d.CountRead(3)
	d.CountWrite(5)
	r, w := d.BusTransactions()
	if r != 3 || w != 5 {
		t.Fatalf("bus counters %d/%d", r, w)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewDevice(1_000_000, 1_000_000)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				d.CountRead(1)
				d.CountWrite(1)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	r, w := d.BusTransactions()
	if r != 8000 || w != 8000 {
		t.Fatalf("racy counters: %d/%d", r, w)
	}
}
