// Package fpga simulates the reconfigurable device Cascade-Go's hardware
// engines execute on. The paper's platform is an Intel Cyclone V SoC:
// 110K logic elements of fabric clocked at 50 MHz, reachable from the
// host over a memory-mapped Avalon/AXI bus. We reproduce the properties
// the system design depends on — finite capacity, a fixed fabric clock,
// per-transaction bus cost, and reprogramming — while the "fabric"
// executes compiled netlist machines (internal/netlist).
package fpga

import (
	"fmt"
	"sync"

	"cascade/internal/fault"
)

// Device models one FPGA.
type Device struct {
	mu sync.Mutex

	capacity int
	used     int
	regions  map[string]int // placed region name -> logic elements

	clockHz uint64

	// faults injects deterministic bus and region faults into the
	// engines executing on this device (nil: fault-free).
	faults *fault.Injector

	// Bus transaction counters (reads + writes across the MMIO bridge).
	busReads  uint64
	busWrites uint64
}

// NewCycloneV returns a device with the paper's Cyclone V parameters:
// 110K logic elements at 50 MHz.
func NewCycloneV() *Device { return NewDevice(110_000, 50_000_000) }

// NewDevice returns a device with the given capacity (logic elements)
// and fabric clock.
func NewDevice(capacityLEs int, clockHz uint64) *Device {
	return &Device{capacity: capacityLEs, clockHz: clockHz, regions: map[string]int{}}
}

// Capacity returns the device's total logic elements.
func (d *Device) Capacity() int { return d.capacity }

// ClockHz returns the fabric clock frequency.
func (d *Device) ClockHz() uint64 { return d.clockHz }

// CyclePs returns the fabric clock period in picoseconds.
func (d *Device) CyclePs() uint64 { return 1_000_000_000_000 / d.clockHz }

// Used returns the logic elements currently placed.
func (d *Device) Used() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// SetFaults installs a fault injector; placements and the engines
// executing on this device consult it for bus and region faults.
func (d *Device) SetFaults(in *fault.Injector) {
	d.mu.Lock()
	d.faults = in
	d.mu.Unlock()
}

// Faults returns the installed injector (nil when fault-free).
func (d *Device) Faults() *fault.Injector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// Place reserves fabric for a named region; it fails when the design
// does not fit (the place-and-route "no fit" outcome) or when the fault
// schedule loses the bitstream during programming. Re-placing an
// existing region swaps the reservation atomically: a failed re-place
// leaves the old reservation — and the engine running in it — intact,
// so repeated failed placements cannot leak capacity.
func (d *Device) Place(name string, les int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, had := d.regions[name]
	avail := d.used
	if had {
		avail -= old
	}
	if avail+les > d.capacity {
		return fmt.Errorf("fpga: design %s (%d LEs) does not fit: %d of %d LEs in use",
			name, les, avail, d.capacity)
	}
	if err := d.faults.Region(name); err != nil {
		return fmt.Errorf("fpga: programming %s failed: %w", name, err)
	}
	if had {
		d.used -= old
	}
	d.regions[name] = les
	d.used += les
	return nil
}

// Release frees a named region (engine torn down or moved to software).
func (d *Device) Release(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if les, ok := d.regions[name]; ok {
		d.used -= les
		delete(d.regions, name)
	}
}

// CountRead records n MMIO read transactions.
func (d *Device) CountRead(n uint64) {
	d.mu.Lock()
	d.busReads += n
	d.mu.Unlock()
}

// CountWrite records n MMIO write transactions.
func (d *Device) CountWrite(n uint64) {
	d.mu.Lock()
	d.busWrites += n
	d.mu.Unlock()
}

// BusTransactions returns total (reads, writes) across the bridge.
func (d *Device) BusTransactions() (uint64, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busReads, d.busWrites
}
