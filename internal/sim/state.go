package sim

import (
	"bufio"
	"fmt"
	"sort"
	"strings"

	"cascade/internal/bits"
)

// State is a snapshot of a subprogram's variables, used to migrate
// execution between engines (get_state/set_state in the engine ABI).
// Snapshots are taken only in observable states (empty update queue), so
// pending non-blocking writes never need to be captured.
type State struct {
	Scalars map[string]*bits.Vector
	Arrays  map[string][]*bits.Vector
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	c := &State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	for k, v := range st.Scalars {
		c.Scalars[k] = v.Clone()
	}
	for k, words := range st.Arrays {
		cw := make([]*bits.Vector, len(words))
		for i, w := range words {
			cw[i] = w.Clone()
		}
		c.Arrays[k] = cw
	}
	return c
}

// Signature returns a deterministic string rendering of the state, used
// by equivalence tests to compare observable states across engines.
func (st *State) Signature() string {
	var keys []string
	for k := range st.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s;", k, st.Scalars[k])
	}
	var akeys []string
	for k := range st.Arrays {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		fmt.Fprintf(&sb, "%s=[", k)
		for _, w := range st.Arrays[k] {
			fmt.Fprintf(&sb, "%s,", w)
		}
		sb.WriteString("];")
	}
	return sb.String()
}

// EncodeText renders the state in a line-oriented text format
// ("name=width'hhex", arrays as "name[i]=..."), deterministic and
// suitable for shipping a snapshot between processes (the paper's §9
// virtual-machine-migration direction).
func (st *State) EncodeText() string {
	var keys []string
	for k := range st.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s\n", k, st.Scalars[k])
	}
	var akeys []string
	for k := range st.Arrays {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		for i, w := range st.Arrays[k] {
			fmt.Fprintf(&sb, "%s[%d]=%s\n", k, i, w)
		}
	}
	return sb.String()
}

// DecodeStateText parses the EncodeText format.
func DecodeStateText(text string) (*State, error) {
	st := &State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("sim: malformed state line %q", line)
		}
		name, lit := line[:eq], line[eq+1:]
		v, err := bits.ParseLiteral(lit)
		if err != nil {
			return nil, fmt.Errorf("sim: state line %q: %w", line, err)
		}
		if i := strings.IndexByte(name, '['); i >= 0 && strings.HasSuffix(name, "]") {
			base := name[:i]
			var idx int
			if _, err := fmt.Sscanf(name[i:], "[%d]", &idx); err != nil {
				return nil, fmt.Errorf("sim: bad array index in %q", line)
			}
			words := st.Arrays[base]
			for len(words) <= idx {
				words = append(words, bits.New(v.Width()))
			}
			words[idx] = v
			st.Arrays[base] = words
			continue
		}
		st.Scalars[name] = v
	}
	return st, sc.Err()
}

// GetState snapshots every variable (inputs, outputs, registers, wires,
// and memories). Including non-stateful variables is harmless — they are
// recomputed after a set — and makes hand-offs between engine kinds exact.
func (s *Simulator) GetState() *State {
	st := &State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	for _, v := range s.flat.Vars {
		if v.IsArray() {
			words := make([]*bits.Vector, v.ArrayLen)
			for i, w := range s.arrays[v.Index] {
				words[i] = w.Clone()
			}
			st.Arrays[v.Name] = words
			continue
		}
		st.Scalars[v.Name] = s.vals[v.Index].Clone()
	}
	return st
}

// SetState installs a snapshot. Values are copied without firing edge
// events (a hardware-to-software hand-off must not fabricate clock
// edges); combinational logic is re-activated so derived values settle on
// the next Evaluate.
func (s *Simulator) SetState(st *State) {
	for _, v := range s.flat.Vars {
		if v.IsArray() {
			if words, ok := st.Arrays[v.Name]; ok {
				for i := 0; i < len(words) && i < v.ArrayLen; i++ {
					s.arrays[v.Index][i].CopyFrom(words[i])
				}
			}
			continue
		}
		if val, ok := st.Scalars[v.Name]; ok {
			s.vals[v.Index].CopyFrom(val)
		}
	}
	s.activateCombinational()
}

// activateCombinational marks every continuous assignment and
// level-sensitive process active.
func (s *Simulator) activateCombinational() {
	for i := range s.activeAssign {
		s.activeAssign[i] = true
		s.anyActive = true
	}
	for i, p := range s.flat.Procs {
		if p.Star || hasLevel(p) {
			s.activeProc[i] = true
			s.anyActive = true
		}
	}
}
