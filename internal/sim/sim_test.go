package sim

import (
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/verilog"
)

// build parses and elaborates a single module.
func build(t *testing.T, src string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return f
}

// testbench drives a single-clock module through full scheduler steps.
type testbench struct {
	s   *Simulator
	clk *elab.Var
	out strings.Builder
}

func newBench(t *testing.T, src string) *testbench {
	t.Helper()
	f := build(t, src)
	tb := &testbench{}
	tb.s = New(f, Options{Display: func(s string) { tb.out.WriteString(s) }})
	tb.clk = f.VarNamed("clk")
	tb.settle()
	return tb
}

// settle runs evaluate/update to a fixed point (one observable state).
func (tb *testbench) settle() {
	for {
		if tb.s.HasActive() {
			tb.s.Evaluate()
			continue
		}
		if tb.s.HasUpdates() {
			tb.s.Update()
			continue
		}
		break
	}
	tb.s.EndStep()
}

// tick toggles the clock high then low, settling after each edge.
func (tb *testbench) tick() {
	tb.s.SetInput(tb.clk, bits.FromUint64(1, 1))
	tb.settle()
	tb.s.SetInput(tb.clk, bits.FromUint64(1, 0))
	tb.settle()
}

func (tb *testbench) val(t *testing.T, name string) uint64 {
	t.Helper()
	v := tb.s.Value(name)
	if v == nil {
		t.Fatalf("no variable %s", name)
	}
	return v.Uint64()
}

func TestCounter(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, output reg [7:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	for i := 1; i <= 5; i++ {
		tb.tick()
		if got := tb.val(t, "cnt"); got != uint64(i) {
			t.Fatalf("after %d ticks: cnt=%d", i, got)
		}
	}
}

func TestRolRunningExample(t *testing.T) {
	// The inlined running example: Rol folded into Main.
	tb := newBench(t, `
module M(input wire clk, input wire [3:0] pad, output wire [7:0] led);
  reg [7:0] cnt = 1;
  wire [7:0] y;
  assign y = (cnt == 8'h80) ? 1 : (cnt << 1);
  always @(posedge clk)
    if (pad == 0)
      cnt <= y;
  assign led = cnt;
endmodule`)
	if got := tb.val(t, "led"); got != 1 {
		t.Fatalf("initial led=%d, want 1", got)
	}
	for i := 0; i < 7; i++ {
		tb.tick()
	}
	if got := tb.val(t, "led"); got != 0x80 {
		t.Fatalf("after 7 ticks led=%x, want 80", got)
	}
	tb.tick()
	if got := tb.val(t, "led"); got != 1 {
		t.Fatalf("wraparound led=%x, want 1", got)
	}
	// Pressing a button pauses the animation.
	tb.s.SetInputByName("pad", bits.FromUint64(4, 1))
	tb.settle()
	before := tb.val(t, "led")
	tb.tick()
	if got := tb.val(t, "led"); got != before {
		t.Fatalf("paused animation moved: %x -> %x", before, got)
	}
}

func TestNonBlockingSwap(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk);
  reg [3:0] a = 4'd3, b = 4'd9;
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule`)
	tb.tick()
	if a, b := tb.val(t, "a"), tb.val(t, "b"); a != 9 || b != 3 {
		t.Fatalf("swap failed: a=%d b=%d", a, b)
	}
}

func TestBlockingOrderWithinProcess(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk);
  reg [3:0] a = 1, b, c;
  always @(posedge clk) begin
    b = a + 1;
    c = b + 1;
  end
endmodule`)
	tb.tick()
	if b, c := tb.val(t, "b"), tb.val(t, "c"); b != 2 || c != 3 {
		t.Fatalf("blocking chain: b=%d c=%d, want 2 3", b, c)
	}
}

func TestMixedBlockingNonBlocking(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk);
  reg [3:0] a = 1, b = 0, c = 0;
  always @(posedge clk) begin
    a = a + 1;  // blocking: visible below
    b <= a;     // non-blocking: sees new a, commits later
    c = b;      // blocking: sees OLD b (update not yet committed)
  end
endmodule`)
	tb.tick()
	if a, b, c := tb.val(t, "a"), tb.val(t, "b"), tb.val(t, "c"); a != 2 || b != 2 || c != 0 {
		t.Fatalf("got a=%d b=%d c=%d, want 2 2 0", a, b, c)
	}
}

func TestCombinationalChainPropagates(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [3:0] x, output wire [3:0] w3);
  wire [3:0] w1, w2;
  assign w1 = x + 1;
  assign w2 = w1 * 2;
  assign w3 = w2 - 1;
endmodule`)
	tb.s.SetInputByName("x", bits.FromUint64(4, 3))
	tb.settle()
	if got := tb.val(t, "w3"); got != 7 {
		t.Fatalf("w3=%d, want 7", got)
	}
}

func TestAlwaysStar(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [1:0] s, input wire [7:0] a, input wire [7:0] b, output reg [7:0] o);
  always @(*)
    case (s)
      2'd0: o = a;
      2'd1: o = b;
      default: o = 8'hff;
    endcase
endmodule`)
	tb.s.SetInputByName("a", bits.FromUint64(8, 0x11))
	tb.s.SetInputByName("b", bits.FromUint64(8, 0x22))
	tb.settle()
	if got := tb.val(t, "o"); got != 0x11 {
		t.Fatalf("s=0: o=%x", got)
	}
	tb.s.SetInputByName("s", bits.FromUint64(2, 1))
	tb.settle()
	if got := tb.val(t, "o"); got != 0x22 {
		t.Fatalf("s=1: o=%x", got)
	}
	tb.s.SetInputByName("s", bits.FromUint64(2, 3))
	tb.settle()
	if got := tb.val(t, "o"); got != 0xff {
		t.Fatalf("s=3: o=%x", got)
	}
}

func TestNegedgeAndLevelSensitivity(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire d, output reg q, output reg lvl);
  always @(negedge clk) q <= d;
  always @(d) lvl = !d;
endmodule`)
	tb.s.SetInputByName("d", bits.FromUint64(1, 1))
	tb.settle()
	if got := tb.val(t, "lvl"); got != 0 {
		t.Fatalf("level proc did not run: lvl=%d", got)
	}
	// Rising edge: q must not change.
	tb.s.SetInput(tb.clk, bits.FromUint64(1, 1))
	tb.settle()
	if got := tb.val(t, "q"); got != 0 {
		t.Fatal("q changed on posedge of a negedge block")
	}
	// Falling edge: q latches d.
	tb.s.SetInput(tb.clk, bits.FromUint64(1, 0))
	tb.settle()
	if got := tb.val(t, "q"); got != 1 {
		t.Fatal("q did not latch on negedge")
	}
}

func TestDisplayAndFinish(t *testing.T) {
	finished := 0
	f := build(t, `
module M(input wire clk);
  reg [7:0] cnt = 0;
  always @(posedge clk) begin
    cnt <= cnt + 1;
    $display("cnt=%d", cnt);
    if (cnt == 2) $finish;
  end
endmodule`)
	var out strings.Builder
	s := New(f, Options{
		Display: func(t string) { out.WriteString(t) },
		Finish:  func(int) { finished++ },
	})
	clk := f.VarNamed("clk")
	step := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	for i := 0; i < 3; i++ {
		s.SetInput(clk, bits.FromUint64(1, 1))
		step()
		s.SetInput(clk, bits.FromUint64(1, 0))
		step()
	}
	want := "cnt=0\ncnt=1\ncnt=2\n"
	if out.String() != want {
		t.Fatalf("display output:\n%q\nwant:\n%q", out.String(), want)
	}
	if finished != 1 || !s.Finished() {
		t.Fatalf("finish hook calls: %d", finished)
	}
}

func TestDisplayFormats(t *testing.T) {
	args := []*bits.Vector{
		bits.FromUint64(8, 0xab),
		bits.FromUint64(8, 5),
		bits.FromUint64(4, 0b1010),
		bits.FromUint64(16, uint64('h')<<8|uint64('i')),
	}
	got := FormatDisplay("%h %03d %b %s %% %m", args, "main")
	want := "ab 005 1010 hi % main"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestDisplayMissingArgs(t *testing.T) {
	got := FormatDisplay("%d %d", []*bits.Vector{bits.FromUint64(4, 7)}, "m")
	if got != "7 0" {
		t.Fatalf("missing args should print zero: %q", got)
	}
}

func TestMonitor(t *testing.T) {
	f := build(t, `
module M(input wire clk);
  reg [3:0] x = 0;
  initial $monitor("x=%d", x);
  always @(posedge clk) x <= x + 1;
endmodule`)
	var out strings.Builder
	s := New(f, Options{Display: func(t string) { out.WriteString(t) }})
	clk := f.VarNamed("clk")
	step := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
		s.EndStep()
	}
	step()
	for i := 0; i < 2; i++ {
		s.SetInput(clk, bits.FromUint64(1, 1))
		step()
		s.SetInput(clk, bits.FromUint64(1, 0))
		step()
	}
	want := "x=0\nx=1\nx=2\n"
	if out.String() != want {
		t.Fatalf("monitor output %q, want %q", out.String(), want)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [1:0] waddr, input wire [1:0] raddr,
         input wire [7:0] wdata, input wire we, output wire [7:0] rdata);
  reg [7:0] mem [0:3];
  assign rdata = mem[raddr];
  always @(posedge clk) if (we) mem[waddr] <= wdata;
endmodule`)
	tb.s.SetInputByName("we", bits.FromUint64(1, 1))
	tb.s.SetInputByName("waddr", bits.FromUint64(2, 2))
	tb.s.SetInputByName("wdata", bits.FromUint64(8, 0x5a))
	tb.settle()
	tb.tick()
	tb.s.SetInputByName("raddr", bits.FromUint64(2, 2))
	tb.settle()
	if got := tb.val(t, "rdata"); got != 0x5a {
		t.Fatalf("rdata=%x, want 5a", got)
	}
	if got := tb.s.Word("mem", 2).Uint64(); got != 0x5a {
		t.Fatalf("mem[2]=%x", got)
	}
}

func TestInitialBlockRuns(t *testing.T) {
	f := build(t, `
module M(input wire clk);
  reg [7:0] a;
  reg [7:0] mem [0:3];
  integer i;
  initial begin
    a = 42;
    for (i = 0; i < 4; i = i + 1)
      mem[i] = i * 3;
  end
endmodule`)
	s := New(f, Options{})
	if got := s.Value("a").Uint64(); got != 42 {
		t.Fatalf("a=%d", got)
	}
	for i := 0; i < 4; i++ {
		if got := s.Word("mem", i).Uint64(); got != uint64(i*3) {
			t.Fatalf("mem[%d]=%d", i, got)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	src := `
module M(input wire clk);
  reg [7:0] cnt = 1;
  reg [7:0] mem [0:3];
  wire [7:0] next;
  assign next = cnt + 1;
  always @(posedge clk) begin
    cnt <= next;
    mem[cnt[1:0]] <= cnt;
  end
endmodule`
	f := build(t, src)
	s1 := New(f, Options{})
	clk := f.VarNamed("clk")
	step := func(s *Simulator) {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	step(s1)
	for i := 0; i < 5; i++ {
		s1.SetInput(clk, bits.FromUint64(1, 1))
		step(s1)
		s1.SetInput(clk, bits.FromUint64(1, 0))
		step(s1)
	}
	st := s1.GetState()

	// A fresh simulator loaded with the snapshot must continue exactly
	// where the first one left off (paper: migration must not reset cnt).
	f2 := build(t, src)
	s2 := New(f2, Options{})
	s2.SetState(st.Clone())
	step(s2)
	if s1.GetState().Signature() != s2.GetState().Signature() {
		t.Fatal("state differs immediately after restore")
	}
	for i := 0; i < 5; i++ {
		for _, s := range []*Simulator{s1, s2} {
			s.SetInputByName("clk", bits.FromUint64(1, 1))
			step(s)
			s.SetInputByName("clk", bits.FromUint64(1, 0))
			step(s)
		}
		if s1.GetState().Signature() != s2.GetState().Signature() {
			t.Fatalf("state diverged at tick %d:\n%s\n%s", i, s1.GetState().Signature(), s2.GetState().Signature())
		}
	}
}

func TestSetStateDoesNotFireEdges(t *testing.T) {
	f := build(t, `
module M(input wire clk);
  reg [7:0] cnt = 0;
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	s := New(f, Options{})
	st := s.GetState()
	st.Scalars["clk"] = bits.FromUint64(1, 1) // restore with clock high
	s.SetState(st)
	s.Evaluate()
	if s.HasUpdates() {
		t.Fatal("SetState fabricated a clock edge")
	}
}

func TestDynamicBitSelect(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [2:0] i, input wire [7:0] v, output wire b, output wire oob);
  assign b = v[i];
  assign oob = v[i + 4'd8];
endmodule`)
	tb.s.SetInputByName("v", bits.FromUint64(8, 0b0100_0000))
	tb.s.SetInputByName("i", bits.FromUint64(3, 6))
	tb.settle()
	if got := tb.val(t, "b"); got != 1 {
		t.Fatalf("v[6]=%d, want 1", got)
	}
	if got := tb.val(t, "oob"); got != 0 {
		t.Fatal("out-of-range select should read 0")
	}
}

func TestDynamicBitWrite(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [2:0] i);
  reg [7:0] r = 0;
  always @(posedge clk) r[i] <= 1;
endmodule`)
	tb.s.SetInputByName("i", bits.FromUint64(3, 5))
	tb.settle()
	tb.tick()
	if got := tb.val(t, "r"); got != 0b10_0000 {
		t.Fatalf("r=%08b", got)
	}
}

func TestShortCircuitEval(t *testing.T) {
	// Division by zero yields 0 in our model, but short-circuit must
	// still avoid evaluating the right side when the left decides.
	tb := newBench(t, `
module M(input wire clk, input wire a, output wire o1, output wire o2);
  assign o1 = a && a;
  assign o2 = !a || a;
endmodule`)
	tb.settle()
	if tb.val(t, "o1") != 0 || tb.val(t, "o2") != 1 {
		t.Fatal("logical ops wrong")
	}
}

func TestLazyEvaluationCounters(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [7:0] a, input wire [7:0] b, output wire [7:0] x, output wire [7:0] y);
  assign x = a + 1;
  assign y = b + 1;
endmodule`)
	base := tb.s.EvalOps
	tb.s.SetInputByName("a", bits.FromUint64(8, 5))
	tb.settle()
	// Only the assign reading a (and nothing else) should re-evaluate.
	if delta := tb.s.EvalOps - base; delta != 1 {
		t.Fatalf("lazy evaluation ran %d processes, want 1", delta)
	}
}

func TestConcatAssignDistribution(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [7:0] v);
  reg [3:0] hi, lo;
  always @(posedge clk) {hi, lo} <= v;
endmodule`)
	tb.s.SetInputByName("v", bits.FromUint64(8, 0xa5))
	tb.settle()
	tb.tick()
	if hi, lo := tb.val(t, "hi"), tb.val(t, "lo"); hi != 0xa || lo != 0x5 {
		t.Fatalf("hi=%x lo=%x", hi, lo)
	}
}

func TestWidthExtensionCarry(t *testing.T) {
	tb := newBench(t, `
module M(input wire clk, input wire [3:0] a, input wire [3:0] b, output wire [4:0] sum);
  assign sum = a + b;
endmodule`)
	tb.s.SetInputByName("a", bits.FromUint64(4, 15))
	tb.s.SetInputByName("b", bits.FromUint64(4, 1))
	tb.settle()
	if got := tb.val(t, "sum"); got != 16 {
		t.Fatalf("carry lost: sum=%d, want 16", got)
	}
}
