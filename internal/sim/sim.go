// Package sim implements the Verilog reference simulation semantics
// (paper §2.5, Figure 2) over an elaborated subprogram: an event-driven
// interpreter with activation queues for combinational logic and an update
// queue for non-blocking assignments.
//
// The simulator computes data dependencies at elaboration load time and
// re-evaluates processes lazily, only when something they are sensitive to
// changes (paper §5.1). It is the execution core of Cascade's software
// engines and, run standalone without the JIT, the "iVerilog" baseline of
// the evaluation.
package sim

import (
	"fmt"
	"strings"

	"cascade/internal/bits"
	"cascade/internal/elab"
)

// Options configures simulator hooks. All are optional.
type Options struct {
	// Display receives formatted $display/$write output (without an
	// implicit newline; $display appends one itself).
	Display func(text string)
	// Finish is called when the program executes $finish.
	Finish func(code int)
	// Now supplies the virtual time for $time.
	Now func() uint64
	// Eager disables the lazy dependency-driven activation of paper
	// §5.1: every combinational process re-evaluates on every pass, the
	// strategy of a naive event-driven interpreter. Used as the
	// "iVerilog" baseline and as the laziness ablation.
	Eager bool
	// Shuffle, when non-nil, randomizes the order in which activated
	// events are performed within a batch. The Verilog reference
	// scheduler (paper Figure 2) performs active events "in any order";
	// equivalence tests use this to check that well-formed programs
	// reach the same observable states under every ordering.
	Shuffle func(n int) []int
}

// Simulator executes one elaborated subprogram.
type Simulator struct {
	flat *elab.Flat
	opts Options

	vals   []*bits.Vector   // scalar values by Var.Index
	arrays [][]*bits.Vector // memory words by Var.Index

	// Sensitivity maps: variable index -> dependent assign/proc indices.
	assignDeps [][]int
	procDeps   [][]int

	activeAssign []bool
	activeProc   []bool
	anyActive    bool

	updates  []pendingUpdate
	monitors []*monitorState

	finished bool
	orderBuf []int
	// Counters exposed for profiling and the performance model.
	EvalOps   uint64 // process/assign executions
	WriteOps  uint64 // variable writes that changed a value
	UpdateOps uint64 // non-blocking commits
}

type pendingUpdate struct {
	v      *elab.Var
	word   int // -1 for scalar
	hasRng bool
	hi, lo int
	val    *bits.Vector
}

type monitorState struct {
	task *elab.SysTask
	last []string
}

// New builds a simulator for f. Initializers are applied and initial
// blocks run; combinational logic is activated so outputs settle on the
// first Evaluate call.
func New(f *elab.Flat, opts Options) *Simulator {
	s := &Simulator{
		flat:         f,
		opts:         opts,
		vals:         make([]*bits.Vector, len(f.Vars)),
		arrays:       make([][]*bits.Vector, len(f.Vars)),
		assignDeps:   make([][]int, len(f.Vars)),
		procDeps:     make([][]int, len(f.Vars)),
		activeAssign: make([]bool, len(f.Assigns)),
		activeProc:   make([]bool, len(f.Procs)),
	}
	for _, v := range f.Vars {
		if v.IsArray() {
			words := make([]*bits.Vector, v.ArrayLen)
			for i := range words {
				words[i] = bits.New(v.Width)
			}
			s.arrays[v.Index] = words
			s.vals[v.Index] = bits.New(v.Width) // scratch, unused
			continue
		}
		if v.Init != nil {
			s.vals[v.Index] = v.Init.Clone()
		} else {
			s.vals[v.Index] = bits.New(v.Width)
		}
	}

	// Build sensitivity maps.
	for i, a := range f.Assigns {
		for _, v := range assignReads(a) {
			s.assignDeps[v.Index] = append(s.assignDeps[v.Index], i)
		}
		s.activeAssign[i] = true
		s.anyActive = true
	}
	for i, p := range f.Procs {
		if p.Star || hasLevel(p) {
			vars := p.Reads
			if !p.Star {
				vars = levelVars(p)
			}
			for _, v := range vars {
				s.procDeps[v.Index] = append(s.procDeps[v.Index], i)
			}
			s.activeProc[i] = true
			s.anyActive = true
		} else {
			// Edge-triggered: dependencies are checked against old/new
			// values inside writeScalar, so register on the edge vars.
			for _, e := range p.Edges {
				s.procDeps[e.Var.Index] = append(s.procDeps[e.Var.Index], i)
			}
		}
	}

	// Initial blocks execute once at time zero.
	for _, st := range f.Initials {
		s.exec(st)
	}
	return s
}

func assignReads(a *elab.ContAssign) []*elab.Var {
	seen := map[*elab.Var]bool{}
	var out []*elab.Var
	add := func(e elab.Expr) {
		elab.WalkExpr(e, func(x elab.Expr) {
			var v *elab.Var
			switch t := x.(type) {
			case *elab.VarRef:
				v = t.V
			case *elab.ArrayRef:
				v = t.V
			}
			if v != nil && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		})
	}
	add(a.RHS)
	for _, lv := range a.LHS {
		if lv.ArrIndex != nil {
			add(lv.ArrIndex)
		}
		if lv.DynBit != nil {
			add(lv.DynBit)
		}
	}
	return out
}

func hasLevel(p *elab.Proc) bool {
	for _, e := range p.Edges {
		if e.Kind == elab.Level {
			return true
		}
	}
	return false
}

func levelVars(p *elab.Proc) []*elab.Var {
	var out []*elab.Var
	for _, e := range p.Edges {
		if e.Kind == elab.Level {
			out = append(out, e.Var)
		}
	}
	return out
}

// Flat returns the subprogram this simulator executes.
func (s *Simulator) Flat() *elab.Flat { return s.flat }

// Finished reports whether $finish has executed.
func (s *Simulator) Finished() bool { return s.finished }

// Env interface for elab.Eval.

// VarValue implements elab.Env.
func (s *Simulator) VarValue(v *elab.Var) *bits.Vector { return s.vals[v.Index] }

// ArrayWord implements elab.Env.
func (s *Simulator) ArrayWord(v *elab.Var, i int) *bits.Vector {
	w := s.arrays[v.Index]
	if i < 0 || i >= len(w) {
		return bits.New(v.Width)
	}
	return w[i]
}

// Now implements elab.Env.
func (s *Simulator) Now() uint64 {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return 0
}

// Value returns the current value of a named scalar variable (nil if
// unknown).
func (s *Simulator) Value(name string) *bits.Vector {
	v := s.flat.VarNamed(name)
	if v == nil || v.IsArray() {
		return nil
	}
	return s.vals[v.Index].Clone()
}

// Word returns word i of a named memory (nil if unknown).
func (s *Simulator) Word(name string, i int) *bits.Vector {
	v := s.flat.VarNamed(name)
	if v == nil || !v.IsArray() || i < 0 || i >= v.ArrayLen {
		return nil
	}
	return s.arrays[v.Index][i].Clone()
}

// SetInput drives an input port (the engine ABI read method's core).
func (s *Simulator) SetInput(v *elab.Var, val *bits.Vector) {
	s.writeScalar(v, val)
}

// SetInputByName drives an input port by name.
func (s *Simulator) SetInputByName(name string, val *bits.Vector) bool {
	v := s.flat.VarNamed(name)
	if v == nil {
		return false
	}
	s.writeScalar(v, val)
	return true
}

// writeScalar writes a full scalar variable, firing sensitivity.
func (s *Simulator) writeScalar(v *elab.Var, val *bits.Vector) {
	old := s.vals[v.Index]
	oldLSB := old.Bit(0)
	if !old.CopyFrom(val) {
		return
	}
	s.WriteOps++
	s.fire(v, oldLSB, old.Bit(0))
}

// fire activates everything sensitive to a change on v.
func (s *Simulator) fire(v *elab.Var, oldLSB, newLSB uint) {
	for _, ai := range s.assignDeps[v.Index] {
		s.activeAssign[ai] = true
		s.anyActive = true
	}
	for _, pi := range s.procDeps[v.Index] {
		p := s.flat.Procs[pi]
		if p.Star || hasLevel(p) {
			s.activeProc[pi] = true
			s.anyActive = true
			continue
		}
		for _, e := range p.Edges {
			if e.Var != v {
				continue
			}
			if (e.Kind == elab.Pos && oldLSB == 0 && newLSB == 1) ||
				(e.Kind == elab.Neg && oldLSB == 1 && newLSB == 0) {
				s.activeProc[pi] = true
				s.anyActive = true
			}
		}
	}
}

// HasActive reports whether any evaluation events are pending
// (there_are_evals in the engine ABI).
func (s *Simulator) HasActive() bool { return s.anyActive }

// Evaluate runs activated combinational logic and triggered processes to
// a fixed point (the EvalAll batch of the Cascade scheduler). Non-blocking
// assignments encountered along the way are queued, not applied.
func (s *Simulator) Evaluate() {
	if s.opts.Eager && s.anyActive {
		s.activateCombinational()
	}
	for s.anyActive {
		s.anyActive = false
		for _, i := range s.order(len(s.activeAssign)) {
			if !s.activeAssign[i] {
				continue
			}
			s.activeAssign[i] = false
			s.runAssign(s.flat.Assigns[i])
		}
		for _, i := range s.order(len(s.activeProc)) {
			if !s.activeProc[i] {
				continue
			}
			s.activeProc[i] = false
			s.EvalOps++
			s.exec(s.flat.Procs[i].Body)
		}
	}
}

// order yields the event-processing order for a batch of n events:
// index order by default, or a permutation from Options.Shuffle.
func (s *Simulator) order(n int) []int {
	if s.opts.Shuffle != nil {
		return s.opts.Shuffle(n)
	}
	if cap(s.orderBuf) < n {
		s.orderBuf = make([]int, n)
		for i := range s.orderBuf {
			s.orderBuf[i] = i
		}
	}
	return s.orderBuf[:n]
}

// HasUpdates reports whether non-blocking updates are queued
// (there_are_updates in the engine ABI).
func (s *Simulator) HasUpdates() bool { return len(s.updates) > 0 }

// Update commits all queued non-blocking assignments simultaneously
// (the update batch of the scheduler). Evaluation events triggered by the
// commits become pending but are not run.
func (s *Simulator) Update() {
	pending := s.updates
	s.updates = nil
	for _, u := range pending {
		s.UpdateOps++
		s.applyWrite(u.v, u.word, u.hasRng, u.hi, u.lo, u.val)
	}
}

// EndStep runs end-of-time-step work: $monitor re-display.
func (s *Simulator) EndStep() {
	for _, m := range s.monitors {
		cur := s.formatTask(m.task)
		if len(m.last) == 0 || m.last[0] != cur {
			m.last = []string{cur}
			s.display(cur + "\n")
		}
	}
}

func (s *Simulator) runAssign(a *elab.ContAssign) {
	s.EvalOps++
	val := elab.Eval(a.RHS, s)
	s.writeTargets(a.LHS, val, true)
}

// writeTargets distributes val across (possibly concatenated) lvalues,
// MSB first. blocking selects immediate write vs update queue.
func (s *Simulator) writeTargets(lhs []elab.LValue, val *bits.Vector, blocking bool) {
	total := 0
	for _, lv := range lhs {
		total += lv.TargetWidth()
	}
	val = val.Resize(total)
	offset := total
	for _, lv := range lhs {
		w := lv.TargetWidth()
		offset -= w
		part := val.Slice(offset+w-1, offset)
		s.writeLValue(lv, part, blocking)
	}
}

func (s *Simulator) writeLValue(lv elab.LValue, val *bits.Vector, blocking bool) {
	word := -1
	if lv.ArrIndex != nil {
		idx := elab.Eval(lv.ArrIndex, s)
		word = int(idx.Uint64())
		if !idx.Equal(bits.FromUint64(64, uint64(word))) || word >= lv.Var.ArrayLen {
			return // out-of-range memory write is dropped
		}
	}
	hasRng, hi, lo := lv.HasRange, lv.Hi, lv.Lo
	if lv.DynBit != nil {
		idx := elab.Eval(lv.DynBit, s)
		b := int(idx.Uint64())
		if !idx.Equal(bits.FromUint64(64, uint64(b))) || b >= lv.Var.Width {
			return
		}
		hasRng, hi, lo = true, b, b
	}
	if blocking {
		s.applyWrite(lv.Var, word, hasRng, hi, lo, val)
		return
	}
	s.updates = append(s.updates, pendingUpdate{v: lv.Var, word: word, hasRng: hasRng, hi: hi, lo: lo, val: val})
}

// applyWrite performs an immediate write and fires sensitivity on change.
func (s *Simulator) applyWrite(v *elab.Var, word int, hasRng bool, hi, lo int, val *bits.Vector) {
	if word >= 0 {
		target := s.arrays[v.Index][word]
		var changed bool
		if hasRng {
			changed = target.SetSlice(hi, lo, val)
		} else {
			changed = target.CopyFrom(val)
		}
		if changed {
			s.WriteOps++
			s.fire(v, 0, 0) // memories have no edge semantics
		}
		return
	}
	target := s.vals[v.Index]
	oldLSB := target.Bit(0)
	var changed bool
	if hasRng {
		changed = target.SetSlice(hi, lo, val)
	} else {
		changed = target.CopyFrom(val)
	}
	if changed {
		s.WriteOps++
		s.fire(v, oldLSB, target.Bit(0))
	}
}

// exec interprets a resolved statement.
func (s *Simulator) exec(st elab.Stmt) {
	switch x := st.(type) {
	case nil:
	case *elab.Block:
		for _, sub := range x.Stmts {
			s.exec(sub)
		}
	case *elab.If:
		if elab.Eval(x.Cond, s).Bool() {
			s.exec(x.Then)
		} else {
			s.exec(x.Else)
		}
	case *elab.Case:
		subj := elab.Eval(x.Subject, s)
		var deflt elab.Stmt
		for _, item := range x.Items {
			if item.Labels == nil {
				deflt = item.Body
				continue
			}
			for li, l := range item.Labels {
				lv := elab.Eval(l, s)
				if m := item.Masks[li]; m != nil {
					if subj.Xor(lv).And(m).IsZero() {
						s.exec(item.Body)
						return
					}
					continue
				}
				if lv.Equal(subj) {
					s.exec(item.Body)
					return
				}
			}
		}
		s.exec(deflt)
	case *elab.Assign:
		val := elab.Eval(x.RHS, s)
		s.writeTargets(x.LHS, val, x.Blocking)
	case *elab.SysTask:
		s.sysTask(x)
	default:
		panic(fmt.Sprintf("sim: unknown statement %T", st))
	}
}

func (s *Simulator) sysTask(t *elab.SysTask) {
	switch t.Kind {
	case elab.TaskDisplay:
		s.display(s.formatTask(t) + "\n")
	case elab.TaskWrite:
		s.display(s.formatTask(t))
	case elab.TaskMonitor:
		m := &monitorState{task: t}
		s.monitors = append(s.monitors, m)
		cur := s.formatTask(t)
		m.last = []string{cur}
		s.display(cur + "\n")
	case elab.TaskFinish:
		s.finished = true
		if s.opts.Finish != nil {
			s.opts.Finish(0)
		}
	}
}

func (s *Simulator) display(text string) {
	if s.opts.Display != nil {
		s.opts.Display(text)
	}
}

// formatTask renders a $display/$write/$monitor according to its format
// string. Supported verbs: %d %h %x %b %o %c %s %m %% with an optional 0
// flag and field width for %d (e.g. %08d). Without a format string,
// arguments print space-separated in decimal (standard behaviour).
func (s *Simulator) formatTask(t *elab.SysTask) string {
	vals := make([]*bits.Vector, len(t.Args))
	for i, a := range t.Args {
		vals[i] = elab.Eval(a, s)
	}
	if t.Format == "" {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.Dec()
		}
		return strings.Join(parts, " ")
	}
	return FormatDisplay(t.Format, vals, s.flat.Name)
}

// FormatDisplay implements Verilog $display formatting for 2-state values.
func FormatDisplay(format string, args []*bits.Vector, scope string) string {
	var sb strings.Builder
	argi := 0
	next := func() *bits.Vector {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return bits.New(1)
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			sb.WriteByte('%')
			break
		}
		// Optional zero flag and width digits.
		zero := false
		width := 0
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			if format[i] == '0' && width == 0 {
				zero = true
			} else {
				width = width*10 + int(format[i]-'0')
			}
			i++
		}
		if i >= len(format) {
			break
		}
		var text string
		switch format[i] {
		case 'd', 'D':
			text = next().Dec()
		case 'h', 'H', 'x', 'X':
			text = next().Hex()
		case 'b', 'B':
			text = next().Bin()
		case 'o', 'O':
			text = next().Oct()
		case 'c', 'C':
			text = string(rune(next().Uint64() & 0xff))
		case 's', 'S':
			v := next()
			raw := make([]byte, 0, v.Width()/8)
			for b := v.Width() - 8; b >= 0; b -= 8 {
				ch := byte(v.Slice(b+7, b).Uint64())
				if ch != 0 {
					raw = append(raw, ch)
				}
			}
			text = string(raw)
		case 'm', 'M':
			text = scope
		case 't', 'T':
			text = next().Dec()
		case '%':
			text = "%"
		default:
			text = "%" + string(format[i])
		}
		for len(text) < width {
			if zero {
				text = "0" + text
			} else {
				text = " " + text
			}
		}
		sb.WriteString(text)
	}
	return sb.String()
}
