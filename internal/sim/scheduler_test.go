package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/verilog"
)

// This file checks the paper's §2.5 claim that any system performing
// activated events in any order is a well-formed model for Verilog: for
// race-free synchronous programs, a simulator processing events in a
// random order per batch reaches the same observable states as the
// deterministic one.

// randOrderProgram emits a random synchronous module (mirrors the
// generator in internal/netlist but kept local to avoid an import cycle
// of test helpers).
func randOrderProgram(r *rand.Rand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module M(input wire clk, input wire [7:0] a, input wire [7:0] b);\n")
	reads := []string{"a", "b"}
	nregs := 2 + r.Intn(3)
	for i := 0; i < nregs; i++ {
		fmt.Fprintf(&sb, "  reg [7:0] r%d = %d;\n", i, r.Intn(100))
		reads = append(reads, fmt.Sprintf("r%d", i))
	}
	expr := func() string {
		x := reads[r.Intn(len(reads))]
		y := reads[r.Intn(len(reads))]
		op := []string{"+", "-", "^", "&", "|"}[r.Intn(5)]
		return fmt.Sprintf("(%s %s %s)", x, op, y)
	}
	nwires := 1 + r.Intn(3)
	for i := 0; i < nwires; i++ {
		fmt.Fprintf(&sb, "  wire [7:0] w%d;\n", i)
	}
	for i := 0; i < nwires; i++ {
		fmt.Fprintf(&sb, "  assign w%d = %s;\n", i, expr())
		reads = append(reads, fmt.Sprintf("w%d", i))
	}
	for i := 0; i < nregs; i++ {
		fmt.Fprintf(&sb, "  always @(posedge clk) r%d <= %s;\n", i, expr())
	}
	fmt.Fprintf(&sb, "endmodule\n")
	return sb.String()
}

func elaborateSrc(t *testing.T, src string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func settleSim(s *Simulator) {
	for s.HasActive() || s.HasUpdates() {
		s.Evaluate()
		if s.HasUpdates() {
			s.Update()
		}
	}
}

func TestSchedulerOrderIndependence(t *testing.T) {
	gen := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		src := randOrderProgram(gen)
		ref := New(elaborateSrc(t, src), Options{})
		shuffleRng := rand.New(rand.NewSource(int64(trial) * 7))
		shuf := New(elaborateSrc(t, src), Options{
			Shuffle: func(n int) []int { return shuffleRng.Perm(n) },
		})
		for tick := 0; tick < 15; tick++ {
			a := bits.FromUint64(8, gen.Uint64())
			b := bits.FromUint64(8, gen.Uint64())
			for _, s := range []*Simulator{ref, shuf} {
				s.SetInputByName("a", a)
				s.SetInputByName("b", b)
				settleSim(s)
				s.SetInputByName("clk", bits.FromUint64(1, 1))
				settleSim(s)
				s.SetInputByName("clk", bits.FromUint64(1, 0))
				settleSim(s)
			}
			if ref.GetState().Signature() != shuf.GetState().Signature() {
				t.Fatalf("trial %d tick %d: ordering changed observable state on\n%s\nref:  %s\nshuf: %s",
					trial, tick, src, ref.GetState().Signature(), shuf.GetState().Signature())
			}
		}
	}
}

// The display stream must also be order-independent for a single process
// (events within one process body are sequential regardless of batch
// order).
func TestSchedulerOrderIndependentDisplays(t *testing.T) {
	src := `
module M(input wire clk);
  reg [3:0] n = 0;
  always @(posedge clk) begin
    n <= n + 1;
    $display("n=%d", n);
  end
endmodule`
	var refOut, shufOut strings.Builder
	ref := New(elaborateSrc(t, src), Options{Display: func(s string) { refOut.WriteString(s) }})
	rng := rand.New(rand.NewSource(5))
	shuf := New(elaborateSrc(t, src), Options{
		Display: func(s string) { shufOut.WriteString(s) },
		Shuffle: func(n int) []int { return rng.Perm(n) },
	})
	for tick := 0; tick < 5; tick++ {
		for _, s := range []*Simulator{ref, shuf} {
			s.SetInputByName("clk", bits.FromUint64(1, 1))
			settleSim(s)
			s.SetInputByName("clk", bits.FromUint64(1, 0))
			settleSim(s)
		}
	}
	if refOut.String() != shufOut.String() {
		t.Fatalf("display order diverged:\n%q\n%q", refOut.String(), shufOut.String())
	}
}
