// Package njit compiles a synthesized netlist into closure-threaded Go:
// the native software tier of the JIT ladder (ROADMAP item 2, in the
// spirit of vlang's netlist-to-compiler-backend mapping). Where the
// interpreter in internal/netlist re-dispatches a per-op switch and
// bounds-checks code[pc] on every instruction, the native tier fuses
// each process into straight-line closures over word-packed state —
// []uint64 lanes for slots of 64 bits or less, bit vectors only for
// wide slots — with branch targets resolved to closure indices at
// compile time. The compiled evaluator shares the Machine's backing
// state (netlist.Hooks), so it implements the same evaluate/update
// contract as the interpreter and the runtime can hot-swap between the
// two tiers with a plain state handoff, exactly as it swaps bitstreams.
package njit

import (
	mbits "math/bits"

	"cascade/internal/netlist"
)

// block is one basic block: fused straight-line closures plus a
// terminator that names the next block by index (-1 halts). Jump
// targets are resolved at compile time, so running a process is a tight
// closure-index loop with no opcode dispatch.
type block struct {
	ops  []func()
	n    uint64 // instructions this block represents, for billing
	next func() int
}

// proc is one compiled process body (a combinational unit or a
// sequential process), finalized to one fused step closure per block:
// the closure executes the block's straight-line ops and returns the
// next block index, so the dispatch loop is two array loads and one
// indirect call per block.
type proc struct {
	steps []func() int
	bn    []uint64 // instructions each block represents, for billing
}

func (pr *proc) run() uint64 {
	var n uint64
	bi := 0
	for bi >= 0 {
		n += pr.bn[bi]
		bi = pr.steps[bi]()
	}
	return n
}

// Eval is a netlist.Program compiled to closure-threaded Go. It wraps
// the Machine whose state it shares: narrow ops run fused closures over
// the machine's word lanes; wide ops, display tasks, and anything else
// exotic fall back to the interpreter's slow path one instruction at a
// time, so the two tiers can never disagree on semantics.
type Eval struct {
	m    *netlist.Machine
	prog *netlist.Program

	u64        []uint64
	seqTrig    []bool
	combDirty  *bool
	seqPending *bool

	// pos/neg list the sequential processes watching each slot for an
	// edge, inlined from the machine's edge-watch map.
	pos, neg [][]int

	// Fast non-blocking commit buffer. A slot is nbOK when every
	// non-blocking write to it anywhere in the program is a narrow
	// full-slot OpWriteNB: such slots never appear in the machine's
	// pending queue, so their writes can be coalesced into a dense
	// last-write-wins shadow word instead of an appended pending record.
	// Commit order relative to the machine queue is unobservable — the
	// two buffers cover disjoint slots, and update-phase commits don't
	// run processes in between.
	nbOK    []bool
	nbOn    []bool
	nbVal   []uint64
	nbMask  []uint64
	nbDirty []int

	// Whole-program def/use counts, driving two compile-time rewrites:
	// constant hoisting (a single-writer OpConst temp is materialized
	// once at compile time and emits no closure) and compare/branch
	// fusion (a single-use comparison feeding the Jz that immediately
	// follows it folds into the block terminator).
	writes []int
	reads  []int
	// constSlot marks lanes holding a hoisted compile-time constant.
	constSlot []bool

	// Sensitivity lists: the comb units whose reachable code reads each
	// variable slot / memory. Changes mark only the reading units, so a
	// clock toggle that feeds nothing but edge detectors costs no
	// combinational pass at all. allDirty falls back to a full pass
	// after wholesale state replacement.
	slotUnits [][]int
	memUnits  [][]int
	combMark  []bool
	combAny   bool
	allDirty  bool

	comb []proc
	seq  []proc

	nativeOps uint64
}

// Compile builds the native evaluator for m's program, sharing m's
// packed state. The machine stays fully usable; interpreter and native
// tier may even interleave (the engine fallback path relies on it).
func Compile(m *netlist.Machine) *Eval {
	p := m.Prog()
	h := m.Hooks()
	e := &Eval{
		m:          m,
		prog:       p,
		u64:        h.U64,
		seqTrig:    h.SeqTrig,
		combDirty:  h.CombDirty,
		seqPending: h.SeqPending,
		pos:        make([][]int, len(p.Slots)),
		neg:        make([][]int, len(p.Slots)),
	}
	for i := range p.Slots {
		e.pos[i], e.neg[i] = m.EdgeHooksFor(i)
	}
	e.nbOK = make([]bool, len(p.Slots))
	e.nbOn = make([]bool, len(p.Slots))
	e.nbVal = make([]uint64, len(p.Slots))
	e.nbMask = make([]uint64, len(p.Slots))
	for i, s := range p.Slots {
		e.nbOK[i] = !s.Wide
		e.nbMask[i] = mask(s.Width)
	}
	e.writes = make([]int, len(p.Slots))
	e.reads = make([]int, len(p.Slots))
	e.constSlot = make([]bool, len(p.Slots))
	for i := range p.Code {
		op := &p.Code[i]
		switch op.Kind {
		case netlist.OpWriteNB:
			if op.Wide {
				e.nbOK[op.Dst] = false
			}
		case netlist.OpWriteRngNB, netlist.OpWriteBitNB:
			e.nbOK[op.Dst] = false
		}
		for _, s := range op.Srcs {
			e.reads[s]++
		}
		if opWritesDst(op.Kind) {
			e.writes[op.Dst]++
		}
	}
	e.slotUnits = make([][]int, len(p.Slots))
	e.memUnits = make([][]int, len(p.Mems))
	e.combMark = make([]bool, len(p.Comb))
	e.allDirty = true
	addUnit := func(list []int, ui int) []int {
		if n := len(list); n > 0 && list[n-1] == ui {
			return list
		}
		return append(list, ui)
	}
	for ui, cu := range p.Comb {
		seen := map[int]bool{}
		stack := []int{cu.Entry}
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[pc] {
				continue
			}
			seen[pc] = true
			op := &p.Code[pc]
			for _, src := range op.Srcs {
				e.slotUnits[src] = addUnit(e.slotUnits[src], ui)
			}
			if op.Kind == netlist.OpMemRead {
				e.memUnits[op.Aux] = addUnit(e.memUnits[op.Aux], ui)
			}
			switch op.Kind {
			case netlist.OpHalt:
			case netlist.OpJump:
				stack = append(stack, op.Target)
			case netlist.OpJz:
				stack = append(stack, op.Target, pc+1)
			default:
				stack = append(stack, pc+1)
			}
		}
	}
	m.ChangeHook = e.onChange
	e.comb = make([]proc, len(p.Comb))
	for i, cu := range p.Comb {
		e.comb[i] = e.compileProc(cu.Entry)
	}
	e.seq = make([]proc, len(p.Seq))
	for i, sp := range p.Seq {
		e.seq[i] = e.compileProc(sp.Entry)
	}
	return e
}

// onChange is the machine's ChangeHook: slow-path state changes mark
// the comb units that read the changed slot or memory.
func (e *Eval) onChange(slot int) {
	if slot >= 0 {
		e.markUnits(e.slotUnits[slot])
	} else {
		e.markUnits(e.memUnits[-1-slot])
	}
}

func (e *Eval) markUnits(units []int) {
	for _, ui := range units {
		if !e.combMark[ui] {
			e.combMark[ui] = true
			e.combAny = true
		}
	}
}

// InvalidateAll schedules a full combinational pass (state replaced
// wholesale, e.g. after a SetState handoff).
func (e *Eval) InvalidateAll() {
	e.allDirty = true
	*e.combDirty = true
}

// Machine returns the wrapped interpreter machine (shared state).
func (e *Eval) Machine() *netlist.Machine { return e.m }

// HasActive reports pending evaluation work (there_are_evals).
func (e *Eval) HasActive() bool { return *e.combDirty || *e.seqPending }

// Evaluate mirrors Machine.Evaluate over the shared dirty/trigger
// state: run triggered sequential processes, then settle combinational
// logic to a fixpoint.
func (e *Eval) Evaluate() {
	worked := false
	for *e.seqPending || *e.combDirty {
		worked = true
		if *e.seqPending {
			*e.seqPending = false
			for i := range e.seqTrig {
				if e.seqTrig[i] {
					e.seqTrig[i] = false
					e.nativeOps += e.seq[i].run()
				}
			}
		}
		if *e.combDirty {
			*e.combDirty = false
			if e.allDirty {
				e.allDirty = false
				e.combAny = false
				for i := range e.comb {
					e.combMark[i] = false
					e.nativeOps += e.comb[i].run()
				}
			} else if e.combAny {
				e.combAny = false
				for i := range e.comb {
					if e.combMark[i] {
						e.combMark[i] = false
						e.nativeOps += e.comb[i].run()
					}
				}
			}
		}
	}
	if worked {
		e.m.Cycles++
	}
}

// HasUpdates reports queued non-blocking writes in either commit buffer
// (there_are_updates).
func (e *Eval) HasUpdates() bool { return len(e.nbDirty) > 0 || e.m.HasUpdates() }

// Update commits queued non-blocking writes: the machine's pending
// queue (slow-path records) plus the native tier's coalesced shadow
// words.
func (e *Eval) Update() {
	if e.m.HasUpdates() {
		e.m.Update()
	}
	for _, d := range e.nbDirty {
		e.nbOn[d] = false
		e.writeSlot(d, e.nbVal[d]&e.nbMask[d])
	}
	e.nbDirty = e.nbDirty[:0]
}

// NativeOpsDelta returns compiled instructions executed since the last
// call and resets the counter.
func (e *Eval) NativeOpsDelta() uint64 {
	d := e.nativeOps
	e.nativeOps = 0
	return d
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// powMod computes x**y mod 2^64 by binary exponentiation (the
// interpreter's narrow power semantics).
func powMod(x, y uint64) uint64 {
	var r uint64 = 1
	for y > 0 {
		if y&1 != 0 {
			r *= x
		}
		x *= x
		y >>= 1
	}
	return r
}

// builder compiles one process body into basic blocks.
type builder struct {
	e      *Eval
	code   []netlist.Op
	leader map[int]bool
	idx    map[int]int
	blocks []block
	metas  []eqMeta
	todo   []int
}

// eqMeta records a block whose terminator is a fused equality test, the
// raw material for the switch-chain -> jump-table rewrite.
type eqMeta struct {
	valid    bool
	a, b     int // compared slots
	eqT, neT int // successor block on equal / not-equal
}

func (e *Eval) compileProc(entry int) proc {
	b := &builder{
		e:      e,
		code:   e.prog.Code,
		leader: map[int]bool{},
		idx:    map[int]int{},
	}
	b.scanLeaders(entry)
	b.blockAt(entry)
	for len(b.todo) > 0 {
		pc := b.todo[len(b.todo)-1]
		b.todo = b.todo[:len(b.todo)-1]
		b.fill(pc)
	}
	b.rewriteSwitches()
	return b.finalize()
}

// finalize fuses each block's ops and terminator into one step closure,
// specialized for the short blocks branchy netlists produce.
func (b *builder) finalize() proc {
	pr := proc{
		steps: make([]func() int, len(b.blocks)),
		bn:    make([]uint64, len(b.blocks)),
	}
	for i := range b.blocks {
		blk := b.blocks[i]
		term := blk.next
		pr.bn[i] = blk.n
		switch len(blk.ops) {
		case 0:
			pr.steps[i] = term
		case 1:
			f0 := blk.ops[0]
			pr.steps[i] = func() int { f0(); return term() }
		case 2:
			f0, f1 := blk.ops[0], blk.ops[1]
			pr.steps[i] = func() int { f0(); f1(); return term() }
		case 3:
			f0, f1, f2 := blk.ops[0], blk.ops[1], blk.ops[2]
			pr.steps[i] = func() int { f0(); f1(); f2(); return term() }
		default:
			ops := blk.ops
			pr.steps[i] = func() int {
				for _, f := range ops {
					f()
				}
				return term()
			}
		}
	}
	return pr
}

// scanLeaders walks the code reachable from entry and marks every jump
// target (and Jz fallthrough) as a block leader, so a later branch into
// the middle of a straight-line run splits it correctly.
func (b *builder) scanLeaders(entry int) {
	seen := map[int]bool{}
	stack := []int{entry}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		op := &b.code[pc]
		switch op.Kind {
		case netlist.OpHalt:
		case netlist.OpJump:
			b.leader[op.Target] = true
			stack = append(stack, op.Target)
		case netlist.OpJz:
			b.leader[op.Target] = true
			b.leader[pc+1] = true
			stack = append(stack, op.Target, pc+1)
		default:
			stack = append(stack, pc+1)
		}
	}
}

// blockAt returns the block index for the leader at pc, scheduling it
// for compilation on first sight. Indices are stable across appends, so
// terminator closures can capture them before the block is filled.
func (b *builder) blockAt(pc int) int {
	if i, ok := b.idx[pc]; ok {
		return i
	}
	i := len(b.blocks)
	b.idx[pc] = i
	b.blocks = append(b.blocks, block{})
	b.metas = append(b.metas, eqMeta{})
	b.todo = append(b.todo, pc)
	return i
}

// fill compiles the straight-line run starting at pc into its block.
func (b *builder) fill(pc int) {
	bi := b.idx[pc]
	var ops []func()
	var n uint64
	// prev/prev2 shadow ops[len-1]/ops[len-2] for terminator fusion.
	var prev, prev2 *netlist.Op
	cur := pc
	for {
		op := &b.code[cur]
		n++
		switch op.Kind {
		case netlist.OpHalt:
			b.blocks[bi].next = func() int { return -1 }
		case netlist.OpJump:
			t := b.blockAt(op.Target)
			b.blocks[bi].next = func() int { return t }
		case netlist.OpJz:
			var next func() int
			if prev != nil && b.e.canFuseJz(prev, op) {
				tt, ff := b.blockAt(op.Target), b.blockAt(cur+1)
				// A LogNot between a comparison and its branch inverts
				// the sense: fold all three by swapping the targets.
				if prev.Kind == netlist.OpLogNot && prev2 != nil &&
					b.e.canFuseCmpInto(prev2, prev) {
					if next = b.e.fuseJz(prev2, ff, tt); next != nil {
						ops = ops[:len(ops)-2]
						if prev2.Kind == netlist.OpEq {
							b.metas[bi] = eqMeta{valid: true, a: prev2.Srcs[0], b: prev2.Srcs[1], eqT: tt, neT: ff}
						}
					}
				}
				if next == nil {
					if next = b.e.fuseJz(prev, tt, ff); next != nil {
						ops = ops[:len(ops)-1]
						if prev.Kind == netlist.OpEq {
							b.metas[bi] = eqMeta{valid: true, a: prev.Srcs[0], b: prev.Srcs[1], eqT: ff, neT: tt}
						}
					}
				}
			}
			if next == nil {
				next = b.jz(op, b.blockAt(op.Target), b.blockAt(cur+1))
			}
			b.blocks[bi].next = next
		default:
			if fn := b.e.compileOp(op); fn != nil {
				ops = append(ops, fn)
				prev2, prev = prev, op
			} else {
				n-- // hoisted to compile time, nothing to execute or bill
				prev2, prev = nil, nil
			}
			cur++
			if b.leader[cur] {
				k := b.blockAt(cur)
				b.blocks[bi].next = func() int { return k }
				b.blocks[bi].ops, b.blocks[bi].n = ops, n
				return
			}
			continue
		}
		b.blocks[bi].ops, b.blocks[bi].n = ops, n
		return
	}
}

// splitOperands resolves a fused equality test into (variable lane,
// constant value) when exactly one side is a hoisted constant.
func (b *builder) splitOperands(m eqMeta) (x int, cval uint64, ok bool) {
	ca, cb := b.e.constSlot[m.a], b.e.constSlot[m.b]
	switch {
	case ca && !cb:
		return m.b, b.e.u64[m.a], true
	case cb && !ca:
		return m.a, b.e.u64[m.b], true
	}
	return 0, 0, false
}

// rewriteSwitches turns chains of fused constant-equality tests over
// one lane — the netlist lowering of a case statement — into a single
// jump-table dispatch, so a DFA transition costs one indexed load
// instead of a walk over every arm.
func (b *builder) rewriteSwitches() {
	for bi := range b.blocks {
		if !b.metas[bi].valid {
			continue
		}
		x, _, ok := b.splitOperands(b.metas[bi])
		if !ok {
			continue
		}
		cases := map[uint64]int{}
		visited := map[int]bool{}
		cur := bi
		for {
			m := b.metas[cur]
			usable := m.valid && !visited[cur] && (cur == bi || len(b.blocks[cur].ops) == 0)
			if usable {
				xs, cv, okc := b.splitOperands(m)
				if okc && xs == x {
					visited[cur] = true
					if _, dup := cases[cv]; !dup {
						cases[cv] = m.eqT // first matching arm wins
					}
					cur = m.neT
					continue
				}
			}
			break
		}
		def := cur // the block the chain falls through to when no arm hits
		if len(cases) < 4 {
			continue
		}
		u := b.e.u64
		var maxv uint64
		for v := range cases {
			if v > maxv {
				maxv = v
			}
		}
		if maxv <= 4096 {
			tbl := make([]int, maxv+1)
			for i := range tbl {
				tbl[i] = def
			}
			for v, t := range cases {
				tbl[v] = t
			}
			b.blocks[bi].next = func() int {
				if v := u[x]; v < uint64(len(tbl)) {
					return tbl[v]
				}
				return def
			}
		} else {
			cm := cases
			b.blocks[bi].next = func() int {
				if t, ok := cm[u[x]]; ok {
					return t
				}
				return def
			}
		}
	}
}

// opWritesDst reports whether executing kind stores to Op.Dst's word
// lane (directly, or at non-blocking commit time).
func opWritesDst(k netlist.OpKind) bool {
	switch {
	case k <= netlist.OpMemRead:
		return true
	case k >= netlist.OpWrite && k <= netlist.OpWriteBit:
		return true
	case k >= netlist.OpWriteNB && k <= netlist.OpWriteBitNB:
		return true
	}
	return false
}

// canFuseJz reports whether prev is a narrow comparison whose only
// consumer is the Jz that immediately follows it, so the pair can
// become a single fused conditional terminator.
func (e *Eval) canFuseJz(prev, jz *netlist.Op) bool {
	if prev.Wide || jz.Wide || jz.Srcs[0] != prev.Dst {
		return false
	}
	if e.reads[prev.Dst] != 1 || e.writes[prev.Dst] != 1 {
		return false
	}
	switch prev.Kind {
	case netlist.OpEq, netlist.OpNe, netlist.OpLt, netlist.OpLe,
		netlist.OpGt, netlist.OpGe, netlist.OpLogNot, netlist.OpLogAnd,
		netlist.OpLogOr, netlist.OpRedOr, netlist.OpRedNor:
		return true
	}
	return false
}

// canFuseCmpInto reports whether cmp is a narrow comparison consumed
// only by the LogNot that immediately follows it.
func (e *Eval) canFuseCmpInto(cmp, lnot *netlist.Op) bool {
	if cmp.Wide || lnot.Srcs[0] != cmp.Dst {
		return false
	}
	if e.reads[cmp.Dst] != 1 || e.writes[cmp.Dst] != 1 {
		return false
	}
	switch cmp.Kind {
	case netlist.OpEq, netlist.OpNe, netlist.OpLt, netlist.OpLe,
		netlist.OpGt, netlist.OpGe, netlist.OpLogNot, netlist.OpLogAnd,
		netlist.OpLogOr, netlist.OpRedOr, netlist.OpRedNor:
		return true
	}
	return false
}

// fuseJz compiles compare-and-branch: Jz jumps to t when the comparison
// yields zero, falls through to f otherwise.
func (e *Eval) fuseJz(cmp *netlist.Op, t, f int) func() int {
	u := e.u64
	a := cmp.Srcs[0]
	var b int
	if len(cmp.Srcs) > 1 {
		b = cmp.Srcs[1]
	}
	switch cmp.Kind {
	case netlist.OpEq:
		return func() int {
			if u[a] == u[b] {
				return f
			}
			return t
		}
	case netlist.OpNe:
		return func() int {
			if u[a] != u[b] {
				return f
			}
			return t
		}
	case netlist.OpLt:
		return func() int {
			if u[a] < u[b] {
				return f
			}
			return t
		}
	case netlist.OpLe:
		return func() int {
			if u[a] <= u[b] {
				return f
			}
			return t
		}
	case netlist.OpGt:
		return func() int {
			if u[a] > u[b] {
				return f
			}
			return t
		}
	case netlist.OpGe:
		return func() int {
			if u[a] >= u[b] {
				return f
			}
			return t
		}
	case netlist.OpLogNot, netlist.OpRedNor:
		return func() int {
			if u[a] == 0 {
				return f
			}
			return t
		}
	case netlist.OpRedOr:
		return func() int {
			if u[a] != 0 {
				return f
			}
			return t
		}
	case netlist.OpLogAnd:
		return func() int {
			if u[a] != 0 && u[b] != 0 {
				return f
			}
			return t
		}
	case netlist.OpLogOr:
		return func() int {
			if u[a] != 0 || u[b] != 0 {
				return f
			}
			return t
		}
	}
	return nil
}

// jz compiles a conditional branch terminator with both successor block
// indices resolved at compile time.
func (b *builder) jz(op *netlist.Op, t, f int) func() int {
	if op.Wide {
		m := b.e.m
		return func() int {
			if m.ExecSlowOp(op) {
				return t
			}
			return f
		}
	}
	u := b.e.u64
	s := op.Srcs[0]
	return func() int {
		if u[s] == 0 {
			return t
		}
		return f
	}
}

// writeSlot stores into a narrow variable-backed slot with the
// interpreter's change-detection semantics: any change marks
// combinational logic dirty; an LSB transition fires the precompiled
// edge lists.
func (e *Eval) writeSlot(d int, nv uint64) {
	old := e.u64[d]
	if old == nv {
		return
	}
	e.u64[d] = nv
	if units := e.slotUnits[d]; len(units) != 0 {
		e.markUnits(units)
		*e.combDirty = true
	}
	if old&1 != nv&1 {
		var procs []int
		if nv&1 == 1 {
			procs = e.pos[d]
		} else {
			procs = e.neg[d]
		}
		for _, p := range procs {
			e.seqTrig[p] = true
			*e.seqPending = true
		}
	}
}

// compileOp lowers one non-branch instruction to a closure. Narrow ops
// fuse direct word-lane arithmetic with precomputed masks; anything
// wide (or rare enough not to be worth fusing) falls back to the
// interpreter's universal slow path.
func (e *Eval) compileOp(op *netlist.Op) func() {
	m := e.m
	if op.Wide {
		return func() { m.ExecSlowOp(op) }
	}
	u := e.u64
	slots := e.prog.Slots
	d := op.Dst
	mk := mask(op.Width)
	var s0, s1 int
	if len(op.Srcs) > 0 {
		s0 = op.Srcs[0]
	}
	if len(op.Srcs) > 1 {
		s1 = op.Srcs[1]
	}
	switch op.Kind {
	case netlist.OpConst:
		c := op.Const.Uint64() & mk
		if e.writes[d] == 1 && slots[d].Var == nil {
			// Single-writer constant temp: materialize once now; the
			// lane can never hold anything else at runtime.
			u[d] = c
			e.constSlot[d] = true
			return nil
		}
		return func() { u[d] = c }
	case netlist.OpMove:
		return func() { u[d] = u[s0] & mk }
	case netlist.OpAdd:
		return func() { u[d] = (u[s0] + u[s1]) & mk }
	case netlist.OpSub:
		return func() { u[d] = (u[s0] - u[s1]) & mk }
	case netlist.OpMul:
		return func() { u[d] = (u[s0] * u[s1]) & mk }
	case netlist.OpDiv:
		return func() {
			if dv := u[s1]; dv == 0 {
				u[d] = 0
			} else {
				u[d] = (u[s0] / dv) & mk
			}
		}
	case netlist.OpMod:
		return func() {
			if dv := u[s1]; dv == 0 {
				u[d] = 0
			} else {
				u[d] = (u[s0] % dv) & mk
			}
		}
	case netlist.OpPow:
		return func() { u[d] = powMod(u[s0], u[s1]) & mk }
	case netlist.OpAnd:
		return func() { u[d] = u[s0] & u[s1] }
	case netlist.OpOr:
		return func() { u[d] = u[s0] | u[s1] }
	case netlist.OpXor:
		return func() { u[d] = u[s0] ^ u[s1] }
	case netlist.OpXnor:
		return func() { u[d] = ^(u[s0] ^ u[s1]) & mk }
	case netlist.OpNot:
		return func() { u[d] = ^u[s0] & mk }
	case netlist.OpNeg:
		return func() { u[d] = (-u[s0]) & mk }
	case netlist.OpLogNot:
		return func() { u[d] = b2u(u[s0] == 0) }
	case netlist.OpRedAnd:
		full := mask(slots[s0].Width)
		return func() { u[d] = b2u(u[s0] == full) }
	case netlist.OpRedOr:
		return func() { u[d] = b2u(u[s0] != 0) }
	case netlist.OpRedXor:
		return func() { u[d] = uint64(mbits.OnesCount64(u[s0]) & 1) }
	case netlist.OpRedNand:
		full := mask(slots[s0].Width)
		return func() { u[d] = b2u(u[s0] != full) }
	case netlist.OpRedNor:
		return func() { u[d] = b2u(u[s0] == 0) }
	case netlist.OpRedXnor:
		return func() { u[d] = uint64(^mbits.OnesCount64(u[s0]) & 1) }
	case netlist.OpEq:
		return func() { u[d] = b2u(u[s0] == u[s1]) }
	case netlist.OpNe:
		return func() { u[d] = b2u(u[s0] != u[s1]) }
	case netlist.OpLt:
		return func() { u[d] = b2u(u[s0] < u[s1]) }
	case netlist.OpLe:
		return func() { u[d] = b2u(u[s0] <= u[s1]) }
	case netlist.OpGt:
		return func() { u[d] = b2u(u[s0] > u[s1]) }
	case netlist.OpGe:
		return func() { u[d] = b2u(u[s0] >= u[s1]) }
	case netlist.OpLogAnd:
		return func() { u[d] = b2u(u[s0] != 0 && u[s1] != 0) }
	case netlist.OpLogOr:
		return func() { u[d] = b2u(u[s0] != 0 || u[s1] != 0) }
	case netlist.OpShl:
		return func() {
			if sh := u[s1]; sh >= 64 {
				u[d] = 0
			} else {
				u[d] = (u[s0] << sh) & mk
			}
		}
	case netlist.OpShr:
		return func() {
			if sh := u[s1]; sh >= 64 {
				u[d] = 0
			} else {
				u[d] = (u[s0] & mk) >> sh
			}
		}
	case netlist.OpSlice:
		lo := op.Lo
		return func() { u[d] = (u[s0] >> lo) & mk }
	case netlist.OpBitSel:
		w := uint64(slots[s0].Width)
		return func() {
			if idx := u[s1]; idx >= w {
				u[d] = 0
			} else {
				u[d] = (u[s0] >> idx) & 1
			}
		}
	case netlist.OpConcat:
		srcs := append([]int(nil), op.Srcs...)
		ws := make([]int, len(srcs))
		ms := make([]uint64, len(srcs))
		for i, s := range srcs {
			ws[i] = slots[s].Width
			ms[i] = mask(ws[i])
		}
		if len(srcs) == 2 {
			a, bb := srcs[0], srcs[1]
			wb, ma, mb := ws[1], ms[0], ms[1]
			return func() { u[d] = ((u[a]&ma)<<wb | u[bb]&mb) & mk }
		}
		return func() {
			var acc uint64
			for i, s := range srcs {
				acc = acc<<ws[i] | (u[s] & ms[i])
			}
			u[d] = acc & mk
		}
	case netlist.OpRepl:
		w := slots[s0].Width
		wm := mask(w)
		cnt := op.N
		return func() {
			v := u[s0] & wm
			var acc uint64
			for i := 0; i < cnt; i++ {
				acc = acc<<w | v
			}
			u[d] = acc & mk
		}
	case netlist.OpMux:
		s2 := op.Srcs[2]
		return func() {
			if u[s0] != 0 {
				u[d] = u[s1] & mk
			} else {
				u[d] = u[s2] & mk
			}
		}
	case netlist.OpTime:
		return func() {
			if m.NowFn != nil {
				u[d] = m.NowFn()
			} else {
				u[d] = 0
			}
		}
	case netlist.OpMemRead:
		arr := e.m.Hooks().Mem64[op.Aux]
		bound := uint64(e.prog.Mems[op.Aux].Words)
		return func() {
			if addr := u[s0]; addr >= bound {
				u[d] = 0
			} else {
				u[d] = arr[addr]
			}
		}
	case netlist.OpWrite:
		dm := mask(slots[d].Width)
		return func() { e.writeSlot(d, u[s0]&dm) }
	case netlist.OpWriteRng:
		w := slots[d].Width
		hi, lo := op.Hi, op.Lo
		if hi >= w {
			hi = w - 1
		}
		if lo >= w || hi < lo {
			return func() {}
		}
		field := mask(hi-lo+1) << lo
		srcW := op.Width
		if srcW > hi-lo+1 {
			srcW = hi - lo + 1
		}
		sm := mask(srcW)
		return func() {
			nv := (u[d] &^ field) | ((u[s0] & sm) << lo)
			e.writeSlot(d, nv)
		}
	case netlist.OpWriteBit:
		w := uint64(slots[d].Width)
		return func() {
			if idx := u[s1]; idx < w {
				nv := u[d]&^(1<<idx) | (u[s0]&1)<<idx
				e.writeSlot(d, nv)
			}
		}
	case netlist.OpMemWrite:
		arr := e.m.Hooks().Mem64[op.Aux]
		bound := uint64(e.prog.Mems[op.Aux].Words)
		memMask := mask(e.prog.Mems[op.Aux].Width)
		dirty := e.combDirty
		aux := op.Aux
		return func() {
			addr := u[s1]
			if addr >= bound {
				return
			}
			nv := u[s0] & memMask
			if arr[addr] != nv {
				arr[addr] = nv
				if units := e.memUnits[aux]; len(units) != 0 {
					e.markUnits(units)
					*dirty = true
				}
			}
		}
	case netlist.OpWriteNB:
		if e.nbOK[d] {
			on, val := e.nbOn, e.nbVal
			return func() {
				if !on[d] {
					on[d] = true
					e.nbDirty = append(e.nbDirty, d)
				}
				val[d] = u[s0]
			}
		}
		return func() { m.PendWriteNB(d, u[s0]) }
	case netlist.OpWriteRngNB:
		hi, lo := op.Hi, op.Lo
		return func() { m.PendWriteRngNB(d, hi, lo, u[s0]) }
	case netlist.OpWriteBitNB:
		w := uint64(slots[d].Width)
		return func() {
			if idx := u[s1]; idx < w {
				m.PendWriteRngNB(d, int(idx), int(idx), u[s0])
			}
		}
	case netlist.OpMemWriteNB:
		aux := op.Aux
		return func() { m.PendMemWriteNB(aux, int(u[s1]), u[s0]) }
	default:
		// OpDisplay, OpFinish, and anything new: interpreter slow path.
		return func() { m.ExecSlowOp(op) }
	}
}
