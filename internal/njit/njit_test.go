package njit

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/fault"
	"cascade/internal/netlist"
	"cascade/internal/verilog"
	"cascade/internal/workloads/nw"
	"cascade/internal/workloads/pow"
	"cascade/internal/workloads/regexgen"
)

func compileProg(tb testing.TB, src string) (*netlist.Program, *elab.Flat) {
	tb.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		tb.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		tb.Fatalf("elaborate: %v", err)
	}
	prog, err := netlist.Compile(f)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return prog, f
}

type ioSink struct {
	sb       strings.Builder
	finished bool
}

func (s *ioSink) Display(text string, newline bool) {
	s.sb.WriteString(text)
	if newline {
		s.sb.WriteString("\n")
	}
}
func (s *ioSink) Finish(code int) { s.finished = true }

// dual drives the interpreter machine and the native engine in lock
// step on the same program.
type dual struct {
	prog *netlist.Program
	f    *elab.Flat
	m    *netlist.Machine
	e    *Engine
	mOut strings.Builder
	eOut ioSink
}

func newDualNative(tb testing.TB, src string) *dual {
	tb.Helper()
	prog, f := compileProg(tb, src)
	d := &dual{prog: prog, f: f, m: netlist.NewMachine(prog)}
	d.e = New("dut", prog, &d.eOut, nil, nil)
	d.settle()
	return d
}

func (d *dual) drainMachine() {
	for _, ev := range d.m.DrainEvents() {
		if ev.Finish {
			continue
		}
		d.mOut.WriteString(ev.Text)
		if ev.Newline {
			d.mOut.WriteString("\n")
		}
	}
}

func (d *dual) settle() {
	for d.m.HasActive() || d.m.HasUpdates() {
		d.m.Evaluate()
		if d.m.HasUpdates() {
			d.m.Update()
		}
	}
	d.m.EndStep()
	d.drainMachine()
	for d.e.ThereAreEvals() || d.e.ThereAreUpdates() {
		d.e.Evaluate()
		if d.e.ThereAreUpdates() {
			d.e.Update()
		}
	}
	d.e.EndStep()
}

func (d *dual) setInput(name string, v *bits.Vector) {
	d.m.SetInput(d.f.VarNamed(name), v)
	d.e.Read(engine.Event{Var: name, Val: v})
}

func (d *dual) check(t *testing.T, context string) {
	t.Helper()
	ms := d.m.GetState().Signature()
	es := d.e.GetState().Signature()
	if ms != es {
		t.Fatalf("%s: state divergence\ninterp: %s\nnative: %s", context, ms, es)
	}
	if d.mOut.String() != d.eOut.sb.String() {
		t.Fatalf("%s: display divergence\ninterp: %q\nnative: %q", context, d.mOut.String(), d.eOut.sb.String())
	}
}

func (d *dual) tick() {
	d.setInput("clk", bits.FromUint64(1, 1))
	d.settle()
	d.setInput("clk", bits.FromUint64(1, 0))
	d.settle()
}

// --- Differential correctness -----------------------------------------

func TestNativeCounter(t *testing.T) {
	d := newDualNative(t, `
module M(input wire clk, output reg [7:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	for i := 0; i < 20; i++ {
		d.tick()
	}
	d.check(t, "counter")
	if got := d.e.GetState().Scalars["cnt"].Uint64(); got != 20 {
		t.Fatalf("native counter = %d, want 20", got)
	}
}

func TestNativeControlFlowAndMemory(t *testing.T) {
	d := newDualNative(t, `
module M(input wire clk, input wire [7:0] a);
  reg [7:0] acc = 0;
  reg [7:0] tbl [0:15];
  reg [3:0] wp = 0;
  integer i;
  wire [7:0] fold;
  assign fold = (a > 8'd100) ? (a - 8'd100) : (a ^ acc);
  always @(posedge clk) begin
    acc <= 0;
    for (i = 0; i < 4; i = i + 1)
      acc <= acc + tbl[i];
    tbl[wp] <= fold;
    wp <= wp + 1;
  end
endmodule`)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		d.setInput("a", bits.FromUint64(8, r.Uint64()))
		d.settle()
		d.tick()
		d.check(t, fmt.Sprintf("tick %d", i))
	}
}

func TestNativeWideFallback(t *testing.T) {
	d := newDualNative(t, `
module M(input wire clk, input wire [7:0] a);
  reg [99:0] acc = 100'h1;
  reg [127:0] sh = 0;
  wire [99:0] nxt;
  assign nxt = acc * {92'b0, a} + 100'd7;
  always @(posedge clk) begin
    acc <= nxt;
    sh <= {sh[119:0], a};
  end
endmodule`)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		d.setInput("a", bits.FromUint64(8, r.Uint64()))
		d.settle()
		d.tick()
	}
	d.check(t, "wide fallback")
}

func TestNativeDisplayAndFinish(t *testing.T) {
	d := newDualNative(t, `
module M(input wire clk);
  reg [3:0] n = 0;
  always @(posedge clk) begin
    n <= n + 1;
    $display("n=%d", n);
    if (n == 4'd9) $finish;
  end
endmodule`)
	for i := 0; i < 12; i++ {
		d.tick()
	}
	d.check(t, "display")
	if !d.e.Finished() || !d.eOut.finished {
		t.Fatal("native engine missed $finish")
	}
}

// Random synchronous programs: the native tier must agree with the
// interpreter on every observable state and output stream. Mirrors the
// netlist package's interpreter-vs-reference property, one tier up.
func TestNativeDifferentialRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		src := randProgram(r)
		d := newDualNative(t, src)
		for i := 0; i < 10; i++ {
			d.setInput("a", bits.FromUint64(8, r.Uint64()))
			d.setInput("b", bits.FromUint64(8, r.Uint64()))
			d.settle()
			d.tick()
		}
		ms := d.m.GetState().Signature()
		es := d.e.GetState().Signature()
		if ms != es {
			t.Fatalf("trial %d: divergence on program:\n%s\ninterp: %s\nnative: %s", trial, src, ms, es)
		}
	}
}

// randProgram emits a random synchronous module exercising the fused
// narrow ops, wide fallbacks, and mixed-width writes.
func randProgram(r *rand.Rand) string {
	var sb strings.Builder
	var expr func(depth int, reads []string) string
	expr = func(depth int, reads []string) string {
		if depth <= 0 || r.Intn(4) == 0 {
			if r.Intn(3) == 0 {
				return fmt.Sprintf("%d'd%d", 1+r.Intn(14), r.Intn(1<<12))
			}
			return reads[r.Intn(len(reads))]
		}
		a, b := expr(depth-1, reads), expr(depth-1, reads)
		switch r.Intn(14) {
		case 0:
			return fmt.Sprintf("(%s + %s)", a, b)
		case 1:
			return fmt.Sprintf("(%s - %s)", a, b)
		case 2:
			return fmt.Sprintf("(%s * %s)", a, b)
		case 3:
			return fmt.Sprintf("(%s & %s)", a, b)
		case 4:
			return fmt.Sprintf("(%s | %s)", a, b)
		case 5:
			return fmt.Sprintf("(%s ^ %s)", a, b)
		case 6:
			return fmt.Sprintf("(%s >> %d)", a, r.Intn(10))
		case 7:
			return fmt.Sprintf("(%s << %d)", a, r.Intn(10))
		case 8:
			return fmt.Sprintf("(%s ? %s : %s)", expr(depth-1, reads), a, b)
		case 9:
			return fmt.Sprintf("{%s, %s}", a, b)
		case 10:
			return fmt.Sprintf("(%s < %s)", a, b)
		case 11:
			return fmt.Sprintf("(%s == %s)", a, b)
		case 12:
			return fmt.Sprintf("(~%s)", a)
		default:
			return fmt.Sprintf("(%s %% %s)", a, b)
		}
	}
	fmt.Fprintf(&sb, "module M(input wire clk, input wire [7:0] a, input wire [7:0] b);\n")
	reads := []string{"a", "b"}
	nregs := 2 + r.Intn(3)
	for i := 0; i < nregs; i++ {
		w := []int{1, 4, 8, 16, 32, 48, 80}[r.Intn(7)]
		fmt.Fprintf(&sb, "  reg [%d:0] r%d = %d;\n", w-1, i, r.Intn(100))
		reads = append(reads, fmt.Sprintf("r%d", i))
	}
	nwires := 1 + r.Intn(4)
	for i := 0; i < nwires; i++ {
		w := []int{1, 8, 13, 65}[r.Intn(4)]
		fmt.Fprintf(&sb, "  wire [%d:0] w%d;\n", w-1, i)
	}
	for i := 0; i < nwires; i++ {
		fmt.Fprintf(&sb, "  assign w%d = %s;\n", i, expr(3, reads))
		reads = append(reads, fmt.Sprintf("w%d", i))
	}
	for i := 0; i < nregs; i++ {
		fmt.Fprintf(&sb, "  always @(posedge clk)\n")
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "    if (%s)\n      r%d <= %s;\n    else\n      r%d <= %s;\n",
				expr(2, reads), i, expr(3, reads), i, expr(3, reads))
		} else {
			fmt.Fprintf(&sb, "    r%d <= %s;\n", i, expr(3, reads))
		}
	}
	fmt.Fprintf(&sb, "endmodule\n")
	return sb.String()
}

// --- Promotion / demotion state handoff -------------------------------

// Interpreter -> native -> interpreter migration mid-run must be
// invisible: the ladder the runtime walks, exercised at the engine
// level.
func TestNativePromotionDemotionMidRun(t *testing.T) {
	src := `
module M(input wire clk, input wire [3:0] d);
  reg [15:0] lfsr = 16'hbeef;
  reg [15:0] hist [0:7];
  reg [2:0] wp = 0;
  wire fb;
  assign fb = lfsr[0] ^ lfsr[2] ^ lfsr[3] ^ lfsr[5];
  always @(posedge clk) begin
    lfsr <= {fb, lfsr[15:1]} ^ {12'b0, d};
    hist[wp] <= lfsr;
    wp <= wp + 1;
  end
endmodule`
	prog, f := compileProg(t, src)
	m := netlist.NewMachine(prog)
	settleM := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
		m.EndStep()
	}
	r := rand.New(rand.NewSource(23))
	settleM()
	for i := 0; i < 8; i++ {
		m.SetInput(f.VarNamed("d"), bits.FromUint64(4, r.Uint64()))
		settleM()
		m.SetInput(f.VarNamed("clk"), bits.FromUint64(1, 1))
		settleM()
		m.SetInput(f.VarNamed("clk"), bits.FromUint64(1, 0))
		settleM()
	}
	// Promote: native engine inherits the interpreter's state.
	e := New("dut", prog, nil, nil, nil)
	e.SetState(m.GetState())
	settleE := func() {
		for e.ThereAreEvals() || e.ThereAreUpdates() {
			e.Evaluate()
			if e.ThereAreUpdates() {
				e.Update()
			}
		}
		e.EndStep()
	}
	settleE()
	if m.GetState().Signature() != e.GetState().Signature() {
		t.Fatal("state not preserved across interpreter->native promotion")
	}
	// Run both 8 more ticks in lock step.
	for i := 0; i < 8; i++ {
		in := bits.FromUint64(4, r.Uint64())
		m.SetInput(f.VarNamed("d"), in)
		e.Read(engine.Event{Var: "d", Val: in})
		settleM()
		settleE()
		for _, c := range []uint64{1, 0} {
			cv := bits.FromUint64(1, c)
			m.SetInput(f.VarNamed("clk"), cv)
			e.Read(engine.Event{Var: "clk", Val: cv})
			settleM()
			settleE()
		}
		if m.GetState().Signature() != e.GetState().Signature() {
			t.Fatalf("divergence after promotion at tick %d", i)
		}
	}
	// Demote: a fresh interpreter inherits the native state.
	m2 := netlist.NewMachine(prog)
	m2.SetState(e.GetState())
	for m2.HasActive() || m2.HasUpdates() {
		m2.Evaluate()
		if m2.HasUpdates() {
			m2.Update()
		}
	}
	if m2.GetState().Signature() != e.GetState().Signature() {
		t.Fatal("state not preserved across native->interpreter demotion")
	}
}

// A seeded region fault on the native site latches exactly once and is
// namespaced away from the fabric's fault timeline.
func TestNativeFaultLatch(t *testing.T) {
	prog, _ := compileProg(t, `
module M(input wire clk, output reg led);
  always @(posedge clk) led <= ~led;
endmodule`)
	inj := fault.New(fault.Config{Seed: 1, RegionFault: 1.0})
	e := New("dut", prog, nil, inj, nil)
	e.EndStep()
	if e.Fault() == nil {
		t.Fatal("native engine did not latch a certain region fault")
	}
	first := e.Fault()
	e.EndStep()
	if e.Fault() != first {
		t.Fatal("fault latch replaced the first fault")
	}
	// A fault-free injector never trips.
	e2 := New("dut", prog, nil, fault.New(fault.Config{Seed: 1}), nil)
	for i := 0; i < 50; i++ {
		e2.EndStep()
	}
	if e2.Fault() != nil {
		t.Fatalf("unexpected fault: %v", e2.Fault())
	}
}

// Usage is reported in native ops, not interpreter ops.
func TestNativeUsageDelta(t *testing.T) {
	d := newDualNative(t, `
module M(input wire clk, output reg [7:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	d.e.UsageDelta() // reset after initial settle
	for i := 0; i < 5; i++ {
		d.tick()
	}
	u := d.e.UsageDelta()
	if u.NativeOps == 0 {
		t.Fatal("native engine reported no NativeOps")
	}
	if u.Ops != 0 || u.Cycles != 0 || u.Msgs != 0 {
		t.Fatalf("native engine billed foreign units: %+v", u)
	}
	if u2 := d.e.UsageDelta(); u2.NativeOps != 0 {
		t.Fatalf("UsageDelta did not reset: %+v", u2)
	}
}

// The benchmark workloads themselves must agree across tiers: drive
// interpreter and native engines in lock step over each generated
// module and compare full state signatures.
func TestNativeWorkloadEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rx, _, err := regexgen.Generate("(ab|cd)+e")
	if err != nil {
		t.Fatalf("regex generate: %v", err)
	}
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"pow", pow.Generate(pow.DefaultConfig())},
		{"regexstream", rx},
		{"nw", nw.Generate(nw.DefaultConfig())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := newDualNative(t, tc.src)
			inputs := d.f.Inputs
			for i := 0; i < 200; i++ {
				for _, v := range inputs {
					if v.Name == "clk" {
						continue
					}
					val := bits.FromUint64(v.Width, r.Uint64())
					d.setInput(v.Name, val)
				}
				d.settle()
				d.tick()
				if i%50 == 0 {
					d.check(t, fmt.Sprintf("%s tick %d", tc.name, i))
				}
			}
			d.check(t, tc.name+" final")
		})
	}
}

// --- Workload benchmarks (the >=2x gate runs in scripts/native_smoke.sh) ---

func benchTicks(b *testing.B, src string, native bool) {
	prog, f := compileProg(b, src)
	clk := f.VarNamed("clk")
	if clk == nil {
		b.Fatal("workload has no clk input")
	}
	m := netlist.NewMachine(prog)
	var ev *Eval
	if native {
		ev = Compile(m)
	}
	hi, lo := bits.FromUint64(1, 1), bits.FromUint64(1, 0)
	settle := func() {
		if native {
			for ev.HasActive() || ev.HasUpdates() {
				ev.Evaluate()
				if ev.HasUpdates() {
					ev.Update()
				}
			}
		} else {
			for m.HasActive() || m.HasUpdates() {
				m.Evaluate()
				if m.HasUpdates() {
					m.Update()
				}
			}
		}
		m.DrainEvents()
	}
	settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetInput(clk, hi)
		settle()
		m.SetInput(clk, lo)
		settle()
	}
}

func powSrc(b *testing.B) string { return pow.Generate(pow.DefaultConfig()) }

func regexStreamSrc(b *testing.B) string {
	src, _, err := regexgen.Generate("(ab|cd)+e")
	if err != nil {
		b.Fatalf("regex generate: %v", err)
	}
	return src
}

func nwSrc(b *testing.B) string { return nw.Generate(nw.DefaultConfig()) }

func BenchmarkPowInterpreterTick(b *testing.B)   { benchTicks(b, powSrc(b), false) }
func BenchmarkPowNativeTick(b *testing.B)        { benchTicks(b, powSrc(b), true) }
func BenchmarkRegexInterpreterTick(b *testing.B) { benchTicks(b, regexStreamSrc(b), false) }
func BenchmarkRegexNativeTick(b *testing.B)      { benchTicks(b, regexStreamSrc(b), true) }
func BenchmarkNWInterpreterTick(b *testing.B)    { benchTicks(b, nwSrc(b), false) }
func BenchmarkNWNativeTick(b *testing.B)         { benchTicks(b, nwSrc(b), true) }
