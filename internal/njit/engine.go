package njit

import (
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/fault"
	"cascade/internal/netlist"
	"cascade/internal/sim"
)

// Engine wraps a compiled native evaluator behind the engine ABI, so
// the runtime's JIT machinery hot-swaps it exactly like a bitstream:
// interpreter -> native is a promotion (state handoff, same as
// software -> hardware), and a seeded region fault demotes it back. It
// reports engine.Software — the native tier is still the CPU — so the
// runtime's phase logic (software/inlined until the fabric is ready)
// is untouched by its presence.
type Engine struct {
	name string
	flat *elab.Flat
	m    *netlist.Machine
	ev   *Eval
	io   engine.IOHandler

	// Fault handling mirrors hweng: one region-integrity trial per step
	// boundary, first hit latched, runtime polls Fault() and evicts.
	// The site name is namespaced ("native:"+name) so the native tier
	// rolls its own fault timeline and cannot consume trials scheduled
	// for the fabric engine of the same subprogram.
	flt    *fault.Injector
	flterr error

	lastOut  map[string]string
	finished bool
	lastMOps uint64
}

// New compiles prog for the native tier. now supplies $time; flt may be
// nil (or fault-free) outside fault-injection runs.
func New(name string, prog *netlist.Program, io engine.IOHandler, flt *fault.Injector, now func() uint64) *Engine {
	m := netlist.NewMachine(prog)
	m.NowFn = now
	return &Engine{
		name:    name,
		flat:    prog.Flat,
		m:       m,
		ev:      Compile(m),
		io:      io,
		flt:     flt,
		lastOut: map[string]string{},
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Loc implements engine.Engine: the native tier runs in software.
func (e *Engine) Loc() engine.Location { return engine.Software }

// Flat exposes the engine's elaborated subprogram.
func (e *Engine) Flat() *elab.Flat { return e.flat }

// Finished reports whether $finish has executed.
func (e *Engine) Finished() bool { return e.finished }

// Fault returns the first injected native-tier fault observed by this
// engine (nil while healthy). The runtime polls it between time steps
// and responds with a native -> interpreter demotion.
func (e *Engine) Fault() error { return e.flterr }

func (e *Engine) checkRegion() {
	if e.flterr != nil {
		return
	}
	if err := e.flt.Region("native:" + e.name); err != nil {
		e.flterr = err
	}
}

// GetState implements engine.Engine (no bus billing: same heap).
func (e *Engine) GetState() *sim.State { return e.m.GetState() }

// SetState implements engine.Engine. The wholesale state replacement
// invalidates the compiled evaluator's sensitivity bookkeeping.
func (e *Engine) SetState(st *sim.State) {
	e.m.SetState(st)
	e.ev.InvalidateAll()
}

// Read implements engine.Engine.
func (e *Engine) Read(ev engine.Event) {
	if v := e.flat.VarNamed(ev.Var); v != nil {
		e.m.SetInput(v, ev.Val)
	}
}

// DrainWrites implements engine.Engine: change-tracked output events.
func (e *Engine) DrainWrites() []engine.Event {
	var evs []engine.Event
	for _, v := range e.flat.Outputs {
		cur := e.m.ReadVar(v)
		sig := cur.String()
		if last, seen := e.lastOut[v.Name]; !seen || last != sig {
			e.lastOut[v.Name] = sig
			evs = append(evs, engine.Event{Var: v.Name, Val: cur})
		}
	}
	return evs
}

// ThereAreEvals implements engine.Engine.
func (e *Engine) ThereAreEvals() bool { return e.ev.HasActive() }

// Evaluate implements engine.Engine: one compiled EvalAll batch.
func (e *Engine) Evaluate() {
	e.ev.Evaluate()
	e.drainMachineEvents()
}

// ThereAreUpdates implements engine.Engine.
func (e *Engine) ThereAreUpdates() bool { return e.ev.HasUpdates() }

// Update implements engine.Engine: commits the machine's pending queue
// plus the native tier's coalesced non-blocking shadow buffer.
func (e *Engine) Update() { e.ev.Update() }

// EndStep implements engine.Engine. The step boundary is also where the
// native tier's integrity is checked (a corrupted code cache surfaces
// here, the software analogue of a lost bitstream region).
func (e *Engine) EndStep() {
	e.m.EndStep()
	e.drainMachineEvents()
	e.checkRegion()
}

// End implements engine.Engine.
func (e *Engine) End() {}

// UsageDelta implements engine.UsageReporter: compiled instructions are
// billed at the native rate. Work the wrapped machine did on the slow
// path (monitor units at end-of-step) is folded in at the same rate —
// it executes inside the native engine's process budget.
func (e *Engine) UsageDelta() engine.Usage {
	d := e.ev.NativeOpsDelta()
	mo := e.m.Ops
	d += mo - e.lastMOps
	e.lastMOps = mo
	return engine.Usage{NativeOps: d}
}

func (e *Engine) drainMachineEvents() {
	for _, ev := range e.m.DrainEvents() {
		if ev.Finish {
			e.finished = true
			if e.io != nil {
				e.io.Finish(0)
			}
			continue
		}
		if e.io != nil {
			e.io.Display(ev.Text, ev.Newline)
		}
	}
}
