package hyper

import (
	"strings"
	"sync"
	"testing"

	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/runtime"
)

func testHV(t *testing.T, capacity, quota int, opts ...Option) *Hypervisor {
	t.Helper()
	hv, err := New(append([]Option{
		WithDevice(fpga.NewDevice(capacity, isoClockHz)),
		WithToolchainOptions(isoToolchainOptions()),
		WithQuantum(isoQuantum),
		WithDefaultQuota(quota),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hv.Close() })
	return hv
}

func testSession(t *testing.T, hv *Hypervisor, opts ...SessionOption) *Session {
	t.Helper()
	s, err := hv.NewSession(append([]SessionOption{WithRuntime(runtime.Options{
		View:             &runtime.BufView{Quiet: true},
		Observer:         pinnedObserver(),
		Parallelism:      2,
		OpenLoopTargetPs: isoOLTarget,
	})}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Three 6k-LE tenants over a 10k fabric: at most one region fits at a
// time, so completing all three proves the residency queue actually
// rotates the fabric instead of deadlocking or starving a waiter.
func TestTimeMultiplexedResidency(t *testing.T) {
	hv := testHV(t, 10_000, 6_000)
	const n = 3
	sessions := make([]*Session, n)
	for i := range sessions {
		sessions[i] = testSession(t, hv)
	}
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			s.MustEval(runtime.DefaultPrelude)
			s.MustEval(isoProgram(i))
			s.RunTicks(6 * isoQuantum)
		}(i, s)
	}
	wg.Wait()
	for i, s := range sessions {
		info := s.Info()
		// Open-loop bursts may overshoot a chunk's goal (exactly as a
		// solo RunTicks does), so >= is the contract.
		if info.Ticks < 6*isoQuantum {
			t.Errorf("session %d ran %d ticks, want >= %d", i, info.Ticks, 6*isoQuantum)
		}
		if info.Quanta < 6 {
			t.Errorf("session %d consumed %d quanta, want >= 6", i, info.Quanta)
		}
	}
	if used := hv.Device().Used(); used > hv.Device().Capacity() {
		t.Fatalf("shared fabric over-committed: %d/%d LEs", used, hv.Device().Capacity())
	}
}

// An uncontended session keeps its region between quanta (no
// release/re-place churn), but a closing session always frees fabric so
// a big newcomer can place.
func TestCloseFreesFabric(t *testing.T) {
	hv := testHV(t, 10_000, 8_000)
	first := testSession(t, hv)
	first.MustEval(runtime.DefaultPrelude)
	first.MustEval(isoProgram(0))
	first.RunTicks(isoQuantum)
	if info := first.Info(); !info.Resident {
		t.Fatal("uncontended session should stay resident between quanta")
	}
	if err := first.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	second := testSession(t, hv, WithQuota(9_000))
	second.MustEval(runtime.DefaultPrelude)
	second.MustEval(isoProgram(1))
	second.RunTicks(isoQuantum) // would block forever if the region leaked
	if got := second.Ticks(); got < isoQuantum {
		t.Fatalf("second session ran %d ticks, want >= %d", got, isoQuantum)
	}
}

func TestSessionValidation(t *testing.T) {
	hv := testHV(t, 10_000, 4_000)
	if _, err := hv.NewSession(WithQuota(20_000)); err == nil {
		t.Error("quota beyond fabric capacity must be rejected")
	}
	s := testSession(t, hv, WithID("dup"))
	if _, err := hv.NewSession(WithID("dup")); err == nil {
		t.Error("duplicate session ID must be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close must be a no-op, got %v", err)
	}
	if err := s.Eval("reg x = 0;"); err != ErrClosed {
		t.Errorf("eval on closed session: got %v, want ErrClosed", err)
	}
	hv.Close()
	if _, err := hv.NewSession(); err != ErrClosed {
		t.Errorf("new session on closed hypervisor: got %v, want ErrClosed", err)
	}
}

func TestFairShareRegistration(t *testing.T) {
	hv := testHV(t, 20_000, 4_000, WithDefaultCompileShare(2))
	a := testSession(t, hv, WithID("a"))
	b := testSession(t, hv, WithID("b"), WithCompileShare(1))
	defer a.Close()
	defer b.Close()
	if got := hv.Toolchain().TenantShare("a"); got != 2 {
		t.Errorf("tenant a share = %d, want default 2", got)
	}
	if got := hv.Toolchain().TenantShare("b"); got != 1 {
		t.Errorf("tenant b share = %d, want 1", got)
	}
	infos := hv.SessionInfos()
	if len(infos) != 2 || infos[0].ID != "a" || infos[1].ID != "b" {
		t.Fatalf("SessionInfos = %+v, want [a b]", infos)
	}
	if infos[1].CompileShare != 1 || infos[0].QuotaLEs != 4_000 {
		t.Errorf("info fields wrong: %+v", infos)
	}
}

// Hypervisor metrics: the active-session gauge tracks lifecycle, and
// per-tenant residency/quanta series render as labeled Prometheus
// samples under their family names.
func TestHypervisorMetrics(t *testing.T) {
	obs := obsv.New(obsv.Options{})
	hv := testHV(t, 20_000, 4_000, WithObserver(obs))
	s := testSession(t, hv, WithID("m0"))
	s.MustEval(runtime.DefaultPrelude)
	s.MustEval(isoProgram(0))
	s.RunTicks(isoQuantum)

	text := obs.MetricsText()
	for _, want := range []string{
		"cascade_sessions_active 1",
		`cascade_tenant_resident{tenant="m0"} 1`,
		`cascade_tenant_quanta_total{tenant="m0"} 1`,
		"# TYPE cascade_tenant_resident gauge",
		"# TYPE cascade_tenant_quanta_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	text = obs.MetricsText()
	if !strings.Contains(text, "cascade_sessions_active 0") {
		t.Errorf("active gauge not decremented:\n%s", text)
	}
	if !strings.Contains(text, `cascade_tenant_resident{tenant="m0"} 0`) {
		t.Errorf("residency gauge not cleared on close:\n%s", text)
	}
	// Reusing the ID must reuse the cached series, not panic on a
	// duplicate registration.
	s2 := testSession(t, hv, WithID("m0"))
	s2.MustEval(runtime.DefaultPrelude)
	s2.MustEval(isoProgram(0))
	s2.RunTicks(isoQuantum)
	if got := s2.Info().Quanta; got != 1 {
		t.Errorf("reused session quanta = %d, want 1", got)
	}
}

// Per-tenant stats surface through Session.Stats: tenant ID, region
// size, and a compile mirror that counts only this tenant's jobs.
func TestSessionStatsTenantScoped(t *testing.T) {
	hv := testHV(t, 20_000, 5_000)
	a := testSession(t, hv, WithID("a"))
	b := testSession(t, hv, WithID("b"))
	a.MustEval(runtime.DefaultPrelude)
	a.MustEval(isoProgram(0))
	a.RunTicks(2 * isoQuantum)
	st := a.Stats()
	if st.Tenant != "a" || st.RegionLEs != 5_000 {
		t.Errorf("tenant stats fields: %q region=%d, want a/5000", st.Tenant, st.RegionLEs)
	}
	if st.Compile.Submitted == 0 {
		t.Error("tenant a submitted no compiles?")
	}
	if got := b.Stats().Compile.Submitted; got != 0 {
		t.Errorf("tenant b inherited %d submissions from a", got)
	}
	if !strings.Contains(st.Summary(), "tenant[a region=5000LEs]") {
		t.Errorf("Summary missing tenant segment: %s", st.Summary())
	}
}
