package hyper

import (
	"context"
	"fmt"

	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/runtime"
	"sync"
)

// SessionOptions configures one tenant session.
type SessionOptions struct {
	// ID names the tenant (must be unique among live sessions; default
	// "s1", "s2", ...). It is the toolchain tenant ID, the shared-fabric
	// region name, and the metric label.
	ID string
	// QuotaLEs is the session's region size on the shared fabric — the
	// capacity of the private device its designs place, fit, and close
	// timing against. Default: the hypervisor's DefaultQuotaLEs.
	QuotaLEs int
	// CompileShare bounds how many compile workers the session may
	// occupy concurrently (its fair share of the shared pool). Default:
	// the hypervisor's DefaultCompileShare; 0 means global pool only.
	CompileShare int
	// Runtime seeds the session runtime's options: World, View,
	// Features, Model, Parallelism, Observer, Injector, and
	// OpenLoopTargetPs pass through; Device, Toolchain, and Tenant are
	// owned by the hypervisor and overwritten.
	Runtime runtime.Options
}

// SessionOption configures a session (Hypervisor.NewSession).
type SessionOption func(*SessionOptions)

// WithID names the session's tenant ID.
func WithID(id string) SessionOption {
	return func(o *SessionOptions) { o.ID = id }
}

// WithQuota sets the session's fabric region size in logic elements.
func WithQuota(les int) SessionOption {
	return func(o *SessionOptions) { o.QuotaLEs = les }
}

// WithCompileShare bounds the session's concurrent compile workers.
func WithCompileShare(n int) SessionOption {
	return func(o *SessionOptions) { o.CompileShare = n }
}

// WithRuntime seeds the session runtime's options (view, features,
// observer, injector, ...); the hypervisor still owns device, toolchain,
// and tenant identity.
func WithRuntime(ro runtime.Options) SessionOption {
	return func(o *SessionOptions) { o.Runtime = ro }
}

// WithView directs the session's program output to v.
func WithView(v runtime.View) SessionOption {
	return func(o *SessionOptions) { o.Runtime.View = v }
}

// Session is one tenant: a full Runtime over a private fabric
// partition, scheduled onto the shared device by the hypervisor. The
// Eval/RunTicks/Stats/Snapshot surface mirrors Runtime; RunTicks is
// chunked into residency quanta so tenants whose regions do not fit
// simultaneously time-multiplex the fabric — in wall time only, never
// in virtual time.
type Session struct {
	hv    *Hypervisor
	id    string
	quota int
	share int
	rt    *runtime.Runtime

	// opMu serializes the session's public entry points (one driver
	// goroutine per session is the intended shape; opMu makes stray
	// concurrent use safe rather than fast).
	opMu sync.Mutex

	// Scheduling state, guarded by hv.mu.
	resident bool
	stepping bool
	closed   bool
	quanta   uint64

	residentG *obsv.Gauge
	quantaC   *obsv.Counter
}

// NewSession carves a region out of the shared fabric and boots a
// tenant runtime over it. The session starts non-resident; its first
// RunTicks quantum queues for fabric residency.
func (hv *Hypervisor) NewSession(opts ...SessionOption) (*Session, error) {
	var so SessionOptions
	for _, opt := range opts {
		opt(&so)
	}
	if so.QuotaLEs == 0 {
		so.QuotaLEs = hv.opts.DefaultQuotaLEs
	}
	if so.CompileShare == 0 {
		so.CompileShare = hv.opts.DefaultCompileShare
	}
	if so.QuotaLEs <= 0 || so.QuotaLEs > hv.dev.Capacity() {
		return nil, fmt.Errorf("hyper: session quota %d LEs outside shared fabric capacity %d",
			so.QuotaLEs, hv.dev.Capacity())
	}

	hv.mu.Lock()
	if hv.closed {
		hv.mu.Unlock()
		return nil, ErrClosed
	}
	if so.ID == "" {
		hv.nextID++
		so.ID = fmt.Sprintf("s%d", hv.nextID)
	}
	if _, dup := hv.sessions[so.ID]; dup {
		hv.mu.Unlock()
		return nil, fmt.Errorf("hyper: session %q already exists", so.ID)
	}
	s := &Session{hv: hv, id: so.ID, quota: so.QuotaLEs, share: so.CompileShare}
	s.residentG, s.quantaC = hv.metricsFor(so.ID)
	hv.sessions[so.ID] = s
	hv.active.Set(int64(len(hv.sessions)))
	hv.mu.Unlock()

	// The tenant's private device is its region: placement, fit, and
	// timing close against the partition, blind to neighbours.
	ro := so.Runtime
	ro.Device = fpga.NewDevice(so.QuotaLEs, hv.dev.ClockHz())
	ro.Toolchain = hv.tc
	ro.Tenant = so.ID
	hv.tc.RegisterTenant(so.ID, so.CompileShare, ro.Device)
	s.rt = runtime.New(ro)
	return s, nil
}

// ID returns the session's tenant ID.
func (s *Session) ID() string { return s.id }

// QuotaLEs returns the session's region size.
func (s *Session) QuotaLEs() int { return s.quota }

// Runtime exposes the underlying tenant runtime for read-mostly access
// (World, Observer, Clock). Driving it directly bypasses the residency
// scheduler; use the Session surface to step.
func (s *Session) Runtime() *runtime.Runtime { return s.rt }

// Info snapshots the session's scheduling state.
func (s *Session) Info() SessionInfo {
	s.hv.mu.Lock()
	resident, quanta := s.resident, s.quanta
	s.hv.mu.Unlock()
	return SessionInfo{
		ID:           s.id,
		Phase:        s.rt.Phase(),
		QuotaLEs:     s.quota,
		Resident:     resident,
		CompileShare: s.share,
		Quanta:       quanta,
		Ticks:        s.rt.Ticks(),
	}
}

// region is the session's reservation name on the shared fabric.
func (s *Session) region() string { return "tenant:" + s.id }

// acquire blocks until the session's region is placed on the shared
// fabric (FIFO among waiters) and marks the session stepping. A session
// that is still resident from its previous quantum (nobody wanted the
// fabric) proceeds immediately.
func (s *Session) acquire(ctx context.Context) error {
	hv := s.hv
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.resident {
		s.stepping = true
		s.quanta++
		s.quantaC.Inc()
		return nil
	}
	hv.queue = append(hv.queue, s)
	// A cancelled context must wake this waiter out of cond.Wait.
	stop := context.AfterFunc(ctx, func() {
		hv.mu.Lock()
		hv.cond.Broadcast()
		hv.mu.Unlock()
	})
	defer stop()
	for {
		if s.closed {
			hv.removeWaiterLocked(s)
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			hv.removeWaiterLocked(s)
			return err
		}
		if len(hv.queue) > 0 && hv.queue[0] == s {
			// Only the head may place — FIFO admission keeps tenants
			// starvation-free. Idle residents are reaped first: parked
			// sessions must not pin fabric the head is waiting for.
			hv.reapIdleLocked()
			if err := hv.dev.Place(s.region(), s.quota); err == nil {
				hv.queue = hv.queue[1:]
				s.resident = true
				s.stepping = true
				s.quanta++
				s.residentG.Set(1)
				s.quantaC.Inc()
				// The next waiter may fit alongside us (spatial
				// sharing); give it a chance to place immediately.
				hv.cond.Broadcast()
				return nil
			}
		}
		hv.cond.Wait()
	}
}

// yield ends a quantum: the session stops stepping, and if other
// tenants are waiting for fabric it releases its region (virtual
// eviction — shared-device bookkeeping only; the session's runtime and
// virtual clock are untouched). With no waiters the region stays placed
// so an uncontended session never pays the release/re-place churn.
func (s *Session) yield() {
	hv := s.hv
	hv.mu.Lock()
	s.stepping = false
	if len(hv.queue) > 0 && s.resident {
		hv.dev.Release(s.region())
		s.resident = false
		s.residentG.Set(0)
	}
	hv.cond.Broadcast()
	hv.mu.Unlock()
}

// Eval appends source to the session's program (Runtime.Eval). Evals
// run software-side — parsing, elaboration, engine rebuild, compile
// submission — and never touch the shared fabric, so they need no
// residency.
func (s *Session) Eval(src string) error {
	return s.EvalCtx(context.Background(), src)
}

// EvalCtx is Eval bound to a context.
func (s *Session) EvalCtx(ctx context.Context, src string) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.isClosed() {
		return ErrClosed
	}
	return s.rt.EvalCtx(ctx, src)
}

// MustEval panics if Eval fails (tests and REPL preludes).
func (s *Session) MustEval(src string) {
	if err := s.Eval(src); err != nil {
		panic(err)
	}
}

// RunTicks advances the session n virtual clock ticks, in residency
// quanta.
func (s *Session) RunTicks(n uint64) {
	_ = s.RunTicksCtx(context.Background(), n)
}

// RunTicksCtx advances the session n virtual clock ticks, acquiring
// fabric residency for each quantum and yielding between quanta so
// other tenants can run. Losing the fabric between quanta costs wall
// time only: the program's virtual timeline is identical to running the
// same chunk sequence solo.
func (s *Session) RunTicksCtx(ctx context.Context, n uint64) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	q := s.hv.opts.QuantumTicks
	for n > 0 {
		chunk := q
		if chunk > n {
			chunk = n
		}
		if err := s.acquire(ctx); err != nil {
			return err
		}
		err := s.rt.RunTicksCtx(ctx, chunk)
		s.yield()
		if err != nil {
			return err
		}
		if s.rt.Finished() {
			return nil
		}
		n -= chunk
	}
	return nil
}

// RunUntilFinishCtx steps quantum by quantum until the program executes
// $finish or maxSteps scheduler steps have run; it reports whether the
// program finished.
func (s *Session) RunUntilFinishCtx(ctx context.Context, maxSteps uint64) (bool, error) {
	start := s.rt.Steps()
	for !s.rt.Finished() && s.rt.Steps()-start < maxSteps {
		if err := s.RunTicksCtx(ctx, s.hv.opts.QuantumTicks); err != nil {
			return s.rt.Finished(), err
		}
	}
	return s.rt.Finished(), nil
}

// WaitForPhase steps (holding residency for the whole wait) until the
// JIT reaches phase p, the program finishes, or maxSteps elapse; it
// reports whether p was reached.
func (s *Session) WaitForPhase(p runtime.Phase, maxSteps uint64) bool {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if err := s.acquire(context.Background()); err != nil {
		return false
	}
	defer s.yield()
	return s.rt.WaitForPhase(p, maxSteps)
}

// Phase returns the session's JIT phase.
func (s *Session) Phase() runtime.Phase { return s.rt.Phase() }

// Ticks returns completed virtual clock ticks.
func (s *Session) Ticks() uint64 { return s.rt.Ticks() }

// Steps returns completed scheduler steps ($time).
func (s *Session) Steps() uint64 { return s.rt.Steps() }

// VirtualNow returns the session's virtual time in picoseconds.
func (s *Session) VirtualNow() uint64 { return s.rt.VirtualNow() }

// Finished reports whether the program executed $finish.
func (s *Session) Finished() bool { return s.rt.Finished() }

// Stats snapshots the tenant runtime (tenant-scoped compile counters,
// region size, phase, virtual-time breakdown).
func (s *Session) Stats() runtime.Stats { return s.rt.Stats() }

// Snapshot captures the session's program, state, and counters
// (Runtime.Snapshot).
func (s *Session) Snapshot() *runtime.Snapshot { return s.rt.Snapshot() }

// Restore replaces the session's world with a snapshot
// (Runtime.Restore).
func (s *Session) Restore(snap *runtime.Snapshot) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.isClosed() {
		return ErrClosed
	}
	return s.rt.Restore(snap)
}

func (s *Session) isClosed() bool {
	s.hv.mu.Lock()
	defer s.hv.mu.Unlock()
	return s.closed
}

// Close tears the session down: its shared-fabric region is released,
// its tenant registration dropped (counters and cache entries survive
// in the shared toolchain), and its runtime shut down. Close never
// touches other sessions — a tenant crashing out is invisible to its
// neighbours except as freed fabric. Closing twice is a no-op.
func (s *Session) Close() error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	hv := s.hv
	hv.mu.Lock()
	if s.closed {
		hv.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.resident {
		hv.dev.Release(s.region())
		s.resident = false
		s.residentG.Set(0)
	}
	hv.removeWaiterLocked(s)
	delete(hv.sessions, s.id)
	hv.active.Set(int64(len(hv.sessions)))
	hv.cond.Broadcast()
	hv.mu.Unlock()
	hv.tc.UnregisterTenant(s.id)
	return s.rt.Shutdown()
}
